(* Tests for the core library: experiment registry, reports, paper
   data, and the rebalancing engine. *)

module C = Repro_core
module W = Repro_workload
module U = Repro_uarch

let test_experiment_roundtrip () =
  List.iter
    (fun id ->
      match C.Experiment.of_string (C.Experiment.to_string id) with
      | Some id' ->
          Alcotest.(check string) "roundtrip" (C.Experiment.to_string id)
            (C.Experiment.to_string id')
      | None -> Alcotest.fail "of_string failed")
    C.Experiment.all;
  let keys = List.map C.Experiment.to_string C.Experiment.all in
  Alcotest.(check int) "ids are distinct" (List.length C.Experiment.all)
    (List.length (List.sort_uniq compare keys));
  Alcotest.(check (option string)) "unknown id" None
    (Option.map C.Experiment.to_string (C.Experiment.of_string "fig99"))

let test_experiment_count () =
  Alcotest.(check int) "16 experiments (13 figures + 3 tables)" 16
    (List.length C.Experiment.all)

let test_experiment_describe_nonempty () =
  List.iter
    (fun id ->
      Alcotest.(check bool) "non-empty description" true
        (String.length (C.Experiment.describe id) > 10))
    C.Experiment.all

let test_tab2_tab3_run () =
  (* The pure-model experiments run instantly and must produce rows. *)
  List.iter
    (fun id ->
      let tables = C.Experiment.run ~scale:0.01 id in
      Alcotest.(check bool) "has tables" true (tables <> []);
      List.iter
        (fun t ->
          Alcotest.(check bool) "renders" true
            (String.length (Repro_util.Table.render t) > 50))
        tables)
    [ C.Experiment.Tab2; C.Experiment.Tab3 ]

let test_report_string () =
  let s = C.Report.run_to_string ~scale:0.01 C.Experiment.Tab3 in
  Alcotest.(check bool) "header present" true
    (String.length s > 100 && String.sub s 0 4 = "====")

let test_paper_data_consistency () =
  (* Table III rest-of-core arithmetic must close. *)
  let open C.Paper_data in
  let sum_b =
    tab3_baseline_icache.area_mm2 +. tab3_baseline_bp.area_mm2
    +. tab3_baseline_btb.area_mm2
  in
  Alcotest.(check bool) "front-end under a quarter of the core" true
    (sum_b /. tab3_baseline_core.area_mm2 < 0.25);
  Alcotest.(check int) "fig1 has all four suites" 4
    (List.length fig1_branch_pct);
  Alcotest.(check int) "fig5 covers nine configs" 9
    (List.length (snd (List.hd fig5_mpki)))

let test_subsets_resolve () =
  List.iter
    (fun name -> ignore (W.Suites.find name))
    (W.Suites.fig6_subset @ W.Suites.fig9_subset @ W.Suites.fig11_subset)

let test_rebalance_estimate () =
  let profiles = [ W.Suites.find "FT"; W.Suites.find "swim" ] in
  let e =
    C.Rebalance.estimate ~insts:80_000 U.Frontend_config.tailored profiles
  in
  Alcotest.(check bool) "area positive" true (e.area_mm2 > 0.0);
  Alcotest.(check bool) "slowdown sane" true
    (e.slowdown > 0.8 && e.slowdown < 1.5);
  Alcotest.(check bool) "worst >= avg" true (e.slowdown >= e.avg_slowdown -. 1e-9)

let test_rebalance_recommends_small_for_hpc () =
  (* Loop-dominated workloads must admit a front-end no bigger than
     the baseline, with rationale lines produced. *)
  let profiles = [ W.Suites.find "FT"; W.Suites.find "swim";
                   W.Suites.find "bwaves" ] in
  let r =
    C.Rebalance.recommend ~insts:100_000 ~max_slowdown:0.05 profiles
  in
  Alcotest.(check bool) "chose a design at most baseline-sized" true
    (r.chosen.area_mm2 <= r.baseline.area_mm2 +. 1e-9);
  Alcotest.(check bool) "rationale" true (List.length r.rationale >= 2);
  Alcotest.(check bool) "candidates sorted by area" true
    (let rec sorted = function
       | (a : C.Rebalance.estimate) :: (b :: _ as rest) ->
           a.area_mm2 <= b.area_mm2 +. 1e-9 && sorted rest
       | _ -> true
     in
     sorted r.candidates)

let test_rebalance_rejects_empty () =
  Alcotest.check_raises "no profiles"
    (Invalid_argument "Rebalance.estimate: no profiles") (fun () ->
      ignore (C.Rebalance.estimate U.Frontend_config.baseline []))

let test_default_candidates_include_tailored_shape () =
  Alcotest.(check bool) "sweep covers the paper's tailored point" true
    (List.exists
       (fun (c : U.Frontend_config.t) ->
         c.icache_bytes = 16384 && c.icache_line = 128 && c.bp_loop
         && c.btb_entries = 256)
       C.Rebalance.default_candidates)

let test_ablation_structure () =
  Alcotest.(check int) "8 variants" 8 (List.length C.Ablation.variants);
  let names = List.map (fun v -> v.C.Ablation.vname) C.Ablation.variants in
  Alcotest.(check bool) "baseline first" true (List.hd names = "baseline");
  Alcotest.(check bool) "tailored last" true
    (List.nth names 7 = "tailored (all)")

let test_ablation_run () =
  let rows = C.Ablation.run ~insts:60_000 [ W.Suites.find "FT" ] in
  Alcotest.(check int) "one row per variant" 8 (List.length rows);
  let baseline = List.hd rows and tailored = List.nth rows 7 in
  Alcotest.(check (float 1e-9)) "baseline saves nothing" 0.0
    baseline.C.Ablation.area_saving;
  Alcotest.(check (float 1e-9)) "baseline slowdown 1.0" 1.0
    baseline.C.Ablation.avg_slowdown;
  Alcotest.(check bool) "tailored saves the most area" true
    (List.for_all
       (fun r -> r.C.Ablation.area_saving <= tailored.C.Ablation.area_saving)
       rows);
  Alcotest.(check bool) "renders" true
    (String.length (Repro_util.Table.render (C.Ablation.table rows)) > 200)

let test_thread_scaling_share () =
  (* The paper's example: fma3d/nab ~4% serial at 8 threads grow to
     ~18-19% at 64 threads. *)
  let share = C.Thread_scaling.serial_share_at ~base_share:0.04 ~base_threads:8 64 in
  Alcotest.(check bool) (Printf.sprintf "4%% at 8 -> %.0f%% at 64" (share *. 100.))
    true
    (share > 0.17 && share < 0.32);
  Alcotest.(check (float 1e-9)) "identity at base" 0.04
    (C.Thread_scaling.serial_share_at ~base_share:0.04 ~base_threads:8 8);
  Alcotest.(check (float 1e-9)) "zero stays zero" 0.0
    (C.Thread_scaling.serial_share_at ~base_share:0.0 ~base_threads:8 64)

let test_thread_scaling_sweep () =
  let p = W.Suites.find "CoEVP" in
  let points = C.Thread_scaling.sweep ~insts:700_000 p in
  Alcotest.(check int) "four core counts" 4 (List.length points);
  let shares = List.map (fun pt -> pt.C.Thread_scaling.serial_share) points in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "serial share grows with cores" true (increasing shares);
  List.iter
    (fun pt ->
      (* The asymmetric design must never lose materially to the
         baseline (its master IS a baseline core); the tailored CMP
         may, since its master pays for the serial sections. *)
      Alcotest.(check bool) "asymmetric ~ baseline" true
        (pt.C.Thread_scaling.asymmetric_vs_baseline <= 1.02))
    points;
  (* At manycore scale the serial bottleneck dominates: the tailored
     CMP must clearly pay for it while the asymmetric CMP does not. *)
  let last = List.nth points (List.length points - 1) in
  Alcotest.(check bool) "tailored pays at 64 cores" true
    (last.C.Thread_scaling.tailored_vs_baseline
    > last.C.Thread_scaling.asymmetric_vs_baseline +. 0.005)

(* ------------------------------------------------------------------ *)
(* Persistent cache: round-trips, corruption tolerance, key
   sensitivity, disk clearing. *)

let with_test_cache f =
  let dir = "core_cache_dir" in
  C.Cache.set_dir dir;
  C.Cache.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      C.Cache.clear ();
      C.Cache.set_enabled false;
      (try Sys.rmdir dir with Sys_error _ -> ()))
    (fun () -> f ())

let test_cache_roundtrip () =
  with_test_cache (fun () ->
      let p = W.Suites.find "FT" in
      let k = C.Cache.key ~profile:p ~scale:0.25 ~kind:"test" in
      Alcotest.(check bool) "miss before store" true
        ((C.Cache.find k : float list option) = None);
      C.Cache.store k [ 1.5; 2.25; -3.0 ];
      Alcotest.(check (option (list (float 0.0)))) "hit after store"
        (Some [ 1.5; 2.25; -3.0 ])
        (C.Cache.find k);
      (* Same profile and kind at another scale is a different key. *)
      let k' = C.Cache.key ~profile:p ~scale:0.5 ~kind:"test" in
      Alcotest.(check bool) "scale change misses" true
        ((C.Cache.find k' : float list option) = None);
      (* Another profile at the same scale is a different key too. *)
      let other =
        C.Cache.key ~profile:(W.Suites.find "swim") ~scale:0.25 ~kind:"test"
      in
      Alcotest.(check bool) "distinct files per profile" true
        (C.Cache.path other <> C.Cache.path k))

let corrupt path f =
  let s = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (f s))

let test_cache_corruption_tolerated () =
  with_test_cache (fun () ->
      let p = W.Suites.find "FT" in
      let k = C.Cache.key ~profile:p ~scale:0.25 ~kind:"test" in
      let stored = [ 42.0 ] in
      (* Truncated entry: silent miss, then recompute via memoize. *)
      C.Cache.store k stored;
      corrupt (C.Cache.path k) (fun s ->
          String.sub s 0 (String.length s / 2));
      Alcotest.(check bool) "truncated file misses" true
        ((C.Cache.find k : float list option) = None);
      Alcotest.(check (list (float 0.0))) "memoize recomputes" stored
        (C.Cache.memoize k (fun () -> stored));
      Alcotest.(check (option (list (float 0.0)))) "and re-stores"
        (Some stored) (C.Cache.find k);
      (* Garbage entry. *)
      corrupt (C.Cache.path k) (fun _ -> "not a cache entry at all");
      Alcotest.(check bool) "garbage file misses" true
        ((C.Cache.find k : float list option) = None);
      (* Flipped payload byte: the digest catches it. *)
      C.Cache.store k stored;
      corrupt (C.Cache.path k) (fun s ->
          let b = Bytes.of_string s in
          let i = Bytes.length b - 1 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
          Bytes.to_string b);
      Alcotest.(check bool) "bit-rot misses" true
        ((C.Cache.find k : float list option) = None))

let test_cache_clear_disk () =
  with_test_cache (fun () ->
      let p = W.Suites.find "FT" in
      C.Cache.store (C.Cache.key ~profile:p ~scale:0.25 ~kind:"test") [ 1.0 ];
      C.Cache.store (C.Cache.key ~profile:p ~scale:0.5 ~kind:"test") [ 2.0 ];
      Alcotest.(check int) "two entries on disk" 2 (C.Cache.entries ());
      (* Without ~disk the persistent entries survive. *)
      C.Experiment.clear_cache ();
      Alcotest.(check int) "memory-only clear keeps disk" 2
        (C.Cache.entries ());
      C.Experiment.clear_cache ~disk:true ();
      Alcotest.(check int) "disk clear empties the directory" 0
        (C.Cache.entries ()))

let test_cache_disabled_bypasses () =
  with_test_cache (fun () ->
      C.Cache.set_enabled false;
      let k =
        C.Cache.key ~profile:(W.Suites.find "FT") ~scale:0.25 ~kind:"test"
      in
      C.Cache.store k [ 9.0 ];
      Alcotest.(check int) "no file written" 0 (C.Cache.entries ());
      Alcotest.(check bool) "find misses" true
        ((C.Cache.find k : float list option) = None);
      Alcotest.(check (list (float 0.0))) "memoize computes directly" [ 7.0 ]
        (C.Cache.memoize k (fun () -> [ 7.0 ])))

(* In-flight temp files must be invisible: never counted by entries,
   never deleted by clear. A ".bin"-suffixed temp (the old behaviour)
   failed both ways. *)
let test_cache_tmp_files_invisible () =
  with_test_cache (fun () ->
      let p = W.Suites.find "FT" in
      let k = C.Cache.key ~profile:p ~scale:0.25 ~kind:"test" in
      C.Cache.store k [ 1.0 ];
      Alcotest.(check int) "one finished entry" 1 (C.Cache.entries ());
      (* Simulate another writer's in-flight temp file, exactly as
         Cache.store creates it (exclusive open, .tmp suffix). *)
      let tmp, oc =
        Filename.open_temp_file ~temp_dir:(C.Cache.dir ()) "tmp-cache" ".tmp"
      in
      output_string oc "half-written";
      close_out oc;
      Alcotest.(check int) "temp file not counted" 1 (C.Cache.entries ());
      C.Cache.clear ();
      Alcotest.(check bool) "clear leaves the in-flight temp alone" true
        (Sys.file_exists tmp);
      Alcotest.(check int) "clear removed the finished entry" 0
        (C.Cache.entries ());
      (* The writer's rename still lands after the clear: the entry is
         not lost. *)
      Sys.rename tmp (C.Cache.path k);
      Alcotest.(check int) "renamed entry visible" 1 (C.Cache.entries ()))

(* store racing clear: stores must never be lost to a concurrent
   clear deleting their temp file, and no temp files may linger. *)
let test_cache_store_concurrent_clear () =
  with_test_cache (fun () ->
      let p = W.Suites.find "FT" in
      let rounds = 60 in
      let writer =
        Domain.spawn (fun () ->
            for i = 1 to rounds do
              let k =
                C.Cache.key ~profile:p ~scale:(float_of_int i) ~kind:"race"
              in
              C.Cache.store k [ float_of_int i ]
            done)
      in
      for _ = 1 to 20 do
        C.Cache.clear ();
        Domain.cpu_relax ()
      done;
      Domain.join writer;
      (* Every store that began after the last clear survived; at
         minimum a fresh store with no concurrent clear must land. *)
      let k = C.Cache.key ~profile:p ~scale:0.125 ~kind:"race" in
      C.Cache.store k [ 42.0 ];
      Alcotest.(check (option (list (float 0.0)))) "no lost entry"
        (Some [ 42.0 ]) (C.Cache.find k);
      let leftovers =
        List.filter
          (fun f -> Filename.check_suffix f ".tmp")
          (Array.to_list (Sys.readdir (C.Cache.dir ())))
      in
      Alcotest.(check (list string)) "no temp files linger" [] leftovers)

(* The narrowed handlers: Sys_error still reads as a miss / no-op,
   but a programming error (Marshal on a closure) now propagates
   instead of being silently swallowed. *)
let test_cache_store_propagates_non_io_failures () =
  with_test_cache (fun () ->
      let k =
        C.Cache.key ~profile:(W.Suites.find "FT") ~scale:0.25 ~kind:"test"
      in
      Alcotest.(check bool) "marshalling a closure raises" true
        (match C.Cache.store k (fun x -> x + 1) with
        | () -> false
        | exception Invalid_argument _ -> true);
      Alcotest.(check int) "and leaves no temp or entry behind" 0
        (Array.length (Sys.readdir (C.Cache.dir ()))))

let () =
  Alcotest.run "core"
    [ ("experiment",
       [ Alcotest.test_case "roundtrip" `Quick test_experiment_roundtrip;
         Alcotest.test_case "count" `Quick test_experiment_count;
         Alcotest.test_case "describe" `Quick test_experiment_describe_nonempty;
         Alcotest.test_case "tab2/tab3 run" `Quick test_tab2_tab3_run;
         Alcotest.test_case "report string" `Quick test_report_string ]);
      ("paper data",
       [ Alcotest.test_case "consistency" `Quick test_paper_data_consistency;
         Alcotest.test_case "subsets resolve" `Quick test_subsets_resolve ]);
      ("ablation",
       [ Alcotest.test_case "structure" `Quick test_ablation_structure;
         Alcotest.test_case "run" `Quick test_ablation_run ]);
      ("thread scaling",
       [ Alcotest.test_case "serial share model" `Quick test_thread_scaling_share;
         Alcotest.test_case "sweep" `Quick test_thread_scaling_sweep ]);
      ("cache",
       [ Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip;
         Alcotest.test_case "corruption tolerated" `Quick
           test_cache_corruption_tolerated;
         Alcotest.test_case "clear disk" `Quick test_cache_clear_disk;
         Alcotest.test_case "disabled bypasses" `Quick
           test_cache_disabled_bypasses;
         Alcotest.test_case "temp files invisible" `Quick
           test_cache_tmp_files_invisible;
         Alcotest.test_case "store racing clear" `Quick
           test_cache_store_concurrent_clear;
         Alcotest.test_case "non-IO failures propagate" `Quick
           test_cache_store_propagates_non_io_failures ]);
      ("rebalance",
       [ Alcotest.test_case "estimate" `Quick test_rebalance_estimate;
         Alcotest.test_case "recommends small for HPC" `Slow
           test_rebalance_recommends_small_for_hpc;
         Alcotest.test_case "rejects empty" `Quick test_rebalance_rejects_empty;
         Alcotest.test_case "candidate sweep shape" `Quick
           test_default_candidates_include_tailored_shape ]) ]
