(* Reference-model differential tests for lib/frontend.

   Each hardware structure is re-implemented here in the most naive
   style that is obviously correct — association lists in LRU order, a
   plain counter table indexed through an explicit history register —
   and driven lock-step with the real structure on random operation
   streams. Every observable (per-operation results and the final
   statistics) must agree. These guard the optimized paths in the real
   models: the I-cache's shift-based indexing and consume fast path,
   and History's packed low-bits register. *)

module F = Repro_frontend

(* ------------------------------------------------------------------ *)
(* Perceptron reuse/bypass reference: a direct transliteration of the
   update rule from Replacement's documentation — per-table 2D weight
   arrays, a prediction captured as an immutable record travelling
   with the cache line it was made for, training by rebuilding the
   clamped weights through Array.iteri. Nothing is shared with the
   flat production layout. *)

module Ref_preuse = struct
  let tables = 6
  let entries = 256
  let wmin = -32
  let wmax = 31
  let theta = 68
  let tau = 3

  (* A prediction: the per-table indices it read and the sum it saw. *)
  type pred = { idx : int array; yout : int }

  let no_pred = { idx = [||]; yout = 0 }

  type t = {
    wt : int array array; (* tables x entries *)
    mutable h1 : int; (* most recent demand fetch line *)
    mutable h2 : int;
  }

  let create () =
    { wt = Array.init tables (fun _ -> Array.make entries 0); h1 = 0; h2 = 0 }

  let feature t j line =
    (match j with
    | 0 -> line
    | 1 -> line lsr 4
    | 2 -> line lsr 8
    | 3 -> line lxor (line lsr 5)
    | 4 -> line lxor t.h1
    | _ -> (line lsr 2) lxor (t.h2 lsr 1))
    land (entries - 1)

  let predict t line =
    let idx = Array.init tables (fun j -> feature t j line) in
    let yout = ref 0 in
    Array.iteri (fun j ix -> yout := !yout + t.wt.(j).(ix)) idx;
    { idx; yout = !yout }

  let dead p = p.yout >= tau
  let sampled set = set land 3 = 0

  (* Update only on a misprediction or while under-confident; reuse
     pushes the touched weights down, death pushes them up. *)
  let train t (p : pred) ~reused =
    if dead p = reused || abs p.yout <= theta then
      Array.iteri
        (fun j ix ->
          let w = t.wt.(j).(ix) + if reused then -1 else 1 in
          t.wt.(j).(ix) <- max wmin (min wmax w))
        p.idx

  let note t line =
    t.h2 <- t.h1;
    t.h1 <- line
end

(* ------------------------------------------------------------------ *)
(* I-cache reference: per-set MRU-first lists, parameterized by a
   reference replacement policy (plain LRU or the perceptron above). *)

module Ref_icache = struct
  type way = {
    tag : int;
    mutable touched : int;
    mutable prefetched : bool;
    mutable pred : Ref_preuse.pred; (* last prediction for this line *)
  }

  type t = {
    sets : int;
    assoc : int;
    line : int;
    granules : int;
    prefetch : bool;
    pol : Ref_preuse.t option; (* None = LRU *)
    mutable mem : way list array; (* most recently used first *)
    mutable accesses : int;
    mutable misses : int;
    mutable prefetches : int;
    mutable useful_prefetches : int;
    mutable useful_sum : float;
    mutable filled : int;
  }

  let create ?(next_line_prefetch = false) ?(policy = F.Replacement.Lru)
      ~size_bytes ~line_bytes ~assoc () =
    let sets = size_bytes / line_bytes / assoc in
    { sets;
      assoc;
      line = line_bytes;
      granules = line_bytes / 4;
      prefetch = next_line_prefetch;
      pol =
        (match policy with
        | F.Replacement.Lru -> None
        | F.Replacement.Preuse -> Some (Ref_preuse.create ()));
      mem = Array.make sets [];
      accesses = 0;
      misses = 0;
      prefetches = 0;
      useful_prefetches = 0;
      useful_sum = 0.0;
      filled = 0 }

  let popcount x =
    let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
    go 0 x

  let usefulness_of t w = float_of_int (popcount w.touched) /. float_of_int t.granules

  let mark t w ~offset ~size =
    let g0 = offset / 4 and g1 = (offset + size - 1) / 4 in
    for g = g0 to min g1 (t.granules - 1) do
      w.touched <- w.touched lor (1 lsl g)
    done

  (* The policy's victim in a full set. For LRU that is the last
     (least recently used) way of the MRU-first list; the perceptron
     prefers the least recently used among the ways whose last
     prediction said "dead", falling back to plain LRU. *)
  let victim_of t set_idx =
    let l = t.mem.(set_idx) in
    let last ways = List.nth ways (List.length ways - 1) in
    match t.pol with
    | None -> last l
    | Some _ -> (
        match List.filter (fun w -> Ref_preuse.dead w.pred) l with
        | [] -> last l
        | dead -> last dead)

  (* Insert [w] at the front of [set_idx]; when the set is full, the
     policy's victim is evicted, its usefulness recorded, and — on
     sampler sets under the perceptron — its death trained. *)
  let insert_front t set_idx w =
    let l = t.mem.(set_idx) in
    let l =
      if List.length l = t.assoc then begin
        let victim = victim_of t set_idx in
        t.useful_sum <- t.useful_sum +. usefulness_of t victim;
        (match t.pol with
        | Some p when Ref_preuse.sampled set_idx ->
            Ref_preuse.train p victim.pred ~reused:false
        | _ -> ());
        List.filter (fun x -> x != victim) l
      end
      else l
    in
    t.mem.(set_idx) <- w :: l;
    t.filled <- t.filled + 1

  let find t set_idx tag = List.find_opt (fun w -> w.tag = tag) t.mem.(set_idx)

  let to_front t set_idx w =
    t.mem.(set_idx) <- w :: List.filter (fun x -> x != w) t.mem.(set_idx)

  (* Prefetch fills predict and can train an evicted victim, but never
     bypass and never enter the demand-line history. *)
  let prefetch_line t line =
    let set_idx = line mod t.sets in
    let tag = line / t.sets in
    match find t set_idx tag with
    | Some _ -> ()
    | None ->
        let pred =
          match t.pol with
          | None -> Ref_preuse.no_pred
          | Some p -> Ref_preuse.predict p line
        in
        let w = { tag; touched = 0; prefetched = true; pred } in
        insert_front t set_idx w;
        t.prefetches <- t.prefetches + 1

  let access_line t line ~offset ~size =
    let set_idx = line mod t.sets in
    let tag = line / t.sets in
    t.accesses <- t.accesses + 1;
    let hit =
      match find t set_idx tag with
      | Some w ->
          (* Reuse observed: train on sampler sets, then re-predict
             this line under the current history. *)
          (match t.pol with
          | Some p ->
              if Ref_preuse.sampled set_idx then
                Ref_preuse.train p w.pred ~reused:true;
              w.pred <- Ref_preuse.predict p line
          | None -> ());
          if w.prefetched then begin
            w.prefetched <- false;
            t.useful_prefetches <- t.useful_prefetches + 1
          end;
          to_front t set_idx w;
          mark t w ~offset ~size;
          true
      | None ->
          t.misses <- t.misses + 1;
          let pred =
            match t.pol with
            | None -> Ref_preuse.no_pred
            | Some p -> Ref_preuse.predict p line
          in
          let bypass =
            t.pol <> None
            && (not (Ref_preuse.sampled set_idx))
            && Ref_preuse.dead pred
          in
          if not bypass then begin
            let w = { tag; touched = 0; prefetched = false; pred } in
            insert_front t set_idx w;
            mark t w ~offset ~size
          end;
          if t.prefetch then prefetch_line t (line + 1);
          false
    in
    (* Demand accesses (hit, fill or bypass) advance the history. *)
    (match t.pol with Some p -> Ref_preuse.note p line | None -> ());
    hit

  let access t ~addr ~size =
    let first = addr / t.line and last = (addr + size - 1) / t.line in
    let hit = ref true in
    for line = first to last do
      let lo = max addr (line * t.line) in
      let hi = min (addr + size) ((line + 1) * t.line) in
      if not (access_line t line ~offset:(lo - (line * t.line)) ~size:(hi - lo))
      then hit := false
    done;
    !hit

  let consume t ~addr ~size =
    let first = addr / t.line and last = (addr + size - 1) / t.line in
    for line = first to last do
      let lo = max addr (line * t.line) in
      let hi = min (addr + size) ((line + 1) * t.line) in
      match find t (line mod t.sets) (line / t.sets) with
      | Some w -> mark t w ~offset:(lo - (line * t.line)) ~size:(hi - lo)
      | None -> ()
    done

  let usefulness t =
    let resident = ref 0.0 in
    Array.iter
      (List.iter (fun w -> resident := !resident +. usefulness_of t w))
      t.mem;
    if t.filled = 0 then nan else (t.useful_sum +. !resident) /. float_of_int t.filled
end

type iop = Access of int * int | Consume of int * int

let icache_ops_gen =
  (* Clustered fetch behaviour over a few KB of address space: runs of
     sequential extraction (consumes) punctuated by jumps (accesses),
     plus the occasional consume of a line that was never looked up. *)
  QCheck.Gen.(
    let op =
      let* addr = int_bound 4095 in
      let* size = int_range 1 15 in
      let* seq_consumes = int_bound 4 in
      let* stray = int_bound 9 in
      return
        ((Access (addr, size)
          :: List.init seq_consumes (fun k ->
                 Consume (addr + ((k + 1) * size), size)))
        @ if stray = 0 then [ Consume (addr lxor 0x800, size) ] else [])
    in
    let* ops = list_size (int_range 1 120) op in
    return (List.concat ops))

let icache_config_gen =
  QCheck.Gen.(
    let* size = oneofl [ 512; 1024; 2048 ] in
    let* line = oneofl [ 16; 32; 64 ] in
    let* assoc = oneofl [ 1; 2; 4 ] in
    let* pf = bool in
    return (size, line, assoc, pf))

let pp_iop = function
  | Access (a, s) -> Printf.sprintf "A(%d,%d)" a s
  | Consume (a, s) -> Printf.sprintf "C(%d,%d)" a s

let icache_arb =
  QCheck.make
    QCheck.Gen.(pair icache_config_gen icache_ops_gen)
    ~print:(fun ((sz, l, a, pf), ops) ->
      Printf.sprintf "%dB/%dB/%dw pf=%b: %s" sz l a pf
        (String.concat " " (List.map pp_iop ops)))

let icache_diff_prop ~policy ((size_bytes, line_bytes, assoc, pf), ops) =
  QCheck.assume (size_bytes / line_bytes >= assoc);
  let real =
    F.Icache.create ~next_line_prefetch:pf ~policy ~size_bytes ~line_bytes
      ~assoc ()
  in
  let ref_ =
    Ref_icache.create ~next_line_prefetch:pf ~policy ~size_bytes ~line_bytes
      ~assoc ()
  in
  List.for_all
    (fun op ->
      match op with
      | Access (addr, size) ->
          F.Icache.access real ~addr ~size = Ref_icache.access ref_ ~addr ~size
      | Consume (addr, size) ->
          F.Icache.consume real ~addr ~size;
          Ref_icache.consume ref_ ~addr ~size;
          true)
    ops
  && F.Icache.accesses real = ref_.Ref_icache.accesses
  && F.Icache.misses real = ref_.Ref_icache.misses
  && F.Icache.prefetches real = ref_.Ref_icache.prefetches
  && F.Icache.useful_prefetches real = ref_.Ref_icache.useful_prefetches
  &&
  let u = F.Icache.usefulness real and v = Ref_icache.usefulness ref_ in
  (Float.is_nan u && Float.is_nan v) || Float.abs (u -. v) < 1e-9

let prop_icache_matches_reference =
  QCheck.Test.make ~name:"Icache == naive LRU reference" ~count:150 icache_arb
    (icache_diff_prop ~policy:F.Replacement.Lru)

let prop_icache_matches_preuse_reference =
  QCheck.Test.make ~name:"Icache == naive perceptron reference" ~count:150
    icache_arb
    (icache_diff_prop ~policy:F.Replacement.Preuse)

(* ------------------------------------------------------------------ *)
(* BTB reference: per-set association lists in LRU order. *)

module Ref_btb = struct
  type t = {
    sets : int;
    assoc : int;
    mem : (int * int) list array; (* (tag, target), MRU first *)
  }

  let create ~entries ~assoc = { sets = entries / assoc; assoc; mem = Array.make (entries / assoc) [] }

  let set_of t pc = (pc lsr 1) mod t.sets
  let tag_of t pc = pc lsr 1 / t.sets

  let lookup t ~pc =
    let s = set_of t pc and tag = tag_of t pc in
    match List.assoc_opt tag t.mem.(s) with
    | None -> None
    | Some target ->
        (* refresh LRU, as the real BTB's lookup does *)
        t.mem.(s) <-
          (tag, target) :: List.filter (fun (tg, _) -> tg <> tag) t.mem.(s);
        Some target

  let insert t ~pc ~target =
    let s = set_of t pc and tag = tag_of t pc in
    let rest = List.filter (fun (tg, _) -> tg <> tag) t.mem.(s) in
    let rest =
      if List.length rest >= t.assoc then
        List.filteri (fun i _ -> i < t.assoc - 1) rest
      else rest
    in
    t.mem.(s) <- (tag, target) :: rest
end

type bop = Lookup of int | Insert of int * int

let btb_arb =
  QCheck.make
    QCheck.Gen.(
      let* entries = oneofl [ 16; 64 ] in
      let* assoc = oneofl [ 1; 2; 4; 8 ] in
      let* ops =
        list_size (int_range 1 600)
          (let* pc = int_bound 1023 in
           let* ins = bool in
           if ins then
             let* target = int_bound 0xFFFF in
             return (Insert (pc, target))
           else return (Lookup pc))
      in
      return (entries, assoc, ops))
    ~print:(fun (e, a, ops) ->
      Printf.sprintf "%de/%dw %d ops: %s" e a (List.length ops)
        (String.concat " "
           (List.map
              (function
                | Lookup pc -> Printf.sprintf "L%d" pc
                | Insert (pc, t) -> Printf.sprintf "I%d->%d" pc t)
              ops)))

let prop_btb_matches_reference =
  QCheck.Test.make ~name:"Btb == assoc-list LRU reference" ~count:150 btb_arb
    (fun (entries, assoc, ops) ->
      QCheck.assume (assoc <= entries);
      let real = F.Btb.create ~entries ~assoc in
      let ref_ = Ref_btb.create ~entries ~assoc in
      List.for_all
        (fun op ->
          match op with
          | Lookup pc -> F.Btb.lookup real ~pc = Ref_btb.lookup ref_ ~pc
          | Insert (pc, target) ->
              F.Btb.insert real ~pc ~target;
              Ref_btb.insert ref_ ~pc ~target;
              true)
        ops)

(* ------------------------------------------------------------------ *)
(* Gshare reference: a plain int-array PHT indexed through an explicit
   shift-register history — no Counter, no History. *)

module Ref_gshare = struct
  type t = { m : int; table : int array; mutable hist : int }

  let create ~history_bits =
    { m = history_bits; table = Array.make (1 lsl history_bits) 1; hist = 0 }

  let mask t = (1 lsl t.m) - 1
  let index t pc = ((pc lsr 1) lxor (t.hist land mask t)) land mask t
  let predict t ~pc = t.table.(index t pc) >= 2

  let update t ~pc ~taken =
    let i = index t pc in
    let v = t.table.(i) in
    t.table.(i) <- (if taken then min 3 (v + 1) else max 0 (v - 1));
    t.hist <- ((t.hist lsl 1) lor (if taken then 1 else 0)) land mask t
end

let gshare_arb =
  QCheck.make
    QCheck.Gen.(
      let* m = int_range 2 16 in
      let* ops =
        list_size (int_range 1 800) (pair (int_bound 0xFFFFF) bool)
      in
      return (m, ops))
    ~print:(fun (m, ops) -> Printf.sprintf "m=%d, %d branches" m (List.length ops))

let prop_gshare_matches_reference =
  QCheck.Test.make ~name:"Gshare == direct table+register reference"
    ~count:100 gshare_arb (fun (m, ops) ->
      let real = F.Gshare.create ~history_bits:m in
      let ref_ = Ref_gshare.create ~history_bits:m in
      List.for_all
        (fun (pc, taken) ->
          let same = F.Gshare.predict real ~pc = Ref_gshare.predict ref_ ~pc in
          F.Gshare.update real ~pc ~taken;
          Ref_gshare.update ref_ ~pc ~taken;
          same)
        ops)

(* ------------------------------------------------------------------ *)
(* History: the packed low-bits register must agree with the circular
   bit buffer it shadows, through pushes and clears. *)

let history_arb =
  QCheck.make
    QCheck.Gen.(
      let* len = int_range 1 80 in
      let* ops =
        list_size (int_range 1 300)
          (frequencyl [ (15, `Push true); (15, `Push false); (1, `Clear) ])
      in
      return (len, ops))
    ~print:(fun (len, ops) ->
      Printf.sprintf "len=%d %s" len
        (String.concat ""
           (List.map
              (function
                | `Push true -> "T" | `Push false -> "n" | `Clear -> "|")
              ops)))

let prop_history_low_bits =
  QCheck.Test.make ~name:"History.low_bits == bit-by-bit reconstruction"
    ~count:200 history_arb (fun (len, ops) ->
      let h = F.History.create len in
      List.for_all
        (fun op ->
          (match op with
          | `Push taken -> F.History.push h taken
          | `Clear -> F.History.clear h);
          List.for_all
            (fun n ->
              let slow = ref 0 in
              for i = min n len - 1 downto 0 do
                slow := (!slow lsl 1) lor (if F.History.bit h i then 1 else 0)
              done;
              F.History.low_bits h n = !slow)
            (* low_bits admits n <= 62 only *)
            [ 1; 3; len / 2; min len 62; 62 ])
        ops)

let () =
  Alcotest.run "frontend-diff"
    [ ("icache",
       Qseed.all
         [ prop_icache_matches_reference;
           prop_icache_matches_preuse_reference ]);
      ("btb", Qseed.all [ prop_btb_matches_reference ]);
      ("gshare", Qseed.all [ prop_gshare_matches_reference ]);
      ("history", Qseed.all [ prop_history_low_bits ]) ]
