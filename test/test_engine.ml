(* Tests for the multicore experiment engine: determinism under
   concurrency, order preservation, clean failure propagation, and
   the statistics counters. *)

module C = Repro_core
module W = Repro_workload
module A = Repro_analysis

(* ------------------------------------------------------------------ *)
(* Plumbing: Engine.map must be List.map for any pool size. *)

let qcheck_map_is_list_map =
  QCheck.Test.make ~name:"Engine.map f = List.map f for any pool size"
    ~count:50
    QCheck.(pair (int_range 1 8) (small_list small_int))
    (fun (jobs, xs) ->
      C.Engine.map ~jobs (fun x -> (x * 7919) mod 1009) xs
      = List.map (fun x -> (x * 7919) mod 1009) xs)

(* ------------------------------------------------------------------ *)
(* The tentpole property: for random subsets of the benchmark suite
   and random pool sizes, a parallel characterization run is
   field-for-field identical to a sequential one. Characterizations
   contain no closures, so Marshal bytes witness full structural
   equality; a few derived metrics are compared exactly on top. *)

let profiles = Array.of_list W.Suites.all

let characterize (p : W.Profile.t) =
  (* Small fixed budget: the property is about scheduling, not
     fidelity, and runs dozens of traces. *)
  A.Characterization.of_profile ~insts:50_000 p

let subset_gen =
  (* (pool size, distinct profile indices) *)
  QCheck.(
    pair (int_range 1 8)
      (list_of_size Gen.(2 -- 5) (int_range 0 (Array.length profiles - 1))))

let qcheck_parallel_characterization_deterministic =
  QCheck.Test.make
    ~name:"parallel characterization == sequential (field-for-field)"
    ~count:8 subset_gen
    (fun (jobs, idxs) ->
      let ps = List.map (fun i -> profiles.(i)) idxs in
      let seq = List.map characterize ps in
      let par = C.Engine.map ~jobs characterize ps in
      List.for_all2
        (fun (a : A.Characterization.t) (b : A.Characterization.t) ->
          let total = A.Branch_mix.Total in
          let exact f = Float.equal (f a) (f b) in
          String.equal a.name b.name
          && exact (fun c -> A.Branch_mix.branch_fraction c.mix total)
          && exact (fun c -> A.Branch_bias.biased_fraction c.bias total)
          && exact (fun c ->
                 float_of_int (A.Footprint.static_bytes c.footprint total))
          && exact (fun c -> A.Bblock_stats.avg_block_bytes c.bblocks total)
          && String.equal (Marshal.to_string a []) (Marshal.to_string b []))
        seq par)

(* Experiment.run must render identical tables for any pool size,
   through the memo/cache layers included. *)
let test_experiment_run_jobs_invariant () =
  C.Cache.set_enabled false;
  let render jobs =
    C.Experiment.clear_cache ();
    C.Report.run_to_string ~scale:0.02 ~jobs C.Experiment.Fig4
  in
  let seq = render 1 in
  Alcotest.(check string) "fig4 at -j3 == -j1" seq (render 3);
  Alcotest.(check string) "fig4 at -j8 == -j1" seq (render 8)

(* ------------------------------------------------------------------ *)
(* Failure handling: a raising task fails the run cleanly — the
   exception surfaces in the caller, every domain is joined (no
   deadlock, no leak), and the engine remains usable. *)

exception Boom of int

let test_exception_propagates () =
  let inputs = List.init 20 Fun.id in
  Alcotest.check_raises "first failure surfaces" (Boom 13) (fun () ->
      ignore
        (C.Engine.map ~jobs:4
           (fun i -> if i = 13 then raise (Boom 13) else i)
           inputs));
  (* The pool is per-call: after a failed run the engine must still
     complete fresh work (a deadlocked or leaked domain would hang
     here, tripping the test runner's timeout). *)
  Alcotest.(check (list int)) "engine usable after failure"
    (List.map succ inputs)
    (C.Engine.map ~jobs:4 succ inputs)

let test_exception_lowest_index_wins () =
  (* Two raising tasks: the surfaced failure is the lowest-index one,
     independent of scheduling. *)
  for _ = 1 to 5 do
    Alcotest.check_raises "lowest index" (Boom 3) (fun () ->
        ignore
          (C.Engine.map ~jobs:4
             (fun i -> if i >= 3 then raise (Boom i) else i)
             (List.init 16 Fun.id)))
  done

(* ------------------------------------------------------------------ *)
(* Statistics. *)

let test_stats_counters () =
  C.Engine.reset_stats ();
  ignore (C.Engine.map ~jobs:1 succ [ 1; 2; 3 ]);
  ignore (C.Engine.map ~jobs:4 succ [ 1; 2; 3; 4; 5 ]);
  let s = C.Engine.stats () in
  Alcotest.(check int) "tasks counted" 8 s.tasks_run;
  Alcotest.(check int) "only the parallel call batches" 1 s.batches;
  Alcotest.(check int) "domain peak" 4 s.max_domains;
  C.Engine.note_cache_hit ();
  C.Engine.note_cache_hit ();
  C.Engine.note_cache_miss ();
  let s = C.Engine.stats () in
  Alcotest.(check int) "hits" 2 s.cache_hits;
  Alcotest.(check int) "misses" 1 s.cache_misses;
  C.Engine.reset_stats ();
  Alcotest.(check int) "reset" 0 (C.Engine.stats ()).tasks_run

let test_default_jobs () =
  C.Engine.set_default_jobs 3;
  Alcotest.(check int) "set_default_jobs" 3 (C.Engine.default_jobs ());
  C.Engine.set_default_jobs 1000;
  Alcotest.(check int) "clamped high" 64 (C.Engine.default_jobs ());
  C.Engine.set_default_jobs (-2);
  Alcotest.(check int) "clamped low" 1 (C.Engine.default_jobs ());
  C.Engine.set_default_jobs 1

let qcheck tests = Qseed.all tests

let () =
  Alcotest.run "engine"
    [ ("map", qcheck [ qcheck_map_is_list_map ]);
      ("determinism",
       qcheck [ qcheck_parallel_characterization_deterministic ]
       @ [ Alcotest.test_case "experiment run jobs-invariant" `Slow
             test_experiment_run_jobs_invariant ]);
      ("failure",
       [ Alcotest.test_case "exception propagates" `Quick
           test_exception_propagates;
         Alcotest.test_case "lowest index wins" `Quick
           test_exception_lowest_index_wins ]);
      ("stats",
       [ Alcotest.test_case "counters" `Quick test_stats_counters;
         Alcotest.test_case "default jobs" `Quick test_default_jobs ]) ]
