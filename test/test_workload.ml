(* Tests for the workload substrate: behaviours, trips, profiles,
   code generation and the executor. *)

module W = Repro_workload
module P = W.Program
module Inst = Repro_isa.Inst
module Rng = Repro_util.Rng

(* ------------------------------------------------------------------ *)
(* Behaviours *)

let test_behavior_bernoulli_rate () =
  let b = W.Behavior.bernoulli ~p:0.2 in
  let rng = Rng.create 1 in
  let n = 20_000 and hits = ref 0 in
  for _ = 1 to n do
    if W.Behavior.next b rng ~global_hist:0 ~path:0 then incr hits
  done;
  Alcotest.(check (float 0.02)) "rate" 0.2 (float_of_int !hits /. float_of_int n);
  Alcotest.(check (float 1e-9)) "mean_rate" 0.2 (W.Behavior.mean_rate b)

let test_behavior_periodic () =
  let b = W.Behavior.periodic ~pattern:[| true; false; false |] in
  let rng = Rng.create 2 in
  let out = List.init 6 (fun _ -> W.Behavior.next b rng ~global_hist:0 ~path:0) in
  Alcotest.(check (list bool)) "repeats"
    [ true; false; false; true; false; false ] out;
  Alcotest.(check (float 1e-9)) "mean" (1.0 /. 3.0) (W.Behavior.mean_rate b)

let test_behavior_periodic_reset () =
  let b = W.Behavior.periodic ~pattern:[| true; false |] in
  let rng = Rng.create 3 in
  ignore (W.Behavior.next b rng ~global_hist:0 ~path:0);
  W.Behavior.reset b;
  Alcotest.(check bool) "restarts" true
    (W.Behavior.next b rng ~global_hist:0 ~path:0)

let test_behavior_correlated_deterministic () =
  let b = W.Behavior.correlated ~hist_bits:6 ~salt:0x2f ~noise:0.0 in
  let rng = Rng.create 4 in
  let h = 0b101101 in
  let a = W.Behavior.next b rng ~global_hist:h ~path:0 in
  let c = W.Behavior.next b rng ~global_hist:h ~path:0 in
  Alcotest.(check bool) "same history same outcome" a c

let test_behavior_path_dependent () =
  let b = W.Behavior.path_dependent ~outcomes:[| true; false |] ~noise:0.0 in
  let rng = Rng.create 5 in
  Alcotest.(check bool) "path 0" true (W.Behavior.next b rng ~global_hist:0 ~path:0);
  Alcotest.(check bool) "path 1" false (W.Behavior.next b rng ~global_hist:0 ~path:1);
  Alcotest.(check bool) "path wraps" true
    (W.Behavior.next b rng ~global_hist:0 ~path:2)

(* ------------------------------------------------------------------ *)
(* Trips *)

let test_trip_const () =
  let rng = Rng.create 6 in
  Alcotest.(check int) "const" 12 (W.Trip.sample (W.Trip.Const 12) rng);
  Alcotest.(check int) "const min 1" 1 (W.Trip.sample (W.Trip.Const 0) rng)

let test_trip_uniform_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = W.Trip.sample (W.Trip.Uniform (3, 9)) rng in
    Alcotest.(check bool) "in [3,9]" true (v >= 3 && v <= 9)
  done

let test_trip_geometric_mean () =
  let rng = Rng.create 8 in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + W.Trip.sample (W.Trip.Geometric 20.0) rng
  done;
  Alcotest.(check (float 1.0)) "mean ~20" 20.0
    (float_of_int !sum /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* Profiles *)

let test_profiles_validate () =
  List.iter
    (fun (p : W.Profile.t) ->
      match W.Profile.validate p with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s invalid: %s" p.name msg)
    W.Suites.all

let test_profile_counts () =
  Alcotest.(check int) "41 benchmarks" 41 (List.length W.Suites.all);
  Alcotest.(check int) "8 ExMatEx" 8
    (List.length (W.Suites.by_suite W.Suite.Exmatex));
  Alcotest.(check int) "11 SPEC OMP" 11
    (List.length (W.Suites.by_suite W.Suite.Spec_omp));
  Alcotest.(check int) "10 NPB" 10 (List.length (W.Suites.by_suite W.Suite.Npb));
  Alcotest.(check int) "12 SPEC INT" 12
    (List.length (W.Suites.by_suite W.Suite.Spec_int))

let test_profile_unique_names_seeds () =
  let names = W.Suites.names in
  let uniq = List.sort_uniq compare names in
  Alcotest.(check int) "unique names" (List.length names) (List.length uniq);
  let seeds = List.map (fun (p : W.Profile.t) -> p.seed) W.Suites.all in
  Alcotest.(check int) "unique seeds" (List.length seeds)
    (List.length (List.sort_uniq compare seeds))

let test_profile_find () =
  let p = W.Suites.find "LULESH" in
  Alcotest.(check bool) "suite" true (W.Suite.equal p.suite W.Suite.Exmatex);
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (W.Suites.find "doom3"))

let test_profile_validate_rejects () =
  let p = W.Suites.find "FT" in
  let bad = { p with serial_fraction = 1.5 } in
  Alcotest.(check bool) "bad fraction rejected" true
    (Result.is_error (W.Profile.validate bad));
  let bad2 = { p with static_kb = 1.0 } in
  Alcotest.(check bool) "hot code must fit" true
    (Result.is_error (W.Profile.validate bad2))

let test_profile_scale () =
  let p = W.Suites.find "FT" in
  let s = W.Profile.scale p 0.5 in
  Alcotest.(check int) "halved" (p.total_insts / 2) s.total_insts;
  let tiny = W.Profile.scale p 0.0001 in
  Alcotest.(check int) "floored" 50_000 tiny.total_insts

(* ------------------------------------------------------------------ *)
(* Codegen / layout *)

let program_of name = W.Codegen.generate (W.Suites.find name)

let test_layout_no_overlap () =
  let prog = program_of "CoMD" in
  let spans = ref [] in
  List.iter
    (fun proc -> P.iter_blocks proc (fun b ->
         spans := (b.P.addr, b.P.addr + P.block_bytes b) :: !spans))
    prog.P.procs;
  let sorted = List.sort compare !spans in
  let rec check = function
    | (_, e1) :: ((s2, _) :: _ as rest) ->
        Alcotest.(check bool) "no overlap" true (e1 <= s2);
        check rest
    | _ -> ()
  in
  check sorted

let test_layout_alignment () =
  let p = W.Suites.find "CoMD" in
  let prog = W.Codegen.generate p in
  List.iter
    (fun proc ->
      Alcotest.(check int) "aligned entry" 0 (proc.P.entry mod p.proc_align))
    prog.P.procs

let test_layout_static_size () =
  List.iter
    (fun name ->
      let p = W.Suites.find name in
      let prog = W.Codegen.generate p in
      let kb = float_of_int (P.static_bytes prog) /. 1024.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s static %.0fKB within 40%% of %.0fKB" name kb
           p.static_kb)
        true
        (kb > p.static_kb *. 0.6 && kb < p.static_kb *. 1.4))
    [ "CoMD"; "VPFFT"; "FT"; "gobmk" ]

let test_layout_cond_targets_patched () =
  let prog = program_of "FT" in
  List.iter
    (fun proc ->
      P.iter_blocks proc (fun b ->
          match b.P.term with
          | P.Cond c ->
              Alcotest.(check bool) "cond target set" true (c.P.ctarget > 0)
          | P.Jump j ->
              Alcotest.(check bool) "jump target set" true (j.P.jtarget > 0)
          | P.Fall | P.Callt _ | P.Ret | P.Sys -> ()))
    prog.P.procs

let test_loop_backedge_is_backward () =
  let prog = program_of "FT" in
  let rec walk_stmt = function
    | P.Loop l ->
        (match l.P.lback.P.term with
        | P.Cond c ->
            Alcotest.(check bool) "back edge jumps backward" true
              (c.P.ctarget < l.P.lback.P.addr)
        | P.Fall | P.Jump _ | P.Callt _ | P.Ret | P.Sys ->
            Alcotest.fail "loop back must be Cond");
        List.iter walk_stmt l.P.lbody
    | P.If i ->
        List.iter walk_stmt i.P.ithen;
        List.iter walk_stmt i.P.ielse
    | P.Basic _ | P.Call_site _ -> ()
  in
  Array.iter
    (fun k -> List.iter walk_stmt k.P.pbody)
    prog.P.parallel_kernels

let test_codegen_deterministic () =
  let p1 = program_of "CoMD" and p2 = program_of "CoMD" in
  Alcotest.(check int) "same static size" (P.static_bytes p1) (P.static_bytes p2);
  Alcotest.(check int) "same image end" p1.P.image_end p2.P.image_end

(* ------------------------------------------------------------------ *)
(* Executor *)

let run_counts ?(insts = 120_000) name =
  let p = W.Suites.find name in
  let ex = W.Executor.create ~insts p in
  let total = ref 0 and warm = ref 0 and serial = ref 0 and branches = ref 0 in
  W.Executor.run ex (fun i ->
      incr total;
      if i.Inst.warmup then incr warm
      else begin
        if Repro_isa.Section.equal i.Inst.section Repro_isa.Section.Serial then
          incr serial;
        if Inst.is_branch i then incr branches
      end);
  (!total, !warm, !serial, !branches)

let test_executor_budget () =
  let total, _, _, _ = run_counts ~insts:120_000 "CoMD" in
  Alcotest.(check bool)
    (Printf.sprintf "emitted %d within [60k, 150k]" total)
    true
    (total > 60_000 && total <= 150_000)

let test_executor_warmup_prefix () =
  let p = W.Suites.find "CoMD" in
  let ex = W.Executor.create ~insts:100_000 p in
  let seen_steady = ref false in
  W.Executor.run ex (fun i ->
      if i.Inst.warmup then
        Alcotest.(check bool) "warmup only before steady state" false
          !seen_steady
      else seen_steady := true)

let test_executor_deterministic_replay () =
  let p = W.Suites.find "botsspar" in
  let ex = W.Executor.create ~insts:80_000 p in
  let digest () =
    let h = ref 0 in
    W.Executor.run ex (fun i ->
        h := (!h * 31) + i.Inst.addr + Bool.to_int i.Inst.taken
             land 0xFFFFFF);
    !h
  in
  Alcotest.(check int) "replay identical" (digest ()) (digest ())

let test_executor_serial_fraction () =
  let p = W.Suites.find "CoEVP" in
  (* CoEVP: 35% of steady-state instructions in serial sections *)
  let ex = W.Executor.create ~insts:400_000 p in
  let serial = ref 0 and steady = ref 0 in
  W.Executor.run ex (fun i ->
      if not i.Inst.warmup then begin
        incr steady;
        if Repro_isa.Section.equal i.Inst.section Repro_isa.Section.Serial then
          incr serial
      end);
  let frac = float_of_int !serial /. float_of_int !steady in
  Alcotest.(check (float 0.08)) "serial fraction" 0.35 frac

let test_executor_branch_targets_consistent () =
  let p = W.Suites.find "FT" in
  let ex = W.Executor.create ~insts:100_000 p in
  W.Executor.run ex (fun i ->
      if Inst.is_branch i && i.Inst.taken && i.Inst.kind <> Inst.Syscall then
        Alcotest.(check bool) "taken branch has a target" true
          (i.Inst.target > 0))

let test_executor_returns_match_calls () =
  let p = W.Suites.find "CoMD" in
  let ex = W.Executor.create ~insts:150_000 p in
  let calls = ref 0 and rets = ref 0 in
  W.Executor.run ex (fun i ->
      match i.Inst.kind with
      | Inst.Call | Inst.Indirect_call -> incr calls
      | Inst.Return -> incr rets
      | Inst.Plain | Inst.Cond_branch | Inst.Uncond_direct
      | Inst.Indirect_branch | Inst.Syscall -> ());
  (* Cold-sweep returns make rets slightly exceed call-paired ones. *)
  Alcotest.(check bool)
    (Printf.sprintf "calls %d ~ rets %d" !calls !rets)
    true
    (abs (!calls - !rets) < !calls / 2 + 200)

let test_executor_addresses_in_image () =
  let p = W.Suites.find "swim" in
  let ex = W.Executor.create ~insts:80_000 p in
  let image_end = (W.Executor.program ex).P.image_end in
  W.Executor.run ex (fun i ->
      Alcotest.(check bool) "address within image" true
        (i.Inst.addr >= 0x400000 && i.Inst.addr < image_end))

(* ------------------------------------------------------------------ *)
(* Profile_io *)

let test_profile_io_roundtrip () =
  let p = W.Suites.find "FT" in
  match W.Profile_io.parse (W.Profile_io.to_string p) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok q ->
      Alcotest.(check string) "name" p.name q.name;
      Alcotest.(check int) "seed" p.seed q.seed;
      Alcotest.(check (float 1e-9)) "branch fraction"
        p.parallel.branch_fraction q.parallel.branch_fraction;
      Alcotest.(check bool) "trip" true
        (p.parallel.inner_trip = q.parallel.inner_trip);
      Alcotest.(check bool) "bias mix" true
        (List.length p.parallel.bias_mix = List.length q.parallel.bias_mix)

let test_profile_io_like_template () =
  let src =
    "name = my-app\nlike = FT\nserial_fraction = 0.02\n\
     parallel.inner_trip = const:99\n"
  in
  match W.Profile_io.parse src with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p ->
      Alcotest.(check string) "name" "my-app" p.name;
      Alcotest.(check (float 1e-9)) "override" 0.02 p.serial_fraction;
      Alcotest.(check bool) "trip" true (p.parallel.inner_trip = W.Trip.Const 99);
      (* inherited from FT *)
      Alcotest.(check (float 1e-9)) "inherited static" 90.0 p.static_kb

let test_profile_io_errors () =
  let check_err src frag =
    match W.Profile_io.parse src with
    | Ok _ -> Alcotest.failf "expected error for %S" src
    | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S (got %S)" src frag e)
          true
          (let n = String.length frag and h = String.length e in
           let rec go i = i + n <= h && (String.sub e i n = frag || go (i + 1)) in
           go 0)
  in
  check_err "nonsense line" "missing '='";
  check_err "frobnicate = 3" "unknown key";
  check_err "like = doom3" "unknown template";
  check_err "parallel.inner_trip = const:x" "bad const trip";
  check_err "serial_fraction = 2.0" "invalid profile"

let test_profile_io_comments_and_blanks () =
  match W.Profile_io.parse "# header\n\nname = x # trailing\nlike = FT\n" with
  | Ok p -> Alcotest.(check string) "name" "x" p.name
  | Error e -> Alcotest.failf "parse failed: %s" e

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_behavior_mean_rate_bounded =
  QCheck.Test.make ~name:"mean_rate within [0,1]" ~count:100
    QCheck.(pair (float_bound_inclusive 1.0) (int_range 1 8))
    (fun (p, k) ->
      let rng = Rng.create 77 in
      let mk =
        [ W.Behavior.bernoulli ~p;
          W.Behavior.path_dependent
            ~outcomes:(Array.init k (fun _ -> Rng.bool rng))
            ~noise:0.0;
          W.Behavior.correlated ~hist_bits:6 ~salt:12345 ~noise:0.1 ]
      in
      List.for_all
        (fun b ->
          let r = W.Behavior.mean_rate b in
          r >= 0.0 && r <= 1.0)
        mk)

let prop_trip_positive =
  QCheck.Test.make ~name:"trips always positive" ~count:200
    QCheck.(triple (int_range (-5) 100) (int_range 1 50) (float_bound_inclusive 100.0))
    (fun (c, u, g) ->
      let rng = Rng.create 99 in
      W.Trip.sample (W.Trip.Const c) rng >= 1
      && W.Trip.sample (W.Trip.Uniform (1, u)) rng >= 1
      && W.Trip.sample (W.Trip.Geometric (Float.max 1.0 g)) rng >= 1)

let prop_scale_monotone =
  QCheck.Test.make ~name:"Profile.scale monotone" ~count:50
    QCheck.(pair (float_range 0.01 2.0) (float_range 0.01 2.0))
    (fun (a, b) ->
      let p = W.Suites.find "FT" in
      let pa = W.Profile.scale p a and pb = W.Profile.scale p b in
      (a <= b) = (pa.total_insts <= pb.total_insts)
      || pa.total_insts = pb.total_insts)

let prop_executor_sections_tagged =
  QCheck.Test.make ~name:"sections tagged consistently" ~count:4
    (QCheck.make (QCheck.Gen.oneofl [ "FT"; "CoMD"; "gobmk"; "botsspar" ]))
    (fun name ->
      let p = W.Suites.find name in
      let ex = W.Executor.create ~insts:60_000 p in
      let ok = ref true in
      W.Executor.run ex (fun i ->
          if i.Inst.addr < 0x400000 then ok := false;
          if i.Inst.size < 1 || i.Inst.size > 14 then ok := false);
      !ok)

let qcheck tests = Qseed.all tests

(* ------------------------------------------------------------------ *)
(* Calibration regression net: every benchmark's measured steady-state
   branch fraction must stay within a band of its profile target, and
   every trace must contain both taken and not-taken conditionals. *)

let test_calibration_all_benchmarks () =
  List.iter
    (fun (p : W.Profile.t) ->
      let insts = 400_000 in
      let ex = W.Executor.create ~insts p in
      let steady = ref 0 and branches = ref 0 in
      let taken = ref 0 and not_taken = ref 0 in
      W.Executor.run ex (fun i ->
          if not i.Inst.warmup then begin
            incr steady;
            if Inst.is_branch i then incr branches;
            if i.Inst.kind = Inst.Cond_branch then
              if i.Inst.taken then incr taken else incr not_taken
          end);
      let measured = float_of_int !branches /. float_of_int !steady in
      let target =
        (p.serial_fraction *. p.serial.branch_fraction)
        +. ((1.0 -. p.serial_fraction) *. p.parallel.branch_fraction)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: branch fraction %.3f within 2.5x of target %.3f"
           p.name measured target)
        true
        (measured > target /. 2.5 && measured < target *. 2.5);
      Alcotest.(check bool)
        (Printf.sprintf "%s: both directions present" p.name)
        true
        (!taken > 0 && !not_taken > 0))
    W.Suites.all

let () =
  Alcotest.run "workload"
    [ ("behavior",
       [ Alcotest.test_case "bernoulli rate" `Quick test_behavior_bernoulli_rate;
         Alcotest.test_case "periodic" `Quick test_behavior_periodic;
         Alcotest.test_case "periodic reset" `Quick test_behavior_periodic_reset;
         Alcotest.test_case "correlated" `Quick
           test_behavior_correlated_deterministic;
         Alcotest.test_case "path dependent" `Quick test_behavior_path_dependent ]);
      ("trip",
       [ Alcotest.test_case "const" `Quick test_trip_const;
         Alcotest.test_case "uniform bounds" `Quick test_trip_uniform_bounds;
         Alcotest.test_case "geometric mean" `Quick test_trip_geometric_mean ]);
      ("profiles",
       [ Alcotest.test_case "all validate" `Quick test_profiles_validate;
         Alcotest.test_case "counts" `Quick test_profile_counts;
         Alcotest.test_case "unique names/seeds" `Quick
           test_profile_unique_names_seeds;
         Alcotest.test_case "find" `Quick test_profile_find;
         Alcotest.test_case "validate rejects" `Quick test_profile_validate_rejects;
         Alcotest.test_case "scale" `Quick test_profile_scale ]);
      ("codegen",
       [ Alcotest.test_case "no overlap" `Quick test_layout_no_overlap;
         Alcotest.test_case "alignment" `Quick test_layout_alignment;
         Alcotest.test_case "static size" `Quick test_layout_static_size;
         Alcotest.test_case "targets patched" `Quick
           test_layout_cond_targets_patched;
         Alcotest.test_case "backward back-edges" `Quick
           test_loop_backedge_is_backward;
         Alcotest.test_case "deterministic" `Quick test_codegen_deterministic ]);
      ("calibration",
       [ Alcotest.test_case "all 41 benchmarks in band" `Slow
           test_calibration_all_benchmarks ]);
      ("profile_io",
       [ Alcotest.test_case "roundtrip" `Quick test_profile_io_roundtrip;
         Alcotest.test_case "like template" `Quick test_profile_io_like_template;
         Alcotest.test_case "errors" `Quick test_profile_io_errors;
         Alcotest.test_case "comments" `Quick test_profile_io_comments_and_blanks ]);
      ("properties",
       qcheck
         [ prop_behavior_mean_rate_bounded; prop_trip_positive;
           prop_scale_monotone; prop_executor_sections_tagged ]);
      ("executor",
       [ Alcotest.test_case "budget" `Quick test_executor_budget;
         Alcotest.test_case "warmup prefix" `Quick test_executor_warmup_prefix;
         Alcotest.test_case "deterministic replay" `Quick
           test_executor_deterministic_replay;
         Alcotest.test_case "serial fraction" `Quick test_executor_serial_fraction;
         Alcotest.test_case "taken targets" `Quick
           test_executor_branch_targets_consistent;
         Alcotest.test_case "calls vs returns" `Quick
           test_executor_returns_match_calls;
         Alcotest.test_case "addresses in image" `Quick
           test_executor_addresses_in_image ]) ]
