(* Golden-output regression tests: Report.run_to_string at scale 0.05
   for fig1, tab1, fig5, fig6, fig8, fig9, tab2, tab3 and fig10,
   pinned against committed expect-files, and required to render
   identically through every execution path — sequential, parallel,
   uncached and disk-cached. Regenerate an expect file after an
   intentional model change with:

     dune exec bin/repro_cli.exe -- experiment ID --scale 0.05 \
       > test/golden/ID.expected

   The sampled expect-file (fig8 under representative-region sampling,
   "≈" markers and the region-plan appendix included) regenerates with:

     dune exec bin/repro_cli.exe -- experiment fig8 --scale 0.05 \
       --sample 0.25 --no-cache > test/golden/fig8.sampled25.expected *)

module C = Repro_core

let scale = 0.05

let golden id =
  let path =
    Filename.concat "golden" (C.Experiment.to_string id ^ ".expected")
  in
  In_channel.with_open_bin path In_channel.input_all

let cache_dir = "golden_cache_dir"

let with_disk_cache f =
  C.Cache.set_dir cache_dir;
  C.Cache.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      C.Experiment.clear_cache ~disk:true ();
      C.Cache.set_enabled false;
      (try Sys.rmdir cache_dir with Sys_error _ -> ()))
    f

let check_all_paths id () =
  let expect = golden id in
  let run ~jobs =
    C.Experiment.clear_cache ();
    C.Report.run_to_string ~scale ~jobs id
  in
  C.Cache.set_enabled false;
  Alcotest.(check string) "sequential, uncached" expect (run ~jobs:1);
  Alcotest.(check string) "parallel, uncached" expect (run ~jobs:4);
  with_disk_cache (fun () ->
      Alcotest.(check string) "parallel, cold cache" expect (run ~jobs:4);
      let hits_before = (C.Engine.stats ()).cache_hits in
      Alcotest.(check string) "sequential, warm cache" expect (run ~jobs:1);
      (* fig1/tab1 read the disk cache; trace-sim experiments like
         fig8 never consult it and must not pretend to. *)
      let served = (C.Engine.stats ()).cache_hits - hits_before in
      match id with
      | C.Experiment.Fig1 | C.Experiment.Tab1 | C.Experiment.Fig10
      | C.Experiment.Fig10p ->
          Alcotest.(check bool) "warm run served from disk" true (served > 0)
      | _ -> Alcotest.(check int) "no cache traffic" 0 served)

(* Sampled rendering is pinned too: fraction 0.25 exercises the gated
   extrapolation path end to end — "≈" cell markers, suite-mean
   confidence intervals and the region-plan appendix — and must render
   identically sequential and parallel. *)
let check_sampled id () =
  let expect =
    let path =
      Filename.concat "golden"
        (C.Experiment.to_string id ^ ".sampled25.expected")
    in
    In_channel.with_open_bin path In_channel.input_all
  in
  C.Experiment.set_sampled (Some 0.25);
  Fun.protect
    ~finally:(fun () -> C.Experiment.set_sampled None)
    (fun () ->
      let run ~jobs =
        C.Experiment.clear_cache ();
        C.Report.run_to_string ~scale ~jobs id
      in
      C.Cache.set_enabled false;
      Alcotest.(check string) "sequential, uncached" expect (run ~jobs:1);
      Alcotest.(check string) "parallel, uncached" expect (run ~jobs:4);
      Alcotest.(check bool) "differs from the unsampled expect-file" true
        (not (String.equal expect (golden id))))

let () =
  Alcotest.run "golden"
    [ ("expect",
       List.map
         (fun id ->
           Alcotest.test_case (C.Experiment.to_string id) `Slow
             (check_all_paths id))
         C.Experiment.
           [ Fig1; Tab1; Fig5; Fig6; Fig8; Fig8p; Fig9; Tab2; Tab3; Fig10;
             Fig10p ]);
      ("sampled",
       [ Alcotest.test_case "fig8 @ 0.25" `Slow
           (check_sampled C.Experiment.Fig8) ]) ]
