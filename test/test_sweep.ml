(* Differential tests for the fused multi-configuration sweep kernels.

   The contract under test: Repro_analysis.{Bp_sweep, Btb_sweep,
   Icache_sweep} over N configurations and one source are
   bit-identical — every counter and every derived float — to N
   independent per-configuration {Bp_sim, Btb_sim, Icache_sim} runs
   over the same source, for both source forms (streaming trace and
   packed capture), and invariant under splitting the configuration
   axis into sub-ranges (the property Experiment's sweep_map relies
   on when it shards configurations across Engine domains). *)

module I = Repro_isa.Inst
module S = Repro_isa.Section
module Trace = Repro_isa.Trace
module P = Repro_isa.Packed_trace
module F = Repro_frontend
module A = Repro_analysis

let scopes =
  A.Branch_mix.[ Total; Only S.Serial; Only S.Parallel ]

(* Exact equality that also accepts nan = nan: the sweeps must
   reproduce the unfused floats bit for bit, empty scopes included. *)
let feq a b = Float.compare a b = 0

(* ------------------------------------------------------------------ *)
(* Random instruction streams, in the style of test_packed. *)

let kinds =
  [| I.Plain; I.Cond_branch; I.Uncond_direct; I.Indirect_branch; I.Call;
     I.Indirect_call; I.Return; I.Syscall |]

let inst_gen =
  QCheck.Gen.(
    let* k = int_bound (Array.length kinds - 1) in
    let kind = kinds.(k) in
    let* addr = int_bound 0xFFFFF in
    let* size = int_range 1 15 in
    let* taken = if kind = I.Plain then return false else bool in
    let* target = if taken then int_bound 0xFFFFF else return 0 in
    let* parallel = bool in
    let* warmup = frequencyl [ (3, false); (1, true) ] in
    return
      (I.make ~kind ~taken ~target
         ~section:(if parallel then S.Parallel else S.Serial)
         ~warmup ~addr ~size ()))

(* Streams long enough to fill tables and evict cache lines. *)
let stream_gen = QCheck.Gen.(list_size (int_range 0 600) inst_gen)

let stream_arb =
  QCheck.make
    QCheck.Gen.(pair stream_gen bool)
    ~print:(fun (l, packed) ->
      Printf.sprintf "<%d insts, %s>" (List.length l)
        (if packed then "packed" else "stream"))

let source_of (insts, packed) =
  let tr = Trace.of_list insts in
  if packed then A.Tool.Source.of_packed (P.of_trace tr)
  else A.Tool.Source.of_trace tr

(* ------------------------------------------------------------------ *)
(* Branch predictors: all nine Zoo configurations plus the statics. *)

let bp_specs () =
  Array.of_list
    (List.map A.Bp_sweep.of_name F.Zoo.all_names
    @ List.map A.Bp_sweep.of_static
        A.Bp_sim.[ Always_taken; Always_not_taken; Btfn ])

let bp_sims () =
  List.map (fun n -> A.Bp_sim.create (F.Zoo.by_name n)) F.Zoo.all_names
  @ List.map A.Bp_sim.create_static
      A.Bp_sim.[ Always_taken; Always_not_taken; Btfn ]

let bp_agrees (fused : A.Bp_sweep.t) (sim : A.Bp_sim.t) =
  String.equal (A.Bp_sweep.predictor_name fused) (A.Bp_sim.predictor_name sim)
  && List.for_all
       (fun scope ->
         A.Bp_sweep.insts fused scope = A.Bp_sim.insts sim scope
         && A.Bp_sweep.conditional_branches fused scope
            = A.Bp_sim.conditional_branches sim scope
         && A.Bp_sweep.mispredictions fused scope
            = A.Bp_sim.mispredictions sim scope
         && feq (A.Bp_sweep.mpki fused scope) (A.Bp_sim.mpki sim scope)
         && feq
              (A.Bp_sweep.misprediction_rate fused scope)
              (A.Bp_sim.misprediction_rate sim scope)
         && List.for_all
              (fun c ->
                feq
                  (A.Bp_sweep.mpki_by_cause fused scope c)
                  (A.Bp_sim.mpki_by_cause sim scope c))
              A.Bp_sim.causes)
       scopes

let prop_bp_fused =
  QCheck.Test.make ~name:"Bp_sweep == per-config Bp_sim" ~count:60 stream_arb
    (fun input ->
      let fused = A.Bp_sweep.run (source_of input) (bp_specs ()) in
      let sims = bp_sims () in
      A.Bp_sim.run_all (source_of input) sims;
      List.for_all2 bp_agrees (Array.to_list fused) sims)

(* ------------------------------------------------------------------ *)
(* BTB: mixed geometries, including configurations sharing a set
   count (identical (set, tag) decomposition) and direct-mapped vs
   highly associative extremes. *)

let btb_configs = [| (16, 1); (16, 2); (32, 2); (64, 2); (64, 8); (256, 4) |]

let btb_agrees (fused : A.Btb_sweep.t) (sim : A.Btb_sim.t) =
  List.for_all
    (fun scope ->
      A.Btb_sweep.insts fused scope = A.Btb_sim.insts sim scope
      && A.Btb_sweep.taken_branches fused scope
         = A.Btb_sim.taken_branches sim scope
      && A.Btb_sweep.misses fused scope = A.Btb_sim.misses sim scope
      && feq (A.Btb_sweep.mpki fused scope) (A.Btb_sim.mpki sim scope)
      && feq (A.Btb_sweep.miss_rate fused scope) (A.Btb_sim.miss_rate sim scope))
    scopes

let prop_btb_fused =
  QCheck.Test.make ~name:"Btb_sweep == per-config Btb_sim" ~count:100
    stream_arb (fun input ->
      let fused = A.Btb_sweep.run (source_of input) btb_configs in
      let sims =
        Array.to_list
          (Array.map (fun (entries, assoc) -> A.Btb_sim.create ~entries ~assoc)
             btb_configs)
      in
      A.Btb_sim.run_all (source_of input) sims;
      List.for_all2 btb_agrees (Array.to_list fused) sims)

(* ------------------------------------------------------------------ *)
(* I-cache: configurations sharing a line size (one group, shared
   decision) and differing ones (independent groups), small enough
   that the random streams cause evictions. *)

let icache_geometries =
  [| (1024, 32, 1); (1024, 32, 2); (2048, 32, 4); (1024, 64, 2);
     (4096, 64, 4); (2048, 128, 2) |]

let icache_configs = Array.map A.Icache_sweep.cfg icache_geometries

(* The same geometries under perceptron reuse/bypass replacement, and
   a mixed sweep interleaving both policies — including the same
   geometry under each policy inside one line-size group, so a shared
   group decision feeds caches whose replacement state disagrees. *)
let icache_preuse_configs =
  Array.map
    (A.Icache_sweep.cfg ~policy:F.Replacement.Preuse)
    icache_geometries

let icache_mixed_configs =
  [| A.Icache_sweep.cfg (1024, 32, 2);
     A.Icache_sweep.cfg ~policy:F.Replacement.Preuse (1024, 32, 2);
     A.Icache_sweep.cfg ~policy:F.Replacement.Preuse (2048, 32, 4);
     A.Icache_sweep.cfg (4096, 64, 4);
     A.Icache_sweep.cfg ~policy:F.Replacement.Preuse (1024, 64, 2);
     A.Icache_sweep.cfg ~policy:F.Replacement.Preuse (2048, 128, 2) |]

let icache_agrees (fused : A.Icache_sweep.t) (sim : A.Icache_sim.t) =
  List.for_all
    (fun scope ->
      A.Icache_sweep.insts fused scope = A.Icache_sim.insts sim scope
      && A.Icache_sweep.misses fused scope = A.Icache_sim.misses sim scope
      && feq (A.Icache_sweep.mpki fused scope) (A.Icache_sim.mpki sim scope))
    scopes
  && A.Icache_sweep.accesses fused = A.Icache_sim.accesses sim
  && F.Icache.misses (A.Icache_sweep.cache fused)
     = F.Icache.misses (A.Icache_sim.cache sim)
  && F.Icache.prefetches (A.Icache_sweep.cache fused)
     = F.Icache.prefetches (A.Icache_sim.cache sim)
  && F.Icache.useful_prefetches (A.Icache_sweep.cache fused)
     = F.Icache.useful_prefetches (A.Icache_sim.cache sim)
  && feq (A.Icache_sweep.usefulness fused) (A.Icache_sim.usefulness sim)

let icache_prop ~configs ~next_line_prefetch input =
  let fused = A.Icache_sweep.run ~next_line_prefetch (source_of input) configs in
  let sims =
    Array.to_list
      (Array.map
         (fun (c : A.Icache_sweep.config) ->
           A.Icache_sim.create ~next_line_prefetch ~policy:c.policy
             ~size_bytes:c.size_bytes ~line_bytes:c.line_bytes ~assoc:c.assoc
             ())
         configs)
  in
  A.Icache_sim.run_all (source_of input) sims;
  List.for_all2 icache_agrees (Array.to_list fused) sims

let prop_icache_fused =
  QCheck.Test.make ~name:"Icache_sweep == per-config Icache_sim" ~count:80
    stream_arb
    (icache_prop ~configs:icache_configs ~next_line_prefetch:false)

let prop_icache_fused_prefetch =
  QCheck.Test.make
    ~name:"Icache_sweep == per-config Icache_sim (next-line prefetch)"
    ~count:80 stream_arb
    (icache_prop ~configs:icache_configs ~next_line_prefetch:true)

let prop_icache_fused_preuse =
  QCheck.Test.make ~name:"Icache_sweep == per-config Icache_sim (preuse)"
    ~count:80 stream_arb
    (icache_prop ~configs:icache_preuse_configs ~next_line_prefetch:false)

let prop_icache_fused_preuse_prefetch =
  QCheck.Test.make
    ~name:"Icache_sweep == per-config Icache_sim (preuse, next-line prefetch)"
    ~count:80 stream_arb
    (icache_prop ~configs:icache_preuse_configs ~next_line_prefetch:true)

let prop_icache_fused_mixed =
  QCheck.Test.make
    ~name:"Icache_sweep == per-config Icache_sim (mixed policies)" ~count:80
    stream_arb
    (icache_prop ~configs:icache_mixed_configs ~next_line_prefetch:false)

let prop_icache_fused_mixed_prefetch =
  QCheck.Test.make
    ~name:
      "Icache_sweep == per-config Icache_sim (mixed policies, next-line \
       prefetch)"
    ~count:80 stream_arb
    (icache_prop ~configs:icache_mixed_configs ~next_line_prefetch:true)

(* ------------------------------------------------------------------ *)
(* Config-axis splitting: a sweep over any sub-range must equal the
   corresponding slice of the whole sweep — what sweep_map's
   stitching assumes when sharding configurations across domains. *)

let split_arb =
  QCheck.make
    QCheck.Gen.(triple stream_gen bool (int_range 1 5))
    ~print:(fun (l, packed, cut) ->
      Printf.sprintf "<%d insts, %s, cut=%d>" (List.length l)
        (if packed then "packed" else "stream")
        cut)

let prop_split_ranges =
  QCheck.Test.make ~name:"sub-range sweep == slice of whole sweep" ~count:40
    split_arb (fun (insts, packed, cut) ->
      let input = (insts, packed) in
      let whole = A.Icache_sweep.run (source_of input) icache_mixed_configs in
      let n = Array.length icache_mixed_configs in
      let cut = min cut (n - 1) in
      let part lo len =
        A.Icache_sweep.run (source_of input)
          (Array.sub icache_mixed_configs lo len)
      in
      let parts = Array.append (part 0 cut) (part cut (n - cut)) in
      Array.for_all2
        (fun (a : A.Icache_sweep.t) b ->
          List.for_all
            (fun scope ->
              A.Icache_sweep.insts a scope = A.Icache_sweep.insts b scope
              && A.Icache_sweep.misses a scope = A.Icache_sweep.misses b scope)
            scopes
          && A.Icache_sweep.accesses a = A.Icache_sweep.accesses b
          && feq (A.Icache_sweep.usefulness a) (A.Icache_sweep.usefulness b))
        whole parts)

let () =
  Alcotest.run "sweep"
    [ ("bp", Qseed.all [ prop_bp_fused ]);
      ("btb", Qseed.all [ prop_btb_fused ]);
      ("icache",
       Qseed.all
         [ prop_icache_fused; prop_icache_fused_prefetch;
           prop_icache_fused_preuse; prop_icache_fused_preuse_prefetch;
           prop_icache_fused_mixed; prop_icache_fused_mixed_prefetch;
           prop_split_ranges ])
    ]
