(* Supervised execution under fault injection: the Faults registry
   itself, Engine retry/timeout/classification, crash-safe cache
   recovery (torn writes, quarantine), the resume journal, and the
   end-to-end property the whole layer exists for — a fault-torture
   run either completes with bit-identical tables or reports a
   structured, visible hole, never silently wrong data. *)

module Faults = Repro_util.Faults
module C = Repro_core
module W = Repro_workload

(* Every test that flips process-global supervision state restores it
   on the way out, including on failure: later tests (and the other
   test binaries' idioms) assume a quiet default. *)
let protected f =
  Fun.protect
    ~finally:(fun () ->
      Faults.configure None;
      C.Engine.set_retries 2;
      C.Engine.set_timeout_ms None;
      C.Experiment.set_strict false;
      C.Experiment.set_sampled None)
    f

let with_temp_cache f =
  let dir =
    Printf.sprintf "_faults_test_cache_%d_%d" (Unix.getpid ()) (Random.int 1_000_000)
  in
  let was_dir = C.Cache.dir () in
  let was_enabled = C.Cache.enabled () in
  C.Cache.set_dir dir;
  C.Cache.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      C.Cache.clear ();
      (try Sys.rmdir (Filename.concat dir "journal") with Sys_error _ -> ());
      (try Sys.rmdir dir with Sys_error _ -> ());
      C.Cache.set_dir was_dir;
      C.Cache.set_enabled was_enabled)
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Faults registry *)

let test_faults_disabled () =
  protected (fun () ->
      Faults.configure None;
      Alcotest.(check bool) "inactive" false (Faults.active ());
      Alcotest.(check bool) "never fires" false (Faults.fires "engine.task"))

let test_faults_site_scoping () =
  protected (fun () ->
      Faults.configure (Some "cache.read:1.0:7");
      Alcotest.(check bool) "active" true (Faults.active ());
      Alcotest.(check bool) "scoped site fires" true (Faults.fires "cache.read");
      Alcotest.(check bool) "other site quiet" false
        (Faults.fires "engine.task");
      Faults.configure (Some "all:1.0:7");
      Alcotest.(check bool) "all covers every site" true
        (List.for_all Faults.fires Faults.sites))

let test_faults_malformed_entries () =
  protected (fun () ->
      (* Unknown site, bad probability, bad seed, wrong arity: each
         warns (once) and is dropped; the config ends up inert. *)
      Faults.configure (Some "nonsense.site:0.5:1,engine.task:zap:1,a:b");
      Alcotest.(check bool) "all entries dropped" false (Faults.active ());
      Alcotest.(check (option string)) "no spec survives" None (Faults.spec ());
      (* Out-of-range probability is clamped, not dropped. *)
      Faults.configure (Some "engine.task:7.5:3");
      Alcotest.(check (option string)) "clamped to 1"
        (Some "engine.task:1:3") (Faults.spec ());
      Alcotest.(check bool) "prob 1 always fires" true
        (Faults.fires "engine.task"))

let test_faults_deterministic () =
  protected (fun () ->
      let sequence () =
        Faults.configure (Some "engine.task:0.3:1234");
        List.init 200 (fun _ -> Faults.fires "engine.task")
      in
      let a = sequence () and b = sequence () in
      Alcotest.(check (list bool)) "same seed, same draws" a b;
      Alcotest.(check bool) "some fired" true (List.mem true a);
      Alcotest.(check bool) "some did not" true (List.mem false a);
      Faults.configure (Some "engine.task:0.3:99");
      let c = List.init 200 (fun _ -> Faults.fires "engine.task") in
      Alcotest.(check bool) "different seed, different draws" true (a <> c))

(* ------------------------------------------------------------------ *)
(* Engine supervision *)

let test_retry_absorbs_transient () =
  protected (fun () ->
      (* 30% failure per attempt, 8 retries: the chance any of the 20
         tasks exhausts its budget is ~20 * 0.3^9 < 0.04%. *)
      Faults.configure (Some "engine.task:0.3:42");
      let s0 = C.Engine.stats () in
      let xs = List.init 20 Fun.id in
      let rs =
        C.Engine.map_result ~jobs:4
          ~policy:{ retries = 8; backoff_ms = 0.0; timeout_ms = None }
          (fun x -> x * x)
          xs
      in
      let s1 = C.Engine.stats () in
      Alcotest.(check (list int)) "all survived, values exact"
        (List.map (fun x -> x * x) xs)
        (List.map (function Ok v -> v | Error _ -> -1) rs);
      Alcotest.(check bool) "retries actually happened" true
        (s1.tasks_retried > s0.tasks_retried))

let test_retry_exhaustion_is_structured () =
  protected (fun () ->
      Faults.configure (Some "engine.task:1.0:1");
      let s0 = C.Engine.stats () in
      let rs =
        C.Engine.map_result ~jobs:1
          ~policy:{ retries = 3; backoff_ms = 0.0; timeout_ms = None }
          (fun x -> x)
          [ 1 ]
      in
      let s1 = C.Engine.stats () in
      (match rs with
      | [ Error fl ] ->
          Alcotest.(check bool) "transient class" true
            (fl.C.Failure.klass = C.Failure.Transient);
          Alcotest.(check int) "all four attempts recorded" 4
            fl.C.Failure.attempts;
          Alcotest.(check string) "site" "engine.task" fl.C.Failure.site
      | _ -> Alcotest.fail "expected exactly one Error");
      Alcotest.(check int) "three retries counted" 3
        (s1.tasks_retried - s0.tasks_retried);
      Alcotest.(check int) "one failure counted" 1
        (s1.tasks_failed - s0.tasks_failed))

let test_timeout_is_detected_not_retried () =
  protected (fun () ->
      let s0 = C.Engine.stats () in
      let rs =
        C.Engine.map_result ~jobs:1
          ~policy:{ retries = 5; backoff_ms = 0.0; timeout_ms = Some 1 }
          (fun () -> Unix.sleepf 0.02)
          [ () ]
      in
      let s1 = C.Engine.stats () in
      (match rs with
      | [ Error fl ] ->
          Alcotest.(check bool) "timeout class" true
            (fl.C.Failure.klass = C.Failure.Timeout)
      | [ Ok () ] -> Alcotest.fail "overrunning result not discarded"
      | _ -> Alcotest.fail "expected one result");
      Alcotest.(check int) "counted as timed out" 1
        (s1.tasks_timed_out - s0.tasks_timed_out);
      Alcotest.(check int) "deterministic slowness is never retried" 0
        (s1.tasks_retried - s0.tasks_retried))

let test_map_raises_original_after_retries () =
  protected (fun () ->
      C.Engine.set_retries 2;
      let boom = Stdlib.Failure "boom" in
      (* Stdlib.Failure classifies Fatal: no retry, first raise wins. *)
      (match C.Engine.map ~jobs:2 (fun _ -> raise boom) [ 1; 2; 3 ] with
      | _ -> Alcotest.fail "expected the task exception"
      | exception Stdlib.Failure m ->
          Alcotest.(check string) "original exception" "boom" m))

let qcheck_supervised_identity =
  QCheck.Test.make
    ~name:"map_result under faults: every Ok exact, every Error transient"
    ~count:30
    QCheck.(triple (int_range 1 4) (int_range 0 10000) (float_range 0.0 0.6))
    (fun (jobs, seed, prob) ->
      protected (fun () ->
          Faults.configure
            (Some (Printf.sprintf "engine.task:%f:%d" prob seed));
          let xs = List.init 12 Fun.id in
          let rs =
            C.Engine.map_result ~jobs
              ~policy:{ retries = 8; backoff_ms = 0.0; timeout_ms = None }
              (fun x -> (x * 7919) mod 1009)
              xs
          in
          List.for_all2
            (fun x r ->
              match r with
              | Ok v -> v = (x * 7919) mod 1009
              | Error fl -> fl.C.Failure.klass = C.Failure.Transient)
            xs rs))

(* ------------------------------------------------------------------ *)
(* Crash-safe cache *)

let profile = W.Suites.find "FT"
let cache_key () = C.Cache.key ~profile ~scale:0.33 ~kind:"faults-test"

let test_cache_roundtrip_heals () =
  protected (fun () ->
      with_temp_cache (fun _dir ->
          let k = cache_key () in
          C.Cache.store k [ 1; 2; 3 ];
          Alcotest.(check (option (list int))) "clean roundtrip"
            (Some [ 1; 2; 3 ]) (C.Cache.find k)))

let test_cache_torn_write_quarantined () =
  protected (fun () ->
      with_temp_cache (fun _dir ->
          let k = cache_key () in
          Faults.configure (Some "cache.write.torn:1.0:1");
          C.Cache.store k [ 1; 2; 3 ];
          Faults.configure None;
          Alcotest.(check bool) "torn entry landed" true
            (Sys.file_exists (C.Cache.path k));
          Alcotest.(check (option (list int))) "torn entry reads as miss"
            None (C.Cache.find k);
          Alcotest.(check int) "and is quarantined" 1 (C.Cache.quarantined ());
          Alcotest.(check int) "not counted as an entry" 0 (C.Cache.entries ());
          (* Self-heals: the next clean store wins. *)
          C.Cache.store k [ 4; 5 ];
          Alcotest.(check (option (list int))) "healed"
            (Some [ 4; 5 ]) (C.Cache.find k)))

let test_cache_write_fault_drops_store () =
  protected (fun () ->
      with_temp_cache (fun _dir ->
          let k = cache_key () in
          Faults.configure (Some "cache.write:1.0:1");
          C.Cache.store k [ 9 ];
          Faults.configure None;
          Alcotest.(check int) "nothing written" 0 (C.Cache.entries ());
          Alcotest.(check (option (list int))) "miss" None (C.Cache.find k)))

let test_cache_read_fault_is_plain_miss () =
  protected (fun () ->
      with_temp_cache (fun _dir ->
          let k = cache_key () in
          C.Cache.store k [ 7 ];
          Faults.configure (Some "cache.read:1.0:1");
          Alcotest.(check (option (list int))) "simulated I/O error = miss"
            None (C.Cache.find k);
          Faults.configure None;
          Alcotest.(check (option (list int))) "entry untouched"
            (Some [ 7 ]) (C.Cache.find k);
          Alcotest.(check int) "nothing quarantined" 0
            (C.Cache.quarantined ())))

let test_cache_decode_fault_quarantines () =
  protected (fun () ->
      with_temp_cache (fun _dir ->
          let k = cache_key () in
          C.Cache.store k [ 7 ];
          Faults.configure (Some "cache.decode:1.0:1");
          Alcotest.(check (option (list int))) "simulated corruption = miss"
            None (C.Cache.find k);
          Faults.configure None;
          Alcotest.(check int) "quarantined aside" 1 (C.Cache.quarantined ());
          Alcotest.(check (option (list int))) "gone afterwards" None
            (C.Cache.find k)))

let test_cache_handcrafted_corruption () =
  protected (fun () ->
      with_temp_cache (fun _dir ->
          let k = cache_key () in
          (* Structurally valid entry (magic, digests, trailer all
             consistent) whose payload is not marshalled data: the
             narrowed decoder must treat Marshal's own failure as
             corruption — quarantine, not an exception — while any
             other [Failure] would propagate. *)
          C.Cache.store k [ 0 ] (* creates the directory *);
          let payload = String.make 64 'x' in
          let hex = Digest.to_hex (Digest.string payload) in
          let entry = "REPROCACHE2\n" ^ hex ^ "\n" ^ payload ^ "\nREPROEND" ^ hex in
          Out_channel.with_open_bin (C.Cache.path k) (fun oc ->
              Out_channel.output_string oc entry);
          Alcotest.(check (option (list int))) "unmarshalable = miss" None
            (C.Cache.find k);
          Alcotest.(check int) "quarantined" 1 (C.Cache.quarantined ())))

let qcheck_cache_truncation_never_wrong =
  QCheck.Test.make
    ~name:"cache: any truncation of an entry reads as miss, never as data"
    ~count:40
    QCheck.(int_range 0 200)
    (fun cut ->
      protected (fun () ->
          with_temp_cache (fun _dir ->
              let k = cache_key () in
              C.Cache.store k [ 3; 1; 4; 1; 5 ];
              let full =
                In_channel.with_open_bin (C.Cache.path k) In_channel.input_all
              in
              let cut = min cut (String.length full - 1) in
              Out_channel.with_open_bin (C.Cache.path k) (fun oc ->
                  Out_channel.output_string oc (String.sub full 0 cut));
              match (C.Cache.find k : int list option) with
              | None -> true
              | Some v -> v = [ 3; 1; 4; 1; 5 ] (* only the full entry decodes *))))

(* ------------------------------------------------------------------ *)
(* Resume journal *)

let test_journal_roundtrip () =
  protected (fun () ->
      with_temp_cache (fun _dir ->
          let records =
            [ ("fig1", "plain"); ("fig2", "with\nnewline\x00and nul");
              ("fig3", String.make 1000 '\xff') ]
          in
          (match C.Journal.open_run ~name:"t" ~fingerprint:"fp1" with
          | None -> Alcotest.fail "journal unavailable"
          | Some (j, recovered) ->
              Alcotest.(check int) "fresh journal" 0 (List.length recovered);
              List.iter
                (fun (step, payload) -> C.Journal.append j ~step ~payload)
                records;
              C.Journal.close j);
          (match C.Journal.open_run ~name:"t" ~fingerprint:"fp1" with
          | None -> Alcotest.fail "journal unavailable on reopen"
          | Some (j, recovered) ->
              Alcotest.(check (list (pair string string)))
                "every record back, in order" records recovered;
              C.Journal.close j);
          (* A different fingerprint must discard the whole file. *)
          match C.Journal.open_run ~name:"t" ~fingerprint:"fp2" with
          | None -> Alcotest.fail "journal unavailable on mismatch"
          | Some (j, recovered) ->
              Alcotest.(check int) "stale journal discarded" 0
                (List.length recovered);
              C.Journal.finish j))

let test_journal_finish_deletes () =
  protected (fun () ->
      with_temp_cache (fun _dir ->
          match C.Journal.open_run ~name:"t" ~fingerprint:"fp" with
          | None -> Alcotest.fail "journal unavailable"
          | Some (j, _) ->
              C.Journal.append j ~step:"s" ~payload:"p";
              let path = C.Journal.path j in
              Alcotest.(check bool) "file exists" true (Sys.file_exists path);
              C.Journal.finish j;
              Alcotest.(check bool) "finish removes it" false
                (Sys.file_exists path)))

let test_journal_torn_tail_truncated () =
  protected (fun () ->
      with_temp_cache (fun _dir ->
          (match C.Journal.open_run ~name:"t" ~fingerprint:"fp" with
          | None -> Alcotest.fail "journal unavailable"
          | Some (j, _) ->
              C.Journal.append j ~step:"a" ~payload:"1";
              C.Journal.append j ~step:"b" ~payload:"2";
              (* Crash mid-append: half a record reaches the disk. *)
              Faults.configure (Some "journal.torn:1.0:1");
              C.Journal.append j ~step:"c" ~payload:"3";
              Faults.configure None;
              C.Journal.close j);
          match C.Journal.open_run ~name:"t" ~fingerprint:"fp" with
          | None -> Alcotest.fail "journal unavailable on reopen"
          | Some (j, recovered) ->
              Alcotest.(check (list (pair string string)))
                "torn tail dropped, completed prefix kept"
                [ ("a", "1"); ("b", "2") ]
                recovered;
              (* The truncation healed the file: appending works. *)
              C.Journal.append j ~step:"c" ~payload:"3";
              C.Journal.close j;
              (match C.Journal.open_run ~name:"t" ~fingerprint:"fp" with
              | Some (j, recovered) ->
                  Alcotest.(check int) "append after heal" 3
                    (List.length recovered);
                  C.Journal.finish j
              | None -> Alcotest.fail "journal unavailable after heal")))

let test_journal_append_fault_drops_record () =
  protected (fun () ->
      with_temp_cache (fun _dir ->
          (match C.Journal.open_run ~name:"t" ~fingerprint:"fp" with
          | None -> Alcotest.fail "journal unavailable"
          | Some (j, _) ->
              Faults.configure (Some "journal.append:1.0:1");
              C.Journal.append j ~step:"lost" ~payload:"x";
              Faults.configure None;
              C.Journal.append j ~step:"kept" ~payload:"y";
              C.Journal.close j);
          match C.Journal.open_run ~name:"t" ~fingerprint:"fp" with
          | None -> Alcotest.fail "journal unavailable on reopen"
          | Some (j, recovered) ->
              Alcotest.(check (list (pair string string)))
                "dropped append = that step reruns" [ ("kept", "y") ] recovered;
              C.Journal.finish j))

let qcheck_journal_truncation_prefix =
  QCheck.Test.make
    ~name:"journal: any byte-level truncation recovers a record prefix"
    ~count:40
    QCheck.(int_range 0 600)
    (fun cut ->
      protected (fun () ->
          with_temp_cache (fun _dir ->
              let records =
                List.init 5 (fun i ->
                    (Printf.sprintf "step%d" i, String.make (17 * (i + 1)) 'q'))
              in
              (match C.Journal.open_run ~name:"t" ~fingerprint:"fp" with
              | None -> QCheck.assume_fail ()
              | Some (j, _) ->
                  List.iter
                    (fun (step, payload) -> C.Journal.append j ~step ~payload)
                    records;
                  C.Journal.close j);
              let path =
                Filename.concat (Filename.concat (C.Cache.dir ()) "journal")
                  "t.journal"
              in
              let full = In_channel.with_open_bin path In_channel.input_all in
              let cut = min cut (String.length full) in
              Out_channel.with_open_bin path (fun oc ->
                  Out_channel.output_string oc (String.sub full 0 cut));
              match C.Journal.open_run ~name:"t" ~fingerprint:"fp" with
              | None -> QCheck.assume_fail ()
              | Some (j, recovered) ->
                  C.Journal.finish j;
                  let rec is_prefix r full =
                    match (r, full) with
                    | [], _ -> true
                    | a :: rt, b :: ft -> a = b && is_prefix rt ft
                    | _ :: _, [] -> false
                  in
                  is_prefix recovered records)))

(* ------------------------------------------------------------------ *)
(* End to end: experiments under fault torture *)

let scale = 0.02

let run_text id =
  let was = C.Cache.enabled () in
  C.Cache.set_enabled false;
  Fun.protect
    ~finally:(fun () -> C.Cache.set_enabled was)
    (fun () ->
      C.Experiment.clear_cache ();
      C.Report.run_to_string ~scale ~jobs:2 id)

let test_e2e_faulted_run_identical () =
  protected (fun () ->
      Faults.configure None;
      let clean = run_text C.Experiment.Fig7 in
      Faults.configure (Some "all:0.1:42");
      C.Engine.set_retries 8;
      let faulted = run_text C.Experiment.Fig7 in
      Alcotest.(check string) "fig7 bit-identical under 10% faults" clean
        faulted;
      Alcotest.(check (list (pair string reject))) "no holes" []
        (C.Experiment.holes ()))

let test_e2e_faulted_fig8p_identical () =
  protected (fun () ->
      (* The learned-replacement sweep: perceptron weight training and
         bypass decisions ride the same supervised retry machinery and
         must be bit-identical under injected faults. *)
      Faults.configure None;
      let clean = run_text C.Experiment.Fig8p in
      Faults.configure (Some "all:0.1:42");
      C.Engine.set_retries 8;
      let faulted = run_text C.Experiment.Fig8p in
      Alcotest.(check string) "fig8p bit-identical under 10% faults" clean
        faulted;
      Alcotest.(check (list (pair string reject))) "no holes" []
        (C.Experiment.holes ()))

let test_e2e_sampled_faulted_run_identical () =
  protected (fun () ->
      (* Same torture, with representative-region sampling on: region
         planning, gating and per-configuration escalation must all be
         deterministic under retried faults (including torn journal
         appends), not just the exhaustive code path. *)
      Faults.configure None;
      C.Experiment.set_sampled (Some 0.25);
      let clean = run_text C.Experiment.Fig7 in
      let has sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length clean
          && (String.equal (String.sub clean i n) sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "sampling actually engaged" true
        (has "Sampled run (fraction");
      Faults.configure (Some "all:0.1:42");
      C.Engine.set_retries 8;
      let faulted = run_text C.Experiment.Fig7 in
      Alcotest.(check string) "sampled fig7 bit-identical under 10% faults"
        clean faulted;
      Alcotest.(check (list (pair string reject))) "no holes" []
        (C.Experiment.holes ()))

let test_e2e_every_site_saturated_fig4 () =
  protected (fun () ->
      Faults.configure None;
      let clean = run_text C.Experiment.Fig4 in
      (* Probability 1 on every site: the engine pool and packed
         capture can never succeed, the cache can never serve — fig4's
         synchronous compute path carries no fault site, so the run
         degrades all the way to plain recomputation and must still
         produce identical tables. *)
      Faults.configure (Some "all:1.0:1");
      let faulted = run_text C.Experiment.Fig4 in
      Alcotest.(check string) "fig4 identical at 100% fault rate" clean
        faulted)

let test_e2e_degraded_holes () =
  protected (fun () ->
      C.Engine.set_retries 0;
      Faults.configure (Some "engine.task:1.0:1");
      let text = run_text C.Experiment.Fig7 in
      Alcotest.(check bool) "holes recorded" true (C.Experiment.holes () <> []);
      Alcotest.(check bool) "cells marked" true
        (String.length text > 0
        && (let found = ref false in
            String.iteri
              (fun i c ->
                if c = '!' && i > 0 && text.[i - 1] = ' ' then found := true)
              text;
            !found));
      let has sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length text
          && (String.equal (String.sub text i n) sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "degraded appendix present" true
        (has "Degraded run"))

let test_e2e_strict_raises () =
  protected (fun () ->
      C.Engine.set_retries 0;
      C.Experiment.set_strict true;
      Faults.configure (Some "engine.task:1.0:1");
      match run_text C.Experiment.Fig7 with
      | _ -> Alcotest.fail "strict mode must abort on the first failure"
      | exception C.Failure.Error fl ->
          Alcotest.(check bool) "structured failure" true
            (fl.C.Failure.klass = C.Failure.Transient))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "faults"
    [ ( "registry",
        [ Alcotest.test_case "disabled is inert" `Quick test_faults_disabled;
          Alcotest.test_case "site scoping" `Quick test_faults_site_scoping;
          Alcotest.test_case "malformed entries" `Quick
            test_faults_malformed_entries;
          Alcotest.test_case "seeded determinism" `Quick
            test_faults_deterministic ] );
      ( "engine",
        [ Alcotest.test_case "retries absorb transients" `Quick
            test_retry_absorbs_transient;
          Alcotest.test_case "exhaustion is structured" `Quick
            test_retry_exhaustion_is_structured;
          Alcotest.test_case "timeout detected, not retried" `Quick
            test_timeout_is_detected_not_retried;
          Alcotest.test_case "map re-raises the original" `Quick
            test_map_raises_original_after_retries ]
        @ Qseed.all [ qcheck_supervised_identity ] );
      ( "cache",
        [ Alcotest.test_case "roundtrip" `Quick test_cache_roundtrip_heals;
          Alcotest.test_case "torn write quarantined" `Quick
            test_cache_torn_write_quarantined;
          Alcotest.test_case "write fault drops store" `Quick
            test_cache_write_fault_drops_store;
          Alcotest.test_case "read fault is a plain miss" `Quick
            test_cache_read_fault_is_plain_miss;
          Alcotest.test_case "decode fault quarantines" `Quick
            test_cache_decode_fault_quarantines;
          Alcotest.test_case "handcrafted corruption" `Quick
            test_cache_handcrafted_corruption ]
        @ Qseed.all [ qcheck_cache_truncation_never_wrong ] );
      ( "journal",
        [ Alcotest.test_case "roundtrip + fingerprint" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "finish deletes" `Quick test_journal_finish_deletes;
          Alcotest.test_case "torn tail truncated" `Quick
            test_journal_torn_tail_truncated;
          Alcotest.test_case "dropped append" `Quick
            test_journal_append_fault_drops_record ]
        @ Qseed.all [ qcheck_journal_truncation_prefix ] );
      ( "end-to-end",
        [ Alcotest.test_case "faulted run bit-identical" `Slow
            test_e2e_faulted_run_identical;
          Alcotest.test_case "faulted fig8p bit-identical" `Slow
            test_e2e_faulted_fig8p_identical;
          Alcotest.test_case "sampled faulted run bit-identical" `Slow
            test_e2e_sampled_faulted_run_identical;
          Alcotest.test_case "100% fault rate, fig4 identical" `Slow
            test_e2e_every_site_saturated_fig4;
          Alcotest.test_case "degradation marks holes" `Slow
            test_e2e_degraded_holes;
          Alcotest.test_case "strict mode aborts" `Slow test_e2e_strict_raises ]
      ) ]
