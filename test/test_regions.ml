(* Property tests for representative-region sampling
   (Repro_analysis.Regions and the Sampled source threaded through
   the sweep kernels).

   Three contracts:

   1. Bit-identity at fraction 1.0 — an exhaustive plan collapses the
      Sampled source onto the exact packed path, so every sweep table
      equals the unsampled run bit for bit across stream and packed
      sources, and remains invariant under config-axis splitting (the
      sharding sweep_map performs at -jN).

   2. Escalation exactness at any fraction — configurations the
      statistical gate refuses to extrapolate (approx = false) are
      simulated to the end from their prefix state and must reproduce
      the exact run bit for bit. This pins the cross-pass state
      carry-over (BTB/predictor tables, cache contents, fetch-line
      registers, the rewound history register).

   3. Gated accuracy on real workloads — for fractions 0.1..0.5 at
      scale 0.05, every sampled cell of the three sweep kernels stays
      within its reported confidence interval and within the bench's
      max_rel_error tolerance (0.02, with a 1.0 MPKI materiality
      floor) of the exact run.

   Plus plan determinism: same (fraction, seed, capture) gives
   byte-identical fingerprints, descriptions and region tables. *)

module I = Repro_isa.Inst
module S = Repro_isa.Section
module Trace = Repro_isa.Trace
module P = Repro_isa.Packed_trace
module F = Repro_frontend
module A = Repro_analysis
module W = Repro_workload

let scopes = A.Branch_mix.[ Total; Only S.Serial; Only S.Parallel ]
let feq a b = Float.compare a b = 0

(* ------------------------------------------------------------------ *)
(* Random instruction streams, in the style of test_sweep. *)

let kinds =
  [| I.Plain; I.Cond_branch; I.Uncond_direct; I.Indirect_branch; I.Call;
     I.Indirect_call; I.Return; I.Syscall |]

let inst_gen =
  QCheck.Gen.(
    let* k = int_bound (Array.length kinds - 1) in
    let kind = kinds.(k) in
    let* addr = int_bound 0xFFFFF in
    let* size = int_range 1 15 in
    let* taken = if kind = I.Plain then return false else bool in
    let* target = if taken then int_bound 0xFFFFF else return 0 in
    let* parallel = bool in
    let* warmup = frequencyl [ (3, false); (1, true) ] in
    return
      (I.make ~kind ~taken ~target
         ~section:(if parallel then S.Parallel else S.Serial)
         ~warmup ~addr ~size ()))

(* Streams long enough to produce several regions (the region sizer
   uses 512..2048-instruction regions). *)
let stream_gen = QCheck.Gen.(list_size (int_range 0 6000) inst_gen)

let bp_specs () = Array.of_list (List.map A.Bp_sweep.of_name F.Zoo.all_names)
let btb_configs = [| (16, 1); (16, 2); (64, 2); (64, 8); (256, 4) |]

(* Mixed replacement policies: sampled identity and escalation must
   hold for learned-policy cells too, including a geometry swept under
   both policies inside one line-size group. *)
let icache_configs =
  [| A.Icache_sweep.cfg (1024, 32, 1);
     A.Icache_sweep.cfg (1024, 32, 2);
     A.Icache_sweep.cfg ~policy:F.Replacement.Preuse (1024, 32, 2);
     A.Icache_sweep.cfg ~policy:F.Replacement.Preuse (2048, 32, 4);
     A.Icache_sweep.cfg (1024, 64, 2);
     A.Icache_sweep.cfg ~policy:F.Replacement.Preuse (4096, 64, 4);
     A.Icache_sweep.cfg ~policy:F.Replacement.Preuse (2048, 128, 2) |]

let bp_eq (a : A.Bp_sweep.t) (b : A.Bp_sweep.t) =
  List.for_all
    (fun scope ->
      A.Bp_sweep.insts a scope = A.Bp_sweep.insts b scope
      && A.Bp_sweep.conditional_branches a scope
         = A.Bp_sweep.conditional_branches b scope
      && A.Bp_sweep.mispredictions a scope = A.Bp_sweep.mispredictions b scope
      && feq (A.Bp_sweep.mpki a scope) (A.Bp_sweep.mpki b scope)
      && List.for_all
           (fun c ->
             feq
               (A.Bp_sweep.mpki_by_cause a scope c)
               (A.Bp_sweep.mpki_by_cause b scope c))
           A.Bp_sim.causes)
    scopes

let btb_eq (a : A.Btb_sweep.t) (b : A.Btb_sweep.t) =
  List.for_all
    (fun scope ->
      A.Btb_sweep.insts a scope = A.Btb_sweep.insts b scope
      && A.Btb_sweep.taken_branches a scope = A.Btb_sweep.taken_branches b scope
      && A.Btb_sweep.misses a scope = A.Btb_sweep.misses b scope
      && feq (A.Btb_sweep.mpki a scope) (A.Btb_sweep.mpki b scope))
    scopes

let ic_eq (a : A.Icache_sweep.t) (b : A.Icache_sweep.t) =
  List.for_all
    (fun scope ->
      A.Icache_sweep.insts a scope = A.Icache_sweep.insts b scope
      && A.Icache_sweep.misses a scope = A.Icache_sweep.misses b scope
      && feq (A.Icache_sweep.mpki a scope) (A.Icache_sweep.mpki b scope))
    scopes
  && A.Icache_sweep.accesses a = A.Icache_sweep.accesses b

(* ------------------------------------------------------------------ *)
(* 1. Fraction 1.0: bit-identical to the unsampled run, stream and
   packed, whole sweep and config-axis sub-ranges. *)

let full_arb =
  QCheck.make
    QCheck.Gen.(triple stream_gen bool (int_range 1 4))
    ~print:(fun (l, packed, cut) ->
      Printf.sprintf "<%d insts, %s, cut=%d>" (List.length l)
        (if packed then "packed" else "stream")
        cut)

let prop_fraction_one =
  QCheck.Test.make ~name:"fraction 1.0 == unsampled (stream/packed, split)"
    ~count:30 full_arb (fun (insts, packed, cut) ->
      let tr = Trace.of_list insts in
      let pt = P.of_trace tr in
      let plan = A.Regions.plan ~fraction:1.0 ~seed:42 pt in
      let samp = A.Tool.Source.of_sampled pt plan in
      let exact =
        if packed then A.Tool.Source.of_packed pt
        else A.Tool.Source.of_trace tr
      in
      A.Regions.exhaustive plan
      && Array.for_all2 bp_eq
           (A.Bp_sweep.run samp (bp_specs ()))
           (A.Bp_sweep.run exact (bp_specs ()))
      && Array.for_all2 btb_eq
           (A.Btb_sweep.run samp btb_configs)
           (A.Btb_sweep.run exact btb_configs)
      && Array.for_all2 ic_eq
           (A.Icache_sweep.run samp icache_configs)
           (A.Icache_sweep.run exact icache_configs)
      &&
      (* Sub-range sweeps over the sampled source must equal slices of
         the whole sampled sweep: what -jN config sharding assumes. *)
      let n = Array.length icache_configs in
      let cut = min cut (n - 1) in
      let part lo len =
        A.Icache_sweep.run samp (Array.sub icache_configs lo len)
      in
      Array.for_all2 ic_eq
        (A.Icache_sweep.run samp icache_configs)
        (Array.append (part 0 cut) (part cut (n - cut))))

(* ------------------------------------------------------------------ *)
(* 2. Any fraction: escalated (non-approx) configurations are
   bit-identical to the exact run; approx cells carry a CI. *)

let frac_arb =
  QCheck.make
    QCheck.Gen.(pair stream_gen (int_range 10 50))
    ~print:(fun (l, pct) ->
      Printf.sprintf "<%d insts, fraction 0.%02d>" (List.length l) pct)

let prop_escalation_exact =
  QCheck.Test.make ~name:"escalated configs == exact run (any fraction)"
    ~count:30 frac_arb (fun (insts, pct) ->
      let pt = P.of_trace (Trace.of_list insts) in
      let plan =
        A.Regions.plan ~fraction:(float_of_int pct /. 100.0) ~seed:7 pt
      in
      let samp = A.Tool.Source.of_sampled pt plan in
      let exact = A.Tool.Source.of_packed pt in
      let sb = A.Btb_sweep.run samp btb_configs
      and eb = A.Btb_sweep.run exact btb_configs in
      let si = A.Icache_sweep.run samp icache_configs
      and ei = A.Icache_sweep.run exact icache_configs in
      let sp = A.Bp_sweep.run samp (bp_specs ())
      and ep = A.Bp_sweep.run exact (bp_specs ()) in
      Array.for_all2
        (fun s e -> A.Btb_sweep.approx s || btb_eq s e)
        sb eb
      && Array.for_all2
           (fun s e -> A.Icache_sweep.approx s || ic_eq s e)
           si ei
      && Array.for_all2
           (fun s e -> A.Bp_sweep.approx s || bp_eq s e)
           sp ep)

(* ------------------------------------------------------------------ *)
(* 3. Accuracy gate on real workloads: scale 0.05, fractions
   0.1..0.5. Approx cells stay inside their confidence interval;
   every cell stays within the bench's max_rel_error tolerance. *)

let scale = 0.05
let tol = A.Regions.default_tol
let profiles = Array.of_list W.Suites.all

let accuracy_arb =
  QCheck.make
    QCheck.Gen.(pair (int_bound (Array.length profiles - 1)) (int_range 10 50))
    ~print:(fun (pi, pct) ->
      Printf.sprintf "<%s, fraction 0.%02d>" profiles.(pi).W.Profile.name pct)

let cell_ok ~exact ~sampled ~ci ~approx =
  let rel = Float.abs (sampled -. exact) /. Float.max (Float.abs exact) 1.0 in
  rel <= tol +. 1e-9
  && ((not approx) || Float.abs (sampled -. exact) <= ci +. 1e-9)

let prop_accuracy =
  QCheck.Test.make ~name:"sampled cells within CI and 2% (scale 0.05)"
    ~count:8 accuracy_arb (fun (pi, pct) ->
      let p = profiles.(pi) in
      let insts =
        max 50_000 (int_of_float (float_of_int p.W.Profile.total_insts *. scale))
      in
      let pt = W.Executor.packed (W.Executor.create ~insts p) in
      let seed =
        let d = Digest.to_hex (Digest.string (W.Profile_io.to_string p)) in
        int_of_string ("0x" ^ String.sub d 0 8)
      in
      let plan = A.Regions.plan ~fraction:(float_of_int pct /. 100.0) ~seed pt in
      let exact = A.Tool.Source.of_packed pt in
      let samp = A.Tool.Source.of_sampled pt plan in
      let total = A.Branch_mix.Total in
      let sb = A.Btb_sweep.run samp [| (256, 2); (512, 4); (1024, 8) |]
      and eb = A.Btb_sweep.run exact [| (256, 2); (512, 4); (1024, 8) |] in
      (* Fig8/fig8p-shaped cells: the paper's geometries under LRU and
         the headline pair under perceptron reuse/bypass. *)
      let ics =
        [| A.Icache_sweep.cfg (8192, 64, 2);
           A.Icache_sweep.cfg (16384, 64, 4);
           A.Icache_sweep.cfg (32768, 64, 8);
           A.Icache_sweep.cfg ~policy:F.Replacement.Preuse (8192, 64, 2);
           A.Icache_sweep.cfg ~policy:F.Replacement.Preuse (16384, 64, 4) |]
      in
      let si = A.Icache_sweep.run samp ics
      and ei = A.Icache_sweep.run exact ics in
      let sp = A.Bp_sweep.run samp (bp_specs ())
      and ep = A.Bp_sweep.run exact (bp_specs ()) in
      Array.for_all2
        (fun s e ->
          cell_ok
            ~exact:(A.Btb_sweep.mpki e total)
            ~sampled:(A.Btb_sweep.mpki s total)
            ~ci:(A.Btb_sweep.mpki_ci s total)
            ~approx:(A.Btb_sweep.approx s))
        sb eb
      && Array.for_all2
           (fun s e ->
             cell_ok
               ~exact:(A.Icache_sweep.mpki e total)
               ~sampled:(A.Icache_sweep.mpki s total)
               ~ci:(A.Icache_sweep.mpki_ci s total)
               ~approx:(A.Icache_sweep.approx s))
           si ei
      && Array.for_all2
           (fun s e ->
             cell_ok
               ~exact:(A.Bp_sweep.mpki e total)
               ~sampled:(A.Bp_sweep.mpki s total)
               ~ci:(A.Bp_sweep.mpki_ci s total)
               ~approx:(A.Bp_sweep.approx s))
           sp ep)

(* ------------------------------------------------------------------ *)
(* 4. Plan determinism: same (fraction, seed, capture) gives the same
   plan, byte for byte, however many times it is computed. *)

let prop_plan_deterministic =
  QCheck.Test.make ~name:"plan deterministic in (fraction, seed, capture)"
    ~count:30 frac_arb (fun (insts, pct) ->
      let fraction = float_of_int pct /. 100.0 in
      let pt = P.of_trace (Trace.of_list insts) in
      let pt' = P.of_trace (Trace.of_list insts) in
      let a = A.Regions.plan ~fraction ~seed:123 pt in
      let b = A.Regions.plan ~fraction ~seed:123 pt' in
      String.equal (A.Regions.fingerprint a) (A.Regions.fingerprint b)
      && String.equal (A.Regions.describe a) (A.Regions.describe b)
      && a.A.Regions.regions = b.A.Regions.regions
      && a.A.Regions.prefix_regions = b.A.Regions.prefix_regions
      && a.A.Regions.prefix_end = b.A.Regions.prefix_end)

let () =
  Alcotest.run "regions"
    [ ("identity", Qseed.all [ prop_fraction_one; prop_escalation_exact ]);
      ("accuracy", Qseed.all [ prop_accuracy ]);
      ("determinism", Qseed.all [ prop_plan_deterministic ])
    ]
