(* Protocol and lifecycle tests for the characterization daemon:
   framing (round trip, garbage, torn, oversized), server survival of
   misbehaving and abruptly dying clients, byte-identity of concurrent
   responses against the one-shot renderings, reload semantics, and
   the qcheck property that a reload storm neither loses nor
   duplicates an in-flight response. *)

module C = Repro_core
module S = Repro_core.Server
module J = Repro_util.Json

let scale = 0.02

(* Every test runs against a fresh daemon on a private socket and a
   private cache directory, and restores the process-global toggles
   the server's apply_config touches. *)
let with_server ?(workers = 4) f =
  let tag = Printf.sprintf "%d_%d" (Unix.getpid ()) (Random.int 1_000_000) in
  let sock = Printf.sprintf "_server_test_%s.sock" tag in
  let cache_dir = Printf.sprintf "_server_test_cache_%s" tag in
  let was_dir = C.Cache.dir () in
  let was_enabled = C.Cache.enabled () in
  C.Cache.set_dir cache_dir;
  C.Cache.set_enabled true;
  let config = { (S.current_config ()) with S.scale; jobs = 1 } in
  let t = S.start ~config ~socket:sock ~workers () in
  Fun.protect
    ~finally:(fun () ->
      S.stop t;
      C.Cache.clear ();
      (try Sys.rmdir (Filename.concat cache_dir "journal") with Sys_error _ -> ());
      (try Sys.rmdir cache_dir with Sys_error _ -> ());
      C.Cache.set_dir was_dir;
      C.Cache.set_enabled was_enabled;
      C.Experiment.set_sampled None;
      C.Experiment.set_packed true;
      C.Experiment.set_fused true;
      Repro_util.Faults.configure None)
    (fun () -> f (t, sock))

let request conn obj =
  match S.Client.request conn obj with
  | Ok r -> r
  | Error e -> Alcotest.failf "request failed: %s" e

let field name r =
  match J.member name r with
  | Some v -> v
  | None -> Alcotest.failf "response missing %S field" name

let check_ok r = Alcotest.(check bool) "ok" true (field "ok" r = J.Bool true)

let ping ?seq conn =
  let req =
    J.Obj
      (("op", J.Str "ping")
      :: (match seq with Some n -> [ ("seq", J.Num (float_of_int n)) ] | None -> []))
  in
  request conn req

(* ------------------------------------------------------------------ *)
(* Framing *)

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close a; Unix.close b)
    (fun () ->
      List.iter
        (fun payload ->
          ignore (S.Frame.write a payload);
          match S.Frame.read b with
          | Ok got -> Alcotest.(check string) "payload" payload got
          | Error e -> Alcotest.failf "read: %s" (S.Frame.error_to_string e))
        [ "{}"; ""; String.make 100_000 'x'; "\x00\xffbinary\n bytes" ])

let test_frame_torn_and_closed () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* Declared 100 bytes, delivered 5, then the writer dies. *)
  ignore (Unix.write_substring a "RSRV1 100\nhello" 0 15);
  Unix.close a;
  (match S.Frame.read b with
  | Error S.Frame.Torn -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Torn");
  (* EOF before any header byte is a clean close, not an error. *)
  (match S.Frame.read b with
  | Error S.Frame.Closed -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Closed");
  Unix.close b

(* ------------------------------------------------------------------ *)
(* Server survival of protocol violations *)

(* A client that sends garbage gets a best-effort error frame and a
   closed connection; the daemon keeps serving everyone else. *)
let test_garbage_frame_survived () =
  with_server (fun (_t, sock) ->
      let bad = S.Client.connect ~socket:sock () in
      let fd = S.Client.fd bad in
      ignore (Unix.write_substring fd "GET / HTTP/1.1\r\n\r\n" 0 18);
      (match S.Frame.read fd with
      | Ok payload ->
          Alcotest.(check bool) "error response" true
            (match J.of_string payload with
            | Ok r -> field "ok" r = J.Bool false
            | Error _ -> false)
      | Error _ -> () (* already closed is acceptable too *));
      (* connection is dead after garbage *)
      (match S.Frame.read fd with
      | Error (S.Frame.Closed | S.Frame.Torn) -> ()
      | Ok _ -> Alcotest.fail "connection should be closed after garbage"
      | Error e -> Alcotest.failf "unexpected: %s" (S.Frame.error_to_string e));
      S.Client.close bad;
      (* the daemon is alive for a fresh client *)
      let good = S.Client.connect ~socket:sock () in
      check_ok (ping good);
      S.Client.close good)

let test_oversized_frame_survived () =
  with_server (fun (_t, sock) ->
      let bad = S.Client.connect ~socket:sock () in
      let fd = S.Client.fd bad in
      (* Declares ~1 GB: must be rejected from the header alone,
         never allocated. *)
      ignore (Unix.write_substring fd "RSRV1 1000000000\n" 0 17);
      (match S.Frame.read fd with
      | Ok payload ->
          Alcotest.(check bool) "error response" true
            (match J.of_string payload with
            | Ok r -> field "ok" r = J.Bool false
            | Error _ -> false)
      | Error _ -> ());
      S.Client.close bad;
      let good = S.Client.connect ~socket:sock () in
      check_ok (ping good);
      S.Client.close good)

(* kill -9 of a client is, at the server's end, an abrupt close: once
   mid-frame (torn request), once right after a request is sent (the
   response write hits EPIPE). Both must leave the daemon, its cache
   and the resume journal fully usable. *)
let test_client_death_mid_request () =
  with_server (fun (_t, sock) ->
      (* death mid-frame *)
      let c1 = S.Client.connect ~socket:sock () in
      ignore (Unix.write_substring (S.Client.fd c1) "RSRV1 4096\n{\"op" 0 15);
      S.Client.close c1;
      (* death between request and response *)
      let c2 = S.Client.connect ~socket:sock () in
      let payload =
        "{\"op\": \"experiment\", \"id\": \"tab2\"}"
      in
      ignore (S.Frame.write (S.Client.fd c2) payload);
      S.Client.close c2;
      (* the daemon still serves, and serves correctly *)
      let c3 = S.Client.connect ~socket:sock () in
      let r =
        request c3 (J.Obj [ ("op", J.Str "experiment"); ("id", J.Str "tab2") ])
      in
      check_ok r;
      let expected = C.Report.run_to_string ~scale ~jobs:1 C.Experiment.Tab2 in
      (match field "text" r with
      | J.Str text -> Alcotest.(check string) "text survives deaths" expected text
      | _ -> Alcotest.fail "text is not a string");
      S.Client.close c3;
      (* cache directory is intact and writable *)
      Alcotest.(check bool) "cache usable" true (C.Cache.entries () >= 0);
      (* the resume journal machinery opens, appends and finishes *)
      match C.Journal.open_run ~name:"server_test" ~fingerprint:"f1" with
      | None -> Alcotest.fail "journal did not open"
      | Some (j, recovered) ->
          Alcotest.(check int) "fresh journal" 0 (List.length recovered);
          C.Journal.append j ~step:"s1" ~payload:"p1";
          C.Journal.finish j)

(* ------------------------------------------------------------------ *)
(* Concurrent byte-identity *)

let test_concurrent_clients_identical () =
  with_server (fun (_t, sock) ->
      let ids = [| "tab1"; "tab2"; "fig1"; "fig4" |] in
      let expected =
        Array.map
          (fun s ->
            C.Report.run_to_string ~scale ~jobs:1
              (Option.get (C.Experiment.of_string s)))
          ids
      in
      let per_client = 6 in
      let client ci =
        let conn = S.Client.connect ~socket:sock () in
        Fun.protect
          ~finally:(fun () -> S.Client.close conn)
          (fun () ->
            List.init per_client (fun k ->
                let which = (ci + k) mod Array.length ids in
                let r =
                  request conn
                    (J.Obj
                       [ ("op", J.Str "experiment");
                         ("id", J.Str ids.(which)) ])
                in
                (field "ok" r = J.Bool true)
                && field "text" r = J.Str expected.(which)))
      in
      let domains = List.init 4 (fun ci -> Domain.spawn (fun () -> client ci)) in
      let results = List.concat_map Domain.join domains in
      Alcotest.(check int) "all answered" (4 * per_client)
        (List.length results);
      Alcotest.(check bool) "all byte-identical" true
        (List.for_all Fun.id results))

(* ------------------------------------------------------------------ *)
(* Reload *)

let test_reload_semantics () =
  with_server (fun (t, sock) ->
      let conn = S.Client.connect ~socket:sock () in
      Fun.protect
        ~finally:(fun () -> S.Client.close conn)
        (fun () ->
          Alcotest.(check int) "generation starts at 0" 0 (S.generation t);
          (* a malformed reload must not half-apply *)
          let bad =
            request conn
              (J.Obj [ ("op", J.Str "reload"); ("scale", J.Num (-1.0)) ])
          in
          Alcotest.(check bool) "bad reload rejected" true
            (field "ok" bad = J.Bool false);
          Alcotest.(check int) "generation unchanged" 0 (S.generation t);
          (* a good reload bumps the generation and echoes the config *)
          let r =
            request conn
              (J.Obj
                 [ ("op", J.Str "reload");
                   ("sample", J.Null);
                   ("scale", J.Num scale) ])
          in
          check_ok r;
          Alcotest.(check bool) "generation bumped" true
            (field "generation" r = J.Num 1.0);
          (* first gated request after the reload stamps the lag *)
          check_ok (ping conn);
          let st = request conn (J.Obj [ ("op", J.Str "stats") ]) in
          check_ok st;
          (match field "update_lag_ms" st with
          | J.Num v -> Alcotest.(check bool) "lag non-negative" true (v >= 0.0)
          | _ -> Alcotest.fail "update_lag_ms is not a number");
          match field "reloads" st with
          | J.Num v -> Alcotest.(check (float 0.0)) "one reload" 1.0 v
          | _ -> Alcotest.fail "reloads is not a number"))

(* The property the quiesce gate exists for: under a storm of
   concurrent reloads, every request still gets exactly one response,
   in order, with its own sequence number — nothing lost, nothing
   duplicated, no torn configuration observed. *)
let qcheck_reload_never_loses_responses =
  QCheck.Test.make ~name:"reload never loses or duplicates a response"
    ~count:5
    QCheck.(pair (int_range 4 12) (int_range 1 4))
    (fun (n_pings, n_reloads) ->
      with_server ~workers:4 (fun (t, sock) ->
          let client () =
            let conn = S.Client.connect ~socket:sock () in
            Fun.protect
              ~finally:(fun () -> S.Client.close conn)
              (fun () ->
                List.init n_pings (fun i ->
                    let r = ping ~seq:i conn in
                    field "ok" r = J.Bool true
                    && field "seq" r = J.Num (float_of_int i)))
          in
          let clients =
            List.init 2 (fun _ -> Domain.spawn (fun () -> client ()))
          in
          let reloader =
            Domain.spawn (fun () ->
                for _ = 1 to n_reloads do
                  ignore (S.reload t (S.config t))
                done)
          in
          let responses = List.concat_map Domain.join clients in
          Domain.join reloader;
          List.length responses = 2 * n_pings
          && List.for_all Fun.id responses
          && S.generation t >= n_reloads))

(* ------------------------------------------------------------------ *)

let qcheck tests = Qseed.all tests

let () =
  Alcotest.run "server"
    [ ("frame",
       [ Alcotest.test_case "round trip" `Quick test_frame_roundtrip;
         Alcotest.test_case "torn and closed" `Quick
           test_frame_torn_and_closed ]);
      ("survival",
       [ Alcotest.test_case "garbage frame" `Quick
           test_garbage_frame_survived;
         Alcotest.test_case "oversized frame" `Quick
           test_oversized_frame_survived;
         Alcotest.test_case "client death mid-request" `Quick
           test_client_death_mid_request ]);
      ("concurrency",
       [ Alcotest.test_case "4 clients byte-identical" `Slow
           test_concurrent_clients_identical ]);
      ("reload",
       Alcotest.test_case "semantics and update lag" `Quick
         test_reload_semantics
       :: qcheck [ qcheck_reload_never_loses_responses ]) ]
