(* Tests for the extension modules: perceptron, two-level, RAS,
   I-cache prefetch, predictability, working sets, CSV export and the
   extension studies. *)

module F = Repro_frontend
module A = Repro_analysis
module W = Repro_workload
module C = Repro_core
module Inst = Repro_isa.Inst

let drive predictor feed =
  let miss = ref 0 and n = ref 0 in
  feed (fun pc taken ->
      incr n;
      if predictor.F.Predictor.predict pc <> taken then incr miss;
      predictor.F.Predictor.update pc taken);
  float_of_int !miss /. float_of_int (max 1 !n)

(* ------------------------------------------------------------------ *)
(* Perceptron *)

let test_perceptron_biased () =
  let err =
    drive
      (F.Perceptron.pack (F.Perceptron.create ()))
      (fun f -> for _ = 1 to 3000 do f 0x4000 true done)
  in
  Alcotest.(check bool) (Printf.sprintf "err %.3f < 0.01" err) true (err < 0.01)

let test_perceptron_alternating () =
  let v = ref false in
  let err =
    drive
      (F.Perceptron.pack (F.Perceptron.create ()))
      (fun f ->
        for _ = 1 to 3000 do
          v := not !v;
          f 0x4100 !v
        done)
  in
  Alcotest.(check bool) (Printf.sprintf "err %.3f < 0.02" err) true (err < 0.02)

let test_perceptron_correlated () =
  (* Outcome = same as two branches ago: linearly separable. *)
  let hist = ref [ false; false ] in
  let err =
    drive
      (F.Perceptron.pack (F.Perceptron.create ()))
      (fun f ->
        for i = 1 to 5000 do
          let out = List.nth !hist 1 <> (i mod 7 = 0) in
          f 0x4200 out;
          hist := [ out; List.hd !hist ]
        done)
  in
  Alcotest.(check bool) (Printf.sprintf "err %.3f < 0.25" err) true (err < 0.25)

let test_perceptron_storage () =
  let p = F.Perceptron.create ~entries:128 ~history:24 () in
  Alcotest.(check int) "bits" (128 * 25 * 8) (F.Perceptron.storage_bits p)

let test_perceptron_invalid () =
  Alcotest.check_raises "entries"
    (Invalid_argument "Perceptron.create: entries") (fun () ->
      ignore (F.Perceptron.create ~entries:100 ()))

(* ------------------------------------------------------------------ *)
(* Two-level *)

let test_two_level_local_pattern () =
  (* A branch with period-3 local pattern is exactly what PAg nails. *)
  let i = ref 0 in
  let err =
    drive
      (F.Two_level.pack (F.Two_level.create ()))
      (fun f ->
        for _ = 1 to 5000 do
          incr i;
          f 0x5000 (!i mod 3 <> 0)
        done)
  in
  Alcotest.(check bool) (Printf.sprintf "err %.3f < 0.02" err) true (err < 0.02)

let test_two_level_storage () =
  let t = F.Two_level.create ~addr_bits:10 ~history:10 () in
  Alcotest.(check int) "bits" ((1024 * 10) + (1024 * 2))
    (F.Two_level.storage_bits t)

(* ------------------------------------------------------------------ *)
(* RAS *)

let test_ras_lifo () =
  let r = F.Ras.create ~depth:4 () in
  F.Ras.push r 1;
  F.Ras.push r 2;
  F.Ras.push r 3;
  Alcotest.(check (option int)) "pop 3" (Some 3) (F.Ras.pop r);
  Alcotest.(check (option int)) "pop 2" (Some 2) (F.Ras.pop r);
  Alcotest.(check (option int)) "pop 1" (Some 1) (F.Ras.pop r);
  Alcotest.(check (option int)) "underflow" None (F.Ras.pop r)

let test_ras_overflow_wraps () =
  let r = F.Ras.create ~depth:2 () in
  F.Ras.push r 1;
  F.Ras.push r 2;
  F.Ras.push r 3;
  (* overwrote 1 *)
  Alcotest.(check int) "one overflow" 1 (F.Ras.overflows r);
  Alcotest.(check (option int)) "top is 3" (Some 3) (F.Ras.pop r);
  Alcotest.(check (option int)) "then 2" (Some 2) (F.Ras.pop r);
  Alcotest.(check (option int)) "1 was lost" None (F.Ras.pop r)

let test_ras_exact_on_trace () =
  (* Against a real trace: with a deep-enough RAS, every return target
     must be predicted exactly (the Btb_sim assumption). *)
  let p = W.Suites.find "CoMD" in
  let ex = W.Executor.create ~insts:150_000 p in
  let r = F.Ras.create ~depth:64 () in
  let wrong = ref 0 and rets = ref 0 in
  W.Executor.run ex (fun i ->
      match i.Inst.kind with
      | Inst.Call | Inst.Indirect_call -> F.Ras.push r (i.Inst.addr + i.Inst.size)
      | Inst.Return ->
          incr rets;
          (match F.Ras.pop r with
          | Some t when t = i.Inst.target -> ()
          | Some _ | None -> incr wrong)
      | Inst.Plain | Inst.Cond_branch | Inst.Uncond_direct
      | Inst.Indirect_branch | Inst.Syscall -> ());
  Alcotest.(check bool)
    (Printf.sprintf "%d/%d return targets wrong" !wrong !rets)
    true
    (* The cold sweep emits chained returns without calls; everything
       else must match. *)
    (float_of_int !wrong /. float_of_int !rets < 0.08)

(* ------------------------------------------------------------------ *)
(* Target cache *)

let test_target_cache_monomorphic () =
  let tc = F.Target_cache.create () in
  Alcotest.(check (option int)) "cold" None (F.Target_cache.predict tc ~pc:0x40);
  (* The target history must settle to its fixed point before the
     index becomes stable; a handful of executions suffices. *)
  for _ = 1 to 8 do
    F.Target_cache.update tc ~pc:0x40 ~target:0x900
  done;
  Alcotest.(check (option int)) "replays steady target" (Some 0x900)
    (F.Target_cache.predict tc ~pc:0x40)

let test_target_cache_alternating_beats_btb () =
  (* An indirect branch alternating between two targets: a BTB always
     mispredicts after the switch; a target cache learns the pattern
     because the history separates the two contexts. *)
  let tc = F.Target_cache.create () in
  let btb = F.Btb.create ~entries:64 ~assoc:4 in
  let tc_wrong = ref 0 and btb_wrong = ref 0 in
  let n = 2000 in
  for i = 1 to n do
    let target = if i mod 2 = 0 then 0x1000 else 0x2000 in
    (match F.Target_cache.predict tc ~pc:0x80 with
    | Some p when p = target -> ()
    | Some _ | None -> incr tc_wrong);
    F.Target_cache.update tc ~pc:0x80 ~target;
    (match F.Btb.lookup btb ~pc:0x80 with
    | Some p when p = target -> ()
    | Some _ | None -> incr btb_wrong);
    F.Btb.insert btb ~pc:0x80 ~target
  done;
  Alcotest.(check bool)
    (Printf.sprintf "target cache %d wrong << btb %d wrong" !tc_wrong !btb_wrong)
    true
    (!tc_wrong * 4 < !btb_wrong)

let test_target_cache_storage () =
  let tc = F.Target_cache.create ~entries:512 () in
  Alcotest.(check int) "bits" (512 * 32) (F.Target_cache.storage_bits tc)

(* ------------------------------------------------------------------ *)
(* I-cache prefetch *)

let test_prefetch_fills_next_line () =
  let c =
    F.Icache.create ~next_line_prefetch:true ~size_bytes:1024 ~line_bytes:64
      ~assoc:2 ()
  in
  Alcotest.(check bool) "miss line 0" false (F.Icache.access c ~addr:0x4000 ~size:4);
  Alcotest.(check int) "one prefetch issued" 1 (F.Icache.prefetches c);
  (* The next line is already resident. *)
  Alcotest.(check bool) "line 1 hits" true (F.Icache.access c ~addr:0x4040 ~size:4);
  Alcotest.(check int) "prefetch was useful" 1 (F.Icache.useful_prefetches c);
  Alcotest.(check int) "only one demand miss" 1 (F.Icache.misses c)

let test_prefetch_disabled_by_default () =
  let c = F.Icache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 () in
  ignore (F.Icache.access c ~addr:0x4000 ~size:4);
  Alcotest.(check int) "no prefetches" 0 (F.Icache.prefetches c);
  Alcotest.(check bool) "line 1 misses" false
    (F.Icache.access c ~addr:0x4040 ~size:4)

let test_prefetch_helps_sequential_workload () =
  let p = W.Suites.find "FT" in
  let run pf =
    let ex = W.Executor.create ~insts:200_000 p in
    let sim =
      A.Icache_sim.create ~next_line_prefetch:pf ~size_bytes:16384
        ~line_bytes:64 ~assoc:8 ()
    in
    A.Tool.run_all (W.Executor.trace ex) [ A.Icache_sim.observer sim ];
    A.Icache_sim.mpki sim A.Branch_mix.Total
  in
  let plain = run false and pf = run true in
  Alcotest.(check bool)
    (Printf.sprintf "prefetch %.2f < plain %.2f" pf plain)
    true (pf < plain)

(* ------------------------------------------------------------------ *)
(* Predictability *)

let test_predictability_repetitive () =
  let t = A.Predictability.create ~hist_bits:8 () in
  let mk taken =
    Inst.make ~kind:Inst.Cond_branch ~taken ~target:0 ~addr:0x100 ~size:4 ()
  in
  for _ = 1 to 1000 do
    A.Predictability.feed t (mk true)
  done;
  Alcotest.(check int) "one site" 1 (A.Predictability.distinct_sites t);
  Alcotest.(check bool) "few pairs" true (A.Predictability.distinct_pairs t <= 9);
  Alcotest.(check bool) "low novelty" true (A.Predictability.novelty_rate t < 0.01)

let test_predictability_desktop_vs_hpc () =
  let novelty name =
    let p = W.Suites.find name in
    let ex = W.Executor.create ~insts:300_000 p in
    let t = A.Predictability.create () in
    A.Tool.run_all (W.Executor.trace ex) [ A.Predictability.observer t ];
    A.Predictability.novelty_rate t
  in
  let hpc = novelty "swim" and int_ = novelty "xalancbmk" in
  Alcotest.(check bool)
    (Printf.sprintf "desktop novelty %.2f > HPC %.2f" int_ hpc)
    true (int_ > 2.0 *. hpc)

(* ------------------------------------------------------------------ *)
(* Working sets *)

let test_working_set_monotone () =
  let p = W.Suites.find "gobmk" in
  let ex = W.Executor.create ~insts:300_000 p in
  let ws = A.Working_set.create () in
  A.Tool.run_all (W.Executor.trace ex) [ A.Working_set.observer ws ];
  let curve = A.Working_set.curve ws in
  Alcotest.(check int) "seven rungs" 7 (List.length curve);
  let rec non_increasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a +. 0.2 >= b && non_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "roughly monotone" true (non_increasing curve)

let test_working_set_knee () =
  let p = W.Suites.find "swim" in
  let ex = W.Executor.create ~insts:200_000 p in
  let ws = A.Working_set.create () in
  A.Tool.run_all (W.Executor.trace ex) [ A.Working_set.observer ws ];
  match A.Working_set.knee ws () with
  | Some k ->
      Alcotest.(check bool)
        (Printf.sprintf "swim knee %dKB <= 16KB" (k / 1024))
        true (k <= 16384)
  | None -> Alcotest.fail "no knee found"

(* ------------------------------------------------------------------ *)
(* Reuse distance *)

let mkb ?(kind = Inst.Plain) ?(taken = false) ?(target = 0) addr =
  Inst.make ~kind ~taken ~target ~addr ~size:4 ()

let test_reuse_distance_tight_loop () =
  let rd = A.Reuse_distance.create () in
  (* Two blocks alternating: reuse distance 1 for both after warmup. *)
  for _ = 1 to 100 do
    A.Reuse_distance.feed rd (mkb 0x100);
    A.Reuse_distance.feed rd
      (mkb ~kind:Inst.Cond_branch ~taken:true ~target:0x200 0x104);
    A.Reuse_distance.feed rd (mkb 0x200);
    A.Reuse_distance.feed rd
      (mkb ~kind:Inst.Cond_branch ~taken:true ~target:0x100 0x204)
  done;
  Alcotest.(check int) "200 block executions" 200
    (A.Reuse_distance.executions rd);
  Alcotest.(check bool) "short reuse dominates" true
    (A.Reuse_distance.short_reuse_fraction rd > 0.95);
  Alcotest.(check bool) "median small" true
    (A.Reuse_distance.median_distance rd <= 2.0)

let test_reuse_distance_streaming () =
  let rd = A.Reuse_distance.create () in
  (* 500 distinct blocks, never repeated: everything is cold. *)
  for i = 0 to 499 do
    A.Reuse_distance.feed rd
      (mkb ~kind:Inst.Uncond_direct ~taken:true ~target:0 (0x1000 + (i * 64)))
  done;
  let hist = A.Reuse_distance.histogram rd in
  Alcotest.(check (float 1e-9)) "all cold" 1.0 (List.assoc "cold/far" hist)

let test_reuse_distance_paper_benchmarks () =
  (* CoHMM/botsspar-style short-block codes re-execute blocks within a
     couple of blocks (Section III-C). *)
  List.iter
    (fun name ->
      let p = W.Suites.find name in
      let ex = W.Executor.create ~insts:200_000 p in
      let rd = A.Reuse_distance.create () in
      A.Tool.run_all (W.Executor.trace ex) [ A.Reuse_distance.observer rd ];
      let short = A.Reuse_distance.short_reuse_fraction rd in
      Alcotest.(check bool)
        (Printf.sprintf "%s short-reuse %.2f > 0.4" name short)
        true (short > 0.4))
    [ "CoHMM"; "botsspar"; "CG" ]

(* ------------------------------------------------------------------ *)
(* Fetch pipeline *)

module U = Repro_uarch

let test_pipeline_straight_line () =
  let pipe = U.Fetch_pipeline.create ~fetch_bytes:16 U.Frontend_config.baseline in
  (* 64 plain 4-byte instructions, sequential: 16 bytes/cycle after
     the first line access; no branch or btb bubbles. *)
  for i = 0 to 63 do
    U.Fetch_pipeline.feed pipe (mkb (0x400000 + (i * 4)))
  done;
  Alcotest.(check int) "insts" 64 (U.Fetch_pipeline.instructions pipe);
  let b = U.Fetch_pipeline.breakdown pipe in
  Alcotest.(check (float 1e-9)) "no bp cycles" 0.0 (List.assoc "bp-flush" b);
  Alcotest.(check (float 1e-9)) "no btb cycles" 0.0
    (List.assoc "btb-redirect" b);
  (* 256 bytes at 16 bytes/cycle = 16 fetch cycles, plus cold misses. *)
  Alcotest.(check (float 1e-9)) "fetch cycles" 16.0 (List.assoc "fetch" b);
  Alcotest.(check bool) "cold icache misses charged" true
    (List.assoc "icache-miss" b > 0.0)

let test_pipeline_zero_penalty_branch () =
  let pipe = U.Fetch_pipeline.create U.Frontend_config.baseline in
  (* A tight loop: once the BP and BTB know it, iterations add no
     bubbles (the paper's zero-branch-penalty case). *)
  let iter () =
    U.Fetch_pipeline.feed pipe (mkb 0x400000);
    U.Fetch_pipeline.feed pipe
      (mkb ~kind:Inst.Cond_branch ~taken:true ~target:0x400000 0x400004)
  in
  for _ = 1 to 50 do iter () done;
  let before = U.Fetch_pipeline.cycles pipe in
  for _ = 1 to 50 do iter () done;
  let after = U.Fetch_pipeline.cycles pipe in
  (* Steady state: one cycle per iteration (8 bytes in one slot),
     nothing else. *)
  Alcotest.(check (float 5.0)) "steady iterations ~1 cycle" 50.0
    (after -. before)

let test_pipeline_tailored_close_on_hpc () =
  let p = W.Suites.find "FT" in
  let ex = W.Executor.create ~insts:300_000 p in
  let base = U.Fetch_pipeline.create U.Frontend_config.baseline in
  let tail = U.Fetch_pipeline.create U.Frontend_config.tailored in
  A.Tool.run_all (W.Executor.trace ex)
    [ U.Fetch_pipeline.observer base; U.Fetch_pipeline.observer tail ];
  let cb = U.Fetch_pipeline.frontend_cpi base in
  let ct = U.Fetch_pipeline.frontend_cpi tail in
  Alcotest.(check bool)
    (Printf.sprintf "tailored %.3f within 5%% of baseline %.3f" ct cb)
    true
    (ct < cb *. 1.05)

let test_pipeline_agrees_with_timing_on_ordering () =
  (* Both models must agree that the tailored front-end hurts desktop
     code more than HPC code. *)
  let delta name =
    let p = W.Suites.find name in
    let ex = W.Executor.create ~insts:300_000 p in
    let base = U.Fetch_pipeline.create U.Frontend_config.baseline in
    let tail = U.Fetch_pipeline.create U.Frontend_config.tailored in
    A.Tool.run_all (W.Executor.trace ex)
      [ U.Fetch_pipeline.observer base; U.Fetch_pipeline.observer tail ];
    U.Fetch_pipeline.frontend_cpi tail /. U.Fetch_pipeline.frontend_cpi base
  in
  let hpc = delta "swim" and desktop = delta "gobmk" in
  Alcotest.(check bool)
    (Printf.sprintf "pipeline: desktop ratio %.3f > HPC ratio %.3f" desktop hpc)
    true
    (desktop > hpc)

(* ------------------------------------------------------------------ *)
(* CSV export *)

let test_table_csv () =
  let t = Repro_util.Table.create [ ("a", Repro_util.Table.Left);
                                    ("b", Repro_util.Table.Right) ] in
  Repro_util.Table.add_row t [ "x,y"; "1" ];
  Repro_util.Table.add_separator t;
  Repro_util.Table.add_row t [ "he said \"hi\""; "2" ];
  let csv = Repro_util.Table.to_csv t in
  Alcotest.(check string) "csv"
    "a,b\n\"x,y\",1\n\"he said \"\"hi\"\"\",2\n" csv

let test_export_experiment () =
  let files = C.Export.experiment_to_csv ~scale:0.01 C.Experiment.Tab3 in
  Alcotest.(check int) "two tables" 2 (List.length files);
  List.iter
    (fun (name, csv) ->
      Alcotest.(check bool) "named" true
        (String.length name > 6 && Filename.check_suffix name ".csv");
      Alcotest.(check bool) "has rows" true
        (List.length (String.split_on_char '\n' csv) > 3))
    files

let test_export_writes_files () =
  let dir = Filename.temp_file "repro" "" in
  Sys.remove dir;
  let paths = C.Export.write_experiment ~scale:0.01 ~dir C.Experiment.Tab2 in
  Alcotest.(check bool) "wrote files" true (paths <> []);
  List.iter
    (fun p -> Alcotest.(check bool) "file exists" true (Sys.file_exists p))
    paths

(* ------------------------------------------------------------------ *)
(* Extension studies *)

let test_btfn_tracks_bias () =
  (* On a loop-heavy HPC benchmark, BTFN must beat always-not-taken
     decisively (the paper's backward-taken finding). *)
  let p = W.Suites.find "swim" in
  let ex = W.Executor.create ~insts:200_000 p in
  let btfn = A.Bp_sim.create_static A.Bp_sim.Btfn in
  let ant = A.Bp_sim.create_static A.Bp_sim.Always_not_taken in
  A.Tool.run_all (W.Executor.trace ex)
    [ A.Bp_sim.observer btfn; A.Bp_sim.observer ant ];
  let b = A.Bp_sim.mpki btfn A.Branch_mix.Total in
  let n = A.Bp_sim.mpki ant A.Branch_mix.Total in
  Alcotest.(check bool) (Printf.sprintf "btfn %.1f << not-taken %.1f" b n) true
    (b < n /. 3.0);
  Alcotest.(check string) "name" "static-btfn" (A.Bp_sim.predictor_name btfn)

let test_extension_tables_render () =
  let t1 =
    C.Extension_study.predictor_table ~insts:60_000 ~benchmarks:[ "FT" ] ()
  in
  let t2 =
    C.Extension_study.prefetch_table ~insts:60_000 ~benchmarks:[ "FT" ] ()
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) "renders" true
        (String.length (Repro_util.Table.render t) > 100))
    [ t1; t2 ]

let test_zoo_extended () =
  Alcotest.(check int) "13 names" 13 (List.length F.Zoo.extended_names);
  List.iter
    (fun n -> ignore (F.Zoo.by_name_extended n))
    F.Zoo.extended_names

let () =
  Alcotest.run "extensions"
    [ ("perceptron",
       [ Alcotest.test_case "biased" `Quick test_perceptron_biased;
         Alcotest.test_case "alternating" `Quick test_perceptron_alternating;
         Alcotest.test_case "correlated" `Quick test_perceptron_correlated;
         Alcotest.test_case "storage" `Quick test_perceptron_storage;
         Alcotest.test_case "invalid" `Quick test_perceptron_invalid ]);
      ("two-level",
       [ Alcotest.test_case "local pattern" `Quick test_two_level_local_pattern;
         Alcotest.test_case "storage" `Quick test_two_level_storage ]);
      ("ras",
       [ Alcotest.test_case "lifo" `Quick test_ras_lifo;
         Alcotest.test_case "overflow" `Quick test_ras_overflow_wraps;
         Alcotest.test_case "exact on trace" `Quick test_ras_exact_on_trace ]);
      ("target cache",
       [ Alcotest.test_case "monomorphic" `Quick test_target_cache_monomorphic;
         Alcotest.test_case "alternating beats BTB" `Quick
           test_target_cache_alternating_beats_btb;
         Alcotest.test_case "storage" `Quick test_target_cache_storage ]);
      ("prefetch",
       [ Alcotest.test_case "fills next line" `Quick test_prefetch_fills_next_line;
         Alcotest.test_case "off by default" `Quick test_prefetch_disabled_by_default;
         Alcotest.test_case "helps sequential" `Quick
           test_prefetch_helps_sequential_workload ]);
      ("predictability",
       [ Alcotest.test_case "repetitive" `Quick test_predictability_repetitive;
         Alcotest.test_case "desktop vs hpc" `Slow
           test_predictability_desktop_vs_hpc ]);
      ("working set",
       [ Alcotest.test_case "monotone" `Quick test_working_set_monotone;
         Alcotest.test_case "knee" `Quick test_working_set_knee ]);
      ("reuse distance",
       [ Alcotest.test_case "tight loop" `Quick test_reuse_distance_tight_loop;
         Alcotest.test_case "streaming" `Quick test_reuse_distance_streaming;
         Alcotest.test_case "paper benchmarks" `Slow
           test_reuse_distance_paper_benchmarks ]);
      ("fetch pipeline",
       [ Alcotest.test_case "straight line" `Quick test_pipeline_straight_line;
         Alcotest.test_case "zero-penalty branch" `Quick
           test_pipeline_zero_penalty_branch;
         Alcotest.test_case "tailored close on HPC" `Slow
           test_pipeline_tailored_close_on_hpc;
         Alcotest.test_case "agrees with Timing" `Slow
           test_pipeline_agrees_with_timing_on_ordering ]);
      ("export",
       [ Alcotest.test_case "csv" `Quick test_table_csv;
         Alcotest.test_case "experiment csv" `Quick test_export_experiment;
         Alcotest.test_case "writes files" `Quick test_export_writes_files ]);
      ("studies",
       [ Alcotest.test_case "btfn tracks bias" `Quick test_btfn_tracks_bias;
         Alcotest.test_case "tables render" `Quick test_extension_tables_render;
         Alcotest.test_case "zoo extended" `Quick test_zoo_extended ]) ]
