(* Shared qcheck plumbing for the test runners: one process-wide
   generator seed, taken from QCHECK_SEED when reproducing a failure
   and self-chosen otherwise. Every property failure prints the seed
   so the exact run can be replayed with

     QCHECK_SEED=<n> dune runtest *)

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          Printf.eprintf "QCHECK_SEED=%S is not an integer\n" s;
          exit 2)
  | None ->
      Random.self_init ();
      Random.int 0x3FFFFFFF

let to_alcotest test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) test
  in
  ( name,
    speed,
    fun () ->
      try run ()
      with e ->
        Printf.eprintf
          "[qcheck] %S failed; rerun with QCHECK_SEED=%d dune runtest\n%!"
          name seed;
        raise e )

let all tests = List.map to_alcotest tests
