(* Differential tests for the packed-trace capture/replay path.

   The contract under test: a Repro_isa.Packed_trace capture is
   observationally identical to the stream it was built from — full
   replay, the filtered conditional/redirect replays, the bulk section
   counts, characterizations built from it (Marshal byte-identity),
   and every trace-simulating experiment's rendered tables, across
   sequential and parallel engine runs and through the disk cache. *)

module I = Repro_isa.Inst
module S = Repro_isa.Section
module Trace = Repro_isa.Trace
module P = Repro_isa.Packed_trace
module W = Repro_workload
module A = Repro_analysis
module C = Repro_core

(* ------------------------------------------------------------------ *)
(* Random instruction streams. *)

let kinds =
  [| I.Plain; I.Cond_branch; I.Uncond_direct; I.Indirect_branch; I.Call;
     I.Indirect_call; I.Return; I.Syscall |]

let inst_gen =
  QCheck.Gen.(
    let* k = int_bound (Array.length kinds - 1) in
    let kind = kinds.(k) in
    let* addr = int_bound 0xFFFFF in
    let* size = int_range 1 15 in
    let* taken = if kind = I.Plain then return false else bool in
    let* target = if taken then int_bound 0xFFFFF else return 0 in
    let* parallel = bool in
    let* warmup = frequencyl [ (3, false); (1, true) ] in
    return
      (I.make ~kind ~taken ~target
         ~section:(if parallel then S.Parallel else S.Serial)
         ~warmup ~addr ~size ()))

let stream_gen = QCheck.Gen.(list_size (int_range 0 400) inst_gen)

let stream_arb =
  QCheck.make stream_gen
    ~print:(fun l ->
      Printf.sprintf "<%d insts>%s" (List.length l)
        (String.concat ""
           (List.map (fun i -> Format.asprintf "@.%a" I.pp i) l)))

(* Chunk capacities small enough that multi-chunk traces are common. *)
let with_chunks = QCheck.(pair stream_arb (int_range 1 64))

let fields (i : I.t) =
  (i.addr, i.size, i.kind, i.taken, i.target, i.section, i.warmup)

let collect replay =
  let acc = ref [] in
  replay (fun i -> acc := fields i :: !acc);
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Replay identity. *)

let prop_replay_identity =
  QCheck.Test.make ~name:"replay == original stream" ~count:200 with_chunks
    (fun (insts, cap) ->
      let pt = P.of_trace ~chunk_capacity:cap (Trace.of_list insts) in
      P.length pt = List.length insts
      && collect (P.replay pt) = List.map fields insts
      && collect (fun f -> Trace.iter (P.to_trace pt) f)
         = List.map fields insts)

let prop_filtered_replays =
  QCheck.Test.make ~name:"filtered replays == filtered stream" ~count:200
    with_chunks (fun (insts, cap) ->
      let pt = P.of_trace ~chunk_capacity:cap (Trace.of_list insts) in
      let conds = List.filter (fun (i : I.t) -> i.kind = I.Cond_branch) insts
      and redirects =
        List.filter
          (fun (i : I.t) ->
            i.taken && I.is_branch i && i.kind <> I.Syscall
            && i.kind <> I.Return)
          insts
      in
      collect (P.replay_conditionals pt) = List.map fields conds
      && collect (P.replay_redirects pt) = List.map fields redirects)

let prop_counted =
  QCheck.Test.make ~name:"counted == non-warmup section totals" ~count:200
    with_chunks (fun (insts, cap) ->
      let pt = P.of_trace ~chunk_capacity:cap (Trace.of_list insts) in
      let count sec =
        List.length
          (List.filter
             (fun (i : I.t) -> (not i.warmup) && i.section = sec)
             insts)
      in
      P.counted pt = (count S.Serial, count S.Parallel))

let prop_marshal_roundtrip =
  QCheck.Test.make ~name:"Marshal round-trip replays identically" ~count:50
    with_chunks (fun (insts, cap) ->
      let pt = P.of_trace ~chunk_capacity:cap (Trace.of_list insts) in
      let pt' : P.t = Marshal.from_string (Marshal.to_string pt []) 0 in
      collect (P.replay pt') = List.map fields insts)

let test_size_validation () =
  let bad size =
    let tr = Trace.of_list [ I.make ~addr:0 ~size () ] in
    Alcotest.check_raises "size rejected"
      (Invalid_argument
         "Packed_trace.of_trace: instruction size outside 1..255")
      (fun () -> ignore (P.of_trace tr))
  in
  bad 0;
  bad 256;
  (* 255 is the last encodable size. *)
  let tr = Trace.of_list [ I.make ~addr:0 ~size:255 () ] in
  Alcotest.(check int) "size 255 survives" 255
    (match Trace.to_list (P.to_trace (P.of_trace tr)) with
    | [ i ] -> i.I.size
    | _ -> -1)

(* ------------------------------------------------------------------ *)
(* Capture of a real workload == its streaming trace, and the
   characterization built from either is Marshal byte-identical. *)

let executor_capture_matches name =
  let p = W.Suites.find name in
  let ex = W.Executor.create ~insts:60_000 p in
  let streamed = collect (fun f -> W.Executor.run ex f) in
  let pt = W.Executor.packed ex in
  Alcotest.(check int) (name ^ " length") (List.length streamed) (P.length pt);
  Alcotest.(check bool)
    (name ^ " replay == stream") true
    (collect (P.replay pt) = streamed);
  let charz trace = A.Characterization.of_trace ~name ~suite:p.suite trace in
  Alcotest.(check string)
    (name ^ " characterization bytes")
    (Marshal.to_string (charz (W.Executor.trace ex)) [])
    (Marshal.to_string (charz (P.to_trace pt)) [])

let test_executor_capture () =
  List.iter executor_capture_matches [ "FT"; "CoMD"; "gobmk" ]

(* ------------------------------------------------------------------ *)
(* Every trace-simulating experiment renders byte-identical tables
   with packed replay on and off, sequentially and in parallel. *)

let sweep_ids = C.Experiment.[ Fig5; Fig6; Fig7; Fig8; Fig9 ]

let render ~packed ~jobs id =
  C.Experiment.set_packed packed;
  C.Experiment.clear_cache ();
  Fun.protect
    ~finally:(fun () -> C.Experiment.set_packed true)
    (fun () -> C.Report.run_to_string ~scale:0.02 ~jobs id)

let test_sweeps_identical id () =
  C.Cache.set_enabled false;
  let reference = render ~packed:false ~jobs:1 id in
  Alcotest.(check string) "packed -j1 == streaming -j1" reference
    (render ~packed:true ~jobs:1 id);
  Alcotest.(check string) "packed -j4 == streaming -j1" reference
    (render ~packed:true ~jobs:4 id)

(* ------------------------------------------------------------------ *)
(* Static branch-prediction engines (Always_taken / Always_not_taken /
   Btfn) on the packed conditional fast path: Bp_sim.run_all over a
   capture replays only the conditional branches and absorbs the
   instruction totals in bulk, and the statics carry no state that
   warmup could train — the packed counts must equal the streaming
   counts AND a direct recount over the raw list (warmup excluded). *)

let static_predicts s (i : I.t) =
  match s with
  | A.Bp_sim.Always_taken -> true
  | A.Bp_sim.Always_not_taken -> false
  | A.Bp_sim.Btfn -> i.target < i.addr

let prop_static_engines =
  QCheck.Test.make ~name:"static engines: packed == stream == recount"
    ~count:150 with_chunks (fun (insts, cap) ->
      let statics = A.Bp_sim.[ Always_taken; Always_not_taken; Btfn ] in
      let tr = Trace.of_list insts in
      let pt = P.of_trace ~chunk_capacity:cap tr in
      let run src =
        let sims = List.map A.Bp_sim.create_static statics in
        A.Bp_sim.run_all src sims;
        sims
      in
      let streamed = run (A.Tool.Source.of_trace tr)
      and packed = run (A.Tool.Source.of_packed pt) in
      let scopes = A.Branch_mix.[ Total; Only S.Serial; Only S.Parallel ] in
      List.for_all2
        (fun s (st, pk) ->
          List.for_all
            (fun scope ->
              let expect sec_ok pred_wrong =
                List.length
                  (List.filter
                     (fun (i : I.t) ->
                       (not i.warmup) && sec_ok i
                       && (not pred_wrong
                           || i.kind = I.Cond_branch
                              && static_predicts s i <> i.taken))
                     insts)
              in
              let in_scope (i : I.t) =
                match scope with
                | A.Branch_mix.Total -> true
                | A.Branch_mix.Only sec -> i.section = sec
              in
              let want_insts = expect in_scope false
              and want_miss = expect in_scope true in
              A.Bp_sim.insts st scope = want_insts
              && A.Bp_sim.insts pk scope = want_insts
              && A.Bp_sim.mispredictions st scope = want_miss
              && A.Bp_sim.mispredictions pk scope = want_miss
              && A.Bp_sim.conditional_branches st scope
                 = A.Bp_sim.conditional_branches pk scope)
            scopes)
        statics
        (List.combine streamed packed))

(* ------------------------------------------------------------------ *)
(* Disk persistence: with REPRO_PACKED_CACHE=1 a capture written by
   one run is read back by the next and replays identically. *)

let test_disk_persistence () =
  let dir = "packed_cache_dir" in
  C.Cache.set_dir dir;
  C.Cache.set_enabled true;
  Unix.putenv "REPRO_PACKED_CACHE" "1";
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "REPRO_PACKED_CACHE" "0";
      C.Experiment.clear_cache ~disk:true ();
      C.Cache.set_enabled false;
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      C.Experiment.set_packed true;
      C.Experiment.clear_cache ();
      let cold = C.Report.run_to_string ~scale:0.02 ~jobs:1 C.Experiment.Fig7 in
      (* Drop the in-process memo; the second run must be served by the
         persistent cache and still render the same bytes. *)
      C.Experiment.clear_cache ();
      let hits0 = (C.Engine.stats ()).cache_hits in
      let warm = C.Report.run_to_string ~scale:0.02 ~jobs:1 C.Experiment.Fig7 in
      Alcotest.(check string) "warm == cold" cold warm;
      Alcotest.(check bool) "captures served from disk" true
        ((C.Engine.stats ()).cache_hits > hits0))

let () =
  Alcotest.run "packed"
    [ ("encoding",
       Qseed.all
         [ prop_replay_identity; prop_filtered_replays; prop_counted;
           prop_marshal_roundtrip ]
       @ [ Alcotest.test_case "size validation" `Quick test_size_validation ]);
      ("capture",
       [ Alcotest.test_case "executor capture" `Slow test_executor_capture ]);
      ("statics", Qseed.all [ prop_static_engines ]);
      ("sweeps",
       List.map
         (fun id ->
           Alcotest.test_case (C.Experiment.to_string id) `Slow
             (test_sweeps_identical id))
         sweep_ids);
      ("persistence",
       [ Alcotest.test_case "disk cache round-trip" `Slow
           test_disk_persistence ]) ]
