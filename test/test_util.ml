(* Unit and property tests for Repro_util. *)

module Rng = Repro_util.Rng
module Env = Repro_util.Env
module Stats = Repro_util.Stats
module Table = Repro_util.Table
module Units = Repro_util.Units

let check_float = Alcotest.(check (float 1e-9))
let check_close eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  let b = Rng.copy a in
  let x = Rng.bits64 a in
  let y = Rng.bits64 b in
  Alcotest.(check int64) "copy starts from same state" x y;
  ignore (Rng.bits64 a);
  let x2 = Rng.bits64 a and y2 = Rng.bits64 b in
  Alcotest.(check bool) "streams advance independently" true (x2 <> y2 || x2 = y2)

let test_rng_split () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  let c1 = Rng.bits64 child and p1 = Rng.bits64 parent in
  Alcotest.(check bool) "split streams differ" true (c1 <> p1)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 4 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.0);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.0)
  done

let test_rng_bernoulli_rate () =
  let rng = Rng.create 5 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_close 0.02 "p=0.3 rate" 0.3 (float_of_int !hits /. float_of_int n)

let test_rng_geometric_mean () =
  let rng = Rng.create 6 in
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric rng 0.125
  done;
  (* mean of geometric(p) = 1/p = 8 *)
  check_close 0.3 "geometric mean" 8.0 (float_of_int !sum /. float_of_int n)

let test_rng_gaussian_moments () =
  let rng = Rng.create 8 in
  let n = 100_000 in
  let acc = Stats.Acc.create () in
  for _ = 1 to n do
    Stats.Acc.add acc (Rng.gaussian rng)
  done;
  check_close 0.03 "mean ~0" 0.0 (Stats.Acc.mean acc);
  check_close 0.05 "std ~1" 1.0 (Stats.Acc.std_dev acc)

let test_rng_choose_weighted () =
  let rng = Rng.create 10 in
  let n = 30_000 in
  let counts = Array.make 2 0 in
  for _ = 1 to n do
    let i = Rng.choose_weighted rng [| (3.0, 0); (1.0, 1) |] in
    counts.(i) <- counts.(i) + 1
  done;
  check_close 0.03 "3:1 weighting" 0.75
    (float_of_int counts.(0) /. float_of_int n)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)

let test_acc_basic () =
  let acc = Stats.Acc.create () in
  List.iter (Stats.Acc.add acc) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.Acc.count acc);
  check_float "mean" 2.5 (Stats.Acc.mean acc);
  check_float "sum" 10.0 (Stats.Acc.sum acc);
  check_float "min" 1.0 (Stats.Acc.min acc);
  check_float "max" 4.0 (Stats.Acc.max acc);
  check_close 1e-9 "variance" 1.25 (Stats.Acc.variance acc)

let test_acc_empty_mean_nan () =
  let acc = Stats.Acc.create () in
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Stats.Acc.mean acc))

let test_acc_weighted () =
  let acc = Stats.Acc.create () in
  Stats.Acc.add_weighted acc ~weight:3.0 10.0;
  Stats.Acc.add_weighted acc ~weight:1.0 20.0;
  check_float "weighted mean" 12.5 (Stats.Acc.mean acc)

let test_mean_geomean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_close 1e-9 "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check bool) "empty mean nan" true (Float.is_nan (Stats.mean []))

let test_weighted_mean () =
  check_float "weighted" 1.75 (Stats.weighted_mean [ (3.0, 1.0); (1.0, 4.0) ])

let test_percentile () =
  let a = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Stats.median a);
  check_float "p0" 1.0 (Stats.percentile a 0.0);
  check_float "p100" 5.0 (Stats.percentile a 100.0);
  check_float "p25" 2.0 (Stats.percentile a 25.0)

let test_percentile_empty () =
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 50.0))

(* Float.compare is a total order with every NaN below every number,
   so NaN-containing arrays have pinned, input-order-independent
   percentiles: NaN at the low end, finite values above. *)
let test_percentile_nan () =
  let check_arr label a =
    Alcotest.(check bool)
      (label ^ " p0 nan") true
      (Float.is_nan (Stats.percentile a 0.0));
    check_float (label ^ " p100") 3.0 (Stats.percentile a 100.0);
    (* sorted [nan; 1; 2; 3]: rank 1.5 interpolates 1 and 2 *)
    check_float (label ^ " p50") 1.5 (Stats.percentile a 50.0)
  in
  check_arr "nan first" [| nan; 1.0; 2.0; 3.0 |];
  check_arr "nan last" [| 3.0; 1.0; 2.0; nan |];
  Alcotest.(check bool)
    "all-nan median" true
    (Float.is_nan (Stats.median [| nan; nan |]))

let test_percentiles_many () =
  let a = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (list (float 1e-9)))
    "one sort, many ranks" [ 1.0; 3.0; 5.0 ]
    (Stats.percentiles a [ 0.0; 50.0; 100.0 ]);
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.percentiles: empty array") (fun () ->
      ignore (Stats.percentiles [||] [ 50.0 ]))

(* Env: the shared warn-once clamp helper behind every REPRO_* knob.
   Warnings go to stderr (not asserted here); the values are. *)
let test_env_int_clamped () =
  let get () = Env.int_clamped ~name:"T_ENV_INT" ~min:1 ~max:64 () in
  Alcotest.(check (option int)) "unset" None (get ());
  Unix.putenv "T_ENV_INT" "12";
  Alcotest.(check (option int)) "in range" (Some 12) (get ());
  Unix.putenv "T_ENV_INT" "999";
  Alcotest.(check (option int)) "clamps high" (Some 64) (get ());
  Unix.putenv "T_ENV_INT" "-3";
  Alcotest.(check (option int)) "clamps low" (Some 1) (get ());
  Unix.putenv "T_ENV_INT" "zork";
  Alcotest.(check (option int)) "malformed" None (get ())

let test_env_float_clamped () =
  let get () = Env.float_clamped ~name:"T_ENV_FLOAT" ~min:0.01 ~max:1.0 () in
  Unix.putenv "T_ENV_FLOAT" "0.5";
  Alcotest.(check (option (float 1e-9))) "in range" (Some 0.5) (get ());
  Unix.putenv "T_ENV_FLOAT" "7";
  Alcotest.(check (option (float 1e-9))) "clamps" (Some 1.0) (get ());
  Unix.putenv "T_ENV_FLOAT" "nan";
  Alcotest.(check (option (float 1e-9))) "nan rejected" None (get ());
  Unix.putenv "T_ENV_FLOAT" "inf";
  Alcotest.(check (option (float 1e-9))) "inf rejected" None (get ())

let test_env_float_positive () =
  let get () = Env.float_positive ~name:"T_ENV_SCALE" ~default:1.0 () in
  Alcotest.(check (float 1e-9)) "unset" 1.0 (get ());
  Unix.putenv "T_ENV_SCALE" "0.25";
  Alcotest.(check (float 1e-9)) "positive" 0.25 (get ());
  List.iter
    (fun bad ->
      Unix.putenv "T_ENV_SCALE" bad;
      Alcotest.(check (float 1e-9)) (bad ^ " rejected") 1.0 (get ()))
    [ "0"; "-2"; "nan"; "inf"; "fast" ]

let test_env_flag () =
  let get () = Env.flag ~name:"T_ENV_FLAG" ~default:true in
  Alcotest.(check bool) "unset" true (get ());
  Unix.putenv "T_ENV_FLAG" "off";
  Alcotest.(check bool) "off" false (get ());
  Unix.putenv "T_ENV_FLAG" "ON";
  Alcotest.(check bool) "ON" true (get ());
  Unix.putenv "T_ENV_FLAG" "junk";
  Alcotest.(check bool) "junk keeps default" true (get ())

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  Stats.Histogram.add h 0.5;
  Stats.Histogram.add h 9.5;
  Stats.Histogram.add h ~weight:2.0 5.0;
  Stats.Histogram.add h (-1.0);
  Stats.Histogram.add h 11.0;
  check_float "total" 6.0 (Stats.Histogram.total h);
  check_float "underflow" 1.0 (Stats.Histogram.bin_weight h 0);
  check_float "overflow" 1.0 (Stats.Histogram.bin_weight h 11);
  check_float "bin of 5.0" 2.0 (Stats.Histogram.bin_weight h 6)

let test_bytes_for_coverage () =
  (* Three cells: 100 bytes at weight 90, 50 at 9, 1000 at 1. *)
  let cells = [ (100, 90.0); (50, 9.0); (1000, 1.0) ] in
  Alcotest.(check int) "99% needs the two hottest" 150
    (Stats.bytes_for_coverage cells ~coverage:0.99);
  Alcotest.(check int) "50% needs the hottest" 100
    (Stats.bytes_for_coverage cells ~coverage:0.5);
  Alcotest.(check int) "empty" 0 (Stats.bytes_for_coverage [] ~coverage:0.9)

(* ------------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t = Table.create ~title:"T" [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy" ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains padded short row" true (contains s "yy");
  Alcotest.(check bool) "contains header" true (contains s "| a")

let test_table_too_many_cells () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "too many"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_table_formats () =
  Alcotest.(check string) "float" "1.23" (Table.fmt_float 1.234);
  Alcotest.(check string) "nan" "-" (Table.fmt_float nan);
  Alcotest.(check string) "pct" "12.3%" (Table.fmt_pct 0.1234);
  Alcotest.(check string) "ratio" "1.50x" (Table.fmt_ratio 1.5)

let test_units () =
  Alcotest.(check int) "kib" 2048 (Units.kib 2);
  Alcotest.(check string) "bytes" "512B" (Units.pp_bytes 512);
  Alcotest.(check string) "kb" "16KB" (Units.pp_bytes 16384);
  Alcotest.(check string) "frac kb" "1.5KB" (Units.pp_bytes 1536);
  Alcotest.(check bool) "pow2" true (Units.is_power_of_two 64);
  Alcotest.(check bool) "not pow2" false (Units.is_power_of_two 48);
  Alcotest.(check int) "log2" 6 (Units.log2 64);
  Alcotest.(check int) "roundup" 64 (Units.round_up_pow2 33)

let test_units_log2_invalid () =
  Alcotest.check_raises "log2 non-pow2"
    (Invalid_argument "Units.log2: not a power of two") (fun () ->
      ignore (Units.log2 12))

(* ------------------------------------------------------------------ *)
(* Property tests *)

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
              (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let a = Array.of_list (List.map Float.abs xs) in
      Array.length a = 0
      ||
      let v = Stats.percentile a p in
      let lo = Array.fold_left Float.min infinity a in
      let hi = Array.fold_left Float.max neg_infinity a in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_histogram_mass =
  QCheck.Test.make ~name:"histogram conserves mass" ~count:200
    QCheck.(list_of_size Gen.(0 -- 100) (float_bound_inclusive 20.0))
    (fun xs ->
      let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
      List.iter (Stats.Histogram.add h) xs;
      Float.abs (Stats.Histogram.total h -. float_of_int (List.length xs))
      < 1e-9)

let prop_rng_int_range =
  QCheck.Test.make ~name:"Rng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_roundup_pow2 =
  QCheck.Test.make ~name:"round_up_pow2 is a bounding power" ~count:200
    QCheck.(int_range 1 (1 lsl 20))
    (fun n ->
      let p = Units.round_up_pow2 n in
      Units.is_power_of_two p && p >= n && (p = 1 || p / 2 < n))

(* ------------------------------------------------------------------ *)
(* Json: the bench emitter/validator pair must round-trip. *)

module Json = Repro_util.Json

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("schema_version", Json.Num 1.0);
        ("name", Json.Str "fig8 \"quoted\" \\ tab\there");
        ("ok", Json.Bool true);
        ("nothing", Json.Null);
        ("xs", Json.Arr [ Json.Num 0.5; Json.Num (-3.0); Json.Num 1e9 ]);
        ("empty_arr", Json.Arr []);
        ("empty_obj", Json.Obj []) ]
  in
  match Json.of_string (Json.to_string doc) with
  | Ok parsed -> Alcotest.(check bool) "round-trips" true (parsed = doc)
  | Error e -> Alcotest.failf "emitted JSON failed to parse: %s" e

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1, 2"; "{\"a\": }"; "tru"; "{\"a\": 1} trailing"; "nan";
      "\"unterminated" ]

let test_json_accessors () =
  match Json.of_string "{\"a\": 3.5, \"b\": [null, \"x\"]}" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok doc ->
      Alcotest.(check (option (float 1e-9))) "member+number" (Some 3.5)
        (Option.bind (Json.member "a" doc) Json.number);
      Alcotest.(check bool) "missing member" true (Json.member "z" doc = None);
      Alcotest.(check bool) "number of non-num" true
        (Json.number (Json.Str "x") = None)

let test_json_nonfinite_numbers () =
  (* JSON has no NaN/inf: they must render as null, not break parsing. *)
  let s = Json.to_string (Json.Arr [ Json.Num Float.nan; Json.Num Float.infinity ]) in
  match Json.of_string s with
  | Ok (Json.Arr [ Json.Null; Json.Null ]) -> ()
  | Ok _ -> Alcotest.fail "non-finite numbers not nulled"
  | Error e -> Alcotest.failf "emitted JSON failed to parse: %s" e

let prop_json_string_roundtrip =
  QCheck.Test.make ~name:"Json string escape round-trips" ~count:300
    QCheck.(string_of Gen.printable)
    (fun s ->
      match Json.of_string (Json.to_string (Json.Str s)) with
      | Ok (Json.Str s') -> String.equal s s'
      | Ok _ | Error _ -> false)

let qcheck tests = Qseed.all tests

let () =
  Alcotest.run "util"
    [ ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
         Alcotest.test_case "copy" `Quick test_rng_copy_independent;
         Alcotest.test_case "split" `Quick test_rng_split;
         Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
         Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
         Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
         Alcotest.test_case "geometric mean" `Quick test_rng_geometric_mean;
         Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
         Alcotest.test_case "choose_weighted" `Quick test_rng_choose_weighted;
         Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation ]);
      ("stats",
       [ Alcotest.test_case "acc basic" `Quick test_acc_basic;
         Alcotest.test_case "acc empty" `Quick test_acc_empty_mean_nan;
         Alcotest.test_case "acc weighted" `Quick test_acc_weighted;
         Alcotest.test_case "mean/geomean" `Quick test_mean_geomean;
         Alcotest.test_case "weighted mean" `Quick test_weighted_mean;
         Alcotest.test_case "percentile" `Quick test_percentile;
         Alcotest.test_case "percentile empty" `Quick test_percentile_empty;
         Alcotest.test_case "percentile nan order" `Quick test_percentile_nan;
         Alcotest.test_case "percentiles one-sort" `Quick test_percentiles_many;
         Alcotest.test_case "histogram" `Quick test_histogram;
         Alcotest.test_case "bytes_for_coverage" `Quick test_bytes_for_coverage ]);
      ("env",
       [ Alcotest.test_case "int clamped" `Quick test_env_int_clamped;
         Alcotest.test_case "float clamped" `Quick test_env_float_clamped;
         Alcotest.test_case "float positive" `Quick test_env_float_positive;
         Alcotest.test_case "flag" `Quick test_env_flag ]);
      ("table",
       [ Alcotest.test_case "render" `Quick test_table_render;
         Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
         Alcotest.test_case "formats" `Quick test_table_formats ]);
      ("units",
       [ Alcotest.test_case "conversions" `Quick test_units;
         Alcotest.test_case "log2 invalid" `Quick test_units_log2_invalid ]);
      ("json",
       [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
         Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
         Alcotest.test_case "accessors" `Quick test_json_accessors;
         Alcotest.test_case "non-finite numbers" `Quick
           test_json_nonfinite_numbers ]);
      ("properties",
       qcheck
         [ prop_percentile_bounded; prop_histogram_mass; prop_rng_int_range;
           prop_roundup_pow2; prop_json_string_roundtrip ]) ]
