(* Unit and property tests for Repro_frontend: counters, histories,
   the predictor family, BTB and I-cache. *)

module F = Repro_frontend

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counter_init_weak_nt () =
  let c = F.Counter.create ~bits:2 ~entries:16 in
  Alcotest.(check bool) "init predicts not taken" false (F.Counter.is_taken c 3);
  Alcotest.(check int) "init value" 1 (F.Counter.get c 3)

let test_counter_saturate () =
  let c = F.Counter.create ~bits:2 ~entries:4 in
  for _ = 1 to 10 do F.Counter.update c 0 true done;
  Alcotest.(check int) "saturates high" 3 (F.Counter.get c 0);
  Alcotest.(check bool) "strong" true (F.Counter.is_strong c 0);
  for _ = 1 to 10 do F.Counter.update c 0 false done;
  Alcotest.(check int) "saturates low" 0 (F.Counter.get c 0)

let test_counter_hysteresis () =
  let c = F.Counter.create ~bits:2 ~entries:4 in
  F.Counter.update c 1 true;
  (* weak nt (1) -> weak taken (2) *)
  Alcotest.(check bool) "one update flips weak" true (F.Counter.is_taken c 1);
  F.Counter.update c 1 true;
  F.Counter.update c 1 false;
  Alcotest.(check bool) "strong resists one flip" true (F.Counter.is_taken c 1)

let test_counter_index_wraps () =
  let c = F.Counter.create ~bits:2 ~entries:8 in
  F.Counter.set c 2 3;
  Alcotest.(check int) "index masked" 3 (F.Counter.get c 10)

let test_counter_storage () =
  let c = F.Counter.create ~bits:2 ~entries:1024 in
  Alcotest.(check int) "2Kbit" 2048 (F.Counter.storage_bits c)

let test_counter_bad_entries () =
  Alcotest.check_raises "non pow2"
    (Invalid_argument "Counter.create: entries must be a power of two")
    (fun () -> ignore (F.Counter.create ~bits:2 ~entries:12))

(* ------------------------------------------------------------------ *)
(* History *)

let test_history_push_bit () =
  let h = F.History.create 8 in
  F.History.push h true;
  F.History.push h false;
  (* newest = false at index 0, then true *)
  Alcotest.(check bool) "bit 0" false (F.History.bit h 0);
  Alcotest.(check bool) "bit 1" true (F.History.bit h 1);
  Alcotest.(check bool) "out of range" false (F.History.bit h 100)

let test_history_low_bits () =
  let h = F.History.create 8 in
  List.iter (F.History.push h) [ true; true; false; true ];
  (* newest-first: T F T T -> bit0=1 bit1=0 bit2=1 bit3=1 = 0b1101 *)
  Alcotest.(check int) "packing" 0b1101 (F.History.low_bits h 4)

let test_history_wraparound () =
  let h = F.History.create 4 in
  for _ = 1 to 3 do F.History.push h false done;
  for _ = 1 to 4 do F.History.push h true done;
  Alcotest.(check int) "full window of ones" 0b1111 (F.History.low_bits h 4)

let test_history_clear () =
  let h = F.History.create 4 in
  F.History.push h true;
  F.History.clear h;
  Alcotest.(check int) "cleared" 0 (F.History.low_bits h 4)

(* ------------------------------------------------------------------ *)
(* Predictors: learning sanity *)

let drive predictor feed =
  (* returns error rate *)
  let miss = ref 0 and n = ref 0 in
  feed (fun pc taken ->
      incr n;
      if predictor.F.Predictor.predict pc <> taken then incr miss;
      predictor.F.Predictor.update pc taken);
  float_of_int !miss /. float_of_int (max 1 !n)

let always_taken f = for _ = 1 to 2000 do f 0x4000 true done

let loop_16 f =
  for _ = 1 to 200 do
    for i = 1 to 16 do f 0x4100 (i < 16) done
  done

let alternating f =
  let v = ref false in
  for _ = 1 to 2000 do
    v := not !v;
    f 0x4200 !v
  done

let check_lt name bound err =
  Alcotest.(check bool) (Printf.sprintf "%s err %.3f < %.3f" name err bound)
    true (err < bound)

let test_bimodal_biased () =
  let b = F.Bimodal.create ~index_bits:10 in
  check_lt "bimodal always-taken" 0.01 (drive (F.Bimodal.pack b) always_taken)

let test_gshare_patterns () =
  let g () = F.Gshare.pack ~name:"g" (F.Gshare.create ~history_bits:12) in
  check_lt "gshare always-taken" 0.01 (drive (g ()) always_taken);
  check_lt "gshare alternating" 0.01 (drive (g ()) alternating);
  check_lt "gshare loop-16" 0.08 (drive (g ()) loop_16)

let test_tournament_patterns () =
  let t () =
    F.Tournament.pack ~name:"t" (F.Tournament.create ~addr_bits:10 ~history_bits:10)
  in
  check_lt "tournament always-taken" 0.01 (drive (t ()) always_taken);
  check_lt "tournament alternating" 0.02 (drive (t ()) alternating);
  check_lt "tournament loop-16" 0.08 (drive (t ()) loop_16)

let test_tage_patterns () =
  let t () = F.Zoo.tage_small () in
  check_lt "tage always-taken" 0.01 (drive (t ()) always_taken);
  check_lt "tage alternating" 0.02 (drive (t ()) alternating);
  check_lt "tage loop-16" 0.08 (drive (t ()) loop_16)

let test_tage_long_history_beats_gshare_small () =
  (* Period-12 pattern whose 3-bit windows are ambiguous (the window
     TTT precedes both T and F outcomes), so a 3-bit-history gshare
     cannot separate them while TAGE's longer tagged histories can. *)
  let feed f =
    let pattern =
      [| true; true; true; false; true; true; true; true; false; false;
         true; false |]
    in
    for it = 0 to 4999 do
      f 0x5000 pattern.(it mod 12)
    done
  in
  let gshare_err =
    drive (F.Gshare.pack ~name:"g3" (F.Gshare.create ~history_bits:3)) feed
  in
  let tage_err = drive (F.Zoo.tage_big ()) feed in
  Alcotest.(check bool)
    (Printf.sprintf "tage (%.3f) beats short gshare (%.3f)" tage_err gshare_err)
    true
    (tage_err < gshare_err)

let test_loop_predictor_exact () =
  let lbp = F.Loop_predictor.create () in
  (* Constant trip count 12: after two full trips the LBP must predict
     the exit exactly. *)
  let miss_after_warm = ref 0 in
  for trip_no = 1 to 50 do
    for i = 1 to 12 do
      let actual = i < 12 in
      (match F.Loop_predictor.predict lbp ~pc:0x6000 with
      | Some pred when trip_no > 3 -> if pred <> actual then incr miss_after_warm
      | Some _ | None -> ());
      F.Loop_predictor.update lbp ~pc:0x6000 ~taken:actual
    done
  done;
  Alcotest.(check int) "no misses once confident" 0 !miss_after_warm

let test_loop_predictor_combine_storage () =
  let base = F.Zoo.gshare_small () in
  let combined = F.Zoo.with_loop base in
  Alcotest.(check bool) "combined costs more" true
    (combined.F.Predictor.storage_bits > base.F.Predictor.storage_bits);
  Alcotest.(check string) "L- prefix" "L-gshare-small" combined.F.Predictor.name

let test_zoo_budgets () =
  (* Table II: smalls ~2KB, bigs ~16KB. *)
  let check name lo hi =
    let p = F.Zoo.by_name name in
    let kb = float_of_int (F.Predictor.storage_bytes p) /. 1024.0 in
    Alcotest.(check bool)
      (Printf.sprintf "%s budget %.2fKB in [%g, %g]" name kb lo hi)
      true
      (kb >= lo && kb <= hi)
  in
  check "gshare-small" 1.8 2.2;
  check "gshare-big" 15.0 17.0;
  check "tournament-small" 1.2 2.2;
  check "tournament-big" 15.0 17.0;
  check "tage-small" 1.2 2.5;
  check "tage-big" 12.0 17.0;
  check "perceptron-small" 1.8 2.2;
  check "perceptron-big" 15.0 17.0;
  check "L-gshare-small" 2.1 2.8

let test_zoo_names () =
  Alcotest.(check int) "eleven configurations" 11 (List.length F.Zoo.all_names);
  List.iter
    (fun n ->
      let p = F.Zoo.by_name n in
      Alcotest.(check string) "name matches" n p.F.Predictor.name)
    F.Zoo.all_names;
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (F.Zoo.by_name "perceptron"))

(* ------------------------------------------------------------------ *)
(* BTB *)

let test_btb_hit_after_insert () =
  let b = F.Btb.create ~entries:64 ~assoc:4 in
  Alcotest.(check (option int)) "cold miss" None (F.Btb.lookup b ~pc:0x4000);
  F.Btb.insert b ~pc:0x4000 ~target:0x5000;
  Alcotest.(check (option int)) "hit" (Some 0x5000) (F.Btb.lookup b ~pc:0x4000)

let test_btb_target_update () =
  let b = F.Btb.create ~entries:64 ~assoc:4 in
  F.Btb.insert b ~pc:0x4000 ~target:0x5000;
  F.Btb.insert b ~pc:0x4000 ~target:0x6000;
  Alcotest.(check (option int)) "updated" (Some 0x6000) (F.Btb.lookup b ~pc:0x4000)

let test_btb_conflict_eviction () =
  (* Direct-mapped: two addresses mapping to the same set evict each
     other. sets = 16 -> stride 16*2 bytes in pc>>1 space. *)
  let b = F.Btb.create ~entries:16 ~assoc:1 in
  let pc1 = 0x4000 and pc2 = 0x4000 + (16 * 2) in
  F.Btb.insert b ~pc:pc1 ~target:1;
  F.Btb.insert b ~pc:pc2 ~target:2;
  Alcotest.(check (option int)) "evicted" None (F.Btb.lookup b ~pc:pc1)

let test_btb_assoc_absorbs_conflict () =
  let b = F.Btb.create ~entries:16 ~assoc:2 in
  let pc1 = 0x4000 and pc2 = 0x4000 + (8 * 2) in
  F.Btb.insert b ~pc:pc1 ~target:1;
  F.Btb.insert b ~pc:pc2 ~target:2;
  Alcotest.(check (option int)) "both resident" (Some 1) (F.Btb.lookup b ~pc:pc1);
  Alcotest.(check (option int)) "both resident 2" (Some 2) (F.Btb.lookup b ~pc:pc2)

let test_btb_lru () =
  let b = F.Btb.create ~entries:4 ~assoc:2 in
  (* same set: stride sets*2 = 4 bytes in pc space *)
  let pc i = 0x4000 + (i * 2 * 2) in
  F.Btb.insert b ~pc:(pc 0) ~target:0;
  F.Btb.insert b ~pc:(pc 1) ~target:1;
  ignore (F.Btb.lookup b ~pc:(pc 0));
  (* touch 0 so 1 is LRU *)
  F.Btb.insert b ~pc:(pc 2) ~target:2;
  Alcotest.(check (option int)) "LRU victim evicted" None (F.Btb.lookup b ~pc:(pc 1));
  Alcotest.(check (option int)) "MRU kept" (Some 0) (F.Btb.lookup b ~pc:(pc 0))

(* ------------------------------------------------------------------ *)
(* I-cache *)

let test_icache_miss_then_hit () =
  let c = F.Icache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 () in
  Alcotest.(check bool) "cold miss" false (F.Icache.access c ~addr:0x4000 ~size:4);
  Alcotest.(check bool) "then hit" true (F.Icache.access c ~addr:0x4004 ~size:4);
  Alcotest.(check int) "one miss" 1 (F.Icache.misses c);
  Alcotest.(check int) "two accesses" 2 (F.Icache.accesses c)

let test_icache_straddle () =
  let c = F.Icache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 () in
  (* 8-byte instruction crossing a 64B boundary touches two lines. *)
  Alcotest.(check bool) "straddle misses" false
    (F.Icache.access c ~addr:(0x4000 + 60) ~size:8);
  Alcotest.(check int) "two line misses" 2 (F.Icache.misses c)

let test_icache_capacity_eviction () =
  let c = F.Icache.create ~size_bytes:256 ~line_bytes:64 ~assoc:1 () in
  (* 4 lines; fill 4 conflicting addresses in the same set. *)
  ignore (F.Icache.access c ~addr:0 ~size:4);
  ignore (F.Icache.access c ~addr:256 ~size:4);
  (* same set, evicts *)
  Alcotest.(check bool) "original evicted" false (F.Icache.access c ~addr:0 ~size:4)

let test_icache_usefulness () =
  let c = F.Icache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 () in
  ignore (F.Icache.access c ~addr:0x4000 ~size:32);
  (* 32 of 64 bytes touched -> usefulness 0.5 *)
  Alcotest.(check (float 0.01)) "half used" 0.5 (F.Icache.usefulness c)

let test_icache_consume_marks () =
  let c = F.Icache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 () in
  ignore (F.Icache.access c ~addr:0x4000 ~size:16);
  F.Icache.consume c ~addr:0x4010 ~size:48;
  Alcotest.(check (float 0.01)) "fully used" 1.0 (F.Icache.usefulness c);
  Alcotest.(check int) "consume is not an access" 1 (F.Icache.accesses c)

let test_icache_reset_stats () =
  let c = F.Icache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 () in
  ignore (F.Icache.access c ~addr:0 ~size:4);
  F.Icache.reset_stats c;
  Alcotest.(check int) "accesses reset" 0 (F.Icache.accesses c);
  Alcotest.(check int) "misses reset" 0 (F.Icache.misses c)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_counter_bounded =
  QCheck.Test.make ~name:"counter stays in range" ~count:200
    QCheck.(pair (int_range 1 8) (list bool))
    (fun (bits, updates) ->
      let c = F.Counter.create ~bits ~entries:4 in
      List.iter (F.Counter.update c 0) updates;
      let v = F.Counter.get c 0 in
      v >= 0 && v < 1 lsl bits)

let prop_history_low_bits_match =
  QCheck.Test.make ~name:"history low_bits reflects pushes" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) bool)
    (fun pushes ->
      let h = F.History.create 32 in
      List.iter (F.History.push h) pushes;
      let n = List.length pushes in
      let expected =
        List.fold_left (fun acc b -> (acc lsl 1) lor Bool.to_int b) 0 pushes
      in
      F.History.low_bits h n = expected)

let prop_icache_hit_after_access =
  QCheck.Test.make ~name:"re-access of same address hits" ~count:200
    QCheck.(int_range 0 100_000)
    (fun addr ->
      let c = F.Icache.create ~size_bytes:4096 ~line_bytes:64 ~assoc:4 () in
      ignore (F.Icache.access c ~addr ~size:4);
      F.Icache.access c ~addr ~size:4)

let prop_folded_history_stable =
  QCheck.Test.make ~name:"History.folded is a pure function of contents"
    ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 40) bool) (int_range 2 12))
    (fun (pushes, out_bits) ->
      let h1 = F.History.create 64 and h2 = F.History.create 64 in
      List.iter (F.History.push h1) pushes;
      List.iter (F.History.push h2) pushes;
      F.History.folded h1 ~hist_len:24 ~out_bits
      = F.History.folded h2 ~hist_len:24 ~out_bits
      && F.History.folded h1 ~hist_len:24 ~out_bits < 1 lsl out_bits)

let prop_btb_roundtrip =
  QCheck.Test.make ~name:"btb lookup returns last insert" ~count:200
    QCheck.(pair (int_range 0 1_000_000) (int_range 0 1_000_000))
    (fun (pc, target) ->
      let b = F.Btb.create ~entries:256 ~assoc:4 in
      F.Btb.insert b ~pc ~target;
      F.Btb.lookup b ~pc = Some target)

let qcheck tests = Qseed.all tests

let () =
  Alcotest.run "frontend"
    [ ("counter",
       [ Alcotest.test_case "init weak-nt" `Quick test_counter_init_weak_nt;
         Alcotest.test_case "saturate" `Quick test_counter_saturate;
         Alcotest.test_case "hysteresis" `Quick test_counter_hysteresis;
         Alcotest.test_case "index wraps" `Quick test_counter_index_wraps;
         Alcotest.test_case "storage" `Quick test_counter_storage;
         Alcotest.test_case "bad entries" `Quick test_counter_bad_entries ]);
      ("history",
       [ Alcotest.test_case "push/bit" `Quick test_history_push_bit;
         Alcotest.test_case "low_bits" `Quick test_history_low_bits;
         Alcotest.test_case "wraparound" `Quick test_history_wraparound;
         Alcotest.test_case "clear" `Quick test_history_clear ]);
      ("predictors",
       [ Alcotest.test_case "bimodal biased" `Quick test_bimodal_biased;
         Alcotest.test_case "gshare patterns" `Quick test_gshare_patterns;
         Alcotest.test_case "tournament patterns" `Quick test_tournament_patterns;
         Alcotest.test_case "tage patterns" `Quick test_tage_patterns;
         Alcotest.test_case "tage long history" `Quick
           test_tage_long_history_beats_gshare_small;
         Alcotest.test_case "loop predictor exact" `Quick test_loop_predictor_exact;
         Alcotest.test_case "loop combine storage" `Quick
           test_loop_predictor_combine_storage;
         Alcotest.test_case "zoo budgets (Table II)" `Quick test_zoo_budgets;
         Alcotest.test_case "zoo names" `Quick test_zoo_names ]);
      ("btb",
       [ Alcotest.test_case "hit after insert" `Quick test_btb_hit_after_insert;
         Alcotest.test_case "target update" `Quick test_btb_target_update;
         Alcotest.test_case "conflict eviction" `Quick test_btb_conflict_eviction;
         Alcotest.test_case "associativity" `Quick test_btb_assoc_absorbs_conflict;
         Alcotest.test_case "lru" `Quick test_btb_lru ]);
      ("icache",
       [ Alcotest.test_case "miss then hit" `Quick test_icache_miss_then_hit;
         Alcotest.test_case "straddle" `Quick test_icache_straddle;
         Alcotest.test_case "capacity eviction" `Quick test_icache_capacity_eviction;
         Alcotest.test_case "usefulness" `Quick test_icache_usefulness;
         Alcotest.test_case "consume" `Quick test_icache_consume_marks;
         Alcotest.test_case "reset stats" `Quick test_icache_reset_stats ]);
      ("properties",
       qcheck
         [ prop_counter_bounded; prop_history_low_bits_match;
           prop_folded_history_stable; prop_icache_hit_after_access;
           prop_btb_roundtrip ]) ]
