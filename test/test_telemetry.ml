(* Tests for Repro_util.Telemetry: span-tree nesting, counter merging
   across domains (directly and through the Engine pool), derived
   rates, report rendering, and the zero-effect guarantee — a run
   with telemetry enabled produces byte-identical experiment output
   to one with it disabled. *)

module T = Repro_util.Telemetry
module C = Repro_core

let with_telemetry f =
  T.set_enabled true;
  T.reset ();
  Fun.protect
    ~finally:(fun () ->
      T.reset ();
      T.set_enabled false)
    f

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Disabled: nothing records, nothing allocates state. *)

let test_disabled_records_nothing () =
  T.set_enabled false;
  T.reset ();
  let v =
    T.with_span "a" (fun () ->
        T.add "k" 5;
        T.set_gauge "g" 1.0;
        41 + 1)
  in
  Alcotest.(check int) "value passes through" 42 v;
  Alcotest.(check int) "no counter" 0 (T.counter "k");
  Alcotest.(check bool) "no gauge" true (T.gauge "g" = None);
  Alcotest.(check int) "no spans" 0 (List.length (T.spans ()))

(* ------------------------------------------------------------------ *)
(* Span-tree nesting. *)

let test_span_nesting () =
  with_telemetry (fun () ->
      let v =
        T.with_span "outer" (fun () ->
            ignore (T.with_span "in1" (fun () -> 1));
            ignore (T.with_span "in2" (fun () -> T.with_span "deep" (fun () -> 2)));
            42)
      in
      Alcotest.(check int) "value" 42 v;
      match T.spans () with
      | [ { T.sname = "outer"; schildren = [ a; b ]; stotal_ns } ] ->
          Alcotest.(check string) "first child in order" "in1" a.T.sname;
          Alcotest.(check string) "second child in order" "in2" b.T.sname;
          (match b.T.schildren with
          | [ { T.sname = "deep"; _ } ] -> ()
          | _ -> Alcotest.fail "third level lost");
          let child_ns = Int64.add a.T.stotal_ns b.T.stotal_ns in
          Alcotest.(check bool) "parent covers children" true
            (Int64.compare stotal_ns child_ns >= 0)
      | spans ->
          Alcotest.failf "unexpected tree shape (%d roots)"
            (List.length spans))

let test_span_closed_on_exception () =
  with_telemetry (fun () ->
      (try T.with_span "boom" (fun () -> raise Exit) with Exit -> ());
      ignore (T.with_span "after" (fun () -> ()));
      match T.spans () with
      | [ { T.sname = "boom"; _ }; { T.sname = "after"; schildren = []; _ } ] ->
          ()
      | _ -> Alcotest.fail "raising span not closed as a root")

(* ------------------------------------------------------------------ *)
(* Counter / gauge merging across domains. *)

let test_counter_merge_domains () =
  with_telemetry (fun () ->
      T.add "work" 1;
      let workers =
        Array.init 4 (fun _ ->
            Domain.spawn (fun () ->
                T.add "work" 5;
                T.incr "work";
                ignore (T.with_span "worker.span" (fun () -> ()));
                T.export ()))
      in
      Array.iter (fun d -> T.absorb (Domain.join d)) workers;
      Alcotest.(check int) "counters sum across domains" (1 + (4 * 6))
        (T.counter "work");
      let worker_spans =
        List.length
          (List.filter (fun s -> s.T.sname = "worker.span") (T.spans ()))
      in
      Alcotest.(check int) "worker spans absorbed as roots" 4 worker_spans)

let test_engine_merges_worker_buffers () =
  with_telemetry (fun () ->
      let out =
        C.Engine.map ~jobs:4
          (fun i ->
            T.incr "task.count";
            i * 2)
          (List.init 8 Fun.id)
      in
      Alcotest.(check (list int)) "results intact"
        (List.init 8 (fun i -> i * 2))
        out;
      Alcotest.(check int) "every task's counter merged" 8
        (T.counter "task.count");
      Alcotest.(check bool) "busy time accumulated" true
        (T.counter "engine.busy_ns" > 0);
      let rec count name s =
        (if s.T.sname = name then 1 else 0)
        + List.fold_left (fun acc c -> acc + count name c) 0 s.T.schildren
      in
      let total name =
        List.fold_left (fun acc s -> acc + count name s) 0 (T.spans ())
      in
      Alcotest.(check int) "one batch span" 1 (total "engine.batch");
      Alcotest.(check int) "task spans merged under the batch" 8
        (total "engine.task");
      match T.gauge "engine.utilization" with
      | Some u ->
          Alcotest.(check bool) "utilization in (0, 1.5]" true
            (u > 0.0 && u <= 1.5)
      | None -> Alcotest.fail "utilization gauge not set")

let test_rate_derivation () =
  with_telemetry (fun () ->
      T.add "events" 1000;
      (* Burn a little time so elapsed_s is strictly positive. *)
      ignore (Sys.opaque_identity (Array.init 10_000 Fun.id));
      Alcotest.(check bool) "rate positive" true (T.rate "events" > 0.0);
      Alcotest.(check bool) "rate of unknown counter" true
        (T.rate "nonexistent" = 0.0))

(* ------------------------------------------------------------------ *)
(* Report rendering. *)

let test_report_renders () =
  with_telemetry (fun () ->
      ignore
        (T.with_span "alpha" (fun () -> T.with_span "beta" (fun () -> 0)));
      ignore (T.with_span "alpha" (fun () -> 0));
      T.add "my.counter" 3;
      T.set_gauge "my.gauge" 0.5;
      let r = T.report () in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("report mentions " ^ needle) true
            (contains r needle))
        [ "alpha"; "beta"; "my.counter"; "my.gauge"; "2x" ])

let test_report_empty_when_nothing_recorded () =
  with_telemetry (fun () ->
      Alcotest.(check string) "empty report" "" (T.report ()))

(* ------------------------------------------------------------------ *)
(* The zero-effect guarantee: enabling telemetry may never change a
   single output byte of an experiment, for any pool size. *)

let qcheck_output_identical_with_telemetry =
  QCheck.Test.make
    ~name:"telemetry on == telemetry off (byte-identical fig4 output)"
    ~count:4
    QCheck.(int_range 1 4)
    (fun jobs ->
      C.Cache.set_enabled false;
      T.set_enabled false;
      C.Experiment.clear_cache ();
      let off = C.Report.run_to_string ~scale:0.02 ~jobs C.Experiment.Fig4 in
      T.set_enabled true;
      T.reset ();
      C.Experiment.clear_cache ();
      let on = C.Report.run_to_string ~scale:0.02 ~jobs C.Experiment.Fig4 in
      T.reset ();
      T.set_enabled false;
      String.equal off on)

let qcheck tests = Qseed.all tests

let () =
  Alcotest.run "telemetry"
    [ ("disabled",
       [ Alcotest.test_case "records nothing" `Quick
           test_disabled_records_nothing ]);
      ("spans",
       [ Alcotest.test_case "nesting" `Quick test_span_nesting;
         Alcotest.test_case "closed on exception" `Quick
           test_span_closed_on_exception ]);
      ("merging",
       [ Alcotest.test_case "counters across domains" `Quick
           test_counter_merge_domains;
         Alcotest.test_case "engine worker buffers" `Quick
           test_engine_merges_worker_buffers ]);
      ("rates", [ Alcotest.test_case "derived" `Quick test_rate_derivation ]);
      ("report",
       [ Alcotest.test_case "renders tree and counters" `Quick
           test_report_renders;
         Alcotest.test_case "empty when silent" `Quick
           test_report_empty_when_nothing_recorded ]);
      ("zero-effect", qcheck [ qcheck_output_identical_with_telemetry ]) ]
