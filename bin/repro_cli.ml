(* frontend-repro: command-line driver for the reproduction.

   Subcommands:
     list                     benchmarks and experiments
     characterize [BENCH..]   architecture-independent characteristics
     experiment ID            regenerate one table/figure
     report                   regenerate everything
     recommend [--suite S]    run the rebalancing engine
     experiments-md           emit EXPERIMENTS.md content
     serve                    characterization-as-a-service daemon
     cache clear|info         manage the persistent _cache/ directory *)

open Cmdliner

let scale_arg =
  let doc =
    "Scale factor on every benchmark's dynamic instruction budget \
     (1.0 = full runs, smaller = faster and noisier)."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"FACTOR" ~doc)

(* Evaluated per command invocation: [-j N] bounds the Engine domain
   pool and [--no-cache] disables the persistent cache, neither of
   which changes any result. *)
let jobs_arg =
  let doc =
    "Number of domains sharding per-benchmark trace runs (default: all \
     cores, or \\$(b,REPRO_JOBS)). Results are bit-identical for any value; \
     $(b,-j 1) forces a sequential run."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc =
    "Ignore the persistent characterization cache (also \
     \\$(b,REPRO_CACHE=0)); every trace is regenerated."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let trace_arg =
  let doc =
    "Record telemetry and print the hierarchical span tree (with \
     per-span total/self times), counters and gauges to stderr on \
     exit (also \\$(b,REPRO_TRACE=1)). Results are unaffected."
  in
  Arg.(value & flag & info [ "trace" ] ~doc)

let strict_arg =
  let doc =
    "Fail fast: the first failed measurement raises instead of degrading \
     to a marked $(b,!) hole in the tables (also \\$(b,REPRO_STRICT=1))."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let faults_arg =
  let doc =
    "Deterministic fault injection, e.g. $(b,all:0.05:42) or \
     $(b,cache.read:0.1:7,engine.task:0.01:7) (also \\$(b,REPRO_FAULTS)). \
     Supervision absorbs the injected failures; results are unchanged."
  in
  Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)

let retry_arg =
  let doc =
    "Retry budget for transient task failures (clamped to 0..10, \
     default 2)."
  in
  Arg.(value & opt (some int) None & info [ "retry" ] ~docv:"N" ~doc)

let timeout_arg =
  let doc =
    "Per-task cooperative deadline in milliseconds (default: none). An \
     attempt that overran is discarded when it returns, so enabling this \
     trades bit-reproducibility for bounded damage."
  in
  Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)

let sample_arg =
  let doc =
    "Representative-region sampling fraction in [0.01, 1.0] for the \
     trace-simulating sweeps of figs 5-9 (also \\$(b,REPRO_SAMPLE)). Each \
     benchmark's packed trace is clustered into phase regions and only a \
     representative prefix is simulated per configuration; extrapolated \
     cells render with a $(b,≈) marker and carry bounded confidence \
     intervals, and cells the statistical gate cannot bound are simulated \
     exactly. $(b,1.0) is bit-identical to an unsampled run."
  in
  Arg.(value & opt (some float) None & info [ "sample" ] ~docv:"FRAC" ~doc)

let apply_engine_flags trace jobs no_cache strict faults retry timeout sample =
  if trace then Repro_util.Telemetry.set_enabled true;
  if no_cache then Repro_core.Cache.set_enabled false;
  if strict then Repro_core.Experiment.set_strict true;
  (match sample with
  | Some f -> Repro_core.Experiment.set_sampled (Some f)
  | None -> ());
  (match faults with
  | Some spec -> Repro_util.Faults.configure (Some spec)
  | None -> ());
  (match retry with
  | Some r -> Repro_core.Engine.set_retries r
  | None -> ());
  (match timeout with
  | Some t -> Repro_core.Engine.set_timeout_ms (Some t)
  | None -> ());
  match jobs with
  | Some j when j > 0 -> Repro_core.Engine.set_default_jobs j
  | Some _ | None -> ()

(* One shared term: every experiment-running subcommand accepts the
   same engine/supervision knobs and applies them the same way. *)
let engine_flags =
  Term.(
    const apply_engine_flags $ trace_arg $ jobs_arg $ no_cache_arg
    $ strict_arg $ faults_arg $ retry_arg $ timeout_arg $ sample_arg)

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_endline "Benchmarks:";
    List.iter
      (fun suite ->
        Printf.printf "  %-14s %s\n"
          (Repro_workload.Suite.to_string suite)
          (String.concat ", "
             (List.map
                (fun (p : Repro_workload.Profile.t) -> p.name)
                (Repro_workload.Suites.by_suite suite))))
      Repro_workload.Suite.all;
    print_endline "\nExperiments:";
    List.iter
      (fun id ->
        Printf.printf "  %-6s %s\n"
          (Repro_core.Experiment.to_string id)
          (Repro_core.Experiment.describe id))
      Repro_core.Experiment.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and experiments")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)

let characterize_cmd =
  let benches =
    Arg.(value & pos_all string [] & info [] ~docv:"BENCH"
           ~doc:"Benchmark names (default: one per suite)")
  in
  let profile_file =
    Arg.(value & opt (some string) None
         & info [ "profile" ] ~docv:"FILE"
             ~doc:"Characterize a user-defined profile file instead                    (see Repro_workload.Profile_io for the format)")
  in
  let run scale profile_file benches =
    let names =
      if benches = [] then [ "CoMD"; "botsspar"; "FT"; "gobmk" ] else benches
    in
    let lookup name =
      match profile_file with
      | Some path ->
          (match Repro_workload.Profile_io.load path with
          | Ok p -> Some p
          | Error e ->
              Printf.eprintf "cannot load %s: %s\n" path e;
              exit 1)
      | None ->
          List.find_opt
            (fun (p : Repro_workload.Profile.t) -> p.name = name)
            Repro_workload.Suites.all
    in
    let names = match profile_file with Some _ -> [ "(file)" ] | None -> names in
    List.iter
      (fun name ->
        match lookup name with
        | None -> Printf.eprintf "unknown benchmark %s (try `list`)\n" name
        | Some p ->
            let insts =
              max 50_000 (int_of_float (float_of_int p.total_insts *. scale))
            in
            let c = Repro_analysis.Characterization.of_profile ~insts p in
            let open Repro_analysis in
            let total = Branch_mix.Total in
            Printf.printf
              "%s (%s): %.1f%% branches, %.0f%% biased, %.0f%% backward-taken, \
               static %s, 99%%-dynamic %s, BBL %.0fB, taken-distance %.0fB\n"
              name
              (Repro_workload.Suite.to_string p.suite)
              (100.0 *. Branch_mix.branch_fraction c.mix total)
              (100.0 *. Branch_bias.biased_fraction c.bias total)
              (100.0 *. Branch_bias.backward_taken_fraction c.bias total)
              (Repro_util.Units.pp_bytes (Footprint.static_bytes c.footprint total))
              (Repro_util.Units.pp_bytes
                 (Footprint.dynamic_bytes c.footprint total ~coverage:0.99))
              (Bblock_stats.avg_block_bytes c.bblocks total)
              (Bblock_stats.avg_taken_distance c.bblocks total))
      names
  in
  Cmd.v
    (Cmd.info "characterize"
       ~doc:"Print architecture-independent characteristics of benchmarks")
    Term.(const run $ scale_arg $ profile_file $ benches)

(* ------------------------------------------------------------------ *)

let experiment_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id, e.g. fig5 or tab3")
  in
  let run scale () id =
    match Repro_core.Experiment.of_string id with
    | None ->
        Printf.eprintf "unknown experiment %s; valid ids: %s\n" id
          (String.concat " "
             (List.map Repro_core.Experiment.to_string
                Repro_core.Experiment.all));
        exit 1
    | Some id -> print_string (Repro_core.Report.run_to_string ~scale id)
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate one table or figure")
    Term.(const run $ scale_arg $ engine_flags $ id_arg)

let report_cmd =
  let run scale () =
    print_string (Repro_core.Report.run_all_to_string ~scale ())
  in
  Cmd.v (Cmd.info "report" ~doc:"Regenerate every table and figure")
    Term.(const run $ scale_arg $ engine_flags)

let experiments_md_cmd =
  let run scale () =
    print_string (Repro_core.Report.experiments_markdown ~scale ())
  in
  Cmd.v
    (Cmd.info "experiments-md" ~doc:"Emit EXPERIMENTS.md body to stdout")
    Term.(const run $ scale_arg $ engine_flags)

(* ------------------------------------------------------------------ *)

let serve_cmd =
  let socket_arg =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket path to listen on (default \
                   $(b,_serve.sock) when --tcp is not given; a stale \
                   socket file is replaced)")
  in
  let tcp_arg =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT"
             ~doc:"Also listen on this loopback TCP port ($(b,0) lets \
                   the kernel pick; the chosen port is printed)")
  in
  let workers_arg =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"N"
             ~doc:"Accept/serve worker domains (clamped to 1..16); \
                   bounds concurrently served clients")
  in
  let run scale () socket tcp workers =
    let module Server = Repro_core.Server in
    let cfg = { (Server.current_config ()) with Server.scale } in
    let t = Server.start ~config:cfg ?socket ?tcp ~workers () in
    (* Signal handlers only set flags; the reload itself runs on the
       main domain inside [wait]'s tick, where taking locks is safe. *)
    let hup = Atomic.make false in
    let on_signal_stop = Sys.Signal_handle (fun _ -> Server.request_stop t) in
    List.iter
      (fun (signal, behaviour) ->
        try Sys.set_signal signal behaviour with Invalid_argument _ -> ())
      [ (Sys.sighup, Sys.Signal_handle (fun _ -> Atomic.set hup true));
        (Sys.sigint, on_signal_stop);
        (Sys.sigterm, on_signal_stop) ];
    let endpoints =
      (match Server.sock_path t with Some p -> [ "unix:" ^ p ] | None -> [])
      @ (match Server.tcp_port t with
        | Some p -> [ Printf.sprintf "tcp:127.0.0.1:%d" p ]
        | None -> [])
    in
    Printf.printf
      "frontend-repro serve: listening on %s (%d workers, scale %g)\n\
       SIGHUP reloads the REPRO_* environment; SIGTERM/SIGINT or a \
       shutdown op stops\n%!"
      (String.concat " and " endpoints)
      workers scale;
    Server.wait
      ~on_tick:(fun () ->
        if Atomic.exchange hup false then begin
          let gen = Server.reload t (Server.env_config ()) in
          Printf.eprintf "serve: reloaded from environment, generation %d\n%!"
            gen
        end)
      t;
    Server.stop t;
    Printf.printf "serve: stopped\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the characterization daemon: a long-lived socket server \
          answering concurrent experiment/report/stats requests over a \
          length-framed JSON protocol, with zero-downtime configuration \
          reload")
    Term.(const run $ scale_arg $ engine_flags $ socket_arg $ tcp_arg
          $ workers_arg)

(* ------------------------------------------------------------------ *)

let cache_cmd =
  let clear =
    let run () =
      let n = Repro_core.Cache.entries () in
      Repro_core.Experiment.clear_cache ~disk:true ();
      Printf.printf "cleared %d cache entr%s under %s\n" n
        (if n = 1 then "y" else "ies")
        (Repro_core.Cache.dir ())
    in
    Cmd.v
      (Cmd.info "clear"
         ~doc:"Delete every persisted characterization and CMP measurement")
      Term.(const run $ const ())
  in
  let info_cmd =
    let run () =
      Printf.printf "directory: %s\nenabled:   %b\nentries:   %d\n"
        (Repro_core.Cache.dir ())
        (Repro_core.Cache.enabled ())
        (Repro_core.Cache.entries ())
    in
    Cmd.v (Cmd.info "info" ~doc:"Show cache location, state and entry count")
      Term.(const run $ const ())
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:
         "Manage the persistent characterization cache (_cache/, or \
          \\$(b,REPRO_CACHE_DIR))")
    [ clear; info_cmd ]

(* ------------------------------------------------------------------ *)

let recommend_cmd =
  let suite_arg =
    Arg.(value & opt (some string) None
         & info [ "suite" ] ~docv:"SUITE"
             ~doc:"Workload suite: exmatex, omp, npb, int, or hpc (default)")
  in
  let run scale suite =
    let profiles =
      match Option.map String.lowercase_ascii suite with
      | None | Some "hpc" ->
          List.concat_map Repro_workload.Suites.by_suite
            Repro_workload.Suite.hpc
      | Some "exmatex" -> Repro_workload.Suites.by_suite Repro_workload.Suite.Exmatex
      | Some "omp" -> Repro_workload.Suites.by_suite Repro_workload.Suite.Spec_omp
      | Some "npb" -> Repro_workload.Suites.by_suite Repro_workload.Suite.Npb
      | Some "int" -> Repro_workload.Suites.by_suite Repro_workload.Suite.Spec_int
      | Some other ->
          Printf.eprintf "unknown suite %s\n" other;
          exit 1
    in
    let insts = max 50_000 (int_of_float (2_000_000.0 *. scale)) in
    let r = Repro_core.Rebalance.recommend ~insts profiles in
    List.iter print_endline r.rationale;
    print_endline "\nPareto sweep (by area):";
    List.iter
      (fun (e : Repro_core.Rebalance.estimate) ->
        Printf.printf "  %-40s %.2f mm2  %.2f W  worst %+5.1f%%  avg %+5.1f%%\n"
          (Repro_uarch.Frontend_config.name e.config)
          e.area_mm2 e.power_w
          (100.0 *. (e.slowdown -. 1.0))
          (100.0 *. (e.avg_slowdown -. 1.0)))
      r.candidates
  in
  Cmd.v
    (Cmd.info "recommend"
       ~doc:"Sweep front-end designs and recommend the cheapest safe one")
    Term.(const run $ scale_arg $ suite_arg)

let ablation_cmd =
  let suite_arg =
    Arg.(value & opt string "npb"
         & info [ "suite" ] ~docv:"SUITE" ~doc:"exmatex, omp, npb, int or hpc")
  in
  let run scale suite =
    let profiles =
      match suite with
      | "hpc" ->
          List.concat_map Repro_workload.Suites.by_suite
            Repro_workload.Suite.hpc
      | "exmatex" -> Repro_workload.Suites.by_suite Repro_workload.Suite.Exmatex
      | "omp" -> Repro_workload.Suites.by_suite Repro_workload.Suite.Spec_omp
      | "npb" -> Repro_workload.Suites.by_suite Repro_workload.Suite.Npb
      | "int" -> Repro_workload.Suites.by_suite Repro_workload.Suite.Spec_int
      | other ->
          Printf.eprintf "unknown suite %s\n" other;
          exit 1
    in
    let insts = max 50_000 (int_of_float (2_000_000.0 *. scale)) in
    Repro_util.Table.print
      (Repro_core.Ablation.table (Repro_core.Ablation.run ~insts profiles))
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Isolate each downsized structure's area/power/performance share")
    Term.(const run $ scale_arg $ suite_arg)

let scaling_cmd =
  let bench_arg =
    Arg.(value & pos 0 string "CoEVP" & info [] ~docv:"BENCH")
  in
  let run scale bench =
    let p = Repro_workload.Suites.find bench in
    let insts =
      max 50_000 (int_of_float (float_of_int p.total_insts *. scale))
    in
    Repro_util.Table.print
      (Repro_core.Thread_scaling.table bench
         (Repro_core.Thread_scaling.sweep ~insts p))
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:"Serial-bottleneck growth with core count (Section III-D)")
    Term.(const run $ scale_arg $ bench_arg)

let export_cmd =
  let dir_arg =
    Arg.(value & opt string "results"
         & info [ "dir" ] ~docv:"DIR" ~doc:"Output directory for CSV files")
  in
  let ids_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"ID"
           ~doc:"Experiment ids (default: all)")
  in
  let run scale () dir ids =
    let ids =
      match ids with
      | [] -> Repro_core.Experiment.all
      | picks ->
          List.filter_map
            (fun s ->
              match Repro_core.Experiment.of_string s with
              | Some id -> Some id
              | None ->
                  Printf.eprintf "unknown experiment %s (skipped)\n" s;
                  None)
            picks
    in
    List.iter
      (fun id ->
        let paths = Repro_core.Export.write_experiment ~scale ~dir id in
        List.iter (Printf.printf "wrote %s\n") paths)
      ids
  in
  Cmd.v (Cmd.info "export" ~doc:"Write experiment results as CSV files")
    Term.(const run $ scale_arg $ engine_flags $ dir_arg $ ids_arg)

let () =
  let doc =
    "Reproduction of 'Rebalancing the Core Front-End through HPC Code \
     Analysis' (IISWC 2016)"
  in
  (* Print the span tree after the chosen subcommand ran, whether
     telemetry came from --trace or from REPRO_TRACE=1 in the
     environment. Recording without either leaves this silent. *)
  at_exit (fun () ->
      if Repro_util.Telemetry.enabled () then
        prerr_string (Repro_util.Telemetry.report ()));
  let info = Cmd.info "frontend-repro" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; characterize_cmd; experiment_cmd; report_cmd;
            experiments_md_cmd; recommend_cmd; ablation_cmd; scaling_cmd;
            export_cmd; serve_cmd; cache_cmd ]))
