(* Benchmark harness.

   Usage:
     dune exec bench/main.exe                 regenerate every table and
                                              figure, then run the
                                              Bechamel microbenchmarks
     dune exec bench/main.exe -- fig5 tab3    only those experiments
     dune exec bench/main.exe -- micro        only the microbenchmarks
     dune exec bench/main.exe -- fig1 -j 4    shard trace runs over
                                              4 domains (default: all
                                              cores; results identical)
     dune exec bench/main.exe -- --no-cache   ignore the persistent
                                              _cache/ directory
     dune exec bench/main.exe -- --no-packed  disable packed-trace
                                              capture/replay (stream
                                              every trace afresh)
     dune exec bench/main.exe -- --no-fused   disable the fused sweep
                                              kernels (one simulator
                                              per configuration)
     dune exec bench/main.exe -- --sample 0.25
                                              run the trace sweeps over
                                              representative-region
                                              plans covering that
                                              fraction of each capture
                                              (also REPRO_SAMPLE); adds
                                              sampled_ms / max_rel_error
                                              probes to --json output
     dune exec bench/main.exe -- fig8 --json BENCH_results.json
                                              also write per-experiment
                                              wall time, instr/s, cache
                                              hit rate and parallel
                                              speedup as JSON
     dune exec bench/main.exe -- --check-json BENCH_results.json
                                              validate an emitted file
                                              (exit 1 when malformed)
     dune exec bench/main.exe -- --strict     fail fast: abort on the
                                              first failed measurement
                                              instead of marking holes
     dune exec bench/main.exe -- --retry N    retry budget for transient
                                              task failures (default 2)
     dune exec bench/main.exe -- --timeout-ms N
                                              per-task deadline (default
                                              off; trades reproducibility)
     dune exec bench/main.exe -- --faults SPEC
                                              inject faults, e.g.
                                              all:0.05:42 (also
                                              REPRO_FAULTS)
     dune exec bench/main.exe -- --no-journal do not journal completed
                                              experiments (a fresh run
                                              every time)
     dune exec bench/main.exe -- --serve-bench
                                              load-generate against an
                                              in-process Repro_core.Server
                                              daemon: concurrent clients,
                                              p50/p90/p99 latency,
                                              throughput, mid-run reload
                                              update lag, and a byte-
                                              identity gate against the
                                              one-shot renderings; tune
                                              with --serve-clients N,
                                              --serve-requests N,
                                              --serve-mode closed|open,
                                              --serve-rps R
     dune exec bench/main.exe -- --check-json F --expect-serve
                                              additionally require the
                                              file to record a serve run
     REPRO_SCALE=0.2 dune exec bench/main.exe faster, noisier runs
     REPRO_TRACE=1   dune exec bench/main.exe print the telemetry span
                                              tree to stderr on exit

   An interrupted run leaves a resume journal under
   <cache dir>/journal/; the next invocation with the same experiment
   list, scale and tool version replays the completed experiments
   byte-identically and continues from the first unfinished one. *)

module W = Repro_workload
module A = Repro_analysis
module F = Repro_frontend
module T = Repro_util.Telemetry
module J = Repro_util.Json

(* Malformed, non-finite and non-positive REPRO_SCALE values warn
   once and fall back to 1.0 (the old code silently accepted nan/0/
   negative scales, which poison every measurement derived from the
   instruction budget). *)
let scale = Repro_util.Env.float_positive ~name:"REPRO_SCALE" ~default:1.0 ()

(* ------------------------------------------------------------------ *)
(* Experiment regeneration: one section per paper table/figure. *)

type measurement = {
  m_id : string;
  m_status : string; (* "ok", "degraded" (holes) or "failed" *)
  m_wall_ms : float;
  m_sim_insts : int;
  m_hits : int;
  m_misses : int;
  m_holes : int; (* measurements lost to failed benchmarks *)
  m_ok : int; (* engine task outcomes, deltas over this experiment *)
  m_retried : int;
  m_failed : int;
  m_timed_out : int;
  m_faults : int; (* injected faults that fired during this experiment *)
  m_seq_ms : float option; (* uncached -j1 probe, jobs > 1 only *)
  m_par_ms : float option; (* uncached -jN probe, jobs > 1 only *)
  m_stream_ms : float option; (* streaming sweep probe, figs 5-9 only *)
  m_replay_ms : float option; (* packed-replay sweep probe, figs 5-9 only *)
  m_unfused_ms : float option; (* per-config sweep probe, figs 5-9 only *)
  m_fused_ms : float option; (* fused-kernel sweep probe, figs 5-9 only *)
  m_sampled_ms : float option; (* sampled sweep probe, figs 5-9 + --sample *)
  m_max_rel_error : float option; (* worst table-cell error, sampled probe *)
}

let ms_since t0 = Int64.to_float (Int64.sub (T.now_ns ()) t0) /. 1e6

(* Both probe runs recompute everything (memo cleared, disk cache off)
   so the speedup compares computation against computation — a warm
   disk cache would otherwise make the -j1 side look supernaturally
   fast. *)
let speedup_probe ~jobs id =
  if jobs <= 1 then (None, None)
  else begin
    let was = Repro_core.Cache.enabled () in
    let was_sample = Repro_core.Experiment.sample_fraction () in
    Repro_core.Cache.set_enabled false;
    Repro_core.Experiment.set_sampled None;
    Fun.protect
      ~finally:(fun () ->
        Repro_core.Cache.set_enabled was;
        Repro_core.Experiment.set_sampled was_sample)
      (fun () ->
        let timed j =
          Repro_core.Experiment.clear_cache ();
          let t0 = T.now_ns () in
          ignore (Repro_core.Report.run_to_string ~scale ~jobs:j id);
          ms_since t0
        in
        let par = timed jobs in
        let seq = timed 1 in
        (Some seq, Some par))
  end

let is_trace_sim = function
  | Repro_core.Experiment.Fig5 | Fig6 | Fig7 | Fig8 | Fig8p | Fig9 -> true
  | _ -> false

(* Sweep probe for the trace-simulating experiments: the same sweep
   with packed capture disabled (the generator re-runs on every
   per-benchmark pass) against a replay over warm captures. The ratio
   is the wall-time the packed representation saves a harness that
   sweeps the same traces repeatedly. *)
let sweep_probe id =
  if not (is_trace_sim id) then (None, None)
  else begin
    let was_cache = Repro_core.Cache.enabled () in
    let was_packed = Repro_core.Experiment.packed_enabled () in
    let was_sample = Repro_core.Experiment.sample_fraction () in
    Repro_core.Cache.set_enabled false;
    Repro_core.Experiment.set_sampled None;
    Fun.protect
      ~finally:(fun () ->
        Repro_core.Cache.set_enabled was_cache;
        Repro_core.Experiment.set_packed was_packed;
        Repro_core.Experiment.set_sampled was_sample)
      (fun () ->
        let timed () =
          let t0 = T.now_ns () in
          ignore (Repro_core.Report.run_to_string ~scale ~jobs:1 id);
          ms_since t0
        in
        Repro_core.Experiment.set_packed false;
        Repro_core.Experiment.clear_cache ();
        let stream = timed () in
        Repro_core.Experiment.set_packed true;
        Repro_core.Experiment.clear_cache ();
        ignore (timed ()) (* capture pass: warm the packed memo *);
        let replay = timed () in
        (Some stream, Some replay))
  end

(* Fused-kernel probe for the trace-simulating experiments: the same
   sweep with the fused multi-configuration kernels disabled (one
   simulator per configuration over a shared replay) against the
   fused default. Both timed runs replay warm packed captures over a
   warm memo, so the ratio isolates the sweep kernel itself. *)
let fused_probe id =
  if not (is_trace_sim id) then (None, None)
  else begin
    let was_cache = Repro_core.Cache.enabled () in
    let was_fused = Repro_core.Experiment.fused_enabled () in
    let was_sample = Repro_core.Experiment.sample_fraction () in
    Repro_core.Cache.set_enabled false;
    Repro_core.Experiment.set_sampled None;
    Fun.protect
      ~finally:(fun () ->
        Repro_core.Cache.set_enabled was_cache;
        Repro_core.Experiment.set_fused was_fused;
        Repro_core.Experiment.set_sampled was_sample)
      (fun () ->
        let timed () =
          let t0 = T.now_ns () in
          ignore (Repro_core.Report.run_to_string ~scale ~jobs:1 id);
          ms_since t0
        in
        ignore (timed ()) (* warm the packed-capture memo *);
        Repro_core.Experiment.set_fused false;
        let unfused = timed () in
        Repro_core.Experiment.set_fused true;
        let fused = timed () in
        (Some unfused, Some fused))
  end

(* Numeric table cells of a rendered experiment, in order: maximal
   digit-led tokens (an optional leading '-', digits, dots), with the
   "≈" marker and everything from the sampling-plan appendix on
   ignored. Labels that embed digits ("16K", "btb-1024") tokenize
   identically on both sides, so they pair up and contribute zero. *)
let numeric_cells text =
  let stop = "Sampled run (fraction" in
  let upto =
    (* truncate at the appendix header, present only on the sampled side *)
    let n = String.length text and m = String.length stop in
    let rec find i =
      if i + m > n then n
      else if String.sub text i m = stop then i
      else find (i + 1)
    in
    find 0
  in
  let out = ref [] in
  let i = ref 0 in
  while !i < upto do
    let c = text.[!i] in
    let neg = c = '-' && !i + 1 < upto
              && (match text.[!i + 1] with '0' .. '9' -> true | _ -> false)
              && (!i = 0
                  || match text.[!i - 1] with
                     | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> false
                     | _ -> true)
    in
    if neg || (c >= '0' && c <= '9') then begin
      let j = ref (!i + if neg then 1 else 0) in
      while
        !j < upto
        && (match text.[!j] with '0' .. '9' | '.' -> true | _ -> false)
      do
        incr j
      done;
      (match float_of_string_opt (String.sub text !i (!j - !i)) with
      | Some v -> out := v :: !out
      | None -> ());
      i := !j
    end
    else incr i
  done;
  List.rev !out

(* Worst relative error any rendered cell suffers under sampling,
   with small-magnitude cells measured against 1.0 so a 0.01 vs 0.02
   MPKI cell does not read as a 100% miss. [None] when the two
   renderings do not even pair up cell for cell — that is a shape
   regression the gate in [check_json] will surface as a missing
   number. *)
let table_rel_error ~full ~sampled =
  let f = numeric_cells full and s = numeric_cells sampled in
  if List.length f <> List.length s then None
  else
    Some
      (List.fold_left2
         (fun acc fv sv ->
           Float.max acc (Float.abs (sv -. fv) /. Float.max (Float.abs fv) 1.0))
         0.0 f s)

(* Sampled-sweep probe: the representative-region plan against the
   full replay of the same warm captures. [stream_ms] is the
   denominator reported as [sampled_speedup] — the cost a harness
   without packed capture or sampling pays for the same tables. The
   sampled side pays its own planning (BBV scan + k-means) cost. *)
let sampled_probe id =
  match Repro_core.Experiment.sample_fraction () with
  | None -> (None, None)
  | Some _ when not (is_trace_sim id) -> (None, None)
  | Some fraction ->
      let was_cache = Repro_core.Cache.enabled () in
      Repro_core.Cache.set_enabled false;
      Fun.protect
        ~finally:(fun () ->
          Repro_core.Cache.set_enabled was_cache;
          Repro_core.Experiment.set_sampled (Some fraction))
        (fun () ->
          let timed () =
            let t0 = T.now_ns () in
            let text = Repro_core.Report.run_to_string ~scale ~jobs:1 id in
            (ms_since t0, text)
          in
          Repro_core.Experiment.set_sampled None;
          ignore (timed ()) (* warm the packed-capture memo *);
          let _, full = timed () in
          Repro_core.Experiment.set_sampled (Some fraction);
          let sampled_ms, sampled = timed () in
          (Some sampled_ms, table_rel_error ~full ~sampled))

(* Run one experiment under supervision. Returns the rendered table
   text (printed, and journaled by the caller when the run was
   clean), the outcome status, and the measurement row when
   [measure]. A failure that escapes the Experiment layer (the
   supervised paths degrade internally, so this is a fatal class or a
   strict-mode abort) is caught here when non-strict, rendered as a
   marked hole in the sequence, and the harness moves on to the next
   experiment. *)
let run_experiment ~jobs ~measure id =
  let name = Repro_core.Experiment.to_string id in
  let stats0 = Repro_core.Engine.stats () in
  let insts0 = T.counter "experiment.sim_insts" in
  let faults0 = Repro_util.Faults.injected () in
  let t0 = T.now_ns () in
  let text, status =
    match Repro_core.Report.run_to_string ~scale ~jobs id with
    | s ->
        (s, if Repro_core.Experiment.holes () = [] then "ok" else "degraded")
    | exception e
      when (not (Repro_core.Experiment.strict_enabled ()))
           && Repro_core.Failure.capturable e ->
        let fl = Repro_core.Failure.of_exn e in
        ( Printf.sprintf "==== %s: EXPERIMENT FAILED ====\n  %s\n\n" name
            (Repro_core.Failure.to_string fl),
          "failed" )
  in
  (* Captured now: the probe runs below re-enter Experiment.run,
     which clears the per-run hole registry. *)
  let holes_n = List.length (Repro_core.Experiment.holes ()) in
  let wall_ms = ms_since t0 in
  print_string text;
  Printf.printf "(%s %s in %.1fs at scale %g, %d job%s)\n\n" name
    (if status = "failed" then "FAILED" else "regenerated")
    (wall_ms /. 1000.0) scale jobs
    (if jobs = 1 then "" else "s");
  let row =
    if not measure then None
    else begin
      (* Deltas captured before the speedup probe, which simulates more
         instructions and takes more cache misses of its own. *)
      let sim_insts = T.counter "experiment.sim_insts" - insts0 in
      let stats1 = Repro_core.Engine.stats () in
      (* The perf probes rerun the experiment several times; numbers
         from a degraded or failed run would compare apples to holes,
         so they only run after a clean pass. *)
      let probe2 f = if status = "ok" then f () else (None, None) in
      let seq_ms, par_ms = probe2 (fun () -> speedup_probe ~jobs id) in
      let stream_ms, replay_ms = probe2 (fun () -> sweep_probe id) in
      let unfused_ms, fused_ms = probe2 (fun () -> fused_probe id) in
      let sampled_ms, max_rel_error = probe2 (fun () -> sampled_probe id) in
      Some
        { m_id = name;
          m_status = status;
          m_wall_ms = wall_ms;
          m_sim_insts = sim_insts;
          m_hits = stats1.cache_hits - stats0.cache_hits;
          m_misses = stats1.cache_misses - stats0.cache_misses;
          m_holes = holes_n;
          m_ok = stats1.tasks_run - stats0.tasks_run;
          m_retried = stats1.tasks_retried - stats0.tasks_retried;
          m_failed = stats1.tasks_failed - stats0.tasks_failed;
          m_timed_out = stats1.tasks_timed_out - stats0.tasks_timed_out;
          m_faults = Repro_util.Faults.injected () - faults0;
          m_seq_ms = seq_ms;
          m_par_ms = par_ms;
          m_stream_ms = stream_ms;
          m_replay_ms = replay_ms;
          m_unfused_ms = unfused_ms;
          m_fused_ms = fused_ms;
          m_sampled_ms = sampled_ms;
          m_max_rel_error = max_rel_error }
    end
  in
  (text, status, row)

(* ------------------------------------------------------------------ *)
(* BENCH_results.json: the machine-readable perf trajectory. *)

let measurement_json ~jobs m =
  let opt = function Some v -> J.Num v | None -> J.Null in
  let lookups = m.m_hits + m.m_misses in
  J.Obj
    [ ("id", J.Str m.m_id);
      ("status", J.Str m.m_status);
      ("wall_ms", J.Num m.m_wall_ms);
      ("sim_insts", J.Num (float_of_int m.m_sim_insts));
      ( "instr_per_s",
        J.Num
          (if m.m_wall_ms > 0.0 then
             float_of_int m.m_sim_insts /. (m.m_wall_ms /. 1000.0)
           else 0.0) );
      ("jobs", J.Num (float_of_int jobs));
      ("cache_hits", J.Num (float_of_int m.m_hits));
      ("cache_misses", J.Num (float_of_int m.m_misses));
      ( "cache_hit_rate",
        J.Num
          (if lookups > 0 then float_of_int m.m_hits /. float_of_int lookups
           else 0.0) );
      ("holes", J.Num (float_of_int m.m_holes));
      ("tasks_ok", J.Num (float_of_int m.m_ok));
      ("tasks_retried", J.Num (float_of_int m.m_retried));
      ("tasks_failed", J.Num (float_of_int m.m_failed));
      ("tasks_timed_out", J.Num (float_of_int m.m_timed_out));
      ("faults_injected", J.Num (float_of_int m.m_faults));
      ("seq_ms", opt m.m_seq_ms);
      ("par_ms", opt m.m_par_ms);
      ( "speedup_vs_j1",
        match (m.m_seq_ms, m.m_par_ms) with
        | Some s, Some p when p > 0.0 -> J.Num (s /. p)
        | _ -> J.Null );
      ("stream_ms", opt m.m_stream_ms);
      ("replay_ms", opt m.m_replay_ms);
      ( "sweep_speedup",
        match (m.m_stream_ms, m.m_replay_ms) with
        | Some s, Some r when r > 0.0 -> J.Num (s /. r)
        | _ -> J.Null );
      ("unfused_ms", opt m.m_unfused_ms);
      ("fused_ms", opt m.m_fused_ms);
      ( "fused_speedup",
        match (m.m_unfused_ms, m.m_fused_ms) with
        | Some u, Some f when f > 0.0 -> J.Num (u /. f)
        | _ -> J.Null );
      ("sampled_ms", opt m.m_sampled_ms);
      ( "sampled_speedup",
        match (m.m_stream_ms, m.m_sampled_ms) with
        | Some s, Some sp when sp > 0.0 -> J.Num (s /. sp)
        | _ -> J.Null );
      ("max_rel_error", opt m.m_max_rel_error) ]

(* The learned-replacement block (schema v7): the fig8p headline
   question in machine-readable form. [lru_mpki] is the 32KB/64B/
   4-way LRU reference, [preuse_mpki] the 16KB/64B/4-way perceptron
   configuration, both mean I-cache MPKI over every benchmark;
   [crossover_size] is the smallest swept perceptron size (bytes)
   whose mean MPKI does not exceed the LRU reference, null when no
   swept size crosses over. Only computed when fig8p was benched. *)
let learned_json ids =
  if not (List.mem Repro_core.Experiment.Fig8p ids) then J.Null
  else begin
    let sizes = [ 8192; 16384; 32768 ] in
    let configs =
      Array.of_list
        (A.Icache_sweep.cfg (32768, 64, 4)
        :: List.map
             (fun s ->
               A.Icache_sweep.cfg ~policy:F.Replacement.Preuse (s, 64, 4))
             sizes)
    in
    let profiles = W.Suites.all in
    let sums = Array.make (Array.length configs) 0.0 in
    List.iter
      (fun (p : W.Profile.t) ->
        let insts =
          max 50_000 (int_of_float (float_of_int p.total_insts *. scale))
        in
        let tr = W.Executor.trace (W.Executor.create ~insts p) in
        let rs = A.Icache_sweep.run (A.Tool.Source.of_trace tr) configs in
        Array.iteri
          (fun i r ->
            sums.(i) <- sums.(i) +. A.Icache_sweep.mpki r A.Branch_mix.Total)
          rs)
      profiles;
    let n = float_of_int (List.length profiles) in
    let mean i = sums.(i) /. n in
    let lru_mpki = mean 0 in
    let preuse_of_size sz =
      let rec idx i = function
        | s :: rest -> if s = sz then mean (i + 1) else idx (i + 1) rest
        | [] -> assert false
      in
      idx 0 sizes
    in
    let crossover =
      List.find_opt (fun sz -> preuse_of_size sz <= lru_mpki) sizes
    in
    J.Obj
      [ ("lru_mpki", J.Num lru_mpki);
        ("preuse_mpki", J.Num (preuse_of_size 16384));
        ( "crossover_size",
          match crossover with
          | Some sz -> J.Num (float_of_int sz)
          | None -> J.Null ) ]
  end

(* [serve] is the pre-rendered JSON of a --serve-bench run ([J.Null]
   when the load generator did not run); schema v7 always carries the
   field so the validator can tell "did not run" from "emitter
   regressed". [learned] is the fig8p learned-replacement summary,
   null unless fig8p was benched. *)
let emit_json ~jobs ?(serve = J.Null) ?(learned = J.Null) path rows =
  let doc =
    J.Obj
      [ ("schema_version", J.Num 7.0);
        ("scale", J.Num scale);
        ("jobs", J.Num (float_of_int jobs));
        ("packed", J.Bool (Repro_core.Experiment.packed_enabled ()));
        ("strict", J.Bool (Repro_core.Experiment.strict_enabled ()));
        ( "faults",
          match Repro_util.Faults.spec () with
          | Some s -> J.Str s
          | None -> J.Null );
        ("serve", serve);
        ("learned", learned);
        ("experiments", J.Arr (List.map (measurement_json ~jobs) rows)) ]
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (J.to_string doc));
  Printf.printf "wrote %s (%d experiment%s)\n\n" path (List.length rows)
    (if List.length rows = 1 then "" else "s")

(* Validator behind `--check-json`: the Makefile's bench-json target
   (and therefore `make smoke`) fails when the emitter regresses. *)
let check_json ?(expect_serve = false) path =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit 1)
      fmt
  in
  let contents =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> s
    | exception Sys_error e -> fail "cannot read: %s" e
  in
  match J.of_string contents with
  | Error e -> fail "malformed JSON (%s)" e
  | Ok doc -> (
      let num row name =
        match J.member name row with
        | Some (J.Num _) -> ()
        | Some _ -> fail "field %S is not a number" name
        | None -> fail "field %S missing" name
      in
      (match J.member "schema_version" doc with
      | Some (J.Num v) when v = 7.0 -> ()
      | Some (J.Num v) -> fail "schema_version %g (want 7)" v
      | Some _ -> fail "schema_version is not a number"
      | None -> fail "top-level \"schema_version\" missing");
      (* The serve block: always present in v7; null when the load
         generator did not run. When a serve run is recorded, its
         latency/throughput/lag fields must be numbers and the
         byte-identity gate must have held — a daemon that serves
         even one response different from the one-shot rendering
         fails the file. *)
      (match J.member "serve" doc with
      | None -> fail "top-level \"serve\" field missing"
      | Some J.Null ->
          if expect_serve then
            fail "\"serve\" is null but --expect-serve was given \
                  (the load generator did not run)"
      | Some (J.Obj _ as s) ->
          let snum name =
            match J.member name s with
            | Some (J.Num v) -> v
            | Some _ -> fail "serve.%s is not a number" name
            | None -> fail "serve.%s missing" name
          in
          List.iter
            (fun f -> ignore (snum f))
            [ "clients"; "requests"; "wall_ms"; "throughput_rps";
              "update_lag_ms"; "errors" ];
          (match J.member "mode" s with
          | Some (J.Str ("closed" | "open")) -> ()
          | Some (J.Str m) -> fail "serve.mode %S (want closed|open)" m
          | _ -> fail "serve.mode missing or not a string");
          List.iter
            (fun f ->
              let v = snum f in
              if Float.is_nan v || v < 0.0 then
                fail "serve.%s is %g (want a non-negative number)" f v)
            [ "p50_ms"; "p90_ms"; "p99_ms"; "update_lag_ms" ];
          if snum "p50_ms" > snum "p99_ms" then
            fail "serve.p50_ms %g > p99_ms %g" (snum "p50_ms") (snum "p99_ms");
          if snum "errors" > 0.0 then
            fail "serve.errors %g > 0" (snum "errors");
          (match J.member "responses_identical" s with
          | Some (J.Bool true) -> ()
          | Some (J.Bool false) ->
              fail "serve.responses_identical is false: a concurrent \
                    response diverged from the one-shot rendering"
          | _ -> fail "serve.responses_identical missing or not a boolean")
      | Some _ -> fail "\"serve\" is neither an object nor null");
      (* The learned block: always present in v7; null when fig8p was
         not benched. When recorded, the two MPKI anchors must be
         non-negative numbers and the crossover size, if any, one of
         the swept power-of-two capacities. *)
      (match J.member "learned" doc with
      | None -> fail "top-level \"learned\" field missing"
      | Some J.Null -> ()
      | Some (J.Obj _ as l) ->
          let lnum name =
            match J.member name l with
            | Some (J.Num v) -> v
            | Some _ -> fail "learned.%s is not a number" name
            | None -> fail "learned.%s missing" name
          in
          List.iter
            (fun f ->
              let v = lnum f in
              if Float.is_nan v || v < 0.0 then
                fail "learned.%s is %g (want a non-negative number)" f v)
            [ "lru_mpki"; "preuse_mpki" ];
          (match J.member "crossover_size" l with
          | Some J.Null -> ()
          | Some (J.Num v)
            when List.mem v [ 8192.0; 16384.0; 32768.0 ] -> ()
          | Some (J.Num v) ->
              fail "learned.crossover_size %g is not a swept capacity" v
          | _ -> fail "learned.crossover_size missing or not number/null")
      | Some _ -> fail "\"learned\" is neither an object nor null");
      match J.member "experiments" doc with
      | Some (J.Arr rows) ->
          List.iter
            (fun row ->
              let id =
                match J.member "id" row with
                | Some (J.Str id) -> id
                | _ -> fail "experiment entry without a string \"id\""
              in
              (match J.member "status" row with
              | Some (J.Str ("ok" | "degraded" | "failed")) -> ()
              | Some (J.Str s) -> fail "%s: unknown status %S" id s
              | Some _ -> fail "%s: \"status\" is not a string" id
              | None -> fail "%s: field \"status\" missing" id);
              List.iter (num row)
                [ "wall_ms"; "sim_insts"; "instr_per_s"; "jobs";
                  "cache_hits"; "cache_misses"; "cache_hit_rate"; "holes";
                  "tasks_ok"; "tasks_retried"; "tasks_failed";
                  "tasks_timed_out"; "faults_injected" ];
              (* Probe fields: null for experiments the probe does not
                 apply to, numbers otherwise. *)
              List.iter
                (fun name ->
                  match J.member name row with
                  | None | Some (J.Num _ | J.Null) -> ()
                  | Some _ -> fail "field %S is neither number nor null" name)
                [ "seq_ms"; "par_ms"; "speedup_vs_j1"; "stream_ms";
                  "replay_ms"; "sweep_speedup"; "unfused_ms"; "fused_ms";
                  "fused_speedup"; "sampled_ms"; "sampled_speedup";
                  "max_rel_error" ];
              (* Perf gate: the fused kernels must never lose to the
                 per-config simulators they replace. *)
              (match J.member "fused_speedup" row with
              | Some (J.Num v) when v < 1.0 ->
                  fail "%s: fused_speedup %.2f < 1.0 (fused kernels slower \
                        than unfused)" id v
              | _ -> ());
              (* Sampling gates: a sampled sweep must beat the full
                 streaming sweep it stands in for, and may not bend
                 any rendered table cell past the accuracy budget. *)
              (match J.member "sampled_speedup" row with
              | Some (J.Num v) when v < 1.0 ->
                  fail "%s: sampled_speedup %.2f < 1.0 (sampled sweep \
                        slower than the full streaming sweep)" id v
              | _ -> ());
              match (J.member "sampled_ms" row, J.member "max_rel_error" row)
              with
              | Some (J.Num _), Some (J.Num v) when v > 0.02 ->
                  fail "%s: max_rel_error %.4f > 0.02 (sampled tables out \
                        of accuracy budget)" id v
              | Some (J.Num _), (Some (J.Null | J.Str _ | J.Bool _ | J.Obj _
                                      | J.Arr _ ) | None) ->
                  fail "%s: sampled probe ran but full and sampled \
                        renderings did not pair up cell for cell" id
              | _ -> ())
            rows;
          Printf.printf "%s: ok (%d experiment%s)\n" path (List.length rows)
            (if List.length rows = 1 then "" else "s")
      | Some _ -> fail "\"experiments\" is not an array"
      | None -> fail "top-level \"experiments\" array missing")

(* ------------------------------------------------------------------ *)
(* Load generator for the characterization daemon (--serve-bench):
   spawn an in-process Repro_core.Server on a private Unix socket,
   drive it with concurrent clients in closed- or open-loop mode,
   reload the configuration mid-run, and record request-latency
   percentiles, throughput and the measured update lag. Every
   response is compared byte-for-byte against the one-shot rendering
   (Report.run_to_string — exactly what the CLI prints), so the
   emitted responses_identical field is a correctness gate, not a
   vibe. *)

type serve_cfg = {
  sb_clients : int;
  sb_mode : [ `Closed | `Open ];
  sb_requests : int; (* total across clients *)
  sb_rps : float; (* open-loop aggregate arrival rate *)
}

let default_serve_cfg =
  { sb_clients = 4; sb_mode = `Closed; sb_requests = 40; sb_rps = 50.0 }

type serve_result = {
  sr_clients : int;
  sr_mode : string;
  sr_requests : int; (* responses received ok *)
  sr_wall_ms : float;
  sr_throughput : float; (* ok responses per second *)
  sr_p50 : float;
  sr_p90 : float;
  sr_p99 : float;
  sr_update_lag_ms : float;
  sr_errors : int;
  sr_identical : bool;
}

let serve_bench cfg ~jobs =
  let module S = Repro_core.Server in
  let sock = Printf.sprintf "_serve_bench_%d.sock" (Unix.getpid ()) in
  let ids = [| "fig1"; "tab1"; "fig2"; "fig3"; "fig4"; "tab2" |] in
  (* One-shot reference renderings, computed through the same code
     path the CLI's `experiment` subcommand prints. Doing this first
     also warms the in-process memo the daemon shares, so the load
     phase measures dispatch and protocol, not first-trace cost. *)
  let reference =
    Array.map
      (fun s ->
        let id = Option.get (Repro_core.Experiment.of_string s) in
        Repro_core.Report.run_to_string ~scale ~jobs id)
      ids
  in
  let per_client = max 1 (cfg.sb_requests / cfg.sb_clients) in
  let total = per_client * cfg.sb_clients in
  let workers = min 16 (cfg.sb_clients + 1) in
  let server =
    S.start
      ~config:{ (S.current_config ()) with S.scale; jobs }
      ~socket:sock ~workers ()
  in
  Printf.printf
    "==== serve bench: %d %s-loop clients, %d requests over %s ====\n%!"
    cfg.sb_clients
    (match cfg.sb_mode with `Closed -> "closed" | `Open -> "open")
    total sock;
  let responses = Atomic.make 0 in (* every outcome, ok or not *)
  let ok = Atomic.make 0 in
  let errors = Atomic.make 0 in
  let mismatches = Atomic.make 0 in
  let t_start = T.now_ns () in
  let wall_start = Unix.gettimeofday () in
  let client ci =
    let conn = S.Client.connect ~socket:sock () in
    let lats = Array.make per_client nan in
    Fun.protect
      ~finally:(fun () -> S.Client.close conn)
      (fun () ->
        for k = 0 to per_client - 1 do
          let idx = (ci * per_client) + k in
          let which = idx mod Array.length ids in
          (* Open loop: arrivals on a fixed schedule, latency from the
             scheduled arrival (queueing included). Closed loop:
             back-to-back, latency is the request round trip. *)
          let target =
            match cfg.sb_mode with
            | `Closed -> None
            | `Open ->
                let t =
                  wall_start
                  +. ((float_of_int ci +. (float_of_int k *. float_of_int cfg.sb_clients))
                      /. cfg.sb_rps)
                in
                let now = Unix.gettimeofday () in
                if now < t then Unix.sleepf (t -. now);
                Some t
          in
          let t0 = T.now_ns () in
          match
            S.Client.request conn
              (J.Obj
                 [ ("op", J.Str "experiment");
                   ("id", J.Str ids.(which));
                   ("seq", J.Num (float_of_int idx)) ])
          with
          | Ok resp ->
              ignore (Atomic.fetch_and_add responses 1);
              let rtt_ms = ms_since t0 in
              lats.(k) <-
                (match target with
                | None -> rtt_ms
                | Some t -> (Unix.gettimeofday () -. t) *. 1000.0);
              (match (J.member "ok" resp, J.member "text" resp) with
              | Some (J.Bool true), Some (J.Str text) ->
                  Atomic.incr ok;
                  if not (String.equal text reference.(which)) then
                    Atomic.incr mismatches
              | _ -> Atomic.incr errors)
          | Error _ ->
              ignore (Atomic.fetch_and_add responses 1);
              Atomic.incr errors
        done;
        lats)
  in
  (* Mid-run zero-downtime reload: issued once half the responses are
     in, so the remaining half runs under the bumped generation and
     stamps a load-measured update lag. The reloaded configuration is
     identical — the point is the swap, not the change. *)
  let reloader =
    Domain.spawn (fun () ->
        let conn = S.Client.connect ~socket:sock () in
        Fun.protect
          ~finally:(fun () -> S.Client.close conn)
          (fun () ->
            while
              Atomic.get responses < total / 2
              && Atomic.get responses < total
            do
              Unix.sleepf 0.002
            done;
            match S.Client.request conn (J.Obj [ ("op", J.Str "reload") ]) with
            | Ok _ -> ()
            | Error _ -> Atomic.incr errors))
  in
  let domains =
    List.init cfg.sb_clients (fun ci -> Domain.spawn (fun () -> client ci))
  in
  let lat_arrays = List.map Domain.join domains in
  Domain.join reloader;
  let wall_ms = ms_since t_start in
  (* Make sure some gated request completed after the reload, then
     read the measured lag back through the stats op. *)
  let update_lag, errors_after =
    let conn = S.Client.connect ~socket:sock () in
    Fun.protect
      ~finally:(fun () -> S.Client.close conn)
      (fun () ->
        ignore (S.Client.request conn (J.Obj [ ("op", J.Str "ping") ]));
        match S.Client.request conn (J.Obj [ ("op", J.Str "stats") ]) with
        | Ok st -> (
            match J.member "update_lag_ms" st with
            | Some (J.Num v) -> (v, 0)
            | _ -> (nan, 1))
        | Error _ -> (nan, 1))
  in
  S.stop server;
  let lats =
    Array.of_list
      (List.concat_map
         (fun a ->
           Array.to_list a |> List.filter (fun v -> not (Float.is_nan v)))
         lat_arrays)
  in
  let p50, p90, p99 =
    if Array.length lats = 0 then (nan, nan, nan)
    else
      match Repro_util.Stats.percentiles lats [ 50.0; 90.0; 99.0 ] with
      | [ a; b; c ] -> (a, b, c)
      | _ -> (nan, nan, nan)
  in
  let n_ok = Atomic.get ok in
  let n_errors = Atomic.get errors + errors_after in
  let n_mism = Atomic.get mismatches in
  let identical = n_mism = 0 && n_errors = 0 && n_ok = total in
  let result =
    { sr_clients = cfg.sb_clients;
      sr_mode = (match cfg.sb_mode with `Closed -> "closed" | `Open -> "open");
      sr_requests = n_ok;
      sr_wall_ms = wall_ms;
      sr_throughput =
        (if wall_ms > 0.0 then float_of_int n_ok /. (wall_ms /. 1000.0)
         else 0.0);
      sr_p50 = p50;
      sr_p90 = p90;
      sr_p99 = p99;
      sr_update_lag_ms = update_lag;
      sr_errors = n_errors;
      sr_identical = identical }
  in
  Printf.printf
    "  %d/%d ok, %d errors, %d mismatches\n\
    \  latency p50 %.2fms  p90 %.2fms  p99 %.2fms\n\
    \  throughput %.1f req/s, update lag %.2fms, wall %.1fms\n\
    \  responses identical to one-shot renderings: %b\n\n%!"
    n_ok total n_errors n_mism p50 p90 p99 result.sr_throughput update_lag
    wall_ms identical;
  result

let serve_json s =
  J.Obj
    [ ("clients", J.Num (float_of_int s.sr_clients));
      ("mode", J.Str s.sr_mode);
      ("requests", J.Num (float_of_int s.sr_requests));
      ("wall_ms", J.Num s.sr_wall_ms);
      ("throughput_rps", J.Num s.sr_throughput);
      ("p50_ms", J.Num s.sr_p50);
      ("p90_ms", J.Num s.sr_p90);
      ("p99_ms", J.Num s.sr_p99);
      ("update_lag_ms", J.Num s.sr_update_lag_ms);
      ("errors", J.Num (float_of_int s.sr_errors));
      ("responses_identical", J.Bool s.sr_identical) ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator substrate: one group per
   hardware structure plus the end-to-end trace generator. *)

let microbenchmarks () =
  let open Bechamel in
  let open Toolkit in
  (* Pre-generate a small dynamic trace once; benchmarks replay it. *)
  let profile = W.Suites.find "FT" in
  let executor = W.Executor.create ~insts:60_000 profile in
  let branches =
    let acc = ref [] in
    W.Executor.run executor (fun i ->
        if i.Repro_isa.Inst.kind = Repro_isa.Inst.Cond_branch then
          acc := (i.Repro_isa.Inst.addr, i.Repro_isa.Inst.taken) :: !acc);
    Array.of_list (List.rev !acc)
  in
  let insts =
    let acc = ref [] in
    W.Executor.run executor (fun i ->
        acc := (i.Repro_isa.Inst.addr, i.Repro_isa.Inst.size) :: !acc);
    Array.of_list (List.rev !acc)
  in
  let bp_test name mk =
    Test.make ~name
      (Staged.stage (fun () ->
           let p : F.Predictor.t = mk () in
           Array.iter
             (fun (pc, taken) ->
               ignore (p.F.Predictor.predict pc);
               p.F.Predictor.update pc taken)
             branches))
  in
  let tests =
    [ bp_test "gshare-small/60k-branches" F.Zoo.gshare_small;
      bp_test "tournament-small/60k-branches" F.Zoo.tournament_small;
      bp_test "tage-big/60k-branches" F.Zoo.tage_big;
      bp_test "L-gshare-small/60k-branches" (fun () ->
          F.Zoo.with_loop (F.Zoo.gshare_small ()));
      Test.make ~name:"btb-1K/60k-branches"
        (Staged.stage (fun () ->
             let b = F.Btb.create ~entries:1024 ~assoc:4 in
             Array.iter
               (fun (pc, taken) ->
                 if taken then begin
                   ignore (F.Btb.lookup b ~pc);
                   F.Btb.insert b ~pc ~target:(pc + 16)
                 end)
               branches));
      Test.make ~name:"icache-16K/60k-insts"
        (Staged.stage (fun () ->
             let c =
               F.Icache.create ~size_bytes:16384 ~line_bytes:64 ~assoc:4 ()
             in
             Array.iter
               (fun (addr, size) -> ignore (F.Icache.access c ~addr ~size))
               insts));
      Test.make ~name:"trace-generation/60k-insts"
        (Staged.stage (fun () -> W.Executor.run executor (fun _ -> ())));
      Test.make ~name:"characterize/60k-insts"
        (Staged.stage (fun () ->
             ignore
               (A.Characterization.of_trace ~name:"bench"
                  ~suite:W.Suite.Npb
                  (W.Executor.trace executor)))) ]
  in
  print_endline "==== microbenchmarks (Bechamel, monotonic clock) ====";
  let grouped = Test.make_grouped ~name:"frontend-repro" tests in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let tbl = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) tbl [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some (t :: _) -> Printf.printf "  %-48s %12.0f ns/run\n" name t
      | Some [] | None -> Printf.printf "  %-48s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()

(* ------------------------------------------------------------------ *)

let ablation () =
  print_endline "==== ablation: per-structure contribution (NPB suite) ====";
  let insts = max 50_000 (int_of_float (1_000_000.0 *. scale)) in
  let rows =
    Repro_core.Ablation.run ~insts (W.Suites.by_suite W.Suite.Npb)
  in
  Repro_util.Table.print (Repro_core.Ablation.table rows);
  print_newline ()

let extension_study () =
  print_endline "==== extension studies (beyond the paper) ====";
  let insts = max 50_000 (int_of_float (1_000_000.0 *. scale)) in
  let benches = [ "CoMD"; "botsspar"; "FT"; "swim"; "gobmk"; "xalancbmk" ] in
  Repro_util.Table.print
    (Repro_core.Extension_study.predictor_table ~insts ~benchmarks:benches ());
  print_newline ();
  Repro_util.Table.print
    (Repro_core.Extension_study.prefetch_table ~insts
       ~benchmarks:[ "CoMD"; "FT"; "gobmk"; "xalancbmk" ] ());
  print_newline ();
  Repro_util.Table.print
    (Repro_core.Extension_study.predictability_table
       ~insts:(max 50_000 (int_of_float (500_000.0 *. scale))) ());
  print_newline ()

let thread_scaling () =
  print_endline
    "==== thread scaling: serial bottleneck vs core count (Section III-D) ====";
  let insts = max 50_000 (int_of_float (1_000_000.0 *. scale)) in
  List.iter
    (fun name ->
      let p = W.Suites.find name in
      Repro_util.Table.print
        (Repro_core.Thread_scaling.table name
           (Repro_core.Thread_scaling.sweep ~insts p));
      print_newline ())
    [ "CoEVP"; "fma3d" ]

let valid_ids () =
  String.concat " "
    (List.map Repro_core.Experiment.to_string Repro_core.Experiment.all)

(* Strip the harness flags out of the argument list, returning
   (jobs, json output file, file to validate, journal enabled,
   remaining args). Malformed [--retry] / [--timeout-ms] values warn
   on stderr and keep the default, matching the REPRO_JOBS /
   REPRO_PACKED convention — a typo degrades the supervision knob,
   it does not kill a run that may be hours in. *)
let parse_flags args =
  let json = ref None in
  let check = ref None in
  let journal = ref true in
  let serve = ref None in
  let expect_serve = ref false in
  let serve_cfg () =
    match !serve with Some c -> c | None -> default_serve_cfg
  in
  let int_flag name ~min ~max_ ~apply n =
    match int_of_string_opt n with
    | Some v when v >= min && v <= max_ -> apply v
    | Some v ->
        Printf.eprintf
          "bench: clamping %s %d to %d..%d\n%!" name v min max_;
        apply (Stdlib.max min (Stdlib.min max_ v))
    | None ->
        Printf.eprintf
          "bench: ignoring invalid %s %S (want an integer in %d..%d); \
           keeping the default\n%!"
          name n min max_
  in
  let rec go jobs acc = function
    | [] ->
        (jobs, !json, !check, !journal, !serve, !expect_serve, List.rev acc)
    | "--serve-bench" :: rest ->
        serve := Some (serve_cfg ());
        go jobs acc rest
    | "--serve-clients" :: n :: rest ->
        int_flag "--serve-clients" ~min:1 ~max_:16
          ~apply:(fun v -> serve := Some { (serve_cfg ()) with sb_clients = v })
          n;
        go jobs acc rest
    | [ "--serve-clients" ] ->
        Printf.eprintf "missing count after --serve-clients\n";
        exit 2
    | "--serve-requests" :: n :: rest ->
        int_flag "--serve-requests" ~min:1 ~max_:100_000
          ~apply:(fun v ->
            serve := Some { (serve_cfg ()) with sb_requests = v })
          n;
        go jobs acc rest
    | [ "--serve-requests" ] ->
        Printf.eprintf "missing count after --serve-requests\n";
        exit 2
    | "--serve-mode" :: m :: rest -> (
        match m with
        | "closed" ->
            serve := Some { (serve_cfg ()) with sb_mode = `Closed };
            go jobs acc rest
        | "open" ->
            serve := Some { (serve_cfg ()) with sb_mode = `Open };
            go jobs acc rest
        | _ ->
            Printf.eprintf "bad --serve-mode %S (want closed or open)\n" m;
            exit 2)
    | [ "--serve-mode" ] ->
        Printf.eprintf "missing mode after --serve-mode\n";
        exit 2
    | "--serve-rps" :: r :: rest ->
        (match float_of_string_opt r with
        | Some v when Float.is_finite v && v > 0.0 ->
            serve := Some { (serve_cfg ()) with sb_rps = v }
        | Some _ | None ->
            Printf.eprintf
              "bench: ignoring invalid --serve-rps %S (want a positive \
               rate); keeping the default\n%!"
              r);
        go jobs acc rest
    | [ "--serve-rps" ] ->
        Printf.eprintf "missing rate after --serve-rps\n";
        exit 2
    | "--expect-serve" :: rest ->
        expect_serve := true;
        go jobs acc rest
    | ("-j" | "--jobs") :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j > 0 -> go j acc rest
        | Some _ | None ->
            Printf.eprintf "bad job count %S (want a positive integer)\n" n;
            exit 2)
    | [ ("-j" | "--jobs") ] ->
        Printf.eprintf "missing job count after -j\n";
        exit 2
    | "--no-cache" :: rest ->
        Repro_core.Cache.set_enabled false;
        go jobs acc rest
    | "--no-packed" :: rest ->
        Repro_core.Experiment.set_packed false;
        go jobs acc rest
    | "--no-fused" :: rest ->
        Repro_core.Experiment.set_fused false;
        go jobs acc rest
    | "--sample" :: f :: rest when f <> "" ->
        (match float_of_string_opt f with
        | Some v ->
            (* set_sampled warns once itself when v clamps *)
            Repro_core.Experiment.set_sampled (Some v)
        | None ->
            Printf.eprintf
              "bench: ignoring invalid --sample %S (want a fraction in \
               0.01..1); keeping the default\n%!"
              f);
        go jobs acc rest
    | [ "--sample" ] ->
        Printf.eprintf "missing fraction after --sample\n";
        exit 2
    | "--no-journal" :: rest ->
        journal := false;
        go jobs acc rest
    | "--strict" :: rest ->
        Repro_core.Experiment.set_strict true;
        go jobs acc rest
    | "--retry" :: n :: rest ->
        int_flag "--retry" ~min:0 ~max_:10 ~apply:Repro_core.Engine.set_retries
          n;
        go jobs acc rest
    | [ "--retry" ] ->
        Printf.eprintf "missing count after --retry\n";
        exit 2
    | "--timeout-ms" :: n :: rest ->
        int_flag "--timeout-ms" ~min:1 ~max_:max_int
          ~apply:(fun v -> Repro_core.Engine.set_timeout_ms (Some v))
          n;
        go jobs acc rest
    | [ "--timeout-ms" ] ->
        Printf.eprintf "missing milliseconds after --timeout-ms\n";
        exit 2
    | "--faults" :: spec :: rest when spec <> "" ->
        (* Faults.configure warns once per malformed entry itself. *)
        Repro_util.Faults.configure (Some spec);
        go jobs acc rest
    | [ "--faults" ] ->
        Printf.eprintf "missing spec after --faults (site:prob:seed,...)\n";
        exit 2
    | "--json" :: file :: rest when file <> "" ->
        json := Some file;
        go jobs acc rest
    | [ "--json" ] ->
        Printf.eprintf "missing output file after --json\n";
        exit 2
    | "--check-json" :: file :: rest when file <> "" ->
        check := Some file;
        go jobs acc rest
    | [ "--check-json" ] ->
        Printf.eprintf "missing input file after --check-json\n";
        exit 2
    | a :: rest -> go jobs (a :: acc) rest
  in
  go (Repro_core.Engine.default_jobs ()) [] args

(* ------------------------------------------------------------------ *)
(* Resume journal: each completed experiment's rendered text and
   measurement row are journaled; a rerun after an interruption
   replays them byte-identically and picks up at the first experiment
   the journal does not cover. Only clean ("ok") experiments are
   journaled — degraded or failed ones rerun, so transient trouble
   heals across restarts. The fingerprint ties a journal to the
   experiment list, scale, measurement mode, JSON schema and cache
   version; any mismatch starts fresh. *)

let journal_fingerprint ~measure ids =
  String.concat "|"
    ([ "schema7"; Repro_core.Cache.version; Printf.sprintf "%h" scale;
       string_of_bool measure;
       (match Repro_core.Experiment.sample_fraction () with
       | Some f -> Printf.sprintf "%h" f
       | None -> "");
       (match Repro_util.Faults.spec () with Some s -> s | None -> "") ]
    @ List.map Repro_core.Experiment.to_string ids)

let journal_payload (text, row) : string =
  Marshal.to_string (text, (row : measurement option)) []

let journal_parse payload : string * measurement option =
  Marshal.from_string payload 0

let () =
  let jobs, json_out, check, use_journal, serve_req, expect_serve, args =
    parse_flags (List.tl (Array.to_list Sys.argv))
  in
  (match check with
  | Some path ->
      check_json ~expect_serve path;
      exit 0
  | None -> ());
  (* The JSON emitter needs the sim-insts counter, so recording is
     switched on; the span tree is only printed under REPRO_TRACE. *)
  if json_out <> None then T.set_enabled true;
  (match serve_req with
  | Some cfg ->
      (* Load-generator mode: drive the daemon instead of
         regenerating experiments; the emitted file still carries the
         full v7 schema (with an empty experiment list). *)
      let result = serve_bench cfg ~jobs in
      (match json_out with
      | Some path -> emit_json ~jobs ~serve:(serve_json result) path []
      | None -> ());
      if T.env_trace then prerr_string (T.report ());
      exit (if result.sr_identical then 0 else 1)
  | None -> ());
  let extras = [ "micro"; "ablation"; "scaling"; "extension" ] in
  let wants x = args = [] || List.mem x args in
  let wants_micro = wants "micro" in
  let ids =
    match List.filter (fun a -> not (List.mem a extras)) args with
    | [] -> if args <> [] then [] else Repro_core.Experiment.all
    | picks ->
        List.map
          (fun s ->
            match Repro_core.Experiment.of_string s with
            | Some id -> id
            | None ->
                Printf.eprintf
                  "unknown experiment %S\nvalid experiment ids: %s\n\
                   extra sections: %s\n"
                  s (valid_ids ()) (String.concat " " extras);
                exit 2)
          picks
  in
  Printf.printf
    "frontend-repro benchmark harness — scale %g (set REPRO_SCALE to change)\n\n"
    scale;
  let measure = json_out <> None in
  let journal, recovered =
    if not use_journal || ids = [] then (None, [])
    else
      match
        Repro_core.Journal.open_run ~name:"bench"
          ~fingerprint:(journal_fingerprint ~measure ids)
      with
      | Some (j, recs) -> (Some j, recs)
      | None -> (None, [])
  in
  let rows = ref [] in
  (try
     List.iter
       (fun id ->
         let name = Repro_core.Experiment.to_string id in
         match List.assoc_opt name recovered with
         | Some payload ->
             (* Completed before the interruption: replay the stored
                rendering byte-for-byte instead of recomputing. *)
             let text, row = journal_parse payload in
             print_string text;
             Printf.printf "(%s resumed from journal)\n\n" name;
             Option.iter (fun r -> rows := r :: !rows) row
         | None ->
             let text, status, row = run_experiment ~jobs ~measure id in
             Option.iter (fun r -> rows := r :: !rows) row;
             if status = "ok" then
               Option.iter
                 (fun j ->
                   Repro_core.Journal.append j ~step:name
                     ~payload:(journal_payload (text, row)))
                 journal)
       ids
   with Repro_core.Failure.Error fl ->
     (* Strict-mode abort: the journal survives, so a rerun resumes
        from the last completed experiment. *)
     Printf.eprintf "bench: aborted (strict): %s\n"
       (Repro_core.Failure.to_string fl);
     Option.iter Repro_core.Journal.close journal;
     exit 1);
  let rows = List.rev !rows in
  if ids <> [] then begin
    let s = Repro_core.Engine.stats () in
    let faults = Repro_util.Faults.injected () in
    let supervision =
      if s.tasks_retried + s.tasks_failed + s.tasks_timed_out + faults = 0
      then ""
      else
        Printf.sprintf ", supervision: %d retried, %d failed, %d timed out, \
                        %d faults injected"
          s.tasks_retried s.tasks_failed s.tasks_timed_out faults
    in
    Printf.printf
      "(engine: %d tasks over <=%d domains, persistent cache: %d hits, %d \
       misses%s%s)\n\n"
      s.tasks_run s.max_domains s.cache_hits s.cache_misses
      (if Repro_core.Cache.enabled () then "" else " [disabled]")
      supervision
  end;
  (match json_out with
  | Some path -> emit_json ~jobs ~learned:(learned_json ids) path rows
  | None -> ());
  (* Everything the journal covers has been produced and emitted: a
     finished run leaves no journal behind. *)
  Option.iter Repro_core.Journal.finish journal;
  if wants "ablation" then ablation ();
  if wants "scaling" then thread_scaling ();
  if wants "extension" then extension_study ();
  if wants_micro then microbenchmarks ();
  if T.env_trace then prerr_string (T.report ())
