(* Benchmark harness.

   Usage:
     dune exec bench/main.exe                 regenerate every table and
                                              figure, then run the
                                              Bechamel microbenchmarks
     dune exec bench/main.exe -- fig5 tab3    only those experiments
     dune exec bench/main.exe -- micro        only the microbenchmarks
     dune exec bench/main.exe -- fig1 -j 4    shard trace runs over
                                              4 domains (default: all
                                              cores; results identical)
     dune exec bench/main.exe -- --no-cache   ignore the persistent
                                              _cache/ directory
     REPRO_SCALE=0.2 dune exec bench/main.exe faster, noisier runs *)

module W = Repro_workload
module A = Repro_analysis
module F = Repro_frontend

let scale =
  match Sys.getenv_opt "REPRO_SCALE" with
  | Some s -> (try float_of_string s with Failure _ -> 1.0)
  | None -> 1.0

(* ------------------------------------------------------------------ *)
(* Experiment regeneration: one section per paper table/figure. *)

let run_experiment ~jobs id =
  let t0 = Unix.gettimeofday () in
  print_string (Repro_core.Report.run_to_string ~scale ~jobs id);
  Printf.printf "(%s regenerated in %.1fs at scale %g, %d job%s)\n\n"
    (Repro_core.Experiment.to_string id)
    (Unix.gettimeofday () -. t0)
    scale jobs
    (if jobs = 1 then "" else "s")

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks of the simulator substrate: one group per
   hardware structure plus the end-to-end trace generator. *)

let microbenchmarks () =
  let open Bechamel in
  let open Toolkit in
  (* Pre-generate a small dynamic trace once; benchmarks replay it. *)
  let profile = W.Suites.find "FT" in
  let executor = W.Executor.create ~insts:60_000 profile in
  let branches =
    let acc = ref [] in
    W.Executor.run executor (fun i ->
        if i.Repro_isa.Inst.kind = Repro_isa.Inst.Cond_branch then
          acc := (i.Repro_isa.Inst.addr, i.Repro_isa.Inst.taken) :: !acc);
    Array.of_list (List.rev !acc)
  in
  let insts =
    let acc = ref [] in
    W.Executor.run executor (fun i ->
        acc := (i.Repro_isa.Inst.addr, i.Repro_isa.Inst.size) :: !acc);
    Array.of_list (List.rev !acc)
  in
  let bp_test name mk =
    Test.make ~name
      (Staged.stage (fun () ->
           let p : F.Predictor.t = mk () in
           Array.iter
             (fun (pc, taken) ->
               ignore (p.F.Predictor.predict pc);
               p.F.Predictor.update pc taken)
             branches))
  in
  let tests =
    [ bp_test "gshare-small/60k-branches" F.Zoo.gshare_small;
      bp_test "tournament-small/60k-branches" F.Zoo.tournament_small;
      bp_test "tage-big/60k-branches" F.Zoo.tage_big;
      bp_test "L-gshare-small/60k-branches" (fun () ->
          F.Zoo.with_loop (F.Zoo.gshare_small ()));
      Test.make ~name:"btb-1K/60k-branches"
        (Staged.stage (fun () ->
             let b = F.Btb.create ~entries:1024 ~assoc:4 in
             Array.iter
               (fun (pc, taken) ->
                 if taken then begin
                   ignore (F.Btb.lookup b ~pc);
                   F.Btb.insert b ~pc ~target:(pc + 16)
                 end)
               branches));
      Test.make ~name:"icache-16K/60k-insts"
        (Staged.stage (fun () ->
             let c =
               F.Icache.create ~size_bytes:16384 ~line_bytes:64 ~assoc:4 ()
             in
             Array.iter
               (fun (addr, size) -> ignore (F.Icache.access c ~addr ~size))
               insts));
      Test.make ~name:"trace-generation/60k-insts"
        (Staged.stage (fun () -> W.Executor.run executor (fun _ -> ())));
      Test.make ~name:"characterize/60k-insts"
        (Staged.stage (fun () ->
             ignore
               (A.Characterization.of_trace ~name:"bench"
                  ~suite:W.Suite.Npb
                  (W.Executor.trace executor)))) ]
  in
  print_endline "==== microbenchmarks (Bechamel, monotonic clock) ====";
  let grouped = Test.make_grouped ~name:"frontend-repro" tests in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let tbl = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) tbl [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some (t :: _) -> Printf.printf "  %-48s %12.0f ns/run\n" name t
      | Some [] | None -> Printf.printf "  %-48s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()

(* ------------------------------------------------------------------ *)

let ablation () =
  print_endline "==== ablation: per-structure contribution (NPB suite) ====";
  let insts = max 50_000 (int_of_float (1_000_000.0 *. scale)) in
  let rows =
    Repro_core.Ablation.run ~insts (W.Suites.by_suite W.Suite.Npb)
  in
  Repro_util.Table.print (Repro_core.Ablation.table rows);
  print_newline ()

let extension_study () =
  print_endline "==== extension studies (beyond the paper) ====";
  let insts = max 50_000 (int_of_float (1_000_000.0 *. scale)) in
  let benches = [ "CoMD"; "botsspar"; "FT"; "swim"; "gobmk"; "xalancbmk" ] in
  Repro_util.Table.print
    (Repro_core.Extension_study.predictor_table ~insts ~benchmarks:benches ());
  print_newline ();
  Repro_util.Table.print
    (Repro_core.Extension_study.prefetch_table ~insts
       ~benchmarks:[ "CoMD"; "FT"; "gobmk"; "xalancbmk" ] ());
  print_newline ();
  Repro_util.Table.print
    (Repro_core.Extension_study.predictability_table
       ~insts:(max 50_000 (int_of_float (500_000.0 *. scale))) ());
  print_newline ()

let thread_scaling () =
  print_endline
    "==== thread scaling: serial bottleneck vs core count (Section III-D) ====";
  let insts = max 50_000 (int_of_float (1_000_000.0 *. scale)) in
  List.iter
    (fun name ->
      let p = W.Suites.find name in
      Repro_util.Table.print
        (Repro_core.Thread_scaling.table name
           (Repro_core.Thread_scaling.sweep ~insts p));
      print_newline ())
    [ "CoEVP"; "fma3d" ]

let valid_ids () =
  String.concat " "
    (List.map Repro_core.Experiment.to_string Repro_core.Experiment.all)

(* Strip [-j N] / [--jobs N] and [--no-cache] out of the argument
   list, returning (jobs, remaining args). *)
let parse_flags args =
  let rec go jobs acc = function
    | [] -> (jobs, List.rev acc)
    | ("-j" | "--jobs") :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j > 0 -> go j acc rest
        | Some _ | None ->
            Printf.eprintf "bad job count %S (want a positive integer)\n" n;
            exit 2)
    | [ ("-j" | "--jobs") ] ->
        Printf.eprintf "missing job count after -j\n";
        exit 2
    | "--no-cache" :: rest ->
        Repro_core.Cache.set_enabled false;
        go jobs acc rest
    | a :: rest -> go jobs (a :: acc) rest
  in
  go (Repro_core.Engine.default_jobs ()) [] args

let () =
  let jobs, args = parse_flags (List.tl (Array.to_list Sys.argv)) in
  let extras = [ "micro"; "ablation"; "scaling"; "extension" ] in
  let wants x = args = [] || List.mem x args in
  let wants_micro = wants "micro" in
  let ids =
    match List.filter (fun a -> not (List.mem a extras)) args with
    | [] -> if args <> [] then [] else Repro_core.Experiment.all
    | picks ->
        List.map
          (fun s ->
            match Repro_core.Experiment.of_string s with
            | Some id -> id
            | None ->
                Printf.eprintf
                  "unknown experiment %S\nvalid experiment ids: %s\n\
                   extra sections: %s\n"
                  s (valid_ids ()) (String.concat " " extras);
                exit 2)
          picks
  in
  Printf.printf
    "frontend-repro benchmark harness — scale %g (set REPRO_SCALE to change)\n\n"
    scale;
  List.iter (run_experiment ~jobs) ids;
  if ids <> [] then begin
    let s = Repro_core.Engine.stats () in
    Printf.printf
      "(engine: %d tasks over <=%d domains, persistent cache: %d hits, %d \
       misses%s)\n\n"
      s.tasks_run s.max_domains s.cache_hits s.cache_misses
      (if Repro_core.Cache.enabled () then "" else " [disabled]")
  end;
  if wants "ablation" then ablation ();
  if wants "scaling" then thread_scaling ();
  if wants "extension" then extension_study ();
  if wants_micro then microbenchmarks ()
