(** Structured failure taxonomy for supervised execution.

    Bare exception propagation gives a supervisor nothing to decide
    with; this module classes every failure so the {!Engine} can
    retry what is worth retrying, time out what is hung, and surface
    the rest as data instead of a crash:

    - [Transient]: worth retrying — injected faults
      ({!Repro_util.Faults.Injected}), I/O blips ([Sys_error]), and
      tasks abandoned because a sibling failed first.
    - [Corrupt_input]: an input (cache entry, journal record) failed
      its integrity check; retrying without repair is pointless. The
      cache and journal recover in place (quarantine / truncate), so
      this class reaching a supervisor means the recovery itself
      failed.
    - [Timeout]: a task exceeded its monotonic deadline. Never
      retried — a deterministic task that was too slow once will be
      too slow again.
    - [Fatal]: everything else (programming errors, fatal runtime
      conditions). Never retried. *)

type klass = Transient | Corrupt_input | Fatal | Timeout

type t = {
  klass : klass;
  site : string;  (** fault site or subsystem, e.g. ["engine.task"] *)
  message : string;
  attempts : int;  (** attempts made before giving up (>= 1) *)
}

exception Error of t
(** The taxonomy as an exception, for the boundaries that must still
    raise (strict mode, {!Engine.map} timeouts). *)

val v : ?site:string -> ?attempts:int -> klass -> string -> t

val classify : exn -> klass
(** [Transient] for {!Repro_util.Faults.Injected}, [Sys_error] and
    transient-classed {!Error}s; the carried class for other
    {!Error}s; [Fatal] for anything else. *)

val of_exn : ?attempts:int -> exn -> t
(** Wrap an arbitrary exception, preserving an existing {!Error}
    payload (with [attempts] updated when given). *)

val capturable : exn -> bool
(** Whether supervision may capture the exception as a value.
    [false] for [Out_of_memory], [Stack_overflow] and [Sys.Break]:
    those must keep unwinding. *)

val klass_to_string : klass -> string
val to_string : t -> string
(** One line, e.g.
    ["transient fault at engine.task after 3 attempts: injected fault"]. *)
