(** Batch-level resume journal for interrupted benchmark runs.

    One journal file per bench invocation lives under
    [<cache dir>/journal/]. Every completed experiment appends one
    digest-protected record (its rendered output plus its JSON row)
    and the file is fsync'd, so a run killed at any point — even
    mid-append — restarts from the last {e completed} experiment
    instead of from scratch.

    The format is torn-tail-tolerant by construction: each record
    carries its own length header and an MD5 digest over the body,
    and {!open_run} scans the file front-to-back, truncating at the
    first record that is short, garbled, or digest-mismatched. A
    crash mid-append therefore loses at most the record being
    written, never an earlier one, and a stale journal (written by a
    different benchmark list, scale, or tool version) is detected by
    a fingerprint in the file header and discarded whole.

    Journaling is best-effort: any I/O error while opening or
    appending disables it for the rest of the run (counted in
    telemetry, warned once on stderr) — the benchmarks themselves
    are never at risk. Fault-torture runs drive the
    [journal.append] (record dropped, as a full disk would drop it)
    and [journal.torn] (record half-written) sites of
    {!Repro_util.Faults} through {!append}; both degrade to "that
    step reruns on resume", never to wrong replayed data. *)

type t

val open_run : name:string -> fingerprint:string -> (t * (string * string) list) option
(** [open_run ~name ~fingerprint] opens (or creates) the journal for
    a run. Returns the handle plus the [(step, payload)] records
    recovered from a previous interrupted run with the same
    fingerprint, in append order — an empty list for a fresh run or
    a fingerprint mismatch. [None] when journaling is unavailable
    (unwritable cache directory); the caller simply runs
    unjournaled. Recovered and truncated records are counted in the
    [journal.recovered] / [journal.truncated] telemetry counters. *)

val append : t -> step:string -> payload:string -> unit
(** Append one completed-step record and fsync. [step] must not be
    empty; both strings may contain arbitrary bytes. Best-effort: an
    I/O failure disables the journal for the rest of the run. *)

val finish : t -> unit
(** The run completed: close and delete the journal, so the next run
    starts fresh. *)

val close : t -> unit
(** Close without deleting (used on abnormal exits that want the
    journal kept for resume). *)

val path : t -> string
(** The journal file backing this handle. *)
