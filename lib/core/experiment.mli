(** The experiment registry: one entry per table and figure of the
    paper's evaluation, each runnable on the synthetic benchmark
    suites and rendered as a plain-text table next to the paper's
    reference values.

    Traces are expensive, so characterizations and CMP measurements
    are memoized per [(benchmark, scale)] within the process and
    persisted across processes by {!Cache}; a harness that runs every
    experiment pays for each benchmark's trace once per kind of
    measurement, ever. Per-benchmark trace runs are sharded across
    cores by {!Engine}; each benchmark's generator is reseeded from
    its profile, so parallel results are bit-identical to sequential
    ones. *)

type id =
  | Fig1  (** dynamic branch-instruction breakdown *)
  | Fig2  (** conditional-branch bias distribution *)
  | Tab1  (** backward vs forward taken branches *)
  | Fig3  (** static and 99%-dynamic instruction footprints *)
  | Fig4  (** basic-block length, distance between taken branches *)
  | Fig5  (** branch MPKI across predictor configurations *)
  | Fig6  (** branch MPKI breakdown by mispredicted outcome *)
  | Fig7  (** BTB MPKI across sizes and associativities *)
  | Fig8  (** I-cache MPKI across sizes and associativities *)
  | Fig8p
      (** I-cache MPKI with perceptron reuse/bypass replacement,
          plus the headline 16KB-preuse vs 32KB-LRU comparison *)
  | Fig9  (** I-cache MPKI across line widths *)
  | Tab2  (** branch-predictor hardware budgets *)
  | Tab3  (** per-structure area and power on the core budget *)
  | Fig10  (** CMP execution time, power, energy, energy-delay *)
  | Fig10p
      (** CMP comparison with learned I-cache replacement in the
          tailored cores *)
  | Fig11  (** per-benchmark CMP execution time *)

val all : id list
(** Paper order. *)

val to_string : id -> string
(** Lower-case key, e.g. ["fig1"], ["tab3"]. *)

val of_string : string -> id option
val describe : id -> string

val run : ?scale:float -> ?jobs:int -> id -> Repro_util.Table.t list
(** Execute the experiment and render its tables. [scale] multiplies
    every benchmark's dynamic instruction budget (default 1.0; tests
    use ~0.05 for speed, at some fidelity cost). [jobs] bounds the
    {!Engine} pool sharding per-benchmark work (default
    {!Engine.default_jobs}; [1] forces a sequential run). The
    rendered tables do not depend on [jobs].

    Per-benchmark measurements of the trace-simulating experiments
    (figs 5-9) run supervised: a benchmark that still fails after
    {!Engine}'s retry budget degrades to a ["!"] hole — every cell an
    aggregate row would have drawn from it renders as ["!"] (never a
    silent mean over the survivors) and a final "Degraded run" table
    lists each lost measurement with its structured failure. In
    strict mode the first such failure raises {!Failure.Error}
    instead. *)

val holes : unit -> (string * Failure.t) list
(** Degradation holes recorded by the most recent {!run} (cleared at
    the start of each run): [(measurement, failure)] in the order
    they were recorded. Empty after a clean run — or any run in
    strict mode. *)

val set_strict : bool -> unit
(** Enable or disable strict (fail-fast) mode, overriding
    [REPRO_STRICT]. When strict, a supervised measurement failure
    raises {!Failure.Error} out of {!run} instead of degrading to a
    hole. Default: degrade (unless [REPRO_STRICT=1]). *)

val strict_enabled : unit -> bool

val clear_cache : ?disk:bool -> unit -> unit
(** Drop memoized characterizations, measurements and packed traces;
    with [~disk:true] also delete the persistent {!Cache} entries. *)

val set_packed : bool -> unit
(** Enable or disable packed-trace capture for the trace-simulating
    experiments (figs 5-9). When enabled (the default unless
    [REPRO_PACKED=0]), each (benchmark, scale) stream is captured once
    into a {!Repro_isa.Packed_trace} and replayed across sweep
    configurations, under an LRU byte budget ([REPRO_PACKED_MB],
    default 512); [REPRO_PACKED_CACHE=1] additionally persists
    captures through {!Cache}. Results are identical either way. *)

val packed_enabled : unit -> bool

val set_fused : bool -> unit
(** Enable or disable the fused sweep kernels
    ({!Repro_analysis.Bp_sweep}, {!Repro_analysis.Btb_sweep},
    {!Repro_analysis.Icache_sweep}) for the configuration sweeps of
    figs 5-9. When enabled (the default unless [REPRO_FUSED=0]),
    every hardware configuration of a sweep is simulated in one pass
    over each benchmark's stream, with stream-derived state (history
    register, line spans, set/tag splits) computed once and shared;
    when there are more Engine domains than benchmarks, the
    configuration axis is additionally sharded across domains.
    Results are bit-identical either way. *)

val fused_enabled : unit -> bool

val set_sampled : float option -> unit
(** Set (or clear, with [None]) representative-region sampling for
    the trace-simulating sweeps of figs 5-9, overriding
    [REPRO_SAMPLE]. The fraction is the target share of packed-trace
    regions simulated exactly; out-of-range values warn once and
    clamp to [0.01, 1.0], and fractions at or above 0.995 run
    unsampled. Each benchmark's capture is partitioned into
    phase-aligned regions, clustered by basic-block vector
    ({!Repro_analysis.Regions}), and only a representative prefix is
    simulated per configuration; the tail is extrapolated per cluster
    when the statistical gate bounds the error (cells render with a
    "≈" marker and figure means carry confidence intervals), or
    simulated exactly otherwise. Requires packed capture; with
    [REPRO_PACKED=0] sampling is ignored. *)

val sample_fraction : unit -> float option
(** Effective sampling fraction after override/env parsing and
    clamping; [None] when sampling is off (including fractions that
    clamp to the unsampled regime). *)
