module U = Repro_uarch
module W = Repro_workload

type estimate = {
  config : U.Frontend_config.t;
  area_mm2 : float;
  power_w : float;
  slowdown : float;
  avg_slowdown : float;
}

type recommendation = {
  chosen : estimate;
  baseline : estimate;
  candidates : estimate list;
  rationale : string list;
}

let default_candidates =
  let open U.Frontend_config in
  let bps =
    [ (Tournament { addr_bits = 10; history_bits = 8 }, true);
      (Tournament { addr_bits = 10; history_bits = 8 }, false);
      (Tournament { addr_bits = 12; history_bits = 14 }, false) ]
  in
  List.concat_map
    (fun (icache_bytes, icache_line) ->
      List.concat_map
        (fun (bp, bp_loop) ->
          List.map
            (fun btb_entries ->
              { icache_bytes;
                icache_line;
                icache_assoc = 8;
                icache_repl = Repro_frontend.Replacement.Lru;
                bp;
                bp_loop;
                btb_entries;
                btb_assoc = 8 })
            [ 256; 512; 2048 ])
        bps)
    [ (8192, 64); (8192, 128); (16384, 64); (16384, 128); (32768, 64) ]

(* Workload time under a configuration: serial on the candidate core
   plus its parallel share, from the same CPI model the CMP evaluation
   uses. We compare single-core time ratios, which is what "no
   performance loss" means for a worker core. *)
let workload_time (p : W.Profile.t) (m : U.Timing.measurement) =
  let stall = p.perf.data_stall_cpi in
  let s = float_of_int m.U.Timing.serial_insts in
  let par = float_of_int m.U.Timing.parallel_insts in
  (s *. U.Timing.cpi ~data_stall:stall m.U.Timing.serial)
  +. (par *. U.Timing.cpi ~data_stall:stall m.U.Timing.parallel)

let estimate ?insts config profiles =
  if profiles = [] then invalid_arg "Rebalance.estimate: no profiles";
  let ratios =
    List.map
      (fun (p : W.Profile.t) ->
        let executor = W.Executor.create ?insts p in
        let trace = W.Executor.trace executor in
        match
          U.Timing.measure_many [ config; U.Frontend_config.baseline ] trace
        with
        | [ m_cfg; m_base ] ->
            workload_time p m_cfg /. workload_time p m_base
        | _ -> assert false)
      profiles
  in
  { config;
    area_mm2 = U.Mcpat.core_area_mm2 config;
    power_w = U.Mcpat.core_power_w config;
    slowdown = List.fold_left Float.max neg_infinity ratios;
    avg_slowdown = Repro_util.Stats.mean ratios }

let recommend ?insts ?(max_slowdown = 0.03)
    ?(candidates = default_candidates) profiles =
  if candidates = [] then invalid_arg "Rebalance.recommend: no candidates";
  let baseline = estimate ?insts U.Frontend_config.baseline profiles in
  let estimates = List.map (fun c -> estimate ?insts c profiles) candidates in
  let sorted =
    List.sort (fun a b -> compare a.area_mm2 b.area_mm2) estimates
  in
  let acceptable =
    List.filter (fun e -> e.slowdown <= 1.0 +. max_slowdown) sorted
  in
  let chosen = match acceptable with e :: _ -> e | [] -> baseline in
  let rationale =
    [ Printf.sprintf "%d candidate designs swept over %d workloads"
        (List.length candidates) (List.length profiles);
      Printf.sprintf
        "picked %s: %.2f mm2 (%.0f%% of baseline), %.2f W, worst slowdown %+.1f%%"
        (U.Frontend_config.name chosen.config)
        chosen.area_mm2
        (100.0 *. chosen.area_mm2 /. baseline.area_mm2)
        chosen.power_w
        (100.0 *. (chosen.slowdown -. 1.0));
      (if chosen == baseline then
         "no downsized design met the slowdown bound; keeping the baseline"
       else
         Printf.sprintf "area saving %.0f%%, power saving %.0f%%"
           (100.0 *. (1.0 -. (chosen.area_mm2 /. baseline.area_mm2)))
           (100.0 *. (1.0 -. (chosen.power_w /. baseline.power_w)))) ]
  in
  { chosen; baseline; candidates = sorted; rationale }
