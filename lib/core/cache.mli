(** Persistent on-disk characterization cache.

    Trace-derived measurements are pure functions of a benchmark's
    profile, the instruction-budget scale, and the measurement code
    itself, so they are cached across processes under [_cache/],
    keyed by [(profile digest, scale, tool-set version)]. Entries are
    written atomically (temp file + rename) and loads are
    corruption-tolerant: a truncated, garbled, or stale-version file
    is treated as a miss and recomputed, never as an error.

    Writes go through an exclusive temp file with a distinct [.tmp]
    suffix followed by an atomic rename, so a concurrent {!clear}
    (which only touches finished [.bin] entries) can never delete an
    in-flight write, and {!entries} never counts one. Each entry
    carries a payload digest in its header {e and} repeated in a
    trailer after the payload, so a torn write (a crash that left a
    prefix at the final path, e.g. on a filesystem without atomic
    rename) can never be decoded as data. An entry that fails any of
    these checks is {e quarantined} — renamed aside with a [.bad]
    suffix, counted in {!quarantined} and in the
    [cache.quarantined] telemetry counter — instead of silently
    shadowed; the lookup then misses and recomputes.

    Fault-torture runs drive the [cache.read], [cache.decode],
    [cache.write] and [cache.write.torn] sites of
    {!Repro_util.Faults} through this module; all four are
    self-healing (the simulated failure degrades to a miss, a
    dropped store, or a quarantined entry — never wrong data).

    The cache is disabled by [REPRO_CACHE=0] (or [set_enabled false]);
    [REPRO_CACHE_DIR] overrides the directory. Hits and misses are
    counted in {!Engine.stats}; when {!Repro_util.Telemetry} is
    enabled, [cache.find]/[cache.store] spans record lookup and write
    latency and [cache.read_bytes]/[cache.write_bytes]/[cache.hits]/
    [cache.misses] counters record traffic. *)

val version : string
(** Tool-set version baked into every key. Bump it whenever the trace
    generator or an analysis tool changes behaviour: old entries then
    miss instead of serving stale measurements. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val dir : unit -> string
val set_dir : string -> unit

type key

val key : profile:Repro_workload.Profile.t -> scale:float -> kind:string -> key
(** [kind] names the value type stored under the key (e.g. ["charz"],
    ["cmp"]); distinct kinds never collide. The profile is digested
    through its full {!Repro_workload.Profile_io} text, so any
    parameter change yields a fresh key. *)

val path : key -> string
(** Absolute or cwd-relative file the entry lives in. *)

val find : key -> 'a option
(** [None] on miss, disabled cache, or undecodable entry; an
    undecodable entry is quarantined ([.bad] rename) on the way out.
    The caller must request the same type that was stored under this
    key's [kind] — the payload is deserialized with [Marshal]. Only
    I/O failures ([Sys_error]) and decode-tagged [Marshal] failures
    read as misses; any other exception — fatal runtime exceptions
    ([Out_of_memory], [Stack_overflow]) or a [Failure] raised by
    anything but the deserializer — propagates. *)

val store : key -> 'a -> unit
(** Best-effort for I/O only: [Sys_error] (read-only disk, etc.) is
    swallowed — the result of the computation is never at risk.
    Fatal runtime exceptions and [Marshal] rejecting the value (e.g.
    a closure) propagate. *)

val memoize : key -> (unit -> 'a) -> 'a
(** [find] or compute-and-[store], counting the hit or miss in
    {!Engine.stats}. With the cache disabled the computation runs
    directly and no counter moves. *)

val clear : unit -> unit
(** Delete every finished cache entry on disk, including quarantined
    [.bad] files (the directory itself stays). In-flight [.tmp] files
    of concurrent writers are left alone; their renames land after
    the clear. *)

val entries : unit -> int
(** Number of finished cache entries currently on disk; in-flight
    temp files and quarantined [.bad] files are not counted. *)

val quarantined : unit -> int
(** Number of quarantined ([.bad]) entries currently on disk. *)
