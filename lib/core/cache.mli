(** Persistent on-disk characterization cache.

    Trace-derived measurements are pure functions of a benchmark's
    profile, the instruction-budget scale, and the measurement code
    itself, so they are cached across processes under [_cache/],
    keyed by [(profile digest, scale, tool-set version)]. Entries are
    written atomically (temp file + rename) and loads are
    corruption-tolerant: a truncated, garbled, or stale-version file
    is treated as a miss and recomputed, never as an error.

    The cache is disabled by [REPRO_CACHE=0] (or [set_enabled false]);
    [REPRO_CACHE_DIR] overrides the directory. Hits and misses are
    counted in {!Engine.stats}. *)

val version : string
(** Tool-set version baked into every key. Bump it whenever the trace
    generator or an analysis tool changes behaviour: old entries then
    miss instead of serving stale measurements. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val dir : unit -> string
val set_dir : string -> unit

type key

val key : profile:Repro_workload.Profile.t -> scale:float -> kind:string -> key
(** [kind] names the value type stored under the key (e.g. ["charz"],
    ["cmp"]); distinct kinds never collide. The profile is digested
    through its full {!Repro_workload.Profile_io} text, so any
    parameter change yields a fresh key. *)

val path : key -> string
(** Absolute or cwd-relative file the entry lives in. *)

val find : key -> 'a option
(** [None] on miss, disabled cache, or undecodable entry. The caller
    must request the same type that was stored under this key's
    [kind] — the payload is deserialized with [Marshal]. *)

val store : key -> 'a -> unit
(** Best-effort: I/O failures (read-only disk, etc.) are swallowed;
    the result of the computation is never at risk. *)

val memoize : key -> (unit -> 'a) -> 'a
(** [find] or compute-and-[store], counting the hit or miss in
    {!Engine.stats}. With the cache disabled the computation runs
    directly and no counter moves. *)

val clear : unit -> unit
(** Delete every cache entry on disk (the directory itself stays). *)

val entries : unit -> int
(** Number of cache entries currently on disk. *)
