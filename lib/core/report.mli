(** Report generation: run experiments and render the results as
    plain text (for the bench harness) or as the EXPERIMENTS.md
    paper-vs-measured record.

    All entry points accept the {!Experiment.run} [jobs] parameter;
    the rendered text is identical for any pool size. *)

val run_to_string : ?scale:float -> ?jobs:int -> Experiment.id -> string
(** Header plus every table of one experiment. *)

val run_all_to_string : ?scale:float -> ?jobs:int -> unit -> string
(** Every experiment, in paper order. *)

val experiments_markdown : ?scale:float -> ?jobs:int -> unit -> string
(** The EXPERIMENTS.md body: for every table and figure, the
    reproduction status, the measured tables (fenced), and the key
    paper-vs-measured deltas. *)
