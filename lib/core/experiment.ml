module A = Repro_analysis
module W = Repro_workload
module U = Repro_uarch
module F = Repro_frontend
module Table = Repro_util.Table
module Suite = W.Suite

type id =
  | Fig1
  | Fig2
  | Tab1
  | Fig3
  | Fig4
  | Fig5
  | Fig6
  | Fig7
  | Fig8
  | Fig8p
  | Fig9
  | Tab2
  | Tab3
  | Fig10
  | Fig10p
  | Fig11

let all =
  [ Fig1; Fig2; Tab1; Fig3; Fig4; Fig5; Fig6; Fig7; Fig8; Fig8p; Fig9; Tab2;
    Tab3; Fig10; Fig10p; Fig11 ]

let to_string = function
  | Fig1 -> "fig1"
  | Fig2 -> "fig2"
  | Tab1 -> "tab1"
  | Fig3 -> "fig3"
  | Fig4 -> "fig4"
  | Fig5 -> "fig5"
  | Fig6 -> "fig6"
  | Fig7 -> "fig7"
  | Fig8 -> "fig8"
  | Fig8p -> "fig8p"
  | Fig9 -> "fig9"
  | Tab2 -> "tab2"
  | Tab3 -> "tab3"
  | Fig10 -> "fig10"
  | Fig10p -> "fig10p"
  | Fig11 -> "fig11"

let of_string s =
  List.find_opt (fun id -> String.equal (to_string id) s) all

let describe = function
  | Fig1 -> "Dynamic branch instruction breakdown per suite (% of instructions)"
  | Fig2 -> "Distribution of conditional-branch directions (bias deciles)"
  | Tab1 -> "Backward vs forward taken conditional branches"
  | Fig3 -> "Static instruction footprint and 99%-dynamic footprint"
  | Fig4 -> "Average basic-block length and distance between taken branches"
  | Fig5 -> "Branch MPKI for eleven predictor configurations"
  | Fig6 -> "Branch MPKI breakdown by mispredicted outcome (gshare)"
  | Fig7 -> "BTB MPKI across entry counts and associativities"
  | Fig8 -> "I-cache MPKI across sizes and associativities (64B lines)"
  | Fig8p ->
      "I-cache MPKI under perceptron reuse/bypass replacement (64B lines)"
  | Fig9 -> "I-cache MPKI across line widths (16KB)"
  | Tab2 -> "Branch-predictor size parameters and hardware budgets"
  | Tab3 -> "Front-end structure shares of core area and power"
  | Fig10 -> "CMP execution time, power, energy and ED per suite"
  | Fig10p -> "CMP comparison with learned I-cache replacement in the \
               tailored core"
  | Fig11 -> "Per-benchmark normalized CMP execution time"

(* ------------------------------------------------------------------ *)
(* Memoized measurements.

   Three layers: a process-local memo table (guarded by a mutex so
   Engine workers can share it), the persistent Cache underneath it,
   and the actual trace run. Concurrent workers may race to compute
   the same key; the computation is deterministic, so the duplicate
   work is wasted but the surviving entry is identical either way. *)

let memo_lock = Mutex.create ()
let locked f = Mutex.protect memo_lock f

let characterizations : (string * float, A.Characterization.t) Hashtbl.t =
  Hashtbl.create 64

let scaled_insts (p : W.Profile.t) scale =
  max 50_000 (int_of_float (float_of_int p.total_insts *. scale))

(* Every trace actually simulated bumps this telemetry counter; the
   bench JSON emitter divides its delta by wall time to report
   simulated instructions per second. Cache hits simulate nothing
   and count nothing. *)
let note_sim_insts n = Repro_util.Telemetry.add "experiment.sim_insts" n

let characterize scale (p : W.Profile.t) =
  let key = (p.name, scale) in
  match locked (fun () -> Hashtbl.find_opt characterizations key) with
  | Some c -> c
  | None ->
      let c =
        Cache.memoize (Cache.key ~profile:p ~scale ~kind:"charz") (fun () ->
            let insts = scaled_insts p scale in
            note_sim_insts insts;
            A.Characterization.of_profile ~insts p)
      in
      locked (fun () -> Hashtbl.replace characterizations key c);
      c

let cmp_evals :
    (string * float, (U.Cmp.config * U.Cmp.eval) list) Hashtbl.t =
  Hashtbl.create 64

let evaluate_cmps scale (p : W.Profile.t) =
  let key = (p.name, scale) in
  match locked (fun () -> Hashtbl.find_opt cmp_evals key) with
  | Some e -> e
  | None ->
      (* Only the eval list is persisted; the config tags are static
         program values and are re-attached on the way out. *)
      let evals =
        Cache.memoize (Cache.key ~profile:p ~scale ~kind:"cmp") (fun () ->
            let insts = scaled_insts p scale in
            note_sim_insts insts;
            U.Cmp.evaluate_many ~insts U.Cmp.standard_configs p)
      in
      let tagged = List.combine U.Cmp.standard_configs evals in
      locked (fun () -> Hashtbl.replace cmp_evals key tagged);
      tagged

(* fig10p's learned-replacement CMP evaluations: same shape as
   [evaluate_cmps] over {!U.Cmp.learned_configs}, under its own cache
   kind so the two artifact families can never collide. *)
let cmp_evals_learned :
    (string * float, (U.Cmp.config * U.Cmp.eval) list) Hashtbl.t =
  Hashtbl.create 64

let evaluate_cmps_learned scale (p : W.Profile.t) =
  let key = (p.name, scale) in
  match locked (fun () -> Hashtbl.find_opt cmp_evals_learned key) with
  | Some e -> e
  | None ->
      let evals =
        Cache.memoize (Cache.key ~profile:p ~scale ~kind:"cmpl") (fun () ->
            let insts = scaled_insts p scale in
            note_sim_insts insts;
            U.Cmp.evaluate_many ~insts U.Cmp.learned_configs p)
      in
      let tagged = List.combine U.Cmp.learned_configs evals in
      locked (fun () -> Hashtbl.replace cmp_evals_learned key tagged);
      tagged

(* ------------------------------------------------------------------ *)
(* Packed traces.

   The trace-simulating experiments (figs 5-9) sweep many hardware
   configurations over each (profile, scale) instruction stream; some
   visit the same stream from several figures. Rather than re-running
   the generator on every visit, the stream is captured once into a
   {!Repro_isa.Packed_trace} and replayed. An LRU byte budget
   (REPRO_PACKED_MB, default 512) keeps the resident set bounded;
   REPRO_PACKED=0 disables capture entirely and REPRO_PACKED_CACHE=1
   additionally persists captures through {!Cache}. *)

(* Environment toggles are re-read on use (tests flip them with
   [putenv], and the Server daemon's reload path re-reads them) but
   validated with a warning only once per variable, through the
   shared {!Repro_util.Env} helper: a malformed value warns on stderr
   with the accepted forms and falls back to the default instead of
   being silently ignored. *)
let env_flag name ~default = Repro_util.Env.flag ~name ~default

let packed_override = ref None
let set_packed b = packed_override := Some b

let packed_enabled () =
  match !packed_override with
  | Some b -> b
  | None -> env_flag "REPRO_PACKED" ~default:true

let packed_cache () = env_flag "REPRO_PACKED_CACHE" ~default:false

let fused_override = ref None
let set_fused b = fused_override := Some b

let fused_enabled () =
  match !fused_override with
  | Some b -> b
  | None -> env_flag "REPRO_FUSED" ~default:true

(* ------------------------------------------------------------------ *)
(* Representative-region sampling (figs 5-9).

   [REPRO_SAMPLE=FRAC] / [--sample FRAC] makes the trace-simulating
   sweeps run over a {!Repro_analysis.Regions} plan instead of the
   full capture: each benchmark's packed trace is partitioned into
   phase-aligned regions, clustered by basic-block vector, and only a
   contiguous representative prefix is simulated per configuration —
   the tail is extrapolated per cluster when the statistical gate
   bounds the error under {!Repro_analysis.Regions.default_tol}, or
   simulated exactly otherwise. Extrapolated cells render with a "≈"
   marker. A fraction at or above 0.995 (or at most four regions)
   degenerates to the exact code path bit for bit. *)

let warn_once = Repro_util.Env.warn_once

(* Mirrors Engine's REPRO_JOBS handling: malformed values warn once
   and fall back; out-of-range values warn once and clamp. Non-finite
   fractions are rejected outright (sampling disabled) — a NaN
   fraction would silently leak into every plan and cache key. *)
let clamp_fraction ~where f =
  if not (Float.is_finite f) then begin
    warn_once ("sample-invalid:" ^ where)
      (Printf.sprintf
         "frontend-repro: ignoring non-finite %s=%g (want a fraction in \
          [0.01, 1.0]); sampling disabled"
         where f);
    None
  end
  else begin
    let f' =
      if f < 0.01 || f > 1.0 then begin
        warn_once ("sample-clamp:" ^ where)
          (Printf.sprintf
             "frontend-repro: clamping %s=%g to the accepted sampling range \
              [0.01, 1.0]"
             where f);
        Float.max 0.01 (Float.min 1.0 f)
      end
      else f
    in
    (* at or above 0.995 the plan is exhaustive anyway: run unsampled *)
    if f' >= 0.995 then None else Some f'
  end

let sample_override : float option option ref = ref None
let set_sampled f = sample_override := Some f

let sample_fraction () =
  match !sample_override with
  | Some None -> None
  | Some (Some f) -> clamp_fraction ~where:"--sample" f
  | None -> (
      (* Env warns once on malformed / non-finite values and clamps
         out-of-range ones into [0.01, 1.0]. *)
      match
        Repro_util.Env.float_clamped ~name:"REPRO_SAMPLE" ~min:0.01 ~max:1.0 ()
      with
      | None -> None
      | Some f when f >= 0.995 -> None (* exhaustive plan: run unsampled *)
      | Some f -> Some f)

(* ------------------------------------------------------------------ *)
(* Strict mode and degradation holes.

   A benchmark whose supervised measurement fails (after Engine's
   retry budget) normally degrades: the failure is recorded here and
   the affected table cells render as a hole marker instead of a
   number, so one bad benchmark cannot abort a whole run. Strict mode
   ([--strict] / [REPRO_STRICT=1]) restores fail-fast: the first such
   failure raises {!Failure.Error}. *)

let strict_override = ref None
let set_strict b = strict_override := Some b

let strict_enabled () =
  match !strict_override with
  | Some b -> b
  | None -> env_flag "REPRO_STRICT" ~default:false

(* Cell marker for a measurement lost to a failed benchmark. A bare
   "-" already means "metric not defined here"; "!" is visibly a
   casualty. *)
let hole_cell = "!"

let holes_ref : (string * Failure.t) list ref = ref []

let record_hole where (fl : Failure.t) =
  if strict_enabled () then raise (Failure.Error fl)
  else begin
    locked (fun () -> holes_ref := (where, fl) :: !holes_ref);
    Repro_util.Telemetry.incr "experiment.holes"
  end

let holes () = locked (fun () -> List.rev !holes_ref)
let clear_holes () = locked (fun () -> holes_ref := [])

let packed_budget_bytes =
  lazy
    ((match
        Repro_util.Env.int_clamped ~name:"REPRO_PACKED_MB" ~min:1
          ~max:1_048_576 ()
      with
     | Some mb -> mb
     | None -> 512)
    * 1024 * 1024)

type packed_entry = {
  pt : Repro_isa.Packed_trace.t;
  bytes : int;
  mutable stamp : int; (* last-use clock tick, for LRU eviction *)
}

let packed_traces : (string * float, packed_entry) Hashtbl.t =
  Hashtbl.create 64

let packed_bytes = ref 0
let packed_clock = ref 0

(* Caller holds [memo_lock]. Never evicts [keep] (the entry being
   inserted may itself exceed the budget; it must still be usable). *)
let evict_packed ~keep =
  let continue_ = ref true in
  while
    !continue_
    && !packed_bytes > Lazy.force packed_budget_bytes
    && Hashtbl.length packed_traces > 1
  do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          if k = keep then acc
          else
            match acc with
            | Some (_, b) when b.stamp <= e.stamp -> acc
            | _ -> Some (k, e))
        packed_traces None
    in
    match victim with
    | None -> continue_ := false
    | Some (k, e) ->
        Hashtbl.remove packed_traces k;
        packed_bytes := !packed_bytes - e.bytes
  done

let capture scale (p : W.Profile.t) =
  let insts = scaled_insts p scale in
  W.Executor.packed (W.Executor.create ~insts p)

let packed_trace scale (p : W.Profile.t) =
  let key = (p.name, scale) in
  let hit =
    locked (fun () ->
        match Hashtbl.find_opt packed_traces key with
        | Some e ->
            incr packed_clock;
            e.stamp <- !packed_clock;
            Some e.pt
        | None -> None)
  in
  match hit with
  | Some pt -> pt
  | None ->
      let pt =
        if packed_cache () then
          Cache.memoize (Cache.key ~profile:p ~scale ~kind:"ptrace") (fun () ->
              capture scale p)
        else capture scale p
      in
      let bytes = Repro_isa.Packed_trace.byte_size pt in
      locked (fun () ->
          if not (Hashtbl.mem packed_traces key) then begin
            incr packed_clock;
            Hashtbl.replace packed_traces key
              { pt; bytes; stamp = !packed_clock };
            packed_bytes := !packed_bytes + bytes;
            evict_packed ~keep:key
          end);
      pt

(* Sampling plans, memoized like the other measurements: per
   (benchmark, scale, fraction) in-process and persisted through
   {!Cache} with the fraction folded into the key kind, so sampled
   and unsampled artifacts can never collide. *)
let plans : (string * float * float, A.Regions.t) Hashtbl.t = Hashtbl.create 64

(* Deterministic clustering seed from the profile's full content:
   re-runs of one profile always cluster identically, and any profile
   edit reshuffles the k-means initialization. *)
let plan_seed (p : W.Profile.t) =
  let d = Digest.to_hex (Digest.string (W.Profile_io.to_string p)) in
  int_of_string ("0x" ^ String.sub d 0 8)

let region_plan scale fraction (p : W.Profile.t) =
  let key = (p.name, scale, fraction) in
  match locked (fun () -> Hashtbl.find_opt plans key) with
  | Some pl -> pl
  | None ->
      let pl =
        Cache.memoize
          (Cache.key ~profile:p ~scale
             ~kind:(Printf.sprintf "plan:%h" fraction))
          (fun () ->
            A.Regions.plan ~fraction ~seed:(plan_seed p) (packed_trace scale p))
      in
      locked (fun () -> Hashtbl.replace plans key pl);
      pl

let clear_cache ?(disk = false) () =
  locked (fun () ->
      Hashtbl.reset characterizations;
      Hashtbl.reset cmp_evals;
      Hashtbl.reset cmp_evals_learned;
      Hashtbl.reset packed_traces;
      Hashtbl.reset plans;
      packed_bytes := 0);
  if disk then Cache.clear ()

(* ------------------------------------------------------------------ *)
(* Helpers *)

(* Replayable source for one simulation pass of the trace-simulating
   experiments (figs 5-9); accounts the simulated instructions per
   pass exactly as a streaming run would. *)
let source scale (p : W.Profile.t) =
  let insts = scaled_insts p scale in
  note_sim_insts insts;
  if packed_enabled () then A.Tool.Source.of_packed (packed_trace scale p)
  else
    A.Tool.Source.of_trace (W.Executor.trace (W.Executor.create ~insts p))

(* Source for the sweep simulations of figs 5-9: with sampling active
   (and a packed capture to sample from), the capture is wrapped in
   its representative-region plan; an exhaustive plan collapses to
   the plain packed source inside [of_sampled]. *)
let sampled_source scale (p : W.Profile.t) =
  match sample_fraction () with
  | Some f when packed_enabled () ->
      let insts = scaled_insts p scale in
      note_sim_insts insts;
      A.Tool.Source.of_sampled (packed_trace scale p) (region_plan scale f p)
  | _ -> source scale p

let serial = A.Branch_mix.Only Repro_isa.Section.Serial
let parallel = A.Branch_mix.Only Repro_isa.Section.Parallel
let total = A.Branch_mix.Total

(* Supervised per-benchmark map for the trace-simulating figures:
   every item runs under Engine's retry/timeout policy, and an item
   that still fails becomes [Error ()] after its failure is recorded
   as a degradation hole (or raised, in strict mode). In strict mode
   the batch also fails fast — there is no point finishing siblings
   whose results will be discarded by the raise. *)
let bench_map ~jobs ~where name_of f items =
  let results =
    Engine.map_result ~jobs ~fail_fast:(strict_enabled ()) f items
  in
  List.map2
    (fun item r ->
      match r with
      | Ok v -> Ok v
      | Error fl ->
          record_hole (where ^ "/" ^ name_of item) fl;
          Error ())
    items results

(* Sweep sharding for the fused kernels. When the Engine pool has
   more domains than there are benchmarks to shard over, the fused
   sweep's configuration axis is split into contiguous ranges and
   each (benchmark, range) pair becomes one task, so [-jN] keeps
   helping inside a single benchmark. Slicing never changes results:
   every quantity a sweep kernel shares across configurations
   (history register, line spans, set/tag decomposition) is a
   function of the instruction stream alone, so each range replays
   to exactly the state a whole-sweep run would give its slice
   (pinned in test_sweep.ml). [run_range p lo hi] must return the
   per-config results for configs [lo, hi).

   Supervision composes with slicing: a benchmark whose parts all
   survived stitches back together exactly as before; a benchmark
   with any failed part becomes one hole (the partial results are
   discarded — a row mixing real and missing configurations would
   not be renderable). *)
let sweep_map ~jobs ~where profiles nconfigs run_range =
  let nbench = List.length profiles in
  let groups = max 1 (min nconfigs (jobs / max 1 nbench)) in
  if groups = 1 then
    bench_map ~jobs ~where
      (fun (p : W.Profile.t) -> p.name)
      (fun p -> run_range p 0 nconfigs)
      profiles
  else begin
    let ranges =
      List.init groups (fun g ->
          (g * nconfigs / groups, (g + 1) * nconfigs / groups))
    in
    let tasks =
      List.concat_map (fun p -> List.map (fun r -> (p, r)) ranges) profiles
    in
    let parts =
      Engine.map_result ~jobs ~fail_fast:(strict_enabled ())
        (fun (p, (lo, hi)) -> run_range p lo hi)
        tasks
    in
    (* Reassemble: tasks were emitted benchmark-major with ranges in
       ascending order, so consecutive runs of [groups] parts belong
       to one benchmark. *)
    let rec take n l acc =
      if n = 0 then (List.rev acc, l)
      else
        match l with
        | x :: tl -> take (n - 1) tl (x :: acc)
        | [] -> invalid_arg "sweep_map: uneven parts"
    in
    let rec stitch profiles parts =
      match profiles with
      | [] -> []
      | (p : W.Profile.t) :: ptl ->
          let mine, rest = take groups parts [] in
          let row =
            List.fold_left
              (fun acc part ->
                match (acc, part) with
                | Ok done_, Ok arr -> Ok (arr :: done_)
                | (Error _ as e), _ -> e
                | Ok _, Error fl -> Error fl)
              (Ok []) mine
          in
          (match row with
          | Ok arrs -> Ok (Array.concat (List.rev arrs))
          | Error fl ->
              record_hole (where ^ "/" ^ p.name) fl;
              Error ())
          :: stitch ptl rest
    in
    stitch profiles parts
  end

(* Cell marker for a value containing a sampled extrapolation: "≈"
   flags that the number is a statistical estimate with a bounded
   confidence interval rather than an exact count. *)
let approx_mark = "\xE2\x89\x88" (* UTF-8 "≈" *)
let mark_approx is s = if is then approx_mark ^ s else s

(* Mean of column [i] across per-benchmark (value, ci) rows, skipping
   benchmarks where the metric is undefined. *)
let mean_at per_bench i =
  let values =
    List.filter_map
      (fun row ->
        let v, _ = row.(i) in
        if Float.is_nan v then None else Some v)
      per_bench
  in
  Repro_util.Stats.mean values

(* Render a supervised per-benchmark result set as [n] aggregate
   cells. Only a complete set aggregates: if any member benchmark
   failed, every cell is a hole — silently averaging the survivors
   would present wrong data with nothing to flag it. A cell whose
   mean contains any extrapolated contribution (a member benchmark
   reported a nonzero confidence interval) is marked "≈". *)
let mean_cells ?(fmt = Table.fmt_float ~decimals:2) per_bench n =
  let oks = List.filter_map Result.to_option per_bench in
  if List.length oks <> List.length per_bench then
    List.init n (fun _ -> hole_cell)
  else
    List.init n (fun i ->
        let anyci = List.exists (fun row -> snd row.(i) > 0.0) oks in
        mark_approx anyci (fmt (mean_at oks i)))

let suite_results scale suite =
  List.map (characterize scale) (W.Suites.by_suite suite)

let mean = A.Characterization.suite_mean
let pct x = x *. 100.0
let f1 = Table.fmt_float ~decimals:1
let f2 = Table.fmt_float ~decimals:2

let paper_of assoc suite =
  match List.find_opt (fun (s, _, _) -> Suite.equal s suite) assoc with
  | Some (_, v, _) -> v
  | None -> nan

(* Per-suite, per-scope metric table with a paper column. *)
let scoped_table ~title ~metric ~paper scale =
  let t =
    Table.create ~title
      [ ("suite", Table.Left); ("total", Table.Right); ("serial", Table.Right);
        ("parallel", Table.Right); ("paper(total)", Table.Right) ]
  in
  List.iter
    (fun suite ->
      let rs = suite_results scale suite in
      Table.add_row t
        [ Suite.to_string suite;
          f1 (mean rs (metric total));
          f1 (mean rs (metric serial));
          (if Suite.is_hpc suite then f1 (mean rs (metric parallel)) else "-");
          f1 (paper suite) ])
    Suite.all;
  t

(* ------------------------------------------------------------------ *)
(* Fig 1 *)

let fig1 scale =
  let breakdown =
    Table.create ~title:"Fig 1: dynamic branch breakdown [% of instructions]"
      ([ ("suite", Table.Left); ("scope", Table.Left) ]
      @ List.map
          (fun c -> (A.Branch_mix.category_to_string c, Table.Right))
          A.Branch_mix.categories
      @ [ ("all branches", Table.Right) ])
  in
  List.iter
    (fun suite ->
      let rs = suite_results scale suite in
      let scopes =
        if Suite.is_hpc suite then
          [ ("total", total); ("serial", serial); ("parallel", parallel) ]
        else [ ("total", total) ]
      in
      List.iter
        (fun (label, scope) ->
          Table.add_row breakdown
            ([ Suite.to_string suite; label ]
            @ List.map
                (fun c ->
                  f2
                    (pct
                       (mean rs (fun r ->
                            A.Branch_mix.fraction r.A.Characterization.mix
                              scope c))))
                A.Branch_mix.categories
            @ [ f1
                  (pct
                     (mean rs (fun r ->
                          A.Branch_mix.branch_fraction
                            r.A.Characterization.mix scope))) ]))
        scopes;
      Table.add_separator breakdown)
    Suite.all;
  let vs_paper =
    scoped_table ~title:"Fig 1 (summary): branch share [%] vs paper"
      ~metric:(fun scope r ->
        pct (A.Branch_mix.branch_fraction r.A.Characterization.mix scope))
      ~paper:(paper_of Paper_data.fig1_branch_pct)
      scale
  in
  [ breakdown; vs_paper ]

(* ------------------------------------------------------------------ *)
(* Fig 2 *)

let fig2 scale =
  let t =
    Table.create
      ~title:
        "Fig 2: distribution of conditional-branch bias [% of dynamic \
         conditionals per taken-rate decile]"
      ([ ("suite", Table.Left); ("scope", Table.Left) ]
      @ List.init 10 (fun i ->
            (Printf.sprintf "%d-%d%%" (i * 10) ((i + 1) * 10), Table.Right))
      @ [ ("biased", Table.Right); ("paper", Table.Right) ])
  in
  List.iter
    (fun suite ->
      let rs = suite_results scale suite in
      let scopes =
        if Suite.is_hpc suite then
          [ ("total", total); ("serial", serial); ("parallel", parallel) ]
        else [ ("total", total) ]
      in
      List.iter
        (fun (label, scope) ->
          let decile i =
            mean rs (fun r ->
                (A.Branch_bias.deciles r.A.Characterization.bias scope).(i))
          in
          Table.add_row t
            ([ Suite.to_string suite; label ]
            @ List.init 10 (fun i -> f1 (pct (decile i)))
            @ [ f1
                  (pct
                     (mean rs (fun r ->
                          A.Branch_bias.biased_fraction
                            r.A.Characterization.bias scope)));
                (if label = "total" then
                   f1 (paper_of Paper_data.fig2_biased_pct suite)
                 else "") ]))
        scopes;
      Table.add_separator t)
    Suite.all;
  [ t ]

(* ------------------------------------------------------------------ *)
(* Table I *)

let tab1 scale =
  let t =
    Table.create
      ~title:"Table I: backward vs forward taken conditional branches [%]"
      [ ("suite", Table.Left); ("serial bwd", Table.Right);
        ("serial fwd", Table.Right); ("parallel bwd", Table.Right);
        ("parallel fwd", Table.Right); ("paper (bwd s/p)", Table.Right) ]
  in
  List.iter
    (fun suite ->
      let rs = suite_results scale suite in
      let bwd scope =
        pct
          (mean rs (fun r ->
               A.Branch_bias.backward_taken_fraction r.A.Characterization.bias
                 scope))
      in
      let paper_s, paper_p =
        match
          List.find_opt
            (fun (s, _, _) -> Suite.equal s suite)
            Paper_data.tab1_backward_pct
        with
        | Some (_, s, p) -> (s, p)
        | None -> (None, None)
      in
      let show = function Some v -> f1 v | None -> "-" in
      if Suite.is_hpc suite then
        Table.add_row t
          [ Suite.to_string suite; f1 (bwd serial); f1 (100.0 -. bwd serial);
            f1 (bwd parallel); f1 (100.0 -. bwd parallel);
            Printf.sprintf "%s / %s" (show paper_s) (show paper_p) ]
      else
        Table.add_row t
          [ Suite.to_string suite; f1 (bwd total); f1 (100.0 -. bwd total);
            "-"; "-"; show paper_s ])
    Suite.all;
  [ t ]

(* ------------------------------------------------------------------ *)
(* Fig 3 *)

let fig3 scale =
  let t =
    Table.create
      ~title:"Fig 3: instruction footprints [KB]"
      [ ("suite", Table.Left); ("static", Table.Right);
        ("99% dyn total", Table.Right); ("99% dyn serial", Table.Right);
        ("99% dyn parallel", Table.Right); ("paper static", Table.Right) ]
  in
  List.iter
    (fun suite ->
      let rs = suite_results scale suite in
      let kb f = mean rs (fun r -> float_of_int (f r) /. 1024.0) in
      Table.add_row t
        [ Suite.to_string suite;
          f1 (kb (fun r -> A.Footprint.static_bytes r.A.Characterization.footprint total));
          f1 (kb (fun r ->
                 A.Footprint.dynamic_bytes r.A.Characterization.footprint total
                   ~coverage:0.99));
          f1 (kb (fun r ->
                 A.Footprint.dynamic_bytes r.A.Characterization.footprint serial
                   ~coverage:0.99));
          (if Suite.is_hpc suite then
             f1 (kb (fun r ->
                     A.Footprint.dynamic_bytes r.A.Characterization.footprint
                       parallel ~coverage:0.99))
           else "-");
          f1 (paper_of Paper_data.fig3_static_kb suite) ])
    Suite.all;
  [ t ]

(* ------------------------------------------------------------------ *)
(* Fig 4 *)

let fig4 scale =
  let bbl =
    scoped_table ~title:"Fig 4a: average basic-block length [bytes]"
      ~metric:(fun scope r ->
        A.Bblock_stats.avg_block_bytes r.A.Characterization.bblocks scope)
      ~paper:(paper_of Paper_data.fig4_bbl_bytes)
      scale
  in
  let dist =
    scoped_table
      ~title:"Fig 4b: average distance between taken branches [bytes]"
      ~metric:(fun scope r ->
        A.Bblock_stats.avg_taken_distance r.A.Characterization.bblocks scope)
      ~paper:(fun _ -> nan)
      scale
  in
  [ bbl; dist ]

(* ------------------------------------------------------------------ *)
(* Fig 5 *)

let fig5_suite_mpki ~jobs scale suite =
  let profiles = W.Suites.by_suite suite in
  let names = Array.of_list F.Zoo.all_names in
  let where = "fig5/" ^ Suite.to_string suite in
  if fused_enabled () then
    sweep_map ~jobs ~where profiles (Array.length names) (fun p lo hi ->
        let specs =
          Array.init (hi - lo) (fun i -> A.Bp_sweep.of_name names.(lo + i))
        in
        Array.map
          (fun r -> (A.Bp_sweep.mpki r total, A.Bp_sweep.mpki_ci r total))
          (A.Bp_sweep.run (sampled_source scale p) specs))
  else
    bench_map ~jobs ~where
      (fun (p : W.Profile.t) -> p.name)
      (fun (p : W.Profile.t) ->
        let sims =
          List.map
            (fun n -> A.Bp_sim.create (F.Zoo.by_name n))
            F.Zoo.all_names
        in
        A.Bp_sim.run_all (sampled_source scale p) sims;
        Array.of_list (List.map (fun s -> (A.Bp_sim.mpki s total, 0.0)) sims))
      profiles

let fig5 ~jobs scale =
  let t =
    Table.create ~title:"Fig 5: branch MPKI per predictor configuration"
      ([ ("suite", Table.Left) ]
      @ List.map (fun n -> (n, Table.Right)) F.Zoo.all_names)
  in
  List.iter
    (fun suite ->
      let per_bench = fig5_suite_mpki ~jobs scale suite in
      Table.add_row t
        (Suite.to_string suite
        :: mean_cells per_bench (List.length F.Zoo.all_names));
      let paper =
        List.assoc_opt suite
          (List.map (fun (s, l) -> (s, l)) Paper_data.fig5_mpki)
      in
      match paper with
      | None -> ()
      | Some l ->
          Table.add_row t
            ("  (paper, chart-read)"
            :: List.map
                 (fun n ->
                   match List.assoc_opt n l with
                   | Some v -> f1 v
                   | None -> "-")
                 F.Zoo.all_names))
    Suite.all;
  [ t ]

(* ------------------------------------------------------------------ *)
(* Fig 6 *)

let fig6 ~jobs scale =
  let configs = [ "gshare-big"; "gshare-small"; "L-gshare-small" ] in
  let t =
    Table.create
      ~title:
        "Fig 6: branch MPKI breakdown for gshare (misses on not-taken / \
         taken-backward / taken-forward)"
      ([ ("benchmark", Table.Left) ]
      @ List.concat_map
          (fun n ->
            [ (n ^ " nt", Table.Right); (n ^ " tb", Table.Right);
              (n ^ " tf", Table.Right) ])
          configs)
  in
  let ncells = List.length configs * List.length A.Bp_sim.causes in
  let rows =
    bench_map ~jobs ~where:"fig6" Fun.id
      (fun name ->
        let p = W.Suites.find name in
        let cells =
          if fused_enabled () then
            let specs =
              Array.of_list (List.map A.Bp_sweep.of_name configs)
            in
            A.Bp_sweep.run (sampled_source scale p) specs
            |> Array.to_list
            |> List.concat_map (fun r ->
                   List.map
                     (fun cause ->
                       mark_approx (A.Bp_sweep.approx r)
                         (f2 (A.Bp_sweep.mpki_by_cause r total cause)))
                     A.Bp_sim.causes)
          else begin
            let sims =
              List.map (fun n -> A.Bp_sim.create (F.Zoo.by_name n)) configs
            in
            A.Bp_sim.run_all (sampled_source scale p) sims;
            List.concat_map
              (fun sim ->
                List.map
                  (fun cause -> f2 (A.Bp_sim.mpki_by_cause sim total cause))
                  A.Bp_sim.causes)
              sims
          end
        in
        cells)
      W.Suites.fig6_subset
  in
  List.iter2
    (fun name row ->
      match row with
      | Ok cells -> Table.add_row t (name :: cells)
      | Error () -> Table.add_row t (name :: List.init ncells (fun _ -> hole_cell)))
    W.Suites.fig6_subset rows;
  [ t ]

(* ------------------------------------------------------------------ *)
(* Fig 7 *)

let btb_configs =
  List.concat_map
    (fun entries -> List.map (fun assoc -> (entries, assoc)) [ 2; 4; 8 ])
    [ 256; 512; 1024 ]

let fig7 ~jobs scale =
  let configs = Array.of_list btb_configs in
  let t =
    Table.create ~title:"Fig 7: BTB MPKI (entries x associativity)"
      ([ ("suite", Table.Left) ]
      @ List.map
          (fun (e, a) -> (Printf.sprintf "%de/%dw" e a, Table.Right))
          btb_configs)
  in
  List.iter
    (fun suite ->
      let profiles = W.Suites.by_suite suite in
      let where = "fig7/" ^ Suite.to_string suite in
      let per_bench =
        if fused_enabled () then
          sweep_map ~jobs ~where profiles (Array.length configs) (fun p lo hi ->
              Array.map
                (fun r ->
                  (A.Btb_sweep.mpki r total, A.Btb_sweep.mpki_ci r total))
                (A.Btb_sweep.run (sampled_source scale p)
                   (Array.sub configs lo (hi - lo))))
        else
          bench_map ~jobs ~where
            (fun (p : W.Profile.t) -> p.name)
            (fun (p : W.Profile.t) ->
              let sims =
                List.map
                  (fun (e, a) -> A.Btb_sim.create ~entries:e ~assoc:a)
                  btb_configs
              in
              A.Btb_sim.run_all (sampled_source scale p) sims;
              Array.of_list
                (List.map (fun s -> (A.Btb_sim.mpki s total, 0.0)) sims))
            profiles
      in
      Table.add_row t
        (Suite.to_string suite
        :: mean_cells per_bench (List.length btb_configs)))
    Suite.all;
  [ t ]

(* ------------------------------------------------------------------ *)
(* Fig 8 / Fig 9 *)

let icache_table ~jobs ~where:where_root ~title ~configs ~benchmarks scale
    per_suite =
  let t =
    Table.create ~title
      ([ ((if per_suite then "suite" else "benchmark"), Table.Left) ]
      @ List.map
          (fun (c : A.Icache_sweep.config) ->
            let geom =
              Printf.sprintf "%dK/%dB/%dw" (c.size_bytes / 1024) c.line_bytes
                c.assoc
            in
            (* Learned-policy columns carry a "+P" marker; plain LRU
               keeps the historical label (and golden tables). *)
            ( (if c.policy = F.Replacement.Lru then geom else geom ^ "+P"),
              Table.Right ))
          configs)
  in
  let carr = Array.of_list configs in
  let mpki_rows ~where profiles =
    if fused_enabled () then
      sweep_map ~jobs ~where profiles (Array.length carr) (fun p lo hi ->
          Array.map
            (fun r ->
              (A.Icache_sweep.mpki r total, A.Icache_sweep.mpki_ci r total))
            (A.Icache_sweep.run (sampled_source scale p)
               (Array.sub carr lo (hi - lo))))
    else
      bench_map ~jobs ~where
        (fun (p : W.Profile.t) -> p.name)
        (fun (p : W.Profile.t) ->
          let sims =
            List.map
              (fun (c : A.Icache_sweep.config) ->
                A.Icache_sim.create ~policy:c.policy ~size_bytes:c.size_bytes
                  ~line_bytes:c.line_bytes ~assoc:c.assoc ())
              configs
          in
          A.Icache_sim.run_all (sampled_source scale p) sims;
          Array.of_list
            (List.map (fun s -> (A.Icache_sim.mpki s total, 0.0)) sims))
        profiles
  in
  if per_suite then
    List.iter
      (fun suite ->
        let where = where_root ^ "/" ^ Suite.to_string suite in
        let per_bench = mpki_rows ~where (W.Suites.by_suite suite) in
        Table.add_row t
          (Suite.to_string suite :: mean_cells per_bench (List.length configs)))
      Suite.all
  else begin
    let rows = mpki_rows ~where:where_root (List.map W.Suites.find benchmarks) in
    List.iter2
      (fun name row ->
        match row with
        | Ok arr ->
            Table.add_row t
              (name
              :: Array.to_list
                   (Array.map
                      (fun (v, ci) -> mark_approx (ci > 0.0) (f2 v))
                      arr))
        | Error () ->
            Table.add_row t
              (name :: List.map (fun _ -> hole_cell) configs))
      benchmarks rows
  end;
  t

let fig8_points =
  List.concat_map
    (fun size -> List.map (fun a -> (size, 64, a)) [ 2; 4; 8 ])
    [ 8192; 16384; 32768 ]

let fig8 ~jobs scale =
  let configs = List.map A.Icache_sweep.cfg fig8_points in
  [ icache_table ~jobs ~where:"fig8" ~title:"Fig 8: I-cache MPKI (64B lines)"
      ~configs ~benchmarks:[] scale true ]

(* Fig 8p: the fig8 size/associativity sweep re-run under the
   perceptron reuse/bypass policy, plus a headline mixed-policy sweep
   answering the ROADMAP question directly — does a 16KB learned
   I-cache beat the 32KB LRU baseline? *)
let fig8p ~jobs scale =
  let preuse = F.Replacement.Preuse in
  let configs = List.map (A.Icache_sweep.cfg ~policy:preuse) fig8_points in
  let headline =
    [ A.Icache_sweep.cfg (32768, 64, 4);
      A.Icache_sweep.cfg ~policy:preuse (16384, 64, 4) ]
  in
  [ icache_table ~jobs ~where:"fig8p"
      ~title:"Fig 8p: I-cache MPKI, perceptron reuse/bypass (64B lines)"
      ~configs ~benchmarks:[] scale true;
    icache_table ~jobs ~where:"fig8p-headline"
      ~title:"Fig 8p (headline): 16KB preuse vs 32KB LRU (64B, 4-way)"
      ~configs:headline ~benchmarks:[] scale true ]

let fig9 ~jobs scale =
  let configs =
    List.map A.Icache_sweep.cfg
      (List.concat_map
         (fun line -> List.map (fun a -> (16384, line, a)) [ 2; 4; 8 ])
         [ 32; 64; 128 ])
  in
  let mpki_tbl =
    icache_table ~jobs ~where:"fig9"
      ~title:"Fig 9: I-cache MPKI across line widths (16KB)" ~configs
      ~benchmarks:W.Suites.fig9_subset scale false
  in
  (* Line usefulness, paper Section IV-C *)
  let useful =
    Table.create ~title:"Fig 9 (companion): 128B-line usefulness"
      [ ("suite", Table.Left); ("usefulness", Table.Right);
        ("paper", Table.Right) ]
  in
  List.iter
    (fun suite ->
      let per_bench =
        bench_map ~jobs
          ~where:("fig9-usefulness/" ^ Suite.to_string suite)
          (fun (p : W.Profile.t) -> p.name)
          (fun (p : W.Profile.t) ->
            let sim =
              A.Icache_sim.create ~size_bytes:16384 ~line_bytes:128 ~assoc:8 ()
            in
            A.Icache_sim.run_all (source scale p) [ sim ];
            A.Icache_sim.usefulness sim)
          (W.Suites.by_suite suite)
      in
      let measured =
        let oks = List.filter_map Result.to_option per_bench in
        if List.length oks <> List.length per_bench then hole_cell
        else
          Table.fmt_pct
            (Repro_util.Stats.mean
               (List.filter (fun v -> not (Float.is_nan v)) oks))
      in
      Table.add_row useful
        [ Suite.to_string suite; measured;
          (if Suite.is_hpc suite then
             Table.fmt_pct Paper_data.fig9_line_usefulness_hpc
           else Table.fmt_pct Paper_data.fig9_line_usefulness_int) ])
    Suite.all;
  [ mpki_tbl; useful ]

(* ------------------------------------------------------------------ *)
(* Table II *)

let tab2 () =
  let t =
    Table.create
      ~title:"Table II: predictor size parameters and hardware budgets"
      [ ("predictor", Table.Left); ("parameters", Table.Left);
        ("budget", Table.Right); ("paper target", Table.Right) ]
  in
  let row name params maker target =
    let p : F.Predictor.t = maker () in
    Table.add_row t
      [ name; params;
        Repro_util.Units.pp_bytes (F.Predictor.storage_bytes p); target ]
  in
  row "gshare-small" "m=13" F.Zoo.gshare_small "~2KB";
  row "gshare-big" "m=16" F.Zoo.gshare_big "~16KB";
  row "tournament-small" "n=10, m=8" F.Zoo.tournament_small "~2KB";
  row "tournament-big" "n=12, m=14" F.Zoo.tournament_big "~16KB";
  row "tage-small" "2 tables, h=4,16" F.Zoo.tage_small "~2KB";
  row "tage-big" "12 tables, h=4..640" F.Zoo.tage_big "~16KB";
  row "perceptron-small" "128 entries, h=15" F.Zoo.perceptron_small "~2KB";
  row "perceptron-big" "512 entries, h=31" F.Zoo.perceptron_big "~16KB";
  row "loop predictor" "64 entries"
    (fun () ->
      let lbp = F.Loop_predictor.create () in
      F.Predictor.make ~name:"lbp" ~predict:(fun _ -> false)
        ~update:(fun _ _ -> ())
        ~storage_bits:(F.Loop_predictor.storage_bits lbp))
    "~0.5KB";
  [ t ]

(* ------------------------------------------------------------------ *)
(* Table III *)

let tab3 () =
  let t =
    Table.create
      ~title:"Table III: front-end structures on the core budget (40nm)"
      [ ("structure", Table.Left); ("area mm2", Table.Right);
        ("paper", Table.Right); ("power W", Table.Right);
        ("paper", Table.Right) ]
  in
  let row name area paper_area power paper_power =
    Table.add_row t
      [ name; Table.fmt_float ~decimals:3 area;
        Table.fmt_float ~decimals:3 paper_area;
        Table.fmt_float ~decimals:3 power;
        Table.fmt_float ~decimals:3 paper_power ]
  in
  let open Paper_data in
  let b = U.Mcpat.budget U.Frontend_config.baseline in
  let tl = U.Mcpat.budget U.Frontend_config.tailored in
  row "baseline core"
    (U.Mcpat.core_area_mm2 U.Frontend_config.baseline)
    tab3_baseline_core.area_mm2
    (U.Mcpat.core_power_w U.Frontend_config.baseline)
    tab3_baseline_core.power_w;
  row "  I-cache 32KB/64B" b.icache_mm2 tab3_baseline_icache.area_mm2
    b.icache_w tab3_baseline_icache.power_w;
  row "  BP 16KB" b.bp_mm2 tab3_baseline_bp.area_mm2 b.bp_w
    tab3_baseline_bp.power_w;
  row "  BTB 2K" b.btb_mm2 tab3_baseline_btb.area_mm2 b.btb_w
    tab3_baseline_btb.power_w;
  Table.add_separator t;
  row "tailored core"
    (U.Mcpat.core_area_mm2 U.Frontend_config.tailored)
    tab3_tailored_core.area_mm2
    (U.Mcpat.core_power_w U.Frontend_config.tailored)
    tab3_tailored_core.power_w;
  row "  I-cache 16KB/128B" tl.icache_mm2 tab3_tailored_icache.area_mm2
    tl.icache_w tab3_tailored_icache.power_w;
  row "  BP 2.5KB+LBP" tl.bp_mm2 tab3_tailored_bp.area_mm2 tl.bp_w
    tab3_tailored_bp.power_w;
  row "  BTB 256" tl.btb_mm2 tab3_tailored_btb.area_mm2 tl.btb_w
    tab3_tailored_btb.power_w;
  let headline =
    Table.create ~title:"Headline savings (tailored vs baseline core)"
      [ ("metric", Table.Left); ("measured", Table.Right);
        ("paper", Table.Right) ]
  in
  Table.add_row headline
    [ "core area saving";
      Table.fmt_pct (U.Mcpat.area_saving_vs_baseline U.Frontend_config.tailored);
      Table.fmt_pct headline_area_saving ];
  Table.add_row headline
    [ "core power saving";
      Table.fmt_pct
        (U.Mcpat.power_saving_vs_baseline U.Frontend_config.tailored);
      Table.fmt_pct headline_power_saving ];
  [ t; headline ]

(* ------------------------------------------------------------------ *)
(* Fig 10 / Fig 11 *)

(* Shared shape of fig10/fig10p: one table per metric, suites as
   rows, one column per CMP configuration, every cell normalized to
   the Baseline CMP of the same evaluation family. *)
let cmp_suite_tables ~fig configs evals_of =
  let metrics =
    [ ("time", fun (e : U.Cmp.eval) -> e.time);
      ("power", fun e -> e.power);
      ("energy", fun e -> e.energy);
      ("ED", fun e -> e.ed) ]
  in
  List.map
    (fun (mname, get) ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Fig %s (%s): normalized to the Baseline CMP, per suite" fig
               mname)
          ([ ("suite", Table.Left) ]
          @ List.map
              (fun (c : U.Cmp.config) -> (c.cname, Table.Right))
              configs)
      in
      List.iter
        (fun suite ->
          let per_bench = List.map evals_of (W.Suites.by_suite suite) in
          let ratios =
            List.map
              (fun (cfg : U.Cmp.config) ->
                let values =
                  List.map
                    (fun evals ->
                      let base = List.assoc U.Cmp.baseline_cmp evals in
                      let e = List.assoc cfg evals in
                      get (U.Cmp.relative e ~baseline:base))
                    per_bench
                in
                Repro_util.Stats.mean values)
              configs
          in
          Table.add_row t
            (Suite.to_string suite :: List.map (fun v -> f2 v) ratios))
        Suite.all;
      t)
    metrics

let fig10 scale =
  cmp_suite_tables ~fig:"10" U.Cmp.standard_configs (evaluate_cmps scale)

let fig10p scale =
  cmp_suite_tables ~fig:"10p" U.Cmp.learned_configs
    (evaluate_cmps_learned scale)

let fig11 scale =
  let t =
    Table.create
      ~title:"Fig 11: normalized execution time, per benchmark"
      ([ ("benchmark", Table.Left) ]
      @ List.map
          (fun (c : U.Cmp.config) -> (c.cname, Table.Right))
          U.Cmp.standard_configs
      @ [ ("paper (T / A++)", Table.Right) ])
  in
  List.iter
    (fun name ->
      let evals = evaluate_cmps scale (W.Suites.find name) in
      let base = List.assoc U.Cmp.baseline_cmp evals in
      let ratios =
        List.map
          (fun (cfg : U.Cmp.config) ->
            (U.Cmp.relative (List.assoc cfg evals) ~baseline:base).U.Cmp.time)
          U.Cmp.standard_configs
      in
      let paper =
        match List.assoc_opt name Paper_data.fig11_time with
        | Some l ->
            Printf.sprintf "%s / %s"
              (match List.assoc_opt "Tailored" l with
              | Some v -> f2 v
              | None -> "-")
              (match List.assoc_opt "Asymmetric++" l with
              | Some v -> f2 v
              | None -> "-")
        | None -> "-"
      in
      Table.add_row t ((name :: List.map f2 ratios) @ [ paper ]))
    W.Suites.fig11_subset;
  [ t ]

(* Parallel prefetch of the memoized quantities an experiment reads:
   the table-building code afterwards only takes memo hits, so its
   (deterministic) row order never depends on worker scheduling.

   Prefetch is purely a warm-up, so failures are swallowed rather
   than recorded as holes: a benchmark whose prefetch died (e.g. its
   packed-trace capture kept hitting the [trace.capture] fault site)
   is recomputed on the synchronous path when the table code reads
   it, and only a failure there is a real loss. *)
let prefetch ~jobs scale id =
  let sup f profiles = ignore (Engine.map_result ~jobs f profiles) in
  let charz profiles = sup (fun p -> ignore (characterize scale p)) profiles in
  let cmps profiles = sup (fun p -> ignore (evaluate_cmps scale p)) profiles in
  let cmps_learned profiles =
    sup (fun p -> ignore (evaluate_cmps_learned scale p)) profiles
  in
  let traces profiles =
    if packed_enabled () then
      sup (fun p -> ignore (packed_trace scale p)) profiles
  in
  match id with
  | Fig1 | Fig2 | Tab1 | Fig3 | Fig4 -> charz W.Suites.all
  | Fig10 -> cmps W.Suites.all
  | Fig10p -> cmps_learned W.Suites.all
  | Fig11 -> cmps (List.map W.Suites.find W.Suites.fig11_subset)
  | Fig5 | Fig7 | Fig8 | Fig8p | Fig9 -> traces W.Suites.all
  | Fig6 -> traces (List.map W.Suites.find W.Suites.fig6_subset)
  | Tab2 | Tab3 -> ()

(* Appendix rendered after a degraded run: one row per lost
   measurement, so a "!" in a table above is traceable to the
   structured failure that caused it. *)
let degraded_table holes =
  let t =
    Table.create
      ~title:"Degraded run: failed measurements (marked ! above)"
      [ ("measurement", Table.Left); ("failure", Table.Left) ]
  in
  List.iter
    (fun (where, fl) -> Table.add_row t [ where; Failure.to_string fl ])
    holes;
  t

(* Appendix rendered after a sampled run: one row per benchmark whose
   sweep ran over a representative-region plan at this (scale,
   fraction), so every "≈" in the tables above is traceable to the
   plan that produced it. *)
let sampled_table scale fraction =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Sampled run (fraction %g): region plans" fraction)
      [ ("benchmark", Table.Left); ("plan", Table.Left) ]
  in
  locked (fun () ->
      Hashtbl.fold
        (fun (name, sc, fr) pl acc ->
          if sc = scale && fr = fraction then
            (name, A.Regions.describe pl) :: acc
          else acc)
        plans [])
  |> List.sort compare
  |> List.iter (fun (name, d) -> Table.add_row t [ name; d ]);
  t

let run ?(scale = 1.0) ?jobs id =
  let jobs =
    match jobs with Some j -> j | None -> Engine.default_jobs ()
  in
  clear_holes ();
  let tables =
    Repro_util.Telemetry.with_span ("experiment." ^ to_string id) (fun () ->
    prefetch ~jobs scale id;
    match id with
    | Fig1 -> fig1 scale
    | Fig2 -> fig2 scale
    | Tab1 -> tab1 scale
    | Fig3 -> fig3 scale
    | Fig4 -> fig4 scale
    | Fig5 -> fig5 ~jobs scale
    | Fig6 -> fig6 ~jobs scale
    | Fig7 -> fig7 ~jobs scale
    | Fig8 -> fig8 ~jobs scale
    | Fig8p -> fig8p ~jobs scale
    | Fig9 -> fig9 ~jobs scale
    | Tab2 -> tab2 ()
    | Tab3 -> tab3 ()
    | Fig10 -> fig10 scale
    | Fig10p -> fig10p scale
    | Fig11 -> fig11 scale)
  in
  let tables =
    match sample_fraction () with
    | Some f ->
        let st = sampled_table scale f in
        if Table.rows st = [] then tables else tables @ [ st ]
    | None -> tables
  in
  match holes () with
  | [] -> tables
  | hs -> tables @ [ degraded_table hs ]
