type klass = Transient | Corrupt_input | Fatal | Timeout

type t = { klass : klass; site : string; message : string; attempts : int }

exception Error of t

let v ?(site = "") ?(attempts = 1) klass message =
  { klass; site; message; attempts = max 1 attempts }

let capturable = function
  | Out_of_memory | Stack_overflow | Sys.Break -> false
  | _ -> true

let classify = function
  | Repro_util.Faults.Injected _ -> Transient
  | Sys_error _ -> Transient
  | Error f -> f.klass
  | _ -> Fatal

let of_exn ?attempts e =
  match e with
  | Error f -> (
      match attempts with Some a -> { f with attempts = max 1 a } | None -> f)
  | Repro_util.Faults.Injected site -> v ~site ?attempts Transient "injected fault"
  | Sys_error msg -> v ~site:"io" ?attempts Transient msg
  | e -> v ?attempts Fatal (Printexc.to_string e)

let klass_to_string = function
  | Transient -> "transient fault"
  | Corrupt_input -> "corrupt input"
  | Fatal -> "fatal error"
  | Timeout -> "timeout"

let to_string f =
  Printf.sprintf "%s%s after %d attempt%s: %s" (klass_to_string f.klass)
    (if f.site = "" then "" else " at " ^ f.site)
    f.attempts
    (if f.attempts = 1 then "" else "s")
    f.message
