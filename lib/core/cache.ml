module Telemetry = Repro_util.Telemetry
module Faults = Repro_util.Faults

let version = "3"

let magic = "REPROCACHE2\n"
let suffix = ".bin"

(* In-flight temp files carry a suffix that [cache_files] can never
   match: with the old ".bin" suffix, [entries ()] over-counted and a
   concurrent [clear ()] could delete a temp file out from under the
   [store] about to rename it, silently losing the entry. *)
let tmp_suffix = ".tmp"

(* Undecodable entries are renamed aside with this suffix instead of
   being silently shadowed: the evidence survives for inspection and
   a half-written file can never be re-read as data. *)
let bad_suffix = ".bad"

(* Trailer after the payload: proves the write reached end-of-file.
   The header digest alone cannot distinguish "entry being read while
   short" from "torn write that will never grow"; a missing trailer
   settles it. *)
let trailer_magic = "\nREPROEND"

let enabled_ref = ref (Repro_util.Env.flag ~name:"REPRO_CACHE" ~default:true)

let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

let dir_ref =
  ref (match Sys.getenv_opt "REPRO_CACHE_DIR" with
      | Some d when d <> "" -> d
      | Some _ | None -> "_cache")

let dir () = !dir_ref
let set_dir d = dir_ref := d

type key = { file : string }

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '_')
    name

let key ~profile ~scale ~kind =
  let fingerprint =
    Printf.sprintf "v%s|%s|%h|%s" version
      (Digest.to_hex (Digest.string (Repro_workload.Profile_io.to_string profile)))
      scale kind
  in
  { file =
      Printf.sprintf "%s-%s-%s%s" kind
        (sanitize (profile : Repro_workload.Profile.t).name)
        (Digest.to_hex (Digest.string fingerprint))
        suffix }

let path k = Filename.concat (dir ()) k.file

(* Serialized entry: magic, hex digest of the payload, payload, then
   a trailer repeating the digest. The digest turns truncation and
   bit-rot into quarantined misses; the trailer catches torn writes
   that stopped anywhere short of the last byte. *)

let encode v =
  let payload = Marshal.to_string v [] in
  let hex = Digest.to_hex (Digest.string payload) in
  magic ^ hex ^ "\n" ^ payload ^ trailer_magic ^ hex

(* Marshal's deserializer tags its own errors; any other [Failure]
   raised while decoding is not a corrupt entry and must propagate
   (it used to be swallowed as a miss). *)
let is_marshal_failure msg =
  String.starts_with ~prefix:"input_value" msg
  || String.starts_with ~prefix:"Marshal" msg

let decode s =
  let mlen = String.length magic in
  let tlen = String.length trailer_magic + 32 in
  (* 32 hex chars + '\n' after the magic, trailer at the end. *)
  if String.length s < mlen + 33 + tlen then None
  else if not (String.equal (String.sub s 0 mlen) magic) then None
  else if s.[mlen + 32] <> '\n' then None
  else
    let hex = String.sub s mlen 32 in
    let plen = String.length s - mlen - 33 - tlen in
    let payload = String.sub s (mlen + 33) plen in
    let trailer = String.sub s (mlen + 33 + plen) tlen in
    if not (String.equal trailer (trailer_magic ^ hex)) then None
    else if not (String.equal hex (Digest.to_hex (Digest.string payload)))
    then None
    else match Marshal.from_string payload 0 with
      | v -> Some v
      | exception Stdlib.Failure msg when is_marshal_failure msg ->
          (* Truncated or corrupt payload. Any other exception —
             fatal runtime faults, a [Failure] raised by code the
             deserializer triggered — is a real error and must not
             masquerade as a miss. *)
          None

(* Move a corrupt entry aside rather than deleting it or, worse,
   leaving it to be re-read: the quarantined file keeps the evidence
   and can never match [suffix] again. *)
let quarantine k =
  (try Sys.rename (path k) (path k ^ bad_suffix) with Sys_error _ -> ());
  Telemetry.incr "cache.quarantined"

let find k =
  if not (enabled ()) then None
  else
    Telemetry.with_span "cache.find" (fun () ->
        if Faults.fires "cache.read" then
          (* Simulated read I/O error: behaves exactly like the real
             thing below — an ordinary miss, the entry untouched. *)
          None
        else
          match In_channel.with_open_bin (path k) In_channel.input_all with
          | s -> (
              Telemetry.add "cache.read_bytes" (String.length s);
              let decoded =
                if Faults.fires "cache.decode" then None else decode s
              in
              match decoded with
              | Some v -> Some v
              | None ->
                  quarantine k;
                  None)
          | exception Sys_error _ ->
              (* Missing or unreadable file is an ordinary miss. Fatal
                 runtime exceptions (Out_of_memory, Stack_overflow) are
                 deliberately not caught. *)
              None)

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let store k v =
  if enabled () then
    Telemetry.with_span "cache.store" (fun () ->
        (* Only Sys_error (read-only disk, missing directory, rename
           races) is best-effort-swallowed; everything else — fatal
           runtime exceptions, Marshal refusing the value — reaches
           the caller. *)
        try
          mkdir_p (dir ());
          let encoded = encode v in
          if Faults.fires "cache.write" then
            (* Simulated write I/O error: the store is dropped, as a
               full disk would drop it. *)
            ()
          else if Faults.fires "cache.write.torn" then begin
            (* Simulated crash mid-write: a prefix of the entry lands
               at the final path, bypassing the temp-file rename. The
               next [find] must quarantine it, never decode it. *)
            Out_channel.with_open_bin (path k) (fun oc ->
                Out_channel.output_string oc
                  (String.sub encoded 0 (String.length encoded / 2)));
            Telemetry.incr "cache.torn_writes"
          end
          else begin
            (* temp_file opens exclusively, so concurrent writers (other
               domains or other processes) never interleave; the final
               rename is atomic and last-writer-wins with equal bytes.
               The .tmp suffix keeps the in-flight file invisible to
               [cache_files], so a concurrent [clear] cannot delete it
               before the rename. *)
            let tmp, oc =
              Filename.open_temp_file ~mode:[ Open_binary ] ~temp_dir:(dir ())
                "tmp-cache" tmp_suffix
            in
            try
              Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
                  output_string oc encoded);
              Telemetry.add "cache.write_bytes" (String.length encoded);
              Sys.rename tmp (path k)
            with e ->
              (try Sys.remove tmp with Sys_error _ -> ());
              raise e
          end
        with Sys_error _ -> ())

let memoize k compute =
  if not (enabled ()) then compute ()
  else
    match find k with
    | Some v ->
        Engine.note_cache_hit ();
        Telemetry.incr "cache.hits";
        v
    | None ->
        Engine.note_cache_miss ();
        Telemetry.incr "cache.misses";
        let v = compute () in
        store k v;
        v

(* Only finished entries (".bin"): in-flight ".tmp" files are never
   listed, counted or cleared. *)
let cache_files () =
  match Sys.readdir (dir ()) with
  | files ->
      List.filter (fun f -> Filename.check_suffix f suffix)
        (Array.to_list files)
  | exception Sys_error _ -> []

let quarantined_files () =
  match Sys.readdir (dir ()) with
  | files ->
      List.filter (fun f -> Filename.check_suffix f bad_suffix)
        (Array.to_list files)
  | exception Sys_error _ -> []

let clear () =
  List.iter
    (fun f ->
      try Sys.remove (Filename.concat (dir ()) f) with Sys_error _ -> ())
    (cache_files () @ quarantined_files ())

let entries () = List.length (cache_files ())
let quarantined () = List.length (quarantined_files ())
