module Telemetry = Repro_util.Telemetry

let version = "2"

let magic = "REPROCACHE1\n"
let suffix = ".bin"

(* In-flight temp files carry a suffix that [cache_files] can never
   match: with the old ".bin" suffix, [entries ()] over-counted and a
   concurrent [clear ()] could delete a temp file out from under the
   [store] about to rename it, silently losing the entry. *)
let tmp_suffix = ".tmp"

let enabled_ref =
  ref
    (match Sys.getenv_opt "REPRO_CACHE" with
    | Some ("0" | "no" | "off" | "false") -> false
    | Some _ | None -> true)

let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

let dir_ref =
  ref (match Sys.getenv_opt "REPRO_CACHE_DIR" with
      | Some d when d <> "" -> d
      | Some _ | None -> "_cache")

let dir () = !dir_ref
let set_dir d = dir_ref := d

type key = { file : string }

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '_')
    name

let key ~profile ~scale ~kind =
  let fingerprint =
    Printf.sprintf "v%s|%s|%h|%s" version
      (Digest.to_hex (Digest.string (Repro_workload.Profile_io.to_string profile)))
      scale kind
  in
  { file =
      Printf.sprintf "%s-%s-%s%s" kind
        (sanitize (profile : Repro_workload.Profile.t).name)
        (Digest.to_hex (Digest.string fingerprint))
        suffix }

let path k = Filename.concat (dir ()) k.file

(* Serialized entry: magic, hex digest of the payload, payload. The
   digest turns truncation and bit-rot into clean misses. *)

let encode v =
  let payload = Marshal.to_string v [] in
  magic ^ Digest.to_hex (Digest.string payload) ^ "\n" ^ payload

let decode s =
  let mlen = String.length magic in
  (* 32 hex chars + '\n' after the magic. *)
  if String.length s < mlen + 33 then None
  else if not (String.equal (String.sub s 0 mlen) magic) then None
  else if s.[mlen + 32] <> '\n' then None
  else
    let hex = String.sub s mlen 32 in
    let payload = String.sub s (mlen + 33) (String.length s - mlen - 33) in
    if not (String.equal hex (Digest.to_hex (Digest.string payload))) then None
    else match Marshal.from_string payload 0 with
      | v -> Some v
      | exception Failure _ ->
          (* Marshal rejects truncated or corrupt payloads with
             Failure; anything else (Out_of_memory, ...) is a real
             runtime fault and must not masquerade as a miss. *)
          None

let find k =
  if not (enabled ()) then None
  else
    Telemetry.with_span "cache.find" (fun () ->
        match In_channel.with_open_bin (path k) In_channel.input_all with
        | s ->
            Telemetry.add "cache.read_bytes" (String.length s);
            decode s
        | exception Sys_error _ ->
            (* Missing or unreadable file is an ordinary miss. Fatal
               runtime exceptions (Out_of_memory, Stack_overflow) are
               deliberately not caught. *)
            None)

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let store k v =
  if enabled () then
    Telemetry.with_span "cache.store" (fun () ->
        (* Only Sys_error (read-only disk, missing directory, rename
           races) is best-effort-swallowed; everything else — fatal
           runtime exceptions, Marshal refusing the value — reaches
           the caller. *)
        try
          mkdir_p (dir ());
          (* temp_file opens exclusively, so concurrent writers (other
             domains or other processes) never interleave; the final
             rename is atomic and last-writer-wins with equal bytes.
             The .tmp suffix keeps the in-flight file invisible to
             [cache_files], so a concurrent [clear] cannot delete it
             before the rename. *)
          let tmp, oc =
            Filename.open_temp_file ~mode:[ Open_binary ] ~temp_dir:(dir ())
              "tmp-cache" tmp_suffix
          in
          (try
             let encoded = encode v in
             Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
                 output_string oc encoded);
             Telemetry.add "cache.write_bytes" (String.length encoded);
             Sys.rename tmp (path k)
           with e ->
             (try Sys.remove tmp with Sys_error _ -> ());
             raise e)
        with Sys_error _ -> ())

let memoize k compute =
  if not (enabled ()) then compute ()
  else
    match find k with
    | Some v ->
        Engine.note_cache_hit ();
        Telemetry.incr "cache.hits";
        v
    | None ->
        Engine.note_cache_miss ();
        Telemetry.incr "cache.misses";
        let v = compute () in
        store k v;
        v

(* Only finished entries (".bin"): in-flight ".tmp" files are never
   listed, counted or cleared. *)
let cache_files () =
  match Sys.readdir (dir ()) with
  | files ->
      List.filter (fun f -> Filename.check_suffix f suffix)
        (Array.to_list files)
  | exception Sys_error _ -> []

let clear () =
  List.iter
    (fun f ->
      try Sys.remove (Filename.concat (dir ()) f) with Sys_error _ -> ())
    (cache_files ())

let entries () = List.length (cache_files ())
