(** Characterization as a service: a long-lived socket daemon that
    serves the experiment registry over a length-framed JSON protocol.

    The daemon listens on a Unix-domain socket and/or a loopback TCP
    port and answers concurrent characterization requests out of the
    same process-wide hot store the one-shot CLI uses — the
    {!Experiment} memo tables, the packed-trace LRU and the disk
    {!Cache} — so a table computed for one client is free for every
    later client at the same [(scale, config)]. Responses are
    byte-identical to {!Report.run_to_string}: the daemon renders
    through the same code path, it only changes who pays for the
    trace.

    {2 Wire protocol}

    Every message (both directions) is one {e frame}:

    {v RSRV1 <decimal payload length>\n<payload bytes> v}

    The payload is a JSON document ({!Repro_util.Json}). Requests are
    objects with an ["op"] field — [ping], [experiment] (with ["id"]),
    [report], [stats], [reload], [shutdown] — and an optional ["seq"]
    field echoed verbatim in the response, so a pipelining client can
    match responses to requests. Responses carry ["ok"] (boolean);
    failures carry ["error"]. A frame whose header is not literally
    [RSRV1 <int>\n], or whose declared length exceeds {!Frame.max_frame},
    is answered with a best-effort error frame and the connection is
    closed — after garbage there is no resynchronization point — but
    the server itself keeps serving other clients. A client that dies
    mid-frame (torn write, [kill -9]) only loses its own connection.

    {2 Zero-downtime reload}

    A [reload] request — or, in the CLI wrapper, [SIGHUP] — swaps the
    active configuration (scale, jobs, sampling fraction, fault spec,
    packed/fused toggles) atomically with respect to request
    dispatch: the reloader waits for in-flight requests to drain
    (new arrivals park at the gate), applies the new configuration to
    the process-wide toggles, bumps the {e generation} counter, and
    releases the gate. No in-flight request is dropped and no request
    ever observes a half-applied configuration. The {e update lag} —
    wall time from reload acceptance to the completion of the first
    request served under the new generation, quiesce drain included —
    is exported through the [stats] op as [update_lag_ms]. *)

(** {1 Frames} *)

module Frame : sig
  val magic : string
  (** Header prefix, ["RSRV1 "]. *)

  val max_frame : int
  (** Hard cap on declared payload length (32 MiB): a longer
      declaration is a protocol error, not an allocation request. *)

  type error =
    | Closed  (** clean EOF before any header byte *)
    | Torn  (** EOF inside a header or declared payload *)
    | Oversized of int  (** declared length above the cap *)
    | Garbage of string  (** header is not [RSRV1 <int>] *)

  val error_to_string : error -> string

  val read : ?max_bytes:int -> Unix.file_descr -> (string, error) result
  (** Read one frame, blocking; returns the payload. *)

  val write : Unix.file_descr -> string -> int
  (** Write one frame; returns total bytes written (header included).
      Raises [Unix.Unix_error] ([EPIPE], ...) if the peer is gone. *)
end

(** {1 Configuration} *)

type config = {
  scale : float;  (** instruction-budget multiplier for every run *)
  jobs : int;  (** {!Engine} pool size per request (clamped 1..64) *)
  sample : float option;  (** {!Experiment.set_sampled} fraction *)
  faults : string option;  (** {!Repro_util.Faults.configure} spec *)
  packed : bool;  (** packed-trace capture ({!Experiment.set_packed}) *)
  fused : bool;  (** fused sweep kernels ({!Experiment.set_fused}) *)
}

val current_config : unit -> config
(** Snapshot of the process-wide toggles as they are now — what a
    freshly started daemon serves under when [?config] is omitted.
    Honours flags applied before [start] (e.g. the CLI's engine
    flags). *)

val env_config : unit -> config
(** Rebuild the configuration from the current environment
    ([REPRO_SCALE], [REPRO_JOBS], [REPRO_SAMPLE], [REPRO_FAULTS],
    [REPRO_PACKED], [REPRO_FUSED]), through the audited
    {!Repro_util.Env} readers. This is the [SIGHUP] reload source. *)

(** {1 Lifecycle} *)

type t

val start :
  ?config:config ->
  ?socket:string ->
  ?tcp:int ->
  ?workers:int ->
  unit ->
  t
(** Bind the endpoints, apply [config] (default {!current_config}) to
    the process-wide toggles, and spawn [workers] (default 4, clamped
    1..16) accept/serve domains. [socket] is a Unix-domain socket
    path (stale file replaced); [tcp] a loopback port ([0] lets the
    kernel pick — read it back with {!tcp_port}). With neither given,
    listens on ["_serve.sock"]. [SIGPIPE] is ignored process-wide: a
    dying client must be an [EPIPE] on its own connection, never a
    process kill. Each worker serves one connection at a time, so
    [workers] bounds concurrently served clients; further connections
    queue in the listen backlog. *)

val sock_path : t -> string option
val tcp_port : t -> int option

val reload : t -> config -> int
(** Quiesce in-flight requests, apply the configuration, bump and
    return the generation. Serialized with concurrent reloads. *)

val config : t -> config
val generation : t -> int

val update_lag_ms : t -> float option
(** Wall-clock milliseconds from the last accepted reload (or
    startup) to the first request completed under that generation;
    [None] until a request completes. *)

val request_stop : t -> unit
(** Ask the workers to wind down (idempotent, signal-safe: just an
    atomic store). In-flight requests finish; idle workers notice
    within ~50ms. *)

val stopping : t -> bool

val wait : ?poll_s:float -> ?on_tick:(unit -> unit) -> t -> unit
(** Block until {!request_stop} (or a [shutdown] op) fires, calling
    [on_tick] every [poll_s] (default 0.2s) — the CLI polls its
    [SIGHUP] flag there. *)

val stop : t -> unit
(** {!request_stop}, join the worker domains, absorb their telemetry
    buffers, close the listeners and unlink the socket file.
    Idempotent. *)

(** {1 Client} *)

module Client : sig
  type conn

  val connect :
    ?retry_for:float -> ?socket:string -> ?tcp:int -> unit -> conn
  (** Connect to a daemon. [retry_for] (default [0.]) keeps retrying
      refused/absent endpoints for that many seconds — for callers
      racing a daemon that is still binding in another process. *)

  val fd : conn -> Unix.file_descr
  (** The raw socket — exposed so protocol tests can write torn or
      garbage bytes past the framing layer. *)

  val request : conn -> Repro_util.Json.t -> (Repro_util.Json.t, string) result
  (** One framed request, one framed response. *)

  val request_raw : conn -> string -> (string, Frame.error) result
  (** Like {!request} but raw payload bytes both ways. *)

  val close : conn -> unit
end
