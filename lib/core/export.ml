let experiment_to_csv ?scale ?jobs id =
  List.mapi
    (fun i table ->
      let name = Printf.sprintf "%s_%d.csv" (Experiment.to_string id) i in
      (name, Repro_util.Table.to_csv table))
    (Experiment.run ?scale ?jobs id)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Export: %s exists and is not a directory" dir)

let write_experiment ?scale ?jobs ~dir id =
  ensure_dir dir;
  List.map
    (fun (name, csv) ->
      let path = Filename.concat dir name in
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
          output_string oc csv);
      path)
    (experiment_to_csv ?scale ?jobs id)

let write_all ?scale ?jobs ~dir () =
  List.concat_map (fun id -> write_experiment ?scale ?jobs ~dir id) Experiment.all
