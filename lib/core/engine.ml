type stats = {
  tasks_run : int;
  batches : int;
  max_domains : int;
  cache_hits : int;
  cache_misses : int;
  tasks_retried : int;
  tasks_failed : int;
  tasks_timed_out : int;
}

let tasks_run = Atomic.make 0
let batches = Atomic.make 0
let max_domains = Atomic.make 1
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0
let tasks_retried = Atomic.make 0
let tasks_failed = Atomic.make 0
let tasks_timed_out = Atomic.make 0

let stats () =
  { tasks_run = Atomic.get tasks_run;
    batches = Atomic.get batches;
    max_domains = Atomic.get max_domains;
    cache_hits = Atomic.get cache_hits;
    cache_misses = Atomic.get cache_misses;
    tasks_retried = Atomic.get tasks_retried;
    tasks_failed = Atomic.get tasks_failed;
    tasks_timed_out = Atomic.get tasks_timed_out }

let reset_stats () =
  Atomic.set tasks_run 0;
  Atomic.set batches 0;
  Atomic.set max_domains 1;
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0;
  Atomic.set tasks_retried 0;
  Atomic.set tasks_failed 0;
  Atomic.set tasks_timed_out 0

let note_cache_hit () = Atomic.incr cache_hits
let note_cache_miss () = Atomic.incr cache_misses

let rec record_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then record_max cell v

(* Pool sizes are clamped to 1..64: above ~64 domains the OCaml 5
   runtime's stop-the-world pauses dominate and the per-benchmark
   task count never exceeds the suite size anyway. Documented in the
   mli and README. *)
let clamp_jobs j = max 1 (min 64 j)

(* Malformed values warn once (via the shared Env registry) so a
   typo'd REPRO_JOBS=O8 is not an invisible serial run; out-of-range
   values warn once and clamp into the documented 1..64. *)
let env_jobs () =
  Repro_util.Env.int_clamped ~name:"REPRO_JOBS" ~min:1 ~max:64 ()

let default = ref None

let default_jobs () =
  match !default with
  | Some j -> j
  | None ->
      (match env_jobs () with
      | Some j -> j
      | None -> clamp_jobs (Domain.recommended_domain_count ()))

let set_default_jobs j = default := Some (clamp_jobs j)

module Telemetry = Repro_util.Telemetry
module Faults = Repro_util.Faults

(* ------------------------------------------------------------------ *)
(* Supervision policy *)

type policy = { retries : int; backoff_ms : float; timeout_ms : int option }

let clamp_retries r = max 0 (min 10 r)
let clamp_timeout = Option.map (fun t -> max 1 t)

let default_retries = ref 2
let set_retries r = default_retries := clamp_retries r
let retries () = !default_retries

let default_timeout : int option ref = ref None
let set_timeout_ms t = default_timeout := clamp_timeout t
let timeout_ms () = !default_timeout

let default_policy () =
  { retries = !default_retries; backoff_ms = 1.0;
    timeout_ms = !default_timeout }

(* Exponential backoff between retry attempts: base, 2x, 4x ...
   capped at 100ms so a fault storm cannot stall a batch for long. *)
let backoff_wait policy attempt =
  let ms = policy.backoff_ms *. (2.0 ** float_of_int (attempt - 1)) in
  let s = Float.min 0.1 (ms /. 1000.0) in
  if s > 0.0 then Unix.sleepf s

(* One slot per task; filled exactly once by whichever worker claims
   the index, read only after every domain is joined. [Empty] can
   survive only in a fail-fast run that shut down early. *)
type 'b slot = Empty | Value of 'b | Failed of Failure.t * exn

(* Per-task instrumentation: an [engine.task] span (nested under the
   caller's open span, or the batch span via buffer absorption) plus
   a busy-time counter that feeds the utilization gauge. Pure
   pass-through when telemetry is disabled. *)
let timed_task task =
  if not (Telemetry.enabled ()) then task ()
  else
    Telemetry.with_span "engine.task" (fun () ->
        let t0 = Telemetry.now_ns () in
        Fun.protect
          ~finally:(fun () ->
            Telemetry.add "engine.busy_ns"
              (Int64.to_int (Int64.sub (Telemetry.now_ns ()) t0)))
          task)

(* Run one task under the policy: transient failures are retried
   with exponential backoff, everything else fails on first raise.
   Deadlines are monotonic and checked per attempt when the attempt
   returns — OCaml domains cannot be preempted, so an attempt that
   overran is detected (and its result discarded deterministically)
   rather than interrupted; a [timeout_ms] bounds damage from slow
   tasks, it cannot unstick a livelocked one. *)
let run_task policy task =
  let attempts = policy.retries + 1 in
  let rec go attempt =
    let t0 = Telemetry.now_ns () in
    match
      Faults.inject "engine.task";
      timed_task task
    with
    | v -> (
        match policy.timeout_ms with
        | Some lim
          when Int64.to_float (Int64.sub (Telemetry.now_ns ()) t0) /. 1e6
               > float_of_int lim ->
            Atomic.incr tasks_timed_out;
            Telemetry.incr "engine.tasks_timed_out";
            let fl =
              Failure.v ~site:"engine.task" ~attempts:attempt Failure.Timeout
                (Printf.sprintf "exceeded the %dms deadline" lim)
            in
            Failed (fl, Failure.Error fl)
        | _ ->
            Atomic.incr tasks_run;
            Telemetry.incr "engine.tasks_ok";
            Value v)
    | exception e ->
        (* Non-capturable exceptions are still parked in the slot so
           every domain gets joined; [run_many] re-raises them after
           the join, before any result is returned. *)
        if
          Failure.capturable e
          && Failure.classify e = Failure.Transient
          && attempt < attempts
        then begin
          Atomic.incr tasks_retried;
          Telemetry.incr "engine.tasks_retried";
          backoff_wait policy attempt;
          go (attempt + 1)
        end
        else begin
          Atomic.incr tasks_failed;
          Telemetry.incr "engine.tasks_failed";
          Failed (Failure.of_exn ~attempts:attempt e, e)
        end
  in
  go 1

let run_pool ~jobs ~policy ~fail_fast inputs =
  let n = Array.length inputs in
  let results = Array.make n Empty in
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n || (fail_fast && Atomic.get stop) then continue := false
      else begin
        let r = run_task policy inputs.(i) in
        (match r with
        | Failed _ when fail_fast -> Atomic.set stop true
        | _ -> ());
        results.(i) <- r
      end
    done
  in
  let spawned_n = min jobs n - 1 in
  (* Each spawned domain records telemetry into its own per-domain
     buffer (no locks on the hot path) and parks the buffer in its
     slot as its last act; the joiner absorbs the buffers below,
     after every domain is joined. The export lives in a finalizer
     so a worker that unwinds (a non-capturable exception, or a bug
     in the slot machinery) still flushes its partial spans instead
     of losing the whole buffer. *)
  let tele = Array.make (max spawned_n 0) Telemetry.empty_buffer in
  let spawned =
    Array.init spawned_n (fun k ->
        Domain.spawn (fun () ->
            Fun.protect
              ~finally:(fun () ->
                if Telemetry.enabled () then tele.(k) <- Telemetry.export ())
              worker))
  in
  (* The calling domain is the pool's first worker. Joining may not
     raise here: a worker's exceptions are all captured in its slots. *)
  worker ();
  Array.iter Domain.join spawned;
  if Telemetry.enabled () then Array.iter Telemetry.absorb tele;
  results

(* Dispatch over the inline (0/1 task or jobs = 1) and pool paths,
   returning the raw slot array. *)
let run_many ~jobs ~policy ~fail_fast inputs =
  let n = Array.length inputs in
  if n = 0 then [||]
  else if jobs = 1 || n = 1 then begin
    let results = Array.make n Empty in
    (try
       for i = 0 to n - 1 do
         let r = run_task policy inputs.(i) in
         results.(i) <- r;
         match r with Failed _ when fail_fast -> raise Exit | _ -> ()
       done
     with Exit -> ());
    results
  end
  else begin
    Atomic.incr batches;
    let domains = min jobs n in
    record_max max_domains domains;
    if not (Telemetry.enabled ()) then run_pool ~jobs ~policy ~fail_fast inputs
    else
      Telemetry.with_span "engine.batch" (fun () ->
          let busy0 = Telemetry.counter "engine.busy_ns" in
          let t0 = Telemetry.now_ns () in
          let out = run_pool ~jobs ~policy ~fail_fast inputs in
          (* Utilization = busy-time / (elapsed x domains): 1.0 means
             every domain computed for the whole batch. *)
          let elapsed =
            Int64.to_float (Int64.sub (Telemetry.now_ns ()) t0)
          in
          let busy =
            float_of_int (Telemetry.counter "engine.busy_ns" - busy0)
          in
          if elapsed > 0.0 then
            Telemetry.set_gauge "engine.utilization"
              (busy /. (elapsed *. float_of_int domains));
          out)
  end

(* Fatal runtime conditions must keep unwinding no matter which map
   flavour ran the task; they were only parked in slots so the pool
   could be joined first. *)
let reraise_non_capturable results =
  Array.iter
    (function
      | Failed (_, e) when not (Failure.capturable e) -> raise e
      | Failed _ | Value _ | Empty -> ())
    results;
  results

let thunks f items = Array.of_list (List.map (fun x () -> f x) items)

let map ?jobs f items =
  let jobs = clamp_jobs (match jobs with Some j -> j | None -> default_jobs ()) in
  let results =
    reraise_non_capturable
      (run_many ~jobs ~policy:(default_policy ()) ~fail_fast:true
         (thunks f items))
  in
  (* Indices are claimed in increasing order, so an ascending scan
     meets the failure that triggered the shutdown before any slot
     abandoned because of it. The original exception is re-raised —
     supervision only adds retries underneath the old contract. *)
  Array.iter (function Failed (_, e) -> raise e | Value _ | Empty -> ()) results;
  Array.to_list
    (Array.map (function Value v -> v | Failed _ | Empty -> assert false)
       results)

let map_result ?jobs ?policy ?(fail_fast = false) f items =
  let jobs = clamp_jobs (match jobs with Some j -> j | None -> default_jobs ()) in
  let policy =
    match policy with
    | Some p ->
        { p with retries = clamp_retries p.retries;
                 timeout_ms = clamp_timeout p.timeout_ms }
    | None -> default_policy ()
  in
  let results =
    reraise_non_capturable (run_many ~jobs ~policy ~fail_fast (thunks f items))
  in
  Array.to_list
    (Array.map
       (function
         | Value v -> Ok v
         | Failed (fl, _) -> Error fl
         | Empty ->
             (* Only reachable in a fail-fast run: the task was never
                attempted because a sibling failed first. Transient by
                definition — rerunning it alone would work. *)
             Error
               (Failure.v ~site:"engine.task" Failure.Transient
                  "abandoned after a sibling task failed"))
       results)
