type stats = {
  tasks_run : int;
  batches : int;
  max_domains : int;
  cache_hits : int;
  cache_misses : int;
}

let tasks_run = Atomic.make 0
let batches = Atomic.make 0
let max_domains = Atomic.make 1
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0

let stats () =
  { tasks_run = Atomic.get tasks_run;
    batches = Atomic.get batches;
    max_domains = Atomic.get max_domains;
    cache_hits = Atomic.get cache_hits;
    cache_misses = Atomic.get cache_misses }

let reset_stats () =
  Atomic.set tasks_run 0;
  Atomic.set batches 0;
  Atomic.set max_domains 1;
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0

let note_cache_hit () = Atomic.incr cache_hits
let note_cache_miss () = Atomic.incr cache_misses

let rec record_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then record_max cell v

(* Pool sizes are clamped to 1..64: above ~64 domains the OCaml 5
   runtime's stop-the-world pauses dominate and the per-benchmark
   task count never exceeds the suite size anyway. Documented in the
   mli and README. *)
let clamp_jobs j = max 1 (min 64 j)

let warned_env_jobs = ref false

let env_jobs () =
  match Sys.getenv_opt "REPRO_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some j when j > 0 -> Some (clamp_jobs j)
      | Some _ | None ->
          (* Malformed or non-positive values used to be silently
             ignored; warn once so a typo'd REPRO_JOBS=O8 is not an
             invisible serial run. *)
          if not !warned_env_jobs then begin
            warned_env_jobs := true;
            Printf.eprintf
              "frontend-repro: ignoring invalid REPRO_JOBS=%S (want a \
               positive integer; values above 64 are clamped); using the \
               default domain count\n%!"
              s
          end;
          None)
  | None -> None

let default = ref None

let default_jobs () =
  match !default with
  | Some j -> j
  | None ->
      (match env_jobs () with
      | Some j -> j
      | None -> clamp_jobs (Domain.recommended_domain_count ()))

let set_default_jobs j = default := Some (clamp_jobs j)

module Telemetry = Repro_util.Telemetry

(* One slot per task; filled exactly once by whichever worker claims
   the index, read only after every domain is joined. *)
type 'b slot = Empty | Value of 'b | Raised of exn

let run_pool ~jobs inputs =
  let n = Array.length inputs in
  let results = Array.make n Empty in
  let next = Atomic.make 0 in
  let failed = Atomic.make false in
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n || Atomic.get failed then continue := false
      else begin
        (match inputs.(i) () with
        | v ->
            results.(i) <- Value v;
            Atomic.incr tasks_run
        | exception e ->
            results.(i) <- Raised e;
            Atomic.set failed true)
      end
    done
  in
  let spawned_n = min jobs n - 1 in
  (* Each spawned domain records telemetry into its own per-domain
     buffer (no locks on the hot path) and parks the buffer in its
     slot as its last act; the joiner absorbs the buffers below,
     after every domain is joined. *)
  let tele = Array.make (max spawned_n 0) Telemetry.empty_buffer in
  let spawned =
    Array.init spawned_n (fun k ->
        Domain.spawn (fun () ->
            worker ();
            if Telemetry.enabled () then tele.(k) <- Telemetry.export ()))
  in
  (* The calling domain is the pool's first worker. Joining may not
     raise here: a worker's exceptions are all captured in its slots. *)
  worker ();
  Array.iter Domain.join spawned;
  if Telemetry.enabled () then Array.iter Telemetry.absorb tele;
  (* Indices are claimed in increasing order, so an ascending scan
     meets the failure that triggered the shutdown before any slot
     abandoned because of it. *)
  for i = 0 to n - 1 do
    match results.(i) with Raised e -> raise e | Value _ | Empty -> ()
  done;
  Array.map (function Value v -> v | Raised _ | Empty -> assert false) results

(* Per-task instrumentation: an [engine.task] span (nested under the
   caller's open span, or the batch span via buffer absorption) plus
   a busy-time counter that feeds the utilization gauge. Pure
   pass-through when telemetry is disabled. *)
let timed_task f x =
  if not (Telemetry.enabled ()) then f x
  else
    Telemetry.with_span "engine.task" (fun () ->
        let t0 = Telemetry.now_ns () in
        Fun.protect
          ~finally:(fun () ->
            Telemetry.add "engine.busy_ns"
              (Int64.to_int (Int64.sub (Telemetry.now_ns ()) t0)))
          (fun () -> f x))

let map ?jobs f items =
  let jobs = clamp_jobs (match jobs with Some j -> j | None -> default_jobs ()) in
  match items with
  | [] -> []
  | [ x ] ->
      let v = timed_task f x in
      Atomic.incr tasks_run;
      [ v ]
  | _ when jobs = 1 ->
      List.map (fun x ->
          let v = timed_task f x in
          Atomic.incr tasks_run;
          v)
        items
  | _ ->
      let inputs = Array.of_list (List.map (fun x () -> timed_task f x) items) in
      Atomic.incr batches;
      let domains = min jobs (Array.length inputs) in
      record_max max_domains domains;
      if not (Telemetry.enabled ()) then
        Array.to_list (run_pool ~jobs inputs)
      else
        Telemetry.with_span "engine.batch" (fun () ->
            let busy0 = Telemetry.counter "engine.busy_ns" in
            let t0 = Telemetry.now_ns () in
            let out = run_pool ~jobs inputs in
            (* Utilization = busy-time / (elapsed x domains): 1.0 means
               every domain computed for the whole batch. *)
            let elapsed =
              Int64.to_float (Int64.sub (Telemetry.now_ns ()) t0)
            in
            let busy =
              float_of_int (Telemetry.counter "engine.busy_ns" - busy0)
            in
            if elapsed > 0.0 then
              Telemetry.set_gauge "engine.utilization"
                (busy /. (elapsed *. float_of_int domains));
            Array.to_list out)
