type stats = {
  tasks_run : int;
  batches : int;
  max_domains : int;
  cache_hits : int;
  cache_misses : int;
}

let tasks_run = Atomic.make 0
let batches = Atomic.make 0
let max_domains = Atomic.make 1
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0

let stats () =
  { tasks_run = Atomic.get tasks_run;
    batches = Atomic.get batches;
    max_domains = Atomic.get max_domains;
    cache_hits = Atomic.get cache_hits;
    cache_misses = Atomic.get cache_misses }

let reset_stats () =
  Atomic.set tasks_run 0;
  Atomic.set batches 0;
  Atomic.set max_domains 1;
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0

let note_cache_hit () = Atomic.incr cache_hits
let note_cache_miss () = Atomic.incr cache_misses

let rec record_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then record_max cell v

let clamp_jobs j = max 1 (min 64 j)

let env_jobs () =
  match Sys.getenv_opt "REPRO_JOBS" with
  | Some s -> (match int_of_string_opt s with
               | Some j when j > 0 -> Some (clamp_jobs j)
               | Some _ | None -> None)
  | None -> None

let default = ref None

let default_jobs () =
  match !default with
  | Some j -> j
  | None ->
      (match env_jobs () with
      | Some j -> j
      | None -> clamp_jobs (Domain.recommended_domain_count ()))

let set_default_jobs j = default := Some (clamp_jobs j)

(* One slot per task; filled exactly once by whichever worker claims
   the index, read only after every domain is joined. *)
type 'b slot = Empty | Value of 'b | Raised of exn

let run_pool ~jobs inputs =
  let n = Array.length inputs in
  let results = Array.make n Empty in
  let next = Atomic.make 0 in
  let failed = Atomic.make false in
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n || Atomic.get failed then continue := false
      else begin
        (match inputs.(i) () with
        | v ->
            results.(i) <- Value v;
            Atomic.incr tasks_run
        | exception e ->
            results.(i) <- Raised e;
            Atomic.set failed true)
      end
    done
  in
  let spawned =
    Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
  in
  (* The calling domain is the pool's first worker. Joining may not
     raise here: a worker's exceptions are all captured in its slots. *)
  worker ();
  Array.iter Domain.join spawned;
  (* Indices are claimed in increasing order, so an ascending scan
     meets the failure that triggered the shutdown before any slot
     abandoned because of it. *)
  for i = 0 to n - 1 do
    match results.(i) with Raised e -> raise e | Value _ | Empty -> ()
  done;
  Array.map (function Value v -> v | Raised _ | Empty -> assert false) results

let map ?jobs f items =
  let jobs = clamp_jobs (match jobs with Some j -> j | None -> default_jobs ()) in
  match items with
  | [] -> []
  | [ x ] ->
      let v = f x in
      Atomic.incr tasks_run;
      [ v ]
  | _ when jobs = 1 ->
      List.map (fun x ->
          let v = f x in
          Atomic.incr tasks_run;
          v)
        items
  | _ ->
      let inputs = Array.of_list (List.map (fun x () -> f x) items) in
      Atomic.incr batches;
      record_max max_domains (min jobs (Array.length inputs));
      let out = run_pool ~jobs inputs in
      Array.to_list out
