(** Result export: write experiment tables as CSV files so results can
    be plotted outside OCaml (gnuplot, matplotlib, spreadsheets). *)

val experiment_to_csv : ?scale:float -> ?jobs:int -> Experiment.id -> (string * string) list
(** [(filename, csv_content)] per table of the experiment; filenames
    are derived from the experiment id and table index, e.g.
    ["fig5_0.csv"]. *)

val write_experiment : ?scale:float -> ?jobs:int -> dir:string -> Experiment.id -> string list
(** Run the experiment and write its CSVs under [dir] (created if
    missing); returns the paths written. *)

val write_all : ?scale:float -> ?jobs:int -> dir:string -> unit -> string list
(** Every experiment. *)
