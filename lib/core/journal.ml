module Telemetry = Repro_util.Telemetry
module Faults = Repro_util.Faults

(* File layout:

     RJOURNAL1 <32-hex fingerprint digest>\n
     RJ1 <steplen> <paylen> <32-hex body digest>\n<step><payload>
     RJ1 ...

   Each record's digest covers "<step>\x00<payload>", so neither a
   torn tail nor bit-rot can replay as a completed step; the header
   fingerprint ties the whole file to one (benchmark list, scale,
   schema, tool version) so a journal can never resume a different
   run's results. *)

let file_magic = "RJOURNAL1 "
let rec_magic = "RJ1 "

type t = { jpath : string; mutable fd : Unix.file_descr option }

let path t = t.jpath

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '_')
    name

let journal_path name =
  Filename.concat (Filename.concat (Cache.dir ()) "journal")
    (sanitize name ^ ".journal")

let header fingerprint =
  file_magic ^ Digest.to_hex (Digest.string fingerprint) ^ "\n"

(* Parse the valid prefix of [s] after a matching header. Returns the
   recovered records in order plus the byte offset where validity
   ends — everything past it is a torn or corrupt tail to truncate
   away. *)
let parse_records s =
  let len = String.length s in
  let records = ref [] in
  let pos = ref (String.length file_magic + 33) in
  let ok = ref true in
  while !ok && !pos < len do
    let start = !pos in
    match String.index_from_opt s start '\n' with
    | None -> ok := false
    | Some nl -> (
        let line = String.sub s start (nl - start) in
        match String.split_on_char ' ' line with
        | [ m; sl; pl; hex ]
          when m ^ " " = rec_magic
               && String.length hex = 32 -> (
            match (int_of_string_opt sl, int_of_string_opt pl) with
            | Some steplen, Some paylen
              when steplen > 0 && paylen >= 0
                   && nl + 1 + steplen + paylen <= len ->
                let step = String.sub s (nl + 1) steplen in
                let payload = String.sub s (nl + 1 + steplen) paylen in
                if
                  String.equal hex
                    (Digest.to_hex (Digest.string (step ^ "\x00" ^ payload)))
                then begin
                  records := (step, payload) :: !records;
                  pos := nl + 1 + steplen + paylen
                end
                else ok := false
            | _ -> ok := false)
        | _ -> ok := false)
  done;
  (List.rev !records, !pos)

let warned = ref false

let warn_disabled msg =
  if not !warned then begin
    warned := true;
    Printf.eprintf
      "frontend-repro: journal disabled (%s); runs will not be resumable\n%!"
      msg
  end

let open_run ~name ~fingerprint =
  try
    mkdir_p (Filename.concat (Cache.dir ()) "journal");
    let jpath = journal_path name in
    let hdr = header fingerprint in
    let existing =
      match In_channel.with_open_bin jpath In_channel.input_all with
      | s -> Some s
      | exception Sys_error _ -> None
    in
    let recovered, valid_len =
      match existing with
      | Some s
        when String.length s >= String.length hdr
             && String.equal (String.sub s 0 (String.length hdr)) hdr ->
          let records, endpos = parse_records s in
          if endpos < String.length s then
            Telemetry.incr "journal.truncated";
          (records, endpos)
      | Some _ ->
          (* Stale fingerprint (different benchmarks, scale or tool
             version): resuming would replay the wrong run's results.
             Start over. *)
          ([], 0)
      | None -> ([], 0)
    in
    let fd =
      Unix.openfile jpath [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
    in
    (try
       if valid_len = 0 then begin
         Unix.ftruncate fd 0;
         let b = Bytes.of_string hdr in
         ignore (Unix.write fd b 0 (Bytes.length b))
       end
       else begin
         Unix.ftruncate fd valid_len;
         ignore (Unix.lseek fd 0 Unix.SEEK_END)
       end;
       Unix.fsync fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    List.iter (fun _ -> Telemetry.incr "journal.recovered") recovered;
    Some ({ jpath; fd = Some fd }, recovered)
  with Unix.Unix_error (e, _, _) ->
    warn_disabled (Unix.error_message e);
    None

let append t ~step ~payload =
  match t.fd with
  | None -> ()
  | Some fd -> (
      if Faults.fires "journal.append" then
        (* Simulated append I/O failure: the record is dropped, so
           this step reruns on resume — exactly what a full disk
           would cost. *)
        Telemetry.incr "journal.dropped"
      else begin
        let body = step ^ "\x00" ^ payload in
        let entry =
          Printf.sprintf "%s%d %d %s\n%s%s" rec_magic (String.length step)
            (String.length payload)
            (Digest.to_hex (Digest.string body))
            step payload
        in
        let entry =
          if Faults.fires "journal.torn" then begin
            (* Simulated crash mid-append: half the record reaches
               disk. [open_run]'s digest check truncates it away. *)
            Telemetry.incr "journal.torn_writes";
            String.sub entry 0 (String.length entry / 2)
          end
          else entry
        in
        try
          let b = Bytes.of_string entry in
          ignore (Unix.write fd b 0 (Bytes.length b));
          Unix.fsync fd;
          Telemetry.incr "journal.appends"
        with Unix.Unix_error (e, _, _) ->
          (* Best-effort from here on: keep computing, stop
             journaling. *)
          warn_disabled (Unix.error_message e);
          (try Unix.close fd with Unix.Unix_error _ -> ());
          t.fd <- None
      end)

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      t.fd <- None

let finish t =
  close t;
  try Sys.remove t.jpath with Sys_error _ -> ()
