(** Multicore experiment engine: a [Domain]-based pool that shards
    independent per-benchmark tasks across cores.

    Tasks must be self-contained (each benchmark's trace generator is
    reseeded from its profile), so a parallel run produces results
    bit-identical to a sequential one; the only shared state is the
    engine's own statistics counters. The pool is created per [map]
    call and always joined before returning — a raising task cannot
    leak domains or deadlock the caller.

    When {!Repro_util.Telemetry} is enabled the engine records an
    [engine.batch] span per spawning [map] call with [engine.task]
    child spans (worker domains buffer theirs locally and the buffers
    are merged at join), an [engine.busy_ns] counter, and an
    [engine.utilization] gauge (busy-time / elapsed x domains). With
    telemetry disabled none of this costs anything and results are
    byte-identical. *)

type stats = {
  tasks_run : int;  (** tasks executed by [map] since the last reset *)
  batches : int;  (** [map] calls that actually spawned domains *)
  max_domains : int;  (** largest pool size used so far *)
  cache_hits : int;  (** persistent-cache lookups served from disk *)
  cache_misses : int;  (** persistent-cache lookups that recomputed *)
}

val default_jobs : unit -> int
(** Pool size used when [?jobs] is omitted: [REPRO_JOBS] if set to a
    positive integer, otherwise {!Domain.recommended_domain_count}.

    Every pool size — from the environment, {!set_default_jobs} or
    [?jobs] — is clamped to [1..64]: beyond ~64 domains the OCaml 5
    runtime's stop-the-world sections dominate and no suite has more
    tasks than that anyway. A malformed or non-positive [REPRO_JOBS]
    (e.g. ["O8"], ["0"], ["-3"]) is diagnosed once on stderr and the
    default is used; it is never silently treated as valid. *)

val set_default_jobs : int -> unit
(** Override {!default_jobs} for the rest of the process (clamped to
    [1..64]); used by the [-j] flags of the CLI and bench harness. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] is [List.map f items] computed by up to [jobs]
    domains (including the calling one). Order is preserved. With
    [jobs <= 1] — or a list shorter than two elements — no domain is
    spawned and the work runs inline.

    If any task raises, every worker stops taking new tasks, all
    domains are joined, and the first (lowest-index) exception is
    re-raised in the caller. *)

val stats : unit -> stats
val reset_stats : unit -> unit

(**/**)

val note_cache_hit : unit -> unit
val note_cache_miss : unit -> unit
(** Called by {!Cache}; exposed so the persistent cache and the pool
    report through one counter block. *)
