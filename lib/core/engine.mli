(** Multicore experiment engine: a [Domain]-based pool that shards
    independent per-benchmark tasks across cores, with supervised
    execution on top — per-task retry with exponential backoff for
    transient failures, monotonic-deadline timeouts, and a
    structured-result map for callers that degrade instead of abort.

    Tasks must be self-contained (each benchmark's trace generator is
    reseeded from its profile), so a parallel run produces results
    bit-identical to a sequential one; the only shared state is the
    engine's own statistics counters. The pool is created per [map]
    call and always joined before returning — a raising task cannot
    leak domains or deadlock the caller.

    Every task dispatch passes the [engine.task] fault site of
    {!Repro_util.Faults}, so a fault-torture run
    ([REPRO_FAULTS=engine.task:0.1:7]) exercises exactly the retry
    and degradation paths a real crash would.

    When {!Repro_util.Telemetry} is enabled the engine records an
    [engine.batch] span per spawning [map] call with [engine.task]
    child spans (worker domains buffer theirs locally and flush the
    buffers in a finalizer, so partial spans survive a failing
    sibling task; the buffers are merged at join), an
    [engine.busy_ns] counter, outcome counters
    ([engine.tasks_ok/retried/failed/timed_out]), and an
    [engine.utilization] gauge (busy-time / elapsed x domains). With
    telemetry disabled none of this costs anything and results are
    byte-identical. *)

type stats = {
  tasks_run : int;  (** tasks completed successfully by [map]/[map_result] *)
  batches : int;  (** calls that actually spawned domains *)
  max_domains : int;  (** largest pool size used so far *)
  cache_hits : int;  (** persistent-cache lookups served from disk *)
  cache_misses : int;  (** persistent-cache lookups that recomputed *)
  tasks_retried : int;  (** retry attempts made on transient failures *)
  tasks_failed : int;  (** tasks that failed after their retry budget *)
  tasks_timed_out : int;  (** tasks whose attempt overran its deadline *)
}

val default_jobs : unit -> int
(** Pool size used when [?jobs] is omitted: [REPRO_JOBS] if set to a
    positive integer, otherwise {!Domain.recommended_domain_count}.

    Every pool size — from the environment, {!set_default_jobs} or
    [?jobs] — is clamped to [1..64]: beyond ~64 domains the OCaml 5
    runtime's stop-the-world sections dominate and no suite has more
    tasks than that anyway. A malformed or non-positive [REPRO_JOBS]
    (e.g. ["O8"], ["0"], ["-3"]) is diagnosed once on stderr and the
    default is used; it is never silently treated as valid. *)

val set_default_jobs : int -> unit
(** Override {!default_jobs} for the rest of the process (clamped to
    [1..64]); used by the [-j] flags of the CLI and bench harness. *)

(** {1 Supervision} *)

type policy = {
  retries : int;  (** extra attempts for [Transient]-classed failures *)
  backoff_ms : float;  (** backoff base: base, 2x, 4x ... capped at 100ms *)
  timeout_ms : int option;  (** per-attempt monotonic deadline *)
}

val default_policy : unit -> policy
(** The process-wide policy used when [?policy] is omitted:
    [retries] from {!set_retries} (default 2), 1ms backoff base,
    [timeout_ms] from {!set_timeout_ms} (default none). *)

val retries : unit -> int
val set_retries : int -> unit
(** Clamped to [0..10]; wired to the bench harness [--retry] flag. *)

val timeout_ms : unit -> int option
val set_timeout_ms : int option -> unit
(** Clamped to [>= 1] ms; wired to [--timeout-ms]. Deadlines are
    cooperative: OCaml domains cannot be preempted, so an attempt
    that overran is detected when it returns and its result is
    discarded (classed [Timeout], never retried) — a timeout bounds
    the damage of slow tasks, it cannot unstick a livelocked one.
    Note that discarding an overrunning result makes output depend
    on wall time; leave timeouts off when bit-reproducibility
    matters. *)

(** {1 Mapping} *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] is [List.map f items] computed by up to [jobs]
    domains (including the calling one). Order is preserved. With
    [jobs <= 1] — or a list shorter than two elements — no domain is
    spawned and the work runs inline.

    Transient failures ({!Failure.classify}) are retried under
    {!default_policy} before counting as failures. If a task still
    fails, every worker stops taking new tasks, all domains are
    joined, and the first (lowest-index) original exception is
    re-raised in the caller; a deadline overrun raises
    {!Failure.Error} with class [Timeout]. *)

val map_result :
  ?jobs:int ->
  ?policy:policy ->
  ?fail_fast:bool ->
  ('a -> 'b) ->
  'a list ->
  ('b, Failure.t) result list
(** Like {!map} but failures become data: each task yields [Ok] or
    the structured {!Failure.t} it died with (after the retry
    budget). With [fail_fast] (default [false]) workers stop taking
    new tasks after the first failure and unattempted tasks yield a
    [Transient] "abandoned" failure; otherwise every task runs to
    completion regardless of siblings. Fatal runtime conditions
    ([Out_of_memory], [Stack_overflow], [Sys.Break]) are never
    converted to values — they re-raise after the pool is joined. *)

val stats : unit -> stats
val reset_stats : unit -> unit

(**/**)

val note_cache_hit : unit -> unit
val note_cache_miss : unit -> unit
(** Called by {!Cache}; exposed so the persistent cache and the pool
    report through one counter block. *)
