module Json = Repro_util.Json
module Telemetry = Repro_util.Telemetry
module Env = Repro_util.Env
module Faults = Repro_util.Faults

(* ------------------------------------------------------------------ *)
(* Frames                                                             *)
(* ------------------------------------------------------------------ *)

module Frame = struct
  let magic = "RSRV1 "

  (* A frame longer than this is a protocol error, not an allocation
     request: the declared length is checked before any payload buffer
     is allocated, so a hostile or corrupt header cannot OOM the
     daemon. *)
  let max_frame = 32 * 1024 * 1024

  (* The header is [magic ^ decimal length ^ '\n']; anything past this
     many bytes without a newline cannot be a valid header. *)
  let max_header = String.length magic + 10

  type error = Closed | Torn | Oversized of int | Garbage of string

  let error_to_string = function
    | Closed -> "connection closed"
    | Torn -> "torn frame: EOF inside header or payload"
    | Oversized n -> Printf.sprintf "oversized frame: %d bytes declared" n
    | Garbage h ->
        Printf.sprintf "garbage frame header: %S" (String.sub h 0 (min 32 (String.length h)))

  let rec really_read fd buf ofs len =
    if len = 0 then true
    else
      match Unix.read fd buf ofs len with
      | 0 -> false
      | n -> really_read fd buf (ofs + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> really_read fd buf ofs len
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          (* An abruptly dead peer (kill -9, reset) reads as EOF: the
             caller treats it exactly like a torn frame. *)
          false

  let read ?(max_bytes = max_frame) fd =
    let hdr = Buffer.create max_header in
    let one = Bytes.create 1 in
    let rec header () =
      if Buffer.length hdr > max_header then Error (Garbage (Buffer.contents hdr))
      else if not (really_read fd one 0 1) then
        if Buffer.length hdr = 0 then Error Closed else Error Torn
      else
        let c = Bytes.get one 0 in
        if c = '\n' then Ok (Buffer.contents hdr)
        else begin
          Buffer.add_char hdr c;
          header ()
        end
    in
    match header () with
    | Error e -> Error e
    | Ok line ->
        let mlen = String.length magic in
        if String.length line <= mlen || not (String.equal (String.sub line 0 mlen) magic)
        then Error (Garbage line)
        else begin
          match int_of_string_opt (String.sub line mlen (String.length line - mlen)) with
          | None -> Error (Garbage line)
          | Some len when len < 0 -> Error (Garbage line)
          | Some len when len > max_bytes -> Error (Oversized len)
          | Some len ->
              let payload = Bytes.create len in
              if really_read fd payload 0 len then Ok (Bytes.unsafe_to_string payload)
              else Error Torn
        end

  let write fd payload =
    let msg =
      String.concat ""
        [ magic; string_of_int (String.length payload); "\n"; payload ]
    in
    let buf = Bytes.unsafe_of_string msg in
    let total = Bytes.length buf in
    let rec push ofs len =
      if len > 0 then
        match Unix.write fd buf ofs len with
        | n -> push (ofs + n) (len - n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> push ofs len
    in
    push 0 total;
    total
end

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)
(* ------------------------------------------------------------------ *)

type config = {
  scale : float;
  jobs : int;
  sample : float option;
  faults : string option;
  packed : bool;
  fused : bool;
}

let clamp_jobs j = if j < 1 then 1 else if j > 64 then 64 else j

let current_config () =
  { scale = Env.float_positive ~name:"REPRO_SCALE" ~default:1.0 ();
    jobs = Engine.default_jobs ();
    sample = Experiment.sample_fraction ();
    faults = Faults.spec ();
    packed = Experiment.packed_enabled ();
    fused = Experiment.fused_enabled () }

let env_config () =
  let scale = Env.float_positive ~name:"REPRO_SCALE" ~default:1.0 () in
  let jobs =
    match Env.int_clamped ~name:"REPRO_JOBS" ~min:1 ~max:64 () with
    | Some j -> j
    | None -> Engine.default_jobs ()
  in
  let sample =
    match Env.float_clamped ~name:"REPRO_SAMPLE" ~min:0.01 ~max:1.0 () with
    | Some f when f < 0.995 -> Some f
    | Some _ | None -> None
  in
  let faults =
    match Sys.getenv_opt "REPRO_FAULTS" with
    | None | Some "" -> None
    | Some s -> Some s
  in
  { scale; jobs; sample; faults;
    packed = Env.flag ~name:"REPRO_PACKED" ~default:true;
    fused = Env.flag ~name:"REPRO_FUSED" ~default:true }

(* Push a configuration into the process-wide toggles. Called only
   from inside the reload critical section (or before any worker is
   spawned), so no request can observe a half-applied set. *)
let apply_config cfg =
  Engine.set_default_jobs cfg.jobs;
  Experiment.set_sampled cfg.sample;
  Experiment.set_packed cfg.packed;
  Experiment.set_fused cfg.fused;
  Faults.configure cfg.faults

let config_json cfg =
  Json.Obj
    [ ("scale", Json.Num cfg.scale);
      ("jobs", Json.Num (float_of_int cfg.jobs));
      ("sample", (match cfg.sample with Some f -> Json.Num f | None -> Json.Null));
      ("faults", (match cfg.faults with Some s -> Json.Str s | None -> Json.Null));
      ("packed", Json.Bool cfg.packed);
      ("fused", Json.Bool cfg.fused) ]

(* ------------------------------------------------------------------ *)
(* Server state                                                       *)
(* ------------------------------------------------------------------ *)

type t = {
  listeners : Unix.file_descr list;
  sock_path : string option;
  tcp_port : int option;
  n_workers : int;
  stop_flag : bool Atomic.t;
  mutable domains : unit Domain.t list;
  tele : Telemetry.buffer array;  (* slot [i] written once by worker [i] *)
  (* Reload gate. [lock] guards every mutable field below; [cond] is
     broadcast when [active] drains to zero (reloader wakes) and when
     a reload finishes (parked requests wake). *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable cfg : config;
  mutable active : int;  (* gated requests currently executing *)
  mutable waiting : int;  (* gated requests parked behind a reload *)
  mutable reloading : bool;
  mutable generation : int;
  mutable reload_accepted_ns : int64;  (* of the generation in force *)
  mutable lag_gen : int;  (* newest generation whose lag is recorded *)
  mutable lag_ms : float;
  mutable stopped : bool;
  started_ns : int64;
  requests : int Atomic.t;
  proto_errors : int Atomic.t;
  reloads : int Atomic.t;
  bytes_in : int Atomic.t;
  bytes_out : int Atomic.t;
  conns : int Atomic.t;
}

let sock_path t = t.sock_path
let tcp_port t = t.tcp_port
let request_stop t = Atomic.set t.stop_flag true
let stopping t = Atomic.get t.stop_flag
let config t = Mutex.protect t.lock (fun () -> t.cfg)
let generation t = Mutex.protect t.lock (fun () -> t.generation)

let update_lag_ms t =
  Mutex.protect t.lock (fun () ->
      if t.lag_gen >= 0 then Some t.lag_ms else None)

(* --- reload gate ------------------------------------------------- *)

(* A gated request parks while a reload is swapping configuration,
   then snapshots the generation and config it will run under. *)
let enter t =
  Mutex.lock t.lock;
  t.waiting <- t.waiting + 1;
  while t.reloading do
    Condition.wait t.cond t.lock
  done;
  t.waiting <- t.waiting - 1;
  t.active <- t.active + 1;
  let snapshot = (t.generation, t.cfg) in
  Mutex.unlock t.lock;
  snapshot

let leave t =
  Mutex.lock t.lock;
  t.active <- t.active - 1;
  if t.active = 0 then Condition.broadcast t.cond;
  Mutex.unlock t.lock

(* First request completed under a generation stamps that
   generation's update lag: reload-accepted to response-complete,
   quiesce drain included. A request that snapshotted an older
   generation never stamps a newer one. *)
let note_completed t gen =
  Mutex.lock t.lock;
  if gen = t.generation && t.lag_gen < gen then begin
    t.lag_gen <- gen;
    t.lag_ms <-
      Int64.to_float (Int64.sub (Telemetry.now_ns ()) t.reload_accepted_ns)
      /. 1e6
  end;
  Mutex.unlock t.lock

let gated t f =
  let gen, cfg = enter t in
  let result = Fun.protect ~finally:(fun () -> leave t) (fun () -> f cfg) in
  note_completed t gen;
  (gen, result)

let reload t cfg =
  let accepted = Telemetry.now_ns () in
  Mutex.lock t.lock;
  while t.reloading do
    Condition.wait t.cond t.lock
  done;
  t.reloading <- true;
  while t.active > 0 do
    Condition.wait t.cond t.lock
  done;
  let cfg = { cfg with jobs = clamp_jobs cfg.jobs } in
  apply_config cfg;
  t.cfg <- cfg;
  t.generation <- t.generation + 1;
  t.reload_accepted_ns <- accepted;
  t.reloading <- false;
  let gen = t.generation in
  Atomic.incr t.reloads;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock;
  Telemetry.incr "server.reloads";
  gen

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)
(* ------------------------------------------------------------------ *)

let member_string name j =
  match Json.member name j with Some (Json.Str s) -> Some s | _ -> None

let ns_to_ms a b = Int64.to_float (Int64.sub b a) /. 1e6

let stats_json t =
  let engine = Engine.stats () in
  let active, waiting, gen, lag =
    Mutex.protect t.lock (fun () ->
        (t.active, t.waiting, t.generation,
         if t.lag_gen >= 0 then Json.Num t.lag_ms else Json.Null))
  in
  [ ("generation", Json.Num (float_of_int gen));
    ("requests", Json.Num (float_of_int (Atomic.get t.requests)));
    ("protocol_errors", Json.Num (float_of_int (Atomic.get t.proto_errors)));
    ("reloads", Json.Num (float_of_int (Atomic.get t.reloads)));
    ("active", Json.Num (float_of_int active));
    ("queue_depth", Json.Num (float_of_int (active + waiting)));
    ("connections", Json.Num (float_of_int (Atomic.get t.conns)));
    ("bytes_in", Json.Num (float_of_int (Atomic.get t.bytes_in)));
    ("bytes_out", Json.Num (float_of_int (Atomic.get t.bytes_out)));
    ("update_lag_ms", lag);
    ("uptime_ms", Json.Num (ns_to_ms t.started_ns (Telemetry.now_ns ())));
    ("workers", Json.Num (float_of_int t.n_workers));
    ("engine",
     Json.Obj
       [ ("tasks_run", Json.Num (float_of_int engine.Engine.tasks_run));
         ("batches", Json.Num (float_of_int engine.Engine.batches));
         ("tasks_retried", Json.Num (float_of_int engine.Engine.tasks_retried));
         ("tasks_failed", Json.Num (float_of_int engine.Engine.tasks_failed));
         ("cache_hits", Json.Num (float_of_int engine.Engine.cache_hits));
         ("cache_misses", Json.Num (float_of_int engine.Engine.cache_misses)) ]);
    ("cache",
     Json.Obj
       [ ("entries", Json.Num (float_of_int (Cache.entries ())));
         ("quarantined", Json.Num (float_of_int (Cache.quarantined ()))) ]) ]

(* Build the reload target: the current (or env) config overridden by
   the request's explicit fields. Malformed fields are errors, not
   silent fallbacks — a reload that half-parsed must not half-apply. *)
let parse_reload base req =
  let ( let* ) = Result.bind in
  let num name k acc =
    match Json.member name req with
    | None -> Ok acc
    | Some (Json.Num f) -> k f acc
    | Some _ -> Error (name ^ " must be a number")
  in
  let boolean name k acc =
    match Json.member name req with
    | None -> Ok acc
    | Some (Json.Bool b) -> Ok (k b acc)
    | Some _ -> Error (name ^ " must be a boolean")
  in
  let* cfg =
    num "scale"
      (fun f acc ->
        if Float.is_finite f && f > 0.0 then Ok { acc with scale = f }
        else Error "scale must be finite and positive")
      base
  in
  let* cfg =
    num "jobs"
      (fun f acc ->
        let j = int_of_float f in
        if float_of_int j <> f || j < 1 then Error "jobs must be a positive integer"
        else Ok { acc with jobs = clamp_jobs j })
      cfg
  in
  let* cfg =
    match Json.member "sample" req with
    | None -> Ok cfg
    | Some Json.Null -> Ok { cfg with sample = None }
    | Some (Json.Num f) ->
        if Float.is_finite f && f > 0.0 && f <= 1.0 then
          Ok { cfg with sample = Some f }
        else Error "sample must be in (0, 1] or null"
    | Some _ -> Error "sample must be a number or null"
  in
  let* cfg =
    match Json.member "faults" req with
    | None -> Ok cfg
    | Some Json.Null -> Ok { cfg with faults = None }
    | Some (Json.Str s) -> Ok { cfg with faults = (if s = "" then None else Some s) }
    | Some _ -> Error "faults must be a string or null"
  in
  let* cfg = boolean "packed" (fun b acc -> { acc with packed = b }) cfg in
  let* cfg = boolean "fused" (fun b acc -> { acc with fused = b }) cfg in
  Ok cfg

type action = Continue | Shutdown

let dispatch t payload =
  Atomic.incr t.requests;
  Telemetry.incr "server.requests";
  Telemetry.with_span "server.request" (fun () ->
      match Json.of_string payload with
      | Error msg ->
          Atomic.incr t.proto_errors;
          (Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str ("invalid json: " ^ msg)) ],
           Continue)
      | Ok req ->
          let seq =
            match Json.member "seq" req with
            | Some s -> [ ("seq", s) ]
            | None -> []
          in
          let ok fields = Json.Obj ((("ok", Json.Bool true) :: fields) @ seq) in
          let err msg =
            Atomic.incr t.proto_errors;
            (Json.Obj ((("ok", Json.Bool false) :: [ ("error", Json.Str msg) ]) @ seq),
             Continue)
          in
          let run_text op extra f =
            let t0 = Telemetry.now_ns () in
            match gated t f with
            | (gen, text) ->
                (ok
                   ([ ("op", Json.Str op) ] @ extra
                    @ [ ("generation", Json.Num (float_of_int gen));
                        ("wall_ms", Json.Num (ns_to_ms t0 (Telemetry.now_ns ())));
                        ("text", Json.Str text) ]),
                 Continue)
            | exception Failure.Error f -> err ("failed: " ^ Failure.to_string f)
            | exception e when Failure.capturable e ->
                err ("failed: " ^ Printexc.to_string e)
          in
          match member_string "op" req with
          | None -> err "missing op"
          | Some "ping" ->
              let gen, () = gated t (fun _cfg -> ()) in
              (ok [ ("op", Json.Str "ping"); ("generation", Json.Num (float_of_int gen)) ],
               Continue)
          | Some "experiment" -> (
              match member_string "id" req with
              | None -> err "experiment: missing id"
              | Some ids -> (
                  match Experiment.of_string ids with
                  | None -> err ("unknown experiment: " ^ ids)
                  | Some id ->
                      run_text "experiment"
                        [ ("id", Json.Str ids) ]
                        (fun cfg ->
                          Report.run_to_string ~scale:cfg.scale ~jobs:cfg.jobs id)))
          | Some "report" ->
              run_text "report" [] (fun cfg ->
                  Report.run_all_to_string ~scale:cfg.scale ~jobs:cfg.jobs ())
          | Some "stats" -> (ok (("op", Json.Str "stats") :: stats_json t), Continue)
          | Some "reload" -> (
              let base =
                match Json.member "env" req with
                | Some (Json.Bool true) -> env_config ()
                | _ -> config t
              in
              match parse_reload base req with
              | Error msg -> err ("reload: " ^ msg)
              | Ok cfg ->
                  let gen = reload t cfg in
                  (ok
                     [ ("op", Json.Str "reload");
                       ("generation", Json.Num (float_of_int gen));
                       ("config", config_json cfg) ],
                   Continue))
          | Some "shutdown" -> (ok [ ("op", Json.Str "shutdown") ], Shutdown)
          | Some op -> err ("unknown op: " ^ op))

(* ------------------------------------------------------------------ *)
(* Connection handling                                                *)
(* ------------------------------------------------------------------ *)

(* Block until [fd] is readable or the server is stopping. The 50ms
   slice bounds how long an idle connection can delay shutdown. *)
let rec wait_readable t fd =
  if Atomic.get t.stop_flag then `Stop
  else
    match Unix.select [ fd ] [] [] 0.05 with
    | [], _, _ -> wait_readable t fd
    | _ -> `Readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable t fd

let frame_overhead payload_len =
  String.length Frame.magic + String.length (string_of_int payload_len) + 1

let handle_conn t fd =
  Atomic.incr t.conns;
  Telemetry.incr "server.connections";
  let closing = ref false in
  (try
     while (not !closing) && not (Atomic.get t.stop_flag) do
       match wait_readable t fd with
       | `Stop -> closing := true
       | `Readable -> (
           match Frame.read fd with
           | Error Frame.Closed -> closing := true
           | Error e ->
               (* Garbage, torn or oversized framing: answer
                  best-effort, then drop the connection — there is no
                  way back to a frame boundary. The server survives;
                  only this client's connection dies. *)
               Atomic.incr t.proto_errors;
               Telemetry.incr "server.protocol_errors";
               let payload =
                 Json.to_string
                   (Json.Obj
                      [ ("ok", Json.Bool false);
                        ("error", Json.Str (Frame.error_to_string e)) ])
               in
               (try ignore (Frame.write fd payload)
                with Unix.Unix_error _ -> ());
               closing := true
           | Ok payload ->
               let n_in = String.length payload + frame_overhead (String.length payload) in
               ignore (Atomic.fetch_and_add t.bytes_in n_in);
               Telemetry.add "server.bytes_in" n_in;
               let response, action = dispatch t payload in
               let out = Json.to_string response in
               let n_out = Frame.write fd out in
               ignore (Atomic.fetch_and_add t.bytes_out n_out);
               Telemetry.add "server.bytes_out" n_out;
               (match action with
                | Continue -> ()
                | Shutdown ->
                    closing := true;
                    request_stop t))
     done
   with Unix.Unix_error _ ->
     (* EPIPE / ECONNRESET on the response write: the client died
        mid-request (kill -9). Its work is already memoized for the
        next client; nothing to unwind. *)
     ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Atomic.decr t.conns

let worker t i =
  Fun.protect
    ~finally:(fun () -> t.tele.(i) <- Telemetry.export ())
    (fun () ->
      while not (Atomic.get t.stop_flag) do
        match Unix.select t.listeners [] [] 0.05 with
        | [], _, _ -> ()
        | ready, _, _ ->
            List.iter
              (fun lfd ->
                (* Listeners are non-blocking: when several workers
                   wake for one pending connection, the losers get
                   EAGAIN and go back to select. *)
                match Unix.accept ~cloexec:true lfd with
                | fd, _ -> handle_conn t fd
                | exception
                    Unix.Unix_error
                      ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                       | Unix.ECONNABORTED), _, _) -> ())
              ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (Unix.EBADF, _, _) ->
            (* A listener was closed under us: we are stopping. *)
            Atomic.set t.stop_flag true
      done)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let listen_unix path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, port)

let start ?config ?socket ?tcp ?(workers = 4) () =
  (* A client that vanishes between our read and our write must be an
     EPIPE on that connection, never a process-wide SIGPIPE kill. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let socket =
    match (socket, tcp) with None, None -> Some "_serve.sock" | _ -> socket
  in
  let unix_l = Option.map listen_unix socket in
  let tcp_l = Option.map listen_tcp tcp in
  let listeners =
    List.filter_map Fun.id [ unix_l; Option.map fst tcp_l ]
  in
  let cfg =
    match config with Some c -> { c with jobs = clamp_jobs c.jobs } | None -> current_config ()
  in
  apply_config cfg;
  let n_workers = max 1 (min 16 workers) in
  let now = Telemetry.now_ns () in
  let t =
    { listeners;
      sock_path = socket;
      tcp_port = Option.map snd tcp_l;
      n_workers;
      stop_flag = Atomic.make false;
      domains = [];
      tele = Array.make n_workers Telemetry.empty_buffer;
      lock = Mutex.create ();
      cond = Condition.create ();
      cfg;
      active = 0;
      waiting = 0;
      reloading = false;
      generation = 0;
      reload_accepted_ns = now;
      lag_gen = -1;
      lag_ms = 0.0;
      stopped = false;
      started_ns = now;
      requests = Atomic.make 0;
      proto_errors = Atomic.make 0;
      reloads = Atomic.make 0;
      bytes_in = Atomic.make 0;
      bytes_out = Atomic.make 0;
      conns = Atomic.make 0 }
  in
  t.domains <- List.init n_workers (fun i -> Domain.spawn (fun () -> worker t i));
  t

let wait ?(poll_s = 0.2) ?(on_tick = fun () -> ()) t =
  while not (Atomic.get t.stop_flag) do
    on_tick ();
    Unix.sleepf poll_s
  done

let stop t =
  request_stop t;
  let already = Mutex.protect t.lock (fun () ->
      let v = t.stopped in
      t.stopped <- true;
      v)
  in
  if not already then begin
    List.iter Domain.join t.domains;
    t.domains <- [];
    if Telemetry.enabled () then Array.iter Telemetry.absorb t.tele;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.listeners;
    match t.sock_path with
    | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Client                                                             *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type conn = { fd : Unix.file_descr }

  let connect ?(retry_for = 0.0) ?socket ?tcp () =
    let addr =
      match (socket, tcp) with
      | Some path, _ -> Unix.ADDR_UNIX path
      | None, Some port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
      | None, None -> invalid_arg "Server.Client.connect: no endpoint"
    in
    let domain =
      match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
    in
    let deadline = Unix.gettimeofday () +. retry_for in
    let rec attempt () =
      let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd addr with
      | () -> { fd }
      | exception
          Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
        when Unix.gettimeofday () < deadline ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.05;
          attempt ()
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
    in
    attempt ()

  let fd c = c.fd

  let request_raw c payload =
    ignore (Frame.write c.fd payload);
    Frame.read c.fd

  let request c j =
    match request_raw c (Json.to_string j) with
    | Error e -> Error (Frame.error_to_string e)
    | Ok s -> (
        match Json.of_string s with
        | Ok j -> Ok j
        | Error m -> Error ("invalid response json: " ^ m))

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
end
