(** Packed capture/replay of a dynamic instruction stream.

    A packed trace is a compact structure-of-arrays snapshot of every
    {!Inst.t} a {!Trace.t} produces: per instruction one machine word
    for the address, one for the branch target, one byte for the
    encoded size and one byte of flags (kind, taken, section, warmup).
    Capture pays the full generator cost once; {!replay} then drives
    any consumer over the identical stream with an allocation-free
    inner loop that is an order of magnitude cheaper than re-running
    the generator — the capture/replay methodology the paper applies
    with Pin, where one instrumented execution feeds every analysis.

    Storage is chunked: instructions are appended to fixed-capacity
    chunks ({!default_chunk_capacity}), so capture never copies or
    resizes a multi-million-entry array and multi-million-instruction
    traces allocate in bounded, GC-friendly pieces.

    Each chunk also carries two side indexes — the positions of
    conditional branches and of taken non-syscall/non-return branches
    (fetch redirects) — plus non-warmup per-section instruction
    counts, so branch-level tools can replay only the instructions
    they act on ({!replay_conditionals}, {!replay_redirects}) and
    recover exact MPKI denominators from {!counted} without touching
    the ~90% of the stream they would ignore.

    A packed trace contains only immutable arrays after capture: it
    is safe to {!replay} the same trace from several domains at once
    (each replay call allocates its own scratch {!Inst.t}), and it
    round-trips through [Marshal] — {!Repro_core.Cache} can persist
    it. Replay reuses one mutable record per call; consumers must
    {!Inst.clone} anything they retain, exactly as with live traces.

    When {!Repro_util.Telemetry} is enabled, capture runs under a
    [trace.capture] span and bumps [trace.bytes]/[trace.insts];
    replays run under [trace.replay] spans. *)

type t

val default_chunk_capacity : int
(** Instructions per storage chunk (65536). *)

val of_trace : ?chunk_capacity:int -> Trace.t -> t
(** Run the trace once and capture every instruction. Raises
    [Invalid_argument] if an instruction's size is outside [1..255]
    (the byte-per-entry size column; real ISAs fit with room). *)

val length : t -> int
(** Total captured instructions, warmup included. *)

val counted : t -> int * int
(** [(serial, parallel)] non-warmup instruction counts — the MPKI
    denominators every statistics tool derives from the stream. *)

val byte_size : t -> int
(** Approximate heap footprint of the packed representation in
    bytes (used for the replay-cache byte budget). *)

val replay : t -> (Inst.t -> unit) -> unit
(** Drive a consumer over the full captured stream, in order. The
    pushed record is reused across callbacks; no allocation happens
    per instruction. *)

val replay_conditionals : t -> (Inst.t -> unit) -> unit
(** Replay only the [Cond_branch] instructions (warmup ones
    included), in order — everything a conditional-branch predictor
    observes. *)

val replay_redirects : t -> (Inst.t -> unit) -> unit
(** Replay only taken branches excluding syscalls and returns
    (warmup ones included), in order — everything a BTB observes. *)

val replay_range : t -> lo:int -> hi:int -> (Inst.t -> unit) -> unit
(** Replay only instructions at absolute positions [lo..hi-1], in
    order — the primitive representative-region sampling uses to
    drive a simulator over one region of the capture. Empty when
    [lo >= hi]. *)

val replay_conditionals_range :
  t -> lo:int -> hi:int -> (Inst.t -> unit) -> unit
(** {!replay_conditionals} restricted to positions [lo..hi-1]; the
    per-chunk side index is binary-searched, so cost is proportional
    to the conditionals inside the range, not the range length. *)

val replay_redirects_range :
  t -> lo:int -> hi:int -> (Inst.t -> unit) -> unit
(** {!replay_redirects} restricted to positions [lo..hi-1]. *)

val to_trace : t -> Trace.t
(** The replay as an ordinary re-runnable {!Trace.t}. *)
