module Telemetry = Repro_util.Telemetry
module Faults = Repro_util.Faults

let default_chunk_capacity = 65536

(* Flag byte layout: bits 0-2 kind, bit 3 taken, bit 4 parallel
   section, bit 5 warmup. *)

let kind_to_int = function
  | Inst.Plain -> 0
  | Inst.Cond_branch -> 1
  | Inst.Uncond_direct -> 2
  | Inst.Indirect_branch -> 3
  | Inst.Call -> 4
  | Inst.Indirect_call -> 5
  | Inst.Return -> 6
  | Inst.Syscall -> 7

let kinds =
  [| Inst.Plain; Inst.Cond_branch; Inst.Uncond_direct; Inst.Indirect_branch;
     Inst.Call; Inst.Indirect_call; Inst.Return; Inst.Syscall |]

type chunk = {
  len : int;
  addr : int array;
  target : int array;
  size : Bytes.t;
  flags : Bytes.t;
  conds : int array;  (* positions of Cond_branch entries *)
  redirects : int array;  (* positions of taken non-sys/non-ret branches *)
  c_serial : int;  (* non-warmup serial instructions in this chunk *)
  c_parallel : int;
}

type t = { chunks : chunk array; total : int }

(* Growing capture state: arrays of [cap] entries filled to [fill],
   sealed into an immutable chunk when full. *)
type builder = {
  cap : int;
  mutable fill : int;
  mutable b_addr : int array;
  mutable b_target : int array;
  mutable b_size : Bytes.t;
  mutable b_flags : Bytes.t;
  mutable sealed : chunk list;  (* reverse order *)
  mutable total : int;
}

let is_redirect_flags f =
  (* taken, any branch kind except Syscall and Return *)
  let kind = f land 7 and taken = f land 8 <> 0 in
  taken && kind <> 0 && kind <> kind_to_int Inst.Return
  && kind <> kind_to_int Inst.Syscall

let seal b =
  if b.fill > 0 then begin
    let len = b.fill in
    let n_cond = ref 0 and n_redir = ref 0 in
    let serial = ref 0 and parallel = ref 0 in
    for i = 0 to len - 1 do
      let f = Char.code (Bytes.unsafe_get b.b_flags i) in
      if f land 7 = 1 then incr n_cond;
      if is_redirect_flags f then incr n_redir;
      if f land 32 = 0 then
        if f land 16 = 0 then incr serial else incr parallel
    done;
    let conds = Array.make !n_cond 0 and redirects = Array.make !n_redir 0 in
    let ci = ref 0 and ri = ref 0 in
    for i = 0 to len - 1 do
      let f = Char.code (Bytes.unsafe_get b.b_flags i) in
      if f land 7 = 1 then begin
        conds.(!ci) <- i;
        incr ci
      end;
      if is_redirect_flags f then begin
        redirects.(!ri) <- i;
        incr ri
      end
    done;
    let trim_int a = if len = b.cap then a else Array.sub a 0 len in
    let trim_bytes s = if len = b.cap then s else Bytes.sub s 0 len in
    b.sealed <-
      { len;
        addr = trim_int b.b_addr;
        target = trim_int b.b_target;
        size = trim_bytes b.b_size;
        flags = trim_bytes b.b_flags;
        conds;
        redirects;
        c_serial = !serial;
        c_parallel = !parallel }
      :: b.sealed;
    b.total <- b.total + len;
    b.fill <- 0;
    (* Fresh buffers: the sealed chunk owns the old ones when full;
       a trimmed seal copied, but a full seal must not be aliased. *)
    b.b_addr <- Array.make b.cap 0;
    b.b_target <- Array.make b.cap 0;
    b.b_size <- Bytes.make b.cap '\000';
    b.b_flags <- Bytes.make b.cap '\000'
  end

let append b (i : Inst.t) =
  if b.fill = b.cap then seal b;
  let n = b.fill in
  if i.size < 1 || i.size > 255 then
    invalid_arg "Packed_trace.of_trace: instruction size outside 1..255";
  b.b_addr.(n) <- i.addr;
  b.b_target.(n) <- i.target;
  Bytes.unsafe_set b.b_size n (Char.unsafe_chr i.size);
  let f =
    kind_to_int i.kind
    lor (if i.taken then 8 else 0)
    lor (match i.section with Section.Serial -> 0 | Section.Parallel -> 16)
    lor if i.warmup then 32 else 0
  in
  Bytes.unsafe_set b.b_flags n (Char.unsafe_chr f);
  b.fill <- n + 1

let length (t : t) = t.total

let counted t =
  Array.fold_left
    (fun (s, p) c -> (s + c.c_serial, p + c.c_parallel))
    (0, 0) t.chunks

(* Two words + two bytes per instruction, one word per indexed
   branch position. *)
let byte_size t =
  Array.fold_left
    (fun acc c ->
      acc + (8 * (2 * c.len)) + (2 * c.len)
      + (8 * (Array.length c.conds + Array.length c.redirects)))
    0 t.chunks

let of_trace ?(chunk_capacity = default_chunk_capacity) trace =
  if chunk_capacity < 1 then invalid_arg "Packed_trace.of_trace: chunk";
  Telemetry.with_span "trace.capture" (fun () ->
      (* Fault-torture site: a simulated capture failure here is
         Transient, so a supervised caller retries the whole capture
         rather than keeping a half-built pack. *)
      Faults.inject "trace.capture";
      let b =
        { cap = chunk_capacity;
          fill = 0;
          b_addr = Array.make chunk_capacity 0;
          b_target = Array.make chunk_capacity 0;
          b_size = Bytes.make chunk_capacity '\000';
          b_flags = Bytes.make chunk_capacity '\000';
          sealed = [];
          total = 0 }
      in
      Trace.iter trace (append b);
      seal b;
      let t =
        { chunks = Array.of_list (List.rev b.sealed); total = b.total }
      in
      Telemetry.add "trace.insts" t.total;
      Telemetry.add "trace.bytes" (byte_size t);
      t)

(* Decode entry [i] of [c] into the reused record. *)
let decode (c : chunk) i (inst : Inst.t) =
  let f = Char.code (Bytes.unsafe_get c.flags i) in
  inst.Inst.addr <- Array.unsafe_get c.addr i;
  inst.Inst.target <- Array.unsafe_get c.target i;
  inst.Inst.size <- Char.code (Bytes.unsafe_get c.size i);
  inst.Inst.kind <- Array.unsafe_get kinds (f land 7);
  inst.Inst.taken <- f land 8 <> 0;
  inst.Inst.section <-
    (if f land 16 = 0 then Section.Serial else Section.Parallel);
  inst.Inst.warmup <- f land 32 <> 0

let replay t f =
  Telemetry.with_span "trace.replay" (fun () ->
      let inst = Inst.make ~addr:0 ~size:1 () in
      Array.iter
        (fun c ->
          for i = 0 to c.len - 1 do
            decode c i inst;
            f inst
          done)
        t.chunks)

let replay_index index t f =
  Telemetry.with_span "trace.replay" (fun () ->
      let inst = Inst.make ~addr:0 ~size:1 () in
      Array.iter
        (fun c ->
          let idx = index c in
          for i = 0 to Array.length idx - 1 do
            decode c (Array.unsafe_get idx i) inst;
            f inst
          done)
        t.chunks)

let replay_conditionals t f = replay_index (fun c -> c.conds) t f
let replay_redirects t f = replay_index (fun c -> c.redirects) t f

(* ------------------------------------------------------------------ *)
(* Range-bounded replay over absolute instruction positions, the
   primitive the representative-region sampling paths are built on.
   Chunk base positions are a prefix sum over chunk lengths; inside a
   chunk the side indexes are sorted, so the first in-range entry is a
   binary lower bound. *)

let chunk_bases t =
  let n = Array.length t.chunks in
  let bases = Array.make n 0 in
  for i = 1 to n - 1 do
    bases.(i) <- bases.(i - 1) + t.chunks.(i - 1).len
  done;
  bases

(* Smallest index in sorted [a] with [a.(i) >= v]; [length a] if none. *)
let lower_bound a v =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let replay_range t ~lo ~hi f =
  if lo < hi then
    Telemetry.with_span "trace.replay" (fun () ->
        let inst = Inst.make ~addr:0 ~size:1 () in
        let bases = chunk_bases t in
        Array.iteri
          (fun ci c ->
            let base = bases.(ci) in
            if base < hi && base + c.len > lo then begin
              let first = Stdlib.max 0 (lo - base) in
              let last = Stdlib.min c.len (hi - base) - 1 in
              for i = first to last do
                decode c i inst;
                f inst
              done
            end)
          t.chunks)

let replay_index_range index t ~lo ~hi f =
  if lo < hi then
    Telemetry.with_span "trace.replay" (fun () ->
        let inst = Inst.make ~addr:0 ~size:1 () in
        let bases = chunk_bases t in
        Array.iteri
          (fun ci c ->
            let base = bases.(ci) in
            if base < hi && base + c.len > lo then begin
              let idx = index c in
              let first = lower_bound idx (lo - base) in
              let stop = lower_bound idx (hi - base) in
              for i = first to stop - 1 do
                decode c (Array.unsafe_get idx i) inst;
                f inst
              done
            end)
          t.chunks)

let replay_conditionals_range t ~lo ~hi f =
  replay_index_range (fun c -> c.conds) t ~lo ~hi f

let replay_redirects_range t ~lo ~hi f =
  replay_index_range (fun c -> c.redirects) t ~lo ~hi f

let to_trace t = Trace.make (fun f -> replay t f)
