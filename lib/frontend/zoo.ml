let gshare_small_bits = 13
let gshare_big_bits = 16

let gshare_small () =
  Gshare.pack ~name:"gshare-small" (Gshare.create ~history_bits:gshare_small_bits)

let gshare_big () =
  Gshare.pack ~name:"gshare-big" (Gshare.create ~history_bits:gshare_big_bits)

let tournament_small () =
  Tournament.pack ~name:"tournament-small"
    (Tournament.create ~addr_bits:10 ~history_bits:8)

let tournament_big () =
  Tournament.pack ~name:"tournament-big"
    (Tournament.create ~addr_bits:12 ~history_bits:14)

let tage_small () =
  let specs =
    [ { Tage.hist_len = 4; index_bits = 8; tag_bits = 9 };
      { Tage.hist_len = 16; index_bits = 8; tag_bits = 9 } ]
  in
  Tage.pack ~name:"tage-small" (Tage.create ~base_index_bits:12 specs)

let tage_big () =
  let specs =
    Tage.geometric_specs ~n_tables:12 ~min_hist:4 ~max_hist:640 ~index_bits:9
      ~tag_bits:11
  in
  Tage.pack ~name:"tage-big" (Tage.create ~base_index_bits:13 specs)

(* The perceptron family at the same 2KB / 16KB budget points as the
   table-based predictors: 8-bit weights, entries * (history + 1)
   bytes. *)
let perceptron_small () =
  Perceptron.pack ~name:"perceptron-small"
    (Perceptron.create ~entries:128 ~history:15 ())

let perceptron_big () =
  Perceptron.pack ~name:"perceptron-big"
    (Perceptron.create ~entries:512 ~history:31 ())

let with_loop base = Loop_predictor.combine (Loop_predictor.create ()) base

(* Declarative description of each base configuration. The gshare
   family is exposed by its parameters rather than as an opaque
   closure so fused sweeps (Repro_analysis.Bp_sweep) can share one
   global-history register across every gshare table; the other
   families stay opaque makers. *)
type core =
  | Gshare_core of { history_bits : int }
  | Opaque of (unit -> Predictor.t)

type spec = { loop : bool; core : core }

let base_cores =
  [ ("gshare-big", Gshare_core { history_bits = gshare_big_bits });
    ("tournament-big", Opaque tournament_big);
    ("tage-big", Opaque tage_big);
    ("perceptron-big", Opaque perceptron_big);
    ("gshare-small", Gshare_core { history_bits = gshare_small_bits });
    ("tournament-small", Opaque tournament_small);
    ("tage-small", Opaque tage_small);
    ("perceptron-small", Opaque perceptron_small) ]

let all_names =
  List.map fst base_cores
  @ [ "L-gshare-small"; "L-tournament-small"; "L-tage-small" ]

let perceptron () = Perceptron.pack (Perceptron.create ())
let two_level () = Two_level.pack (Two_level.create ())

let spec_by_name name =
  match List.assoc_opt name base_cores with
  | Some core -> { loop = false; core }
  | None ->
      (match String.index_opt name '-' with
      | Some 1 when String.length name > 2 && name.[0] = 'L' ->
          let base = String.sub name 2 (String.length name - 2) in
          (match List.assoc_opt base base_cores with
          | Some core -> { loop = true; core }
          | None -> raise Not_found)
      | Some _ | None -> raise Not_found)

let realize_core name = function
  | Gshare_core { history_bits } -> Gshare.pack ~name (Gshare.create ~history_bits)
  | Opaque mk -> mk ()

let by_name name =
  let s = spec_by_name name in
  let base_name =
    if s.loop then String.sub name 2 (String.length name - 2) else name
  in
  let base = realize_core base_name s.core in
  if s.loop then with_loop base else base

let extension_makers =
  [ ("perceptron-128", perceptron); ("two-level-10.10", two_level) ]

let extended_names = all_names @ List.map fst extension_makers

let by_name_extended name =
  match List.assoc_opt name extension_makers with
  | Some mk -> mk ()
  | None -> by_name name
