(** Branch target buffer: a set-associative cache from branch address
    to predicted target, holding taken branches only (not-taken
    branches fall through sequentially). Modulo indexing on the branch
    address — the paper points at exactly this indexing as the source
    of aliasing that high associativity must absorb. LRU replacement.

    A lookup that misses, or hits with a stale target, costs a fetch
    redirect; {!Analysis.Btb_sim} counts those as BTB MPKI events. *)

type t

val create : entries:int -> assoc:int -> t
(** [entries] total entries, [assoc]-way sets. Both powers of two,
    [assoc <= entries]. *)

val entries : t -> int
val assoc : t -> int
val sets : t -> int

val lookup : t -> pc:int -> int option
(** Predicted target if the branch address is present. Updates LRU. *)

val insert : t -> pc:int -> target:int -> unit
(** Record a taken branch's target (allocates or refreshes). *)

(** {1 Decomposed operations}

    [lookup] and [insert] split pc into a set index and a tag; fused
    sweeps ({!Repro_analysis.Btb_sweep}) decompose once per distinct
    set count and drive every same-geometry configuration with the
    shared pair. [lookup t ~pc] = [lookup_at t ~set:(set_of t ~pc)
    ~tag:(tag_of t ~pc)], and likewise for [insert]. *)

val set_of : t -> pc:int -> int
val tag_of : t -> pc:int -> int
val lookup_at : t -> set:int -> tag:int -> int option
val insert_at : t -> set:int -> tag:int -> target:int -> unit

val storage_bits : t -> int
(** Tag + target payload per entry. *)
