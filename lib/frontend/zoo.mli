(** Standard predictor configurations from the paper's Table II.

    Every function builds a *fresh* predictor (internal state included)
    so sweeps over benchmarks never share training state. The "small"
    configurations target a ~2KB hardware budget, the "big" ones ~16KB;
    [with_loop] attaches the 64-entry (~0.5KB) loop predictor the paper
    evaluates as the "L-" variants. *)

val gshare_small : unit -> Predictor.t
(** gshare, [m = 13] (2KB). *)

val gshare_big : unit -> Predictor.t
(** gshare, [m = 16] (16KB). *)

val tournament_small : unit -> Predictor.t
(** tournament, [n = 10, m = 8] (~1.4KB). *)

val tournament_big : unit -> Predictor.t
(** tournament, [n = 12, m = 14] (16KB). *)

val tage_small : unit -> Predictor.t
(** TAGE, two tagged tables (history 4 and 16) (~2KB). *)

val tage_big : unit -> Predictor.t
(** TAGE, twelve tagged tables, histories 4..640 (~14KB). *)

val perceptron_small : unit -> Predictor.t
(** perceptron, 128 entries over 15 history bits (2KB). *)

val perceptron_big : unit -> Predictor.t
(** perceptron, 512 entries over 31 history bits (16KB). *)

val with_loop : Predictor.t -> Predictor.t
(** Attach a fresh 64-entry loop predictor ("L-" prefix). *)

val all_names : string list
(** The eleven names of Fig. 5: [gshare-big] .. [L-tage-small],
    including [perceptron-big] and [perceptron-small]. *)

val by_name : string -> Predictor.t
(** Fresh instance from a Fig. 5 name; raises [Not_found] otherwise. *)

(** {1 Configuration specs}

    Declarative description of a Fig. 5 configuration. Predictors
    whose per-branch state derives from the global stream alone
    (the gshare family) expose their parameters so fused sweeps
    ({!Repro_analysis.Bp_sweep}) can share one history register
    across every table; other families stay opaque makers. *)

type core =
  | Gshare_core of { history_bits : int }
  | Opaque of (unit -> Predictor.t)

type spec = { loop : bool  (** wrapped by {!with_loop} *); core : core }

val spec_by_name : string -> spec
(** Spec for a Fig. 5 name; raises [Not_found] otherwise. [by_name]
    is [spec_by_name] realized, so the two can never disagree. *)

(** {1 Extension predictors}

    Beyond the paper's three families: used by the extension
    experiment in the bench harness. *)

val perceptron : unit -> Predictor.t
(** 128-entry, 24-bit-history perceptron (~3KB). *)

val two_level : unit -> Predictor.t
(** PAg two-level local predictor, 1K histories of 10 bits (~1.5KB). *)

val extended_names : string list
(** [all_names] plus the extension predictors. *)

val by_name_extended : string -> Predictor.t
