(* Circular bit buffer; head points at the slot of the most recent
   outcome. A packed shadow register mirrors the newest outcomes so
   the common [low_bits] query (predictor indexing) is one mask. *)
type t = {
  len : int;
  buf : Bytes.t;
  mutable head : int;
  reg_mask : int; (* covers min len 62 bits *)
  mutable reg : int; (* newest outcome at bit 0 *)
}

let reg_bits len = min len 62

let create len =
  if len < 1 || len > 1024 then invalid_arg "History.create";
  { len;
    buf = Bytes.make len '\000';
    head = 0;
    reg_mask = (1 lsl reg_bits len) - 1;
    reg = 0 }

let length t = t.len

let push t taken =
  t.head <- (t.head + t.len - 1) mod t.len;
  Bytes.unsafe_set t.buf t.head (if taken then '\001' else '\000');
  t.reg <- ((t.reg lsl 1) lor (if taken then 1 else 0)) land t.reg_mask

let bit t i =
  if i < 0 || i >= t.len then false
  else Char.code (Bytes.unsafe_get t.buf ((t.head + i) mod t.len)) = 1

let low_bits t n =
  if n > 62 then invalid_arg "History.low_bits: too wide";
  let n = min n t.len in
  t.reg land ((1 lsl n) - 1)

let folded t ~hist_len ~out_bits =
  assert (out_bits > 0 && out_bits <= 30);
  let hist_len = min hist_len t.len in
  let acc = ref 0 in
  for i = 0 to hist_len - 1 do
    if bit t i then begin
      let pos = i mod out_bits in
      acc := !acc lxor (1 lsl pos)
    end
  done;
  !acc

let clear t =
  Bytes.fill t.buf 0 t.len '\000';
  t.head <- 0;
  t.reg <- 0
