type way = { mutable tag : int; mutable target : int; mutable lru : int }
(* tag = -1 when invalid *)

type t = {
  sets : int;
  assoc : int;
  set_shift : int; (* log2 sets: (pc lsr 1) -> tag *)
  ways : way array array;
  mutable clock : int;
}

let create ~entries ~assoc =
  if not (Repro_util.Units.is_power_of_two entries) then
    invalid_arg "Btb.create: entries";
  if not (Repro_util.Units.is_power_of_two assoc) || assoc > entries then
    invalid_arg "Btb.create: assoc";
  let sets = entries / assoc in
  { sets;
    assoc;
    set_shift = Repro_util.Units.log2 sets;
    ways =
      Array.init sets (fun _ ->
          Array.init assoc (fun _ -> { tag = -1; target = 0; lru = 0 }));
    clock = 0 }

let entries t = t.sets * t.assoc
let assoc t = t.assoc
let sets t = t.sets

let set_of t ~pc = (pc lsr 1) land (t.sets - 1)
(* lsr is right-associative: without the parentheses this would
   compute [pc lsr (1 lsr log2 sets)] = [pc] for any multi-set
   geometry, silently widening the tag by the set-index bits the
   storage accounting below assumes are dropped. *)
let tag_of t ~pc = (pc lsr 1) lsr t.set_shift

let touch t way =
  t.clock <- t.clock + 1;
  way.lru <- t.clock

let lookup_at t ~set ~tag =
  let set = t.ways.(set) in
  let rec go i =
    if i = t.assoc then None
    else if set.(i).tag = tag then begin
      touch t set.(i);
      Some set.(i).target
    end
    else go (i + 1)
  in
  go 0

let lookup t ~pc = lookup_at t ~set:(set_of t ~pc) ~tag:(tag_of t ~pc)

let insert_at t ~set ~tag ~target =
  let set = t.ways.(set) in
  let rec find i = if i = t.assoc then None
    else if set.(i).tag = tag then Some set.(i) else find (i + 1)
  in
  let victim () =
    let best = ref set.(0) in
    for i = 1 to t.assoc - 1 do
      if set.(i).tag = -1 && !best.tag <> -1 then best := set.(i)
      else if set.(i).lru < !best.lru && !best.tag <> -1 then best := set.(i)
    done;
    !best
  in
  let way = match find 0 with Some w -> w | None -> victim () in
  way.tag <- tag;
  way.target <- target;
  touch t way

let insert t ~pc ~target =
  insert_at t ~set:(set_of t ~pc) ~tag:(tag_of t ~pc) ~target

(* 48-bit VA: tag bits + target payload (compressed to 32 bits as in
   real BTBs) + LRU bits. *)
let storage_bits t =
  let tag_bits = 48 - 1 - t.set_shift in
  entries t * (tag_bits + 32 + Repro_util.Units.log2 (max 2 t.assoc))
