(** Instruction cache: set-associative, LRU, physically indexed by
    line address. Tracks, per resident line, which 4-byte granules of
    the line were consumed, to report the paper's line "usefulness"
    metric (fraction of a fetched line's bytes that were actually
    used before eviction). *)

type t

val create :
  ?next_line_prefetch:bool -> ?policy:Replacement.spec -> size_bytes:int ->
  line_bytes:int -> assoc:int -> unit -> t
(** All three powers of two; [line_bytes >= 4]; at least one set.
    With [next_line_prefetch] (default false), every demand miss also
    fills the sequentially next line — the "fetch-directed" effect the
    paper attributes to wide lines, as an explicit mechanism.
    [policy] (default {!Replacement.Lru}) selects the replacement
    policy; [Lru] is byte-identical to the historical hard-wired
    behavior. *)

val size_bytes : t -> int
val line_bytes : t -> int
val assoc : t -> int

val policy : t -> Replacement.spec

val access : t -> addr:int -> size:int -> bool
(** Fetch [size] bytes at [addr] (one instruction, or the leading
    slice of one). Returns [true] on hit. A miss allocates the line.
    Instructions straddling a line boundary access both lines; the
    result is a hit only if every touched line hits. *)

val access_line : t -> line:int -> gmask:int -> bool
(** [access] specialized to bytes that lie within the single line
    [line] (a line address, not a byte address), with the consumed
    granule bitmask [gmask] precomputed by the caller. Equivalent to
    [access ~addr ~size] when [addr .. addr+size-1] spans only
    [line]. Fused sweeps ({!Repro_analysis.Icache_sweep}) compute the
    line and mask once per line size and probe every configuration
    sharing that line size with them. *)

val consume : t -> addr:int -> size:int -> unit
(** Mark bytes as consumed from an already-resident line without
    counting a cache access (sequential extraction within the current
    fetch line). No-op for non-resident lines. *)

val consume_line : t -> line:int -> gmask:int -> unit
(** [consume] specialized to bytes that lie within the single line
    [line] (a line address, not a byte address), with the granule
    bitmask [gmask] precomputed by the caller. Equivalent to
    [consume ~addr ~size] when [addr .. addr+size-1] spans only
    [line]; fused sweeps ({!Repro_analysis.Icache_sweep}) compute the
    mask once per line size and replay it into every configuration
    sharing that line size. *)

val accesses : t -> int
(** Number of line-level cache lookups performed so far. *)

val misses : t -> int
(** Demand misses only (prefetch fills are not counted). *)

val prefetches : t -> int
(** Prefetch fills issued (0 unless enabled). *)

val useful_prefetches : t -> int
(** Prefetched lines that later served a demand access. *)

val usefulness : t -> float
(** Mean fraction of bytes consumed per evicted (or still-resident)
    fetched line, in [0,1]. [nan] before any fill. *)

val reset_stats : t -> unit
val storage_bits : t -> int
