(** Replacement policy for the set-associative {!Icache}.

    The cache owns the recency state (per-way LRU stamps bumped from a
    shared clock) because every policy here still consults it; the
    policy owns everything else about the replacement decision: victim
    selection, what to learn from a hit, whether a demand fill should
    be bypassed, and what to record about a freshly installed line.

    [Lru] is the extracted default — byte-identical to the historical
    hard-wired behavior (first invalid way, else lowest LRU stamp,
    ties to the lowest way index; no bypass, no learning).

    [Preuse] is a perceptron reuse/bypass predictor in the shape of
    Teran et al. (MICRO 2016): {!tables} hashed feature tables of
    {!table_entries} small signed saturating weights each, indexed by
    features over the line address and the recent fetch-line history.
    The summed prediction [yout] is compared against the bypass
    threshold {!tau} (predicted dead on arrival / dead in cache) and
    the training threshold {!theta} (stop updating once confidently
    correct). Training happens only in sampler sets
    ({!sampled_set}), which never bypass — so the predictor always
    has live reuse/eviction outcomes to learn from and cannot talk
    itself into bypassing everything. All state is flat [int] arrays
    so the fused sweep kernels keep their memory behavior. *)

type spec = Lru | Preuse

val all_specs : spec list

val spec_to_string : spec -> string
(** ["lru"] / ["preuse"] — the names used by experiment configs,
    cache keys and the CLI. *)

val spec_of_string : string -> spec option

(** {1 Perceptron parameters} *)

val tables : int
(** Feature tables (6). *)

val table_entries : int
(** Entries per table (256); feature hashes are taken modulo this. *)

val weight_min : int
val weight_max : int
(** 6-bit signed saturating weights: [-32 .. 31]. *)

val theta : int
(** Training threshold: a recorded prediction is reinforced only when
    it was wrong or its magnitude is at most [theta]. *)

val tau : int
(** Bypass / dead threshold: [yout >= tau] predicts no reuse. *)

val sampled_set : int -> bool
(** Sampler sets train the predictor and never bypass; the rest use
    its predictions. One set in four samples. *)

val feature : int -> line:int -> h1:int -> h2:int -> int
(** Table index of feature [j] (0 .. [tables]-1) for a fetch of line
    address [line] with recent-line history [h1] (most recent) and
    [h2]. Pure — the differential-test reference transliterates it. *)

(** {1 Per-cache policy state} *)

type t

val create : spec -> assoc:int -> ways:int -> t
(** [ways] = sets * assoc, the flat way count of the owning cache. *)

val spec : t -> spec

val storage_bits : t -> int
(** Hardware cost of the policy state (0 for [Lru]). *)

(** {1 Hooks}

    The owning cache calls these in a fixed order so that the naive
    reference implementation can replay the exact same weight-update
    sequence: on a demand hit, [on_hit] then [note_access]; on a
    demand miss, [prepare], then (unless bypassing) [victim] and
    [on_fill], then any next-line prefetch ([prepare] / [victim] /
    [on_fill] against the prefetched line, ignoring [prepare]'s
    bypass verdict), and finally [note_access] for the demand line. *)

val on_hit : t -> way:int -> set:int -> line:int -> unit
(** Demand hit on [way]: train the way's recorded prediction as
    "reused" (sampler sets only), then re-predict and re-record the
    way's state for the next round. *)

val prepare : t -> set:int -> line:int -> bool
(** An absent [line] is about to be filled into [set]: predict it once
    (the prediction is held until the next [on_fill] consumes it) and
    return [true] when a demand fill should be bypassed. Prefetch
    fills call this too but ignore the verdict. *)

val victim : t -> tags:int array -> lru:int array -> base:int -> int
(** Victim way in [base .. base+assoc-1]: first invalid way, else the
    policy's preference among valid ways ([Lru]: lowest LRU stamp;
    [Preuse]: lowest LRU stamp among predicted-dead ways when any,
    else lowest LRU stamp). *)

val on_fill : t -> way:int -> set:int -> evicted:bool -> unit
(** [way] was just filled with the line last passed to [prepare].
    When [evicted], the way held a valid line: train its recorded
    prediction as "not reused" (sampler sets only). Then install the
    prediction [prepare] computed. *)

val note_access : t -> line:int -> unit
(** End of a demand access (hit, miss or bypassed miss): push [line]
    into the recent-line history. Prefetch fills do not call this. *)
