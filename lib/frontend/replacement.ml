(* Replacement policy behind the flat-SoA {!Icache}. See the .mli for
   the contract; the hot-path discipline here matches the cache
   itself: flat int arrays, no per-access allocation, and the [Lru]
   case compiles down to the historical victim scan plus no-op
   hooks (the cache skips the hook calls entirely for [Lru]). *)

type spec = Lru | Preuse

let all_specs = [ Lru; Preuse ]

let spec_to_string = function Lru -> "lru" | Preuse -> "preuse"

let spec_of_string = function
  | "lru" -> Some Lru
  | "preuse" -> Some Preuse
  | _ -> None

(* Perceptron shape after Teran et al. (MICRO 2016): 6 hashed feature
   tables x 256 entries of 6-bit signed saturating weights, trained
   with unit steps against a training threshold, predictions compared
   against a bypass/dead threshold. *)
let tables = 6
let table_entries = 256
let weight_min = -32
let weight_max = 31
let theta = 68
let tau = 3

(* One set in four is a sampler set: it trains the predictor on real
   reuse/eviction outcomes and never bypasses. Without this carve-out
   the predictor can deadlock — bypassed lines are never resident, so
   nothing is ever evicted or reused and the weights freeze wherever
   they drifted. *)
let sampled_set set = set land 3 = 0

(* Feature hashes over the fetch-line address and the two most recent
   demand fetch lines. The line address is the PC stripped of its
   line offset, so "PC bits" and "line address bits" coincide at the
   granularity the cache sees. Kept deliberately simple (shifts and
   xors into 8 bits) — the differential-test reference transliterates
   these expressions verbatim. *)
let feature j ~line ~h1 ~h2 =
  (match j with
  | 0 -> line
  | 1 -> line lsr 4
  | 2 -> line lsr 8
  | 3 -> line lxor (line lsr 5)
  | 4 -> line lxor h1
  | _ -> (line lsr 2) lxor (h2 lsr 1))
  land (table_entries - 1)

type preuse = {
  wt : int array; (* tables * table_entries signed weights *)
  feat : int array; (* ways * tables: per-way recorded table indices *)
  youts : int array; (* ways: per-way recorded prediction sum *)
  pdead : Bytes.t; (* ways: '\001' = predicted dead at last touch *)
  mutable h1 : int; (* most recent demand fetch line *)
  mutable h2 : int; (* second most recent *)
  (* Scratch for the prediction computed by [prepare], consumed by
     the next [on_fill]; one fill is always in flight at a time. *)
  s_idx : int array; (* tables *)
  mutable s_yout : int;
}

type state = Lru_state | Preuse_state of preuse

type t = { sp : spec; assoc : int; state : state }

let create sp ~assoc ~ways =
  let state =
    match sp with
    | Lru -> Lru_state
    | Preuse ->
        Preuse_state
          { wt = Array.make (tables * table_entries) 0;
            feat = Array.make (ways * tables) 0;
            youts = Array.make ways 0;
            pdead = Bytes.make ways '\000';
            h1 = 0;
            h2 = 0;
            s_idx = Array.make tables 0;
            s_yout = 0 }
  in
  { sp; assoc; state }

let spec t = t.sp

let storage_bits t =
  match t.state with
  | Lru_state -> 0
  | Preuse_state p ->
      (* Weights at 6 bits, per-way metadata (recorded indices, a
         9-bit recorded sum, a dead bit), two history registers. *)
      (tables * table_entries * 6)
      + (Array.length p.youts * ((tables * 8) + 9 + 1))
      + (2 * 16)

let clamp w =
  if w < weight_min then weight_min
  else if w > weight_max then weight_max
  else w

(* Train the recorded prediction of [way] against the observed
   outcome. Perceptron rule: update only when the recorded prediction
   was wrong or not yet confident (|yout| <= theta); reuse pushes the
   touched weights down, death pushes them up. *)
let train p ~way ~reused =
  let yout = p.youts.(way) in
  let predicted_dead = yout >= tau in
  if predicted_dead = reused || abs yout <= theta then begin
    let base = way * tables in
    for j = 0 to tables - 1 do
      let k = (j * table_entries) + p.feat.(base + j) in
      let w = Array.unsafe_get p.wt k in
      Array.unsafe_set p.wt k (clamp (if reused then w - 1 else w + 1))
    done
  end

(* Predict [line] under the current history into the scratch slot. *)
let predict p ~line =
  let y = ref 0 in
  for j = 0 to tables - 1 do
    let ix = feature j ~line ~h1:p.h1 ~h2:p.h2 in
    p.s_idx.(j) <- ix;
    y := !y + Array.unsafe_get p.wt ((j * table_entries) + ix)
  done;
  p.s_yout <- !y

(* Install the scratch prediction as [way]'s recorded state. *)
let record p ~way =
  let base = way * tables in
  for j = 0 to tables - 1 do
    p.feat.(base + j) <- p.s_idx.(j)
  done;
  p.youts.(way) <- p.s_yout;
  Bytes.unsafe_set p.pdead way (if p.s_yout >= tau then '\001' else '\000')

let on_hit t ~way ~set ~line =
  match t.state with
  | Lru_state -> ()
  | Preuse_state p ->
      if sampled_set set then train p ~way ~reused:true;
      predict p ~line;
      record p ~way

let prepare t ~set ~line =
  match t.state with
  | Lru_state -> false
  | Preuse_state p ->
      predict p ~line;
      (not (sampled_set set)) && p.s_yout >= tau

(* The historical hard-wired scan, verbatim: first invalid way wins,
   else least-recently-used, ties keep the lowest way index. *)
let victim_lru ~tags ~lru ~base ~assoc =
  let best = ref base in
  for i = base + 1 to base + assoc - 1 do
    if Array.unsafe_get tags !best <> -1
       && (Array.unsafe_get tags i = -1
           || Array.unsafe_get lru i < Array.unsafe_get lru !best) then
      best := i
  done;
  !best

let victim t ~tags ~lru ~base =
  match t.state with
  | Lru_state -> victim_lru ~tags ~lru ~base ~assoc:t.assoc
  | Preuse_state p ->
      (* First invalid way; else the least-recently-used way among
         those predicted dead; else plain LRU. The first invalid way
         short-circuits the scan, matching [victim_lru]. *)
      let invalid = ref (-1) in
      let dead = ref (-1) in
      let lruv = ref (-1) in
      let i = ref base in
      let limit = base + t.assoc in
      while !invalid = -1 && !i < limit do
        let w = !i in
        (if Array.unsafe_get tags w = -1 then invalid := w
         else begin
           if !lruv = -1
              || Array.unsafe_get lru w < Array.unsafe_get lru !lruv
           then lruv := w;
           if Bytes.unsafe_get p.pdead w <> '\000'
              && (!dead = -1
                  || Array.unsafe_get lru w < Array.unsafe_get lru !dead)
           then dead := w
         end);
        incr i
      done;
      if !invalid <> -1 then !invalid
      else if !dead <> -1 then !dead
      else !lruv

let on_fill t ~way ~set ~evicted =
  match t.state with
  | Lru_state -> ()
  | Preuse_state p ->
      if evicted && sampled_set set then train p ~way ~reused:false;
      record p ~way

let note_access t ~line =
  match t.state with
  | Lru_state -> ()
  | Preuse_state p ->
      p.h2 <- p.h1;
      p.h1 <- line
