type way = {
  mutable tag : int; (* -1 invalid *)
  mutable lru : int;
  mutable touched : int; (* bitmask of consumed 4-byte granules *)
  mutable prefetched : bool; (* filled by the prefetcher, not yet used *)
}

type t = {
  size : int;
  line : int;
  assoc : int;
  sets : int;
  line_shift : int; (* log2 line: byte address -> line address *)
  set_shift : int; (* log2 sets: line address -> tag *)
  ways : way array array;
  granules : int;
  prefetch : bool;
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable prefetches : int;
  mutable useful_prefetches : int;
  mutable useful_sum : float; (* accumulated usefulness of evicted lines *)
  mutable filled : int; (* lines ever filled *)
  mutable cc_line : int; (* line of the most recent lookup; -1 = none *)
  mutable cc_way : way; (* its way — valid only while the tag matches *)
}

let create ?(next_line_prefetch = false) ~size_bytes ~line_bytes ~assoc () =
  let open Repro_util.Units in
  if not (is_power_of_two size_bytes && is_power_of_two line_bytes
          && is_power_of_two assoc) then
    invalid_arg "Icache.create: sizes must be powers of two";
  if line_bytes < 4 then invalid_arg "Icache.create: line too narrow";
  let lines = size_bytes / line_bytes in
  if assoc > lines then invalid_arg "Icache.create: assoc too high";
  let sets = lines / assoc in
  { size = size_bytes;
    line = line_bytes;
    assoc;
    sets;
    line_shift = Repro_util.Units.log2 line_bytes;
    set_shift = Repro_util.Units.log2 sets;
    ways =
      Array.init sets (fun _ ->
          Array.init assoc (fun _ ->
              { tag = -1; lru = 0; touched = 0; prefetched = false }));
    granules = line_bytes / 4;
    prefetch = next_line_prefetch;
    clock = 0;
    accesses = 0;
    misses = 0;
    prefetches = 0;
    useful_prefetches = 0;
    useful_sum = 0.0;
    filled = 0;
    cc_line = -1;
    cc_way = { tag = -1; lru = 0; touched = 0; prefetched = false } }

let size_bytes t = t.size
let line_bytes t = t.line
let assoc t = t.assoc

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let line_usefulness t way =
  float_of_int (popcount way.touched) /. float_of_int t.granules

let touch_clock t way =
  t.clock <- t.clock + 1;
  way.lru <- t.clock

let mark t way ~offset ~size =
  let g0 = offset / 4 and g1 = (offset + size - 1) / 4 in
  for g = g0 to min g1 (t.granules - 1) do
    way.touched <- way.touched lor (1 lsl g)
  done

(* Fill [line_addr] without counting a demand access; used by the
   next-line prefetcher. Does nothing if already resident. *)
let rec prefetch_line t line_addr =
  let set_idx = line_addr land (t.sets - 1) in
  let tag = line_addr lsr t.set_shift in
  let set = t.ways.(set_idx) in
  let rec find i =
    if i = t.assoc then None
    else if set.(i).tag = tag then Some set.(i)
    else find (i + 1)
  in
  match find 0 with
  | Some _ -> ()
  | None ->
      let victim = pick_victim t set in
      if victim.tag <> -1 then
        t.useful_sum <- t.useful_sum +. line_usefulness t victim;
      victim.tag <- tag;
      victim.touched <- 0;
      victim.prefetched <- true;
      t.filled <- t.filled + 1;
      t.prefetches <- t.prefetches + 1;
      touch_clock t victim

and pick_victim t set =
  let best = ref set.(0) in
  for i = 1 to t.assoc - 1 do
    if !best.tag <> -1 && (set.(i).tag = -1 || set.(i).lru < !best.lru) then
      best := set.(i)
  done;
  !best

let access_line t line_addr ~offset ~size =
  let set_idx = line_addr land (t.sets - 1) in
  let tag = line_addr lsr t.set_shift in
  let set = t.ways.(set_idx) in
  t.accesses <- t.accesses + 1;
  let rec find i =
    if i = t.assoc then None
    else if set.(i).tag = tag then Some set.(i)
    else find (i + 1)
  in
  match find 0 with
  | Some way ->
      if way.prefetched then begin
        way.prefetched <- false;
        t.useful_prefetches <- t.useful_prefetches + 1
      end;
      touch_clock t way;
      mark t way ~offset ~size;
      t.cc_line <- line_addr;
      t.cc_way <- way;
      true
  | None ->
      t.misses <- t.misses + 1;
      let victim = pick_victim t set in
      if victim.tag <> -1 then
        t.useful_sum <- t.useful_sum +. line_usefulness t victim;
      victim.tag <- tag;
      victim.touched <- 0;
      victim.prefetched <- false;
      t.filled <- t.filled + 1;
      touch_clock t victim;
      mark t victim ~offset ~size;
      t.cc_line <- line_addr;
      t.cc_way <- victim;
      if t.prefetch then prefetch_line t (line_addr + 1);
      false

let access t ~addr ~size =
  assert (size > 0);
  let first_line = addr lsr t.line_shift
  and last_line = (addr + size - 1) lsr t.line_shift in
  let hit = ref true in
  for line = first_line to last_line do
    let base = line lsl t.line_shift in
    let lo = max addr base in
    let hi = min (addr + size) (base + t.line) in
    let ok = access_line t line ~offset:(lo - base) ~size:(hi - lo) in
    if not ok then hit := false
  done;
  !hit

let consume t ~addr ~size =
  assert (size > 0);
  let first_line = addr lsr t.line_shift
  and last_line = (addr + size - 1) lsr t.line_shift in
  if first_line = last_line && first_line = t.cc_line
     && t.cc_way.tag = first_line lsr t.set_shift then
    (* Fast path: consuming from the line the last lookup resolved, and
       its way still holds that tag (tags are unique within a set). *)
    mark t t.cc_way ~offset:(addr land (t.line - 1)) ~size
  else
    for line = first_line to last_line do
      let set_idx = line land (t.sets - 1) in
      let tag = line lsr t.set_shift in
      let set = t.ways.(set_idx) in
      let base = line lsl t.line_shift in
      let lo = max addr base in
      let hi = min (addr + size) (base + t.line) in
      Array.iter
        (fun way ->
          if way.tag = tag then mark t way ~offset:(lo - base) ~size:(hi - lo))
        set
    done

let accesses t = t.accesses
let misses t = t.misses

let usefulness t =
  (* Evicted lines plus a snapshot of currently-resident ones. *)
  let sum = ref t.useful_sum in
  let resident_sum = ref 0.0 and resident_n = ref 0 in
  Array.iter
    (Array.iter (fun way ->
         if way.tag <> -1 then begin
           resident_sum := !resident_sum +. line_usefulness t way;
           incr resident_n
         end))
    t.ways;
  let evicted_n = t.filled - !resident_n in
  let total_n = evicted_n + !resident_n in
  if total_n = 0 then nan
  else (!sum +. !resident_sum) /. float_of_int total_n

let prefetches t = t.prefetches
let useful_prefetches t = t.useful_prefetches

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0;
  t.prefetches <- 0;
  t.useful_prefetches <- 0;
  t.useful_sum <- 0.0;
  t.filled <- 0

let storage_bits t =
  let tag_bits = 48 - Repro_util.Units.log2 t.line - Repro_util.Units.log2 t.sets in
  (t.sets * t.assoc * (tag_bits + 1 + Repro_util.Units.log2 (max 2 t.assoc)))
  + (t.size * 8)
