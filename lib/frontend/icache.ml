(* Way state lives in flat structure-of-arrays storage, indexed by
   [set * assoc + way]: the simulators hit [access] tens of millions
   of times per sweep, and chasing a per-way record through two array
   indirections dominated the fused-kernel profile. [tags.(i) = -1]
   marks an invalid way. *)
type t = {
  size : int;
  line : int;
  assoc : int;
  sets : int;
  line_shift : int; (* log2 line: byte address -> line address *)
  set_shift : int; (* log2 sets: line address -> tag *)
  tags : int array; (* sets * assoc; -1 invalid *)
  lru : int array;
  touched : int array; (* bitmask of consumed 4-byte granules *)
  prefetched : Bytes.t; (* '\001' = filled by the prefetcher *)
  granules : int;
  prefetch : bool;
  policy : Replacement.t;
  preuse : bool; (* policy <> Lru: guards the hot-path hook calls *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable prefetches : int;
  mutable useful_prefetches : int;
  mutable useful_sum : float; (* accumulated usefulness of evicted lines *)
  mutable filled : int; (* lines ever filled *)
  mutable cc_line : int; (* line of the most recent lookup; -1 = none *)
  mutable cc_idx : int; (* its flat way index — valid only while the tag matches *)
}

let create ?(next_line_prefetch = false) ?(policy = Replacement.Lru)
    ~size_bytes ~line_bytes ~assoc () =
  let open Repro_util.Units in
  if not (is_power_of_two size_bytes && is_power_of_two line_bytes
          && is_power_of_two assoc) then
    invalid_arg "Icache.create: sizes must be powers of two";
  if line_bytes < 4 then invalid_arg "Icache.create: line too narrow";
  let lines = size_bytes / line_bytes in
  if assoc > lines then invalid_arg "Icache.create: assoc too high";
  let sets = lines / assoc in
  { size = size_bytes;
    line = line_bytes;
    assoc;
    sets;
    line_shift = Repro_util.Units.log2 line_bytes;
    set_shift = Repro_util.Units.log2 sets;
    tags = Array.make lines (-1);
    lru = Array.make lines 0;
    touched = Array.make lines 0;
    prefetched = Bytes.make lines '\000';
    granules = line_bytes / 4;
    prefetch = next_line_prefetch;
    policy = Replacement.create policy ~assoc ~ways:lines;
    preuse = policy <> Replacement.Lru;
    clock = 0;
    accesses = 0;
    misses = 0;
    prefetches = 0;
    useful_prefetches = 0;
    useful_sum = 0.0;
    filled = 0;
    cc_line = -1;
    cc_idx = -1 }

let size_bytes t = t.size
let line_bytes t = t.line
let assoc t = t.assoc
let policy t = Replacement.spec t.policy

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let way_usefulness t i =
  float_of_int (popcount t.touched.(i)) /. float_of_int t.granules

(* Granule bitmask of [size] bytes at [offset] within a line; the
   clamp mirrors the historical per-granule loop's upper bound. *)
let gmask_of t ~offset ~size =
  let g0 = offset / 4 and g1 = min ((offset + size - 1) / 4) (t.granules - 1) in
  ((1 lsl (g1 - g0 + 1)) - 1) lsl g0

(* Victim selection is the policy's call ({!Replacement.victim}):
   first invalid way wins for every policy, then LRU picks the lowest
   stamp (ties keep the lowest way index) and Preuse prefers
   predicted-dead ways. *)
let pick_victim t base = Replacement.victim t.policy ~tags:t.tags ~lru:t.lru ~base

let rec find_way t base tag i =
  if i = t.assoc then -1
  else if Array.unsafe_get t.tags (base + i) = tag then base + i
  else find_way t base tag (i + 1)

(* Fill [line_addr] without counting a demand access; used by the
   next-line prefetcher. Does nothing if already resident. *)
let prefetch_line t line_addr =
  let set = line_addr land (t.sets - 1) in
  let base = set * t.assoc in
  let tag = line_addr lsr t.set_shift in
  if find_way t base tag 0 = -1 then begin
    (* Prefetch fills predict and record like demand fills but never
       bypass, and do not enter the demand-line history. *)
    if t.preuse then ignore (Replacement.prepare t.policy ~set ~line:line_addr);
    let victim = pick_victim t base in
    let evicted = t.tags.(victim) <> -1 in
    if evicted then t.useful_sum <- t.useful_sum +. way_usefulness t victim;
    t.tags.(victim) <- tag;
    t.touched.(victim) <- 0;
    Bytes.unsafe_set t.prefetched victim '\001';
    t.filled <- t.filled + 1;
    t.prefetches <- t.prefetches + 1;
    t.clock <- t.clock + 1;
    t.lru.(victim) <- t.clock;
    if t.preuse then Replacement.on_fill t.policy ~way:victim ~set ~evicted
  end

let rec access_line t ~line ~gmask =
  if line = t.cc_line
     && Array.unsafe_get t.tags t.cc_idx = line lsr t.set_shift then begin
    (* Re-accessing the line of the most recent lookup, whose way
       still holds the tag: nothing but consumes can have run since
       (any access moves [cc]; prefetches only fire inside one), so
       the way is resident with its prefetched flag already cleared —
       skip the way search. *)
    t.accesses <- t.accesses + 1;
    t.clock <- t.clock + 1;
    Array.unsafe_set t.lru t.cc_idx t.clock;
    Array.unsafe_set t.touched t.cc_idx
      (Array.unsafe_get t.touched t.cc_idx lor gmask);
    if t.preuse then begin
      Replacement.on_hit t.policy ~way:t.cc_idx ~set:(line land (t.sets - 1))
        ~line;
      Replacement.note_access t.policy ~line
    end;
    true
  end
  else access_line_slow t ~line ~gmask

and access_line_slow t ~line ~gmask =
  let set = line land (t.sets - 1) in
  let base = set * t.assoc in
  let tag = line lsr t.set_shift in
  t.accesses <- t.accesses + 1;
  let i = find_way t base tag 0 in
  if i >= 0 then begin
    if Bytes.unsafe_get t.prefetched i <> '\000' then begin
      Bytes.unsafe_set t.prefetched i '\000';
      t.useful_prefetches <- t.useful_prefetches + 1
    end;
    t.clock <- t.clock + 1;
    Array.unsafe_set t.lru i t.clock;
    Array.unsafe_set t.touched i (Array.unsafe_get t.touched i lor gmask);
    t.cc_line <- line;
    t.cc_idx <- i;
    if t.preuse then begin
      Replacement.on_hit t.policy ~way:i ~set ~line;
      Replacement.note_access t.policy ~line
    end;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    if t.preuse && Replacement.prepare t.policy ~set ~line then begin
      (* Bypassed demand fill: the line stays absent, so the current-
         line fast path must not claim it. The next-line prefetcher
         still sees the miss. *)
      t.cc_line <- -1;
      if t.prefetch then prefetch_line t (line + 1);
      Replacement.note_access t.policy ~line;
      false
    end
    else begin
      let victim = pick_victim t base in
      let evicted = Array.unsafe_get t.tags victim <> -1 in
      if evicted then t.useful_sum <- t.useful_sum +. way_usefulness t victim;
      Array.unsafe_set t.tags victim tag;
      Array.unsafe_set t.touched victim gmask;
      Bytes.unsafe_set t.prefetched victim '\000';
      t.filled <- t.filled + 1;
      t.clock <- t.clock + 1;
      Array.unsafe_set t.lru victim t.clock;
      t.cc_line <- line;
      t.cc_idx <- victim;
      if t.preuse then Replacement.on_fill t.policy ~way:victim ~set ~evicted;
      if t.prefetch then prefetch_line t (line + 1);
      if t.preuse then Replacement.note_access t.policy ~line;
      false
    end
  end

let access t ~addr ~size =
  assert (size > 0);
  let first_line = addr lsr t.line_shift
  and last_line = (addr + size - 1) lsr t.line_shift in
  if first_line = last_line then
    access_line t ~line:first_line
      ~gmask:(gmask_of t ~offset:(addr land (t.line - 1)) ~size)
  else begin
    let hit = ref true in
    for line = first_line to last_line do
      let base = line lsl t.line_shift in
      let lo = max addr base in
      let hi = min (addr + size) (base + t.line) in
      let gmask = gmask_of t ~offset:(lo - base) ~size:(hi - lo) in
      if not (access_line t ~line ~gmask) then hit := false
    done;
    !hit
  end

(* One-line consume with the granule mask precomputed by the caller:
   the [consume] fast path minus the per-cache offset arithmetic.
   Fused sweeps compute the mask once per line size and replay it
   into every same-line-size configuration. *)
let consume_line t ~line ~gmask =
  if line = t.cc_line && Array.unsafe_get t.tags t.cc_idx = line lsr t.set_shift
  then
    Array.unsafe_set t.touched t.cc_idx
      (Array.unsafe_get t.touched t.cc_idx lor gmask)
  else begin
    let base = (line land (t.sets - 1)) * t.assoc in
    let tag = line lsr t.set_shift in
    for i = base to base + t.assoc - 1 do
      if Array.unsafe_get t.tags i = tag then
        Array.unsafe_set t.touched i (Array.unsafe_get t.touched i lor gmask)
    done
  end

let consume t ~addr ~size =
  assert (size > 0);
  let first_line = addr lsr t.line_shift
  and last_line = (addr + size - 1) lsr t.line_shift in
  if first_line = last_line then
    consume_line t ~line:first_line
      ~gmask:(gmask_of t ~offset:(addr land (t.line - 1)) ~size)
  else
    for line = first_line to last_line do
      let base = line lsl t.line_shift in
      let lo = max addr base in
      let hi = min (addr + size) (base + t.line) in
      consume_line t ~line
        ~gmask:(gmask_of t ~offset:(lo - base) ~size:(hi - lo))
    done

let accesses t = t.accesses
let misses t = t.misses

let usefulness t =
  (* Evicted lines plus a snapshot of currently-resident ones. *)
  let sum = ref t.useful_sum in
  let resident_sum = ref 0.0 and resident_n = ref 0 in
  Array.iteri
    (fun i tag ->
      if tag <> -1 then begin
        resident_sum := !resident_sum +. way_usefulness t i;
        incr resident_n
      end)
    t.tags;
  let evicted_n = t.filled - !resident_n in
  let total_n = evicted_n + !resident_n in
  if total_n = 0 then nan
  else (!sum +. !resident_sum) /. float_of_int total_n

let prefetches t = t.prefetches
let useful_prefetches t = t.useful_prefetches

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0;
  t.prefetches <- 0;
  t.useful_prefetches <- 0;
  t.useful_sum <- 0.0;
  t.filled <- 0

let storage_bits t =
  let tag_bits = 48 - Repro_util.Units.log2 t.line - Repro_util.Units.log2 t.sets in
  (t.sets * t.assoc * (tag_bits + 1 + Repro_util.Units.log2 (max 2 t.assoc)))
  + (t.size * 8)
  + Replacement.storage_bits t.policy
