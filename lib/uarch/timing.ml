module A = Repro_analysis

type rates = { bp_mpki : float; btb_mpki : float; icache_mpki : float }

type measurement = {
  serial : rates;
  parallel : rates;
  total : rates;
  serial_insts : int;
  parallel_insts : int;
}

let zero_if_nan x = if Float.is_nan x then 0.0 else x

let measure_many cfgs trace =
  let sims =
    List.map
      (fun (cfg : Frontend_config.t) ->
        let bp = A.Bp_sim.create (Frontend_config.make_bp cfg) in
        let btb =
          A.Btb_sim.create ~entries:cfg.btb_entries ~assoc:cfg.btb_assoc
        in
        let ic =
          A.Icache_sim.create ~policy:cfg.icache_repl
            ~size_bytes:cfg.icache_bytes ~line_bytes:cfg.icache_line
            ~assoc:cfg.icache_assoc ()
        in
        (bp, btb, ic))
      cfgs
  in
  let observers =
    List.concat_map
      (fun (bp, btb, ic) ->
        [ A.Bp_sim.observer bp; A.Btb_sim.observer btb;
          A.Icache_sim.observer ic ])
      sims
  in
  A.Tool.run_all trace observers;
  List.map
    (fun (bp, btb, ic) ->
      let rates scope =
        { bp_mpki = zero_if_nan (A.Bp_sim.mpki bp scope);
          btb_mpki = zero_if_nan (A.Btb_sim.mpki btb scope);
          icache_mpki = zero_if_nan (A.Icache_sim.mpki ic scope) }
      in
      let serial_scope = A.Branch_mix.Only Repro_isa.Section.Serial in
      let parallel_scope = A.Branch_mix.Only Repro_isa.Section.Parallel in
      { serial = rates serial_scope;
        parallel = rates parallel_scope;
        total = rates A.Branch_mix.Total;
        serial_insts = A.Bp_sim.insts bp serial_scope;
        parallel_insts = A.Bp_sim.insts bp parallel_scope })
    sims

let measure cfg trace =
  match measure_many [ cfg ] trace with
  | [ m ] -> m
  | _ -> assert false

let base_cpi = 0.62
let bp_penalty = 12.0
let btb_penalty = 7.0
let icache_penalty = 16.0

let cpi ~data_stall rates =
  base_cpi +. data_stall
  +. (rates.bp_mpki /. 1000.0 *. bp_penalty)
  +. (rates.btb_mpki /. 1000.0 *. btb_penalty)
  +. (rates.icache_mpki /. 1000.0 *. icache_penalty)
