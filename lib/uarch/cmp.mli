(** Chip-multiprocessor evaluation (paper Section V, Figs. 10 and 11).

    A CMP is a master core plus worker cores. HPC benchmarks run one
    thread per core (the master executes the serial sections and its
    share of the parallel sections); SPEC INT runs sequentially on
    the master. Execution time, average power, energy, energy-delay
    and area are derived from the {!Timing} model, the
    {!Mcpat} budgets, and the benchmark's scaling hints. *)

type config = {
  cname : string;
  master : Frontend_config.t;
  workers : Frontend_config.t;
  n_workers : int;
}

val baseline_cmp : config
(** 8 baseline cores ("Baseline CMP (8B)"). *)

val tailored_cmp : config
(** 8 tailored cores. *)

val asymmetric_cmp : config
(** 1 baseline + 7 tailored. *)

val asymmetric_plus_cmp : config
(** 1 baseline + 8 tailored — same area budget as {!baseline_cmp}. *)

val standard_configs : config list
(** The four Fig. 10 configurations, in the paper's order. *)

val tailored_preuse_cmp : config
(** 8 tailored cores with perceptron reuse/bypass I-caches. *)

val asymmetric_plus_preuse_cmp : config
(** 1 baseline + 8 tailored-preuse cores. *)

val learned_configs : config list
(** The fig10p configurations: baseline and tailored references plus
    the two learned-replacement arrangements. *)

type eval = {
  time : float;  (** seconds (at the model's 2GHz clock) *)
  power : float;  (** time-averaged watts, cores + private L2s *)
  energy : float;  (** joules *)
  ed : float;  (** energy-delay product *)
  area : float;  (** mm^2, cores + private L2s *)
}

val n_cores : config -> int
val area_mm2 : config -> float

val evaluate : ?insts:int -> config -> Repro_workload.Profile.t -> eval
(** Generate the benchmark, measure both core types' front-end rates
    in one trace pass, and evaluate the CMP. The measured thread-0
    parallel instruction count is multiplied by the thread count
    (8) to recover total parallel work. *)

val evaluate_many :
  ?insts:int -> config list -> Repro_workload.Profile.t -> eval list
(** All configurations against one benchmark, sharing the trace pass
    (the per-core-type measurements are reused across configs). *)

val relative : eval -> baseline:eval -> eval
(** Field-wise ratio to a baseline evaluation. *)
