type config = {
  cname : string;
  master : Frontend_config.t;
  workers : Frontend_config.t;
  n_workers : int;
}

let baseline_cmp =
  { cname = "Baseline CMP (8B)";
    master = Frontend_config.baseline;
    workers = Frontend_config.baseline;
    n_workers = 7 }

let tailored_cmp =
  { cname = "Tailored CMP (8T)";
    master = Frontend_config.tailored;
    workers = Frontend_config.tailored;
    n_workers = 7 }

let asymmetric_cmp =
  { cname = "Asymmetric CMP (1B+7T)";
    master = Frontend_config.baseline;
    workers = Frontend_config.tailored;
    n_workers = 7 }

let asymmetric_plus_cmp =
  { cname = "Asymmetric++ CMP (1B+8T)";
    master = Frontend_config.baseline;
    workers = Frontend_config.tailored;
    n_workers = 8 }

let standard_configs =
  [ baseline_cmp; tailored_cmp; asymmetric_cmp; asymmetric_plus_cmp ]

(* Fig 10p: the learned-replacement counterparts — the tailored core
   with perceptron reuse/bypass in the I-cache, alone and in the
   area-neutral asymmetric++ arrangement, against the two standard
   reference points. *)
let tailored_preuse_cmp =
  { cname = "Tailored-P CMP (8TP)";
    master = Frontend_config.tailored_preuse;
    workers = Frontend_config.tailored_preuse;
    n_workers = 7 }

let asymmetric_plus_preuse_cmp =
  { cname = "Asymmetric++-P CMP (1B+8TP)";
    master = Frontend_config.baseline;
    workers = Frontend_config.tailored_preuse;
    n_workers = 8 }

let learned_configs =
  [ baseline_cmp; tailored_cmp; tailored_preuse_cmp;
    asymmetric_plus_preuse_cmp ]

type eval = {
  time : float;
  power : float;
  energy : float;
  ed : float;
  area : float;
}

let n_cores c = c.n_workers + 1
let threads = 8 (* the paper runs 8 threads / processes *)
let clock_hz = 2.0e9

let area_mm2 c =
  Mcpat.core_area_mm2 c.master
  +. (float_of_int c.n_workers *. Mcpat.core_area_mm2 c.workers)
  +. (float_of_int (n_cores c) *. Mcpat.l2_area_mm2)

(* Evaluate one CMP from per-core-type measurements of the same
   benchmark trace. *)
let eval_from_measurements c (p : Repro_workload.Profile.t)
    (m_master : Timing.measurement) (m_workers : Timing.measurement) =
  let stall = p.perf.data_stall_cpi in
  let serial_insts = float_of_int m_master.Timing.serial_insts in
  (* Thread 0's parallel instructions scaled to all threads. *)
  let parallel_work =
    float_of_int m_master.Timing.parallel_insts *. float_of_int threads
  in
  let cpi_serial = Timing.cpi ~data_stall:stall m_master.Timing.serial in
  let cpi_par_master = Timing.cpi ~data_stall:stall m_master.Timing.parallel in
  let cpi_par_worker = Timing.cpi ~data_stall:stall m_workers.Timing.parallel in
  (* The master joins the parallel regions; with static work division
     the slowest participant bounds the region. *)
  let n_par = float_of_int (n_cores c) in
  let cpi_par = Float.max cpi_par_master cpi_par_worker in
  let eff_cores = n_par ** p.perf.scale_alpha in
  let serial_cycles = serial_insts *. cpi_serial in
  let par_cycles =
    if parallel_work = 0.0 then 0.0
    else parallel_work *. cpi_par /. eff_cores
  in
  let t_serial = serial_cycles /. clock_hz in
  let t_par = par_cycles /. clock_hz in
  let time = t_serial +. t_par in
  (* Power: full power while a core computes, leakage while it idles;
     private L2 slices are always on. *)
  let p_master = Mcpat.core_power_w c.master in
  let p_worker = Mcpat.core_power_w c.workers in
  let static = Mcpat.static_power_fraction in
  let idle p = static *. p in
  let l2 = float_of_int (n_cores c) *. Mcpat.l2_power_w in
  let e_serial =
    t_serial
    *. (p_master +. (float_of_int c.n_workers *. idle p_worker) +. l2)
  in
  (* During parallel sections every core is busy; imperfect scaling
     shows up as partially-idle dynamic power. *)
  let busy_frac = eff_cores /. n_par in
  let busy p = (static *. p) +. ((1.0 -. static) *. p *. busy_frac) in
  let e_par =
    t_par
    *. (busy p_master +. (float_of_int c.n_workers *. busy p_worker) +. l2)
  in
  let energy = e_serial +. e_par in
  let power = if time > 0.0 then energy /. time else 0.0 in
  { time; power; energy; ed = energy *. time; area = area_mm2 c }

let evaluate_many ?insts configs p =
  let executor = Repro_workload.Executor.create ?insts p in
  let trace = Repro_workload.Executor.trace executor in
  (* One trace pass measures every distinct core type the configs
     use; per-core measurements are independent, so sharing the pass
     never changes any of them. *)
  let distinct =
    List.fold_left
      (fun acc (c : config) ->
        let add acc cfg = if List.mem cfg acc then acc else acc @ [ cfg ] in
        add (add acc c.master) c.workers)
      [] configs
  in
  let measurements = List.combine distinct (Timing.measure_many distinct trace) in
  let m_of cfg = List.assoc cfg measurements in
  List.map (fun c -> eval_from_measurements c p (m_of c.master) (m_of c.workers))
    configs

let evaluate ?insts config p =
  match evaluate_many ?insts [ config ] p with
  | [ e ] -> e
  | _ -> assert false

let relative e ~baseline =
  { time = e.time /. baseline.time;
    power = e.power /. baseline.power;
    energy = e.energy /. baseline.energy;
    ed = e.ed /. baseline.ed;
    area = e.area /. baseline.area }
