(* Anchors are the paper's Table III values (Cortex-A9 class, 40nm):

     baseline:  I$ 32KB/64B  0.31 mm2 / 0.075 W
                BP 16KB      0.14 mm2 / 0.032 W
                BTB 2K       0.125 mm2 / 0.017 W
                core total   2.49 mm2 / 0.85 W
     tailored:  I$ 16KB/128B 0.14 mm2 / 0.049 W
                BP 2.5KB+LBP 0.04 mm2 / 0.011 W
                BTB 256      0.022 mm2 / 0.002 W

   Rest-of-core is the fixed remainder of the baseline totals. *)

type budget = {
  icache_mm2 : float;
  bp_mm2 : float;
  btb_mm2 : float;
  rest_mm2 : float;
  icache_w : float;
  bp_w : float;
  btb_w : float;
  rest_w : float;
}

let icache_bits cfg =
  float_of_int
    (Repro_frontend.Icache.storage_bits
       (Repro_frontend.Icache.create
          ~policy:cfg.Frontend_config.icache_repl
          ~size_bytes:cfg.Frontend_config.icache_bytes
          ~line_bytes:cfg.Frontend_config.icache_line
          ~assoc:cfg.Frontend_config.icache_assoc ()))

let btb_bits cfg =
  float_of_int
    (Repro_frontend.Btb.storage_bits
       (Repro_frontend.Btb.create
          ~entries:cfg.Frontend_config.btb_entries
          ~assoc:cfg.Frontend_config.btb_assoc))

let bp_bits cfg = float_of_int (Frontend_config.bp_bits cfg)

(* Anchor abscissae measured from the two named configurations, so
   the fits return the published values exactly for them. *)
let base_cfg = Frontend_config.baseline
let tail_cfg = Frontend_config.tailored

let icache_area_fit =
  Cacti.powerlaw_fit (icache_bits base_cfg, 0.31) (icache_bits tail_cfg, 0.14)

let icache_power_fit =
  Cacti.powerlaw_fit (icache_bits base_cfg, 0.075) (icache_bits tail_cfg, 0.049)

let bp_area_fit =
  Cacti.powerlaw_fit (bp_bits base_cfg, 0.14) (bp_bits tail_cfg, 0.04)

let bp_power_fit =
  Cacti.powerlaw_fit (bp_bits base_cfg, 0.032) (bp_bits tail_cfg, 0.011)

let btb_area_fit =
  Cacti.powerlaw_fit (btb_bits base_cfg, 0.125) (btb_bits tail_cfg, 0.022)

let btb_power_fit =
  Cacti.powerlaw_fit (btb_bits base_cfg, 0.017) (btb_bits tail_cfg, 0.002)

let rest_mm2 = 2.49 -. (0.31 +. 0.14 +. 0.125)
let rest_w = 0.85 -. (0.075 +. 0.032 +. 0.017)

let budget cfg =
  { icache_mm2 = Cacti.eval icache_area_fit (icache_bits cfg);
    bp_mm2 = Cacti.eval bp_area_fit (bp_bits cfg);
    btb_mm2 = Cacti.eval btb_area_fit (btb_bits cfg);
    rest_mm2;
    icache_w = Cacti.eval icache_power_fit (icache_bits cfg);
    bp_w = Cacti.eval bp_power_fit (bp_bits cfg);
    btb_w = Cacti.eval btb_power_fit (btb_bits cfg);
    rest_w }

let core_area_mm2 cfg =
  let b = budget cfg in
  b.icache_mm2 +. b.bp_mm2 +. b.btb_mm2 +. b.rest_mm2

let core_power_w cfg =
  let b = budget cfg in
  b.icache_w +. b.bp_w +. b.btb_w +. b.rest_w

let static_power_fraction = 0.35
let l2_power_w = 0.14
let l2_area_mm2 = 1.1

let area_saving_vs_baseline cfg =
  1.0 -. (core_area_mm2 cfg /. core_area_mm2 Frontend_config.baseline)

let power_saving_vs_baseline cfg =
  1.0 -. (core_power_w cfg /. core_power_w Frontend_config.baseline)
