type bp_kind =
  | Gshare of { history_bits : int }
  | Tournament of { addr_bits : int; history_bits : int }
  | Tage_small
  | Tage_big

type t = {
  icache_bytes : int;
  icache_line : int;
  icache_assoc : int;
  icache_repl : Repro_frontend.Replacement.spec;
  bp : bp_kind;
  bp_loop : bool;
  btb_entries : int;
  btb_assoc : int;
}

let baseline =
  { icache_bytes = 32 * 1024;
    icache_line = 64;
    icache_assoc = 4;
    icache_repl = Repro_frontend.Replacement.Lru;
    bp = Tournament { addr_bits = 12; history_bits = 14 };
    bp_loop = false;
    btb_entries = 2048;
    btb_assoc = 4 }

let tailored =
  { icache_bytes = 16 * 1024;
    icache_line = 128;
    icache_assoc = 8;
    icache_repl = Repro_frontend.Replacement.Lru;
    bp = Tournament { addr_bits = 10; history_bits = 8 };
    bp_loop = true;
    btb_entries = 256;
    btb_assoc = 8 }

(* The tailored core with learned I-cache replacement: same geometry,
   perceptron reuse/bypass instead of LRU — the fig10p design point
   probing whether the learned policy buys back the capacity the
   tailored core gave up. *)
let tailored_preuse =
  { tailored with icache_repl = Repro_frontend.Replacement.Preuse }

let base_bp t =
  match t.bp with
  | Gshare { history_bits } ->
      Repro_frontend.Gshare.pack
        ~name:(Printf.sprintf "gshare-%d" history_bits)
        (Repro_frontend.Gshare.create ~history_bits)
  | Tournament { addr_bits; history_bits } ->
      Repro_frontend.Tournament.pack
        ~name:(Printf.sprintf "tournament-%d-%d" addr_bits history_bits)
        (Repro_frontend.Tournament.create ~addr_bits ~history_bits)
  | Tage_small -> Repro_frontend.Zoo.tage_small ()
  | Tage_big -> Repro_frontend.Zoo.tage_big ()

let make_bp t =
  let bp = base_bp t in
  if t.bp_loop then Repro_frontend.Zoo.with_loop bp else bp

let bp_bits t = (make_bp t).Repro_frontend.Predictor.storage_bits

let name t =
  Printf.sprintf "%s-I$/%dB%s %s%s BTB%d/%dw"
    (Repro_util.Units.pp_bytes t.icache_bytes)
    t.icache_line
    (match t.icache_repl with
    | Repro_frontend.Replacement.Lru -> ""
    | p -> "+" ^ Repro_frontend.Replacement.spec_to_string p)
    (match t.bp with
    | Gshare { history_bits } -> Printf.sprintf "gshare%d" history_bits
    | Tournament { addr_bits; history_bits } ->
        Printf.sprintf "tour%d.%d" addr_bits history_bits
    | Tage_small -> "tage-s"
    | Tage_big -> "tage-b")
    (if t.bp_loop then "+LBP" else "")
    t.btb_entries t.btb_assoc

let pp fmt t = Format.pp_print_string fmt (name t)
