(** Front-end structure configurations: the tuple the paper sweeps —
    I-cache geometry, branch predictor, and BTB geometry — plus the
    two named design points of Section V. *)

type bp_kind =
  | Gshare of { history_bits : int }
  | Tournament of { addr_bits : int; history_bits : int }
  | Tage_small
  | Tage_big

type t = {
  icache_bytes : int;
  icache_line : int;
  icache_assoc : int;
  icache_repl : Repro_frontend.Replacement.spec;
      (** I-cache replacement policy ([Lru] for both paper cores). *)
  bp : bp_kind;
  bp_loop : bool;  (** attach the 64-entry loop predictor *)
  btb_entries : int;
  btb_assoc : int;
}

val baseline : t
(** The paper's baseline lean core: 32KB/64B-line 4-way I-cache, 16KB
    tournament predictor, 2K-entry 4-way BTB. *)

val tailored : t
(** The paper's HPC-tailored core: 16KB/128B-line 8-way I-cache, 2KB
    tournament predictor + loop BP, 256-entry 8-way BTB. *)

val tailored_preuse : t
(** {!tailored} with perceptron reuse/bypass I-cache replacement
    instead of LRU (the fig10p design point). *)

val make_bp : t -> Repro_frontend.Predictor.t
(** Fresh predictor instance for this configuration. *)

val bp_bits : t -> int
(** Hardware budget of the predictor (incl. loop predictor). *)

val name : t -> string
val pp : Format.formatter -> t -> unit
