exception Injected of string

let sites =
  [ "engine.task"; "trace.capture"; "cache.read"; "cache.decode";
    "cache.write"; "cache.write.torn"; "journal.append"; "journal.torn" ]

type rule = { rsite : string (* a member of [sites], or "all" *);
              prob : float; seed : int }

let active_ref = ref false
let rules : rule list ref = ref []
let spec_ref : string option ref = ref None

(* One shared draw counter: each draw consumes a fresh tick, so
   repeated probes at the same site see independent outcomes (a
   retried task re-draws its fault). *)
let draws = Atomic.make 0
let injected_total = Atomic.make 0

let injected () = Atomic.get injected_total
let active () = !active_ref
let spec () = !spec_ref

(* Per-entry diagnostics share the process-wide warn-once registry in
   {!Env}, so a daemon that reloads the same malformed spec many
   times still warns exactly once. *)
let warn_once entry fmt =
  Printf.ksprintf
    (fun msg ->
      Env.warn_once ("REPRO_FAULTS:" ^ entry)
        (Printf.sprintf
           "frontend-repro: ignoring invalid REPRO_FAULTS entry %S (%s); \
            format is site:prob:seed with site one of all %s, prob a float \
            clamped to 0..1, seed an integer"
           entry msg
           (String.concat " " sites)))
    fmt

let parse_entry entry =
  match String.split_on_char ':' entry with
  | [ site; prob; seed ] -> (
      let site = String.trim site in
      let known = site = "all" || List.mem site sites in
      match (float_of_string_opt prob, int_of_string_opt seed) with
      | _ when not known ->
          warn_once entry "unknown site %S" site;
          None
      | Some p, Some s ->
          let clamped = Float.max 0.0 (Float.min 1.0 p) in
          if clamped <> p then
            warn_once entry "probability %g clamped to %g" p clamped;
          Some { rsite = site; prob = clamped; seed = s }
      | None, _ ->
          warn_once entry "bad probability %S" prob;
          None
      | _, None ->
          warn_once entry "bad seed %S" seed;
          None)
  | _ ->
      warn_once entry "want exactly three ':'-separated fields";
      None

let configure s =
  (* The tick restarts with the configuration, so two identically
     configured runs in one process draw the same fault sequence. *)
  Atomic.set draws 0;
  match s with
  | None | Some "" ->
      rules := [];
      active_ref := false;
      spec_ref := None
  | Some spec ->
      let parsed =
        List.filter_map
          (fun e ->
            let e = String.trim e in
            if e = "" then None else parse_entry e)
          (String.split_on_char ',' spec)
      in
      rules := parsed;
      active_ref := parsed <> [];
      spec_ref :=
        if parsed = [] then None
        else
          Some
            (String.concat ","
               (List.map
                  (fun r -> Printf.sprintf "%s:%g:%d" r.rsite r.prob r.seed)
                  parsed))

let refresh_from_env () = configure (Sys.getenv_opt "REPRO_FAULTS")
let () = refresh_from_env ()

(* Deterministic uniform draw: the first 48 bits of an MD5 over
   (seed, site, tick). Digest on the hot path is acceptable — the
   path only exists in fault-torture runs. *)
let draw_fires r site =
  if r.prob <= 0.0 then false
  else if r.prob >= 1.0 then true
  else begin
    let n = Atomic.fetch_and_add draws 1 in
    let d = Digest.string (Printf.sprintf "%d\x00%s\x00%d" r.seed site n) in
    let u =
      Char.code d.[0]
      lor (Char.code d.[1] lsl 8)
      lor (Char.code d.[2] lsl 16)
      lor (Char.code d.[3] lsl 24)
      lor (Char.code d.[4] lsl 32)
      lor (Char.code d.[5] lsl 40)
    in
    float_of_int u < r.prob *. 281474976710656.0 (* 2^48 *)
  end

let fires site =
  !active_ref
  && List.exists
       (fun r ->
         (r.rsite = "all" || String.equal r.rsite site)
         && draw_fires r site)
       !rules
  && begin
       Atomic.incr injected_total;
       Telemetry.incr "faults.injected";
       true
     end

let inject site = if fires site then raise (Injected site)
