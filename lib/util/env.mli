(** Audited environment-variable parsing with warn-once diagnostics.

    Every [REPRO_*] knob used to hand-copy the same pattern: read the
    variable, validate, warn on stderr exactly once per process when
    the value is malformed, and fall back to (or clamp toward) a
    documented default. This module is the single entry point for
    that pattern, so a long-lived process (notably the
    {!Repro_core.Server} daemon, whose reload path re-reads the
    environment) audits every knob through one code path.

    All readers re-read the environment on every call — tests and the
    daemon's reload flip values with [Unix.putenv] — but each distinct
    warning is printed at most once per process. The warn-once
    registry is guarded by a mutex; readers are domain-safe. *)

val warn_once : string -> string -> unit
(** [warn_once key msg] prints [msg] to stderr the first time [key]
    is seen, and never again. Exposed so spec-shaped parsers (e.g.
    {!Repro_util.Faults}) share the same once-per-process registry as
    the scalar helpers below. *)

val int_clamped :
  ?clamp_warns:bool -> name:string -> min:int -> max:int -> unit -> int option
(** Read integer variable [name]. [None] when unset, or when the
    value is not an integer (warns once, naming the accepted range).
    An out-of-range value clamps into [[min, max]], warning once
    unless [clamp_warns] is [false] (for knobs like [REPRO_JOBS]
    whose upper clamp is documented, expected behaviour). *)

val float_clamped :
  ?clamp_warns:bool ->
  name:string -> min:float -> max:float -> unit -> float option
(** Read float variable [name]. [None] when unset, or when the value
    is not a float or not finite (warns once). Out-of-range values
    clamp into [[min, max]] like {!int_clamped}. *)

val float_positive : name:string -> default:float -> unit -> float
(** Read float variable [name] with [default] when unset. Malformed,
    non-finite ([nan], [inf]) and non-positive values warn once and
    fall back to [default] — they are rejected, not clamped, since a
    scale of [0] or [nan] would silently poison every measurement
    derived from it. *)

val flag : name:string -> default:bool -> bool
(** Read boolean variable [name]: [0/false/no] and [1/true/yes] in
    any case; anything else warns once and returns [default]. *)
