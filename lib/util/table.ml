type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ?title headers = { title; headers; rows = [] }

let add_row t cells =
  let n_cols = List.length t.headers and n = List.length cells in
  if n > n_cols then invalid_arg "Table.add_row: too many cells";
  let padded =
    if n = n_cols then cells
    else cells @ List.init (n_cols - n) (fun _ -> "")
  in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

(* Cell widths count display characters, not bytes: annotation
   markers like the sampling "≈" are multi-byte UTF-8 sequences, and
   byte-based padding would misalign every column after them. ASCII
   cells are unaffected (the two lengths agree). *)
let display_length s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let pad align width s =
  let len = display_length s in
  if len >= width then s
  else
    let fill = width - len in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let l = fill / 2 in
        String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> max acc (display_length (List.nth cells i)))
          (display_length h) rows)
      headers
  in
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    List.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        let w = List.nth widths i and a = List.nth aligns i in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a w cell);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | None -> ()
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n');
  rule ();
  line headers;
  rule ();
  List.iter
    (fun row -> match row with Separator -> rule () | Cells c -> line c)
    rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let title t = t.title
let headers t = List.map fst t.headers

let rows t =
  List.rev t.rows
  |> List.filter_map (function Separator -> None | Cells c -> Some c)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n" (line (headers t) :: List.map line (rows t)) ^ "\n"

let fmt_float ?(decimals = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let fmt_pct ?(decimals = 1) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f%%" decimals (x *. 100.0)

let fmt_ratio x =
  if Float.is_nan x then "-" else Printf.sprintf "%.2fx" x
