(** Lightweight observability: monotonic-clock hierarchical spans,
    named counters and gauges, and derived rates.

    The layer is designed for the experiment engine's domain pool:

    - {b Zero-cost when disabled.} Every recording entry point first
      checks a single boolean; a disabled run performs no allocation,
      no clock read and no table lookup, so instrumented and bare
      code produce byte-identical results (enforced by a qcheck
      property in [test/test_telemetry.ml]).
    - {b Domain-safe without hot-path locks.} All state lives in
      per-domain buffers ([Domain.DLS]); a worker domain records
      spans and counters locally, {!export}s its buffer before it
      exits, and the joining domain {!absorb}s the buffer into its
      own tree. No mutex is ever taken while a span is open or a
      counter is bumped.

    Recording is enabled by [REPRO_TRACE=1] (or [true]/[yes]/[on]),
    by the CLI's [--trace] flag, or programmatically with
    {!set_enabled} (the bench harness does this for its JSON
    emitter, without printing the tree). *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Turning recording on (re)starts the {!elapsed_s} clock used by
    derived rates. Turning it off never discards recorded data. *)

val env_trace : bool
(** Whether [REPRO_TRACE] was set truthy in the environment — used by
    the executables to decide whether to print the span tree on exit
    (recording may be on, e.g. for the bench JSON emitter, without
    any tree being wanted). *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds from an arbitrary origin. *)

val elapsed_s : unit -> float
(** Seconds since recording was last enabled. *)

(** {1 Spans} *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] on the monotonic clock and files
    the closed span under the innermost open span of the calling
    domain (or as a domain root). Exceptions close the span and
    propagate. When disabled this is exactly [f ()]. *)

(** Immutable view of a completed span, for tests and reporters.
    Durations are monotonic-clock nanoseconds; children are in
    completion order. *)
type span = { sname : string; stotal_ns : int64; schildren : span list }

val spans : unit -> span list
(** Completed top-level spans of the calling domain, oldest first
    (including everything absorbed from joined workers). *)

(** {1 Counters and gauges} *)

val add : string -> int -> unit
(** [add name n] bumps the calling domain's counter [name] by [n].
    No-op when disabled or [n = 0]. *)

val incr : string -> unit

val counter : string -> int
(** Current value of the calling domain's counter (workers' values
    are included once their buffers have been absorbed); [0] if the
    counter never moved. *)

val set_gauge : string -> float -> unit
val gauge : string -> float option

val rate : string -> float
(** [rate name] is [counter name /. elapsed_s ()]: the counter's
    average rate per second since recording was enabled. [0.] when
    nothing was recorded or no time has passed. *)

(** {1 Cross-domain merging} *)

type buffer
(** A worker domain's completed spans, counters and gauges, detached
    from domain-local storage so they survive the domain's death. *)

val empty_buffer : buffer

val export : unit -> buffer
(** Detach and clear the calling domain's completed spans, counters
    and gauges (open spans stay on the stack). Call as the last thing
    a worker does before its domain is joined. *)

val absorb : buffer -> unit
(** Splice an exported buffer into the calling domain: spans become
    children of the innermost open span (or roots), counters add,
    gauges overwrite. *)

(** {1 Reporting} *)

val reset : unit -> unit
(** Drop the calling domain's recorded spans, counters and gauges
    and restart the rate clock. *)

val report : unit -> string
(** Render the recorded data: an indented span tree — sibling spans
    with the same name are aggregated, showing call count, total and
    self time (total minus direct children) in milliseconds — then
    counters with derived per-second rates, then gauges. Empty string
    when nothing was recorded. *)
