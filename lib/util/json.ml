type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emitter *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* %.12g is almost always lossless and short; fall back to the
       full %.17g round-trip form when it is not. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 1024 in
  let indent n = Buffer.add_string buf (String.make n ' ') in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
        (* JSON has no NaN/infinity; emit null rather than an
           unparsable token. *)
        if Float.is_finite f then Buffer.add_string buf (number_to_string f)
        else Buffer.add_string buf "null"
    | Str s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (2 * (depth + 1));
            emit (depth + 1) item)
          items;
        Buffer.add_char buf '\n';
        indent (2 * depth);
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (2 * (depth + 1));
            escape_string buf k;
            Buffer.add_string buf ": ";
            emit (depth + 1) item)
          fields;
        Buffer.add_char buf '\n';
        indent (2 * depth);
        Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: plain recursive descent over the byte string. *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let utf8_of_code buf c =
    (* Basic-plane code point to UTF-8. *)
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some '/' -> Buffer.add_char buf '/'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\012'
          | Some 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some c ->
                  pos := !pos + 4;
                  utf8_of_code buf c
              | None -> fail "bad \\u escape")
          | _ -> fail "bad escape");
          advance ();
          go ())
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "at byte %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let number = function Num f -> Some f | _ -> None
