(* One registry for every "warn once per process" diagnostic about a
   malformed environment knob. Guarded by a mutex: the Server daemon
   and Engine workers may parse env from several domains at once. *)

let lock = Mutex.create ()
let warned : (string, unit) Hashtbl.t = Hashtbl.create 8

let warn_once key msg =
  Mutex.protect lock (fun () ->
      if not (Hashtbl.mem warned key) then begin
        Hashtbl.add warned key ();
        Printf.eprintf "%s\n%!" msg
      end)

let invalid name v want =
  warn_once
    (Printf.sprintf "%s:invalid:%s" name v)
    (Printf.sprintf
       "frontend-repro: ignoring invalid %s=%S (want %s); using the default"
       name v want)

let clamped name v ~lo ~hi shown =
  warn_once
    (Printf.sprintf "%s:clamp:%s" name v)
    (Printf.sprintf "frontend-repro: clamping %s=%s to the accepted range %s"
       name v
       (Printf.sprintf "[%s, %s] (using %s)" lo hi shown))

let int_clamped ?(clamp_warns = true) ~name ~min ~max () =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | None ->
          invalid name s (Printf.sprintf "an integer in %d..%d" min max);
          None
      | Some v when v >= min && v <= max -> Some v
      | Some v ->
          let c = Stdlib.max min (Stdlib.min max v) in
          if clamp_warns then
            clamped name (string_of_int v) ~lo:(string_of_int min)
              ~hi:(string_of_int max) (string_of_int c);
          Some c)

let float_clamped ?(clamp_warns = true) ~name ~min ~max () =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | None ->
          invalid name s (Printf.sprintf "a number in [%g, %g]" min max);
          None
      | Some v when not (Float.is_finite v) ->
          invalid name s (Printf.sprintf "a finite number in [%g, %g]" min max);
          None
      | Some v when v >= min && v <= max -> Some v
      | Some v ->
          let c = Float.max min (Float.min max v) in
          if clamp_warns then
            clamped name (Printf.sprintf "%g" v) ~lo:(Printf.sprintf "%g" min)
              ~hi:(Printf.sprintf "%g" max)
              (Printf.sprintf "%g" c);
          Some c)

let float_positive ~name ~default () =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some v when Float.is_finite v && v > 0.0 -> v
      | Some _ | None ->
          invalid name s
            (Printf.sprintf "a finite positive number, e.g. %g" default);
          default)

let flag ~name ~default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "0" | "false" | "no" | "off" -> false
      | "1" | "true" | "yes" | "on" -> true
      | _ ->
          invalid name s
            (Printf.sprintf "0/false/no or 1/true/yes; default is %s"
               (if default then "enabled" else "disabled"));
          default)
