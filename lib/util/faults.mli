(** Deterministic, seed-driven fault injection.

    A registry of named fault {e sites} threaded through the hot
    paths of the engine, the persistent cache, the packed-trace
    capture, and the resume journal. Each site calls {!inject} (or
    {!fires} when the simulated failure is not an exception, e.g. a
    torn write); with no rules configured both are a single boolean
    load, so production runs pay nothing — the same zero-cost
    discipline as {!Telemetry}.

    Rules come from the [REPRO_FAULTS] environment variable or
    {!configure}, as a comma-separated list of [site:prob:seed]
    triples:

    {v REPRO_FAULTS=engine.task:0.1:7,cache.decode:0.02:3
       REPRO_FAULTS=all:0.05:42 v}

    [site] is a name from {!sites} or [all] (every site); [prob] is
    the per-draw injection probability, clamped to [0..1]; [seed]
    is an integer mixed into every draw. A malformed entry (unknown
    site, non-numeric probability or seed) is diagnosed once on
    stderr and skipped — never silently treated as valid. Each draw
    hashes (seed, site, draw counter), so a fixed spec produces a
    reproducible injection {e rate}; which concrete task receives a
    fault still depends on scheduling, which is exactly what the
    supervision layer must tolerate. *)

exception Injected of string
(** Raised by {!inject} with the site name. Classified as
    [Transient] by {!Repro_core.Failure.classify}, so supervised
    runs retry it. *)

val sites : string list
(** Catalogue of the sites wired into the codebase:
    [engine.task] (raised at every Engine task dispatch, before the
    task body), [trace.capture] (raised at packed-trace capture),
    [cache.read] (simulated read I/O error: the lookup misses),
    [cache.decode] (simulated corrupt entry: quarantined then
    missed), [cache.write] (simulated write I/O error: the store is
    dropped), [cache.write.torn] (a truncated entry is written to
    the final path, simulating a crash mid-write), [journal.append]
    (the checkpoint record is dropped), [journal.torn] (a truncated
    checkpoint record is written). *)

val configure : string option -> unit
(** Replace the rule set from a spec string; [None] or [Some ""]
    disables injection. Called once at startup with [REPRO_FAULTS]
    when set. *)

val refresh_from_env : unit -> unit
(** Re-read [REPRO_FAULTS] and {!configure} from it. The startup
    configuration is exactly one call to this; a long-lived process
    (the Server daemon's reload path) calls it again so a changed
    environment does not silently keep the stale fault config. *)

val spec : unit -> string option
(** The spec currently in force (normalized), [None] when disabled. *)

val active : unit -> bool
(** At least one rule is configured. *)

val fires : string -> bool
(** One deterministic draw at [site]: [true] with the configured
    probability, counted in {!injected}; always [false] when no rule
    matches. Use directly when the fault is simulated in-line (torn
    writes) rather than raised. *)

val inject : string -> unit
(** [if fires site then raise (Injected site)]. *)

val injected : unit -> int
(** Total faults fired since startup (all sites). *)
