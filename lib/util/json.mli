(** Minimal JSON tree, emitter and parser.

    Just enough for the bench harness's [BENCH_results.json]: no
    external dependency is available in the build image, and the
    emitter/validator pair must round-trip. Numbers are floats
    (integers render without a fractional part); strings are emitted
    with standard escapes and parsed with full escape support
    including [\uXXXX] (encoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Render with 2-space indentation and a trailing newline. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error msg] carries the byte
    offset of the failure. Trailing non-whitespace is an error. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val number : t -> float option
(** The float behind [Num]; [None] otherwise. *)
