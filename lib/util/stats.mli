(** Streaming and batch statistics used throughout the characterization
    tools: single-pass mean/variance (Welford), weighted means, geometric
    means, percentiles, and fixed-bin histograms. *)

(** {1 Single-pass accumulator} *)

module Acc : sig
  type t
  (** Welford accumulator for count / mean / variance / min / max. *)

  val create : unit -> t
  val add : t -> float -> unit
  val add_weighted : t -> weight:float -> float -> unit

  val count : t -> int
  val total_weight : t -> float
  val sum : t -> float
  val mean : t -> float
  (** Mean of the added samples; [nan] when empty. *)

  val variance : t -> float
  (** Population variance; [0.] with fewer than two samples. *)

  val std_dev : t -> float
  val min : t -> float
  val max : t -> float
end

(** {1 Batch helpers} *)

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)

val geomean : float list -> float
(** Geometric mean; requires strictly positive entries; [nan] on empty. *)

val weighted_mean : (float * float) list -> float
(** [(weight, value)] pairs; [nan] when total weight is zero. *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [0,100]; linear interpolation between
    closest ranks; the array is sorted internally (copy, not in place)
    with [Float.compare]. NaN handling is therefore explicit and
    deterministic: [Float.compare] is a total order placing every NaN
    below every number, so an array containing NaN returns NaN for
    percentiles that land on (or interpolate with) a NaN rank — the
    low end — and the finite values for the rest, independent of the
    input order. Raises [Invalid_argument] on an empty array. *)

val percentiles : float array -> float list -> float list
(** [percentiles a ps] equals [List.map (percentile a) ps] but sorts
    [a] once — the load-generator path computes p50/p90/p99 of one
    latency array. Raises [Invalid_argument] on an empty array. *)

val median : float array -> float

(** {1 Histograms} *)

module Histogram : sig
  type t
  (** Fixed-width binning of a bounded range, with under/overflow bins. *)

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> ?weight:float -> float -> unit
  val bin_count : t -> int
  val bin_weight : t -> int -> float
  val bin_bounds : t -> int -> float * float
  val total : t -> float
  val fractions : t -> float array
  (** Per-bin share of total weight (empty histogram gives zeros). *)

  val mass_below : t -> float -> float
  (** Total weight strictly below a threshold (by bin lower bound). *)
end

(** {1 Ratio estimation} *)

val jackknife_ratio :
  num:float array -> den:float array -> (float * float) option
(** [jackknife_ratio ~num ~den] estimates [R = sum num /. sum den]
    from per-stratum totals and attaches a 95% confidence half-width
    from the delete-one jackknife. [None] when the denominator total
    is not positive; half-width [infinity] with fewer than two
    strata. Used by the representative-region sampling estimator to
    decide whether a config-to-pivot miss ratio is stable enough to
    extrapolate from. *)

(** {1 Cumulative footprints} *)

val bytes_for_coverage : (int * float) list -> coverage:float -> int
(** [bytes_for_coverage cells ~coverage] where [cells] is a list of
    [(size_in_bytes, dynamic_weight)]: sorts cells by weight (hottest
    first) and returns the number of bytes of the hottest cells needed
    to cover [coverage] (e.g. [0.99]) of the total dynamic weight. *)
