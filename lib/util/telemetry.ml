let env_trace = Env.flag ~name:"REPRO_TRACE" ~default:false

let now_ns () = Monotonic_clock.now ()

let enabled_ref = ref env_trace
let started_ns = ref (now_ns ())

let enabled () = !enabled_ref

let set_enabled b =
  if b && not !enabled_ref then started_ns := now_ns ();
  enabled_ref := b

let elapsed_s () =
  Int64.to_float (Int64.sub (now_ns ()) !started_ns) /. 1e9

(* ------------------------------------------------------------------ *)
(* Per-domain storage. Everything below is only ever touched by the
   owning domain; cross-domain visibility happens exclusively through
   export (worker side, before join) and absorb (joiner side, after
   join), so no recording path takes a lock. *)

type node = {
  name : string;
  mutable total_ns : int64;
  mutable children : node list; (* newest first *)
}

type dstate = {
  mutable stack : node list; (* open spans, innermost first *)
  mutable roots : node list; (* completed top-level spans, newest first *)
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
}

let key =
  Domain.DLS.new_key (fun () ->
      { stack = []; roots = []; counters = Hashtbl.create 16;
        gauges = Hashtbl.create 8 })

let state () = Domain.DLS.get key

(* ------------------------------------------------------------------ *)
(* Spans *)

type span = { sname : string; stotal_ns : int64; schildren : span list }

let rec freeze n =
  { sname = n.name; stotal_ns = n.total_ns;
    schildren = List.rev_map freeze n.children }

let with_span name f =
  if not !enabled_ref then f ()
  else begin
    let st = state () in
    let node = { name; total_ns = 0L; children = [] } in
    st.stack <- node :: st.stack;
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        node.total_ns <- Int64.sub (now_ns ()) t0;
        match st.stack with
        | top :: rest when top == node -> (
            st.stack <- rest;
            match rest with
            | parent :: _ -> parent.children <- node :: parent.children
            | [] -> st.roots <- node :: st.roots)
        | _ ->
            (* Unbalanced close (a nested span leaked past this one);
               drop the node rather than corrupt the tree. *)
            ())
      f
  end

let spans () = List.rev_map freeze (state ()).roots

(* ------------------------------------------------------------------ *)
(* Counters and gauges *)

let bump counters name n =
  match Hashtbl.find_opt counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add counters name (ref n)

let add name n = if !enabled_ref && n <> 0 then bump (state ()).counters name n
let incr name = add name 1

let counter name =
  match Hashtbl.find_opt (state ()).counters name with
  | Some r -> !r
  | None -> 0

let set_gauge name v =
  if !enabled_ref then Hashtbl.replace (state ()).gauges name v

let gauge name = Hashtbl.find_opt (state ()).gauges name

let rate name =
  let s = elapsed_s () in
  if s <= 0.0 then 0.0 else float_of_int (counter name) /. s

(* ------------------------------------------------------------------ *)
(* Cross-domain merging *)

type buffer = {
  bspans : node list; (* oldest first *)
  bcounters : (string * int) list;
  bgauges : (string * float) list;
}

let empty_buffer = { bspans = []; bcounters = []; bgauges = [] }

let export () =
  let st = state () in
  let b =
    { bspans = List.rev st.roots;
      bcounters =
        Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.counters [];
      bgauges = Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.gauges [] }
  in
  st.roots <- [];
  Hashtbl.reset st.counters;
  Hashtbl.reset st.gauges;
  b

let absorb b =
  if b != empty_buffer then begin
    let st = state () in
    (match st.stack with
    | parent :: _ ->
        parent.children <- List.rev_append b.bspans parent.children
    | [] -> st.roots <- List.rev_append b.bspans st.roots);
    List.iter (fun (k, n) -> bump st.counters k n) b.bcounters;
    List.iter (fun (k, v) -> Hashtbl.replace st.gauges k v) b.bgauges
  end

let reset () =
  let st = state () in
  st.stack <- [];
  st.roots <- [];
  Hashtbl.reset st.counters;
  Hashtbl.reset st.gauges;
  started_ns := now_ns ()

(* ------------------------------------------------------------------ *)
(* Reporting *)

(* Aggregated view: sibling spans with the same name collapse into
   one line (count, total, self), recursively. *)
type agg = {
  aname : string;
  mutable acount : int;
  mutable atotal_ns : int64;
  mutable apending : span list; (* children awaiting aggregation *)
}

let aggregate siblings =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt tbl s.sname with
      | Some a ->
          a.acount <- a.acount + 1;
          a.atotal_ns <- Int64.add a.atotal_ns s.stotal_ns;
          a.apending <- List.rev_append s.schildren a.apending
      | None ->
          let a =
            { aname = s.sname; acount = 1; atotal_ns = s.stotal_ns;
              apending = List.rev s.schildren }
          in
          Hashtbl.add tbl s.sname a;
          order := a :: !order)
    siblings;
  List.rev !order

let ms ns = Int64.to_float ns /. 1e6

let report () =
  let st = state () in
  let buf = Buffer.create 1024 in
  let tree = List.rev_map freeze st.roots in
  if tree <> [] then begin
    Buffer.add_string buf
      "== telemetry: span tree (count, total ms, self ms) ==\n";
    let rec emit depth siblings =
      List.iter
        (fun a ->
          let children = aggregate (List.rev a.apending) in
          let child_ns =
            List.fold_left
              (fun acc c -> Int64.add acc c.atotal_ns)
              0L children
          in
          (* Concurrent children absorbed from worker domains can sum
             past the parent's wall time; clamp self at zero. *)
          let self_ns = Int64.max 0L (Int64.sub a.atotal_ns child_ns) in
          Buffer.add_string buf
            (Printf.sprintf "%s%-*s %6dx %10.2f %10.2f\n"
               (String.make (2 * depth) ' ')
               (max 1 (36 - (2 * depth)))
               a.aname a.acount (ms a.atotal_ns) (ms self_ns));
          emit (depth + 1) children)
        siblings
    in
    emit 0 (aggregate tree)
  end;
  let sorted tbl f =
    List.sort compare (Hashtbl.fold (fun k v acc -> f k v :: acc) tbl [])
  in
  if Hashtbl.length st.counters > 0 then begin
    Buffer.add_string buf "== telemetry: counters (value, per-second) ==\n";
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-36s %12d %12.1f/s\n" k v (rate k)))
      (sorted st.counters (fun k r -> (k, !r)))
  end;
  if Hashtbl.length st.gauges > 0 then begin
    Buffer.add_string buf "== telemetry: gauges ==\n";
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-36s %12.3f\n" k v))
      (sorted st.gauges (fun k v -> (k, v)))
  end;
  Buffer.contents buf
