module Acc = struct
  type t = {
    mutable count : int;
    mutable weight : float;
    mutable mean : float;
    mutable m2 : float;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; weight = 0.0; mean = 0.0; m2 = 0.0; sum = 0.0;
      min = infinity; max = neg_infinity }

  let add_weighted t ~weight x =
    if weight > 0.0 then begin
      t.count <- t.count + 1;
      t.sum <- t.sum +. (weight *. x);
      let w' = t.weight +. weight in
      let delta = x -. t.mean in
      t.mean <- t.mean +. (delta *. weight /. w');
      t.m2 <- t.m2 +. (weight *. delta *. (x -. t.mean));
      t.weight <- w';
      if x < t.min then t.min <- x;
      if x > t.max then t.max <- x
    end

  let add t x = add_weighted t ~weight:1.0 x
  let count t = t.count
  let total_weight t = t.weight
  let sum t = t.sum
  let mean t = if t.count = 0 then nan else t.mean
  let variance t = if t.count < 2 then 0.0 else t.m2 /. t.weight
  let std_dev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
end

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> nan
  | xs ->
      let logsum =
        List.fold_left
          (fun acc x ->
            assert (x > 0.0);
            acc +. log x)
          0.0 xs
      in
      exp (logsum /. float_of_int (List.length xs))

let weighted_mean pairs =
  let wsum, vsum =
    List.fold_left
      (fun (w, v) (weight, value) -> (w +. weight, v +. (weight *. value)))
      (0.0, 0.0) pairs
  in
  if wsum = 0.0 then nan else vsum /. wsum

(* [Float.compare], not polymorphic [compare]: the sort is on the hot
   latency-percentile path of the bench load generator, where the
   polymorphic-compare penalty is measurable, and it makes the NaN
   order explicit — [Float.compare] is a total order with every NaN
   below every number, so an array containing NaN yields NaN for low
   percentiles deterministically instead of depending on input
   order. *)
let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let percentile a p =
  if Array.length a = 0 then invalid_arg "Stats.percentile: empty array";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

let percentiles a ps =
  if Array.length a = 0 then invalid_arg "Stats.percentiles: empty array";
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  List.map (percentile_sorted sorted) ps

let median a = percentile a 50.0

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    bins : int;
    counts : float array; (* index 0 = underflow, bins+1 = overflow *)
  }

  let create ~lo ~hi ~bins =
    assert (bins > 0 && hi > lo);
    { lo; hi; bins; counts = Array.make (bins + 2) 0.0 }

  let index t x =
    if x < t.lo then 0
    else if x >= t.hi then t.bins + 1
    else
      let width = (t.hi -. t.lo) /. float_of_int t.bins in
      1 + int_of_float ((x -. t.lo) /. width)

  let add t ?(weight = 1.0) x =
    let i = index t x in
    t.counts.(i) <- t.counts.(i) +. weight

  let bin_count t = t.bins + 2
  let bin_weight t i = t.counts.(i)

  let bin_bounds t i =
    let width = (t.hi -. t.lo) /. float_of_int t.bins in
    if i = 0 then (neg_infinity, t.lo)
    else if i = t.bins + 1 then (t.hi, infinity)
    else
      let lo = t.lo +. (float_of_int (i - 1) *. width) in
      (lo, lo +. width)

  let total t = Array.fold_left ( +. ) 0.0 t.counts

  let fractions t =
    let sum = total t in
    if sum = 0.0 then Array.make (t.bins + 2) 0.0
    else Array.map (fun c -> c /. sum) t.counts

  let mass_below t threshold =
    let acc = ref 0.0 in
    for i = 0 to t.bins + 1 do
      let lo, _ = bin_bounds t i in
      if lo < threshold && i > 0 then acc := !acc +. t.counts.(i)
      else if i = 0 then acc := !acc +. t.counts.(0)
    done;
    !acc
end

(* Delete-one jackknife over the per-stratum totals of a ratio
   R = sum num / sum den. The jackknife standard error is the
   textbook-correct way to attach a dispersion to a ratio of sums
   (a plain per-stratum ratio variance would ignore the unequal
   stratum sizes). *)
let jackknife_ratio ~num ~den =
  let n = Array.length num in
  if n <> Array.length den then
    invalid_arg "Stats.jackknife_ratio: length mismatch";
  let snum = Array.fold_left ( +. ) 0.0 num in
  let sden = Array.fold_left ( +. ) 0.0 den in
  if sden <= 0.0 then None
  else begin
    let ratio = snum /. sden in
    if n < 2 then Some (ratio, infinity)
    else begin
      (* leave-one-out replicates; a replicate with an empty
         denominator contributes the full-sample ratio (no signal) *)
      let reps =
        Array.init n (fun i ->
            let d = sden -. den.(i) in
            if d <= 0.0 then ratio else (snum -. num.(i)) /. d)
      in
      let rbar = Array.fold_left ( +. ) 0.0 reps /. float_of_int n in
      let ss =
        Array.fold_left (fun a r -> a +. ((r -. rbar) ** 2.0)) 0.0 reps
      in
      let se =
        sqrt (float_of_int (n - 1) /. float_of_int n *. ss)
      in
      Some (ratio, 1.96 *. se)
    end
  end

let bytes_for_coverage cells ~coverage =
  assert (coverage >= 0.0 && coverage <= 1.0);
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 cells in
  if total = 0.0 then 0
  else begin
    let sorted =
      List.sort (fun (_, w1) (_, w2) -> compare w2 w1) cells
    in
    let target = coverage *. total in
    let rec go bytes mass = function
      | [] -> bytes
      | (size, w) :: rest ->
          if mass >= target then bytes
          else go (bytes + size) (mass +. w) rest
    in
    go 0 0.0 sorted
  end
