(** Representative-region sampling plans over a packed trace.

    A plan partitions the capture into phase-aligned regions (a new
    region starts at every serial/parallel section transition, with
    long phases split and slivers merged), summarizes each region by
    a basic-block vector built from its fetch-redirect targets, and
    clusters the BBVs with deterministic k-means ({!Repro_util.Rng}
    seeded from the profile digest, SimPoint-style after Ferrerón et
    al., "Crossing the Architectural Barrier").

    Representatives are the {e earliest} member of each cluster, so
    the simulated set collapses to one contiguous prefix: simulator
    state inside the prefix is always exactly the state of the full
    run — there is no checkpoint or warmup-truncation bias, and the
    whole startup transient (where large structures take their
    compulsory misses) is measured, never extrapolated. Only the tail
    is estimated, per cluster, against a pivot configuration that
    simulates the full capture ({!Cell.gate}).

    Accuracy is {e statistically gated} per table cell with a
    calibrated error model built from three measured error terms: the
    worst error of fixed canary configurations (bracketing the design
    space, simulated over the full capture and extrapolated against
    their own known totals, {!Cell.calibrate}) charged to every
    configuration as a floor; the canaries' error-per-deviation price
    for configurations more erratic than the canaries; and a
    per-configuration holdout (the second half of the prefix
    predicted from the first, scaled to tail size) that catches drift
    the canaries cannot see. A cell is extrapolated only when the
    combined prediction clears the tolerance budget with headroom
    ({!Cell.gate}); otherwise the caller escalates that configuration
    to exact tail simulation (continuing from its prefix state, which
    reproduces the full run bit for bit). A plan at fraction 1.0 — or over a trace too short to
    sample — is {!exhaustive}, and every sampled code path must then
    match the unsampled one exactly. *)

type region = {
  lo : int;  (** first instruction position (inclusive) *)
  hi : int;  (** one past the last position *)
  counted_s : int;  (** non-warmup serial instructions *)
  counted_p : int;
  conds_s : int;  (** non-warmup conditional branches *)
  conds_p : int;
  redirects_s : int;  (** non-warmup taken non-sys/non-ret branches *)
  redirects_p : int;
  cluster : int;
}

type t = private {
  regions : region array;
  k : int;  (** number of clusters *)
  prefix_regions : int;  (** regions [0..prefix_regions-1] simulated *)
  prefix_end : int;  (** instruction position ending the prefix *)
  fraction : float;  (** requested sampling fraction *)
  covered : float;  (** achieved simulated-instruction fraction *)
  exhaustive : bool;  (** plan degenerates to full simulation *)
  seed : int;
}

val plan : fraction:float -> seed:int -> Repro_isa.Packed_trace.t -> t
(** Build a plan. [fraction] is the target share of instructions the
    non-pivot configurations simulate; it is clamped to [0.01..1.0].
    The prefix is extended past the target when that lets it cover a
    cluster that would otherwise have no simulated member (up to 1.5x
    the target). Fractions at or above 0.995, or traces with fewer
    than 4 regions, produce an {!exhaustive} plan. Deterministic in
    [(fraction, seed, capture)]. *)

val exhaustive : t -> bool

val default_tol : float
(** Relative tolerance (0.02) the sampling-aware kernels pass to
    {!Cell.gate} — matches the [max_rel_error] gate in the bench
    harness. *)

val total_insts : t -> int
(** Capture length in instructions (warmup included). *)

val fingerprint : t -> string
(** Compact token describing the sampling spec — folded into cache
    keys and journal fingerprints so sampled and unsampled results
    can never collide. *)

val describe : t -> string
(** One-line human summary (regions, clusters, coverage). *)

(** Per-cell gated extrapolation: decide, for one counter cell of one
    configuration, whether the prefix evidence supports estimating
    the tail, and with what confidence interval. *)
module Cell : sig
  type verdict =
    | Exact  (** nothing to extrapolate: the prefix covers the trace *)
    | Escalate
        (** evidence too weak for the tolerance: simulate the tail *)
    | Approx of { est : float; ci : float }
        (** extrapolated total count and 95% half-width, both in the
            cell's count units *)

  val gate :
    plan:t ->
    tol:float ->
    floor:float ->
    err_floor:float ->
    err_scale:float ->
    pivot:float array ->
    prefix:float array ->
    verdict
  (** [gate ~plan ~tol ~floor ~err_floor ~err_scale ~pivot ~prefix]
      where [pivot] has one entry per region (the pivot
      configuration's cell counts over the full capture) and [prefix]
      has one entry per prefix region (this cell's exact counts).
      [err_floor] and [err_scale] come from this cell's canaries
      ({!calibrate}): the floor is the worst canary error measured
      against a known answer — no sweep configuration may claim less —
      and the scale prices deviation beyond the canaries' own. The
      predicted error is [max err_floor (err_scale *. dev)] for this
      configuration's deviation [dev]; the error budget it must fit in
      is [tol *. max est floor], where [floor] expresses the caller's
      materiality threshold in count units (e.g. the counts
      corresponding to 1.0 MPKI). The reported [ci] is the budget, so
      a cell within tolerance is always within its interval. Callers
      with no canaries pass [~err_floor:0.0 ~err_scale:infinity]:
      only deviation-zero configurations extrapolate. *)

  val calibrate :
    plan:t -> pivot:float array -> actual:float array -> (float * float) option
  (** Canary calibration. [actual] is the full per-region cell vector
      of a fixed configuration the caller simulated over the whole
      capture, chosen to bracket the sweep's design space. The canary
      is extrapolated from its own prefix exactly as {!gate} would and
      its estimate compared against its known total: the result is
      [Some (err, dev)], the observed absolute error at the canary's
      own prefix deviation. Callers fold canaries into the [err_floor]
      (max of the errors) and [err_scale] (max of [err /. max dev 1.])
      they pass to {!gate}. [None] means the prefix is too short to
      extrapolate at all and every configuration must escalate. *)
end
