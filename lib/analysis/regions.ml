module P = Repro_isa.Packed_trace
module Inst = Repro_isa.Inst
module Section = Repro_isa.Section
module Rng = Repro_util.Rng
module Stats = Repro_util.Stats

(* Region sizing: phases shorter than [min_insts] are folded into the
   running region (serial slivers between parallel bursts are not
   phases worth sampling); phases longer than [max_insts] are split so
   clustering sees sub-phase structure at full scale. Sizes are small
   enough that even benchmark-scale captures (tens of thousands of
   instructions at low --scale) yield dozens of regions — the
   jackknife in {!Cell.gate} needs prefix sample counts, not just
   instruction mass. *)
let min_insts = 512
let max_insts = 2048

(* BBV dimensionality: hashed fetch-redirect targets, plus two slots
   of section mass so serial and parallel phases can never merge. *)
let bbv_dim = 64

type region = {
  lo : int;
  hi : int;
  counted_s : int;
  counted_p : int;
  conds_s : int;
  conds_p : int;
  redirects_s : int;
  redirects_p : int;
  cluster : int;
}

type t = {
  regions : region array;
  k : int;
  prefix_regions : int;
  prefix_end : int;
  fraction : float;
  covered : float;
  exhaustive : bool;
  seed : int;
}

(* ------------------------------------------------------------------ *)
(* Pass 1: phase-aligned region boundaries plus per-region counts and
   raw BBVs, in one cheap decode of the capture (no simulators). *)

type raw = {
  mutable r_lo : int;
  mutable r_cs : int;
  mutable r_cp : int;
  mutable r_conds : int;
  mutable r_condp : int;
  mutable r_reds : int;
  mutable r_redp : int;
  bbv : float array;
}

let fresh_raw lo =
  { r_lo = lo; r_cs = 0; r_cp = 0; r_conds = 0; r_condp = 0; r_reds = 0;
    r_redp = 0; bbv = Array.make (bbv_dim + 2) 0.0 }

let scan pt =
  let out = ref [] in
  let cur = ref (fresh_raw 0) in
  let pos = ref 0 in
  let last_section = ref None in
  let close hi =
    let c = !cur in
    if hi > c.r_lo then begin
      out :=
        { lo = c.r_lo;
          hi;
          counted_s = c.r_cs;
          counted_p = c.r_cp;
          conds_s = c.r_conds;
          conds_p = c.r_condp;
          redirects_s = c.r_reds;
          redirects_p = c.r_redp;
          cluster = 0 }
        :: !out;
      c.r_lo <- hi
    end
  in
  let bbvs = ref [] in
  let close_with_bbv hi =
    let c = !cur in
    if hi > c.r_lo then begin
      (* L1-normalize the target histogram; the two section slots get
         the region's section mass so phases of different kinds land
         in different clusters. *)
      let tot = Array.fold_left ( +. ) 0.0 c.bbv in
      let b =
        Array.map (fun v -> if tot > 0.0 then v /. tot else 0.0) c.bbv
      in
      let len = float_of_int (hi - c.r_lo) in
      b.(bbv_dim) <- float_of_int (c.r_cs + c.r_conds) /. len;
      b.(bbv_dim + 1) <- float_of_int c.r_cp /. len;
      bbvs := b :: !bbvs;
      close hi;
      cur := fresh_raw hi
    end
  in
  P.replay pt (fun (i : Inst.t) ->
      (match !last_section with
      | Some s
        when s <> i.Inst.section && !pos - !cur.r_lo >= min_insts ->
          close_with_bbv !pos
      | _ -> ());
      last_section := Some i.Inst.section;
      let c = !cur in
      if not i.Inst.warmup then begin
        (match i.Inst.section with
        | Section.Serial -> c.r_cs <- c.r_cs + 1
        | Section.Parallel -> c.r_cp <- c.r_cp + 1);
        if i.Inst.kind = Inst.Cond_branch then
          match i.Inst.section with
          | Section.Serial -> c.r_conds <- c.r_conds + 1
          | Section.Parallel -> c.r_condp <- c.r_condp + 1
      end;
      (if i.Inst.taken && Inst.is_branch i && i.Inst.kind <> Inst.Syscall
          && i.Inst.kind <> Inst.Return then begin
         (if not i.Inst.warmup then
            match i.Inst.section with
            | Section.Serial -> c.r_reds <- c.r_reds + 1
            | Section.Parallel -> c.r_redp <- c.r_redp + 1);
         let h = (i.Inst.target * 0x9E3779B1) land max_int in
         let slot = h mod bbv_dim in
         c.bbv.(slot) <- c.bbv.(slot) +. 1.0
       end);
      incr pos;
      if !pos - c.r_lo >= max_insts then close_with_bbv !pos);
  close_with_bbv !pos;
  (Array.of_list (List.rev !out), Array.of_list (List.rev !bbvs))

(* ------------------------------------------------------------------ *)
(* Deterministic k-means (k-means++ seeding, strict-improvement ties
   keep the lowest index, fixed iteration cap). *)

let dist2 a b =
  let s = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    s := !s +. (d *. d)
  done;
  !s

let kmeans ~seed ~k bbvs =
  let n = Array.length bbvs in
  let k = min k n in
  let rng = Rng.create seed in
  let dims = bbv_dim + 2 in
  let centroids = Array.make k bbvs.(0) in
  centroids.(0) <- Array.copy bbvs.(Rng.int rng n);
  for c = 1 to k - 1 do
    let d2 =
      Array.map
        (fun b ->
          let best = ref infinity in
          for j = 0 to c - 1 do
            best := Float.min !best (dist2 b centroids.(j))
          done;
          !best)
        bbvs
    in
    let tot = Array.fold_left ( +. ) 0.0 d2 in
    if tot <= 0.0 then centroids.(c) <- Array.copy bbvs.(Rng.int rng n)
    else begin
      let r = Rng.float rng tot in
      let acc = ref 0.0 and pick = ref (n - 1) in
      (try
         Array.iteri
           (fun i v ->
             acc := !acc +. v;
             if !acc >= r then begin
               pick := i;
               raise Exit
             end)
           d2
       with Exit -> ());
      centroids.(c) <- Array.copy bbvs.(!pick)
    end
  done;
  let assign = Array.make n 0 in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 50 do
    incr iters;
    changed := false;
    Array.iteri
      (fun i b ->
        let best = ref 0 and bd = ref infinity in
        for c = 0 to k - 1 do
          let d = dist2 b centroids.(c) in
          if d < !bd then begin
            bd := d;
            best := c
          end
        done;
        if assign.(i) <> !best then begin
          assign.(i) <- !best;
          changed := true
        end)
      bbvs;
    for c = 0 to k - 1 do
      let members = ref 0 in
      let sum = Array.make dims 0.0 in
      Array.iteri
        (fun i b ->
          if assign.(i) = c then begin
            incr members;
            Array.iteri (fun j v -> sum.(j) <- sum.(j) +. v) b
          end)
        bbvs;
      if !members > 0 then
        centroids.(c) <-
          Array.map (fun v -> v /. float_of_int !members) sum
    done
  done;
  (assign, k)

(* ------------------------------------------------------------------ *)

let plan ~fraction ~seed pt =
  let fraction = Float.max 0.01 (Float.min 1.0 fraction) in
  let total = P.length pt in
  let regions, bbvs = scan pt in
  let n = Array.length regions in
  if fraction >= 0.995 || n < 4 || total = 0 then
    { regions;
      k = (if n = 0 then 0 else 1);
      prefix_regions = n;
      prefix_end = total;
      fraction;
      covered = 1.0;
      exhaustive = true;
      seed }
  else begin
    let k = max 2 (min 8 (int_of_float (Float.round (sqrt (float_of_int n))))) in
    let assign, k = kmeans ~seed ~k bbvs in
    let regions =
      Array.mapi (fun i r -> { r with cluster = assign.(i) }) regions
    in
    let target =
      int_of_float (Float.round (fraction *. float_of_int total))
    in
    let p = ref 0 in
    while !p < n && regions.(!p).lo < target do incr p done;
    (* cluster-coverage extension: pull the prefix forward while some
       tail cluster has no simulated member and the budget (1.5x the
       target) allows. *)
    let limit =
      int_of_float (Float.round (1.5 *. fraction *. float_of_int total))
    in
    let covered_cluster = Array.make k false in
    let recompute () =
      Array.fill covered_cluster 0 k false;
      for i = 0 to !p - 1 do covered_cluster.(regions.(i).cluster) <- true done
    in
    recompute ();
    let uncovered () =
      let u = ref false in
      for i = !p to n - 1 do
        if not covered_cluster.(regions.(i).cluster) then u := true
      done;
      !u
    in
    while !p < n && uncovered () && regions.(!p).hi <= limit do
      covered_cluster.(regions.(!p).cluster) <- true;
      incr p
    done;
    let p = max 1 !p in
    if p >= n then
      { regions;
        k;
        prefix_regions = n;
        prefix_end = total;
        fraction;
        covered = 1.0;
        exhaustive = true;
        seed }
    else
      let prefix_end = regions.(p - 1).hi in
      { regions;
        k;
        prefix_regions = p;
        prefix_end;
        fraction;
        covered = float_of_int prefix_end /. float_of_int total;
        exhaustive = false;
        seed }
  end

let exhaustive t = t.exhaustive
let default_tol = 0.02

let total_insts t =
  match Array.length t.regions with
  | 0 -> 0
  | n -> t.regions.(n - 1).hi

let fingerprint t =
  if t.exhaustive then Printf.sprintf "sample:%h:full" t.fraction
  else Printf.sprintf "sample:%h:%d" t.fraction t.seed

let describe t =
  if t.exhaustive then
    Printf.sprintf "exhaustive (%d regions)" (Array.length t.regions)
  else
    Printf.sprintf "%d regions, %d clusters, prefix %d/%d (%.0f%% of insts)"
      (Array.length t.regions) t.k t.prefix_regions
      (Array.length t.regions)
      (100.0 *. t.covered)

(* ------------------------------------------------------------------ *)

module Cell = struct
  type verdict =
    | Exact
    | Escalate
    | Approx of { est : float; ci : float }

  (* Telemetry: how each gate decision went, so a slow sampled run can
     be diagnosed to its dominant escalation cause. *)
  let count name = Repro_util.Telemetry.incr ("regions.gate." ^ name)

  (* Shared analysis behind [gate] and [calibrate]: the control-variate
     estimate of a cell's full-capture count from its prefix, and the
     deviation distance the calibrated error model scales by.

     The pivot's per-region counts are known over the whole capture, so
     only the per-region difference [delta_r = cell_r - pivot_r] needs
     extrapolating:

       est = prefix_exact + pivot_tail + sum over tail clusters of
             (cluster mean delta * cluster tail regions)

     Clusters with two or more prefix members use their own mean
     delta; the rest fall back to the global mean. Region 0 holds the
     cold-start transient — measured exactly (it is always in the
     prefix) but unrepresentative of the steady-state tail — so the
     delta model starts at region 1.

     [dev] is the total absolute deviation of the prefix deltas around
     the cluster means the estimate actually used: zero for a
     configuration locked to a constant offset from the pivot (whose
     extrapolation is exact), growing with every erratic region. The
     canary calibration measures its known error at its own [dev];
     [gate] charges each unknown configuration the worst canary error
     outright (the floor) plus that error re-scaled to the
     configuration's larger deviation. *)
  let analyze ~plan ~pivot ~prefix =
    let n = Array.length plan.regions in
    let p = plan.prefix_regions in
    let exact = Array.fold_left ( +. ) 0.0 prefix in
    let piv_tail = ref 0.0 in
    let n_tail_c = Array.make plan.k 0 in
    for r = p to n - 1 do
      piv_tail := !piv_tail +. pivot.(r);
      let c = plan.regions.(r).cluster in
      n_tail_c.(c) <- n_tail_c.(c) + 1
    done;
    let delta = Array.init p (fun r -> prefix.(r) -. pivot.(r)) in
    let d0 = 1 in
    let sum_c = Array.make plan.k 0.0 and m_c = Array.make plan.k 0 in
    let sum_g = ref 0.0 in
    for r = d0 to p - 1 do
      let c = plan.regions.(r).cluster in
      sum_c.(c) <- sum_c.(c) +. delta.(r);
      m_c.(c) <- m_c.(c) + 1;
      sum_g := !sum_g +. delta.(r)
    done;
    let mg = !sum_g /. float_of_int (p - d0) in
    let mean_of c =
      if m_c.(c) >= 2 then sum_c.(c) /. float_of_int m_c.(c) else mg
    in
    let est_delta = ref 0.0 in
    for c = 0 to plan.k - 1 do
      if n_tail_c.(c) > 0 then
        est_delta := !est_delta +. (mean_of c *. float_of_int n_tail_c.(c))
    done;
    let dev = ref 0.0 in
    for r = d0 to p - 1 do
      dev :=
        !dev +. Float.abs (delta.(r) -. mean_of plan.regions.(r).cluster)
    done;
    (* The estimate never drops below the misses already counted in the
       prefix: tail misses are never negative. *)
    let est = Float.max (exact +. !piv_tail +. !est_delta) exact in
    (est, !dev)

  let budget ~tol ~floor v = tol *. Float.max v floor

  (* Holdout self-test: predict the second half of the prefix from
     cluster means fitted on the first half alone, exactly as the
     real extrapolation predicts the tail from the whole prefix, and
     scale the miss up to tail size. This is the only per-config
     evidence of drift — a configuration that shadows the pivot
     through the prefix but diverges once its structures train shows
     up here, where neither its own deviation (zero) nor the canaries
     (different configurations) can see it. *)
  let holdout ~plan ~pivot ~prefix =
    let n = Array.length plan.regions in
    let p = plan.prefix_regions in
    let d0 = 1 in
    let h = d0 + ((p - d0) / 2) in
    let delta = Array.init p (fun r -> prefix.(r) -. pivot.(r)) in
    let sum_c = Array.make plan.k 0.0 and m_c = Array.make plan.k 0 in
    let sum_g = ref 0.0 in
    for r = d0 to h - 1 do
      let c = plan.regions.(r).cluster in
      sum_c.(c) <- sum_c.(c) +. delta.(r);
      m_c.(c) <- m_c.(c) + 1;
      sum_g := !sum_g +. delta.(r)
    done;
    let mg = !sum_g /. float_of_int (Stdlib.max 1 (h - d0)) in
    let mean_of c =
      if m_c.(c) >= 2 then sum_c.(c) /. float_of_int m_c.(c) else mg
    in
    let pred = ref 0.0 and act = ref 0.0 in
    for r = h to p - 1 do
      pred := !pred +. mean_of plan.regions.(r).cluster;
      act := !act +. delta.(r)
    done;
    Float.abs (!pred -. !act)
    *. (float_of_int (n - p) /. float_of_int (Stdlib.max 1 (p - h)))

  let gate ~plan ~tol ~floor ~err_floor ~err_scale ~pivot ~prefix =
    let n = Array.length plan.regions in
    let p = plan.prefix_regions in
    if Array.length pivot <> n then
      invalid_arg "Regions.Cell.gate: pivot length";
    if Array.length prefix <> p then
      invalid_arg "Regions.Cell.gate: prefix length";
    if plan.exhaustive || p >= n then Exact
    else if p < 6 then begin
      (* Region 0 is excluded from the delta model, and a mean over
         fewer than 5 remaining samples is not evidence. *)
      count "short_prefix";
      Escalate
    end
    else begin
      let est, dev = analyze ~plan ~pivot ~prefix in
      let b = budget ~tol ~floor est in
      (* [dev = 0] short-circuits so callers without canaries (the
         lone per-config simulators) can pass [infinity] and still
         extrapolate configurations locked to the pivot. The floor
         applies regardless of deviation: a configuration tracking the
         pivot perfectly in the prefix can still diverge in the tail,
         and the canaries' own measured errors are the only evidence
         of how large that divergence runs. *)
      let scaled = if dev = 0.0 then 0.0 else err_scale *. dev in
      let drift = holdout ~plan ~pivot ~prefix in
      let predicted = Float.max (Float.max err_floor scaled) drift in
      if Sys.getenv_opt "REGIONS_DEBUG" <> None then
        Printf.eprintf
          "gate: p=%d n=%d dev=%.1f drift=%.1f pred=%.1f b=%.1f est=%.1f\n" p n
          dev drift predicted b est;
      (* The model's three error terms are each measured, not bounded,
         so only accept when the prediction clears the budget with
         headroom; the reported interval stays the full budget. *)
      if predicted *. 2.5 <= b then begin
        count "approx";
        Approx { est; ci = b }
      end
      else begin
        count "wide_model";
        Escalate
      end
    end

  (* Canary calibration: [actual] is the full per-region cell vector
     of a fixed configuration simulated over the whole capture, chosen
     to bracket the sweep's design space. Extrapolating it from its
     own prefix exactly as [gate] would and comparing against its
     known total yields a measured error at a measured deviation
     [(err, dev)]. [gate] charges every unknown configuration the
     worst canary error as an outright floor — a canary that diverges
     from the pivot only in the tail (deviation ~0 in the prefix yet a
     real error against its total) is evidence of tail-only bias no
     prefix statistic can see, and no sweep configuration may claim an
     error smaller than what was measured on a known answer — plus the
     canary's error-per-deviation price for configurations more
     erratic than the canary itself. *)
  let calibrate ~plan ~pivot ~actual =
    let n = Array.length plan.regions in
    if Array.length actual <> n then
      invalid_arg "Regions.Cell.calibrate: actual length";
    let p = plan.prefix_regions in
    if plan.exhaustive || p >= n then Some (0.0, 0.0)
    else if p < 6 then None
    else begin
      let est, dev = analyze ~plan ~pivot ~prefix:(Array.sub actual 0 p) in
      let total = Array.fold_left ( +. ) 0.0 actual in
      let e = Float.abs (est -. total) in
      if Sys.getenv_opt "REGIONS_DEBUG" <> None then
        Printf.eprintf "calibrate: err=%.1f dev=%.1f total=%.1f\n" e dev total;
      Some (e, dev)
    end
end
