module Inst = Repro_isa.Inst
module F = Repro_frontend

(* Miss matrix layout: config-major, 2 cells per config — the
   section (serial = 0, parallel = 1). *)
let cells = 2

(* Extrapolation overlay for a sampled run: estimated cell counts and
   95% confidence half-widths, same 2-cell layout as [miss]. Absent
   for exact results (unsampled runs and escalated configs). *)
type approx = { e_miss : float array; ci : float array }

type t = {
  entries : int;
  assoc : int;
  insts_s : int;
  insts_p : int;
  taken_s : int;
  taken_p : int;
  miss : int array; (* the 2 cells of this config *)
  approx : approx option;
}

let section_bit (i : Inst.t) =
  match i.section with Repro_isa.Section.Serial -> 0 | Repro_isa.Section.Parallel -> 1

(* The pivot geometry simulates the full capture and anchors the
   extrapolation ratios; fixed so results never depend on which other
   configs are swept (the config-axis sharding invariant). The two
   canaries also cover the full capture, at the capacity extremes:
   {!Regions.Cell.calibrate} extrapolates each from its own prefix and
   compares against its known total, catching tail bias (capacity
   spread absent from the startup-heavy prefix) that the per-config
   statistical gate cannot see. *)
let pivot_entries = 512
let pivot_assoc = 2
let canary_configs = [| (256, 2); (1024, 8) |]

let run_sampled pt plan configs =
  Repro_util.Telemetry.with_span "sweep.sampled" @@ fun () ->
  let n = Array.length configs in
  let btbs =
    Array.map (fun (entries, assoc) -> F.Btb.create ~entries ~assoc) configs
  in
  let pivot = F.Btb.create ~entries:pivot_entries ~assoc:pivot_assoc in
  let psets = F.Btb.sets pivot in
  let pmask = psets - 1 and pshift = Repro_util.Units.log2 psets in
  let canaries =
    Array.map
      (fun (entries, assoc) -> F.Btb.create ~entries ~assoc)
      canary_configs
  in
  let nc = Array.length canaries in
  let regions = plan.Regions.regions in
  let nr = Array.length regions in
  let p = plan.Regions.prefix_regions in
  let miss = Array.make (n * cells) 0 in
  let prefix_cells = Array.init (n * cells) (fun _ -> Array.make p 0.0) in
  let pivot_cells = Array.init cells (fun _ -> Array.make nr 0.0) in
  let canary_cells =
    Array.init (nc * cells) (fun _ -> Array.make nr 0.0)
  in
  let cur = ref 0 in
  (* Per-table index geometry, computed once (log2 per call would
     dominate the feed loops). *)
  let mask_of b = F.Btb.sets b - 1
  and shift_of b = Repro_util.Units.log2 (F.Btb.sets b) in
  let kmask = Array.map mask_of btbs and kshift = Array.map shift_of btbs in
  let cmask = Array.map mask_of canaries
  and cshift = Array.map shift_of canaries in
  let feed_one b ~mask ~shift (i : Inst.t) pcx count =
    let set = pcx land mask and tag = pcx lsr shift in
    if i.warmup then F.Btb.insert_at b ~set ~tag ~target:i.target
    else begin
      (match F.Btb.lookup_at b ~set ~tag with
      | Some target when target = i.target -> ()
      | Some _ | None -> count ());
      F.Btb.insert_at b ~set ~tag ~target:i.target
    end
  in
  let feed_pivot_and_canaries (i : Inst.t) pcx sec =
    (if i.warmup then
       F.Btb.insert_at pivot ~set:(pcx land pmask) ~tag:(pcx lsr pshift)
         ~target:i.target
     else begin
       let set = pcx land pmask and tag = pcx lsr pshift in
       (match F.Btb.lookup_at pivot ~set ~tag with
       | Some target when target = i.target -> ()
       | Some _ | None ->
           let row = pivot_cells.(sec) in
           row.(!cur) <- row.(!cur) +. 1.0);
       F.Btb.insert_at pivot ~set ~tag ~target:i.target
     end);
    for c = 0 to nc - 1 do
      feed_one
        (Array.unsafe_get canaries c)
        ~mask:(Array.unsafe_get cmask c)
        ~shift:(Array.unsafe_get cshift c)
        i pcx
        (fun () ->
          let row = canary_cells.((c * cells) + sec) in
          row.(!cur) <- row.(!cur) +. 1.0)
    done
  in
  (* Pass A — prefix: every config plus the pivot and canaries. *)
  let feed_prefix (i : Inst.t) =
    let pcx = i.addr lsr 1 in
    let sec = section_bit i in
    feed_pivot_and_canaries i pcx sec;
    for k = 0 to n - 1 do
      feed_one
        (Array.unsafe_get btbs k)
        ~mask:(Array.unsafe_get kmask k)
        ~shift:(Array.unsafe_get kshift k)
        i pcx
        (fun () ->
          let j = (k * cells) + sec in
          miss.(j) <- miss.(j) + 1;
          let row = prefix_cells.(j) in
          row.(!cur) <- row.(!cur) +. 1.0)
    done
  in
  for r = 0 to p - 1 do
    cur := r;
    Repro_isa.Packed_trace.replay_redirects_range pt
      ~lo:regions.(r).Regions.lo ~hi:regions.(r).Regions.hi feed_prefix
  done;
  (* Pass B — tail: pivot and canaries only. *)
  let feed_tail_pivot (i : Inst.t) =
    let pcx = i.addr lsr 1 in
    let sec = section_bit i in
    feed_pivot_and_canaries i pcx sec
  in
  for r = p to nr - 1 do
    cur := r;
    Repro_isa.Packed_trace.replay_redirects_range pt
      ~lo:regions.(r).Regions.lo ~hi:regions.(r).Regions.hi feed_tail_pivot
  done;
  (* Gate, then exact tail for escalated configs: their BTB state
     carries over from the prefix, so escalation is bit-exact. *)
  let serial, parallel = Repro_isa.Packed_trace.counted pt in
  let insts_sc = [| serial; parallel |] in
  let tol = Regions.default_tol in
  (* Canary calibration per cell: each canary's extrapolation is
     checked against its known full-trace total, and the gate charges
     every config the worst canary error as a floor plus the canaries'
     error-per-deviation price for more erratic configs. A canary
     that cannot calibrate (prefix too short) poisons the cell and
     every config escalates. *)
  let cell_model =
    Array.init cells (fun cell ->
        let model = ref (Some (0.0, 0.0)) in
        for c = 0 to nc - 1 do
          match
            ( !model,
              Regions.Cell.calibrate ~plan ~pivot:pivot_cells.(cell)
                ~actual:canary_cells.((c * cells) + cell) )
          with
          | Some (ef, es), Some (e, d) ->
              model :=
                Some (Float.max ef e, Float.max es (e /. Float.max d 1.0))
          | _, None | None, _ -> model := None
        done;
        !model)
  in
  let approx = Array.make n None in
  let escalate = Array.make n false in
  for k = 0 to n - 1 do
    let e_miss = Array.make cells 0.0 and ci = Array.make cells 0.0 in
    let ok = ref true in
    for cell = 0 to cells - 1 do
      if !ok then begin
        let floor = float_of_int insts_sc.(cell) /. 1000.0 in
        match cell_model.(cell) with
        | None -> ok := false
        | Some (err_floor, err_scale) ->
        match
          Regions.Cell.gate ~plan ~tol ~floor ~err_floor ~err_scale
            ~pivot:pivot_cells.(cell)
            ~prefix:prefix_cells.((k * cells) + cell)
        with
        | Regions.Cell.Exact ->
            e_miss.(cell) <- float_of_int miss.((k * cells) + cell)
        | Regions.Cell.Approx { est; ci = c } ->
            e_miss.(cell) <- est;
            ci.(cell) <- c
        | Regions.Cell.Escalate -> ok := false
      end
    done;
    if !ok then approx.(k) <- Some { e_miss; ci } else escalate.(k) <- true
  done;
  if Array.exists (fun b -> b) escalate then begin
    let feed_tail (i : Inst.t) =
      let pcx = i.addr lsr 1 in
      let sec = section_bit i in
      for k = 0 to n - 1 do
        if Array.unsafe_get escalate k then
          feed_one
            (Array.unsafe_get btbs k)
            ~mask:(Array.unsafe_get kmask k)
            ~shift:(Array.unsafe_get kshift k)
            i pcx
            (fun () ->
              let j = (k * cells) + sec in
              miss.(j) <- miss.(j) + 1)
      done
    in
    Repro_isa.Packed_trace.replay_redirects_range pt
      ~lo:plan.Regions.prefix_end ~hi:(Regions.total_insts plan) feed_tail
  end;
  let taken_s =
    Array.fold_left (fun a r -> a + r.Regions.redirects_s) 0 regions
  and taken_p =
    Array.fold_left (fun a r -> a + r.Regions.redirects_p) 0 regions
  in
  Array.mapi
    (fun k (entries, assoc) ->
      { entries;
        assoc;
        insts_s = serial;
        insts_p = parallel;
        taken_s;
        taken_p;
        miss = Array.sub miss (k * cells) cells;
        approx = approx.(k) })
    configs

let rec run src configs =
  match src with
  | Tool.Source.Sampled (pt, plan) ->
      if Regions.exhaustive plan then run (Tool.Source.Packed pt) configs
      else run_sampled pt plan configs
  | Tool.Source.Packed _ | Tool.Source.Stream _ -> run_exact src configs

and run_exact src configs =
  Repro_util.Telemetry.with_span "sweep.fused" @@ fun () ->
  let n = Array.length configs in
  let btbs =
    Array.map (fun (entries, assoc) -> F.Btb.create ~entries ~assoc) configs
  in
  (* All configs with the same set count decompose pc into the same
     (set, tag) pair; compute it once per distinct geometry. *)
  let geos = ref [] in
  let geo =
    Array.map
      (fun b ->
        let sets = F.Btb.sets b in
        match List.assoc_opt sets !geos with
        | Some g -> g
        | None ->
            let g = List.length !geos in
            geos := (sets, g) :: !geos;
            g)
      btbs
  in
  let ngeo = List.length !geos in
  let geo_mask = Array.make ngeo 0 and geo_shift = Array.make ngeo 0 in
  List.iter
    (fun (sets, g) ->
      geo_mask.(g) <- sets - 1;
      geo_shift.(g) <- Repro_util.Units.log2 sets)
    !geos;
  let gset = Array.make ngeo 0 and gtag = Array.make ngeo 0 in
  let miss = Array.make (n * cells) 0 in
  let insts_s = ref 0 and insts_p = ref 0 in
  let taken_s = ref 0 and taken_p = ref 0 in
  (* One fetch redirect (taken non-syscall/non-return branch), all
     configs. Mirrors [Btb_sim.feed_redirect]. *)
  let feed_redirect (i : Inst.t) =
    let pcx = i.addr lsr 1 in
    for g = 0 to ngeo - 1 do
      Array.unsafe_set gset g (pcx land Array.unsafe_get geo_mask g);
      Array.unsafe_set gtag g (pcx lsr Array.unsafe_get geo_shift g)
    done;
    if i.warmup then
      for k = 0 to n - 1 do
        let g = Array.unsafe_get geo k in
        F.Btb.insert_at
          (Array.unsafe_get btbs k)
          ~set:(Array.unsafe_get gset g) ~tag:(Array.unsafe_get gtag g)
          ~target:i.target
      done
    else begin
      let sec = section_bit i in
      (if sec = 0 then incr taken_s else incr taken_p);
      for k = 0 to n - 1 do
        let g = Array.unsafe_get geo k in
        let set = Array.unsafe_get gset g and tag = Array.unsafe_get gtag g in
        let b = Array.unsafe_get btbs k in
        (match F.Btb.lookup_at b ~set ~tag with
        | Some target when target = i.target -> ()
        | Some _ | None ->
            let j = (k * cells) + sec in
            Array.unsafe_set miss j (Array.unsafe_get miss j + 1));
        F.Btb.insert_at b ~set ~tag ~target:i.target
      done
    end
  in
  (match src with
  | Tool.Source.Packed pt ->
      let serial, parallel = Repro_isa.Packed_trace.counted pt in
      insts_s := serial;
      insts_p := parallel;
      Repro_isa.Packed_trace.replay_redirects pt feed_redirect
  | Tool.Source.Stream _ ->
      Tool.run_all_source src
        [ (fun (i : Inst.t) ->
            let redirect =
              i.taken && Inst.is_branch i && i.kind <> Inst.Syscall
              && i.kind <> Inst.Return
            in
            if i.warmup then begin
              if redirect then feed_redirect i
            end
            else begin
              (if section_bit i = 0 then incr insts_s else incr insts_p);
              if redirect then feed_redirect i
            end) ]
  | Tool.Source.Sampled _ -> assert false (* dispatched in [run] *));
  Array.mapi
    (fun k (entries, assoc) ->
      { entries;
        assoc;
        insts_s = !insts_s;
        insts_p = !insts_p;
        taken_s = !taken_s;
        taken_p = !taken_p;
        miss = Array.sub miss (k * cells) cells;
        approx = None })
    configs

let entries t = t.entries
let assoc t = t.assoc

let scope_pair s p = function
  | Branch_mix.Total -> s + p
  | Branch_mix.Only Repro_isa.Section.Serial -> s
  | Branch_mix.Only Repro_isa.Section.Parallel -> p

let scope_pair_f s p = function
  | Branch_mix.Total -> s +. p
  | Branch_mix.Only Repro_isa.Section.Serial -> s
  | Branch_mix.Only Repro_isa.Section.Parallel -> p

let insts t scope = scope_pair t.insts_s t.insts_p scope
let taken_branches t scope = scope_pair t.taken_s t.taken_p scope

let misses_f t scope =
  match t.approx with
  | None -> float_of_int (scope_pair t.miss.(0) t.miss.(1) scope)
  | Some a -> scope_pair_f a.e_miss.(0) a.e_miss.(1) scope

let approx t = t.approx <> None

let misses t scope =
  match t.approx with
  | None -> scope_pair t.miss.(0) t.miss.(1) scope
  | Some _ -> int_of_float (Float.round (misses_f t scope))

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan else misses_f t scope /. (float_of_int n /. 1000.0)

let miss_rate t scope =
  let n = taken_branches t scope in
  if n = 0 then nan else misses_f t scope /. float_of_int n

let mpki_ci t scope =
  match t.approx with
  | None -> 0.0
  | Some a ->
      let n = insts t scope in
      if n = 0 then 0.0
      else scope_pair_f a.ci.(0) a.ci.(1) scope /. (float_of_int n /. 1000.0)
