module Inst = Repro_isa.Inst
module F = Repro_frontend

(* Miss matrix layout: config-major, 2 cells per config — the
   section (serial = 0, parallel = 1). *)
let cells = 2

type t = {
  entries : int;
  assoc : int;
  insts_s : int;
  insts_p : int;
  taken_s : int;
  taken_p : int;
  miss : int array; (* the 2 cells of this config *)
}

let section_bit (i : Inst.t) =
  match i.section with Repro_isa.Section.Serial -> 0 | Repro_isa.Section.Parallel -> 1

let run src configs =
  Repro_util.Telemetry.with_span "sweep.fused" @@ fun () ->
  let n = Array.length configs in
  let btbs =
    Array.map (fun (entries, assoc) -> F.Btb.create ~entries ~assoc) configs
  in
  (* All configs with the same set count decompose pc into the same
     (set, tag) pair; compute it once per distinct geometry. *)
  let geos = ref [] in
  let geo =
    Array.map
      (fun b ->
        let sets = F.Btb.sets b in
        match List.assoc_opt sets !geos with
        | Some g -> g
        | None ->
            let g = List.length !geos in
            geos := (sets, g) :: !geos;
            g)
      btbs
  in
  let ngeo = List.length !geos in
  let geo_mask = Array.make ngeo 0 and geo_shift = Array.make ngeo 0 in
  List.iter
    (fun (sets, g) ->
      geo_mask.(g) <- sets - 1;
      geo_shift.(g) <- Repro_util.Units.log2 sets)
    !geos;
  let gset = Array.make ngeo 0 and gtag = Array.make ngeo 0 in
  let miss = Array.make (n * cells) 0 in
  let insts_s = ref 0 and insts_p = ref 0 in
  let taken_s = ref 0 and taken_p = ref 0 in
  (* One fetch redirect (taken non-syscall/non-return branch), all
     configs. Mirrors [Btb_sim.feed_redirect]. *)
  let feed_redirect (i : Inst.t) =
    let pcx = i.addr lsr 1 in
    for g = 0 to ngeo - 1 do
      Array.unsafe_set gset g (pcx land Array.unsafe_get geo_mask g);
      Array.unsafe_set gtag g (pcx lsr Array.unsafe_get geo_shift g)
    done;
    if i.warmup then
      for k = 0 to n - 1 do
        let g = Array.unsafe_get geo k in
        F.Btb.insert_at
          (Array.unsafe_get btbs k)
          ~set:(Array.unsafe_get gset g) ~tag:(Array.unsafe_get gtag g)
          ~target:i.target
      done
    else begin
      let sec = section_bit i in
      (if sec = 0 then incr taken_s else incr taken_p);
      for k = 0 to n - 1 do
        let g = Array.unsafe_get geo k in
        let set = Array.unsafe_get gset g and tag = Array.unsafe_get gtag g in
        let b = Array.unsafe_get btbs k in
        (match F.Btb.lookup_at b ~set ~tag with
        | Some target when target = i.target -> ()
        | Some _ | None ->
            let j = (k * cells) + sec in
            Array.unsafe_set miss j (Array.unsafe_get miss j + 1));
        F.Btb.insert_at b ~set ~tag ~target:i.target
      done
    end
  in
  (match src with
  | Tool.Source.Packed pt ->
      let serial, parallel = Repro_isa.Packed_trace.counted pt in
      insts_s := serial;
      insts_p := parallel;
      Repro_isa.Packed_trace.replay_redirects pt feed_redirect
  | Tool.Source.Stream _ ->
      Tool.run_all_source src
        [ (fun (i : Inst.t) ->
            let redirect =
              i.taken && Inst.is_branch i && i.kind <> Inst.Syscall
              && i.kind <> Inst.Return
            in
            if i.warmup then begin
              if redirect then feed_redirect i
            end
            else begin
              (if section_bit i = 0 then incr insts_s else incr insts_p);
              if redirect then feed_redirect i
            end) ]);
  Array.mapi
    (fun k (entries, assoc) ->
      { entries;
        assoc;
        insts_s = !insts_s;
        insts_p = !insts_p;
        taken_s = !taken_s;
        taken_p = !taken_p;
        miss = Array.sub miss (k * cells) cells })
    configs

let entries t = t.entries
let assoc t = t.assoc

let scope_pair s p = function
  | Branch_mix.Total -> s + p
  | Branch_mix.Only Repro_isa.Section.Serial -> s
  | Branch_mix.Only Repro_isa.Section.Parallel -> p

let insts t scope = scope_pair t.insts_s t.insts_p scope
let taken_branches t scope = scope_pair t.taken_s t.taken_p scope
let misses t scope = scope_pair t.miss.(0) t.miss.(1) scope

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan
  else float_of_int (misses t scope) /. (float_of_int n /. 1000.0)

let miss_rate t scope =
  let n = taken_branches t scope in
  if n = 0 then nan else float_of_int (misses t scope) /. float_of_int n
