module Inst = Repro_isa.Inst

type cause = On_not_taken | On_taken_backward | On_taken_forward

let causes = [ On_not_taken; On_taken_backward; On_taken_forward ]

let cause_to_string = function
  | On_not_taken -> "not taken"
  | On_taken_backward -> "taken backward"
  | On_taken_forward -> "taken forward"

type static = Always_taken | Always_not_taken | Btfn

(* Either a stateful packed predictor (keyed by pc) or a static scheme
   that reads the decoded instruction. *)
type engine =
  | Packed of Repro_frontend.Predictor.t
  | Static of static

type t = {
  engine : engine;
  insts : Tool.Split.t;
  conds : Tool.Split.t;
  miss_nt : Tool.Split.t;
  miss_tb : Tool.Split.t;
  miss_tf : Tool.Split.t;
}

let make engine =
  { engine;
    insts = Tool.Split.create ();
    conds = Tool.Split.create ();
    miss_nt = Tool.Split.create ();
    miss_tb = Tool.Split.create ();
    miss_tf = Tool.Split.create () }

let create predictor = make (Packed predictor)
let create_static s = make (Static s)

let engine_predict t (i : Inst.t) =
  match t.engine with
  | Packed p -> p.Repro_frontend.Predictor.predict i.addr
  | Static Always_taken -> true
  | Static Always_not_taken -> false
  | Static Btfn -> i.target < i.addr

let engine_update t (i : Inst.t) =
  match t.engine with
  | Packed p -> p.Repro_frontend.Predictor.update i.addr i.taken
  | Static _ -> ()

let feed t (i : Inst.t) =
  if i.warmup then begin
    (* Warmup trains predictor state but is excluded from statistics. *)
    if i.kind = Inst.Cond_branch then engine_update t i
  end
  else begin
    let s = i.section in
    Tool.Split.incr t.insts s;
    if i.kind = Inst.Cond_branch then begin
      Tool.Split.incr t.conds s;
      let pred = engine_predict t i in
      if pred <> i.taken then begin
        if not i.taken then Tool.Split.incr t.miss_nt s
        else if i.target < i.addr then Tool.Split.incr t.miss_tb s
        else Tool.Split.incr t.miss_tf s
      end;
      engine_update t i
    end
  end

let observer t = feed t

(* Packed fast path: everything [feed] does on a non-conditional,
   non-warmup instruction is bump the per-section instruction count,
   and warmup non-conditionals do nothing at all — so the exact
   per-section totals are absorbed in bulk and only the conditional
   branches are replayed. [feed_conditional] is [feed] minus the
   instruction count (already absorbed). *)
let feed_conditional t (i : Inst.t) =
  if i.warmup then engine_update t i
  else begin
    let s = i.section in
    Tool.Split.incr t.conds s;
    let pred = engine_predict t i in
    if pred <> i.taken then begin
      if not i.taken then Tool.Split.incr t.miss_nt s
      else if i.target < i.addr then Tool.Split.incr t.miss_tb s
      else Tool.Split.incr t.miss_tf s
    end;
    engine_update t i
  end

let run_packed pt sims =
  let serial, parallel = Repro_isa.Packed_trace.counted pt in
  List.iter
    (fun t ->
      Tool.Split.add t.insts Repro_isa.Section.Serial serial;
      Tool.Split.add t.insts Repro_isa.Section.Parallel parallel)
    sims;
  let arr = Array.of_list sims in
  Repro_isa.Packed_trace.replay_conditionals pt (fun i ->
      for k = 0 to Array.length arr - 1 do
        feed_conditional (Array.unsafe_get arr k) i
      done)

(* 6-cell layout for the sampled gate: cause-major, section minor
   (nt_s, nt_p, tb_s, tb_p, tf_s, tf_p). *)
let cell_split t = function
  | 0 | 1 -> t.miss_nt
  | 2 | 3 -> t.miss_tb
  | _ -> t.miss_tf

let cell_section c =
  if c land 1 = 0 then Repro_isa.Section.Serial else Repro_isa.Section.Parallel

let cell_value t c = Tool.Split.get (cell_split t c) (cell_section c)

(* Sampled run: simulate the plan's contiguous prefix (state inside
   it is exactly the full run's), then per sim either extrapolate the
   tail by per-cluster miss rate — the per-region conditional-branch
   mass stands in for a pivot configuration — or, when the gate finds
   the evidence too weak, simulate the tail exactly (the sim's state
   carries over, so the escalated result matches the full run). *)
let run_sampled pt plan sims =
  let regions = plan.Regions.regions in
  let nr = Array.length regions in
  let p = plan.Regions.prefix_regions in
  let arr = Array.of_list sims in
  let ns = Array.length arr in
  let serial, parallel = Repro_isa.Packed_trace.counted pt in
  List.iter
    (fun t ->
      Tool.Split.add t.insts Repro_isa.Section.Serial serial;
      Tool.Split.add t.insts Repro_isa.Section.Parallel parallel)
    sims;
  let cellsn = 6 in
  let prefix_cells = Array.init (ns * cellsn) (fun _ -> Array.make p 0.0) in
  let last = Array.make (ns * cellsn) 0 in
  let feed_all i =
    for k = 0 to ns - 1 do
      feed_conditional (Array.unsafe_get arr k) i
    done
  in
  for r = 0 to p - 1 do
    Repro_isa.Packed_trace.replay_conditionals_range pt
      ~lo:regions.(r).Regions.lo ~hi:regions.(r).Regions.hi feed_all;
    for k = 0 to ns - 1 do
      for c = 0 to cellsn - 1 do
        let j = (k * cellsn) + c in
        let v = cell_value arr.(k) c in
        prefix_cells.(j).(r) <- float_of_int (v - last.(j));
        last.(j) <- v
      done
    done
  done;
  let pivot_s =
    Array.map (fun r -> float_of_int r.Regions.conds_s) regions
  and pivot_p =
    Array.map (fun r -> float_of_int r.Regions.conds_p) regions
  in
  let tail_conds_s = ref 0 and tail_conds_p = ref 0 in
  for r = p to nr - 1 do
    tail_conds_s := !tail_conds_s + regions.(r).Regions.conds_s;
    tail_conds_p := !tail_conds_p + regions.(r).Regions.conds_p
  done;
  let tol = Regions.default_tol in
  let escalate = Array.make ns false in
  for k = 0 to ns - 1 do
    let t = arr.(k) in
    let est = Array.make cellsn 0.0 in
    let ok = ref true in
    for c = 0 to cellsn - 1 do
      if !ok then begin
        let sec_insts = if c land 1 = 0 then serial else parallel in
        let floor = float_of_int sec_insts /. 1000.0 in
        let pivot = if c land 1 = 0 then pivot_s else pivot_p in
        (* No canaries here to price extrapolation error, so
           [err_scale = infinity]: only deviation-zero cells (locked to
           the pivot shape) extrapolate; everything else escalates. *)
        match
          Regions.Cell.gate ~plan ~tol ~floor ~err_floor:0.0 ~err_scale:infinity
            ~pivot
            ~prefix:prefix_cells.((k * cellsn) + c)
        with
        | Regions.Cell.Exact -> est.(c) <- float_of_int (cell_value t c)
        | Regions.Cell.Approx { est = e; _ } -> est.(c) <- e
        | Regions.Cell.Escalate -> ok := false
      end
    done;
    if !ok then begin
      (* commit: counters become the rounded extrapolated totals *)
      for c = 0 to cellsn - 1 do
        let tail =
          int_of_float (Float.round (est.(c) -. float_of_int (cell_value t c)))
        in
        Tool.Split.add (cell_split t c) (cell_section c) (max 0 tail)
      done;
      Tool.Split.add t.conds Repro_isa.Section.Serial !tail_conds_s;
      Tool.Split.add t.conds Repro_isa.Section.Parallel !tail_conds_p
    end
    else escalate.(k) <- true
  done;
  if Array.exists (fun b -> b) escalate then
    Repro_isa.Packed_trace.replay_conditionals_range pt
      ~lo:plan.Regions.prefix_end ~hi:(Regions.total_insts plan) (fun i ->
        for k = 0 to ns - 1 do
          if Array.unsafe_get escalate k then
            feed_conditional (Array.unsafe_get arr k) i
        done)

let run_all src sims =
  match src with
  | Tool.Source.Stream _ -> Tool.run_all_source src (List.map observer sims)
  | Tool.Source.Packed pt -> run_packed pt sims
  | Tool.Source.Sampled (pt, plan) ->
      if Regions.exhaustive plan then run_packed pt sims
      else run_sampled pt plan sims

let predictor_name t =
  match t.engine with
  | Packed p -> p.Repro_frontend.Predictor.name
  | Static Always_taken -> "static-taken"
  | Static Always_not_taken -> "static-not-taken"
  | Static Btfn -> "static-btfn"

let scope_get split = function
  | Branch_mix.Total -> Tool.Split.total split
  | Branch_mix.Only s -> Tool.Split.get split s

let insts t scope = scope_get t.insts scope
let conditional_branches t scope = scope_get t.conds scope

let mispredictions t scope =
  scope_get t.miss_nt scope + scope_get t.miss_tb scope
  + scope_get t.miss_tf scope

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan
  else float_of_int (mispredictions t scope) /. (float_of_int n /. 1000.0)

let misprediction_rate t scope =
  let n = conditional_branches t scope in
  if n = 0 then nan
  else float_of_int (mispredictions t scope) /. float_of_int n

let mpki_by_cause t scope cause =
  let n = insts t scope in
  if n = 0 then nan
  else
    let split =
      match cause with
      | On_not_taken -> t.miss_nt
      | On_taken_backward -> t.miss_tb
      | On_taken_forward -> t.miss_tf
    in
    float_of_int (scope_get split scope) /. (float_of_int n /. 1000.0)
