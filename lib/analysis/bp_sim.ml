module Inst = Repro_isa.Inst

type cause = On_not_taken | On_taken_backward | On_taken_forward

let causes = [ On_not_taken; On_taken_backward; On_taken_forward ]

let cause_to_string = function
  | On_not_taken -> "not taken"
  | On_taken_backward -> "taken backward"
  | On_taken_forward -> "taken forward"

type static = Always_taken | Always_not_taken | Btfn

(* Either a stateful packed predictor (keyed by pc) or a static scheme
   that reads the decoded instruction. *)
type engine =
  | Packed of Repro_frontend.Predictor.t
  | Static of static

type t = {
  engine : engine;
  insts : Tool.Split.t;
  conds : Tool.Split.t;
  miss_nt : Tool.Split.t;
  miss_tb : Tool.Split.t;
  miss_tf : Tool.Split.t;
}

let make engine =
  { engine;
    insts = Tool.Split.create ();
    conds = Tool.Split.create ();
    miss_nt = Tool.Split.create ();
    miss_tb = Tool.Split.create ();
    miss_tf = Tool.Split.create () }

let create predictor = make (Packed predictor)
let create_static s = make (Static s)

let engine_predict t (i : Inst.t) =
  match t.engine with
  | Packed p -> p.Repro_frontend.Predictor.predict i.addr
  | Static Always_taken -> true
  | Static Always_not_taken -> false
  | Static Btfn -> i.target < i.addr

let engine_update t (i : Inst.t) =
  match t.engine with
  | Packed p -> p.Repro_frontend.Predictor.update i.addr i.taken
  | Static _ -> ()

let feed t (i : Inst.t) =
  if i.warmup then begin
    (* Warmup trains predictor state but is excluded from statistics. *)
    if i.kind = Inst.Cond_branch then engine_update t i
  end
  else begin
    let s = i.section in
    Tool.Split.incr t.insts s;
    if i.kind = Inst.Cond_branch then begin
      Tool.Split.incr t.conds s;
      let pred = engine_predict t i in
      if pred <> i.taken then begin
        if not i.taken then Tool.Split.incr t.miss_nt s
        else if i.target < i.addr then Tool.Split.incr t.miss_tb s
        else Tool.Split.incr t.miss_tf s
      end;
      engine_update t i
    end
  end

let observer t = feed t

(* Packed fast path: everything [feed] does on a non-conditional,
   non-warmup instruction is bump the per-section instruction count,
   and warmup non-conditionals do nothing at all — so the exact
   per-section totals are absorbed in bulk and only the conditional
   branches are replayed. [feed_conditional] is [feed] minus the
   instruction count (already absorbed). *)
let feed_conditional t (i : Inst.t) =
  if i.warmup then engine_update t i
  else begin
    let s = i.section in
    Tool.Split.incr t.conds s;
    let pred = engine_predict t i in
    if pred <> i.taken then begin
      if not i.taken then Tool.Split.incr t.miss_nt s
      else if i.target < i.addr then Tool.Split.incr t.miss_tb s
      else Tool.Split.incr t.miss_tf s
    end;
    engine_update t i
  end

let run_all src sims =
  match src with
  | Tool.Source.Stream _ -> Tool.run_all_source src (List.map observer sims)
  | Tool.Source.Packed pt ->
      let serial, parallel = Repro_isa.Packed_trace.counted pt in
      List.iter
        (fun t ->
          Tool.Split.add t.insts Repro_isa.Section.Serial serial;
          Tool.Split.add t.insts Repro_isa.Section.Parallel parallel)
        sims;
      let arr = Array.of_list sims in
      Repro_isa.Packed_trace.replay_conditionals pt (fun i ->
          for k = 0 to Array.length arr - 1 do
            feed_conditional (Array.unsafe_get arr k) i
          done)

let predictor_name t =
  match t.engine with
  | Packed p -> p.Repro_frontend.Predictor.name
  | Static Always_taken -> "static-taken"
  | Static Always_not_taken -> "static-not-taken"
  | Static Btfn -> "static-btfn"

let scope_get split = function
  | Branch_mix.Total -> Tool.Split.total split
  | Branch_mix.Only s -> Tool.Split.get split s

let insts t scope = scope_get t.insts scope
let conditional_branches t scope = scope_get t.conds scope

let mispredictions t scope =
  scope_get t.miss_nt scope + scope_get t.miss_tb scope
  + scope_get t.miss_tf scope

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan
  else float_of_int (mispredictions t scope) /. (float_of_int n /. 1000.0)

let misprediction_rate t scope =
  let n = conditional_branches t scope in
  if n = 0 then nan
  else float_of_int (mispredictions t scope) /. float_of_int n

let mpki_by_cause t scope cause =
  let n = insts t scope in
  if n = 0 then nan
  else
    let split =
      match cause with
      | On_not_taken -> t.miss_nt
      | On_taken_backward -> t.miss_tb
      | On_taken_forward -> t.miss_tf
    in
    float_of_int (scope_get split scope) /. (float_of_int n /. 1000.0)
