(** Branch-target-buffer simulation (paper Fig. 7).

    Every taken branch looks its own address up in the BTB; a miss —
    either absent or present with a stale target, as happens for
    indirect branches — costs a fetch redirect and counts toward BTB
    MPKI. Taken branches (re)install their target. Syscalls are
    excluded (traps do not use the BTB), and so are returns: a return
    address stack predicts them, and in a single-threaded trace the
    RAS is exact. *)

type t

val create : entries:int -> assoc:int -> t
val feed : t -> Repro_isa.Inst.t -> unit
val observer : t -> Repro_isa.Inst.t -> unit

val run_all : Tool.Source.t -> t list -> unit
(** Drive every sim over the source in one pass. On a packed capture
    only the fetch-redirect slice of the stream is replayed and the
    instruction totals are absorbed in bulk; results are identical
    to streaming. *)

val insts : t -> Branch_mix.scope -> int
val taken_branches : t -> Branch_mix.scope -> int
val misses : t -> Branch_mix.scope -> int
val mpki : t -> Branch_mix.scope -> float
val miss_rate : t -> Branch_mix.scope -> float
