module Inst = Repro_isa.Inst

type t = {
  btb : Repro_frontend.Btb.t;
  insts : Tool.Split.t;
  taken : Tool.Split.t;
  misses : Tool.Split.t;
}

let create ~entries ~assoc =
  { btb = Repro_frontend.Btb.create ~entries ~assoc;
    insts = Tool.Split.create ();
    taken = Tool.Split.create ();
    misses = Tool.Split.create () }

let feed t (i : Inst.t) =
  if i.warmup then begin
    if i.taken && Inst.is_branch i && i.kind <> Inst.Syscall
       && i.kind <> Inst.Return then
      Repro_frontend.Btb.insert t.btb ~pc:i.addr ~target:i.target
  end
  else begin
    let s = i.section in
    Tool.Split.incr t.insts s;
    if i.taken && Inst.is_branch i && i.kind <> Inst.Syscall
       && i.kind <> Inst.Return then begin
      Tool.Split.incr t.taken s;
      (match Repro_frontend.Btb.lookup t.btb ~pc:i.addr with
      | Some target when target = i.target -> ()
      | Some _ | None -> Tool.Split.incr t.misses s);
      Repro_frontend.Btb.insert t.btb ~pc:i.addr ~target:i.target
    end
  end

let observer t = feed t

(* Packed fast path: only taken non-syscall/non-return branches touch
   the BTB (exactly the packed trace's redirect index); per-section
   instruction totals are absorbed in bulk. *)
let feed_redirect t (i : Inst.t) =
  if i.warmup then Repro_frontend.Btb.insert t.btb ~pc:i.addr ~target:i.target
  else begin
    let s = i.section in
    Tool.Split.incr t.taken s;
    (match Repro_frontend.Btb.lookup t.btb ~pc:i.addr with
    | Some target when target = i.target -> ()
    | Some _ | None -> Tool.Split.incr t.misses s);
    Repro_frontend.Btb.insert t.btb ~pc:i.addr ~target:i.target
  end

let run_all src sims =
  match src with
  | Tool.Source.Stream _ -> Tool.run_all_source src (List.map observer sims)
  | Tool.Source.Packed pt ->
      let serial, parallel = Repro_isa.Packed_trace.counted pt in
      List.iter
        (fun t ->
          Tool.Split.add t.insts Repro_isa.Section.Serial serial;
          Tool.Split.add t.insts Repro_isa.Section.Parallel parallel)
        sims;
      let arr = Array.of_list sims in
      Repro_isa.Packed_trace.replay_redirects pt (fun i ->
          for k = 0 to Array.length arr - 1 do
            feed_redirect (Array.unsafe_get arr k) i
          done)

let scope_get split = function
  | Branch_mix.Total -> Tool.Split.total split
  | Branch_mix.Only s -> Tool.Split.get split s

let insts t scope = scope_get t.insts scope
let taken_branches t scope = scope_get t.taken scope
let misses t scope = scope_get t.misses scope

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan
  else float_of_int (misses t scope) /. (float_of_int n /. 1000.0)

let miss_rate t scope =
  let n = taken_branches t scope in
  if n = 0 then nan else float_of_int (misses t scope) /. float_of_int n
