module Inst = Repro_isa.Inst

type t = {
  btb : Repro_frontend.Btb.t;
  insts : Tool.Split.t;
  taken : Tool.Split.t;
  misses : Tool.Split.t;
}

let create ~entries ~assoc =
  { btb = Repro_frontend.Btb.create ~entries ~assoc;
    insts = Tool.Split.create ();
    taken = Tool.Split.create ();
    misses = Tool.Split.create () }

let feed t (i : Inst.t) =
  if i.warmup then begin
    if i.taken && Inst.is_branch i && i.kind <> Inst.Syscall
       && i.kind <> Inst.Return then
      Repro_frontend.Btb.insert t.btb ~pc:i.addr ~target:i.target
  end
  else begin
    let s = i.section in
    Tool.Split.incr t.insts s;
    if i.taken && Inst.is_branch i && i.kind <> Inst.Syscall
       && i.kind <> Inst.Return then begin
      Tool.Split.incr t.taken s;
      (match Repro_frontend.Btb.lookup t.btb ~pc:i.addr with
      | Some target when target = i.target -> ()
      | Some _ | None -> Tool.Split.incr t.misses s);
      Repro_frontend.Btb.insert t.btb ~pc:i.addr ~target:i.target
    end
  end

let observer t = feed t

(* Packed fast path: only taken non-syscall/non-return branches touch
   the BTB (exactly the packed trace's redirect index); per-section
   instruction totals are absorbed in bulk. *)
let feed_redirect t (i : Inst.t) =
  if i.warmup then Repro_frontend.Btb.insert t.btb ~pc:i.addr ~target:i.target
  else begin
    let s = i.section in
    Tool.Split.incr t.taken s;
    (match Repro_frontend.Btb.lookup t.btb ~pc:i.addr with
    | Some target when target = i.target -> ()
    | Some _ | None -> Tool.Split.incr t.misses s);
    Repro_frontend.Btb.insert t.btb ~pc:i.addr ~target:i.target
  end

let run_packed pt sims =
  let serial, parallel = Repro_isa.Packed_trace.counted pt in
  List.iter
    (fun t ->
      Tool.Split.add t.insts Repro_isa.Section.Serial serial;
      Tool.Split.add t.insts Repro_isa.Section.Parallel parallel)
    sims;
  let arr = Array.of_list sims in
  Repro_isa.Packed_trace.replay_redirects pt (fun i ->
      for k = 0 to Array.length arr - 1 do
        feed_redirect (Array.unsafe_get arr k) i
      done)

(* Sampled run: exact prefix, then per sim either a per-cluster
   miss-rate extrapolation of the tail (per-region fetch-redirect
   mass as the pivot) or exact tail simulation when the gate refuses
   — see [Bp_sim.run_sampled] for the shape. *)
let run_sampled pt plan sims =
  let regions = plan.Regions.regions in
  let nr = Array.length regions in
  let p = plan.Regions.prefix_regions in
  let arr = Array.of_list sims in
  let ns = Array.length arr in
  let serial, parallel = Repro_isa.Packed_trace.counted pt in
  List.iter
    (fun t ->
      Tool.Split.add t.insts Repro_isa.Section.Serial serial;
      Tool.Split.add t.insts Repro_isa.Section.Parallel parallel)
    sims;
  let cellsn = 2 in
  let section_of c =
    if c = 0 then Repro_isa.Section.Serial else Repro_isa.Section.Parallel
  in
  let prefix_cells = Array.init (ns * cellsn) (fun _ -> Array.make p 0.0) in
  let last = Array.make (ns * cellsn) 0 in
  let feed_all i =
    for k = 0 to ns - 1 do
      feed_redirect (Array.unsafe_get arr k) i
    done
  in
  for r = 0 to p - 1 do
    Repro_isa.Packed_trace.replay_redirects_range pt
      ~lo:regions.(r).Regions.lo ~hi:regions.(r).Regions.hi feed_all;
    for k = 0 to ns - 1 do
      for c = 0 to cellsn - 1 do
        let j = (k * cellsn) + c in
        let v = Tool.Split.get arr.(k).misses (section_of c) in
        prefix_cells.(j).(r) <- float_of_int (v - last.(j));
        last.(j) <- v
      done
    done
  done;
  let pivot_s =
    Array.map (fun r -> float_of_int r.Regions.redirects_s) regions
  and pivot_p =
    Array.map (fun r -> float_of_int r.Regions.redirects_p) regions
  in
  let tail_taken_s = ref 0 and tail_taken_p = ref 0 in
  for r = p to nr - 1 do
    tail_taken_s := !tail_taken_s + regions.(r).Regions.redirects_s;
    tail_taken_p := !tail_taken_p + regions.(r).Regions.redirects_p
  done;
  let tol = Regions.default_tol in
  let escalate = Array.make ns false in
  for k = 0 to ns - 1 do
    let t = arr.(k) in
    let est = Array.make cellsn 0.0 in
    let ok = ref true in
    for c = 0 to cellsn - 1 do
      if !ok then begin
        let sec_insts = if c = 0 then serial else parallel in
        let floor = float_of_int sec_insts /. 1000.0 in
        let pivot = if c = 0 then pivot_s else pivot_p in
        (* No canaries here to price extrapolation error, so
           [err_scale = infinity]: only deviation-zero cells (locked to
           the pivot shape) extrapolate; everything else escalates. *)
        match
          Regions.Cell.gate ~plan ~tol ~floor ~err_floor:0.0 ~err_scale:infinity
            ~pivot
            ~prefix:prefix_cells.((k * cellsn) + c)
        with
        | Regions.Cell.Exact ->
            est.(c) <- float_of_int (Tool.Split.get t.misses (section_of c))
        | Regions.Cell.Approx { est = e; _ } -> est.(c) <- e
        | Regions.Cell.Escalate -> ok := false
      end
    done;
    if !ok then begin
      for c = 0 to cellsn - 1 do
        let prefix = Tool.Split.get t.misses (section_of c) in
        let tail = int_of_float (Float.round (est.(c) -. float_of_int prefix)) in
        Tool.Split.add t.misses (section_of c) (max 0 tail)
      done;
      Tool.Split.add t.taken Repro_isa.Section.Serial !tail_taken_s;
      Tool.Split.add t.taken Repro_isa.Section.Parallel !tail_taken_p
    end
    else escalate.(k) <- true
  done;
  if Array.exists (fun b -> b) escalate then
    Repro_isa.Packed_trace.replay_redirects_range pt
      ~lo:plan.Regions.prefix_end ~hi:(Regions.total_insts plan) (fun i ->
        for k = 0 to ns - 1 do
          if Array.unsafe_get escalate k then
            feed_redirect (Array.unsafe_get arr k) i
        done)

let run_all src sims =
  match src with
  | Tool.Source.Stream _ -> Tool.run_all_source src (List.map observer sims)
  | Tool.Source.Packed pt -> run_packed pt sims
  | Tool.Source.Sampled (pt, plan) ->
      if Regions.exhaustive plan then run_packed pt sims
      else run_sampled pt plan sims

let scope_get split = function
  | Branch_mix.Total -> Tool.Split.total split
  | Branch_mix.Only s -> Tool.Split.get split s

let insts t scope = scope_get t.insts scope
let taken_branches t scope = scope_get t.taken scope
let misses t scope = scope_get t.misses scope

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan
  else float_of_int (misses t scope) /. (float_of_int n /. 1000.0)

let miss_rate t scope =
  let n = taken_branches t scope in
  if n = 0 then nan else float_of_int (misses t scope) /. float_of_int n
