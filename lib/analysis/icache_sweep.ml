module Inst = Repro_isa.Inst
module F = Repro_frontend

(* Miss matrix layout: config-major, 2 cells per config — the
   section (serial = 0, parallel = 1). *)
let cells = 2

type t = {
  cache : F.Icache.t;
  insts_s : int;
  insts_p : int;
  miss : int array; (* the 2 cells of this config *)
}

(* One line-size group: the access-vs-extract decision and the
   current-fetch-line register depend only on the instruction stream
   and the line size, never on cache contents, so both are shared by
   every configuration with this line size.

   Same-line extraction is batched: while a fetch run stays inside
   one line, nothing touches any member cache, so the per-instruction
   granule masks are OR-accumulated into [pending] (one operation for
   the whole group) and applied to each member only when the run ends
   — at the next access, a warmup instruction, or the end of the
   stream. The cache state each individual [consume] would have seen
   is exactly the state at flush time, so the deferred bulk or is
   bit-identical to per-instruction consumes. *)
type group = {
  line_shift : int;
  line_mask : int; (* line_bytes - 1 *)
  members : int array; (* config indices *)
  mutable last_line : int; (* line currently being consumed; -1 = none *)
  mutable pending : int; (* granules consumed from [pending_line], unapplied *)
  mutable pending_line : int;
}

let section_bit (i : Inst.t) =
  match i.section with Repro_isa.Section.Serial -> 0 | Repro_isa.Section.Parallel -> 1

let run ?next_line_prefetch src configs =
  Repro_util.Telemetry.with_span "sweep.fused" @@ fun () ->
  let n = Array.length configs in
  let caches =
    Array.map
      (fun (size_bytes, line_bytes, assoc) ->
        F.Icache.create ?next_line_prefetch ~size_bytes ~line_bytes ~assoc ())
      configs
  in
  let groups =
    let distinct = ref [] in
    Array.iter
      (fun (_, line_bytes, _) ->
        if not (List.mem line_bytes !distinct) then
          distinct := line_bytes :: !distinct)
      configs;
    List.rev !distinct
    |> List.map (fun line_bytes ->
           let members = ref [] in
           Array.iteri
             (fun k (_, lb, _) -> if lb = line_bytes then members := k :: !members)
             configs;
           { line_shift = Repro_util.Units.log2 line_bytes;
             line_mask = line_bytes - 1;
             members = Array.of_list (List.rev !members);
             last_line = -1;
             pending = 0;
             pending_line = -1 })
    |> Array.of_list
  in
  let ngroups = Array.length groups in
  let miss = Array.make (n * cells) 0 in
  let insts_s = ref 0 and insts_p = ref 0 in
  let flush grp =
    if grp.pending <> 0 then begin
      let members = grp.members in
      for m = 0 to Array.length members - 1 do
        F.Icache.consume_line
          (Array.unsafe_get caches (Array.unsafe_get members m))
          ~line:grp.pending_line ~gmask:grp.pending
      done;
      grp.pending <- 0
    end
  in
  (* Granule mask of the instruction's bytes within its (single)
     line: a pure function of (addr, size, line size), computed once
     per group and valid for every member. Callers guarantee the span
     does not cross a line, so no clamp is needed. *)
  let group_gmask grp ~addr ~size =
    let offset = addr land grp.line_mask in
    let g0 = offset / 4 and g1 = (offset + size - 1) / 4 in
    ((1 lsl (g1 - g0 + 1)) - 1) lsl g0
  in
  let feed (i : Inst.t) =
    if i.warmup then begin
      (* Warm every cache without counting statistics. *)
      for g = 0 to ngroups - 1 do
        let grp = Array.unsafe_get groups g in
        flush grp;
        grp.last_line <- -1;
        let members = grp.members in
        let first = i.addr lsr grp.line_shift
        and last = (i.addr + i.size - 1) lsr grp.line_shift in
        if first = last then begin
          let gmask = group_gmask grp ~addr:i.addr ~size:i.size in
          for m = 0 to Array.length members - 1 do
            ignore
              (F.Icache.access_line
                 (Array.unsafe_get caches (Array.unsafe_get members m))
                 ~line:first ~gmask)
          done
        end
        else
          for m = 0 to Array.length members - 1 do
            ignore
              (F.Icache.access
                 (Array.unsafe_get caches (Array.unsafe_get members m))
                 ~addr:i.addr ~size:i.size)
          done
      done
    end
    else begin
      let sec = section_bit i in
      (if sec = 0 then incr insts_s else incr insts_p);
      for g = 0 to ngroups - 1 do
        let grp = Array.unsafe_get groups g in
        let first = i.addr lsr grp.line_shift
        and last = (i.addr + i.size - 1) lsr grp.line_shift in
        if first <> grp.last_line || last <> grp.last_line then begin
          (* New line for every cache in the group: settle the ended
             run, then access each. *)
          flush grp;
          let members = grp.members in
          if first = last then begin
            let gmask = group_gmask grp ~addr:i.addr ~size:i.size in
            for m = 0 to Array.length members - 1 do
              let k = Array.unsafe_get members m in
              if not
                   (F.Icache.access_line (Array.unsafe_get caches k)
                      ~line:first ~gmask)
              then begin
                let j = (k * cells) + sec in
                Array.unsafe_set miss j (Array.unsafe_get miss j + 1)
              end
            done
          end
          else
            for m = 0 to Array.length members - 1 do
              let k = Array.unsafe_get members m in
              if not
                   (F.Icache.access (Array.unsafe_get caches k) ~addr:i.addr
                      ~size:i.size)
              then begin
                let j = (k * cells) + sec in
                Array.unsafe_set miss j (Array.unsafe_get miss j + 1)
              end
            done
        end
        else begin
          (* Same line in every cache of the group: one or covers the
             whole group until the run ends. *)
          grp.pending <- grp.pending lor group_gmask grp ~addr:i.addr ~size:i.size;
          grp.pending_line <- first
        end;
        grp.last_line <- (if i.taken then -1 else last)
      done
    end
  in
  Tool.run_all_source src [ feed ];
  Array.iter flush groups;
  Array.mapi
    (fun k _ ->
      { cache = caches.(k);
        insts_s = !insts_s;
        insts_p = !insts_p;
        miss = Array.sub miss (k * cells) cells })
    configs

let cache t = t.cache

let scope_pair s p = function
  | Branch_mix.Total -> s + p
  | Branch_mix.Only Repro_isa.Section.Serial -> s
  | Branch_mix.Only Repro_isa.Section.Parallel -> p

let insts t scope = scope_pair t.insts_s t.insts_p scope
let misses t scope = scope_pair t.miss.(0) t.miss.(1) scope

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan
  else float_of_int (misses t scope) /. (float_of_int n /. 1000.0)

let accesses t = F.Icache.accesses t.cache
let usefulness t = F.Icache.usefulness t.cache
