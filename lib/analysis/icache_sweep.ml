module Inst = Repro_isa.Inst
module F = Repro_frontend

(* Miss matrix layout: config-major, 2 cells per config — the
   section (serial = 0, parallel = 1). *)
let cells = 2

(* Extrapolation overlay for a sampled run: estimated cell counts and
   95% confidence half-widths, same 2-cell layout as [miss]. Absent
   for exact results (unsampled runs and escalated configs). *)
type approx = { e_miss : float array; ci : float array }

type t = {
  cache : F.Icache.t;
  insts_s : int;
  insts_p : int;
  miss : int array; (* the 2 cells of this config *)
  approx : approx option;
}

(* A sweep point: geometry plus replacement policy. The policy never
   influences the access-vs-extract decision (that is stream + line
   size only), so mixed-policy sweeps share line-size groups. *)
type config = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  policy : F.Replacement.spec;
}

let cfg ?(policy = F.Replacement.Lru) (size_bytes, line_bytes, assoc) =
  { size_bytes; line_bytes; assoc; policy }

(* One line-size group: the access-vs-extract decision and the
   current-fetch-line register depend only on the instruction stream
   and the line size, never on cache contents, so both are shared by
   every configuration with this line size.

   Same-line extraction is batched: while a fetch run stays inside
   one line, nothing touches any member cache, so the per-instruction
   granule masks are OR-accumulated into [pending] (one operation for
   the whole group) and applied to each member only when the run ends
   — at the next access, a warmup instruction, or the end of the
   stream. The cache state each individual [consume] would have seen
   is exactly the state at flush time, so the deferred bulk or is
   bit-identical to per-instruction consumes. *)
type group = {
  line_shift : int;
  line_mask : int; (* line_bytes - 1 *)
  members : int array; (* config indices *)
  mutable last_line : int; (* line currently being consumed; -1 = none *)
  mutable pending : int; (* granules consumed from [pending_line], unapplied *)
  mutable pending_line : int;
}

let section_bit (i : Inst.t) =
  match i.section with Repro_isa.Section.Serial -> 0 | Repro_isa.Section.Parallel -> 1

(* The pivot cache simulates the full capture and anchors the
   extrapolation ratios; fixed so results never depend on which other
   configs are swept. The two canaries also cover the full capture,
   at the capacity/associativity extremes: {!Regions.Cell.calibrate}
   extrapolates each from its own prefix and compares against its
   known total, catching tail bias (capacity spread absent from the
   startup-heavy prefix) that the per-config statistical gate cannot
   see. Both keep the pivot's 64-byte lines so the anchor caches add
   no extra line-size group to the sampled passes — per-instruction
   group overhead, not cache-access work, dominates the batched
   feed. *)
let pivot_config = cfg (16 * 1024, 64, 2)
let canary_configs = [| cfg (8 * 1024, 64, 2); cfg (32 * 1024, 64, 8) |]

(* Shared group machinery: both the exact and the sampled paths
   drive every cache through line-size groups with deferred same-line
   extraction (see [group] above). The sampled passes additionally
   carry each line size's fetch-line register across pass boundaries:
   the access-vs-extract decision depends only on the instruction
   stream and the line size, so every group with the same line size
   holds the same [last_line] at any point in the stream, and a pass
   resuming mid-stream seeds it from the previous pass's groups. This
   keeps escalated configurations bit-identical to the exact path. *)

let build_groups ~line_bytes ~members =
  let distinct = ref [] in
  Array.iter
    (fun k ->
      let lb = line_bytes.(k) in
      if not (List.mem lb !distinct) then distinct := lb :: !distinct)
    members;
  List.rev !distinct
  |> List.map (fun lb ->
         let mem =
           Array.of_list
             (List.filter
                (fun k -> line_bytes.(k) = lb)
                (Array.to_list members))
         in
         { line_shift = Repro_util.Units.log2 lb;
           line_mask = lb - 1;
           members = mem;
           last_line = -1;
           pending = 0;
           pending_line = -1 })
  |> Array.of_list

let flush caches grp =
  if grp.pending <> 0 then begin
    let members = grp.members in
    for m = 0 to Array.length members - 1 do
      F.Icache.consume_line
        (Array.unsafe_get caches (Array.unsafe_get members m))
        ~line:grp.pending_line ~gmask:grp.pending
    done;
    grp.pending <- 0
  end

(* Granule mask of the instruction's bytes within its (single) line:
   a pure function of (addr, size, line size), computed once per
   group and valid for every member. Callers guarantee the span does
   not cross a line, so no clamp is needed. *)
let group_gmask grp ~addr ~size =
  let offset = addr land grp.line_mask in
  let g0 = offset / 4 and g1 = (offset + size - 1) / 4 in
  ((1 lsl (g1 - g0 + 1)) - 1) lsl g0

let grouped_feed ~caches ~groups ~on_inst ~on_miss =
  let ngroups = Array.length groups in
  fun (i : Inst.t) ->
    if i.warmup then
      (* Warm every cache without counting statistics. *)
      for g = 0 to ngroups - 1 do
        let grp = Array.unsafe_get groups g in
        flush caches grp;
        grp.last_line <- -1;
        let members = grp.members in
        let first = i.addr lsr grp.line_shift
        and last = (i.addr + i.size - 1) lsr grp.line_shift in
        if first = last then begin
          let gmask = group_gmask grp ~addr:i.addr ~size:i.size in
          for m = 0 to Array.length members - 1 do
            ignore
              (F.Icache.access_line
                 (Array.unsafe_get caches (Array.unsafe_get members m))
                 ~line:first ~gmask)
          done
        end
        else
          for m = 0 to Array.length members - 1 do
            ignore
              (F.Icache.access
                 (Array.unsafe_get caches (Array.unsafe_get members m))
                 ~addr:i.addr ~size:i.size)
          done
      done
    else begin
      let sec = section_bit i in
      on_inst sec;
      for g = 0 to ngroups - 1 do
        let grp = Array.unsafe_get groups g in
        let first = i.addr lsr grp.line_shift
        and last = (i.addr + i.size - 1) lsr grp.line_shift in
        if first <> grp.last_line || last <> grp.last_line then begin
          (* New line for every cache in the group: settle the ended
             run, then access each. *)
          flush caches grp;
          let members = grp.members in
          if first = last then begin
            let gmask = group_gmask grp ~addr:i.addr ~size:i.size in
            for m = 0 to Array.length members - 1 do
              let k = Array.unsafe_get members m in
              if not
                   (F.Icache.access_line (Array.unsafe_get caches k)
                      ~line:first ~gmask)
              then on_miss k sec
            done
          end
          else
            for m = 0 to Array.length members - 1 do
              let k = Array.unsafe_get members m in
              if not
                   (F.Icache.access (Array.unsafe_get caches k) ~addr:i.addr
                      ~size:i.size)
              then on_miss k sec
            done
        end
        else begin
          (* Same line in every cache of the group: one or covers the
             whole group until the run ends. *)
          grp.pending <- grp.pending lor group_gmask grp ~addr:i.addr ~size:i.size;
          grp.pending_line <- first
        end;
        grp.last_line <- (if i.taken then -1 else last)
      done
    end

(* End-of-pass snapshot of each line size's fetch-line register, used
   to seed the groups of the next pass resuming at the same stream
   position. *)
let snapshot_last groups =
  let m = Hashtbl.create 4 in
  Array.iter (fun grp -> Hashtbl.replace m grp.line_mask grp.last_line) groups;
  m

let seed_last groups m =
  Array.iter
    (fun grp ->
      match Hashtbl.find_opt m grp.line_mask with
      | Some l -> grp.last_line <- l
      | None -> ())
    groups

let run_sampled ?next_line_prefetch pt plan configs =
  Repro_util.Telemetry.with_span "sweep.sampled" @@ fun () ->
  let n = Array.length configs in
  (* Extended cache set: the sweep configs, then the pivot, then the
     canaries — all driven by the same grouped feeder, with group
     membership varying per pass. *)
  let ext_configs =
    Array.concat [ configs; [| pivot_config |]; canary_configs ]
  in
  let nc = Array.length canary_configs in
  let caches =
    Array.map
      (fun c ->
        F.Icache.create ?next_line_prefetch ~policy:c.policy
          ~size_bytes:c.size_bytes ~line_bytes:c.line_bytes ~assoc:c.assoc ())
      ext_configs
  in
  let line_bytes = Array.map (fun c -> c.line_bytes) ext_configs in
  let regions = plan.Regions.regions in
  let nr = Array.length regions in
  let p = plan.Regions.prefix_regions in
  let miss = Array.make (n * cells) 0 in
  let prefix_cells = Array.init (n * cells) (fun _ -> Array.make p 0.0) in
  let pivot_cells = Array.init cells (fun _ -> Array.make nr 0.0) in
  let canary_cells =
    Array.init (nc * cells) (fun _ -> Array.make nr 0.0)
  in
  let cur = ref 0 in
  let no_inst _ = () in
  let record_anchor k sec =
    if k = n then begin
      let row = pivot_cells.(sec) in
      row.(!cur) <- row.(!cur) +. 1.0
    end
    else begin
      let row = canary_cells.(((k - n - 1) * cells) + sec) in
      row.(!cur) <- row.(!cur) +. 1.0
    end
  in
  (* Pass A — prefix: every config plus the pivot and canaries. *)
  let groups_a =
    build_groups ~line_bytes ~members:(Array.init (n + 1 + nc) (fun k -> k))
  in
  let feed_prefix =
    grouped_feed ~caches ~groups:groups_a ~on_inst:no_inst
      ~on_miss:(fun k sec ->
        if k < n then begin
          let j = (k * cells) + sec in
          miss.(j) <- miss.(j) + 1;
          let row = prefix_cells.(j) in
          row.(!cur) <- row.(!cur) +. 1.0
        end
        else record_anchor k sec)
  in
  for r = 0 to p - 1 do
    cur := r;
    Repro_isa.Packed_trace.replay_range pt ~lo:regions.(r).Regions.lo
      ~hi:regions.(r).Regions.hi feed_prefix
  done;
  Array.iter (flush caches) groups_a;
  let last_at_prefix = snapshot_last groups_a in
  (* Pass B — tail: pivot and canaries only. *)
  let groups_b =
    build_groups ~line_bytes ~members:(Array.init (1 + nc) (fun c -> n + c))
  in
  seed_last groups_b last_at_prefix;
  let feed_tail_pivot =
    grouped_feed ~caches ~groups:groups_b ~on_inst:no_inst
      ~on_miss:record_anchor
  in
  for r = p to nr - 1 do
    cur := r;
    Repro_isa.Packed_trace.replay_range pt ~lo:regions.(r).Regions.lo
      ~hi:regions.(r).Regions.hi feed_tail_pivot
  done;
  Array.iter (flush caches) groups_b;
  (* Gate, then exact tail for escalated configs: cache contents and
     fetch-line registers carry over from the prefix, so escalation
     is bit-exact. *)
  let serial, parallel = Repro_isa.Packed_trace.counted pt in
  let insts_sc = [| serial; parallel |] in
  let tol = Regions.default_tol in
  (* Canary calibration per cell: each canary's extrapolation is
     checked against its known full-trace total, and the gate charges
     every config the worst canary error as a floor plus the canaries'
     error-per-deviation price for more erratic configs. A canary
     that cannot calibrate (prefix too short) poisons the cell and
     every config escalates. *)
  let cell_model =
    Array.init cells (fun cell ->
        let model = ref (Some (0.0, 0.0)) in
        for c = 0 to nc - 1 do
          match
            ( !model,
              Regions.Cell.calibrate ~plan ~pivot:pivot_cells.(cell)
                ~actual:canary_cells.((c * cells) + cell) )
          with
          | Some (ef, es), Some (e, d) ->
              model :=
                Some (Float.max ef e, Float.max es (e /. Float.max d 1.0))
          | _, None | None, _ -> model := None
        done;
        !model)
  in
  let approx = Array.make n None in
  let escalate = Array.make n false in
  for k = 0 to n - 1 do
    let e_miss = Array.make cells 0.0 and ci = Array.make cells 0.0 in
    let ok = ref true in
    for cell = 0 to cells - 1 do
      if !ok then begin
        let floor = float_of_int insts_sc.(cell) /. 1000.0 in
        match cell_model.(cell) with
        | None -> ok := false
        | Some (err_floor, err_scale) ->
        match
          Regions.Cell.gate ~plan ~tol ~floor ~err_floor ~err_scale
            ~pivot:pivot_cells.(cell)
            ~prefix:prefix_cells.((k * cells) + cell)
        with
        | Regions.Cell.Exact ->
            e_miss.(cell) <- float_of_int miss.((k * cells) + cell)
        | Regions.Cell.Approx { est; ci = c } ->
            e_miss.(cell) <- est;
            ci.(cell) <- c
        | Regions.Cell.Escalate -> ok := false
      end
    done;
    if !ok then approx.(k) <- Some { e_miss; ci } else escalate.(k) <- true
  done;
  (* Pass C — exact tail for escalated configs, resuming from their
     prefix state and the prefix-boundary fetch-line registers. *)
  if Array.exists (fun b -> b) escalate then begin
    let members = ref [] in
    for k = n - 1 downto 0 do
      if escalate.(k) then members := k :: !members
    done;
    let groups_c =
      build_groups ~line_bytes ~members:(Array.of_list !members)
    in
    seed_last groups_c last_at_prefix;
    let feed_tail =
      grouped_feed ~caches ~groups:groups_c ~on_inst:no_inst
        ~on_miss:(fun k sec ->
          let j = (k * cells) + sec in
          miss.(j) <- miss.(j) + 1)
    in
    Repro_isa.Packed_trace.replay_range pt ~lo:plan.Regions.prefix_end
      ~hi:(Regions.total_insts plan) feed_tail;
    Array.iter (flush caches) groups_c
  end;
  Array.mapi
    (fun k _ ->
      { cache = caches.(k);
        insts_s = serial;
        insts_p = parallel;
        miss = Array.sub miss (k * cells) cells;
        approx = approx.(k) })
    configs

let rec run ?next_line_prefetch src configs =
  match src with
  | Tool.Source.Sampled (pt, plan) ->
      if Regions.exhaustive plan then
        run ?next_line_prefetch (Tool.Source.Packed pt) configs
      else run_sampled ?next_line_prefetch pt plan configs
  | Tool.Source.Packed _ | Tool.Source.Stream _ ->
      run_exact ?next_line_prefetch src configs

and run_exact ?next_line_prefetch src configs =
  Repro_util.Telemetry.with_span "sweep.fused" @@ fun () ->
  let n = Array.length configs in
  let caches =
    Array.map
      (fun c ->
        F.Icache.create ?next_line_prefetch ~policy:c.policy
          ~size_bytes:c.size_bytes ~line_bytes:c.line_bytes ~assoc:c.assoc ())
      configs
  in
  let line_bytes = Array.map (fun c -> c.line_bytes) configs in
  let groups =
    build_groups ~line_bytes ~members:(Array.init n (fun k -> k))
  in
  let miss = Array.make (n * cells) 0 in
  let insts_s = ref 0 and insts_p = ref 0 in
  let feed =
    grouped_feed ~caches ~groups
      ~on_inst:(fun sec -> if sec = 0 then incr insts_s else incr insts_p)
      ~on_miss:(fun k sec ->
        let j = (k * cells) + sec in
        Array.unsafe_set miss j (Array.unsafe_get miss j + 1))
  in
  Tool.run_all_source src [ feed ];
  Array.iter (flush caches) groups;
  Array.mapi
    (fun k _ ->
      { cache = caches.(k);
        insts_s = !insts_s;
        insts_p = !insts_p;
        miss = Array.sub miss (k * cells) cells;
        approx = None })
    configs

let cache t = t.cache

let scope_pair s p = function
  | Branch_mix.Total -> s + p
  | Branch_mix.Only Repro_isa.Section.Serial -> s
  | Branch_mix.Only Repro_isa.Section.Parallel -> p

let scope_pair_f s p = function
  | Branch_mix.Total -> s +. p
  | Branch_mix.Only Repro_isa.Section.Serial -> s
  | Branch_mix.Only Repro_isa.Section.Parallel -> p

let insts t scope = scope_pair t.insts_s t.insts_p scope

let misses_f t scope =
  match t.approx with
  | None -> float_of_int (scope_pair t.miss.(0) t.miss.(1) scope)
  | Some a -> scope_pair_f a.e_miss.(0) a.e_miss.(1) scope

let approx t = t.approx <> None

let misses t scope =
  match t.approx with
  | None -> scope_pair t.miss.(0) t.miss.(1) scope
  | Some _ -> int_of_float (Float.round (misses_f t scope))

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan else misses_f t scope /. (float_of_int n /. 1000.0)

let mpki_ci t scope =
  match t.approx with
  | None -> 0.0
  | Some a ->
      let n = insts t scope in
      if n = 0 then 0.0
      else scope_pair_f a.ci.(0) a.ci.(1) scope /. (float_of_int n /. 1000.0)

let accesses t = F.Icache.accesses t.cache
let usefulness t = F.Icache.usefulness t.cache
