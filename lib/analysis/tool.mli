(** Analysis-tool plumbing: the moral equivalent of running several
    pintools over one instrumented execution. Each tool is an
    [Inst.t -> unit] observer; {!run_all} drives a trace through many
    observers in a single pass, which matters because trace generation
    dominates runtime. *)

val run : Repro_isa.Trace.t -> (Repro_isa.Inst.t -> unit) -> unit
(** Single-observer convenience (same as [Trace.iter]). *)

val run_all : Repro_isa.Trace.t -> (Repro_isa.Inst.t -> unit) list -> unit
(** One pass, observers called in list order per instruction. *)

(** A replayable instruction source: either a live streaming trace
    (re-executes the workload generator on every pass) or a packed
    capture (generated once, replayed cheaply). Tools that can
    exploit the packed form — branch predictors and BTBs only act on
    a small slice of the stream — dispatch on this; everything else
    treats both forms as the identical instruction sequence. *)
module Source : sig
  type t =
    | Stream of Repro_isa.Trace.t
    | Packed of Repro_isa.Packed_trace.t
    | Sampled of Repro_isa.Packed_trace.t * Regions.t
        (** a packed capture plus a representative-region sampling
            plan; sampling-aware tools simulate the plan's prefix and
            extrapolate or escalate per cell, everything else replays
            the full capture *)

  val of_trace : Repro_isa.Trace.t -> t
  val of_packed : Repro_isa.Packed_trace.t -> t

  val of_sampled : Repro_isa.Packed_trace.t -> Regions.t -> t
  (** [Sampled], except an {!Regions.exhaustive} plan collapses to
      plain [Packed] — the fraction-1.0 bit-identity guarantee is the
      identity of code paths, not a property to re-prove per tool. *)

  val iter : t -> (Repro_isa.Inst.t -> unit) -> unit
  (** Full stream, in order, whichever form backs it. *)
end

val run_all_source : Source.t -> (Repro_isa.Inst.t -> unit) list -> unit
(** {!run_all} over either source form (full stream, one pass). *)

(** Per-section tallies many tools need. *)
module Split : sig
  type t = { mutable serial : int; mutable parallel : int }

  val create : unit -> t
  val incr : t -> Repro_isa.Section.t -> unit
  val add : t -> Repro_isa.Section.t -> int -> unit
  val get : t -> Repro_isa.Section.t -> int
  val total : t -> int
end
