(** Fused multi-configuration BTB sweep (paper Fig. 7): every
    (entries, associativity) point simulated in one pass.

    All configurations with the same set count split the branch
    address into the same (set index, tag) pair, so the
    decomposition runs once per distinct geometry per redirect and
    every same-geometry table is driven through
    {!Repro_frontend.Btb.lookup_at}/[insert_at] with the shared
    pair. Miss counts land in a flat config-major matrix. Results
    are bit-identical to unfused {!Btb_sim} runs (pinned by the
    qcheck differential in [test/test_sweep.ml]).

    Runs under a [sweep.fused] telemetry span. *)

type t
(** Per-configuration result; accessors mirror {!Btb_sim}. *)

val run : Tool.Source.t -> (int * int) array -> t array
(** [run src configs] with [(entries, assoc)] pairs; result [i]
    corresponds to [configs.(i)].

    A [Sampled] source simulates every config over the plan's prefix
    while a fixed pivot geometry covers the full capture; each cell is
    extrapolated per cluster when {!Regions.Cell.gate} bounds the
    error ({!approx}/{!mpki_ci}), otherwise the config is escalated to
    exact tail simulation continuing from its prefix state —
    bit-identical to the unsampled run. Results never depend on which
    other configs are in the array. *)

val approx : t -> bool
(** [true] when this result's cells are extrapolated rather than
    counted. *)

val mpki_ci : t -> Branch_mix.scope -> float
(** 95% confidence half-width of {!mpki} (0 for exact results). *)

val entries : t -> int
val assoc : t -> int
val insts : t -> Branch_mix.scope -> int
val taken_branches : t -> Branch_mix.scope -> int
val misses : t -> Branch_mix.scope -> int
val mpki : t -> Branch_mix.scope -> float
val miss_rate : t -> Branch_mix.scope -> float
