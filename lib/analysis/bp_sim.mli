(** Branch-predictor simulation (paper Figs. 5 and 6): drives a
    {!Repro_frontend.Predictor.t} with the conditional-branch stream
    and reports mispredictions per kilo-instruction (MPKI, normalized
    by *all* executed instructions), split by section and broken down
    by the kind of outcome that was mispredicted. *)

type t

val create : Repro_frontend.Predictor.t -> t
(** The predictor instance is owned (and trained) by this tool. *)

(** Static schemes the compiler/decoder could implement without any
    prediction storage; BTFN (backward-taken, forward-not-taken) is
    the natural baseline for the paper's bias findings. *)
type static = Always_taken | Always_not_taken | Btfn

val create_static : static -> t
(** Zero-storage static predictor (the decoder knows the branch's
    direction/offset, so BTFN reads the instruction's target). *)

val feed : t -> Repro_isa.Inst.t -> unit
val observer : t -> Repro_isa.Inst.t -> unit

val run_all : Tool.Source.t -> t list -> unit
(** Drive every sim over the source in one pass. On a packed capture
    this replays only the conditional branches and absorbs the
    per-section instruction totals in bulk — observationally
    identical to streaming, an order of magnitude fewer callbacks. *)

val predictor_name : t -> string
val insts : t -> Branch_mix.scope -> int
val conditional_branches : t -> Branch_mix.scope -> int
val mispredictions : t -> Branch_mix.scope -> int

val mpki : t -> Branch_mix.scope -> float
(** Mispredictions per 1000 instructions in scope. *)

val misprediction_rate : t -> Branch_mix.scope -> float
(** Mispredictions per conditional branch. *)

(** Fig. 6 breakdown: what the branch actually did when mispredicted. *)
type cause = On_not_taken | On_taken_backward | On_taken_forward

val causes : cause list
val cause_to_string : cause -> string

val mpki_by_cause : t -> Branch_mix.scope -> cause -> float
