(** Fused multi-configuration branch-predictor sweep: every
    configuration of Figs. 5/6 simulated in one pass over the source.

    {!Bp_sim.run_all} already shares the trace replay across sims,
    but each sim still pays per-event closure dispatch through
    {!Repro_frontend.Predictor.t} and a private history register.
    This kernel exploits that every gshare-family configuration
    derives its table index from the same global history: the
    register is maintained once per conditional branch as a bare
    [int] and each configuration applies its own width mask
    ([(x lxor h) land m] distributes over the mask, so sharing is
    bit-exact — pinned by the qcheck differential in
    [test/test_sweep.ml]). Misprediction counts land in a flat
    config-major matrix instead of per-config boxed records; opaque
    families (tournament, TAGE) and static schemes ride along
    unchanged.

    Runs under a [sweep.fused] telemetry span. *)

type spec
(** One configuration to sweep. *)

val of_name : string -> spec
(** A Fig. 5 configuration by {!Repro_frontend.Zoo} name; raises
    [Not_found] for unknown names. *)

val of_static : Bp_sim.static -> spec
(** A zero-storage static scheme. *)

val spec_name : spec -> string
(** The name [run]'s result reports — the Zoo name, or
    [static-taken]/[static-not-taken]/[static-btfn]. *)

type t
(** Per-configuration result; accessors mirror {!Bp_sim}. *)

val run : Tool.Source.t -> spec array -> t array
(** Simulate every spec in one pass; result [i] corresponds to spec
    [i] and is bit-identical to an unfused [Bp_sim] run of the same
    configuration over the same source.

    A [Sampled] source simulates every spec over the plan's prefix
    only, while one fixed pivot configuration covers the full capture;
    each cell is then either extrapolated per cluster (when
    {!Regions.Cell.gate} bounds the error under the tolerance —
    {!approx} reports [true] and {!mpki_ci} the interval) or the whole
    config is escalated to exact tail simulation continuing from its
    prefix state, which reproduces the unsampled result bit for bit.
    Static schemes are always exact. Results never depend on which
    other specs are in the array. *)

val approx : t -> bool
(** [true] when any cell of this result is extrapolated rather than
    counted; such results carry a confidence interval ({!mpki_ci})
    and render with an [≈] marker upstream. *)

val mpki_ci : t -> Branch_mix.scope -> float
(** 95% confidence half-width of {!mpki} (0 for exact results). *)

val predictor_name : t -> string
val insts : t -> Branch_mix.scope -> int
val conditional_branches : t -> Branch_mix.scope -> int
val mispredictions : t -> Branch_mix.scope -> int
val mpki : t -> Branch_mix.scope -> float
val misprediction_rate : t -> Branch_mix.scope -> float
val mpki_by_cause : t -> Branch_mix.scope -> Bp_sim.cause -> float
