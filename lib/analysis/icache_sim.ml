module Inst = Repro_isa.Inst

type t = {
  cache : Repro_frontend.Icache.t;
  line_shift : int; (* log2 line_bytes: avoids a division per inst *)
  insts : Tool.Split.t;
  misses : Tool.Split.t;
  mutable last_line : int; (* line currently being consumed; -1 = none *)
}

let create ?next_line_prefetch ~size_bytes ~line_bytes ~assoc () =
  { cache =
      Repro_frontend.Icache.create ?next_line_prefetch ~size_bytes ~line_bytes
        ~assoc ();
    line_shift = Repro_util.Units.log2 line_bytes;
    insts = Tool.Split.create ();
    misses = Tool.Split.create ();
    last_line = -1 }

let feed t (i : Inst.t) =
  if i.warmup then begin
    (* Warm the cache without counting statistics. *)
    ignore (Repro_frontend.Icache.access t.cache ~addr:i.addr ~size:i.size);
    t.last_line <- -1
  end
  else begin
  let s = i.section in
  Tool.Split.incr t.insts s;
  let first = i.addr lsr t.line_shift
  and last = (i.addr + i.size - 1) lsr t.line_shift in
  (* Only access the cache when the fetch run enters a new line;
     within the current line, bytes are extracted for free. *)
  if first <> t.last_line || last <> t.last_line then begin
    let hit = Repro_frontend.Icache.access t.cache ~addr:i.addr ~size:i.size in
    if not hit then Tool.Split.incr t.misses s
  end
  else Repro_frontend.Icache.consume t.cache ~addr:i.addr ~size:i.size;
  t.last_line <- (if i.taken then -1 else last)
  end

let observer t = feed t

(* The I-cache observes every instruction (sequential extraction and
   line crossings), so the packed form brings no filtering — just a
   much cheaper producer than re-running the generator. *)
let run_all src sims = Tool.run_all_source src (List.map feed sims)

let scope_get split = function
  | Branch_mix.Total -> Tool.Split.total split
  | Branch_mix.Only s -> Tool.Split.get split s

let insts t scope = scope_get t.insts scope
let misses t scope = scope_get t.misses scope

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan
  else float_of_int (misses t scope) /. (float_of_int n /. 1000.0)

let accesses t = Repro_frontend.Icache.accesses t.cache
let cache t = t.cache
let usefulness t = Repro_frontend.Icache.usefulness t.cache
