module Inst = Repro_isa.Inst

type t = {
  cache : Repro_frontend.Icache.t;
  line_shift : int; (* log2 line_bytes: avoids a division per inst *)
  insts : Tool.Split.t;
  misses : Tool.Split.t;
  mutable last_line : int; (* line currently being consumed; -1 = none *)
}

let create ?next_line_prefetch ?policy ~size_bytes ~line_bytes ~assoc () =
  { cache =
      Repro_frontend.Icache.create ?next_line_prefetch ?policy ~size_bytes
        ~line_bytes ~assoc ();
    line_shift = Repro_util.Units.log2 line_bytes;
    insts = Tool.Split.create ();
    misses = Tool.Split.create ();
    last_line = -1 }

let feed t (i : Inst.t) =
  if i.warmup then begin
    (* Warm the cache without counting statistics. *)
    ignore (Repro_frontend.Icache.access t.cache ~addr:i.addr ~size:i.size);
    t.last_line <- -1
  end
  else begin
  let s = i.section in
  Tool.Split.incr t.insts s;
  let first = i.addr lsr t.line_shift
  and last = (i.addr + i.size - 1) lsr t.line_shift in
  (* Only access the cache when the fetch run enters a new line;
     within the current line, bytes are extracted for free. *)
  if first <> t.last_line || last <> t.last_line then begin
    let hit = Repro_frontend.Icache.access t.cache ~addr:i.addr ~size:i.size in
    if not hit then Tool.Split.incr t.misses s
  end
  else Repro_frontend.Icache.consume t.cache ~addr:i.addr ~size:i.size;
  t.last_line <- (if i.taken then -1 else last)
  end

let observer t = feed t

(* Sampled run: exact prefix, then per sim either a per-cluster
   miss-rate extrapolation of the tail (per-region instruction mass
   as the pivot) or exact tail simulation when the gate refuses —
   see [Bp_sim.run_sampled] for the shape. The fetch-line register
   carries across region boundaries because the prefix is replayed
   contiguously, so escalated sims match the full run exactly. *)
let run_sampled pt plan sims =
  let regions = plan.Regions.regions in
  let nr = Array.length regions in
  let p = plan.Regions.prefix_regions in
  let arr = Array.of_list sims in
  let ns = Array.length arr in
  let cellsn = 2 in
  let section_of c =
    if c = 0 then Repro_isa.Section.Serial else Repro_isa.Section.Parallel
  in
  let prefix_cells = Array.init (ns * cellsn) (fun _ -> Array.make p 0.0) in
  let last = Array.make (ns * cellsn) 0 in
  let feed_all i =
    for k = 0 to ns - 1 do
      feed (Array.unsafe_get arr k) i
    done
  in
  for r = 0 to p - 1 do
    Repro_isa.Packed_trace.replay_range pt ~lo:regions.(r).Regions.lo
      ~hi:regions.(r).Regions.hi feed_all;
    for k = 0 to ns - 1 do
      for c = 0 to cellsn - 1 do
        let j = (k * cellsn) + c in
        let v = Tool.Split.get arr.(k).misses (section_of c) in
        prefix_cells.(j).(r) <- float_of_int (v - last.(j));
        last.(j) <- v
      done
    done
  done;
  let pivot_s =
    Array.map (fun r -> float_of_int r.Regions.counted_s) regions
  and pivot_p =
    Array.map (fun r -> float_of_int r.Regions.counted_p) regions
  in
  let tail_insts_s = ref 0 and tail_insts_p = ref 0 in
  for r = p to nr - 1 do
    tail_insts_s := !tail_insts_s + regions.(r).Regions.counted_s;
    tail_insts_p := !tail_insts_p + regions.(r).Regions.counted_p
  done;
  let serial, parallel = Repro_isa.Packed_trace.counted pt in
  let tol = Regions.default_tol in
  let escalate = Array.make ns false in
  for k = 0 to ns - 1 do
    let t = arr.(k) in
    let est = Array.make cellsn 0.0 in
    let ok = ref true in
    for c = 0 to cellsn - 1 do
      if !ok then begin
        let sec_insts = if c = 0 then serial else parallel in
        let floor = float_of_int sec_insts /. 1000.0 in
        let pivot = if c = 0 then pivot_s else pivot_p in
        (* No canaries here to price extrapolation error, so
           [err_scale = infinity]: only deviation-zero cells (locked to
           the pivot shape) extrapolate; everything else escalates. *)
        match
          Regions.Cell.gate ~plan ~tol ~floor ~err_floor:0.0 ~err_scale:infinity
            ~pivot
            ~prefix:prefix_cells.((k * cellsn) + c)
        with
        | Regions.Cell.Exact ->
            est.(c) <- float_of_int (Tool.Split.get t.misses (section_of c))
        | Regions.Cell.Approx { est = e; _ } -> est.(c) <- e
        | Regions.Cell.Escalate -> ok := false
      end
    done;
    if !ok then begin
      for c = 0 to cellsn - 1 do
        let prefix = Tool.Split.get t.misses (section_of c) in
        let tail = int_of_float (Float.round (est.(c) -. float_of_int prefix)) in
        Tool.Split.add t.misses (section_of c) (max 0 tail)
      done;
      Tool.Split.add t.insts Repro_isa.Section.Serial !tail_insts_s;
      Tool.Split.add t.insts Repro_isa.Section.Parallel !tail_insts_p
    end
    else escalate.(k) <- true
  done;
  if Array.exists (fun b -> b) escalate then
    Repro_isa.Packed_trace.replay_range pt ~lo:plan.Regions.prefix_end
      ~hi:(Regions.total_insts plan) (fun i ->
        for k = 0 to ns - 1 do
          if Array.unsafe_get escalate k then feed (Array.unsafe_get arr k) i
        done)

(* The I-cache observes every instruction (sequential extraction and
   line crossings), so the packed form brings no filtering — just a
   much cheaper producer than re-running the generator. *)
let run_all src sims =
  match src with
  | Tool.Source.Sampled (pt, plan) when not (Regions.exhaustive plan) ->
      run_sampled pt plan sims
  | _ -> Tool.run_all_source src (List.map feed sims)

let scope_get split = function
  | Branch_mix.Total -> Tool.Split.total split
  | Branch_mix.Only s -> Tool.Split.get split s

let insts t scope = scope_get t.insts scope
let misses t scope = scope_get t.misses scope

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan
  else float_of_int (misses t scope) /. (float_of_int n /. 1000.0)

let accesses t = Repro_frontend.Icache.accesses t.cache
let cache t = t.cache
let usefulness t = Repro_frontend.Icache.usefulness t.cache
