(** Instruction-cache simulation (paper Figs. 8 and 9).

    Fetch is modelled as the paper describes it: instructions are
    extracted sequentially from the current line without re-accessing
    the cache until the run crosses into a new line (sequentially or
    via a taken branch); each new line is one cache access. Line
    usefulness (consumed bytes per fetched line) is reported by the
    underlying {!Repro_frontend.Icache}. *)

type t

val create :
  ?next_line_prefetch:bool -> ?policy:Repro_frontend.Replacement.spec ->
  size_bytes:int -> line_bytes:int -> assoc:int -> unit -> t
(** [policy] defaults to {!Repro_frontend.Replacement.Lru}. *)

val feed : t -> Repro_isa.Inst.t -> unit
val observer : t -> Repro_isa.Inst.t -> unit

val run_all : Tool.Source.t -> t list -> unit
(** Drive every sim over the full stream in one pass (the I-cache
    observes every instruction; a packed source only makes the
    producer cheaper). *)

val insts : t -> Branch_mix.scope -> int
val misses : t -> Branch_mix.scope -> int
val mpki : t -> Branch_mix.scope -> float
val accesses : t -> int
val usefulness : t -> float
val cache : t -> Repro_frontend.Icache.t
(** The underlying cache (prefetch counters, storage). *)
