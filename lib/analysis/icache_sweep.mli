(** Fused multi-configuration I-cache sweep (paper Figs. 8 and 9):
    every (size, line, associativity) point simulated in one pass.

    The sequential-extraction model's access-vs-extract decision —
    "does this instruction leave the line being fetched?" — depends
    only on the instruction stream and the line size, never on cache
    contents. Configurations are therefore grouped by line size: the
    instruction's line span, the decision, and the current-fetch-line
    register are computed once per group per instruction, and on the
    (dominant) same-line path the consumed-granule bitmask is
    precomputed once and or'd into every member cache through
    {!Repro_frontend.Icache.consume_line}. Results are bit-identical
    to unfused {!Icache_sim} runs (pinned by the qcheck differential
    in [test/test_sweep.ml]).

    Runs under a [sweep.fused] telemetry span. *)

type t
(** Per-configuration result; accessors mirror {!Icache_sim}. *)

val run :
  ?next_line_prefetch:bool -> Tool.Source.t -> (int * int * int) array ->
  t array
(** [run src configs] with [(size_bytes, line_bytes, assoc)] triples;
    result [i] corresponds to [configs.(i)]. [next_line_prefetch]
    applies to every configuration of the sweep. *)

val insts : t -> Branch_mix.scope -> int
val misses : t -> Branch_mix.scope -> int
val mpki : t -> Branch_mix.scope -> float
val accesses : t -> int
val usefulness : t -> float
val cache : t -> Repro_frontend.Icache.t
