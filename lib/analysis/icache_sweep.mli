(** Fused multi-configuration I-cache sweep (paper Figs. 8 and 9):
    every (size, line, associativity) point simulated in one pass.

    The sequential-extraction model's access-vs-extract decision —
    "does this instruction leave the line being fetched?" — depends
    only on the instruction stream and the line size, never on cache
    contents. Configurations are therefore grouped by line size: the
    instruction's line span, the decision, and the current-fetch-line
    register are computed once per group per instruction, and on the
    (dominant) same-line path the consumed-granule bitmask is
    precomputed once and or'd into every member cache through
    {!Repro_frontend.Icache.consume_line}. Results are bit-identical
    to unfused {!Icache_sim} runs (pinned by the qcheck differential
    in [test/test_sweep.ml]).

    Runs under a [sweep.fused] telemetry span. *)

type t
(** Per-configuration result; accessors mirror {!Icache_sim}. *)

type config = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  policy : Repro_frontend.Replacement.spec;
}
(** A sweep point: geometry plus replacement policy. Policies may be
    mixed freely within one sweep — the access-vs-extract decision
    depends only on the stream and the line size, so mixed-policy
    configurations still share line-size groups. *)

val cfg :
  ?policy:Repro_frontend.Replacement.spec -> int * int * int -> config
(** [(size_bytes, line_bytes, assoc)] with [policy] (default [Lru]). *)

val run : ?next_line_prefetch:bool -> Tool.Source.t -> config array -> t array
(** [run src configs]; result [i] corresponds to [configs.(i)].
    [next_line_prefetch] applies to every configuration of the sweep.

    A [Sampled] source simulates every config over the plan's prefix
    while a fixed pivot cache covers the full capture; each cell is
    extrapolated per cluster when {!Regions.Cell.gate} bounds the
    error ({!approx}/{!mpki_ci}), otherwise the config is escalated to
    exact tail simulation continuing from its prefix state —
    bit-identical to the unsampled run. For extrapolated configs,
    {!accesses}/{!usefulness} reflect the simulated prefix only. *)

val approx : t -> bool
(** [true] when this result's cells are extrapolated rather than
    counted. *)

val mpki_ci : t -> Branch_mix.scope -> float
(** 95% confidence half-width of {!mpki} (0 for exact results). *)

val insts : t -> Branch_mix.scope -> int
val misses : t -> Branch_mix.scope -> int
val mpki : t -> Branch_mix.scope -> float
val accesses : t -> int
val usefulness : t -> float
val cache : t -> Repro_frontend.Icache.t
