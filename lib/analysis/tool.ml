let run trace f = Repro_isa.Trace.iter trace f

let iter_all iter observers =
  match observers with
  | [] -> ()
  | [ f ] -> iter f
  | fs ->
      let arr = Array.of_list fs in
      iter (fun inst ->
          for i = 0 to Array.length arr - 1 do
            arr.(i) inst
          done)

let run_all trace observers = iter_all (Repro_isa.Trace.iter trace) observers

module Source = struct
  type t =
    | Stream of Repro_isa.Trace.t
    | Packed of Repro_isa.Packed_trace.t
    | Sampled of Repro_isa.Packed_trace.t * Regions.t

  let of_trace tr = Stream tr
  let of_packed pt = Packed pt

  let of_sampled pt plan =
    if Regions.exhaustive plan then Packed pt else Sampled (pt, plan)

  let iter t f =
    match t with
    | Stream tr -> Repro_isa.Trace.iter tr f
    | Packed pt -> Repro_isa.Packed_trace.replay pt f
    | Sampled (pt, _) ->
        (* generic consumers see the full stream: sampling only
           accelerates the tools that understand the plan *)
        Repro_isa.Packed_trace.replay pt f
end

let run_all_source src observers = iter_all (Source.iter src) observers

module Split = struct
  type t = { mutable serial : int; mutable parallel : int }

  let create () = { serial = 0; parallel = 0 }

  let add t section n =
    match section with
    | Repro_isa.Section.Serial -> t.serial <- t.serial + n
    | Repro_isa.Section.Parallel -> t.parallel <- t.parallel + n

  let incr t section = add t section 1

  let get t = function
    | Repro_isa.Section.Serial -> t.serial
    | Repro_isa.Section.Parallel -> t.parallel

  let total t = t.serial + t.parallel
end
