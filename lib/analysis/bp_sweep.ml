module Inst = Repro_isa.Inst
module F = Repro_frontend

type spec =
  | Named of { name : string; loop : bool; core : F.Zoo.core }
  | Static of Bp_sim.static

let of_name name =
  let s = F.Zoo.spec_by_name name in
  Named { name; loop = s.F.Zoo.loop; core = s.F.Zoo.core }

let of_static s = Static s

let spec_name = function
  | Named { name; _ } -> name
  | Static Bp_sim.Always_taken -> "static-taken"
  | Static Bp_sim.Always_not_taken -> "static-not-taken"
  | Static Bp_sim.Btfn -> "static-btfn"

(* Runtime engine per configuration. The gshare family is lowered to
   a bare counter table plus an index mask: the global history
   register is shared across every table (see [run]), so a gshare
   config costs one xor, one mask and one counter poke per
   conditional instead of two closure calls and a private history
   push. Other families keep their packed closure form. *)
type engine =
  | Table of {
      table : F.Counter.t;
      mask : int;
      lbp : F.Loop_predictor.t option;
    }
  | Closure of F.Predictor.t
  | Static_e of Bp_sim.static

let realize = function
  | Named { loop; core; _ } -> (
      match core with
      | F.Zoo.Gshare_core { history_bits } ->
          Table
            { table = F.Counter.create ~bits:2 ~entries:(1 lsl history_bits);
              mask = (1 lsl history_bits) - 1;
              lbp = (if loop then Some (F.Loop_predictor.create ()) else None) }
      | F.Zoo.Opaque mk ->
          let p = mk () in
          Closure (if loop then F.Zoo.with_loop p else p))
  | Static s -> Static_e s

(* Miss matrix layout: config-major, 6 cells per config —
   [cause * 2 + section] with causes nt = 0, tb = 1, tf = 2 and
   sections serial = 0, parallel = 1. *)
let cells = 6

type t = {
  name : string;
  insts_s : int;
  insts_p : int;
  conds_s : int;
  conds_p : int;
  miss : int array; (* the 6 cells of this config *)
}

(* The shared history register is wide enough for the deepest gshare
   [Gshare.create] accepts (24 bits); each table applies its own
   mask, which matches a private [History.t] exactly because
   [(x lxor h) land m = x' lxor (h land m) land m]. *)
let ghr_mask = 0xFFFFFF

let section_bit (i : Inst.t) =
  match i.section with Repro_isa.Section.Serial -> 0 | Repro_isa.Section.Parallel -> 1

let run src specs =
  Repro_util.Telemetry.with_span "sweep.fused" @@ fun () ->
  let n = Array.length specs in
  let engines = Array.map realize specs in
  let miss = Array.make (n * cells) 0 in
  let insts_s = ref 0 and insts_p = ref 0 in
  let conds_s = ref 0 and conds_p = ref 0 in
  let ghr = ref 0 in
  (* One conditional branch, all configs; the history push is hoisted
     out of the per-config loop. Mirrors [Bp_sim.feed_conditional]. *)
  let feed_cond (i : Inst.t) =
    let pcx = i.addr lsr 1 in
    if i.warmup then
      for k = 0 to n - 1 do
        match Array.unsafe_get engines k with
        | Table { table; mask; lbp } ->
            (match lbp with
            | Some l -> F.Loop_predictor.update l ~pc:i.addr ~taken:i.taken
            | None -> ());
            F.Counter.update table ((pcx lxor !ghr) land mask) i.taken
        | Closure p -> p.F.Predictor.update i.addr i.taken
        | Static_e _ -> ()
      done
    else begin
      let sec = section_bit i in
      (if sec = 0 then incr conds_s else incr conds_p);
      (* cause cell offset: decided once per event, not per config *)
      let cell =
        if not i.taken then sec
        else if i.target < i.addr then 2 + sec
        else 4 + sec
      in
      for k = 0 to n - 1 do
        let pred =
          match Array.unsafe_get engines k with
          | Table { table; mask; lbp } -> (
              let idx = (pcx lxor !ghr) land mask in
              let dir =
                match lbp with
                | Some l -> F.Loop_predictor.predict l ~pc:i.addr
                | None -> None
              in
              match dir with
              | Some d -> d
              | None -> F.Counter.is_taken table idx)
          | Closure p -> p.F.Predictor.predict i.addr
          | Static_e Bp_sim.Always_taken -> true
          | Static_e Bp_sim.Always_not_taken -> false
          | Static_e Bp_sim.Btfn -> i.target < i.addr
        in
        if pred <> i.taken then begin
          let j = (k * cells) + cell in
          Array.unsafe_set miss j (Array.unsafe_get miss j + 1)
        end;
        match Array.unsafe_get engines k with
        | Table { table; mask; lbp } ->
            (match lbp with
            | Some l -> F.Loop_predictor.update l ~pc:i.addr ~taken:i.taken
            | None -> ());
            F.Counter.update table ((pcx lxor !ghr) land mask) i.taken
        | Closure p -> p.F.Predictor.update i.addr i.taken
        | Static_e _ -> ()
      done
    end;
    ghr := ((!ghr lsl 1) lor (if i.taken then 1 else 0)) land ghr_mask
  in
  (match src with
  | Tool.Source.Packed pt ->
      let serial, parallel = Repro_isa.Packed_trace.counted pt in
      insts_s := serial;
      insts_p := parallel;
      Repro_isa.Packed_trace.replay_conditionals pt feed_cond
  | Tool.Source.Stream _ ->
      Tool.run_all_source src
        [ (fun i ->
            if i.Inst.warmup then begin
              if i.Inst.kind = Inst.Cond_branch then feed_cond i
            end
            else begin
              (if section_bit i = 0 then incr insts_s else incr insts_p);
              if i.Inst.kind = Inst.Cond_branch then feed_cond i
            end) ]);
  Array.mapi
    (fun k spec ->
      { name = spec_name spec;
        insts_s = !insts_s;
        insts_p = !insts_p;
        conds_s = !conds_s;
        conds_p = !conds_p;
        miss = Array.sub miss (k * cells) cells })
    specs

let predictor_name t = t.name

let scope_pair s p = function
  | Branch_mix.Total -> s + p
  | Branch_mix.Only Repro_isa.Section.Serial -> s
  | Branch_mix.Only Repro_isa.Section.Parallel -> p

let insts t scope = scope_pair t.insts_s t.insts_p scope
let conditional_branches t scope = scope_pair t.conds_s t.conds_p scope

let cause_base = function
  | Bp_sim.On_not_taken -> 0
  | Bp_sim.On_taken_backward -> 2
  | Bp_sim.On_taken_forward -> 4

let misses_of_cause t cause scope =
  let b = cause_base cause in
  scope_pair t.miss.(b) t.miss.(b + 1) scope

let mispredictions t scope =
  List.fold_left (fun acc c -> acc + misses_of_cause t c scope) 0 Bp_sim.causes

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan
  else float_of_int (mispredictions t scope) /. (float_of_int n /. 1000.0)

let misprediction_rate t scope =
  let n = conditional_branches t scope in
  if n = 0 then nan
  else float_of_int (mispredictions t scope) /. float_of_int n

let mpki_by_cause t scope cause =
  let n = insts t scope in
  if n = 0 then nan
  else float_of_int (misses_of_cause t cause scope) /. (float_of_int n /. 1000.0)
