module Inst = Repro_isa.Inst
module F = Repro_frontend

type spec =
  | Named of { name : string; loop : bool; core : F.Zoo.core }
  | Static of Bp_sim.static

let of_name name =
  let s = F.Zoo.spec_by_name name in
  Named { name; loop = s.F.Zoo.loop; core = s.F.Zoo.core }

let of_static s = Static s

let spec_name = function
  | Named { name; _ } -> name
  | Static Bp_sim.Always_taken -> "static-taken"
  | Static Bp_sim.Always_not_taken -> "static-not-taken"
  | Static Bp_sim.Btfn -> "static-btfn"

(* Runtime engine per configuration. The gshare family is lowered to
   a bare counter table plus an index mask: the global history
   register is shared across every table (see [run]), so a gshare
   config costs one xor, one mask and one counter poke per
   conditional instead of two closure calls and a private history
   push. Other families keep their packed closure form. *)
type engine =
  | Table of {
      table : F.Counter.t;
      mask : int;
      lbp : F.Loop_predictor.t option;
    }
  | Closure of F.Predictor.t
  | Static_e of Bp_sim.static

let realize = function
  | Named { loop; core; _ } -> (
      match core with
      | F.Zoo.Gshare_core { history_bits } ->
          Table
            { table = F.Counter.create ~bits:2 ~entries:(1 lsl history_bits);
              mask = (1 lsl history_bits) - 1;
              lbp = (if loop then Some (F.Loop_predictor.create ()) else None) }
      | F.Zoo.Opaque mk ->
          let p = mk () in
          Closure (if loop then F.Zoo.with_loop p else p))
  | Static s -> Static_e s

(* Miss matrix layout: config-major, 6 cells per config —
   [cause * 2 + section] with causes nt = 0, tb = 1, tf = 2 and
   sections serial = 0, parallel = 1. *)
let cells = 6

(* Extrapolation overlay for a sampled run: estimated cell counts and
   95% confidence half-widths, same 6-cell layout as [miss]. Absent
   for exact results (unsampled runs, escalated or static configs). *)
type approx = { e_miss : float array; ci : float array }

type t = {
  name : string;
  insts_s : int;
  insts_p : int;
  conds_s : int;
  conds_p : int;
  miss : int array; (* the 6 cells of this config *)
  approx : approx option;
}

(* The shared history register is wide enough for the deepest gshare
   [Gshare.create] accepts (24 bits); each table applies its own
   mask, which matches a private [History.t] exactly because
   [(x lxor h) land m = x' lxor (h land m) land m]. *)
let ghr_mask = 0xFFFFFF

let section_bit (i : Inst.t) =
  match i.section with Repro_isa.Section.Serial -> 0 | Repro_isa.Section.Parallel -> 1

(* Single-engine predict/update, used by the sampled passes where the
   active engine set changes per pass. Semantics match [feed_cond]. *)
let predict_e e (i : Inst.t) pcx ghr =
  match e with
  | Table { table; mask; lbp } -> (
      let dir =
        match lbp with
        | Some l -> F.Loop_predictor.predict l ~pc:i.addr
        | None -> None
      in
      match dir with
      | Some d -> d
      | None -> F.Counter.is_taken table ((pcx lxor ghr) land mask))
  | Closure p -> p.F.Predictor.predict i.addr
  | Static_e Bp_sim.Always_taken -> true
  | Static_e Bp_sim.Always_not_taken -> false
  | Static_e Bp_sim.Btfn -> i.target < i.addr

let update_e e (i : Inst.t) pcx ghr =
  match e with
  | Table { table; mask; lbp } ->
      (match lbp with
      | Some l -> F.Loop_predictor.update l ~pc:i.addr ~taken:i.taken
      | None -> ());
      F.Counter.update table ((pcx lxor ghr) land mask) i.taken
  | Closure p -> p.F.Predictor.update i.addr i.taken
  | Static_e _ -> ()

(* The pivot configuration simulates the full capture and anchors the
   per-cluster extrapolation ratios. It is fixed — independent of the
   requested spec array — so a sweep over a sub-range of configs
   produces exactly the results of the same configs inside a larger
   sweep (the config-axis sharding invariant pinned in
   test/test_sweep.ml). *)
let pivot_name = "gshare-small"

(* The canaries also simulate the full capture, at distant points of
   the design space: {!Regions.Cell.calibrate} extrapolates each from
   its own prefix and compares against its known total, catching tail
   bias (engines that only diverge from the pivot once trained —
   invisible in a cold prefix) that the per-config statistical gate
   cannot see. *)
let canary_names = [| "gshare-big"; "tournament-small" |]

let run_sampled pt plan specs =
  Repro_util.Telemetry.with_span "sweep.sampled" @@ fun () ->
  let n = Array.length specs in
  let engines = Array.map realize specs in
  let pivot = realize (of_name pivot_name) in
  let canaries = Array.map (fun nm -> realize (of_name nm)) canary_names in
  let nc = Array.length canaries in
  let regions = plan.Regions.regions in
  let nr = Array.length regions in
  let p = plan.Regions.prefix_regions in
  let prefix_end = plan.Regions.prefix_end in
  let total = Regions.total_insts plan in
  let miss = Array.make (n * cells) 0 in
  let prefix_cells = Array.init (n * cells) (fun _ -> Array.make p 0.0) in
  let pivot_cells = Array.init cells (fun _ -> Array.make nr 0.0) in
  let canary_cells =
    Array.init (nc * cells) (fun _ -> Array.make nr 0.0)
  in
  let ghr = ref 0 in
  let cur = ref 0 in
  let cell_of (i : Inst.t) sec =
    if not i.taken then sec
    else if i.target < i.addr then 2 + sec
    else 4 + sec
  in
  (* Pass A — prefix: every config plus the pivot, with per-region
     miss deltas. State inside the prefix is exactly the full run's
     state (the prefix is contiguous from instruction 0). *)
  let feed_canaries (i : Inst.t) pcx cell =
    for c = 0 to nc - 1 do
      let e = Array.unsafe_get canaries c in
      if predict_e e i pcx !ghr <> i.taken then begin
        let row = canary_cells.((c * cells) + cell) in
        row.(!cur) <- row.(!cur) +. 1.0
      end;
      update_e e i pcx !ghr
    done
  in
  let warm_canaries (i : Inst.t) pcx =
    for c = 0 to nc - 1 do
      update_e (Array.unsafe_get canaries c) i pcx !ghr
    done
  in
  let feed_prefix (i : Inst.t) =
    let pcx = i.addr lsr 1 in
    (if i.warmup then begin
       update_e pivot i pcx !ghr;
       warm_canaries i pcx;
       for k = 0 to n - 1 do
         update_e (Array.unsafe_get engines k) i pcx !ghr
       done
     end
     else begin
       let sec = section_bit i in
       let cell = cell_of i sec in
       if predict_e pivot i pcx !ghr <> i.taken then begin
         let row = pivot_cells.(cell) in
         row.(!cur) <- row.(!cur) +. 1.0
       end;
       update_e pivot i pcx !ghr;
       feed_canaries i pcx cell;
       for k = 0 to n - 1 do
         let e = Array.unsafe_get engines k in
         if predict_e e i pcx !ghr <> i.taken then begin
           let j = (k * cells) + cell in
           miss.(j) <- miss.(j) + 1;
           let row = prefix_cells.(j) in
           row.(!cur) <- row.(!cur) +. 1.0
         end;
         update_e e i pcx !ghr
       done
     end);
    ghr := ((!ghr lsl 1) lor (if i.taken then 1 else 0)) land ghr_mask
  in
  for r = 0 to p - 1 do
    cur := r;
    Repro_isa.Packed_trace.replay_conditionals_range pt
      ~lo:regions.(r).Regions.lo ~hi:regions.(r).Regions.hi feed_prefix
  done;
  let ghr_prefix = !ghr in
  (* Pass B — tail: the pivot, plus the static schemes (stateless, so
     counting them exactly is free and they never need gating). *)
  let feed_tail_pivot (i : Inst.t) =
    let pcx = i.addr lsr 1 in
    (if i.warmup then begin
       update_e pivot i pcx !ghr;
       warm_canaries i pcx
     end
     else begin
       let sec = section_bit i in
       let cell = cell_of i sec in
       if predict_e pivot i pcx !ghr <> i.taken then begin
         let row = pivot_cells.(cell) in
         row.(!cur) <- row.(!cur) +. 1.0
       end;
       update_e pivot i pcx !ghr;
       feed_canaries i pcx cell;
       for k = 0 to n - 1 do
         match Array.unsafe_get engines k with
         | Static_e _ as e ->
             if predict_e e i pcx !ghr <> i.taken then begin
               let j = (k * cells) + cell in
               miss.(j) <- miss.(j) + 1
             end
         | Table _ | Closure _ -> ()
       done
     end);
    ghr := ((!ghr lsl 1) lor (if i.taken then 1 else 0)) land ghr_mask
  in
  for r = p to nr - 1 do
    cur := r;
    Repro_isa.Packed_trace.replay_conditionals_range pt
      ~lo:regions.(r).Regions.lo ~hi:regions.(r).Regions.hi feed_tail_pivot
  done;
  (* Gate every cell of every stateful config: extrapolate the tail
     per cluster against the pivot, or escalate the whole config. *)
  let insts_sc =
    let serial, parallel = Repro_isa.Packed_trace.counted pt in
    [| serial; parallel |]
  in
  let tol = Regions.default_tol in
  (* Canary calibration per cell: each canary's extrapolation is
     checked against its known full-trace total, and the gate charges
     every config the worst canary error as a floor plus the canaries'
     error-per-deviation price for more erratic configs. A canary
     that cannot calibrate (prefix too short) poisons the cell and
     all configs simulate it exactly. The per-cell floor divides by
     the three cause cells per section so their summed budgets stay
     within the section's tolerance. *)
  let cell_floor cell = float_of_int insts_sc.(cell land 1) /. 3000.0 in
  let cell_model =
    Array.init cells (fun cell ->
        let model = ref (Some (0.0, 0.0)) in
        for c = 0 to nc - 1 do
          match
            ( !model,
              Regions.Cell.calibrate ~plan ~pivot:pivot_cells.(cell)
                ~actual:canary_cells.((c * cells) + cell) )
          with
          | Some (ef, es), Some (e, d) ->
              model :=
                Some (Float.max ef e, Float.max es (e /. Float.max d 1.0))
          | _, None | None, _ -> model := None
        done;
        !model)
  in
  let approx = Array.make n None in
  let escalate = Array.make n false in
  for k = 0 to n - 1 do
    match engines.(k) with
    | Static_e _ -> ()
    | Table _ | Closure _ ->
        let e_miss = Array.make cells 0.0 and ci = Array.make cells 0.0 in
        let ok = ref true in
        for cell = 0 to cells - 1 do
          if !ok then begin
            match cell_model.(cell) with
            | None -> ok := false
            | Some (err_floor, err_scale) ->
            let floor = cell_floor cell in
            match
              Regions.Cell.gate ~plan ~tol ~floor ~err_floor ~err_scale
                ~pivot:pivot_cells.(cell)
                ~prefix:prefix_cells.((k * cells) + cell)
            with
            | Regions.Cell.Exact ->
                e_miss.(cell) <- float_of_int miss.((k * cells) + cell)
            | Regions.Cell.Approx { est; ci = c } ->
                e_miss.(cell) <- est;
                ci.(cell) <- c
            | Regions.Cell.Escalate -> ok := false
          end
        done;
        if !ok then approx.(k) <- Some { e_miss; ci } else escalate.(k) <- true
  done;
  (* Pass C — exact tail for escalated configs, continuing from their
     prefix state with the history register rewound to the prefix
     boundary: bit-identical to the full run. *)
  if Array.exists (fun b -> b) escalate then begin
    ghr := ghr_prefix;
    let feed_tail (i : Inst.t) =
      let pcx = i.addr lsr 1 in
      (if i.warmup then
         for k = 0 to n - 1 do
           if Array.unsafe_get escalate k then
             update_e (Array.unsafe_get engines k) i pcx !ghr
         done
       else begin
         let sec = section_bit i in
         let cell = cell_of i sec in
         for k = 0 to n - 1 do
           if Array.unsafe_get escalate k then begin
             let e = Array.unsafe_get engines k in
             if predict_e e i pcx !ghr <> i.taken then begin
               let j = (k * cells) + cell in
               miss.(j) <- miss.(j) + 1
             end;
             update_e e i pcx !ghr
           end
         done
       end);
      ghr := ((!ghr lsl 1) lor (if i.taken then 1 else 0)) land ghr_mask
    in
    Repro_isa.Packed_trace.replay_conditionals_range pt ~lo:prefix_end
      ~hi:total feed_tail
  end;
  (* Denominators are exact whatever the plan: instruction counts come
     from the capture, conditional counts from the plan's per-region
     sums (the scan counts them the same way the feed would). *)
  let conds_s =
    Array.fold_left (fun a r -> a + r.Regions.conds_s) 0 regions
  and conds_p =
    Array.fold_left (fun a r -> a + r.Regions.conds_p) 0 regions
  in
  Array.mapi
    (fun k spec ->
      { name = spec_name spec;
        insts_s = insts_sc.(0);
        insts_p = insts_sc.(1);
        conds_s;
        conds_p;
        miss = Array.sub miss (k * cells) cells;
        approx = approx.(k) })
    specs

let rec run src specs =
  match src with
  | Tool.Source.Sampled (pt, plan) ->
      if Regions.exhaustive plan then run (Tool.Source.Packed pt) specs
      else run_sampled pt plan specs
  | Tool.Source.Packed _ | Tool.Source.Stream _ ->
      run_exact src specs

and run_exact src specs =
  Repro_util.Telemetry.with_span "sweep.fused" @@ fun () ->
  let n = Array.length specs in
  let engines = Array.map realize specs in
  let miss = Array.make (n * cells) 0 in
  let insts_s = ref 0 and insts_p = ref 0 in
  let conds_s = ref 0 and conds_p = ref 0 in
  let ghr = ref 0 in
  (* One conditional branch, all configs; the history push is hoisted
     out of the per-config loop. Mirrors [Bp_sim.feed_conditional]. *)
  let feed_cond (i : Inst.t) =
    let pcx = i.addr lsr 1 in
    if i.warmup then
      for k = 0 to n - 1 do
        match Array.unsafe_get engines k with
        | Table { table; mask; lbp } ->
            (match lbp with
            | Some l -> F.Loop_predictor.update l ~pc:i.addr ~taken:i.taken
            | None -> ());
            F.Counter.update table ((pcx lxor !ghr) land mask) i.taken
        | Closure p -> p.F.Predictor.update i.addr i.taken
        | Static_e _ -> ()
      done
    else begin
      let sec = section_bit i in
      (if sec = 0 then incr conds_s else incr conds_p);
      (* cause cell offset: decided once per event, not per config *)
      let cell =
        if not i.taken then sec
        else if i.target < i.addr then 2 + sec
        else 4 + sec
      in
      for k = 0 to n - 1 do
        let pred =
          match Array.unsafe_get engines k with
          | Table { table; mask; lbp } -> (
              let idx = (pcx lxor !ghr) land mask in
              let dir =
                match lbp with
                | Some l -> F.Loop_predictor.predict l ~pc:i.addr
                | None -> None
              in
              match dir with
              | Some d -> d
              | None -> F.Counter.is_taken table idx)
          | Closure p -> p.F.Predictor.predict i.addr
          | Static_e Bp_sim.Always_taken -> true
          | Static_e Bp_sim.Always_not_taken -> false
          | Static_e Bp_sim.Btfn -> i.target < i.addr
        in
        if pred <> i.taken then begin
          let j = (k * cells) + cell in
          Array.unsafe_set miss j (Array.unsafe_get miss j + 1)
        end;
        match Array.unsafe_get engines k with
        | Table { table; mask; lbp } ->
            (match lbp with
            | Some l -> F.Loop_predictor.update l ~pc:i.addr ~taken:i.taken
            | None -> ());
            F.Counter.update table ((pcx lxor !ghr) land mask) i.taken
        | Closure p -> p.F.Predictor.update i.addr i.taken
        | Static_e _ -> ()
      done
    end;
    ghr := ((!ghr lsl 1) lor (if i.taken then 1 else 0)) land ghr_mask
  in
  (match src with
  | Tool.Source.Packed pt ->
      let serial, parallel = Repro_isa.Packed_trace.counted pt in
      insts_s := serial;
      insts_p := parallel;
      Repro_isa.Packed_trace.replay_conditionals pt feed_cond
  | Tool.Source.Stream _ ->
      Tool.run_all_source src
        [ (fun i ->
            if i.Inst.warmup then begin
              if i.Inst.kind = Inst.Cond_branch then feed_cond i
            end
            else begin
              (if section_bit i = 0 then incr insts_s else incr insts_p);
              if i.Inst.kind = Inst.Cond_branch then feed_cond i
            end) ]
  | Tool.Source.Sampled _ -> assert false (* dispatched in [run] *));
  Array.mapi
    (fun k spec ->
      { name = spec_name spec;
        insts_s = !insts_s;
        insts_p = !insts_p;
        conds_s = !conds_s;
        conds_p = !conds_p;
        miss = Array.sub miss (k * cells) cells;
        approx = None })
    specs

let predictor_name t = t.name

let scope_pair s p = function
  | Branch_mix.Total -> s + p
  | Branch_mix.Only Repro_isa.Section.Serial -> s
  | Branch_mix.Only Repro_isa.Section.Parallel -> p

let insts t scope = scope_pair t.insts_s t.insts_p scope
let conditional_branches t scope = scope_pair t.conds_s t.conds_p scope

let cause_base = function
  | Bp_sim.On_not_taken -> 0
  | Bp_sim.On_taken_backward -> 2
  | Bp_sim.On_taken_forward -> 4

let scope_pair_f s p = function
  | Branch_mix.Total -> s +. p
  | Branch_mix.Only Repro_isa.Section.Serial -> s
  | Branch_mix.Only Repro_isa.Section.Parallel -> p

(* Float cell reads: exact integer counts (exactly representable —
   the unsampled accessors below are unchanged arithmetic) or the
   extrapolation overlay. *)
let misses_of_cause_f t cause scope =
  let b = cause_base cause in
  match t.approx with
  | None -> float_of_int (scope_pair t.miss.(b) t.miss.(b + 1) scope)
  | Some a -> scope_pair_f a.e_miss.(b) a.e_miss.(b + 1) scope

let mispredictions_f t scope =
  List.fold_left
    (fun acc c -> acc +. misses_of_cause_f t c scope)
    0.0 Bp_sim.causes

let approx t = t.approx <> None

let misses_of_cause t cause scope =
  match t.approx with
  | None ->
      let b = cause_base cause in
      scope_pair t.miss.(b) t.miss.(b + 1) scope
  | Some _ -> int_of_float (Float.round (misses_of_cause_f t cause scope))

let mispredictions t scope =
  match t.approx with
  | None ->
      List.fold_left
        (fun acc c -> acc + misses_of_cause t c scope)
        0 Bp_sim.causes
  | Some _ -> int_of_float (Float.round (mispredictions_f t scope))

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan else mispredictions_f t scope /. (float_of_int n /. 1000.0)

let misprediction_rate t scope =
  let n = conditional_branches t scope in
  if n = 0 then nan else mispredictions_f t scope /. float_of_int n

let mpki_by_cause t scope cause =
  let n = insts t scope in
  if n = 0 then nan
  else misses_of_cause_f t cause scope /. (float_of_int n /. 1000.0)

let mpki_ci t scope =
  match t.approx with
  | None -> 0.0
  | Some a ->
      let n = insts t scope in
      if n = 0 then 0.0
      else
        let pick b = scope_pair_f a.ci.(b) a.ci.(b + 1) scope in
        (pick 0 +. pick 2 +. pick 4) /. (float_of_int n /. 1000.0)
