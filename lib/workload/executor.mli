(** Dynamic execution of a synthesized program.

    The executor interprets a {!Program.t} and pushes one
    {!Repro_isa.Inst.t} per dynamic instruction to the consumer,
    modelling thread 0 of an 8-thread run exactly as the paper
    measures it: a cold startup sweep (program loading and library
    initialisation), then [rounds] alternations of a serial phase
    (master thread between parallel regions) and a parallel phase
    (thread 0's share of the parallel work). Kernel call sites are
    visited round-robin inside each phase.

    Every run of the returned trace replays the identical instruction
    stream: all randomness is reseeded from the profile seed. The
    pushed instruction record is reused; see {!Repro_isa.Inst}. *)

type t

val create : ?insts:int -> Profile.t -> t
(** Generate the program for [profile] ({!Codegen.generate}) and fix
    the dynamic budget ([insts] overrides [profile.total_insts]). *)

val program : t -> Program.t
val profile : t -> Profile.t

val trace : t -> Repro_isa.Trace.t
(** The replayable dynamic trace. *)

val run : t -> (Repro_isa.Inst.t -> unit) -> unit
(** One-shot equivalent of [Trace.iter (trace t)]. *)

val packed : ?chunk_capacity:int -> t -> Repro_isa.Packed_trace.t
(** Capture the dynamic stream once into a
    {!Repro_isa.Packed_trace.t}; replays of the capture are
    observationally identical to re-running {!trace} at a fraction of
    the cost (no RNG, behaviour models or CFG walk). *)
