module Rng = Repro_util.Rng
module Inst = Repro_isa.Inst
module Section = Repro_isa.Section
module Trace = Repro_isa.Trace

type t = { profile : Profile.t; program : Program.t; insts : int }

let create ?insts profile =
  let program = Codegen.generate profile in
  { profile; program; insts = Option.value insts ~default:profile.total_insts }

let program t = t.program
let profile t = t.profile

exception Phase_done

(* Per-run interpreter state. *)
type state = {
  rng : Rng.t;
  emit : Inst.t -> unit;
  inst : Inst.t; (* reused record *)
  mutable remaining : int; (* soft per-phase budget, checked between units *)
  mutable hard_remaining : int; (* absolute cap; cuts execution anywhere *)
  mutable slack : int; (* tolerated per-phase overshoot before a hard cut *)
  mutable ghist : int;
  mutable section : Section.t;
  mutable warmup : bool;
  mutable stack : int list;
  mutable until_sys : int;
  mutable serial_pos : int; (* kernel rotation, persists across rounds *)
  mutable parallel_pos : int;
  mutable path : int; (* current control-flow path id *)
  mutable path_weights : (float * int) array; (* Zipf-ish path sampler *)
  mutable loop_depth : int;
  sys_interval : int;
  sys_block : Program.block option;
}

let ghist_mask = (1 lsl 24) - 1
let kernel_pc = 0x7000_0000 (* syscall "target" outside the image *)

(* Emit all instructions of a block. [taken] applies to a Cond
   terminator; [target] supplies Callt/Ret destinations. *)
let emit_block st (b : Program.block) ~taken ~target =
  let sizes = b.inst_sizes in
  let n = Array.length sizes in
  let addr = ref b.addr in
  for i = 0 to n - 1 do
    (* Soft phase budgets are enforced between kernel calls so loops
       complete and the loop predictor sees uncorrupted trip counts;
       a bounded slack keeps giant kernels from skewing the
       serial/parallel instruction split. *)
    if st.hard_remaining <= 0 || st.remaining <= -st.slack then
      raise Phase_done;
    st.hard_remaining <- st.hard_remaining - 1;
    st.remaining <- st.remaining - 1;
    let inst = st.inst in
    inst.Inst.addr <- !addr;
    inst.Inst.size <- sizes.(i);
    inst.Inst.section <- st.section;
    inst.Inst.warmup <- st.warmup;
    if i < n - 1 then begin
      inst.Inst.kind <- Inst.Plain;
      inst.Inst.taken <- false;
      inst.Inst.target <- 0
    end
    else begin
      (match b.term with
      | Program.Fall ->
          inst.Inst.kind <- Inst.Plain;
          inst.Inst.taken <- false;
          inst.Inst.target <- 0
      | Program.Cond c ->
          inst.Inst.kind <- Inst.Cond_branch;
          inst.Inst.taken <- taken;
          inst.Inst.target <- c.ctarget;
          st.ghist <- ((st.ghist lsl 1) lor Bool.to_int taken) land ghist_mask
      | Program.Jump j ->
          inst.Inst.kind <- Inst.Uncond_direct;
          inst.Inst.taken <- true;
          inst.Inst.target <- j.jtarget
      | Program.Callt c ->
          inst.Inst.kind <-
            (if Array.length c.targets > 1 then Inst.Indirect_call else Inst.Call);
          inst.Inst.taken <- true;
          inst.Inst.target <- target
      | Program.Ret ->
          inst.Inst.kind <- Inst.Return;
          inst.Inst.taken <- true;
          inst.Inst.target <- target
      | Program.Sys ->
          inst.Inst.kind <- Inst.Syscall;
          inst.Inst.taken <- true;
          inst.Inst.target <- kernel_pc)
    end;
    st.emit inst;
    addr := !addr + sizes.(i)
  done

let emit_plain_block st b = emit_block st b ~taken:false ~target:0

let maybe_syscall st =
  match st.sys_block with
  | Some b when st.sys_interval > 0 ->
      st.until_sys <- st.until_sys - 1;
      if st.until_sys <= 0 then begin
        st.until_sys <- st.sys_interval;
        emit_block st b ~taken:true ~target:0
      end
  | Some _ | None -> ()

let rec exec_stmts st stmts = List.iter (exec_stmt st) stmts

and exec_stmt st = function
  | Program.Basic b -> emit_plain_block st b
  | Program.Call_site b -> exec_call st b
  | Program.If i -> exec_if st i
  | Program.Loop l -> exec_loop st l

and exec_if st (i : Program.if_stmt) =
  let behavior =
    match i.icond.term with
    | Program.Cond { cbehavior = Some b; _ } -> b
    | Program.Cond { cbehavior = None; _ } | Program.Fall | Program.Jump _
    | Program.Callt _ | Program.Ret | Program.Sys ->
        invalid_arg "Executor: if head lacks a behaviour"
  in
  let taken =
    Behavior.next behavior st.rng ~global_hist:st.ghist ~path:st.path
  in
  emit_block st i.icond ~taken ~target:0;
  if taken then exec_stmts st i.ielse
  else begin
    exec_stmts st i.ithen;
    match i.iskip with
    | Some skip -> emit_block st skip ~taken:true ~target:0
    | None -> ()
  end

and exec_loop st (l : Program.loop_stmt) =
  let trip = Trip.sample l.ltrip st.rng in
  st.loop_depth <- st.loop_depth + 1;
  (try
     for i = 1 to trip do
       (* The control-flow path through the code is redrawn once per
          outermost-loop iteration: path-dependent branch sites keep
          their direction across the whole inner-loop nest, modelling
          data-dependent phases that repeat (and stay learnable). *)
       if st.loop_depth = 1 then
         st.path <- Repro_util.Rng.choose_weighted st.rng st.path_weights;
       exec_stmts st l.lbody;
       emit_block st l.lback ~taken:(i < trip) ~target:0
     done
   with e ->
     st.loop_depth <- st.loop_depth - 1;
     raise e);
  st.loop_depth <- st.loop_depth - 1

and exec_call st (b : Program.block) =
  match b.term with
  | Program.Callt c ->
      let callee =
        if Array.length c.targets = 1 then c.targets.(0)
        else
          let i =
            match c.csel with
            | None -> Rng.int st.rng (Array.length c.targets)
            | Some sel ->
                (* A behaviour-driven selector alternates between the
                   first two targets. *)
                if Behavior.next sel st.rng ~global_hist:st.ghist ~path:st.path
            then 0
            else 1
          in
          c.targets.(i)
      in
      emit_block st b ~taken:true ~target:callee.Program.entry;
      let ret_addr = b.addr + Program.block_bytes b in
      st.stack <- ret_addr :: st.stack;
      exec_proc st callee
  | Program.Fall | Program.Cond _ | Program.Jump _ | Program.Ret | Program.Sys ->
      invalid_arg "Executor: call site lacks a Callt terminator"

and exec_proc st (p : Program.proc) =
  exec_stmts st p.pbody;
  let ret_target =
    match st.stack with
    | addr :: rest ->
        st.stack <- rest;
        addr
    | [] -> kernel_pc
  in
  emit_block st p.pret ~taken:true ~target:ret_target

(* Startup sweep: touch the cold image once, straight through. *)
let init_sweep st (prog : Program.t) budget =
  st.remaining <- budget;
  st.section <- Section.Serial;
  st.warmup <- true;
  (try
     Array.iter
       (fun p ->
         if st.remaining <= 0 then raise Phase_done;
         Program.iter_blocks p (fun b ->
             match b.Program.term with
             | Program.Ret -> emit_block st b ~taken:true ~target:kernel_pc
             | Program.Fall | Program.Cond _ | Program.Jump _ | Program.Callt _
             | Program.Sys ->
                 emit_plain_block st b))
       prog.cold_procs
   with Phase_done -> ());
  st.warmup <- false

let phase st ~section ~budget ~(calls : (Program.block * Program.proc) array) =
  if budget > 0 && Array.length calls > 0 then begin
    st.remaining <- budget;
    (* Tolerate finishing the kernel call in flight, but never let the
       overshoot dwarf a small phase (it would skew the
       serial/parallel instruction split). *)
    st.slack <- max 2_000 (budget / 8);
    st.section <- section;
    st.stack <- [];
    (* Kernel rotation persists across rounds so every kernel gets its
       share of execution even when one phase only fits a few calls. *)
    let pos () =
      match section with
      | Section.Serial -> st.serial_pos
      | Section.Parallel -> st.parallel_pos
    in
    let bump () =
      match section with
      | Section.Serial -> st.serial_pos <- st.serial_pos + 1
      | Section.Parallel -> st.parallel_pos <- st.parallel_pos + 1
    in
    try
      while st.remaining > 0 do
        maybe_syscall st;
        let call_block, kernel = calls.(pos () mod Array.length calls) in
        bump ();
        emit_block st call_block ~taken:true ~target:kernel.Program.entry;
        st.stack <- (call_block.Program.addr + Program.block_bytes call_block)
                    :: st.stack;
        exec_proc st kernel
      done
    with Phase_done -> ()
  end

let reset_behaviors (prog : Program.t) =
  List.iter
    (fun p ->
      Program.iter_blocks p (fun b ->
          match b.Program.term with
          | Program.Cond { cbehavior = Some beh; _ } -> Behavior.reset beh
          | Program.Cond { cbehavior = None; _ } | Program.Fall
          | Program.Jump _ | Program.Callt _ | Program.Ret | Program.Sys -> ()))
    prog.procs

let kernel_calls (prog : Program.t) kernels =
  (* The driver's call-site blocks, in kernel order. *)
  let calls =
    List.filter_map
      (function
        | Program.Call_site b -> Some b
        | Program.Basic _ | Program.Loop _ | Program.If _ -> None)
      prog.driver.Program.pbody
  in
  let by_target k =
    List.find
      (fun b ->
        match b.Program.term with
        | Program.Callt { targets; _ } ->
            Array.length targets = 1 && targets.(0) == k
        | Program.Fall | Program.Cond _ | Program.Jump _ | Program.Ret
        | Program.Sys ->
            false)
      calls
  in
  Array.map (fun k -> (by_target k, k)) kernels

let run t f =
  let prog = t.program in
  let p = t.profile in
  reset_behaviors prog;
  let sys_interval =
    if p.syscall_per_mil <= 0.0 then 0
    else max 1 (int_of_float (1_000_000.0 /. p.syscall_per_mil))
  in
  let sys_block =
    List.find_map
      (function
        | Program.Basic ({ Program.term = Program.Sys; _ } as b) -> Some b
        | Program.Basic _ | Program.Loop _ | Program.If _ | Program.Call_site _
          ->
            None)
      prog.driver.Program.pbody
  in
  let st =
    { rng = Rng.create (p.seed lxor 0x5eed);
      emit = f;
      inst = Inst.make ~addr:0 ~size:1 ();
      remaining = 0;
      hard_remaining = max_int;
      slack = max_int;
      ghist = 0;
      section = Section.Serial;
      warmup = false;
      stack = [];
      until_sys = max 1 sys_interval;
      serial_pos = 0;
      parallel_pos = 0;
      path = 0;
      loop_depth = 0;
      path_weights =
        (let k = max p.serial.n_paths p.parallel.n_paths in
         Array.init k (fun i -> (1.0 /. float_of_int (i + 1), i)));
      sys_interval;
      sys_block }
  in
  let total = t.insts in
  (* Phases overshoot their soft budget by up to one kernel call; the
     hard cap bounds the whole run to ~125% of the requested length. *)
  st.hard_remaining <- total + (total / 4);
  let sweep_budget = min (total / 4) (Program.static_bytes prog / 4) in
  init_sweep st prog sweep_budget;
  let remaining_total = total - sweep_budget in
  let serial_total =
    int_of_float (float_of_int remaining_total *. p.serial_fraction)
  in
  let parallel_total = remaining_total - serial_total in
  let serial_calls = kernel_calls prog prog.serial_kernels in
  let parallel_calls = kernel_calls prog prog.parallel_kernels in
  for _round = 1 to p.rounds do
    phase st ~section:Section.Serial ~budget:(serial_total / p.rounds)
      ~calls:serial_calls;
    phase st ~section:Section.Parallel ~budget:(parallel_total / p.rounds)
      ~calls:parallel_calls
  done

let trace t = Trace.make (fun f -> run t f)

let packed ?chunk_capacity t =
  Repro_isa.Packed_trace.of_trace ?chunk_capacity (trace t)
