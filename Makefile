# Convenience targets; `make smoke` is the CI entry point and
# exercises the parallel + cached experiment path end to end.

DUNE ?= dune

.PHONY: all build test smoke bench bench-json ci ci-sampled ci-faults ci-serve clean cache-clear

all: build

build:
	$(DUNE) build @all

test: build
	$(DUNE) runtest

# Fast end-to-end check: full test suite, then a parallel fig1
# regeneration twice over a fresh cache — the second run must be
# served entirely from disk (see the engine-stats footer).
smoke: test bench-json
	rm -rf _smoke_cache
	REPRO_SCALE=0.05 REPRO_CACHE_DIR=_smoke_cache \
	  $(DUNE) exec bench/main.exe -- fig1 -j 4
	REPRO_SCALE=0.05 REPRO_CACHE_DIR=_smoke_cache \
	  $(DUNE) exec bench/main.exe -- fig1 -j 4
	rm -rf _smoke_cache

bench: build
	$(DUNE) exec bench/main.exe

# Emit the machine-readable bench report at a small scale, then
# re-parse and type-check it; a missing or malformed file fails.
bench-json: build
	rm -f BENCH_results.json
	REPRO_SCALE=0.05 REPRO_CACHE=0 \
	  $(DUNE) exec bench/main.exe -- fig1 --json BENCH_results.json
	test -s BENCH_results.json
	$(DUNE) exec bench/main.exe -- --check-json BENCH_results.json

# Full CI gate: build everything, run the whole test suite (golden,
# qcheck differential, packed-replay, fused-sweep and sampling
# identity/accuracy tests included), then regenerate
# BENCH_results.json over the trace-sweep figures — whose entries
# carry the stream-vs-replay probe (stream_ms / replay_ms /
# sweep_speedup), the fused-kernel probe (unfused_ms / fused_ms /
# fused_speedup) and the sampling probe (sampled_ms / sampled_speedup
# / max_rel_error) — and validate the emitted schema (v7); the check
# fails if any sweep's fused_speedup or sampled_speedup drops below
# 1.0, or any max_rel_error exceeds 0.02. fig8p adds the learned
# block (lru_mpki / preuse_mpki / crossover_size) to the file.
ci: build
	$(DUNE) runtest
	rm -f BENCH_results.json
	REPRO_SCALE=0.05 REPRO_CACHE=0 \
	  $(DUNE) exec bench/main.exe -- \
	    fig1 fig5 fig7 fig8 fig8p fig9 --sample 0.25 --json BENCH_results.json
	test -s BENCH_results.json
	$(DUNE) exec bench/main.exe -- --check-json BENCH_results.json
	$(MAKE) ci-sampled
	$(MAKE) ci-faults
	$(MAKE) ci-serve

# Sampling gate: the trace-sweep figures under representative-region
# sampling at fraction 0.25, over a fresh cache so the sampling spec
# lands in every cache key and journal fingerprint from scratch. The
# schema-v7 entries carry the sampled probe (sampled_ms /
# sampled_speedup / max_rel_error); the check fails if any sweep's
# sampled run is slower than the streaming run (sampled_speedup <
# 1.0) or strays beyond the 2% accuracy gate (max_rel_error > 0.02).
ci-sampled: build
	rm -rf _sampled_cache BENCH_sampled.json
	REPRO_SCALE=0.05 REPRO_CACHE_DIR=_sampled_cache \
	  $(DUNE) exec bench/main.exe -- \
	    fig5 fig7 fig8 fig8p fig9 --sample 0.25 --json BENCH_sampled.json
	test -s BENCH_sampled.json
	$(DUNE) exec bench/main.exe -- --check-json BENCH_sampled.json
	rm -rf _sampled_cache BENCH_sampled.json

# Fault-torture gate: the tier-1 suite plus a bench sweep with every
# fault site firing at 5% (seed 42). Supervision must absorb the
# injected failures — the run completes, emits schema-v7 JSON that
# validates, and the injected-fault counter in the engine footer
# proves the sites actually fired. The fresh cache directory also
# exercises quarantine and torn-write recovery end to end.
ci-faults: build
	$(DUNE) runtest
	rm -rf _faults_cache BENCH_faults.json
	REPRO_SCALE=0.05 REPRO_CACHE_DIR=_faults_cache \
	  REPRO_FAULTS=all:0.05:42 \
	  $(DUNE) exec bench/main.exe -- fig1 fig5 fig7 --json BENCH_faults.json
	test -s BENCH_faults.json
	$(DUNE) exec bench/main.exe -- --check-json BENCH_faults.json
	rm -rf _faults_cache BENCH_faults.json

# Daemon gate: drive an in-process characterization server with a
# short closed-loop load test over a fresh cache — 4 concurrent
# clients, a zero-downtime reload at the halfway mark — and validate
# the emitted schema-v7 serve block (p50/p90/p99 latency, throughput,
# update_lag_ms). --expect-serve makes a missing serve run an error,
# and the check fails unless every concurrent response was
# byte-identical to the one-shot renderings.
ci-serve: build
	rm -rf _serve_cache BENCH_serve.json
	REPRO_SCALE=0.05 REPRO_CACHE_DIR=_serve_cache \
	  $(DUNE) exec bench/main.exe -- \
	    --serve-bench --serve-clients 4 --serve-requests 40 -j 1 \
	    --json BENCH_serve.json
	test -s BENCH_serve.json
	$(DUNE) exec bench/main.exe -- --check-json BENCH_serve.json --expect-serve
	rm -rf _serve_cache BENCH_serve.json

clean:
	$(DUNE) clean
	rm -rf _cache _smoke_cache _faults_cache _serve_cache _sampled_cache \
	  BENCH_faults.json BENCH_serve.json BENCH_sampled.json

cache-clear:
	$(DUNE) exec bin/repro_cli.exe -- cache clear
