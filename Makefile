# Convenience targets; `make smoke` is the CI entry point and
# exercises the parallel + cached experiment path end to end.

DUNE ?= dune

.PHONY: all build test smoke bench clean cache-clear

all: build

build:
	$(DUNE) build @all

test: build
	$(DUNE) runtest

# Fast end-to-end check: full test suite, then a parallel fig1
# regeneration twice over a fresh cache — the second run must be
# served entirely from disk (see the engine-stats footer).
smoke: test
	rm -rf _smoke_cache
	REPRO_SCALE=0.05 REPRO_CACHE_DIR=_smoke_cache \
	  $(DUNE) exec bench/main.exe -- fig1 -j 4
	REPRO_SCALE=0.05 REPRO_CACHE_DIR=_smoke_cache \
	  $(DUNE) exec bench/main.exe -- fig1 -j 4
	rm -rf _smoke_cache

bench: build
	$(DUNE) exec bench/main.exe

clean:
	$(DUNE) clean
	rm -rf _cache _smoke_cache

cache-clear:
	$(DUNE) exec bin/repro_cli.exe -- cache clear
