(** Front-end rebalancing: the paper's methodology as a library.

    Given a set of workloads, sweep candidate front-end designs,
    estimate each design's performance cost from measured miss rates
    ({!Repro_uarch.Timing}) and its area/power from
    {!Repro_uarch.Mcpat}, and recommend the cheapest design whose
    estimated slowdown against the baseline core stays under a
    threshold. Applied to the three HPC suites this reproduces the
    paper's tailored configuration; applied to SPEC INT it refuses to
    downsize. *)

type estimate = {
  config : Repro_uarch.Frontend_config.t;
  area_mm2 : float;
  power_w : float;
  slowdown : float;
      (** worst-case per-workload time ratio vs the baseline core
          (1.0 = no loss) *)
  avg_slowdown : float;
}

type recommendation = {
  chosen : estimate;
  baseline : estimate;
  candidates : estimate list;  (** every swept design, by area *)
  rationale : string list;
}

val default_candidates : Repro_uarch.Frontend_config.t list
(** The cross-product the paper's Section IV explores: I-cache
    {8,16,32}KB x {64,128}B lines, tournament BP {2KB small,16KB big}
    x {with, without} loop predictor, BTB {256,512,2048} entries. *)

val estimate :
  ?insts:int ->
  Repro_uarch.Frontend_config.t ->
  Repro_workload.Profile.t list ->
  estimate
(** Measure the configuration against every workload. *)

val recommend :
  ?insts:int ->
  ?max_slowdown:float ->
  ?candidates:Repro_uarch.Frontend_config.t list ->
  Repro_workload.Profile.t list ->
  recommendation
(** [recommend profiles] picks the smallest-area candidate whose
    worst-case slowdown is below [max_slowdown] (default 3%).
    Raises [Invalid_argument] on an empty profile or candidate list. *)
