(** Ablation study of the tailored front-end: which of the three
    downsized structures contributes how much of the area/power
    saving, and which costs how much performance, on a given workload
    set. DESIGN.md calls out the three sizing decisions (I-cache
    16KB/128B, BP 2KB+LBP, BTB 256); this isolates each. *)

type variant = {
  vname : string;
  config : Repro_uarch.Frontend_config.t;
}

val variants : variant list
(** Baseline, the three single-structure downsizings, the three
    pairwise combinations leaving one structure at baseline size, and
    the full tailored design. *)

type row = {
  variant : variant;
  area_mm2 : float;
  power_w : float;
  area_saving : float;  (** vs baseline core *)
  power_saving : float;
  avg_slowdown : float;  (** mean single-core time ratio vs baseline *)
  worst_slowdown : float;
}

val run :
  ?insts:int -> Repro_workload.Profile.t list -> row list
(** Measure every variant over the workloads (one trace pass per
    workload, shared across variants). *)

val table : row list -> Repro_util.Table.t
