module U = Repro_uarch
module W = Repro_workload

type point = {
  n_cores : int;
  serial_share : float;
  tailored_vs_baseline : float;
  asymmetric_vs_baseline : float;
}

(* Serial work S is fixed; parallel work per thread is P/n. The
   measured thread executes S + P/n instructions, so its serial share
   at n threads follows from the share at the calibration point. *)
let serial_share_at ~base_share ~base_threads n =
  if base_share <= 0.0 then 0.0
  else begin
    let s = base_share in
    let p_per_thread = (1.0 -. s) in
    (* parallel work per thread scales with base_threads / n *)
    let p_n = p_per_thread *. float_of_int base_threads /. float_of_int n in
    s /. (s +. p_n)
  end

let cmp_time ~n_cores (p : W.Profile.t) (m_master : U.Timing.measurement)
    (m_worker : U.Timing.measurement) ~serial_share =
  let stall = p.perf.data_stall_cpi in
  (* Rescale measured instruction counts to the target serial share,
     keeping total thread-0 instructions constant. *)
  let total =
    float_of_int (m_master.U.Timing.serial_insts + m_master.U.Timing.parallel_insts)
  in
  let s = total *. serial_share in
  let par0 = total -. s in
  let parallel_work = par0 *. float_of_int n_cores in
  let cpi_ser = U.Timing.cpi ~data_stall:stall m_master.U.Timing.serial in
  let cpi_par =
    Float.max
      (U.Timing.cpi ~data_stall:stall m_master.U.Timing.parallel)
      (U.Timing.cpi ~data_stall:stall m_worker.U.Timing.parallel)
  in
  let eff = float_of_int n_cores ** p.perf.scale_alpha in
  (s *. cpi_ser) +. (parallel_work *. cpi_par /. eff)

let sweep ?insts ?(cores = [ 8; 16; 32; 64 ]) (p : W.Profile.t) =
  let executor = W.Executor.create ?insts p in
  let trace = W.Executor.trace executor in
  let m_base, m_tail =
    match
      U.Timing.measure_many
        [ U.Frontend_config.baseline; U.Frontend_config.tailored ]
        trace
    with
    | [ a; b ] -> (a, b)
    | _ -> assert false
  in
  List.map
    (fun n ->
      let share =
        serial_share_at ~base_share:p.serial_fraction ~base_threads:8 n
      in
      let baseline = cmp_time ~n_cores:n p m_base m_base ~serial_share:share in
      let tailored = cmp_time ~n_cores:n p m_tail m_tail ~serial_share:share in
      let asymmetric =
        cmp_time ~n_cores:n p m_base m_tail ~serial_share:share
      in
      { n_cores = n;
        serial_share = share;
        tailored_vs_baseline = tailored /. baseline;
        asymmetric_vs_baseline = asymmetric /. baseline })
    cores

let table name points =
  let open Repro_util.Table in
  let t =
    create
      ~title:
        (Printf.sprintf
           "Thread scaling for %s: the serial bottleneck grows with cores"
           name)
      [ ("cores", Right); ("serial share", Right);
        ("Tailored vs Baseline", Right); ("Asymmetric vs Baseline", Right) ]
  in
  List.iter
    (fun pt ->
      add_row t
        [ string_of_int pt.n_cores;
          fmt_pct pt.serial_share;
          fmt_ratio pt.tailored_vs_baseline;
          fmt_ratio pt.asymmetric_vs_baseline ])
    points;
  t
