(** Extension studies beyond the paper's evaluation:

    - {!predictor_table}: the Fig. 5 sweep widened with a perceptron,
      a PAg two-level local predictor, and the three static schemes
      (always-taken, always-not-taken, BTFN). BTFN is the natural
      static baseline for the paper's bias findings — if HPC branches
      are mostly backward-taken/forward-not-taken, how far does a
      zero-storage decoder-only scheme get?
    - {!prefetch_table}: the tailored I-cache with and without an
      explicit next-line prefetcher, against the baseline — testing
      the paper's "wide line acts as a prefetch buffer" remark.
    - {!predictability_table}: trace learnability (novelty rate of
      (site, history) pairs) and working-set knees per suite — the two
      quantities that explain *why* the paper's downsizing is safe for
      HPC. *)

val predictor_table :
  ?insts:int -> benchmarks:string list -> unit -> Repro_util.Table.t

val prefetch_table :
  ?insts:int -> benchmarks:string list -> unit -> Repro_util.Table.t

val predictability_table : ?insts:int -> unit -> Repro_util.Table.t
(** One row per suite: novelty rate, pairs/site, working-set knee. *)
