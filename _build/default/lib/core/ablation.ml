module U = Repro_uarch
module W = Repro_workload

type variant = { vname : string; config : U.Frontend_config.t }

let base = U.Frontend_config.baseline
let tail = U.Frontend_config.tailored

let with_icache (c : U.Frontend_config.t) =
  { c with
    icache_bytes = tail.icache_bytes;
    icache_line = tail.icache_line;
    icache_assoc = tail.icache_assoc }

let with_bp (c : U.Frontend_config.t) =
  { c with bp = tail.bp; bp_loop = tail.bp_loop }

let with_btb (c : U.Frontend_config.t) =
  { c with btb_entries = tail.btb_entries; btb_assoc = tail.btb_assoc }

let variants =
  [ { vname = "baseline"; config = base };
    { vname = "small I$ only"; config = with_icache base };
    { vname = "small BP+LBP only"; config = with_bp base };
    { vname = "small BTB only"; config = with_btb base };
    { vname = "all but I$"; config = with_btb (with_bp base) };
    { vname = "all but BP"; config = with_btb (with_icache base) };
    { vname = "all but BTB"; config = with_bp (with_icache base) };
    { vname = "tailored (all)"; config = tail } ]

type row = {
  variant : variant;
  area_mm2 : float;
  power_w : float;
  area_saving : float;
  power_saving : float;
  avg_slowdown : float;
  worst_slowdown : float;
}

let workload_time (p : W.Profile.t) (m : U.Timing.measurement) =
  let stall = p.perf.data_stall_cpi in
  (float_of_int m.U.Timing.serial_insts
  *. U.Timing.cpi ~data_stall:stall m.U.Timing.serial)
  +. (float_of_int m.U.Timing.parallel_insts
     *. U.Timing.cpi ~data_stall:stall m.U.Timing.parallel)

let run ?insts profiles =
  if profiles = [] then invalid_arg "Ablation.run: no profiles";
  let configs = List.map (fun v -> v.config) variants in
  (* One pass per workload measures every variant. *)
  let per_workload =
    List.map
      (fun (p : W.Profile.t) ->
        let executor = W.Executor.create ?insts p in
        let ms = U.Timing.measure_many configs (W.Executor.trace executor) in
        let base_time = workload_time p (List.hd ms) in
        List.map (fun m -> workload_time p m /. base_time) ms)
      profiles
  in
  List.mapi
    (fun i v ->
      let ratios = List.map (fun times -> List.nth times i) per_workload in
      { variant = v;
        area_mm2 = U.Mcpat.core_area_mm2 v.config;
        power_w = U.Mcpat.core_power_w v.config;
        area_saving = U.Mcpat.area_saving_vs_baseline v.config;
        power_saving = U.Mcpat.power_saving_vs_baseline v.config;
        avg_slowdown = Repro_util.Stats.mean ratios;
        worst_slowdown = List.fold_left Float.max neg_infinity ratios })
    variants

let table entries =
  let open Repro_util.Table in
  let t =
    create ~title:"Ablation: per-structure contribution of the tailored design"
      [ ("variant", Left); ("area mm2", Right); ("area saved", Right);
        ("power W", Right); ("power saved", Right); ("avg slowdown", Right);
        ("worst slowdown", Right) ]
  in
  List.iter
    (fun r ->
      add_row t
        [ r.variant.vname;
          fmt_float ~decimals:3 r.area_mm2;
          fmt_pct r.area_saving;
          fmt_float ~decimals:3 r.power_w;
          fmt_pct r.power_saving;
          Printf.sprintf "%+.1f%%" (100.0 *. (r.avg_slowdown -. 1.0));
          Printf.sprintf "%+.1f%%" (100.0 *. (r.worst_slowdown -. 1.0)) ])
    entries;
  t
