(** Thread-count sensitivity (paper Section III-D).

    The paper observes that the serial-instruction share of a parallel
    application grows with thread count — fma3d and nab go from ~4% of
    instructions at 8 threads to 18–19% at 64 — and argues that this
    makes the asymmetric design *more* important on manycore parts
    (Xeon Phi / POWER8 scale). This module models that trend: the
    serial *work* is fixed, so its instruction share grows as parallel
    work per thread shrinks, and evaluates how the Tailored and
    Asymmetric CMPs diverge as cores scale. *)

type point = {
  n_cores : int;
  serial_share : float;  (** serial fraction of thread-0 instructions *)
  tailored_vs_baseline : float;
      (** Tailored-CMP execution time normalized to a same-core-count
          Baseline CMP *)
  asymmetric_vs_baseline : float;  (** 1 baseline + (n-1) tailored *)
}

val serial_share_at : base_share:float -> base_threads:int -> int -> float
(** [serial_share_at ~base_share ~base_threads n] is the serial
    instruction share of the measured thread when the same program
    runs with [n] threads: serial work is constant while parallel work
    divides by the thread count. Reproduces the paper's example
    (fma3d: 4% at 8 threads -> ~19% at 64). *)

val sweep :
  ?insts:int ->
  ?cores:int list ->
  Repro_workload.Profile.t ->
  point list
(** Evaluate the benchmark across core counts (default 8, 16, 32, 64),
    adjusting the profile's serial share per {!serial_share_at}. *)

val table : string -> point list -> Repro_util.Table.t
