(** Reference values reported in the paper, for paper-vs-measured
    comparison in the experiment harness and in EXPERIMENTS.md.

    Values quoted in the text are exact; values read off bar charts
    are approximate (flagged [`Chart]). All suite-level values are in
    the order ExMatEx, SPEC OMP, NPB, SPEC CPU INT. *)

type provenance = [ `Text | `Chart ]

val fig1_branch_pct : (Repro_workload.Suite.t * float * provenance) list
(** Total dynamic branch share of the instruction mix, percent. *)

val fig1_serial_parallel_ratio : float
(** Serial sections have ~3x the branch share of parallel ones. *)

val fig2_biased_pct : (Repro_workload.Suite.t * float * provenance) list
(** Share of dynamic conditional branches from sites decided >90% in
    one direction. *)

val tab1_backward_pct :
  (Repro_workload.Suite.t * float option * float option) list
(** (suite, serial backward %, parallel backward %); SPEC INT has a
    single column in the paper. *)

val fig3_static_kb : (Repro_workload.Suite.t * float * provenance) list
val fig3_dyn99_parallel_kb : float
(** HPC parallel sections: 99% of instructions from ~14KB. *)

val fig4_bbl_bytes : (Repro_workload.Suite.t * float * provenance) list
val fig4_bbl_ratio_hpc_vs_int : float
val fig4_dist_ratio_hpc_vs_int : float

val fig5_mpki :
  (Repro_workload.Suite.t * (string * float) list) list
(** Approximate per-suite branch MPKI per predictor configuration
    (chart-read). *)

val fig8_icache_mpki_16k_vs_32k_int : float
(** SPEC INT: 16KB I-cache has ~2.5x the misses of 32KB. *)

val fig9_wide_line_delta_hpc : float
(** HPC: 128B lines miss ~16% less than 32B at fixed size. *)

val fig9_wide_line_delta_int : float
(** SPEC INT: 128B lines miss ~19% more than 32B. *)

val fig9_line_usefulness_hpc : float
(** 128B-line usefulness for HPC (71%). *)

val fig9_line_usefulness_int : float
(** 128B-line usefulness for SPEC INT (33%). *)

(** Table III (exact): areas in mm^2 and powers in W at 40nm. *)
type tab3_row = { area_mm2 : float; power_w : float }

val tab3_baseline_core : tab3_row
val tab3_baseline_icache : tab3_row
val tab3_baseline_bp : tab3_row
val tab3_baseline_btb : tab3_row
val tab3_tailored_core : tab3_row
val tab3_tailored_icache : tab3_row
val tab3_tailored_bp : tab3_row
val tab3_tailored_btb : tab3_row

val headline_area_saving : float
(** 16% core area saved by the tailored front-end. *)

val headline_power_saving : float
(** 7% core power saved by the tailored front-end. *)

val headline_speedup : float
(** Asymmetric++: 12% shorter execution time on average. *)

val headline_power_increase : float
(** Asymmetric++: 4% more power than the Baseline CMP. *)

val headline_energy_saving : float
(** Asymmetric++: 8% energy saving. *)

val headline_ed_saving : float
(** Asymmetric++: 18% energy-delay reduction. *)

val fig10_time :
  (Repro_workload.Suite.t * (string * float) list) list
(** Normalized execution time per CMP configuration (chart-read). *)

val fig11_time : (string * (string * float) list) list
(** Per-benchmark normalized times for the Fig. 11 subset. *)
