(** Report generation: run experiments and render the results as
    plain text (for the bench harness) or as the EXPERIMENTS.md
    paper-vs-measured record. *)

val run_to_string : ?scale:float -> Experiment.id -> string
(** Header plus every table of one experiment. *)

val run_all_to_string : ?scale:float -> unit -> string
(** Every experiment, in paper order. *)

val experiments_markdown : ?scale:float -> unit -> string
(** The EXPERIMENTS.md body: for every table and figure, the
    reproduction status, the measured tables (fenced), and the key
    paper-vs-measured deltas. *)
