module Suite = Repro_workload.Suite

type provenance = [ `Text | `Chart ]

let fig1_branch_pct =
  [ (Suite.Exmatex, 13.0, `Text);
    (Suite.Spec_omp, 7.0, `Text);
    (Suite.Npb, 7.0, `Text);
    (Suite.Spec_int, 19.0, `Text) ]

let fig1_serial_parallel_ratio = 3.0

let fig2_biased_pct =
  [ (Suite.Exmatex, 80.0, `Text);
    (Suite.Spec_omp, 85.0, `Chart);
    (Suite.Npb, 90.0, `Text);
    (Suite.Spec_int, 60.0, `Chart) ]

let tab1_backward_pct =
  [ (Suite.Exmatex, Some 72.0, Some 69.0);
    (Suite.Spec_omp, Some 73.0, Some 74.0);
    (Suite.Npb, Some 71.0, Some 80.0);
    (Suite.Spec_int, Some 56.0, None) ]

let fig3_static_kb =
  [ (Suite.Exmatex, 242.0, `Text);
    (Suite.Spec_omp, 121.0, `Text);
    (Suite.Npb, 121.0, `Text);
    (Suite.Spec_int, 250.0, `Chart) ]

let fig3_dyn99_parallel_kb = 14.0

let fig4_bbl_bytes =
  [ (Suite.Exmatex, 60.0, `Chart);
    (Suite.Spec_omp, 85.0, `Chart);
    (Suite.Npb, 100.0, `Chart);
    (Suite.Spec_int, 20.0, `Chart) ]

let fig4_bbl_ratio_hpc_vs_int = 4.0
let fig4_dist_ratio_hpc_vs_int = 5.0

let fig5_mpki =
  [ (Suite.Exmatex,
     [ ("gshare-big", 5.0); ("tournament-big", 5.0); ("tage-big", 3.5);
       ("gshare-small", 8.0); ("tournament-small", 7.0); ("tage-small", 4.0);
       ("L-gshare-small", 6.0); ("L-tournament-small", 5.5);
       ("L-tage-small", 3.8) ]);
    (Suite.Spec_omp,
     [ ("gshare-big", 2.0); ("tournament-big", 1.8); ("tage-big", 1.0);
       ("gshare-small", 3.5); ("tournament-small", 3.0); ("tage-small", 1.2);
       ("L-gshare-small", 2.2); ("L-tournament-small", 2.0);
       ("L-tage-small", 1.0) ]);
    (Suite.Npb,
     [ ("gshare-big", 1.5); ("tournament-big", 1.2); ("tage-big", 0.8);
       ("gshare-small", 2.5); ("tournament-small", 2.0); ("tage-small", 1.0);
       ("L-gshare-small", 1.6); ("L-tournament-small", 1.4);
       ("L-tage-small", 0.8) ]);
    (Suite.Spec_int,
     [ ("gshare-big", 12.0); ("tournament-big", 11.0); ("tage-big", 8.0);
       ("gshare-small", 18.0); ("tournament-small", 16.0); ("tage-small", 9.0);
       ("L-gshare-small", 17.5); ("L-tournament-small", 15.5);
       ("L-tage-small", 9.0) ]) ]

let fig8_icache_mpki_16k_vs_32k_int = 2.5
let fig9_wide_line_delta_hpc = -0.16
let fig9_wide_line_delta_int = 0.19
let fig9_line_usefulness_hpc = 0.71
let fig9_line_usefulness_int = 0.33

type tab3_row = { area_mm2 : float; power_w : float }

let tab3_baseline_core = { area_mm2 = 2.49; power_w = 0.85 }
let tab3_baseline_icache = { area_mm2 = 0.31; power_w = 0.075 }
let tab3_baseline_bp = { area_mm2 = 0.14; power_w = 0.032 }
let tab3_baseline_btb = { area_mm2 = 0.125; power_w = 0.017 }
let tab3_tailored_core = { area_mm2 = 2.11; power_w = 0.79 }
let tab3_tailored_icache = { area_mm2 = 0.14; power_w = 0.049 }
let tab3_tailored_bp = { area_mm2 = 0.04; power_w = 0.011 }
let tab3_tailored_btb = { area_mm2 = 0.022; power_w = 0.002 }

let headline_area_saving = 0.16
let headline_power_saving = 0.07
let headline_speedup = 0.12
let headline_power_increase = 0.04
let headline_energy_saving = 0.08
let headline_ed_saving = 0.18

let fig10_time =
  [ (Suite.Exmatex,
     [ ("Baseline", 1.0); ("Tailored", 1.06); ("Asymmetric", 1.0);
       ("Asymmetric++", 0.90) ]);
    (Suite.Spec_omp,
     [ ("Baseline", 1.0); ("Tailored", 1.01); ("Asymmetric", 1.0);
       ("Asymmetric++", 0.88) ]);
    (Suite.Npb,
     [ ("Baseline", 1.0); ("Tailored", 1.01); ("Asymmetric", 1.0);
       ("Asymmetric++", 0.88) ]);
    (Suite.Spec_int,
     [ ("Baseline", 1.0); ("Tailored", 1.18); ("Asymmetric", 1.0);
       ("Asymmetric++", 1.0) ]) ]

let fig11_time =
  [ ("CoEVP",
     [ ("Baseline", 1.0); ("Tailored", 1.22); ("Asymmetric", 1.0);
       ("Asymmetric++", 0.97) ]);
    ("CoMD",
     [ ("Baseline", 1.0); ("Tailored", 1.05); ("Asymmetric", 1.02);
       ("Asymmetric++", 0.92) ]);
    ("fma3d",
     [ ("Baseline", 1.0); ("Tailored", 1.06); ("Asymmetric", 1.0);
       ("Asymmetric++", 0.90) ]);
    ("FT",
     [ ("Baseline", 1.0); ("Tailored", 1.01); ("Asymmetric", 1.0);
       ("Asymmetric++", 0.80) ]);
    ("h264ref",
     [ ("Baseline", 1.0); ("Tailored", 1.02); ("Asymmetric", 1.0);
       ("Asymmetric++", 1.0) ]);
    ("gobmk",
     [ ("Baseline", 1.0); ("Tailored", 1.25); ("Asymmetric", 1.0);
       ("Asymmetric++", 1.0) ]) ]
