module A = Repro_analysis
module W = Repro_workload
module F = Repro_frontend
module Table = Repro_util.Table

let total = A.Branch_mix.Total

let scaled (p : W.Profile.t) = function
  | Some i -> i
  | None -> p.total_insts

let predictor_table ?insts ~benchmarks () =
  let statics =
    [ A.Bp_sim.Always_taken; A.Bp_sim.Always_not_taken; A.Bp_sim.Btfn ]
  in
  let dyn_names = [ "gshare-small"; "tage-big"; "perceptron-128";
                    "two-level-10.10" ] in
  let t =
    Table.create
      ~title:
        "Extension: branch MPKI incl. perceptron, two-level and static \
         schemes"
      ([ ("benchmark", Table.Left) ]
      @ List.map (fun n -> (n, Table.Right)) dyn_names
      @ [ ("static-taken", Table.Right); ("static-not-taken", Table.Right);
          ("static-btfn", Table.Right) ])
  in
  List.iter
    (fun name ->
      let p = W.Suites.find name in
      let ex = W.Executor.create ~insts:(scaled p insts) p in
      let dyn =
        List.map (fun n -> A.Bp_sim.create (F.Zoo.by_name_extended n)) dyn_names
      in
      let sta = List.map A.Bp_sim.create_static statics in
      A.Tool.run_all (W.Executor.trace ex)
        (List.map A.Bp_sim.observer (dyn @ sta));
      Table.add_row t
        (name
        :: List.map (fun s -> Table.fmt_float (A.Bp_sim.mpki s total)) (dyn @ sta)))
    benchmarks;
  t

let prefetch_table ?insts ~benchmarks () =
  let configs =
    [ ("32K/64B (baseline)", (32768, 64, 4, false));
      ("16K/128B (tailored)", (16384, 128, 8, false));
      ("16K/64B", (16384, 64, 8, false));
      ("16K/64B + next-line", (16384, 64, 8, true)) ]
  in
  let t =
    Table.create
      ~title:
        "Extension: next-line prefetch vs wide lines (I-cache MPKI; \
         prefetch accuracy in parens)"
      ([ ("benchmark", Table.Left) ]
      @ List.map (fun (n, _) -> (n, Table.Right)) configs)
  in
  List.iter
    (fun name ->
      let p = W.Suites.find name in
      let ex = W.Executor.create ~insts:(scaled p insts) p in
      let sims =
        List.map
          (fun (_, (size, line, assoc, pf)) ->
            A.Icache_sim.create ~next_line_prefetch:pf ~size_bytes:size
              ~line_bytes:line ~assoc ())
          configs
      in
      A.Tool.run_all (W.Executor.trace ex)
        (List.map A.Icache_sim.observer sims);
      Table.add_row t
        (name
        :: List.map
             (fun sim ->
               let cache = A.Icache_sim.cache sim in
               let mpki = Table.fmt_float (A.Icache_sim.mpki sim total) in
               let issued = F.Icache.prefetches cache in
               if issued = 0 then mpki
               else
                 Printf.sprintf "%s (%.0f%%)" mpki
                   (100.0
                   *. float_of_int (F.Icache.useful_prefetches cache)
                   /. float_of_int issued))
             sims))
    benchmarks;
  t

let predictability_table ?insts () =
  let t =
    Table.create
      ~title:
        "Extension: trace learnability and instruction working sets per suite"
      [ ("suite", Table.Left); ("novelty rate", Table.Right);
        ("pairs/site", Table.Right); ("ws knee (64B,4w)", Table.Right) ]
  in
  List.iter
    (fun suite ->
      let novelty = ref [] and pps = ref [] and knees = ref [] in
      List.iter
        (fun (p : W.Profile.t) ->
          let ex = W.Executor.create ~insts:(scaled p insts) p in
          let pred = A.Predictability.create () in
          let ws = A.Working_set.create () in
          A.Tool.run_all (W.Executor.trace ex)
            [ A.Predictability.observer pred; A.Working_set.observer ws ];
          let n = A.Predictability.novelty_rate pred in
          if not (Float.is_nan n) then novelty := n :: !novelty;
          let pp = A.Predictability.pairs_per_site pred in
          if not (Float.is_nan pp) then pps := pp :: !pps;
          match A.Working_set.knee ws () with
          | Some k -> knees := float_of_int k :: !knees
          | None -> ())
        (W.Suites.by_suite suite);
      Table.add_row t
        [ W.Suite.to_string suite;
          Table.fmt_pct (Repro_util.Stats.mean !novelty);
          Table.fmt_float (Repro_util.Stats.mean !pps);
          (match !knees with
          | [] -> "-"
          | ks ->
              Repro_util.Units.pp_bytes
                (int_of_float (Repro_util.Stats.mean ks))) ])
    W.Suite.all;
  t
