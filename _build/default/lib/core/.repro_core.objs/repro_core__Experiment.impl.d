lib/core/experiment.ml: Array Float Hashtbl List Paper_data Printf Repro_analysis Repro_frontend Repro_isa Repro_uarch Repro_util Repro_workload String
