lib/core/report.ml: Buffer Experiment List Printf Repro_util String
