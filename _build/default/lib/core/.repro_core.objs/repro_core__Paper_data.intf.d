lib/core/paper_data.mli: Repro_workload
