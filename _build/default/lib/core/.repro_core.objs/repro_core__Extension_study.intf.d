lib/core/extension_study.mli: Repro_util
