lib/core/extension_study.ml: Float List Printf Repro_analysis Repro_frontend Repro_util Repro_workload
