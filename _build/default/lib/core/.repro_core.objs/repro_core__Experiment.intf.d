lib/core/experiment.mli: Repro_util
