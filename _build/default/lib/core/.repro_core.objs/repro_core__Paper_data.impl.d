lib/core/paper_data.ml: Repro_workload
