lib/core/rebalance.mli: Repro_uarch Repro_workload
