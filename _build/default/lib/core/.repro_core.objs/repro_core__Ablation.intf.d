lib/core/ablation.mli: Repro_uarch Repro_util Repro_workload
