lib/core/thread_scaling.ml: Float List Printf Repro_uarch Repro_util Repro_workload
