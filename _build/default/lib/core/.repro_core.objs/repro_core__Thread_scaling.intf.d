lib/core/thread_scaling.mli: Repro_util Repro_workload
