lib/core/export.ml: Experiment Filename Fun List Printf Repro_util Sys
