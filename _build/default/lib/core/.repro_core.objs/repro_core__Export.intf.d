lib/core/export.mli: Experiment
