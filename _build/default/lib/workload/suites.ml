(* Calibrated benchmark profiles. Field choices trace back to concrete
   paper statements; see the .mli and DESIGN.md §5. The general
   relations used below:
   - dynamic basic-block bytes ~= avg_inst_bytes / branch_fraction;
   - backward share of taken conditionals ~= 1 / (1 + if_density * mean
     if-bias), since each inner iteration takes one backward branch;
   - 99%-dynamic footprint ~= serial hot_kb + parallel hot_kb;
   - loop-predictor gains require Const trip counts. *)

open Profile

let hpc_parallel_base =
  { branch_fraction = 0.065;
    avg_inst_bytes = 6.0;
    n_kernels = 3;
    inner_loops = (2, 4);
    body_blocks = (2, 4);
    inner_trip = Trip.Const 48;
    outer_trip = Trip.Uniform (3, 8);
    if_density = 1.0;
    else_share = 0.3;
    call_density = 0.15;
    indirect_call_share = 0.0;
    callee_insts = (6, 16);
    callee_pool = 6;
    dead_arm_insts = (2, 6);
    arm_weight = 0.22;
    bias_mix = [ (0.69, (0.0, 0.05)); (0.29, (0.93, 1.0)); (0.02, (0.25, 0.65)) ];
    periodic_share = 0.04;
    periodic_len = (2, 5);
    correlated_share = 0.03;
    correlated_bits = 6;
    correlated_noise = 0.03;
    path_share = 0.06;
    n_paths = 2;
    path_noise = 0.02;
    path_taken_rate = 0.40;
    hot_kb = 8.0;
    cold_excursion = 0.02 }

let hpc_serial_base =
  { branch_fraction = 0.20;
    avg_inst_bytes = 4.3;
    n_kernels = 2;
    inner_loops = (2, 4);
    body_blocks = (3, 6);
    inner_trip = Trip.Uniform (4, 40);
    outer_trip = Trip.Uniform (2, 6);
    if_density = 1.2;
    else_share = 0.4;
    call_density = 0.5;
    indirect_call_share = 0.0;
    callee_insts = (4, 12);
    callee_pool = 10;
    dead_arm_insts = (6, 18);
    arm_weight = 0.45;
    bias_mix = [ (0.69, (0.0, 0.06)); (0.26, (0.9, 1.0)); (0.05, (0.25, 0.7)) ];
    periodic_share = 0.04;
    periodic_len = (2, 7);
    correlated_share = 0.04;
    correlated_bits = 7;
    correlated_noise = 0.03;
    path_share = 0.25;
    n_paths = 3;
    path_noise = 0.02;
    path_taken_rate = 0.40;
    hot_kb = 6.0;
    cold_excursion = 0.04 }

let int_base =
  { branch_fraction = 0.20;
    avg_inst_bytes = 4.0;
    n_kernels = 2;
    inner_loops = (3, 6);
    body_blocks = (6, 12);
    inner_trip = Trip.Uniform (5, 12);
    outer_trip = Trip.Uniform (2, 6);
    if_density = 6.0;
    else_share = 0.78;
    call_density = 2.0;
    indirect_call_share = 0.04;
    callee_insts = (4, 14);
    callee_pool = 36;
    dead_arm_insts = (24, 60);
    arm_weight = 0.55;
    bias_mix =
      [ (0.82, (0.0, 0.06)); (0.12, (0.92, 1.0)); (0.04, (0.25, 0.75));
        (0.02, (0.45, 0.6)) ];
    periodic_share = 0.04;
    periodic_len = (3, 6);
    correlated_share = 0.04;
    correlated_bits = 6;
    correlated_noise = 0.03;
    path_share = 0.40;
    n_paths = 5;
    path_noise = 0.015;
    path_taken_rate = 0.22;
    hot_kb = 60.0;
    cold_excursion = 0.05 }

(* The unused parallel section of a sequential (SPEC INT) profile:
   kept minimal so it does not consume the static-code budget. *)
let int_parallel_stub =
  { hpc_parallel_base with n_kernels = 1; hot_kb = 1.0; inner_loops = (1, 1) }

let mk ~name ~suite ~seed ~serial_fraction ~static_kb ?(proc_align = 64)
    ?(syscall_per_mil = 2.0) ?(perf = default_perf) ~serial ~parallel () =
  { name;
    suite;
    seed;
    total_insts = 2_000_000;
    serial_fraction;
    rounds = 8;
    static_kb;
    proc_align;
    syscall_per_mil;
    perf;
    serial;
    parallel }

(* ------------------------------------------------------------------ *)
(* ExMatEx: recent proxy applications, larger footprints (external
   libraries), non-negligible serial sections, 13% branches total. *)

let exmatex =
  let serial = { hpc_serial_base with branch_fraction = 0.25 } in
  let align = 512 (* library-style alignment: stresses BTB indexing *) in
  [ mk ~name:"CoMD" ~suite:Suite.Exmatex ~seed:101 ~serial_fraction:0.08
      ~static_kb:130.0 ~proc_align:align
      ~perf:{ data_stall_cpi = 0.5; scale_alpha = 0.99 }
      ~serial:{ serial with hot_kb = 6.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.10;
          avg_inst_bytes = 5.5;
          hot_kb = 14.0;
          if_density = 1.4;
          correlated_share = 0.06;
          cold_excursion = 0.05 }
      ();
    mk ~name:"CoEVP" ~suite:Suite.Exmatex ~seed:102 ~serial_fraction:0.35
      ~static_kb:250.0 ~proc_align:align
      ~perf:{ data_stall_cpi = 0.6; scale_alpha = 0.98 }
      ~serial:
        { serial with
          hot_kb = 26.0;
          n_kernels = 1;
          if_density = 2.2;
          inner_trip = Trip.Uniform (3, 12);
          indirect_call_share = 0.10;
          correlated_share = 0.10;
          correlated_bits = 10;
          correlated_noise = 0.02;
          path_share = 0.30;
          n_paths = 6;
          dead_arm_insts = (10, 30) }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.10;
          avg_inst_bytes = 5.4;
          hot_kb = 22.0;
          if_density = 1.6;
          indirect_call_share = 0.12;
          correlated_share = 0.08;
          correlated_bits = 8;
          bias_mix =
            [ (0.62, (0.0, 0.06)); (0.28, (0.9, 1.0)); (0.10, (0.25, 0.7)) ];
          cold_excursion = 0.08 }
      ();
    mk ~name:"CoHMM" ~suite:Suite.Exmatex ~seed:103 ~serial_fraction:0.06
      ~static_kb:140.0 ~proc_align:align
      ~serial:{ serial with hot_kb = 6.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.16;
          avg_inst_bytes = 5.1;
          inner_trip = Trip.Uniform (2, 6);
          hot_kb = 16.0;
          if_density = 1.2;
          body_blocks = (1, 2);
          cold_excursion = 0.05 }
      ();
    mk ~name:"CoSP" ~suite:Suite.Exmatex ~seed:104 ~serial_fraction:0.09
      ~static_kb:120.0 ~proc_align:align
      ~serial:{ serial with hot_kb = 10.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.14;
          avg_inst_bytes = 5.0;
          inner_trip = Trip.Const 4;
          hot_kb = 12.0;
          if_density = 1.0;
          body_blocks = (1, 2) }
      ();
    mk ~name:"CoGL" ~suite:Suite.Exmatex ~seed:105 ~serial_fraction:0.03
      ~static_kb:200.0 ~proc_align:align
      ~serial:{ serial with hot_kb = 6.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.11;
          avg_inst_bytes = 5.3;
          hot_kb = 26.0;
          if_density = 1.3;
          cold_excursion = 0.08 }
      ();
    mk ~name:"LULESH" ~suite:Suite.Exmatex ~seed:106 ~serial_fraction:0.11
      ~static_kb:170.0 ~proc_align:align
      ~perf:{ data_stall_cpi = 0.55; scale_alpha = 0.99 }
      ~serial:{ serial with branch_fraction = 0.12; hot_kb = 8.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.045;
          avg_inst_bytes = 5.6;
          hot_kb = 22.0;
          if_density = 0.8;
          cold_excursion = 0.05 }
      ();
    mk ~name:"VPFFT" ~suite:Suite.Exmatex ~seed:107 ~serial_fraction:0.02
      ~static_kb:800.0 ~proc_align:align
      ~serial:{ serial with hot_kb = 6.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.09;
          avg_inst_bytes = 5.8;
          hot_kb = 18.0;
          inner_trip = Trip.Const 64;
          cold_excursion = 0.06 }
      ();
    mk ~name:"ASPA" ~suite:Suite.Exmatex ~seed:108 ~serial_fraction:0.02
      ~static_kb:130.0 ~proc_align:align
      ~serial:{ serial with hot_kb = 5.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.12;
          avg_inst_bytes = 5.2;
          hot_kb = 10.0;
          if_density = 1.1 }
      () ]

(* ------------------------------------------------------------------ *)
(* SPEC OMP 2012: 11 applications, tiny serial sections (except nab
   and fma3d at ~4%), ~7% branches, small hot footprints. *)

let spec_omp =
  let serial = hpc_serial_base in
  [ mk ~name:"md" ~suite:Suite.Spec_omp ~seed:201 ~serial_fraction:0.006
      ~static_kb:110.0
      ~serial:{ serial with hot_kb = 4.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.06;
          indirect_call_share = 0.10;
          hot_kb = 6.0 }
      ();
    mk ~name:"bwaves" ~suite:Suite.Spec_omp ~seed:202 ~serial_fraction:0.005
      ~static_kb:95.0
      ~perf:{ data_stall_cpi = 0.9; scale_alpha = 0.99 }
      ~serial:{ serial with hot_kb = 3.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.05;
          avg_inst_bytes = 6.5;
          inner_trip = Trip.Const 96;
          hot_kb = 4.0;
          if_density = 0.4 }
      ();
    mk ~name:"nab" ~suite:Suite.Spec_omp ~seed:203 ~serial_fraction:0.04
      ~static_kb:130.0
      ~serial:{ serial with hot_kb = 5.0 }
      ~parallel:
        { hpc_parallel_base with branch_fraction = 0.07; hot_kb = 8.0 }
      ();
    mk ~name:"botsalgn" ~suite:Suite.Spec_omp ~seed:204 ~serial_fraction:0.006
      ~static_kb:90.0
      ~serial:{ serial with hot_kb = 3.0 }
      ~parallel:
        { hpc_parallel_base with branch_fraction = 0.065; hot_kb = 5.0 }
      ();
    mk ~name:"botsspar" ~suite:Suite.Spec_omp ~seed:205 ~serial_fraction:0.007
      ~static_kb:100.0
      ~serial:{ serial with hot_kb = 3.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.14;
          avg_inst_bytes = 4.8;
          inner_trip = Trip.Const 5;
          body_blocks = (1, 2);
          if_density = 0.5;
          hot_kb = 4.0 }
      ();
    mk ~name:"ilbdc" ~suite:Suite.Spec_omp ~seed:206 ~serial_fraction:0.005
      ~static_kb:85.0
      ~perf:{ data_stall_cpi = 1.0; scale_alpha = 0.99 }
      ~serial:{ serial with hot_kb = 3.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.045;
          avg_inst_bytes = 6.8;
          inner_trip = Trip.Const 128;
          if_density = 0.3;
          hot_kb = 3.0 }
      ();
    mk ~name:"fma3d" ~suite:Suite.Spec_omp ~seed:207 ~serial_fraction:0.04
      ~static_kb:230.0
      ~serial:{ serial with hot_kb = 8.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.07;
          hot_kb = 18.0;
          if_density = 1.0;
          correlated_share = 0.06;
          cold_excursion = 0.05 }
      ();
    mk ~name:"swim" ~suite:Suite.Spec_omp ~seed:208 ~serial_fraction:0.005
      ~static_kb:80.0
      ~perf:{ data_stall_cpi = 1.1; scale_alpha = 0.99 }
      ~serial:{ serial with hot_kb = 3.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.042;
          avg_inst_bytes = 6.4;
          inner_trip = Trip.Const 512;
          if_density = 0.25;
          hot_kb = 3.0 }
      ();
    mk ~name:"imagick" ~suite:Suite.Spec_omp ~seed:209 ~serial_fraction:0.008
      ~static_kb:170.0
      ~serial:{ serial with hot_kb = 5.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.08;
          inner_trip = Trip.Const 8;
          hot_kb = 7.0;
          if_density = 0.8 }
      ();
    mk ~name:"smithwa" ~suite:Suite.Spec_omp ~seed:210 ~serial_fraction:0.006
      ~static_kb:75.0
      ~serial:{ serial with hot_kb = 3.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.075;
          periodic_share = 0.08;
          hot_kb = 5.0 }
      ();
    mk ~name:"kdtree" ~suite:Suite.Spec_omp ~seed:211 ~serial_fraction:0.008
      ~static_kb:95.0
      ~serial:{ serial with hot_kb = 3.0 }
      ~parallel:
        { hpc_parallel_base with
          branch_fraction = 0.09;
          indirect_call_share = 0.10;
          correlated_share = 0.08;
          correlated_bits = 8;
          inner_trip = Trip.Uniform (2, 12);
          hot_kb = 8.0 }
      () ]

(* ------------------------------------------------------------------ *)
(* NPB: classic CFD pseudo-applications; the most loop-dominated and
   biased suite (90% of branches decided one way, 80% backward taken
   in parallel sections). *)

let npb =
  let serial = hpc_serial_base in
  let par =
    { hpc_parallel_base with
      if_density = 0.75;
      bias_mix =
        [ (0.64, (0.0, 0.05)); (0.28, (0.93, 1.0)); (0.08, (0.25, 0.65)) ] }
  in
  [ mk ~name:"BT" ~suite:Suite.Npb ~seed:301 ~serial_fraction:0.004
      ~static_kb:180.0
      ~serial:{ serial with hot_kb = 4.0 }
      ~parallel:
        { par with
          branch_fraction = 0.022;
          avg_inst_bytes = 6.9;
          inner_trip = Trip.Const 64;
          if_density = 0.45;
          hot_kb = 42.0 }
      ();
    mk ~name:"CG" ~suite:Suite.Npb ~seed:302 ~serial_fraction:0.004
      ~static_kb:70.0
      ~perf:{ data_stall_cpi = 1.2; scale_alpha = 0.98 }
      ~serial:{ serial with hot_kb = 3.0 }
      ~parallel:
        { par with
          branch_fraction = 0.16;
          avg_inst_bytes = 5.0;
          inner_trip = Trip.Const 14;
          body_blocks = (1, 2);
          hot_kb = 4.0 }
      ();
    mk ~name:"EP" ~suite:Suite.Npb ~seed:303 ~serial_fraction:0.003
      ~static_kb:60.0
      ~serial:{ serial with hot_kb = 3.0 }
      ~parallel:
        { par with
          branch_fraction = 0.07;
          indirect_call_share = 0.08;
          inner_trip = Trip.Geometric 40.0;
          correlated_share = 0.06;
          hot_kb = 4.0 }
      ();
    mk ~name:"FT" ~suite:Suite.Npb ~seed:304 ~serial_fraction:0.005
      ~static_kb:90.0
      ~perf:{ data_stall_cpi = 0.8; scale_alpha = 1.60 }
      ~serial:{ serial with hot_kb = 3.0 }
      ~parallel:
        { par with
          branch_fraction = 0.05;
          avg_inst_bytes = 6.2;
          inner_trip = Trip.Const 256;
          if_density = 0.5;
          hot_kb = 4.0 }
      ();
    mk ~name:"IS" ~suite:Suite.Npb ~seed:305 ~serial_fraction:0.004
      ~static_kb:40.0
      ~serial:{ serial with hot_kb = 2.0 }
      ~parallel:
        { par with
          branch_fraction = 0.16;
          avg_inst_bytes = 4.6;
          inner_trip = Trip.Uniform (2, 8);
          body_blocks = (1, 2);
          hot_kb = 2.5 }
      ();
    mk ~name:"LU" ~suite:Suite.Npb ~seed:306 ~serial_fraction:0.004
      ~static_kb:140.0
      ~serial:{ serial with hot_kb = 4.0 }
      ~parallel:
        { par with
          branch_fraction = 0.05;
          avg_inst_bytes = 6.3;
          inner_trip = Trip.Const 100;
          hot_kb = 8.0 }
      ();
    mk ~name:"MG" ~suite:Suite.Npb ~seed:307 ~serial_fraction:0.005
      ~static_kb:100.0
      ~perf:{ data_stall_cpi = 0.9; scale_alpha = 0.99 }
      ~serial:{ serial with hot_kb = 3.0 }
      ~parallel:
        { par with
          branch_fraction = 0.055;
          avg_inst_bytes = 6.0;
          inner_trip = Trip.Const 64;
          hot_kb = 6.0 }
      ();
    mk ~name:"SP" ~suite:Suite.Npb ~seed:308 ~serial_fraction:0.004
      ~static_kb:160.0
      ~serial:{ serial with hot_kb = 4.0 }
      ~parallel:
        { par with
          branch_fraction = 0.045;
          avg_inst_bytes = 6.0;
          inner_trip = Trip.Const 80;
          hot_kb = 10.0 }
      ();
    mk ~name:"UA" ~suite:Suite.Npb ~seed:309 ~serial_fraction:0.006
      ~static_kb:252.0
      ~serial:{ serial with hot_kb = 5.0 }
      ~parallel:
        { par with
          branch_fraction = 0.08;
          indirect_call_share = 0.08;
          inner_trip = Trip.Uniform (4, 48);
          hot_kb = 12.0;
          if_density = 0.8 }
      ();
    mk ~name:"DC" ~suite:Suite.Npb ~seed:310 ~serial_fraction:0.006
      ~static_kb:140.0
      ~serial:{ serial with hot_kb = 4.0 }
      ~parallel:
        { par with
          branch_fraction = 0.10;
          avg_inst_bytes = 4.8;
          inner_trip = Trip.Uniform (3, 20);
          correlated_share = 0.08;
          if_density = 1.0;
          hot_kb = 20.0 }
      () ]

(* ------------------------------------------------------------------ *)
(* SPEC CPU INT 2006: sequential desktop applications; 19% branches,
   weakly biased, large footprints, short blocks. *)

let spec_int =
  let s = int_base in
  let seq ?(perf = { data_stall_cpi = 0.7; scale_alpha = 1.0 }) ~name ~seed
      ~static_kb ~section () =
    let profile =
      mk ~name ~suite:Suite.Spec_int ~seed ~serial_fraction:1.0 ~static_kb
        ~proc_align:128 ~syscall_per_mil:10.0 ~perf ~serial:section
        ~parallel:int_parallel_stub ()
    in
    { profile with total_insts = 3_000_000 }
  in
  [ seq ~name:"perlbench" ~seed:401 ~static_kb:360.0
      ~section:
        { s with branch_fraction = 0.21; indirect_call_share = 0.08;
          hot_kb = 62.0 }
      ();
    seq ~name:"bzip2" ~seed:402 ~static_kb:120.0
      ~section:
        { s with
          branch_fraction = 0.22;
          correlated_share = 0.22;
          correlated_bits = 10;
          hot_kb = 46.0 }
      ();
    seq ~name:"gcc" ~seed:403 ~static_kb:450.0
      ~section:
        { s with
          branch_fraction = 0.21;
          if_density = 2.2;
          n_kernels = 3;
          hot_kb = 78.0 }
      ();
    seq ~name:"mcf" ~seed:404 ~static_kb:80.0
      ~perf:{ data_stall_cpi = 1.8; scale_alpha = 1.0 }
      ~section:
        { s with
          branch_fraction = 0.20;
          bias_mix =
            [ (0.25, (0.0, 0.08)); (0.15, (0.9, 1.0)); (0.35, (0.25, 0.75));
              (0.25, (0.4, 0.6)) ];
          hot_kb = 34.0 }
      ();
    seq ~name:"gobmk" ~seed:405 ~static_kb:300.0
      ~section:
        { s with
          branch_fraction = 0.22;
          correlated_share = 0.25;
          correlated_bits = 7;
          correlated_noise = 0.12;
          bias_mix =
            [ (0.40, (0.0, 0.08)); (0.20, (0.9, 1.0)); (0.25, (0.25, 0.75));
              (0.15, (0.45, 0.6)) ];
          hot_kb = 66.0 }
      ();
    seq ~name:"hmmer" ~seed:406 ~static_kb:160.0
      ~section:
        { s with
          branch_fraction = 0.17;
          bias_mix =
            [ (0.45, (0.0, 0.06)); (0.3, (0.9, 1.0)); (0.25, (0.3, 0.7)) ];
          correlated_share = 0.08;
          hot_kb = 24.0 }
      ();
    seq ~name:"sjeng" ~seed:407 ~static_kb:220.0
      ~section:
        { s with
          branch_fraction = 0.21;
          correlated_share = 0.22;
          correlated_bits = 7;
          correlated_noise = 0.10;
          hot_kb = 62.0 }
      ();
    seq ~name:"libquantum" ~seed:408 ~static_kb:90.0
      ~section:
        { s with
          branch_fraction = 0.15;
          inner_trip = Trip.Const 128;
          bias_mix = [ (0.5, (0.0, 0.05)); (0.35, (0.92, 1.0)); (0.15, (0.3, 0.7)) ];
          correlated_share = 0.04;
          periodic_share = 0.05;
          hot_kb = 20.0 }
      ();
    seq ~name:"h264ref" ~seed:409 ~static_kb:260.0
      ~section:
        { s with
          branch_fraction = 0.13;
          avg_inst_bytes = 4.6;
          correlated_share = 0.10;
          hot_kb = 14.0 }
      ();
    seq ~name:"omnetpp" ~seed:410 ~static_kb:280.0
      ~section:
        { s with
          branch_fraction = 0.21;
          indirect_call_share = 0.10;
          hot_kb = 64.0 }
      ();
    seq ~name:"astar" ~seed:411 ~static_kb:120.0
      ~section:
        { s with
          branch_fraction = 0.19;
          bias_mix =
            [ (0.38, (0.0, 0.08)); (0.20, (0.9, 1.0)); (0.26, (0.25, 0.75));
              (0.16, (0.45, 0.6)) ];
          correlated_noise = 0.09;
          hot_kb = 44.0 }
      ();
    seq ~name:"xalancbmk" ~seed:412 ~static_kb:380.0
      ~section:
        { s with
          branch_fraction = 0.22;
          indirect_call_share = 0.12;
          hot_kb = 66.0 }
      () ]

let all = exmatex @ spec_omp @ npb @ spec_int

let by_suite suite = List.filter (fun p -> Suite.equal p.suite suite) all
let names = List.map (fun p -> p.name) all

let find name = List.find (fun p -> String.equal p.name name) all

let fig6_subset =
  [ "CoEVP"; "CoMD"; "botsspar"; "imagick"; "EP"; "FT"; "astar"; "gobmk";
    "xalancbmk" ]

let fig9_subset = [ "CoEVP"; "CoGL"; "fma3d"; "xalancbmk"; "omnetpp" ]
let fig11_subset = [ "CoEVP"; "CoMD"; "fma3d"; "FT"; "h264ref"; "gobmk" ]
