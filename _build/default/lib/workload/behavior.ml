type t =
  | Bernoulli of float
  | Periodic of { pattern : bool array; mutable pos : int }
  | Correlated of { hist_bits : int; salt : int; noise : float }
  | Path_dependent of { outcomes : bool array; noise : float }

let bernoulli ~p =
  assert (p >= 0.0 && p <= 1.0);
  Bernoulli p

let periodic ~pattern =
  if Array.length pattern = 0 then invalid_arg "Behavior.periodic: empty";
  Periodic { pattern; pos = 0 }

let correlated ~hist_bits ~salt ~noise =
  assert (hist_bits >= 1 && hist_bits <= 24);
  assert (noise >= 0.0 && noise <= 1.0);
  Correlated { hist_bits; salt; noise }

let path_dependent ~outcomes ~noise =
  if Array.length outcomes = 0 then invalid_arg "Behavior.path_dependent";
  assert (noise >= 0.0 && noise <= 1.0);
  Path_dependent { outcomes; noise }

let parity x =
  let rec go acc x = if x = 0 then acc else go (acc lxor (x land 1)) (x lsr 1) in
  go 0 x = 1

let next t rng ~global_hist ~path =
  ignore path;
  match t with
  | Bernoulli p -> Repro_util.Rng.bernoulli rng p
  | Periodic s ->
      let out = s.pattern.(s.pos) in
      s.pos <- (s.pos + 1) mod Array.length s.pattern;
      out
  | Correlated { hist_bits; salt; noise } ->
      let window = global_hist land ((1 lsl hist_bits) - 1) in
      let base = parity (window lxor (salt land window) lxor (salt lsr 3)) in
      if noise > 0.0 && Repro_util.Rng.bernoulli rng noise then not base
      else base
  | Path_dependent { outcomes; noise } ->
      let base = outcomes.(path mod Array.length outcomes) in
      if noise > 0.0 && Repro_util.Rng.bernoulli rng noise then not base
      else base

let mean_rate = function
  | Bernoulli p -> p
  | Path_dependent { outcomes; _ } ->
      (* Assuming the executor's default Zipf-like path weights. *)
      let k = Array.length outcomes in
      let weights = Array.init k (fun i -> 1.0 /. float_of_int (i + 1)) in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let acc = ref 0.0 in
      Array.iteri (fun i o -> if o then acc := !acc +. weights.(i)) outcomes;
      !acc /. total
  | Periodic { pattern; _ } ->
      let ones = Array.fold_left (fun n b -> if b then n + 1 else n) 0 pattern in
      float_of_int ones /. float_of_int (Array.length pattern)
  | Correlated _ -> 0.5

let reset = function
  | Bernoulli _ | Correlated _ | Path_dependent _ -> ()
  | Periodic s -> s.pos <- 0

let clone_fresh = function
  | Bernoulli p -> Bernoulli p
  | Periodic { pattern; _ } -> Periodic { pattern = Array.copy pattern; pos = 0 }
  | Correlated c -> Correlated c
  | Path_dependent d -> Path_dependent d
