module Rng = Repro_util.Rng

(* Mutable generation context: id counters and the per-benchmark
   deterministic random stream. *)
type ctx = {
  rng : Rng.t;
  mutable next_bid : int;
  mutable next_pid : int;
}

let fresh_bid ctx =
  let id = ctx.next_bid in
  ctx.next_bid <- id + 1;
  id

let fresh_pid ctx =
  let id = ctx.next_pid in
  ctx.next_pid <- id + 1;
  id

(* Encoded instruction sizes: log-normal around the section's average,
   clamped to x86-like bounds. *)
let draw_inst_sizes ctx ~n ~avg =
  let sigma = 0.38 in
  let mu = log avg -. (sigma *. sigma /. 2.0) in
  Array.init n (fun _ ->
      let s = Rng.log_normal ctx.rng ~mu ~sigma in
      let s = int_of_float (Float.round s) in
      if s < 1 then 1 else if s > 14 then 14 else s)

let block ctx ~insts ~avg ~term =
  { Program.bid = fresh_bid ctx;
    addr = 0;
    inst_sizes = draw_inst_sizes ctx ~n:(max 1 insts) ~avg;
    term }

(* A conditional site with an outcome model drawn from the section's
   behaviour mixture. *)
let draw_behavior ctx (s : Profile.section) =
  let u = Rng.float ctx.rng 1.0 in
  if u < s.path_share then begin
    let outcomes =
      Array.init s.n_paths (fun _ ->
          Rng.bernoulli ctx.rng s.path_taken_rate)
    in
    Behavior.path_dependent ~outcomes ~noise:s.path_noise
  end
  else if u < s.path_share +. s.periodic_share then begin
    let lo, hi = s.periodic_len in
    let len = Rng.range ctx.rng lo hi in
    let pattern = Array.init len (fun _ -> Rng.bool ctx.rng) in
    (* Guarantee a mixed pattern so the site is not simply biased. *)
    if Array.for_all Fun.id pattern then pattern.(0) <- false
    else if Array.for_all not pattern then pattern.(0) <- true;
    Behavior.periodic ~pattern
  end
  else if u < s.path_share +. s.periodic_share +. s.correlated_share then
    Behavior.correlated ~hist_bits:s.correlated_bits
      ~salt:(Rng.int ctx.rng 0x7FFFFF)
      ~noise:s.correlated_noise
  else begin
    let ranges = Array.of_list (List.map (fun (w, r) -> (w, r)) s.bias_mix) in
    let lo, hi = Rng.choose_weighted ctx.rng ranges in
    Behavior.bernoulli ~p:(lo +. Rng.float ctx.rng (hi -. lo))
  end

let cond_term behavior =
  Program.Cond { ctarget = 0; cbehavior = behavior }

(* Leaf callee: one or two straight blocks and a return. *)
let make_callee ctx (s : Profile.section) =
  let lo, hi = s.callee_insts in
  let insts = Rng.range ctx.rng lo hi in
  let body_block = block ctx ~insts ~avg:s.avg_inst_bytes ~term:Program.Fall in
  { Program.pid = fresh_pid ctx;
    pname = Printf.sprintf "leaf_%d" ctx.next_pid;
    entry = 0;
    pbody = [ Program.Basic body_block ];
    pret = block ctx ~insts:1 ~avg:s.avg_inst_bytes ~term:Program.Ret }

(* Expected extra dynamic instructions contributed by one call site
   per execution: the call itself, the callee body, its return. *)
let call_cost (s : Profile.section) =
  let lo, hi = s.callee_insts in
  1.0 +. (float_of_int (lo + hi) /. 2.0) +. 1.0

let expected_kernel_iteration_insts (s : Profile.section) =
  let branches_per_iter =
    1.0 (* loop back-edge *)
    +. s.if_density
    +. (s.if_density *. s.else_share) (* skip jumps *)
    +. (s.call_density *. 2.0)
  in
  branches_per_iter /. s.branch_fraction

(* Plain (non-branch) instructions available to the inner body blocks
   once branch and callee instructions are budgeted. *)
let body_plain_insts (s : Profile.section) =
  let total = expected_kernel_iteration_insts s in
  let callee_plain = s.call_density *. (call_cost s -. 2.0) in
  let branch_insts =
    1.0 +. s.if_density +. (s.if_density *. s.else_share)
    +. (s.call_density *. 2.0)
  in
  let plain = total -. callee_plain -. branch_insts in
  Float.max 2.0 plain

(* One if-statement: a cond block whose taken direction skips the
   then-arm (or selects the else-arm). The arm on the branch's common
   path gets [arm_insts] live instructions; for strongly-biased sites
   the rarely-visited arm is a *dead* chunk sized from
   [dead_arm_insts] — code bytes that occupy I-cache lines without
   executing, as desktop error paths do. *)
let make_if ctx (s : Profile.section) ~arm_insts =
  let behavior = draw_behavior ctx s in
  let rate = Behavior.mean_rate behavior in
  let icond =
    block ctx ~insts:1 ~avg:s.avg_inst_bytes ~term:(cond_term (Some behavior))
  in
  let live () =
    block ctx ~insts:(max 1 arm_insts) ~avg:s.avg_inst_bytes ~term:Program.Fall
  in
  let dead () =
    let lo, hi = s.dead_arm_insts in
    block ctx ~insts:(Rng.range ctx.rng lo hi) ~avg:s.avg_inst_bytes
      ~term:Program.Fall
  in
  if Rng.bernoulli ctx.rng s.else_share then begin
    let skip =
      block ctx ~insts:1 ~avg:s.avg_inst_bytes
        ~term:(Program.Jump { jtarget = 0 })
    in
    (* taken selects the else-arm: rate < 0.3 means the then-arm is
       the hot path and the else-arm is cold; rate > 0.7 the reverse. *)
    let then_block = if rate > 0.7 then dead () else live () in
    let else_block = if rate < 0.3 then dead () else live () in
    { Program.icond;
      ithen = [ Program.Basic then_block ];
      ielse = [ Program.Basic else_block ];
      iskip = Some skip }
  end
  else
    { Program.icond;
      ithen = [ Program.Basic (if rate > 0.7 then dead () else live ()) ];
      ielse = [];
      iskip = None }

let make_call_site ctx (s : Profile.section) ~callees =
  let indirect = Rng.bernoulli ctx.rng s.indirect_call_share in
  let targets =
    if indirect && Array.length callees >= 2 then begin
      let n = min (Array.length callees) (Rng.range ctx.rng 3 5) in
      let pool = Array.copy callees in
      Rng.shuffle ctx.rng pool;
      Array.sub pool 0 (max 2 n)
    end
    else [| callees.(Rng.int ctx.rng (Array.length callees)) |]
  in
  block ctx ~insts:1 ~avg:s.avg_inst_bytes
    ~term:(Program.Callt { targets; csel = None })

(* Inner loop: body blocks with embedded ifs and call sites, closed by
   a backward conditional driven by the loop trip count. *)
let make_inner_loop ctx (s : Profile.section) ~callees =
  let lo, hi = s.body_blocks in
  let n_blocks = Rng.range ctx.rng lo hi in
  let n_ifs =
    let base = int_of_float s.if_density in
    base + if Rng.bernoulli ctx.rng (s.if_density -. float_of_int base) then 1 else 0
  in
  let n_calls =
    let base = int_of_float s.call_density in
    base
    + if Rng.bernoulli ctx.rng (s.call_density -. float_of_int base) then 1 else 0
  in
  let plain = body_plain_insts s in
  (* [arm_weight] of the plain budget lives in if-arms (only one arm
     executes per pass), the rest in the straight-line body blocks. *)
  let arm_insts =
    if n_ifs = 0 then 1
    else max 1 (int_of_float (plain *. s.arm_weight /. float_of_int n_ifs))
  in
  let body_budget =
    Float.max (float_of_int n_blocks) (plain *. (1.0 -. s.arm_weight))
  in
  let per_block = max 1 (int_of_float (body_budget /. float_of_int n_blocks)) in
  let stmts = ref [] in
  let add s = stmts := s :: !stmts in
  for i = 0 to n_blocks - 1 do
    add
      (Program.Basic
         (block ctx ~insts:per_block ~avg:s.avg_inst_bytes ~term:Program.Fall));
    (* Interleave ifs and calls across the body deterministically. *)
    if i < n_ifs then add (Program.If (make_if ctx s ~arm_insts));
    if i < n_calls then add (Program.Call_site (make_call_site ctx s ~callees))
  done;
  (* Any ifs/calls beyond the block count still get appended. *)
  for _ = n_blocks to n_ifs - 1 do
    add (Program.If (make_if ctx s ~arm_insts))
  done;
  for _ = n_blocks to n_calls - 1 do
    add (Program.Call_site (make_call_site ctx s ~callees))
  done;
  let back =
    block ctx ~insts:1 ~avg:s.avg_inst_bytes
      ~term:(cond_term None (* trip-driven *))
  in
  { Program.lbody = List.rev !stmts; lback = back; ltrip = s.inner_trip }

(* A hot kernel: outer loop over inner loops, with an optional rare
   excursion into cold library code once per outer iteration. *)
let make_kernel ctx (s : Profile.section) ~name ~byte_budget ~callees ~cold =
  let inner = ref [] in
  let bytes = ref 0 in
  let stmt_bytes st =
    let sum = ref 0 in
    Program.iter_stmt_blocks st (fun b -> sum := !sum + Program.block_bytes b);
    !sum
  in
  let lo, _hi = s.inner_loops in
  let continue () =
    List.length !inner < lo || (!bytes < byte_budget && List.length !inner < 256)
  in
  while continue () do
    let l = Program.Loop (make_inner_loop ctx s ~callees) in
    bytes := !bytes + stmt_bytes l;
    inner := l :: !inner
  done;
  let outer_body =
    if s.cold_excursion > 0.0 && Array.length cold > 0 then begin
      let excursion_call =
        block ctx ~insts:1 ~avg:s.avg_inst_bytes
          ~term:
            (Program.Callt
               { targets = [| cold.(Rng.int ctx.rng (Array.length cold)) |];
                 csel = None })
      in
      let icond =
        block ctx ~insts:1 ~avg:s.avg_inst_bytes
          ~term:(cond_term (Some (Behavior.bernoulli ~p:s.cold_excursion)))
      in
      let skip =
        block ctx ~insts:1 ~avg:s.avg_inst_bytes
          ~term:(Program.Jump { jtarget = 0 })
      in
      (* taken (rare) selects the else-arm holding the excursion call *)
      Program.If
        { icond;
          ithen = [];
          ielse = [ Program.Call_site excursion_call ];
          iskip = Some skip }
      :: List.rev !inner
    end
    else List.rev !inner
  in
  let outer_back =
    block ctx ~insts:1 ~avg:s.avg_inst_bytes ~term:(cond_term None)
  in
  { Program.pid = fresh_pid ctx;
    pname = name;
    entry = 0;
    pbody =
      [ Program.Loop { lbody = outer_body; lback = outer_back; ltrip = s.outer_trip } ];
    pret = block ctx ~insts:1 ~avg:s.avg_inst_bytes ~term:Program.Ret }

(* Cold straight-line procedure of roughly [bytes] code bytes. *)
let make_cold_proc ctx ~bytes =
  let avg = 4.4 in
  let stmts = ref [] in
  let acc = ref 0 in
  while !acc < bytes - 64 do
    let insts = Rng.range ctx.rng 4 24 in
    let b = block ctx ~insts ~avg ~term:Program.Fall in
    acc := !acc + Program.block_bytes b;
    stmts := Program.Basic b :: !stmts
  done;
  { Program.pid = fresh_pid ctx;
    pname = Printf.sprintf "cold_%d" ctx.next_pid;
    entry = 0;
    pbody = List.rev !stmts;
    pret = block ctx ~insts:1 ~avg ~term:Program.Ret }

let section_kernels ctx (s : Profile.section) ~prefix ~callees ~cold =
  let per_kernel_bytes =
    int_of_float (s.hot_kb *. 1024.0) / max 1 s.n_kernels
  in
  Array.init s.n_kernels (fun i ->
      make_kernel ctx s
        ~name:(Printf.sprintf "%s_kernel_%d" prefix i)
        ~byte_budget:per_kernel_bytes ~callees ~cold)

let generate (p : Profile.t) =
  (match Profile.validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Codegen.generate: " ^ msg));
  let ctx = { rng = Rng.create p.seed; next_bid = 0; next_pid = 0 } in
  (* Callee pools, one per section. *)
  let make_pool (s : Profile.section) =
    Array.init (max 2 s.callee_pool) (fun _ -> make_callee ctx s)
  in
  let serial_callees = make_pool p.serial in
  let parallel_callees = make_pool p.parallel in
  (* Cold code fills the static budget. *)
  let hot_estimate =
    (p.serial.hot_kb +. p.parallel.hot_kb) *. 1024.0
  in
  let cold_bytes =
    max 2048 (int_of_float ((p.static_kb *. 1024.0) -. hot_estimate))
  in
  let cold = ref [] in
  let remaining = ref cold_bytes in
  while !remaining > 512 do
    let sz = min !remaining (1024 + Rng.int ctx.rng 3072) in
    let proc = make_cold_proc ctx ~bytes:sz in
    remaining := !remaining - Program.proc_bytes proc;
    cold := proc :: !cold
  done;
  let cold = Array.of_list (List.rev !cold) in
  let serial_kernels =
    section_kernels ctx p.serial ~prefix:"serial" ~callees:serial_callees ~cold
  in
  let parallel_kernels =
    section_kernels ctx p.parallel ~prefix:"parallel" ~callees:parallel_callees
      ~cold
  in
  (* Driver: call sites for every kernel plus a syscall block. *)
  let call_block kernel =
    block ctx ~insts:2 ~avg:4.4
      ~term:(Program.Callt { targets = [| kernel |]; csel = None })
  in
  let serial_calls = Array.map call_block serial_kernels in
  let parallel_calls = Array.map call_block parallel_kernels in
  let sys_block = block ctx ~insts:1 ~avg:4.4 ~term:Program.Sys in
  let driver =
    { Program.pid = fresh_pid ctx;
      pname = "main";
      entry = 0;
      pbody =
        List.map (fun b -> Program.Call_site b)
          (Array.to_list serial_calls @ Array.to_list parallel_calls)
        @ [ Program.Basic sys_block ];
      pret = block ctx ~insts:1 ~avg:4.4 ~term:Program.Ret }
  in
  (* Interleave cold library code between the hot procedures, as a
     linked binary does: calls and excursions then cross large address
     ranges instead of staying in one dense hot region. *)
  let hot_procs =
    (driver :: Array.to_list serial_kernels)
    @ Array.to_list parallel_kernels
    @ Array.to_list serial_callees
    @ Array.to_list parallel_callees
  in
  let cold_list = Array.to_list cold in
  let procs =
    let n_hot = List.length hot_procs and n_cold = List.length cold_list in
    if n_cold = 0 then hot_procs
    else begin
      let per = max 1 (n_cold / max 1 n_hot) in
      let rec weave hot cold =
        match hot with
        | [] -> cold
        | h :: hs ->
            let rec take k l =
              if k = 0 then ([], l)
              else
                match l with
                | [] -> ([], [])
                | x :: xs ->
                    let t, rest = take (k - 1) xs in
                    (x :: t, rest)
            in
            let chunk, rest = take per cold in
            (h :: chunk) @ weave hs rest
      in
      weave hot_procs cold_list
    end
  in
  let program =
    { Program.name = p.name;
      image_end = 0;
      procs;
      cold_procs = cold;
      serial_kernels;
      parallel_kernels;
      driver }
  in
  Program.layout ~base:0x400000 ~align:p.proc_align program;
  program
