(** The four benchmark suites the paper evaluates. *)

type t =
  | Exmatex  (** ExMatEx proxy apps: 8 recent HPC applications *)
  | Spec_omp  (** SPEC OMP 2012: 11 shared-memory HPC applications *)
  | Npb  (** NAS Parallel Benchmarks: 10 CFD pseudo-applications *)
  | Spec_int  (** SPEC CPU INT 2006: 12 desktop applications *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all : t list
(** Report order: ExMatEx, SPEC OMP, NPB, SPEC CPU INT. *)

val hpc : t list
(** The three HPC suites. *)

val is_hpc : t -> bool
