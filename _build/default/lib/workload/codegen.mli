(** Program synthesis: turn a {!Profile.t} into a laid-out
    {!Program.t}.

    The generator builds hot loop-nest kernels for the serial and the
    parallel sections (sized to the profile's hot-code budgets, with
    per-iteration instruction counts solved so the dynamic branch
    fraction lands on its target), a pool of leaf callees, cold
    library/startup procedures filling the static-code budget, and a
    driver procedure holding the kernel call sites. Generation is
    deterministic in [profile.seed]. *)

val generate : Profile.t -> Program.t
(** Build and lay out the program image. Raises [Invalid_argument]
    when the profile fails {!Profile.validate}. *)

val expected_kernel_iteration_insts : Profile.section -> float
(** The generator's estimate of dynamic instructions per inner-loop
    iteration implied by a section profile (exposed for tests and for
    documentation of the sizing model). *)
