type section = {
  branch_fraction : float;
  avg_inst_bytes : float;
  n_kernels : int;
  inner_loops : int * int;
  body_blocks : int * int;
  inner_trip : Trip.t;
  outer_trip : Trip.t;
  if_density : float;
  else_share : float;
  call_density : float;
  indirect_call_share : float;
  callee_insts : int * int;
  callee_pool : int;
  dead_arm_insts : int * int;
  arm_weight : float;
  bias_mix : (float * (float * float)) list;
  periodic_share : float;
  periodic_len : int * int;
  correlated_share : float;
  correlated_bits : int;
  correlated_noise : float;
  path_share : float;
  n_paths : int;
  path_noise : float;
  path_taken_rate : float;
  hot_kb : float;
  cold_excursion : float;
}

type perf_hints = { data_stall_cpi : float; scale_alpha : float }

type t = {
  name : string;
  suite : Suite.t;
  seed : int;
  total_insts : int;
  serial_fraction : float;
  rounds : int;
  static_kb : float;
  proc_align : int;
  syscall_per_mil : float;
  perf : perf_hints;
  serial : section;
  parallel : section;
}

let default_perf = { data_stall_cpi = 0.55; scale_alpha = 0.99 }

let default_section =
  { branch_fraction = 0.07;
    avg_inst_bytes = 5.2;
    n_kernels = 3;
    inner_loops = (2, 3);
    body_blocks = (3, 6);
    inner_trip = Trip.Const 64;
    outer_trip = Trip.Geometric 400.0;
    if_density = 1.2;
    else_share = 0.3;
    call_density = 0.25;
    indirect_call_share = 0.0;
    callee_insts = (6, 18);
    callee_pool = 6;
    dead_arm_insts = (2, 6);
    arm_weight = 0.25;
    bias_mix = [ (0.6, (0.0, 0.06)); (0.25, (0.92, 1.0)); (0.15, (0.2, 0.6)) ];
    periodic_share = 0.05;
    periodic_len = (2, 6);
    correlated_share = 0.03;
    correlated_bits = 8;
    correlated_noise = 0.02;
    path_share = 0.08;
    n_paths = 3;
    path_noise = 0.02;
    path_taken_rate = 0.5;
    hot_kb = 10.0;
    cold_excursion = 0.02 }

let check_fraction name v =
  if v < 0.0 || v > 1.0 then Error (Printf.sprintf "%s out of [0,1]: %g" name v)
  else Ok ()

let check_section prefix s =
  let ( let* ) = Result.bind in
  let* () = check_fraction (prefix ^ ".branch_fraction") s.branch_fraction in
  let* () = check_fraction (prefix ^ ".else_share") s.else_share in
  let* () =
    check_fraction (prefix ^ ".indirect_call_share") s.indirect_call_share
  in
  let* () = check_fraction (prefix ^ ".periodic_share") s.periodic_share in
  let* () = check_fraction (prefix ^ ".correlated_share") s.correlated_share in
  let* () = check_fraction (prefix ^ ".path_share") s.path_share in
  let* () =
    if s.periodic_share +. s.correlated_share +. s.path_share > 1.0 then
      Error (prefix ^ ": periodic + correlated + path shares exceed 1")
    else Ok ()
  in
  let* () = if s.n_paths < 1 then Error (prefix ^ ".n_paths < 1") else Ok () in
  let* () = check_fraction (prefix ^ ".path_taken_rate") s.path_taken_rate in
  let* () =
    if s.branch_fraction <= 0.005 || s.branch_fraction > 0.5 then
      Error (prefix ^ ".branch_fraction outside a plausible (0.005, 0.5]")
    else Ok ()
  in
  let* () =
    if s.avg_inst_bytes < 2.0 || s.avg_inst_bytes > 12.0 then
      Error (prefix ^ ".avg_inst_bytes outside [2, 12]")
    else Ok ()
  in
  let* () = if s.n_kernels < 1 then Error (prefix ^ ".n_kernels < 1") else Ok () in
  let* () = if s.callee_pool < 1 then Error (prefix ^ ".callee_pool < 1") else Ok () in
  let* () = check_fraction (prefix ^ ".arm_weight") s.arm_weight in
  let* () = if s.hot_kb <= 0.0 then Error (prefix ^ ".hot_kb <= 0") else Ok () in
  let total_bias = List.fold_left (fun a (w, _) -> a +. w) 0.0 s.bias_mix in
  let* () =
    if total_bias <= 0.0 then Error (prefix ^ ".bias_mix has no weight") else Ok ()
  in
  let* () =
    if List.exists (fun (_, (lo, hi)) -> lo < 0.0 || hi > 1.0 || lo > hi)
         s.bias_mix then
      Error (prefix ^ ".bias_mix has an invalid probability range")
    else Ok ()
  in
  Ok ()

let validate t =
  let ( let* ) = Result.bind in
  let* () = check_fraction "serial_fraction" t.serial_fraction in
  let* () = if t.total_insts < 1000 then Error "total_insts too small" else Ok () in
  let* () = if t.rounds < 1 then Error "rounds < 1" else Ok () in
  let* () = if t.static_kb <= 0.0 then Error "static_kb <= 0" else Ok () in
  let* () =
    if not (Repro_util.Units.is_power_of_two t.proc_align) then
      Error "proc_align must be a power of two"
    else Ok ()
  in
  let* () = check_section "serial" t.serial in
  let* () = check_section "parallel" t.parallel in
  let hot = (t.serial.hot_kb +. t.parallel.hot_kb) *. 1.15 in
  if hot > t.static_kb then
    Error
      (Printf.sprintf "static_kb %.0f cannot hold hot code %.0f" t.static_kb hot)
  else Ok ()

let scale t f =
  if f <= 0.0 then invalid_arg "Profile.scale: non-positive factor";
  let insts = int_of_float (float_of_int t.total_insts *. f) in
  { t with total_insts = max 50_000 insts }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s (%s): %d insts, %.0f%% serial, %.0fKB static@]" t.name
    (Suite.to_string t.suite) t.total_insts
    (t.serial_fraction *. 100.0)
    t.static_kb
