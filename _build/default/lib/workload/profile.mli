(** Statistical benchmark profiles.

    A profile is the calibration target for one benchmark: the
    architecture-independent code characteristics the paper reports
    (Figs 1–4, Table I) expressed as generator parameters. {!Codegen}
    turns a profile into a concrete {!Program.t}; {!Executor} then
    produces dynamic traces whose measured characteristics land on the
    profile's targets. *)

(** Parameters of one code section (serial or parallel regions). *)
type section = {
  branch_fraction : float;
      (** target share of branch instructions in the dynamic mix *)
  avg_inst_bytes : float;  (** mean encoded instruction size *)
  n_kernels : int;  (** hot loop nests in this section *)
  inner_loops : int * int;  (** inner loops per kernel (range) *)
  body_blocks : int * int;  (** straight-line blocks per inner body *)
  inner_trip : Trip.t;
  outer_trip : Trip.t;
  if_density : float;  (** average [if] sites per inner-loop body *)
  else_share : float;  (** fraction of [if]s with an else arm *)
  call_density : float;  (** call sites per inner-loop body *)
  indirect_call_share : float;  (** fraction of call sites made indirect *)
  callee_insts : int * int;  (** plain instructions per leaf callee *)
  callee_pool : int;  (** distinct leaf procedures call sites draw from *)
  dead_arm_insts : int * int;
      (** static size of the *cold* arm of strongly-biased [if]s:
          error paths and unvisited branches that occupy code bytes
          (and I-cache lines) without executing — the source of
          desktop code's poor line usefulness (paper Fig. 9) *)
  arm_weight : float;
      (** share of the body's plain-instruction budget placed in
          if-arms rather than straight-line blocks; large values mean
          taken branches skip big extents (poor spatial locality, as
          in desktop code) *)
  bias_mix : (float * (float * float)) list;
      (** Bernoulli [if] taken-probability mixture: [(weight, (lo, hi))] *)
  periodic_share : float;  (** share of [if] sites given periodic outcomes *)
  periodic_len : int * int;  (** pattern length range *)
  correlated_share : float;  (** share of history-correlated [if] sites *)
  correlated_bits : int;  (** history reach of correlated sites *)
  correlated_noise : float;
  path_share : float;  (** share of path-dependent [if] sites *)
  n_paths : int;  (** distinct control-flow paths per loop iteration *)
  path_noise : float;
  path_taken_rate : float;
      (** probability that a path-dependent site's per-path direction
          is drawn taken; low values skew forward branches toward
          not-taken, raising the backward share of taken branches *)
  hot_kb : float;  (** code bytes the hot kernels should occupy *)
  cold_excursion : float;
      (** probability per outer-loop iteration of calling a cold
          library procedure (stresses I-cache and BTB tails) *)
}

(** Back-end hints consumed by the {!Repro_uarch} timing model: the
    paper's Sniper runs include data-side stalls and parallel scaling
    that the front-end trace cannot supply. *)
type perf_hints = {
  data_stall_cpi : float;
      (** average per-instruction stall cycles from the data side
          (D-cache, memory); independent of front-end sizing *)
  scale_alpha : float;
      (** parallel-region speedup exponent: running on [n] cores
          divides parallel time by [n^scale_alpha] (1.0 = linear;
          slightly above 1 models cache-capacity superlinearity as
          seen for FT) *)
}

type t = {
  name : string;
  suite : Suite.t;
  seed : int;  (** per-benchmark RNG stream root *)
  total_insts : int;  (** default dynamic instruction budget *)
  serial_fraction : float;  (** share of instructions in serial regions *)
  rounds : int;  (** serial/parallel alternations *)
  static_kb : float;  (** whole-image code size, cold included *)
  proc_align : int;  (** procedure alignment in the image *)
  syscall_per_mil : float;  (** syscalls per million instructions *)
  perf : perf_hints;
  serial : section;
  parallel : section;
}

val default_perf : perf_hints

val default_section : section
(** A generic HPC-flavoured parallel section; override fields with
    [{ default_section with ... }]. *)

val validate : t -> (unit, string) result
(** Check ranges (fractions within 0..1, positive sizes, weights
    normalizable); returns a human-readable error otherwise. *)

val scale : t -> float -> t
(** [scale p f] multiplies the dynamic instruction budget by [f]
    (at least 50k instructions), leaving the code image unchanged. *)

val pp : Format.formatter -> t -> unit
