(** Synthesized program structure.

    A generated benchmark is a set of procedures made of nested
    statements (straight-line blocks, loops, conditionals, call
    sites). {!layout} assigns concrete addresses exactly as a simple
    compiler would place the code: loop bodies contiguous with a
    backward conditional at the end, [if] bodies after a forward
    conditional that skips them, procedures padded to an alignment.

    The {!Executor} walks this structure to produce the dynamic
    instruction trace. *)

type block = {
  bid : int;
  mutable addr : int;  (** assigned by {!layout} *)
  inst_sizes : int array;  (** per-instruction encoded bytes *)
  mutable term : term;
}

and term =
  | Fall  (** falls through; no branch instruction *)
  | Cond of cond
  | Jump of jump
  | Callt of callt
  | Ret
  | Sys

and cond = {
  mutable ctarget : int;
  cbehavior : Behavior.t option;
      (** [None] when the surrounding [Loop] drives the outcome *)
}

and jump = { mutable jtarget : int }

and callt = {
  targets : proc array;  (** length > 1 means an indirect call site *)
  csel : Behavior.t option;  (** unused for direct calls *)
}

and proc = {
  pid : int;
  pname : string;
  mutable entry : int;
  pbody : stmt list;
  pret : block;  (** terminator block with [Ret] *)
}

and stmt =
  | Basic of block
  | Loop of loop_stmt
  | If of if_stmt
  | Call_site of block  (** block whose terminator is [Callt] *)

and loop_stmt = {
  lbody : stmt list;
  lback : block;  (** backward [Cond]; target patched to the body head *)
  ltrip : Trip.t;
}

and if_stmt = {
  icond : block;  (** forward [Cond]; taken skips [ithen] *)
  ithen : stmt list;
  ielse : stmt list;
  iskip : block option;  (** [Jump] over [ielse] when both arms exist *)
}

type t = {
  name : string;
  mutable image_end : int;  (** first address past the laid-out image *)
  procs : proc list;  (** every procedure, including cold ones *)
  cold_procs : proc array;  (** subset: cold library/startup code *)
  serial_kernels : proc array;  (** hot kernels run in serial phases *)
  parallel_kernels : proc array;
  driver : proc;  (** synthetic [main] holding kernel call sites *)
}

val first_addr : stmt list -> int
(** Address of the first instruction of a statement sequence (after
    layout). Raises [Invalid_argument] on an empty sequence. *)

val block_bytes : block -> int
(** Encoded size of a block. *)

val iter_stmt_blocks : stmt -> (block -> unit) -> unit
(** Every block under a statement, in layout order. *)

val iter_blocks : proc -> (block -> unit) -> unit
(** Every block of a procedure, in layout order. *)

val proc_bytes : proc -> int
(** Total encoded size of a procedure's blocks. *)

val static_bytes : t -> int
(** Sum of all block sizes in the image (paper's static footprint). *)

val layout : base:int -> align:int -> t -> unit
(** Assign addresses to every block and patch every branch target.
    [align] (power of two) pads each procedure's start. *)
