(** Plain-text serialization of benchmark profiles, so users can
    define their own workloads without recompiling.

    Format: one [key = value] pair per line; [#] starts a comment;
    section parameters are prefixed [serial.] or [parallel.]. Trip
    models are written [const:N], [uniform:LO-HI] or [geom:MEAN]; the
    bias mixture as [w:lo-hi] triples separated by commas. Unknown
    keys are an error (they are invariably typos). All keys are
    optional: omitted ones keep the value from the template profile
    ({!Profile.default_section} based unless [like = <benchmark>]
    names a built-in profile to inherit from).

    Example:
    {v
    # my-stencil.profile
    name = my-stencil
    like = FT
    serial_fraction = 0.02
    parallel.branch_fraction = 0.05
    parallel.inner_trip = const:128
    parallel.bias_mix = 0.7:0.0-0.05, 0.3:0.9-1.0
    v} *)

val parse : string -> (Profile.t, string) result
(** Parse a profile from file contents; the error names the offending
    line. The result is validated with {!Profile.validate}. *)

val load : string -> (Profile.t, string) result
(** Read and {!parse} a file. *)

val to_string : Profile.t -> string
(** Render a profile in the same format (round-trips through
    {!parse}). *)

val save : string -> Profile.t -> unit
