type t = Exmatex | Spec_omp | Npb | Spec_int

let to_int = function Exmatex -> 0 | Spec_omp -> 1 | Npb -> 2 | Spec_int -> 3
let equal a b = to_int a = to_int b
let compare a b = Int.compare (to_int a) (to_int b)

let to_string = function
  | Exmatex -> "ExMatEx"
  | Spec_omp -> "SPEC OMP"
  | Npb -> "NPB"
  | Spec_int -> "SPEC CPU INT"

let pp fmt t = Format.pp_print_string fmt (to_string t)
let all = [ Exmatex; Spec_omp; Npb; Spec_int ]
let hpc = [ Exmatex; Spec_omp; Npb ]
let is_hpc t = not (equal t Spec_int)
