type block = {
  bid : int;
  mutable addr : int;
  inst_sizes : int array;
  mutable term : term;
}

and term =
  | Fall
  | Cond of cond
  | Jump of jump
  | Callt of callt
  | Ret
  | Sys

and cond = { mutable ctarget : int; cbehavior : Behavior.t option }
and jump = { mutable jtarget : int }
and callt = { targets : proc array; csel : Behavior.t option }

and proc = {
  pid : int;
  pname : string;
  mutable entry : int;
  pbody : stmt list;
  pret : block;
}

and stmt =
  | Basic of block
  | Loop of loop_stmt
  | If of if_stmt
  | Call_site of block

and loop_stmt = { lbody : stmt list; lback : block; ltrip : Trip.t }

and if_stmt = {
  icond : block;
  ithen : stmt list;
  ielse : stmt list;
  iskip : block option;
}

type t = {
  name : string;
  mutable image_end : int;
  procs : proc list;
  cold_procs : proc array;
  serial_kernels : proc array;
  parallel_kernels : proc array;
  driver : proc;
}

let block_bytes b = Array.fold_left ( + ) 0 b.inst_sizes

let rec first_block = function
  | [] -> invalid_arg "Program.first_addr: empty statement list"
  | Basic b :: _ | Call_site b :: _ -> b
  | Loop l :: _ -> first_block l.lbody
  | If i :: _ -> i.icond

let first_addr stmts = (first_block stmts).addr

let rec iter_stmt_blocks stmt f =
  match stmt with
  | Basic b | Call_site b -> f b
  | Loop l ->
      List.iter (fun s -> iter_stmt_blocks s f) l.lbody;
      f l.lback
  | If i ->
      f i.icond;
      List.iter (fun s -> iter_stmt_blocks s f) i.ithen;
      (match i.iskip with Some b -> f b | None -> ());
      List.iter (fun s -> iter_stmt_blocks s f) i.ielse

let iter_blocks proc f =
  List.iter (fun s -> iter_stmt_blocks s f) proc.pbody;
  f proc.pret

let proc_bytes proc =
  let sum = ref 0 in
  iter_blocks proc (fun b -> sum := !sum + block_bytes b);
  !sum

let static_bytes t =
  List.fold_left (fun acc p -> acc + proc_bytes p) 0 t.procs

(* Sequential address assignment. Returns the next free address. *)
let rec lay_stmts addr stmts =
  List.fold_left lay_stmt addr stmts

and lay_stmt addr stmt =
  match stmt with
  | Basic b | Call_site b ->
      b.addr <- addr;
      addr + block_bytes b
  | Loop l ->
      let after_body = lay_stmts addr l.lbody in
      l.lback.addr <- after_body;
      (match l.lback.term with
      | Cond c -> c.ctarget <- first_addr l.lbody
      | Fall | Jump _ | Callt _ | Ret | Sys ->
          invalid_arg "Program.layout: loop back-edge must be Cond");
      after_body + block_bytes l.lback
  | If i ->
      i.icond.addr <- addr;
      let after_cond = addr + block_bytes i.icond in
      let after_then = lay_stmts after_cond i.ithen in
      let cond_rec =
        match i.icond.term with
        | Cond c -> c
        | Fall | Jump _ | Callt _ | Ret | Sys ->
            invalid_arg "Program.layout: if head must be Cond"
      in
      (match (i.ielse, i.iskip) with
      | [], None ->
          (* taken skips the then-arm *)
          cond_rec.ctarget <- after_then;
          after_then
      | _ :: _, Some skip ->
          skip.addr <- after_then;
          let else_start = after_then + block_bytes skip in
          let after_else = lay_stmts else_start i.ielse in
          cond_rec.ctarget <- else_start;
          (match skip.term with
          | Jump j -> j.jtarget <- after_else
          | Fall | Cond _ | Callt _ | Ret | Sys ->
              invalid_arg "Program.layout: skip block must be Jump");
          after_else
      | [], Some _ | _ :: _, None ->
          invalid_arg "Program.layout: else arm and skip block must co-occur")

let align_up align addr = (addr + align - 1) land lnot (align - 1)

let layout ~base ~align t =
  if not (Repro_util.Units.is_power_of_two align) then
    invalid_arg "Program.layout: align";
  let addr = ref base in
  List.iter
    (fun p ->
      addr := align_up align !addr;
      p.entry <- !addr;
      let after_body = lay_stmts !addr p.pbody in
      p.pret.addr <- after_body;
      addr := after_body + block_bytes p.pret)
    t.procs;
  t.image_end <- !addr
