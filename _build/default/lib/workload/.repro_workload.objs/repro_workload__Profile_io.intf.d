lib/workload/profile_io.mli: Profile
