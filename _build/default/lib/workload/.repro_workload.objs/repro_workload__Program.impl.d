lib/workload/program.ml: Array Behavior List Repro_util Trip
