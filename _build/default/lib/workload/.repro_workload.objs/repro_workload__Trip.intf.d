lib/workload/trip.mli: Format Repro_util
