lib/workload/suites.mli: Profile Suite
