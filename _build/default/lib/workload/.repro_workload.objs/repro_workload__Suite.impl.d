lib/workload/suite.ml: Format Int
