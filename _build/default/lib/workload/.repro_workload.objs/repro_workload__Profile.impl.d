lib/workload/profile.ml: Format List Printf Repro_util Result Suite Trip
