lib/workload/suites.ml: List Profile String Suite Trip
