lib/workload/behavior.ml: Array Repro_util
