lib/workload/codegen.ml: Array Behavior Float Fun List Printf Profile Program Repro_util
