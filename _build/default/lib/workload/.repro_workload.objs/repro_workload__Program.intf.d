lib/workload/program.mli: Behavior Trip
