lib/workload/executor.mli: Profile Program Repro_isa
