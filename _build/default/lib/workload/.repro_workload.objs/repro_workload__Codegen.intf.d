lib/workload/codegen.mli: Profile Program
