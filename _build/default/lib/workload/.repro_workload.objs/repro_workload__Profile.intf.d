lib/workload/profile.mli: Format Suite Trip
