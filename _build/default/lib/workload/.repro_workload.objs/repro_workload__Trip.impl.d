lib/workload/trip.ml: Float Format Repro_util
