lib/workload/suite.mli: Format
