lib/workload/behavior.mli: Repro_util
