lib/workload/profile_io.ml: In_channel List Out_channel Printf Profile Result String Suite Suites Trip
