lib/workload/executor.ml: Array Behavior Bool Codegen List Option Profile Program Repro_isa Repro_util Trip
