(** Outcome models for synthesized conditional branches.

    Each static branch site in a generated program carries one of
    these models; at execution time {!next} produces the dynamic
    direction. The mixture of models per benchmark is what shapes the
    bias histogram (paper Fig. 2) and the predictability gap between
    small and big history-based predictors (Fig. 5):

    - {!const:Bernoulli} branches have a fixed taken probability: highly
      biased sites (p near 0 or 1) are trivially predictable, mid-range
      sites are hard for every predictor;
    - [Periodic] branches repeat a fixed short pattern: predictable by
      any predictor whose history reach covers the period;
    - [Correlated] branches compute their outcome from the recent
      global outcome history: predictable only by global-history
      predictors with enough reach (and enough table space to avoid
      aliasing — this is where small gshare loses to TAGE);
    - [Path_dependent] branches take a fixed direction per control-flow
      path: the executor draws a path id per loop iteration from a
      small skewed set, and every path-dependent site in that
      iteration follows its per-path direction. This reproduces the
      *correlated branch ensembles* of real code: history entropy
      stays bounded (paths repeat), so history predictors can learn
      even thousands of such sites, while per-site bias lands in the
      middle of the Fig. 2 histogram. *)

type t

val bernoulli : p:float -> t
(** Independent draws, [P(taken) = p]. *)

val periodic : pattern:bool array -> t
(** Deterministic repetition of [pattern] (non-empty). *)

val correlated : hist_bits:int -> salt:int -> noise:float -> t
(** Outcome is a hash (parity, salted) of the last [hist_bits] global
    outcomes, flipped with probability [noise]. [hist_bits <= 24]. *)

val path_dependent : outcomes:bool array -> noise:float -> t
(** One fixed direction per control-flow path (non-empty array; the
    executor's current path id indexes it, wrapped), flipped with
    probability [noise]. *)

val next : t -> Repro_util.Rng.t -> global_hist:int -> path:int -> bool
(** Draw the next outcome. [global_hist] packs recent conditional
    outcomes (bit 0 = most recent) and is read by [Correlated];
    [path] is the executor's current control-flow path id, read by
    [Path_dependent]. *)

val mean_rate : t -> float
(** Long-run expected taken rate (0.5 for correlated branches). *)

val clone_fresh : t -> t
(** Copy with private mutable state reset, so each trace replay
    starts identically. *)

val reset : t -> unit
(** Reset private mutable state in place (periodic phase back to the
    pattern start). Used before each trace replay. *)
