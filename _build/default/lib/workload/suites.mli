(** The 41 calibrated benchmark profiles: 29 HPC applications
    (8 ExMatEx proxy apps, 11 SPEC OMP 2012, 10 NPB) and 12 SPEC CPU
    INT 2006 desktop applications.

    Profile parameters are calibrated to the architecture-independent
    characteristics the paper reports per suite and per named
    benchmark (branch fractions of Fig. 1, bias distribution of
    Fig. 2, backward/forward split of Table I, footprints of Fig. 3
    incl. UA's 252KB and VPFFT's 800KB static sizes, basic-block
    lengths of Fig. 4 incl. BT 312B / swim 152B / LULESH 126B, and the
    serial-instruction shares of Section III-D: CoEVP 35%, LULESH 11%,
    CoSP 9%, CoMD 8%, nab/fma3d 4%). See DESIGN.md §5. *)

val all : Profile.t list
(** Every profile, grouped by suite in report order. *)

val by_suite : Suite.t -> Profile.t list
val names : string list

val find : string -> Profile.t
(** Lookup by benchmark name (case-sensitive); raises [Not_found]. *)

val fig6_subset : string list
(** The nine benchmarks of the paper's Fig. 6. *)

val fig9_subset : string list
(** The five benchmarks of Fig. 9. *)

val fig11_subset : string list
(** The six benchmarks of Fig. 11. *)
