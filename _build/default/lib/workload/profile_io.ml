(* Hand-rolled parser for the key = value profile format: no external
   dependencies, line-precise errors. *)

let ( let* ) = Result.bind

let parse_trip s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad trip %S (want const:N, uniform:LO-HI, geom:MEAN)" s)
  | Some i ->
      let kind = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      (match kind with
      | "const" ->
          (match int_of_string_opt arg with
          | Some n -> Ok (Trip.Const n)
          | None -> Error (Printf.sprintf "bad const trip %S" arg))
      | "uniform" ->
          (match String.split_on_char '-' arg with
          | [ lo; hi ] ->
              (match (int_of_string_opt lo, int_of_string_opt hi) with
              | Some lo, Some hi when lo <= hi -> Ok (Trip.Uniform (lo, hi))
              | _ -> Error (Printf.sprintf "bad uniform trip %S" arg))
          | _ -> Error (Printf.sprintf "bad uniform trip %S" arg))
      | "geom" ->
          (match float_of_string_opt arg with
          | Some m when m >= 1.0 -> Ok (Trip.Geometric m)
          | _ -> Error (Printf.sprintf "bad geometric trip %S" arg))
      | other -> Error (Printf.sprintf "unknown trip kind %S" other))

let trip_to_string = function
  | Trip.Const n -> Printf.sprintf "const:%d" n
  | Trip.Uniform (lo, hi) -> Printf.sprintf "uniform:%d-%d" lo hi
  | Trip.Geometric m -> Printf.sprintf "geom:%g" m

(* "w:lo-hi, w:lo-hi, ..." *)
let parse_bias_mix s =
  let items = String.split_on_char ',' s |> List.map String.trim in
  let parse_item item =
    match String.split_on_char ':' item with
    | [ w; range ] ->
        (match String.split_on_char '-' range with
        | [ lo; hi ] ->
            (match
               (float_of_string_opt w, float_of_string_opt lo,
                float_of_string_opt hi)
             with
            | Some w, Some lo, Some hi -> Ok (w, (lo, hi))
            | _ -> Error (Printf.sprintf "bad bias item %S" item))
        | _ -> Error (Printf.sprintf "bad bias range in %S" item))
    | _ -> Error (Printf.sprintf "bad bias item %S (want w:lo-hi)" item)
  in
  List.fold_right
    (fun item acc ->
      let* acc = acc in
      let* v = parse_item item in
      Ok (v :: acc))
    items (Ok [])

let bias_mix_to_string mix =
  String.concat ", "
    (List.map (fun (w, (lo, hi)) -> Printf.sprintf "%g:%g-%g" w lo hi) mix)

let parse_int_pair s =
  match String.split_on_char '-' s with
  | [ lo; hi ] ->
      (match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when lo <= hi -> Ok (lo, hi)
      | _ -> Error (Printf.sprintf "bad range %S" s))
  | _ -> Error (Printf.sprintf "bad range %S (want LO-HI)" s)

let need_float s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "bad number %S" s)

let need_int s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad integer %S" s)

let apply_section_key (sec : Profile.section) key value =
  match key with
  | "branch_fraction" ->
      let* v = need_float value in
      Ok { sec with Profile.branch_fraction = v }
  | "avg_inst_bytes" ->
      let* v = need_float value in
      Ok { sec with Profile.avg_inst_bytes = v }
  | "n_kernels" ->
      let* v = need_int value in
      Ok { sec with Profile.n_kernels = v }
  | "inner_loops" ->
      let* v = parse_int_pair value in
      Ok { sec with Profile.inner_loops = v }
  | "body_blocks" ->
      let* v = parse_int_pair value in
      Ok { sec with Profile.body_blocks = v }
  | "inner_trip" ->
      let* v = parse_trip value in
      Ok { sec with Profile.inner_trip = v }
  | "outer_trip" ->
      let* v = parse_trip value in
      Ok { sec with Profile.outer_trip = v }
  | "if_density" ->
      let* v = need_float value in
      Ok { sec with Profile.if_density = v }
  | "else_share" ->
      let* v = need_float value in
      Ok { sec with Profile.else_share = v }
  | "call_density" ->
      let* v = need_float value in
      Ok { sec with Profile.call_density = v }
  | "indirect_call_share" ->
      let* v = need_float value in
      Ok { sec with Profile.indirect_call_share = v }
  | "callee_insts" ->
      let* v = parse_int_pair value in
      Ok { sec with Profile.callee_insts = v }
  | "callee_pool" ->
      let* v = need_int value in
      Ok { sec with Profile.callee_pool = v }
  | "dead_arm_insts" ->
      let* v = parse_int_pair value in
      Ok { sec with Profile.dead_arm_insts = v }
  | "arm_weight" ->
      let* v = need_float value in
      Ok { sec with Profile.arm_weight = v }
  | "bias_mix" ->
      let* v = parse_bias_mix value in
      Ok { sec with Profile.bias_mix = v }
  | "periodic_share" ->
      let* v = need_float value in
      Ok { sec with Profile.periodic_share = v }
  | "periodic_len" ->
      let* v = parse_int_pair value in
      Ok { sec with Profile.periodic_len = v }
  | "correlated_share" ->
      let* v = need_float value in
      Ok { sec with Profile.correlated_share = v }
  | "correlated_bits" ->
      let* v = need_int value in
      Ok { sec with Profile.correlated_bits = v }
  | "correlated_noise" ->
      let* v = need_float value in
      Ok { sec with Profile.correlated_noise = v }
  | "path_share" ->
      let* v = need_float value in
      Ok { sec with Profile.path_share = v }
  | "n_paths" ->
      let* v = need_int value in
      Ok { sec with Profile.n_paths = v }
  | "path_noise" ->
      let* v = need_float value in
      Ok { sec with Profile.path_noise = v }
  | "path_taken_rate" ->
      let* v = need_float value in
      Ok { sec with Profile.path_taken_rate = v }
  | "hot_kb" ->
      let* v = need_float value in
      Ok { sec with Profile.hot_kb = v }
  | "cold_excursion" ->
      let* v = need_float value in
      Ok { sec with Profile.cold_excursion = v }
  | other -> Error (Printf.sprintf "unknown section key %S" other)

let apply_key (p : Profile.t) key value =
  match key with
  | "name" -> Ok { p with Profile.name = value }
  | "like" ->
      (match
         List.find_opt (fun (q : Profile.t) -> q.name = value) Suites.all
       with
      | Some base -> Ok { base with Profile.name = p.Profile.name }
      | None -> Error (Printf.sprintf "unknown template benchmark %S" value))
  | "suite" ->
      (match String.lowercase_ascii value with
      | "exmatex" -> Ok { p with Profile.suite = Suite.Exmatex }
      | "omp" | "spec_omp" -> Ok { p with Profile.suite = Suite.Spec_omp }
      | "npb" -> Ok { p with Profile.suite = Suite.Npb }
      | "int" | "spec_int" -> Ok { p with Profile.suite = Suite.Spec_int }
      | other -> Error (Printf.sprintf "unknown suite %S" other))
  | "seed" ->
      let* v = need_int value in
      Ok { p with Profile.seed = v }
  | "total_insts" ->
      let* v = need_int value in
      Ok { p with Profile.total_insts = v }
  | "serial_fraction" ->
      let* v = need_float value in
      Ok { p with Profile.serial_fraction = v }
  | "rounds" ->
      let* v = need_int value in
      Ok { p with Profile.rounds = v }
  | "static_kb" ->
      let* v = need_float value in
      Ok { p with Profile.static_kb = v }
  | "proc_align" ->
      let* v = need_int value in
      Ok { p with Profile.proc_align = v }
  | "syscall_per_mil" ->
      let* v = need_float value in
      Ok { p with Profile.syscall_per_mil = v }
  | "data_stall_cpi" ->
      let* v = need_float value in
      Ok { p with Profile.perf = { p.Profile.perf with data_stall_cpi = v } }
  | "scale_alpha" ->
      let* v = need_float value in
      Ok { p with Profile.perf = { p.Profile.perf with scale_alpha = v } }
  | _ ->
      (match String.index_opt key '.' with
      | Some i ->
          let prefix = String.sub key 0 i in
          let rest = String.sub key (i + 1) (String.length key - i - 1) in
          (match prefix with
          | "serial" ->
              let* sec = apply_section_key p.Profile.serial rest value in
              Ok { p with Profile.serial = sec }
          | "parallel" ->
              let* sec = apply_section_key p.Profile.parallel rest value in
              Ok { p with Profile.parallel = sec }
          | other -> Error (Printf.sprintf "unknown section %S" other))
      | None -> Error (Printf.sprintf "unknown key %S" key))

let blank : Profile.t =
  { name = "custom";
    suite = Suite.Npb;
    seed = 1;
    total_insts = 1_000_000;
    serial_fraction = 0.01;
    rounds = 8;
    static_kb = 60.0;
    proc_align = 64;
    syscall_per_mil = 2.0;
    perf = Profile.default_perf;
    serial = Profile.default_section;
    parallel = Profile.default_section }

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let* profile =
    List.fold_left
      (fun acc (lineno, line) ->
        let* p = acc in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line = "" then Ok p
        else
          match String.index_opt line '=' with
          | None -> Error (Printf.sprintf "line %d: missing '='" lineno)
          | Some i ->
              let key = String.trim (String.sub line 0 i) in
              let value =
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              (match apply_key p key value with
              | Ok p -> Ok p
              | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)))
      (Ok blank)
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  match Profile.validate profile with
  | Ok () -> Ok profile
  | Error e -> Error ("invalid profile: " ^ e)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error e -> Error e

let section_to_lines prefix (s : Profile.section) =
  [ Printf.sprintf "%s.branch_fraction = %g" prefix s.branch_fraction;
    Printf.sprintf "%s.avg_inst_bytes = %g" prefix s.avg_inst_bytes;
    Printf.sprintf "%s.n_kernels = %d" prefix s.n_kernels;
    Printf.sprintf "%s.inner_loops = %d-%d" prefix (fst s.inner_loops)
      (snd s.inner_loops);
    Printf.sprintf "%s.body_blocks = %d-%d" prefix (fst s.body_blocks)
      (snd s.body_blocks);
    Printf.sprintf "%s.inner_trip = %s" prefix (trip_to_string s.inner_trip);
    Printf.sprintf "%s.outer_trip = %s" prefix (trip_to_string s.outer_trip);
    Printf.sprintf "%s.if_density = %g" prefix s.if_density;
    Printf.sprintf "%s.else_share = %g" prefix s.else_share;
    Printf.sprintf "%s.call_density = %g" prefix s.call_density;
    Printf.sprintf "%s.indirect_call_share = %g" prefix s.indirect_call_share;
    Printf.sprintf "%s.callee_insts = %d-%d" prefix (fst s.callee_insts)
      (snd s.callee_insts);
    Printf.sprintf "%s.callee_pool = %d" prefix s.callee_pool;
    Printf.sprintf "%s.dead_arm_insts = %d-%d" prefix (fst s.dead_arm_insts)
      (snd s.dead_arm_insts);
    Printf.sprintf "%s.arm_weight = %g" prefix s.arm_weight;
    Printf.sprintf "%s.bias_mix = %s" prefix (bias_mix_to_string s.bias_mix);
    Printf.sprintf "%s.periodic_share = %g" prefix s.periodic_share;
    Printf.sprintf "%s.periodic_len = %d-%d" prefix (fst s.periodic_len)
      (snd s.periodic_len);
    Printf.sprintf "%s.correlated_share = %g" prefix s.correlated_share;
    Printf.sprintf "%s.correlated_bits = %d" prefix s.correlated_bits;
    Printf.sprintf "%s.correlated_noise = %g" prefix s.correlated_noise;
    Printf.sprintf "%s.path_share = %g" prefix s.path_share;
    Printf.sprintf "%s.n_paths = %d" prefix s.n_paths;
    Printf.sprintf "%s.path_noise = %g" prefix s.path_noise;
    Printf.sprintf "%s.path_taken_rate = %g" prefix s.path_taken_rate;
    Printf.sprintf "%s.hot_kb = %g" prefix s.hot_kb;
    Printf.sprintf "%s.cold_excursion = %g" prefix s.cold_excursion ]

let suite_to_string = function
  | Suite.Exmatex -> "exmatex"
  | Suite.Spec_omp -> "omp"
  | Suite.Npb -> "npb"
  | Suite.Spec_int -> "int"

let to_string (p : Profile.t) =
  String.concat "\n"
    ([ Printf.sprintf "name = %s" p.name;
       Printf.sprintf "suite = %s" (suite_to_string p.suite);
       Printf.sprintf "seed = %d" p.seed;
       Printf.sprintf "total_insts = %d" p.total_insts;
       Printf.sprintf "serial_fraction = %g" p.serial_fraction;
       Printf.sprintf "rounds = %d" p.rounds;
       Printf.sprintf "static_kb = %g" p.static_kb;
       Printf.sprintf "proc_align = %d" p.proc_align;
       Printf.sprintf "syscall_per_mil = %g" p.syscall_per_mil;
       Printf.sprintf "data_stall_cpi = %g" p.perf.data_stall_cpi;
       Printf.sprintf "scale_alpha = %g" p.perf.scale_alpha ]
    @ section_to_lines "serial" p.serial
    @ section_to_lines "parallel" p.parallel)
  ^ "\n"

let save path p =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string p))
