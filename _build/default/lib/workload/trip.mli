(** Loop trip-count models. A loop's backward branch is taken
    [trip - 1] times and then falls through once; whether [trip] is
    the same on every loop entry decides whether the loop predictor
    can capture it (paper Section IV-A). *)

type t =
  | Const of int  (** same trip count on every entry (LBP-friendly) *)
  | Uniform of int * int  (** fresh uniform draw in [lo, hi] per entry *)
  | Geometric of float  (** fresh draw, mean given, at least 1 *)

val sample : t -> Repro_util.Rng.t -> int
(** Trip count for one loop entry; always at least 1. *)

val mean : t -> float

val pp : Format.formatter -> t -> unit
