type t = Const of int | Uniform of int * int | Geometric of float

let sample t rng =
  match t with
  | Const n -> max 1 n
  | Uniform (lo, hi) -> max 1 (Repro_util.Rng.range rng lo hi)
  | Geometric mean ->
      let mean = Float.max 1.0 mean in
      Repro_util.Rng.geometric rng (1.0 /. mean)

let mean = function
  | Const n -> float_of_int (max 1 n)
  | Uniform (lo, hi) -> float_of_int (lo + hi) /. 2.0
  | Geometric m -> Float.max 1.0 m

let pp fmt = function
  | Const n -> Format.fprintf fmt "const:%d" n
  | Uniform (lo, hi) -> Format.fprintf fmt "uniform:%d-%d" lo hi
  | Geometric m -> Format.fprintf fmt "geom:%.1f" m
