(** Front-end-aware core timing model (the Sniper substitute).

    The paper uses Sniper only to translate front-end miss-rate
    differences into execution-time differences on Cortex-A9-like
    cores. This model does exactly that translation: a base CPI for
    the dual-issue lean core, a per-benchmark data-side stall term
    (from {!Repro_workload.Profile.perf_hints}), plus the measured
    front-end event rates weighted by their penalties. *)

type rates = { bp_mpki : float; btb_mpki : float; icache_mpki : float }

type measurement = {
  serial : rates;
  parallel : rates;
  total : rates;
  serial_insts : int;
  parallel_insts : int;
}

val measure_many :
  Frontend_config.t list -> Repro_isa.Trace.t -> measurement list
(** Simulate all configurations over one pass of the trace. *)

val measure : Frontend_config.t -> Repro_isa.Trace.t -> measurement

(** {1 CPI model} *)

val base_cpi : float
(** Issue-limited CPI of the lean core with a perfect front-end. *)

val bp_penalty : float
(** Cycles per branch misprediction (12, per the paper's Table III). *)

val btb_penalty : float
(** Cycles per taken-branch target miss (fetch redirect). *)

val icache_penalty : float
(** Cycles per I-cache miss (L2 hit latency). *)

val cpi : data_stall:float -> rates -> float
(** [cpi ~data_stall rates] combines base CPI, the benchmark's
    data-side stalls, and front-end penalties. *)
