type fit = { k : float; e : float }

let powerlaw_fit (x1, y1) (x2, y2) =
  if x1 <= 0.0 || x2 <= 0.0 || y1 <= 0.0 || y2 <= 0.0 then
    invalid_arg "Cacti.powerlaw_fit: non-positive anchor";
  if x1 = x2 then invalid_arg "Cacti.powerlaw_fit: equal abscissae";
  let e = log (y1 /. y2) /. log (x1 /. x2) in
  let k = y1 /. (x1 ** e) in
  { k; e }

let eval { k; e } x = k *. (x ** e)
let exponent f = f.e
let coefficient f = f.k

(* ~0.95 um^2/bit at 40nm including peripherals, with a small fixed
   overhead for decoders and sense amplifiers. *)
let sram_area_mm2 ~bits = (float_of_int bits *. 0.95e-6) +. 0.004

let sram_leakage_w ~bits = (float_of_int bits *. 6.0e-8) +. 0.0003
