(** CACTI-like SRAM scaling model.

    The paper publishes absolute area and power for each front-end
    structure at two design points (Table III, McPAT + CACTI, 40nm).
    We interpolate between and beyond those points with power-law fits
    anchored exactly on the published pairs — the standard shape of
    CACTI's size scaling — so design-space sweeps stay monotone and
    the two named configurations reproduce Table III exactly. *)

type fit

val powerlaw_fit : float * float -> float * float -> fit
(** [powerlaw_fit (x1, y1) (x2, y2)] is the [y = k * x^e] curve
    through both anchors. Requires positive coordinates and
    [x1 <> x2]. *)

val eval : fit -> float -> float

val exponent : fit -> float
val coefficient : fit -> float

val sram_area_mm2 : bits:int -> float
(** Generic 40nm SRAM array area for structures without published
    anchors: ~0.95 um^2 per bit plus peripheral overhead. *)

val sram_leakage_w : bits:int -> float
(** Generic 40nm leakage estimate for the same arrays. *)
