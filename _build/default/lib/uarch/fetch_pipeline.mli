(** Cycle-approximate front-end pipeline model.

    Where {!Timing} charges additive penalties per miss event, this
    model walks the fetch unit cycle by cycle: each cycle delivers up
    to [fetch_bytes] contiguous bytes from the current I-cache line;
    taken branches redirect fetch; the BP, BTB and RAS decide how many
    bubbles each control transfer costs:

    - correctly-predicted direction with a BTB (or RAS) target hit:
      zero-bubble redirect — the paper's "zero branch penalty" case;
    - taken branch without a BTB target: decode-stage redirect
      ({!btb_bubbles});
    - direction misprediction: execute-stage flush ({!bp_bubbles});
    - I-cache miss: L2 fill stall ({!icache_bubbles}).

    Feeding the same trace through two configurations gives a
    structural estimate of the front-end-bound cycle delta that is
    independent of {!Timing}'s additivity assumption; the test suite
    checks the two models agree on ordering. *)

type t

val create : ?fetch_bytes:int -> Frontend_config.t -> t
(** [fetch_bytes] is the fetch-unit width (default 16, two 8-byte
    slots — lean dual-issue class). *)

val feed : t -> Repro_isa.Inst.t -> unit
val observer : t -> Repro_isa.Inst.t -> unit

val bp_bubbles : int
val btb_bubbles : int
val icache_bubbles : int

val instructions : t -> int
val cycles : t -> float
(** Total front-end cycles: fetch cycles plus all bubbles. *)

val frontend_cpi : t -> float
(** [cycles / instructions]; the front-end bound on CPI. *)

val breakdown : t -> (string * float) list
(** Cycle shares by cause: ["fetch"], ["bp-flush"], ["btb-redirect"],
    ["icache-miss"]. *)
