(** McPAT-like core area and power budget (paper Table III): a
    Cortex-A9-class lean core at 40nm, decomposed into the three
    front-end structures under study plus a fixed rest-of-core.

    The two named design points reproduce the paper's Table III
    absolute values; other configurations are interpolated with
    {!Cacti} power-law fits anchored on those values. *)

type budget = {
  icache_mm2 : float;
  bp_mm2 : float;
  btb_mm2 : float;
  rest_mm2 : float;  (** execution units, D-cache, register files, … *)
  icache_w : float;
  bp_w : float;
  btb_w : float;
  rest_w : float;
}

val budget : Frontend_config.t -> budget

val core_area_mm2 : Frontend_config.t -> float
val core_power_w : Frontend_config.t -> float
(** Peak (fully-active) core power; see {!Cmp} for idle scaling. *)

val static_power_fraction : float
(** Share of core power that is leakage (drawn even when idle). *)

val l2_power_w : float
(** Private 256KB L2 slice power per core. *)

val l2_area_mm2 : float

val area_saving_vs_baseline : Frontend_config.t -> float
(** [1 - area(cfg)/area(baseline)], the paper's headline 16% for the
    tailored configuration. *)

val power_saving_vs_baseline : Frontend_config.t -> float
