lib/uarch/fetch_pipeline.mli: Frontend_config Repro_isa
