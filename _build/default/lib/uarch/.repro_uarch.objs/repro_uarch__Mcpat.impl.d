lib/uarch/mcpat.ml: Cacti Frontend_config Repro_frontend
