lib/uarch/cacti.mli:
