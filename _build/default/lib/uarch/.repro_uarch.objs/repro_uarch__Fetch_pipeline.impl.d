lib/uarch/fetch_pipeline.ml: Frontend_config Repro_frontend Repro_isa
