lib/uarch/timing.ml: Float Frontend_config List Repro_analysis Repro_isa
