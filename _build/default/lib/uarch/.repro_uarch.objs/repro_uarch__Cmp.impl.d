lib/uarch/cmp.ml: Float Frontend_config List Mcpat Repro_workload Timing
