lib/uarch/cmp.mli: Frontend_config Repro_workload
