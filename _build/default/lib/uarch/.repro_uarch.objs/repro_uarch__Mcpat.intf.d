lib/uarch/mcpat.mli: Frontend_config
