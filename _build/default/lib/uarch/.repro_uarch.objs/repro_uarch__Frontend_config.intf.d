lib/uarch/frontend_config.mli: Format Repro_frontend
