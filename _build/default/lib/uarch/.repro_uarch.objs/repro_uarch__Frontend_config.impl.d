lib/uarch/frontend_config.ml: Format Printf Repro_frontend Repro_util
