lib/uarch/cacti.ml:
