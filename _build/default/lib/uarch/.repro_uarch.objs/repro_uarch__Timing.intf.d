lib/uarch/timing.mli: Frontend_config Repro_isa
