module Inst = Repro_isa.Inst
module F = Repro_frontend

let bp_bubbles = 12
let btb_bubbles = 7
let icache_bubbles = 16

type t = {
  fetch_bytes : int;
  bp : F.Predictor.t;
  btb : F.Btb.t;
  ras : F.Ras.t;
  icache : F.Icache.t;
  mutable line : int; (* current fetch line; -1 forces a new access *)
  mutable slot_bytes : int; (* bytes already delivered this cycle *)
  mutable insts : int;
  mutable fetch_cycles : float;
  mutable bp_cycles : float;
  mutable btb_cycles : float;
  mutable icache_cycles : float;
}

let create ?(fetch_bytes = 16) (cfg : Frontend_config.t) =
  if fetch_bytes < 4 then invalid_arg "Fetch_pipeline.create";
  { fetch_bytes;
    bp = Frontend_config.make_bp cfg;
    btb = F.Btb.create ~entries:cfg.btb_entries ~assoc:cfg.btb_assoc;
    ras = F.Ras.create ~depth:16 ();
    icache =
      F.Icache.create ~size_bytes:cfg.icache_bytes ~line_bytes:cfg.icache_line
        ~assoc:cfg.icache_assoc ();
    line = -1;
    slot_bytes = 0;
    insts = 0;
    fetch_cycles = 0.0;
    bp_cycles = 0.0;
    btb_cycles = 0.0;
    icache_cycles = 0.0 }

let new_cycle t =
  t.fetch_cycles <- t.fetch_cycles +. 1.0;
  t.slot_bytes <- 0

let redirect t = t.line <- -1

(* Deliver one instruction's bytes through the fetch unit, accessing
   the I-cache on line transitions. *)
let deliver t (i : Inst.t) =
  let line_bytes = F.Icache.line_bytes t.icache in
  let first = i.addr / line_bytes and last = (i.addr + i.size - 1) / line_bytes in
  if first <> t.line || last <> t.line then begin
    (* new line: new cycle and a cache access *)
    new_cycle t;
    if not (F.Icache.access t.icache ~addr:i.addr ~size:i.size) then
      t.icache_cycles <- t.icache_cycles +. float_of_int icache_bubbles;
    t.line <- last;
    t.slot_bytes <- i.size
  end
  else begin
    F.Icache.consume t.icache ~addr:i.addr ~size:i.size;
    if t.slot_bytes + i.size > t.fetch_bytes then begin
      new_cycle t;
      t.slot_bytes <- i.size
    end
    else t.slot_bytes <- t.slot_bytes + i.size
  end

(* Cost of a control transfer once fetch reaches it. *)
let control t (i : Inst.t) =
  match i.kind with
  | Inst.Plain -> ()
  | Inst.Cond_branch ->
      let pred = t.bp.F.Predictor.predict i.addr in
      t.bp.F.Predictor.update i.addr i.taken;
      if pred <> i.taken then begin
        t.bp_cycles <- t.bp_cycles +. float_of_int bp_bubbles;
        redirect t
      end
      else if i.taken then begin
        (match F.Btb.lookup t.btb ~pc:i.addr with
        | Some target when target = i.target -> ()
        | Some _ | None ->
            t.btb_cycles <- t.btb_cycles +. float_of_int btb_bubbles);
        F.Btb.insert t.btb ~pc:i.addr ~target:i.target;
        redirect t
      end
  | Inst.Uncond_direct | Inst.Indirect_branch ->
      (match F.Btb.lookup t.btb ~pc:i.addr with
      | Some target when target = i.target -> ()
      | Some _ | None -> t.btb_cycles <- t.btb_cycles +. float_of_int btb_bubbles);
      F.Btb.insert t.btb ~pc:i.addr ~target:i.target;
      redirect t
  | Inst.Call | Inst.Indirect_call ->
      F.Ras.push t.ras (i.addr + i.size);
      (match F.Btb.lookup t.btb ~pc:i.addr with
      | Some target when target = i.target -> ()
      | Some _ | None -> t.btb_cycles <- t.btb_cycles +. float_of_int btb_bubbles);
      F.Btb.insert t.btb ~pc:i.addr ~target:i.target;
      redirect t
  | Inst.Return ->
      (match F.Ras.pop t.ras with
      | Some target when target = i.target -> ()
      | Some _ | None -> t.btb_cycles <- t.btb_cycles +. float_of_int btb_bubbles);
      redirect t
  | Inst.Syscall ->
      (* Trap: pipeline drain, charged like a flush. *)
      t.bp_cycles <- t.bp_cycles +. float_of_int bp_bubbles;
      redirect t

let feed t (i : Inst.t) =
  if i.warmup then begin
    (* Warm structures without counting cycles. *)
    if i.kind = Inst.Cond_branch then t.bp.F.Predictor.update i.addr i.taken;
    ignore (F.Icache.access t.icache ~addr:i.addr ~size:i.size)
  end
  else begin
    t.insts <- t.insts + 1;
    deliver t i;
    control t i
  end

let observer t = feed t
let instructions t = t.insts
let cycles t = t.fetch_cycles +. t.bp_cycles +. t.btb_cycles +. t.icache_cycles

let frontend_cpi t =
  if t.insts = 0 then nan else cycles t /. float_of_int t.insts

let breakdown t =
  [ ("fetch", t.fetch_cycles); ("bp-flush", t.bp_cycles);
    ("btb-redirect", t.btb_cycles); ("icache-miss", t.icache_cycles) ]
