(** Instruction working-set curves: I-cache miss rate as a function of
    cache size, computed by simulating a ladder of caches in one trace
    pass. Generalizes the three sizes of the paper's Fig. 8 into a
    full curve and locates its knee (the benchmark's effective
    instruction working set — the quantity that decides whether a
    16KB tailored I-cache is safe). *)

type t

val create :
  ?sizes:int list -> ?line_bytes:int -> ?assoc:int -> unit -> t
(** Defaults: sizes 2KB..128KB in powers of two, 64B lines, 4-way. *)

val feed : t -> Repro_isa.Inst.t -> unit
val observer : t -> Repro_isa.Inst.t -> unit

val curve : t -> (int * float) list
(** [(size_bytes, total MPKI)] per ladder rung, ascending size. *)

val knee : t -> ?threshold:float -> unit -> int option
(** Smallest size whose MPKI is within [threshold] (default 0.5 MPKI)
    of the largest simulated cache's MPKI. [None] before any
    instruction or if even the largest cache misses the bound. *)
