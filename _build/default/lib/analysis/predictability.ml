module Inst = Repro_isa.Inst

type t = {
  hist_bits : int;
  mutable hist : int;
  pairs : (int, unit) Hashtbl.t;
  sites : (int, unit) Hashtbl.t;
  hists : (int, unit) Hashtbl.t;
  mutable conds : int;
}

let create ?(hist_bits = 16) () =
  if hist_bits < 1 || hist_bits > 24 then invalid_arg "Predictability.create";
  { hist_bits;
    hist = 0;
    pairs = Hashtbl.create (1 lsl 16);
    sites = Hashtbl.create 4096;
    hists = Hashtbl.create 4096;
    conds = 0 }

let feed t (i : Inst.t) =
  if (not i.warmup) && i.kind = Inst.Cond_branch then begin
    t.conds <- t.conds + 1;
    let key = (i.addr lsl t.hist_bits) lor t.hist in
    if not (Hashtbl.mem t.pairs key) then Hashtbl.add t.pairs key ();
    if not (Hashtbl.mem t.sites i.addr) then Hashtbl.add t.sites i.addr ();
    if not (Hashtbl.mem t.hists t.hist) then Hashtbl.add t.hists t.hist ();
    t.hist <-
      ((t.hist lsl 1) lor Bool.to_int i.taken) land ((1 lsl t.hist_bits) - 1)
  end

let observer t = feed t
let conditionals t = t.conds
let distinct_sites t = Hashtbl.length t.sites
let distinct_histories t = Hashtbl.length t.hists
let distinct_pairs t = Hashtbl.length t.pairs

let novelty_rate t =
  if t.conds = 0 then nan
  else float_of_int (distinct_pairs t) /. float_of_int t.conds

let pairs_per_site t =
  let sites = distinct_sites t in
  if sites = 0 then nan
  else float_of_int (distinct_pairs t) /. float_of_int sites
