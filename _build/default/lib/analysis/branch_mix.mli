(** Dynamic branch-instruction breakdown (paper Fig. 1): how much of
    the instruction mix each branch class contributes, split into
    serial and parallel code sections. *)

type t

val create : unit -> t
val feed : t -> Repro_isa.Inst.t -> unit
val observer : t -> Repro_isa.Inst.t -> unit

(** Fig. 1's legend categories. [Direct_branch] merges conditional and
    unconditional direct branches, as the figure does. *)
type category =
  | Call
  | Indirect_call
  | Direct_branch
  | Indirect_branch
  | Syscall
  | Return

val categories : category list
(** In the figure's legend order. *)

val category_to_string : category -> string

(** Scope selector used by every per-section metric in this library:
    the whole run or one section. *)
type scope = Total | Only of Repro_isa.Section.t

val insts : t -> scope -> int
val branches : t -> scope -> int

val fraction : t -> scope -> category -> float
(** Share of *all instructions* in the scope that fall in the
    category (the figure's y-axis). [nan] when the scope is empty. *)

val branch_fraction : t -> scope -> float
(** All branch classes together as a share of instructions. *)

val conditional_fraction : t -> scope -> float
(** Conditional direct branches as a share of instructions. *)
