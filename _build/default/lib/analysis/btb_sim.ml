module Inst = Repro_isa.Inst

type t = {
  btb : Repro_frontend.Btb.t;
  insts : Tool.Split.t;
  taken : Tool.Split.t;
  misses : Tool.Split.t;
}

let create ~entries ~assoc =
  { btb = Repro_frontend.Btb.create ~entries ~assoc;
    insts = Tool.Split.create ();
    taken = Tool.Split.create ();
    misses = Tool.Split.create () }

let feed t (i : Inst.t) =
  if i.warmup then begin
    if i.taken && Inst.is_branch i && i.kind <> Inst.Syscall
       && i.kind <> Inst.Return then
      Repro_frontend.Btb.insert t.btb ~pc:i.addr ~target:i.target
  end
  else begin
    let s = i.section in
    Tool.Split.incr t.insts s;
    if i.taken && Inst.is_branch i && i.kind <> Inst.Syscall
       && i.kind <> Inst.Return then begin
      Tool.Split.incr t.taken s;
      (match Repro_frontend.Btb.lookup t.btb ~pc:i.addr with
      | Some target when target = i.target -> ()
      | Some _ | None -> Tool.Split.incr t.misses s);
      Repro_frontend.Btb.insert t.btb ~pc:i.addr ~target:i.target
    end
  end

let observer t = feed t

let scope_get split = function
  | Branch_mix.Total -> Tool.Split.total split
  | Branch_mix.Only s -> Tool.Split.get split s

let insts t scope = scope_get t.insts scope
let taken_branches t scope = scope_get t.taken scope
let misses t scope = scope_get t.misses scope

let mpki t scope =
  let n = insts t scope in
  if n = 0 then nan
  else float_of_int (misses t scope) /. (float_of_int n /. 1000.0)

let miss_rate t scope =
  let n = taken_branches t scope in
  if n = 0 then nan else float_of_int (misses t scope) /. float_of_int n
