module Inst = Repro_isa.Inst
module Section = Repro_isa.Section

type cell = {
  size : int;
  mutable serial : int; (* executions in serial sections *)
  mutable parallel : int;
  mutable warm : int; (* warmup executions: static footprint only *)
}

type t = { cells : (int, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create (1 lsl 16) }

let feed t (i : Inst.t) =
  let cell =
    match Hashtbl.find_opt t.cells i.addr with
    | Some c -> c
    | None ->
        let c = { size = i.size; serial = 0; parallel = 0; warm = 0 } in
        Hashtbl.add t.cells i.addr c;
        c
  in
  if i.warmup then cell.warm <- cell.warm + 1
  else
    match i.section with
    | Section.Serial -> cell.serial <- cell.serial + 1
    | Section.Parallel -> cell.parallel <- cell.parallel + 1

let observer t = feed t

let count_in_scope scope cell =
  match scope with
  | Branch_mix.Total -> cell.serial + cell.parallel
  | Branch_mix.Only Section.Serial -> cell.serial
  | Branch_mix.Only Section.Parallel -> cell.parallel

(* Static footprint includes warmup-touched code (the code exists in
   the image and was executed), but only for the Total scope; section
   scopes reflect code executed inside that section. *)
let static_bytes t scope =
  Hashtbl.fold
    (fun _ cell acc ->
      let n =
        match scope with
        | Branch_mix.Total -> count_in_scope scope cell + cell.warm
        | Branch_mix.Only _ -> count_in_scope scope cell
      in
      if n > 0 then acc + cell.size else acc)
    t.cells 0

let static_insts t scope =
  Hashtbl.fold
    (fun _ cell acc ->
      let n =
        match scope with
        | Branch_mix.Total -> count_in_scope scope cell + cell.warm
        | Branch_mix.Only _ -> count_in_scope scope cell
      in
      if n > 0 then acc + 1 else acc)
    t.cells 0

let dynamic_bytes t scope ~coverage =
  let cells =
    Hashtbl.fold
      (fun _ cell acc ->
        let n = count_in_scope scope cell in
        if n > 0 then (cell.size, float_of_int n) :: acc else acc)
      t.cells []
  in
  Repro_util.Stats.bytes_for_coverage cells ~coverage
