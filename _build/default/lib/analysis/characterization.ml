type t = {
  name : string;
  suite : Repro_workload.Suite.t;
  mix : Branch_mix.t;
  bias : Branch_bias.t;
  footprint : Footprint.t;
  bblocks : Bblock_stats.t;
}

let of_trace ~name ~suite trace =
  let mix = Branch_mix.create () in
  let bias = Branch_bias.create () in
  let footprint = Footprint.create () in
  let bblocks = Bblock_stats.create () in
  Tool.run_all trace
    [ Branch_mix.observer mix;
      Branch_bias.observer bias;
      Footprint.observer footprint;
      Bblock_stats.observer bblocks ];
  { name; suite; mix; bias; footprint; bblocks }

let of_profile ?insts profile =
  let executor = Repro_workload.Executor.create ?insts profile in
  of_trace ~name:profile.Repro_workload.Profile.name
    ~suite:profile.Repro_workload.Profile.suite
    (Repro_workload.Executor.trace executor)

let suite_mean results metric =
  let values =
    List.filter_map
      (fun r ->
        let v = metric r in
        if Float.is_nan v then None else Some v)
      results
  in
  Repro_util.Stats.mean values
