type t = { rungs : (int * Icache_sim.t) list }

let default_sizes =
  [ 2048; 4096; 8192; 16384; 32768; 65536; 131072 ]

let create ?(sizes = default_sizes) ?(line_bytes = 64) ?(assoc = 4) () =
  if sizes = [] then invalid_arg "Working_set.create: no sizes";
  let sorted = List.sort_uniq compare sizes in
  { rungs =
      List.map
        (fun s ->
          (s, Icache_sim.create ~size_bytes:s ~line_bytes ~assoc ()))
        sorted }

let feed t inst = List.iter (fun (_, sim) -> Icache_sim.feed sim inst) t.rungs
let observer t = feed t

let curve t =
  List.map (fun (s, sim) -> (s, Icache_sim.mpki sim Branch_mix.Total)) t.rungs

let knee t ?(threshold = 0.5) () =
  let c = curve t in
  match List.rev c with
  | [] | [ _ ] -> None
  | (_, best) :: _ ->
      if Float.is_nan best then None
      else
        List.find_map
          (fun (size, mpki) ->
            if (not (Float.is_nan mpki)) && mpki <= best +. threshold then
              Some size
            else None)
          c
