(** One-pass architecture-independent characterization of a benchmark:
    bundles the Fig. 1–4 / Table I tools, run over a single execution
    of the trace, exactly like attaching several pintools to one
    instrumented run. *)

type t = {
  name : string;
  suite : Repro_workload.Suite.t;
  mix : Branch_mix.t;
  bias : Branch_bias.t;
  footprint : Footprint.t;
  bblocks : Bblock_stats.t;
}

val of_trace :
  name:string -> suite:Repro_workload.Suite.t -> Repro_isa.Trace.t -> t
(** Run all four tools over the trace in one pass. *)

val of_profile : ?insts:int -> Repro_workload.Profile.t -> t
(** Generate the benchmark's program, execute it, characterize it. *)

(** {1 Aggregation} *)

val suite_mean :
  t list -> (t -> float) -> float
(** Arithmetic mean of a metric over benchmarks, skipping [nan]s
    (a benchmark with no serial instructions has no serial metrics). *)
