module Inst = Repro_isa.Inst
module Section = Repro_isa.Section

type site = {
  mutable execs_serial : int;
  mutable taken_serial : int;
  mutable execs_parallel : int;
  mutable taken_parallel : int;
}

type t = {
  sites : (int, site) Hashtbl.t;
  taken : Tool.Split.t; (* dynamic taken conditionals *)
  taken_backward : Tool.Split.t;
  conds : Tool.Split.t;
}

let create () =
  { sites = Hashtbl.create 4096;
    taken = Tool.Split.create ();
    taken_backward = Tool.Split.create ();
    conds = Tool.Split.create () }

let feed t (i : Inst.t) =
  if i.kind = Inst.Cond_branch && not i.warmup then begin
    let s = i.section in
    Tool.Split.incr t.conds s;
    if i.taken then begin
      Tool.Split.incr t.taken s;
      if i.target < i.addr then Tool.Split.incr t.taken_backward s
    end;
    let site =
      match Hashtbl.find_opt t.sites i.addr with
      | Some site -> site
      | None ->
          let site =
            { execs_serial = 0; taken_serial = 0; execs_parallel = 0;
              taken_parallel = 0 }
          in
          Hashtbl.add t.sites i.addr site;
          site
    in
    match s with
    | Section.Serial ->
        site.execs_serial <- site.execs_serial + 1;
        if i.taken then site.taken_serial <- site.taken_serial + 1
    | Section.Parallel ->
        site.execs_parallel <- site.execs_parallel + 1;
        if i.taken then site.taken_parallel <- site.taken_parallel + 1
  end

let observer t = feed t

let site_counts scope site =
  match scope with
  | Branch_mix.Total ->
      (site.execs_serial + site.execs_parallel,
       site.taken_serial + site.taken_parallel)
  | Branch_mix.Only Section.Serial -> (site.execs_serial, site.taken_serial)
  | Branch_mix.Only Section.Parallel ->
      (site.execs_parallel, site.taken_parallel)

let deciles t scope =
  let buckets = Array.make 10 0.0 in
  let total = ref 0.0 in
  Hashtbl.iter
    (fun _ site ->
      let execs, taken = site_counts scope site in
      if execs > 0 then begin
        let rate = float_of_int taken /. float_of_int execs in
        let bucket = min 9 (int_of_float (rate *. 10.0)) in
        buckets.(bucket) <- buckets.(bucket) +. float_of_int execs;
        total := !total +. float_of_int execs
      end)
    t.sites;
  if !total = 0.0 then Array.make 10 nan
  else Array.map (fun b -> b /. !total) buckets

let biased_fraction t scope =
  let d = deciles t scope in
  if Float.is_nan d.(0) then nan else d.(0) +. d.(9)

let scope_get split scope =
  match scope with
  | Branch_mix.Total -> Tool.Split.total split
  | Branch_mix.Only s -> Tool.Split.get split s

let backward_taken_fraction t scope =
  let taken = scope_get t.taken scope in
  if taken = 0 then nan
  else float_of_int (scope_get t.taken_backward scope) /. float_of_int taken

let taken_fraction t scope =
  let conds = scope_get t.conds scope in
  if conds = 0 then nan
  else float_of_int (scope_get t.taken scope) /. float_of_int conds

let static_sites t = Hashtbl.length t.sites
