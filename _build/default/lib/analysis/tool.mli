(** Analysis-tool plumbing: the moral equivalent of running several
    pintools over one instrumented execution. Each tool is an
    [Inst.t -> unit] observer; {!run_all} drives a trace through many
    observers in a single pass, which matters because trace generation
    dominates runtime. *)

val run : Repro_isa.Trace.t -> (Repro_isa.Inst.t -> unit) -> unit
(** Single-observer convenience (same as [Trace.iter]). *)

val run_all : Repro_isa.Trace.t -> (Repro_isa.Inst.t -> unit) list -> unit
(** One pass, observers called in list order per instruction. *)

(** Per-section tallies many tools need. *)
module Split : sig
  type t = { mutable serial : int; mutable parallel : int }

  val create : unit -> t
  val incr : t -> Repro_isa.Section.t -> unit
  val add : t -> Repro_isa.Section.t -> int -> unit
  val get : t -> Repro_isa.Section.t -> int
  val total : t -> int
end
