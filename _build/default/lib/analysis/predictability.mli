(** Predictability analysis: how learnable a conditional-branch stream
    is for history-based predictors, independent of any particular
    predictor.

    Tracks the distinct [(site, k-bit global history)] pairs seen. The
    *novelty rate* — the share of dynamic conditionals executing under
    a first-time pair — lower-bounds any history predictor's cold
    misses at this trace length and measures the history entropy that
    table-based predictors must absorb (the quantity the DESIGN.md
    path-correlation model exists to bound). *)

type t

val create : ?hist_bits:int -> unit -> t
(** Default 16 history bits (gshare-big's reach). *)

val feed : t -> Repro_isa.Inst.t -> unit
val observer : t -> Repro_isa.Inst.t -> unit

val conditionals : t -> int
val distinct_sites : t -> int
val distinct_histories : t -> int
(** Distinct k-bit global history values observed. *)

val distinct_pairs : t -> int
val novelty_rate : t -> float
(** [distinct_pairs / conditionals]; 0 = perfectly repetitive,
    1 = every execution is novel (unlearnable at this length). *)

val pairs_per_site : t -> float
(** Mean history patterns per static site (table-pressure proxy). *)
