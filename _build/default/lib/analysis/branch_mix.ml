module Inst = Repro_isa.Inst

type category =
  | Call
  | Indirect_call
  | Direct_branch
  | Indirect_branch
  | Syscall
  | Return

let categories =
  [ Call; Indirect_call; Direct_branch; Indirect_branch; Syscall; Return ]

let category_to_string = function
  | Call -> "call"
  | Indirect_call -> "indirect call"
  | Direct_branch -> "direct branch"
  | Indirect_branch -> "indirect branch"
  | Syscall -> "syscall"
  | Return -> "return"

type scope = Total | Only of Repro_isa.Section.t

(* Tallies indexed by [kind] per section. *)
type t = {
  insts : Tool.Split.t;
  cond : Tool.Split.t;
  uncond : Tool.Split.t;
  indirect : Tool.Split.t;
  call : Tool.Split.t;
  icall : Tool.Split.t;
  ret : Tool.Split.t;
  sys : Tool.Split.t;
}

let create () =
  { insts = Tool.Split.create ();
    cond = Tool.Split.create ();
    uncond = Tool.Split.create ();
    indirect = Tool.Split.create ();
    call = Tool.Split.create ();
    icall = Tool.Split.create ();
    ret = Tool.Split.create ();
    sys = Tool.Split.create () }

let feed t (i : Inst.t) =
  if i.warmup then ()
  else begin
  let s = i.section in
  Tool.Split.incr t.insts s;
  match i.kind with
  | Inst.Plain -> ()
  | Inst.Cond_branch -> Tool.Split.incr t.cond s
  | Inst.Uncond_direct -> Tool.Split.incr t.uncond s
  | Inst.Indirect_branch -> Tool.Split.incr t.indirect s
  | Inst.Call -> Tool.Split.incr t.call s
  | Inst.Indirect_call -> Tool.Split.incr t.icall s
  | Inst.Return -> Tool.Split.incr t.ret s
  | Inst.Syscall -> Tool.Split.incr t.sys s
  end

let observer t = feed t

let in_scope split scope =
  match scope with
  | Total -> Tool.Split.total split
  | Only s -> Tool.Split.get split s

let insts t scope = in_scope t.insts scope

let count t scope = function
  | Call -> in_scope t.call scope
  | Indirect_call -> in_scope t.icall scope
  | Direct_branch -> in_scope t.cond scope + in_scope t.uncond scope
  | Indirect_branch -> in_scope t.indirect scope
  | Syscall -> in_scope t.sys scope
  | Return -> in_scope t.ret scope

let branches t scope =
  List.fold_left (fun acc c -> acc + count t scope c) 0 categories

let fraction t scope category =
  let n = insts t scope in
  if n = 0 then nan else float_of_int (count t scope category) /. float_of_int n

let branch_fraction t scope =
  let n = insts t scope in
  if n = 0 then nan else float_of_int (branches t scope) /. float_of_int n

let conditional_fraction t scope =
  let n = insts t scope in
  if n = 0 then nan else float_of_int (in_scope t.cond scope) /. float_of_int n
