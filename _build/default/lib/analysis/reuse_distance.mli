(** Basic-block reuse distance (paper Section III-C): for each dynamic
    basic block, how many *distinct other blocks* executed since its
    previous execution. The paper observes that short-block HPC codes
    (CoHMM, CoSP, botsspar, CG, IS) re-execute blocks "with a reuse
    distance between one and two basic blocks", which is why a wide
    I-cache line keeps serving them like a prefetch buffer.

    Blocks are identified by their leader address (the first
    instruction after a branch). Distances are bucketed in powers of
    two; the exact stack-distance computation uses a bounded recency
    list (distances above the bound saturate into the last bucket). *)

type t

val create : ?max_tracked:int -> unit -> t
(** [max_tracked] bounds the recency list (default 4096 blocks). *)

val feed : t -> Repro_isa.Inst.t -> unit
val observer : t -> Repro_isa.Inst.t -> unit

val executions : t -> int
(** Dynamic basic-block executions observed (after warmup). *)

val histogram : t -> (string * float) list
(** [(bucket label, fraction)] over reuse distances: "0-1", "2-3",
    "4-7", …, "cold/far". Fractions sum to 1 (empty -> []). *)

val median_distance : t -> float
(** Median reuse distance ([nan] if nothing re-executed). *)

val short_reuse_fraction : t -> float
(** Share of block executions with reuse distance <= 2 — the paper's
    "one to two basic blocks" population. *)
