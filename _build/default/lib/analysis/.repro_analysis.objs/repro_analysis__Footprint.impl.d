lib/analysis/footprint.ml: Branch_mix Hashtbl Repro_isa Repro_util
