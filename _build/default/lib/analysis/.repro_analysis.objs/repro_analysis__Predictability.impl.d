lib/analysis/predictability.ml: Bool Hashtbl Repro_isa
