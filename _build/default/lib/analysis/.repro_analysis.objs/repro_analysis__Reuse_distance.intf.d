lib/analysis/reuse_distance.mli: Repro_isa
