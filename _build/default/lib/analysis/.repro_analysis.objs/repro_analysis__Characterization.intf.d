lib/analysis/characterization.mli: Bblock_stats Branch_bias Branch_mix Footprint Repro_isa Repro_workload
