lib/analysis/working_set.ml: Branch_mix Float Icache_sim List
