lib/analysis/footprint.mli: Branch_mix Repro_isa
