lib/analysis/characterization.ml: Bblock_stats Branch_bias Branch_mix Float Footprint List Repro_util Repro_workload Tool
