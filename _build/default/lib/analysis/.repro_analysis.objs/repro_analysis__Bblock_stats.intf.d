lib/analysis/bblock_stats.mli: Branch_mix Repro_isa
