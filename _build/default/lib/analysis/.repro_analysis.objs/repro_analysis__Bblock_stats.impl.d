lib/analysis/bblock_stats.ml: Branch_mix Repro_isa Repro_util
