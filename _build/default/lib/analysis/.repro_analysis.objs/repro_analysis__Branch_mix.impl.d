lib/analysis/branch_mix.ml: List Repro_isa Tool
