lib/analysis/reuse_distance.ml: Array List Printf Repro_isa
