lib/analysis/branch_mix.mli: Repro_isa
