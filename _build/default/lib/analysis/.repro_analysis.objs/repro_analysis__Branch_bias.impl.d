lib/analysis/branch_bias.ml: Array Branch_mix Float Hashtbl Repro_isa Tool
