lib/analysis/tool.ml: Array Repro_isa
