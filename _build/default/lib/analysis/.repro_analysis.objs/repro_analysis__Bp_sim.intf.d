lib/analysis/bp_sim.mli: Branch_mix Repro_frontend Repro_isa
