lib/analysis/predictability.mli: Repro_isa
