lib/analysis/tool.mli: Repro_isa
