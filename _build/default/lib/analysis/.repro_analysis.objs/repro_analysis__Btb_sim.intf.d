lib/analysis/btb_sim.mli: Branch_mix Repro_isa
