lib/analysis/branch_bias.mli: Branch_mix Repro_isa
