lib/analysis/icache_sim.ml: Branch_mix Repro_frontend Repro_isa Tool
