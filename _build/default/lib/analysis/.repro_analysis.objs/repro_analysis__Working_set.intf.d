lib/analysis/working_set.mli: Repro_isa
