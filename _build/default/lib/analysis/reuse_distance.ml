module Inst = Repro_isa.Inst

(* Recency list of block leaders, most recent first; the stack
   distance of a re-executed block is the number of distinct blocks in
   front of it. A doubly-linked list keyed by a hashtable would be
   O(1) amortized for moves but still O(distance) for counting, so we
   keep the simple array-backed list: bounded, cache-friendly, and the
   distances of interest (the paper's 1–2-block reuse) sit at the
   front. *)
type t = {
  max_tracked : int;
  mutable stack : int list; (* block leaders, most recent first *)
  mutable stack_len : int;
  mutable current_leader : int; (* leader of the block being executed *)
  mutable in_block : bool;
  buckets : float array; (* log2 buckets + cold *)
  mutable execs : int;
  mutable distances_seen : int;
}

let n_buckets = 14 (* 0-1, 2-3, 4-7, ..., 2^12.., cold/far *)

let create ?(max_tracked = 4096) () =
  if max_tracked < 2 then invalid_arg "Reuse_distance.create";
  { max_tracked;
    stack = [];
    stack_len = 0;
    current_leader = -1;
    in_block = false;
    buckets = Array.make n_buckets 0.0;
    execs = 0;
    distances_seen = 0 }

let bucket_of_distance d =
  if d <= 1 then 0
  else begin
    let rec go b lo = if d < lo * 2 then b else go (b + 1) (lo * 2) in
    min (n_buckets - 2) (go 1 2)
  end

let bucket_label i =
  if i = n_buckets - 1 then "cold/far"
  else if i = 0 then "0-1"
  else Printf.sprintf "%d-%d" (1 lsl i) ((1 lsl (i + 1)) - 1)

(* Record one block execution. *)
let block_executed t leader =
  t.execs <- t.execs + 1;
  (* Find the leader in the recency stack, counting its depth. *)
  let rec remove acc depth = function
    | [] -> None
    | x :: rest when x = leader -> Some (depth, List.rev_append acc rest)
    | x :: rest -> remove (x :: acc) (depth + 1) rest
  in
  (match remove [] 0 t.stack with
  | Some (depth, rest) ->
      t.distances_seen <- t.distances_seen + 1;
      t.buckets.(bucket_of_distance depth) <-
        t.buckets.(bucket_of_distance depth) +. 1.0;
      t.stack <- leader :: rest
  | None ->
      t.buckets.(n_buckets - 1) <- t.buckets.(n_buckets - 1) +. 1.0;
      t.stack <- leader :: t.stack;
      t.stack_len <- t.stack_len + 1;
      if t.stack_len > t.max_tracked then begin
        (* Drop the coldest entry. *)
        t.stack <- List.filteri (fun i _ -> i < t.max_tracked) t.stack;
        t.stack_len <- t.max_tracked
      end)

let feed t (i : Inst.t) =
  if i.warmup then ()
  else begin
    if not t.in_block then begin
      t.current_leader <- i.addr;
      t.in_block <- true
    end;
    if Inst.is_branch i then begin
      block_executed t t.current_leader;
      t.in_block <- false
    end
  end

let observer t = feed t
let executions t = t.execs

let histogram t =
  let total = Array.fold_left ( +. ) 0.0 t.buckets in
  if total = 0.0 then []
  else
    List.init n_buckets (fun i -> (bucket_label i, t.buckets.(i) /. total))

let median_distance t =
  if t.distances_seen = 0 then nan
  else begin
    let half = float_of_int t.distances_seen /. 2.0 in
    let rec go i acc =
      if i >= n_buckets - 1 then infinity
      else
        let acc' = acc +. t.buckets.(i) in
        if acc' >= half then
          (* midpoint of the bucket *)
          if i = 0 then 1.0
          else float_of_int ((1 lsl i) + ((1 lsl (i + 1)) - 1)) /. 2.0
        else go (i + 1) acc'
    in
    go 0 0.0
  end

let short_reuse_fraction t =
  let total = Array.fold_left ( +. ) 0.0 t.buckets in
  if total = 0.0 then nan
  else
    (* distance <= 2: bucket 0 entirely, bucket 1 partially — count
       buckets 0 and 1 (distances 0-3) as "short", matching the
       paper's loose "one to two basic blocks". *)
    (t.buckets.(0) +. t.buckets.(1)) /. total
