(** Instruction-footprint measurement (paper Fig. 3): the static code
    size actually touched by the execution, and the amount of memory
    needed to hold a given coverage (the paper uses 99%) of the
    dynamic instruction stream. Tracked per static instruction
    address, separately for serial and parallel sections. *)

type t

val create : unit -> t
val feed : t -> Repro_isa.Inst.t -> unit
val observer : t -> Repro_isa.Inst.t -> unit

val static_bytes : t -> Branch_mix.scope -> int
(** Total encoded bytes of distinct instructions executed in scope. *)

val dynamic_bytes : t -> Branch_mix.scope -> coverage:float -> int
(** Bytes of the hottest instructions needed to cover the given
    fraction of dynamic instructions (e.g. [~coverage:0.99]). *)

val static_insts : t -> Branch_mix.scope -> int
(** Distinct instruction addresses executed in scope. *)
