let run trace f = Repro_isa.Trace.iter trace f

let run_all trace observers =
  match observers with
  | [] -> ()
  | [ f ] -> Repro_isa.Trace.iter trace f
  | fs ->
      let arr = Array.of_list fs in
      Repro_isa.Trace.iter trace (fun inst ->
          for i = 0 to Array.length arr - 1 do
            arr.(i) inst
          done)

module Split = struct
  type t = { mutable serial : int; mutable parallel : int }

  let create () = { serial = 0; parallel = 0 }

  let add t section n =
    match section with
    | Repro_isa.Section.Serial -> t.serial <- t.serial + n
    | Repro_isa.Section.Parallel -> t.parallel <- t.parallel + n

  let incr t section = add t section 1

  let get t = function
    | Repro_isa.Section.Serial -> t.serial
    | Repro_isa.Section.Parallel -> t.parallel

  let total t = t.serial + t.parallel
end
