(** Conditional-branch bias distribution (paper Fig. 2) and
    backward/forward split of taken conditionals (Table I).

    Bias is accumulated per static branch site; the reported histogram
    weights each site by its dynamic execution count, i.e. it answers
    "what fraction of *dynamic* conditional branches came from a site
    taken 0–10%, 10–20%, … of the time". *)

type t

val create : unit -> t
val feed : t -> Repro_isa.Inst.t -> unit
val observer : t -> Repro_isa.Inst.t -> unit

val deciles : t -> Branch_mix.scope -> float array
(** Ten fractions summing to 1 (0-10% taken, …, >90% taken); all-nan
    array when the scope saw no conditional branches. *)

val biased_fraction : t -> Branch_mix.scope -> float
(** Mass in the two extreme buckets (0–10% plus >90%) — the paper's
    notion of "dominantly decided in one direction". *)

val backward_taken_fraction : t -> Branch_mix.scope -> float
(** Of dynamically taken conditionals, the share whose target
    precedes the branch (Table I's "backward" column). *)

val taken_fraction : t -> Branch_mix.scope -> float
(** Dynamically taken share of conditional branches. *)

val static_sites : t -> int
(** Distinct conditional-branch addresses observed. *)
