(** Dynamic basic-block statistics (paper Fig. 4): average basic-block
    length in bytes (a block ends at any branch instruction) and
    average distance in bytes between *taken* branches (the length of
    a sequential fetch run — what decides I-cache line usefulness). *)

type t

val create : unit -> t
val feed : t -> Repro_isa.Inst.t -> unit
val observer : t -> Repro_isa.Inst.t -> unit

val avg_block_bytes : t -> Branch_mix.scope -> float
val avg_block_insts : t -> Branch_mix.scope -> float

val avg_taken_distance : t -> Branch_mix.scope -> float
(** Mean bytes between consecutive taken branches. *)
