module Inst = Repro_isa.Inst
module Section = Repro_isa.Section
module Acc = Repro_util.Stats.Acc

type side = {
  blocks : Acc.t;
  block_insts : Acc.t;
  runs : Acc.t;
  mutable cur_bytes : int;
  mutable cur_insts : int;
  mutable run_bytes : int;
}

let side () =
  { blocks = Acc.create ();
    block_insts = Acc.create ();
    runs = Acc.create ();
    cur_bytes = 0;
    cur_insts = 0;
    run_bytes = 0 }

type t = { serial : side; parallel : side }

let create () = { serial = side (); parallel = side () }

let feed t (i : Inst.t) =
  if i.warmup then ()
  else
  let s =
    match i.section with
    | Section.Serial -> t.serial
    | Section.Parallel -> t.parallel
  in
  s.cur_bytes <- s.cur_bytes + i.size;
  s.cur_insts <- s.cur_insts + 1;
  s.run_bytes <- s.run_bytes + i.size;
  if Inst.is_branch i then begin
    Acc.add s.blocks (float_of_int s.cur_bytes);
    Acc.add s.block_insts (float_of_int s.cur_insts);
    s.cur_bytes <- 0;
    s.cur_insts <- 0;
    if i.taken then begin
      Acc.add s.runs (float_of_int s.run_bytes);
      s.run_bytes <- 0
    end
  end

let observer t = feed t

let combine f t scope =
  match scope with
  | Branch_mix.Only Section.Serial -> Acc.mean (f t.serial)
  | Branch_mix.Only Section.Parallel -> Acc.mean (f t.parallel)
  | Branch_mix.Total ->
      let a = f t.serial and b = f t.parallel in
      let wa = Acc.total_weight a and wb = Acc.total_weight b in
      if wa +. wb = 0.0 then nan
      else
        let part acc w = if w > 0.0 then Acc.mean acc *. w else 0.0 in
        (part a wa +. part b wb) /. (wa +. wb)

let avg_block_bytes t scope = combine (fun s -> s.blocks) t scope
let avg_block_insts t scope = combine (fun s -> s.block_insts) t scope
let avg_taken_distance t scope = combine (fun s -> s.runs) t scope
