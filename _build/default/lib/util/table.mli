(** Plain-text table rendering for experiment reports.

    Every benchmark harness prints its figure/table reproduction through
    this module so the output format stays uniform. *)

type align = Left | Right | Center

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** Appends a data row. Rows shorter than the header are padded with
    empty cells; longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between the rows added before and after. *)

val render : t -> string
(** Renders the table with box-drawing in plain ASCII. *)

val to_csv : t -> string
(** RFC-4180-style CSV: header row then data rows (separators are
    dropped); cells containing commas/quotes/newlines are quoted. *)

val title : t -> string option
val headers : t -> string list
val rows : t -> string list list
(** Data rows in insertion order (separators excluded). *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

(** {1 Cell formatting helpers} *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point with default 2 decimals; [nan] renders as ["-"]. *)

val fmt_pct : ?decimals:int -> float -> string
(** [fmt_pct 0.123] is ["12.3%"] (argument is a fraction). *)

val fmt_ratio : float -> string
(** Normalized quantity, e.g. ["1.00x"]. *)
