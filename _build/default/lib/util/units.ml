let kib n = n * 1024
let to_kib bytes = float_of_int bytes /. 1024.0

let pp_bytes bytes =
  if bytes < 1024 then Printf.sprintf "%dB" bytes
  else if bytes < 1024 * 1024 then
    let k = to_kib bytes in
    if Float.is_integer k then Printf.sprintf "%.0fKB" k
    else Printf.sprintf "%.1fKB" k
  else
    let m = float_of_int bytes /. (1024.0 *. 1024.0) in
    if Float.is_integer m then Printf.sprintf "%.0fMB" m
    else Printf.sprintf "%.1fMB" m

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  if not (is_power_of_two n) then invalid_arg "Units.log2: not a power of two";
  let rec go acc n = if n = 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let round_up_pow2 n =
  if n <= 0 then invalid_arg "Units.round_up_pow2: non-positive";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1
