(** Deterministic, splittable pseudo-random number generator.

    All stochastic choices in the workload substrate flow through this
    module so that every experiment is exactly reproducible from a seed.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
    64-bit state advanced by a Weyl constant and finalized with a
    variant of the MurmurHash3 finalizer. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the parent's subsequent output. Used to
    give every benchmark / code region its own stream so that adding
    draws in one place never perturbs another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [lo, hi] inclusive. Requires [lo <= hi]. *)

val geometric : t -> float -> int
(** [geometric t p] draws from a geometric distribution with success
    probability [p]; result is the number of trials, at least 1.
    Requires [0 < p <= 1]. *)

val log_normal : t -> mu:float -> sigma:float -> float
(** Log-normal draw: [exp (mu + sigma * z)] for a standard normal [z]. *)

val gaussian : t -> float
(** Standard normal via Box–Muller. *)

val choose_weighted : t -> (float * 'a) array -> 'a
(** [choose_weighted t items] picks an element with probability
    proportional to its weight. Requires a non-empty array with a
    positive total weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
