lib/util/stats.mli:
