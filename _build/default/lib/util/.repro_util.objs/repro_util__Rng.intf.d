lib/util/rng.mli:
