lib/util/units.mli:
