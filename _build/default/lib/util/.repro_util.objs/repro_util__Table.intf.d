lib/util/table.mli:
