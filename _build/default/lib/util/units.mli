(** Byte-size arithmetic and formatting (KiB-based, as the paper's
    "KB" figures are power-of-two structure sizes). *)

val kib : int -> int
(** [kib n] is [n * 1024] bytes. *)

val to_kib : int -> float
(** Bytes to KiB as a float. *)

val pp_bytes : int -> string
(** Human form: ["512B"], ["16KB"], ["1.5MB"]. *)

val is_power_of_two : int -> bool

val log2 : int -> int
(** Integer log2 of a positive power of two; raises [Invalid_argument]
    otherwise. *)

val round_up_pow2 : int -> int
(** Smallest power of two >= the argument (argument must be positive). *)
