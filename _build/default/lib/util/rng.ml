type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits in a non-negative native int. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t bound =
  (* 53 random bits scaled into [0, 1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 1
  else
    let u = float t 1.0 in
    (* Inverse-CDF; clamp to avoid log 0. *)
    let u = if u <= 0.0 then 1e-300 else u in
    1 + int_of_float (floor (log u /. log (1.0 -. p)))

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-300 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let log_normal t ~mu ~sigma = exp (mu +. (sigma *. gaussian t))

let choose_weighted t items =
  assert (Array.length items > 0);
  let total = Array.fold_left (fun acc (w, _) -> acc +. w) 0.0 items in
  assert (total > 0.0);
  let x = float t total in
  let rec go i acc =
    if i = Array.length items - 1 then snd items.(i)
    else
      let w, v = items.(i) in
      let acc = acc +. w in
      if x < acc then v else go (i + 1) acc
  in
  go 0 0.0

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
