(** Gshare predictor (McFarling, 1993): one global pattern-history
    table of 2-bit counters indexed by the branch address XORed with
    the global branch-history register.

    Hardware cost is [2^(m+1)] bits for history length [m], matching
    the paper's Table II ([m = 13] for the ~2KB "small" configuration,
    [m = 16] for the ~16KB "big" one). *)

type t

val create : history_bits:int -> t
val predict : t -> pc:int -> bool
val update : t -> pc:int -> taken:bool -> unit
val storage_bits : t -> int
val pack : name:string -> t -> Predictor.t
