type t = { bits : int; max : int; cells : Bytes.t }

let create ~bits ~entries =
  if bits < 1 || bits > 8 then invalid_arg "Counter.create: bits";
  if not (Repro_util.Units.is_power_of_two entries) then
    invalid_arg "Counter.create: entries must be a power of two";
  let max = (1 lsl bits) - 1 in
  let weak_nt = (1 lsl (bits - 1)) - 1 in
  { bits; max; cells = Bytes.make entries (Char.chr weak_nt) }

let entries t = Bytes.length t.cells
let bits t = t.bits

let get t i =
  let i = i land (Bytes.length t.cells - 1) in
  Char.code (Bytes.unsafe_get t.cells i)

let set t i v =
  let i = i land (Bytes.length t.cells - 1) in
  let v = if v < 0 then 0 else if v > t.max then t.max else v in
  Bytes.unsafe_set t.cells i (Char.unsafe_chr v)

let is_taken t i = get t i >= 1 lsl (t.bits - 1)
let is_strong t i =
  let v = get t i in
  v = 0 || v = t.max

let update t i taken =
  let v = get t i in
  if taken then (if v < t.max then set t i (v + 1))
  else if v > 0 then set t i (v - 1)

let reset_weak t i taken =
  set t i (if taken then 1 lsl (t.bits - 1) else (1 lsl (t.bits - 1)) - 1)

let storage_bits t = t.bits * Bytes.length t.cells
