(** Arrays of n-bit saturating up/down counters, the basic storage cell
    of every table-based branch predictor. *)

type t

val create : bits:int -> entries:int -> t
(** All counters start weakly not-taken (value [2^(bits-1) - 1]).
    Requires [1 <= bits <= 8] and [entries] a power of two (indices are
    wrapped by masking). *)

val entries : t -> int
val bits : t -> int

val get : t -> int -> int
(** Raw counter value at an index (wrapped into range). *)

val set : t -> int -> int -> unit
(** Store a value, clamped into the representable range. *)

val is_taken : t -> int -> bool
(** MSB set: counter in a "predict taken" state. *)

val is_strong : t -> int -> bool
(** Counter saturated at either end. *)

val update : t -> int -> bool -> unit
(** Saturating increment when [taken], decrement otherwise. *)

val reset_weak : t -> int -> bool -> unit
(** Set entry to the weak state of the given direction. *)

val storage_bits : t -> int
(** Hardware cost in bits. *)
