type t = { m : int; table : Counter.t; hist : History.t }

let create ~history_bits =
  if history_bits < 2 || history_bits > 24 then invalid_arg "Gshare.create";
  { m = history_bits;
    table = Counter.create ~bits:2 ~entries:(1 lsl history_bits);
    hist = History.create history_bits }

let index t pc = (pc lsr 1) lxor History.low_bits t.hist t.m
let predict t ~pc = Counter.is_taken t.table (index t pc)

let update t ~pc ~taken =
  Counter.update t.table (index t pc) taken;
  History.push t.hist taken

let storage_bits t = Counter.storage_bits t.table

let pack ~name t =
  Predictor.make ~name
    ~predict:(fun pc -> predict t ~pc)
    ~update:(fun pc taken -> update t ~pc ~taken)
    ~storage_bits:(storage_bits t)
