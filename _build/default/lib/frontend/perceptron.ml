type t = {
  entries : int;
  history : int;
  weights : int array array; (* [entry].[0] = bias, then one per bit *)
  hist : History.t;
  threshold : int;
  wmax : int;
  wmin : int;
}

let create ?(entries = 128) ?(history = 24) () =
  if not (Repro_util.Units.is_power_of_two entries) then
    invalid_arg "Perceptron.create: entries";
  if history < 1 || history > 64 then invalid_arg "Perceptron.create: history";
  { entries;
    history;
    weights = Array.make_matrix entries (history + 1) 0;
    hist = History.create history;
    (* Jiménez's empirically-optimal threshold. *)
    threshold = int_of_float ((1.93 *. float_of_int history) +. 14.0);
    wmax = 127;
    wmin = -128 }

let index t pc = (pc lsr 1) land (t.entries - 1)

let output t pc =
  let w = t.weights.(index t pc) in
  let sum = ref w.(0) in
  for i = 0 to t.history - 1 do
    if History.bit t.hist i then sum := !sum + w.(i + 1)
    else sum := !sum - w.(i + 1)
  done;
  !sum

let predict t ~pc = output t pc >= 0

let update t ~pc ~taken =
  let out = output t pc in
  let pred = out >= 0 in
  if pred <> taken || abs out <= t.threshold then begin
    let w = t.weights.(index t pc) in
    let clamp v = if v > t.wmax then t.wmax else if v < t.wmin then t.wmin else v in
    let dir = if taken then 1 else -1 in
    w.(0) <- clamp (w.(0) + dir);
    for i = 0 to t.history - 1 do
      let x = if History.bit t.hist i then 1 else -1 in
      w.(i + 1) <- clamp (w.(i + 1) + (dir * x))
    done
  end;
  History.push t.hist taken

let storage_bits t = t.entries * (t.history + 1) * 8

let pack ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "perceptron-%d" t.entries
  in
  Predictor.make ~name
    ~predict:(fun pc -> predict t ~pc)
    ~update:(fun pc taken -> update t ~pc ~taken)
    ~storage_bits:(storage_bits t)
