(** TAGE branch predictor (Seznec & Michaud, 2006): a bimodal base
    predictor plus a set of partially-tagged tables indexed with
    geometrically increasing global-history lengths. The longest
    matching table provides the prediction; useful-counters steer
    allocation on mispredictions.

    The two configurations the paper evaluates (Table II, note 2):
    "big" ≈ 16KB with 12 tagged tables, "small" ≈ 2KB with two tagged
    tables for history lengths 4 and 16. *)

type table_spec = {
  hist_len : int;  (** global history bits hashed into this table *)
  index_bits : int;  (** log2 of the number of entries *)
  tag_bits : int;
}

type t

val create : base_index_bits:int -> table_spec list -> t
(** [create ~base_index_bits specs]: bimodal base of
    [2^base_index_bits] counters plus one tagged table per spec.
    Specs must be in increasing [hist_len] order. *)

val geometric_specs :
  n_tables:int -> min_hist:int -> max_hist:int -> index_bits:int ->
  tag_bits:int -> table_spec list
(** Helper building the classic geometric history-length series. *)

val predict : t -> pc:int -> bool
val update : t -> pc:int -> taken:bool -> unit
val storage_bits : t -> int
val pack : name:string -> t -> Predictor.t
