(** Branch history registers: shift registers of recent branch
    outcomes, plus folded views for indexing wide histories into
    narrow table indices (as TAGE does). *)

type t

val create : int -> t
(** [create len] keeps the last [len] outcomes (1 <= len <= 1024). *)

val length : t -> int

val push : t -> bool -> unit
(** Record an outcome (newest at position 0). *)

val bit : t -> int -> bool
(** [bit t i] is the outcome [i] branches ago ([0] = most recent).
    Out-of-range bits read as [false]. *)

val low_bits : t -> int -> int
(** [low_bits t n] packs the [n] most recent outcomes into an integer
    (most recent = bit 0). Requires [n <= 62]. *)

val folded : t -> hist_len:int -> out_bits:int -> int
(** XOR-fold the [hist_len] most recent outcomes down to [out_bits]
    bits. Stable function of the history contents. *)

val clear : t -> unit
