type t = { table : Counter.t }

(* Branch PCs are byte addresses; drop the low bit only (x86
   instructions are unaligned, so low bits carry information). *)
let index pc = pc lsr 1

let create ~index_bits =
  if index_bits < 1 || index_bits > 24 then invalid_arg "Bimodal.create";
  { table = Counter.create ~bits:2 ~entries:(1 lsl index_bits) }

let predict t ~pc = Counter.is_taken t.table (index pc)
let update t ~pc ~taken = Counter.update t.table (index pc) taken
let storage_bits t = Counter.storage_bits t.table

let pack t =
  Predictor.make
    ~name:(Printf.sprintf "bimodal-%d" (Counter.entries t.table))
    ~predict:(fun pc -> predict t ~pc)
    ~update:(fun pc taken -> update t ~pc ~taken)
    ~storage_bits:(storage_bits t)
