lib/frontend/loop_predictor.mli: Predictor
