lib/frontend/btb.mli:
