lib/frontend/icache.ml: Array Repro_util
