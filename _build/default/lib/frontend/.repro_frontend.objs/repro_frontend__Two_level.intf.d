lib/frontend/two_level.mli: Predictor
