lib/frontend/history.ml: Bytes Char
