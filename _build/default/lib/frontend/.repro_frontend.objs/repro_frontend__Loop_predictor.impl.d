lib/frontend/loop_predictor.ml: Array Predictor Repro_util
