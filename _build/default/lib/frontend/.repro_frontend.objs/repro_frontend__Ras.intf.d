lib/frontend/ras.mli:
