lib/frontend/gshare.mli: Predictor
