lib/frontend/history.mli:
