lib/frontend/target_cache.ml: Array Repro_util
