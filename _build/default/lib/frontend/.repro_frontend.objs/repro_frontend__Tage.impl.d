lib/frontend/tage.ml: Array Bool Bytes Char Counter Float History List Predictor Repro_util
