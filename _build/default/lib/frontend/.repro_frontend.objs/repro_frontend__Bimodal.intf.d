lib/frontend/bimodal.mli: Predictor
