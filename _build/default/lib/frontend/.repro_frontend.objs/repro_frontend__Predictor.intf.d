lib/frontend/predictor.mli: Format
