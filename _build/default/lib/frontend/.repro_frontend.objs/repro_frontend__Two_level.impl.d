lib/frontend/two_level.ml: Array Bool Counter Predictor Printf
