lib/frontend/zoo.ml: Gshare List Loop_predictor Perceptron String Tage Tournament Two_level
