lib/frontend/btb.ml: Array Repro_util
