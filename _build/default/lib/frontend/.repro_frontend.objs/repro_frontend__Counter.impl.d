lib/frontend/counter.ml: Bytes Char Repro_util
