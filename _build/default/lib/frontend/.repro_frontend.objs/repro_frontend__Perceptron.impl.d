lib/frontend/perceptron.ml: Array History Predictor Printf Repro_util
