lib/frontend/icache.mli:
