lib/frontend/predictor.ml: Format Repro_util
