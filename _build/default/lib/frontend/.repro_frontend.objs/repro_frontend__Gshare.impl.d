lib/frontend/gshare.ml: Counter History Predictor
