lib/frontend/bimodal.ml: Counter Predictor Printf
