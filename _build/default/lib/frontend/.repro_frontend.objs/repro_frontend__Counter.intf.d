lib/frontend/counter.mli:
