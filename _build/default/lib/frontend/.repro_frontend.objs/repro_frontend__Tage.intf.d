lib/frontend/tage.mli: Predictor
