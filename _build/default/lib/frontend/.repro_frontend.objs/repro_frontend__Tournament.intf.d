lib/frontend/tournament.mli: Predictor
