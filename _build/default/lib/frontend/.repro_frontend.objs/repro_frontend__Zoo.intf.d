lib/frontend/zoo.mli: Predictor
