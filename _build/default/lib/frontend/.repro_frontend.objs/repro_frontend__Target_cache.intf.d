lib/frontend/target_cache.mli:
