lib/frontend/tournament.ml: Array Bool Counter History Predictor
