lib/frontend/perceptron.mli: Predictor
