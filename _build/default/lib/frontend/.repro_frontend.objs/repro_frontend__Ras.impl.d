lib/frontend/ras.ml: Array Repro_util
