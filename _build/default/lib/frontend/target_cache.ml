type t = {
  entries : int array; (* 0 = cold; targets are nonzero addresses *)
  hist_targets : int;
  mutable hist : int; (* folded recent-target hash *)
}

let create ?(entries = 512) ?(hist_targets = 4) () =
  if not (Repro_util.Units.is_power_of_two entries) then
    invalid_arg "Target_cache.create: entries";
  if hist_targets < 1 || hist_targets > 16 then
    invalid_arg "Target_cache.create: hist_targets";
  { entries = Array.make entries 0; hist_targets; hist = 0 }

let index t pc =
  ((pc lsr 1) lxor t.hist lxor (t.hist lsr 8))
  land (Array.length t.entries - 1)

let predict t ~pc =
  match t.entries.(index t pc) with 0 -> None | target -> Some target

let update t ~pc ~target =
  t.entries.(index t pc) <- target;
  (* Fold the new target into the history: shift by a few bits per
     recorded target so [hist_targets] recent targets influence the
     index. *)
  let bits_per = 16 / t.hist_targets in
  (* Mix high and low target bits so nearby targets still perturb the
     low index bits. *)
  let mixed = (target lsr 2) lxor (target lsr 9) lxor (target lsr 17) in
  t.hist <- ((t.hist lsl bits_per) lxor mixed) land 0xFFFF

let storage_bits t = Array.length t.entries * 32
