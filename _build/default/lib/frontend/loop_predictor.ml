(* Entry layout (per the L-TAGE loop predictor): a partial tag, the
   learned trip count, the current iteration counter, a confidence
   counter, and the loop body direction (almost always "taken"). *)
type entry = {
  mutable tag : int; (* 0 = free *)
  mutable trip : int; (* learned iterations between exits *)
  mutable current : int;
  mutable conf : int;
  mutable dir : bool; (* direction taken while looping *)
}

type t = {
  entries : entry array;
  conf_threshold : int;
  tag_bits : int;
}

let create ?(entries = 64) ?(conf_threshold = 2) () =
  if not (Repro_util.Units.is_power_of_two entries) then
    invalid_arg "Loop_predictor.create: entries";
  { entries =
      Array.init entries (fun _ ->
          { tag = 0; trip = 0; current = 0; conf = 0; dir = true });
    conf_threshold;
    tag_bits = 14 }

let slot t pc = (pc lsr 1) land (Array.length t.entries - 1)

let tag_of t pc =
  let x = pc lsr 1 in
  let tag = (x lxor (x lsr 7) lxor (x lsr 15)) land ((1 lsl t.tag_bits) - 1) in
  if tag = 0 then 1 else tag

let predict t ~pc =
  let e = t.entries.(slot t pc) in
  if e.tag = tag_of t pc && e.conf >= t.conf_threshold && e.trip > 0 then
    (* Exit (opposite direction) exactly on the last iteration. *)
    if e.current = e.trip - 1 then Some (not e.dir) else Some e.dir
  else None

let update t ~pc ~taken =
  let e = t.entries.(slot t pc) in
  let tag = tag_of t pc in
  if e.tag = tag then begin
    if taken = e.dir then begin
      e.current <- e.current + 1;
      (* A run far beyond the learned trip count invalidates it. *)
      if e.trip > 0 && e.current > e.trip then begin
        e.conf <- 0;
        e.trip <- 0
      end
    end
    else begin
      (* Loop exit observed: compare the completed run length. *)
      let run = e.current + 1 in
      if e.trip = run then e.conf <- min 7 (e.conf + 1)
      else begin
        e.trip <- run;
        e.conf <- 0
      end;
      e.current <- 0
    end
  end
  else if taken then begin
    (* Allocate on a taken branch, evicting only unconfident entries. *)
    if e.tag = 0 || e.conf = 0 then begin
      e.tag <- tag;
      e.trip <- 0;
      e.current <- 1;
      e.conf <- 0;
      e.dir <- true
    end
  end

(* tag + trip + current + conf + dir: 14 + 14 + 14 + 3 + 1 bits *)
let storage_bits t = Array.length t.entries * (t.tag_bits + 14 + 14 + 3 + 1)

let combine t base =
  Predictor.make
    ~name:("L-" ^ base.Predictor.name)
    ~predict:(fun pc ->
      match predict t ~pc with
      | Some dir -> dir
      | None -> base.Predictor.predict pc)
    ~update:(fun pc taken ->
      update t ~pc ~taken;
      base.Predictor.update pc taken)
    ~storage_bits:(storage_bits t + base.Predictor.storage_bits)
