(** Instruction cache: set-associative, LRU, physically indexed by
    line address. Tracks, per resident line, which 4-byte granules of
    the line were consumed, to report the paper's line "usefulness"
    metric (fraction of a fetched line's bytes that were actually
    used before eviction). *)

type t

val create :
  ?next_line_prefetch:bool -> size_bytes:int -> line_bytes:int -> assoc:int ->
  unit -> t
(** All three powers of two; [line_bytes >= 4]; at least one set.
    With [next_line_prefetch] (default false), every demand miss also
    fills the sequentially next line — the "fetch-directed" effect the
    paper attributes to wide lines, as an explicit mechanism. *)

val size_bytes : t -> int
val line_bytes : t -> int
val assoc : t -> int

val access : t -> addr:int -> size:int -> bool
(** Fetch [size] bytes at [addr] (one instruction, or the leading
    slice of one). Returns [true] on hit. A miss allocates the line.
    Instructions straddling a line boundary access both lines; the
    result is a hit only if every touched line hits. *)

val consume : t -> addr:int -> size:int -> unit
(** Mark bytes as consumed from an already-resident line without
    counting a cache access (sequential extraction within the current
    fetch line). No-op for non-resident lines. *)

val accesses : t -> int
(** Number of line-level cache lookups performed so far. *)

val misses : t -> int
(** Demand misses only (prefetch fills are not counted). *)

val prefetches : t -> int
(** Prefetch fills issued (0 unless enabled). *)

val useful_prefetches : t -> int
(** Prefetched lines that later served a demand access. *)

val usefulness : t -> float
(** Mean fraction of bytes consumed per evicted (or still-resident)
    fetched line, in [0,1]. [nan] before any fill. *)

val reset_stats : t -> unit
val storage_bits : t -> int
