(** Loop branch predictor: a small tagged table that learns the trip
    count of loops whose backward branch iterates a constant number of
    times, then predicts the loop exit exactly.

    Matches the paper's evaluated configuration: 64 entries, roughly a
    512-byte hardware budget. The LBP only takes over once it has seen
    the same trip count twice in a row (confidence threshold); before
    that a base predictor provides the decision (see {!Hybrid}). *)

type t

val create : ?entries:int -> ?conf_threshold:int -> unit -> t
(** Defaults: 64 entries, confidence threshold 2. Entries must be a
    power of two. *)

val predict : t -> pc:int -> bool option
(** [Some dir] when the entry for [pc] is tagged, confident, and mid
    sequence; [None] when the LBP has no opinion. *)

val update : t -> pc:int -> taken:bool -> unit
(** Observe the resolved branch; trains trip counts and confidence. *)

val storage_bits : t -> int

val combine : t -> Predictor.t -> Predictor.t
(** [combine lbp base] is the paper's "L-" configuration: the LBP's
    prediction wins when confident, otherwise the base predicts; both
    are always trained. Storage is the sum of the two budgets. *)
