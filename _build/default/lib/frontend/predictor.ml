type t = {
  name : string;
  predict : int -> bool;
  update : int -> bool -> unit;
  storage_bits : int;
}

let make ~name ~predict ~update ~storage_bits =
  { name; predict; update; storage_bits }

let storage_bytes t = (t.storage_bits + 7) / 8

let pp_cost fmt t =
  Format.fprintf fmt "%s (%s)" t.name
    (Repro_util.Units.pp_bytes (storage_bytes t))
