(** Bimodal predictor: one table of 2-bit saturating counters indexed
    by the branch address. The simplest dynamic predictor; also serves
    as TAGE's base component. *)

type t

val create : index_bits:int -> t
(** Table of [2^index_bits] 2-bit counters. *)

val predict : t -> pc:int -> bool
val update : t -> pc:int -> taken:bool -> unit
val storage_bits : t -> int
val pack : t -> Predictor.t
