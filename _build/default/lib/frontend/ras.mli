(** Return-address stack: the structure that lets the front-end treat
    returns as fully predicted (the assumption {!Analysis.Btb_sim}
    makes). Fixed depth with wrap-around overwrite on overflow, as in
    real hardware, so deep recursion corrupts the oldest entries. *)

type t

val create : ?depth:int -> unit -> t
(** Default depth 16 entries (Cortex-A9 class). Power of two. *)

val push : t -> int -> unit
(** Record a call's return address. *)

val pop : t -> int option
(** Predicted return target; [None] when the stack has underflowed. *)

val depth : t -> int
val occupancy : t -> int
(** Live entries (0..depth). *)

val overflows : t -> int
(** Pushes that overwrote a live entry. *)

val storage_bits : t -> int
