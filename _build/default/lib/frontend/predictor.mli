(** First-class branch predictors.

    Concrete predictors ({!Bimodal}, {!Gshare}, {!Tournament}, {!Tage},
    and the {!Hybrid} loop-predictor combination) pack themselves into
    this uniform record so simulation tools can sweep heterogeneous
    configurations. A predictor sees the conditional-branch stream:
    [predict] is called before the outcome is known, then [update] with
    the resolved direction (which also advances internal histories). *)

type t = {
  name : string;
  predict : int -> bool;  (** [predict pc]: predicted direction *)
  update : int -> bool -> unit;  (** [update pc taken]: train *)
  storage_bits : int;  (** hardware budget, in bits *)
}

val make :
  name:string ->
  predict:(int -> bool) ->
  update:(int -> bool -> unit) ->
  storage_bits:int ->
  t

val storage_bytes : t -> int
(** [storage_bits / 8], rounded up. *)

val pp_cost : Format.formatter -> t -> unit
(** Name with its hardware budget, e.g. ["gshare-small (2KB)"]. *)
