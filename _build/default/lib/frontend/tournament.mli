(** Tournament predictor in the style of the Alpha 21264 (Kessler,
    1998): a per-branch local-history component and a global-history
    component, arbitrated by a choice table trained toward whichever
    component was right.

    Sizing follows the paper's Table II: with [n] address-index bits
    and history length [m], cost is [2^n * (m+2) + 2^(m+2)] bits —
    [2^n] local histories of [m] bits each plus [2^n] 2-bit local
    counters, and [2^m] 2-bit global counters plus [2^m] 2-bit choice
    counters. Small: [n=10, m=8] (~1.4KB); big: [n=12, m=14] (16KB). *)

type t

val create : addr_bits:int -> history_bits:int -> t
val predict : t -> pc:int -> bool
val update : t -> pc:int -> taken:bool -> unit
val storage_bits : t -> int
val pack : name:string -> t -> Predictor.t
