type t = {
  entries : int array;
  mutable top : int; (* index of next free slot *)
  mutable live : int;
  mutable overflows : int;
}

let create ?(depth = 16) () =
  if not (Repro_util.Units.is_power_of_two depth) then
    invalid_arg "Ras.create: depth must be a power of two";
  { entries = Array.make depth 0; top = 0; live = 0; overflows = 0 }

let depth t = Array.length t.entries
let occupancy t = t.live
let overflows t = t.overflows

let push t addr =
  let d = depth t in
  if t.live = d then t.overflows <- t.overflows + 1;
  t.entries.(t.top) <- addr;
  t.top <- (t.top + 1) land (d - 1);
  if t.live < d then t.live <- t.live + 1

let pop t =
  if t.live = 0 then None
  else begin
    let d = depth t in
    t.top <- (t.top + d - 1) land (d - 1);
    t.live <- t.live - 1;
    Some t.entries.(t.top)
  end

(* 48-bit return addresses. *)
let storage_bits t = depth t * 48
