type table_spec = { hist_len : int; index_bits : int; tag_bits : int }

(* Folded history register: maintains an [out_bits]-wide XOR-fold of
   the most recent [hist_len] outcomes, updated in O(1) per branch
   (the circular-shift construction from the TAGE papers). *)
module Folded = struct
  type t = {
    hist_len : int;
    out_bits : int;
    outpoint : int;
    mutable comp : int;
  }

  let create ~hist_len ~out_bits =
    { hist_len; out_bits; outpoint = hist_len mod out_bits; comp = 0 }

  (* [inserted] is the newest outcome; [evicted] is the outcome that
     just fell off the end of the [hist_len]-deep window. *)
  let update t ~inserted ~evicted =
    let mask = (1 lsl t.out_bits) - 1 in
    t.comp <- (t.comp lsl 1) lor Bool.to_int inserted;
    if evicted then t.comp <- t.comp lxor (1 lsl t.outpoint);
    t.comp <- (t.comp lxor (t.comp lsr t.out_bits)) land mask

  let get t = t.comp
end

type table = {
  spec : table_spec;
  tags : int array;
  ctr : Bytes.t; (* 3-bit signed counter stored 0..7; >=4 means taken *)
  useful : Bytes.t; (* 2-bit useful counter *)
  f_index : Folded.t;
  f_tag0 : Folded.t;
  f_tag1 : Folded.t;
}

type t = {
  base : Counter.t;
  base_bits : int;
  tables : table array;
  hist : History.t;
  mutable tick : int; (* periodic useful-bit aging *)
  rng : Repro_util.Rng.t; (* deterministic allocation tie-breaking *)
}

let make_table spec =
  let entries = 1 lsl spec.index_bits in
  { spec;
    tags = Array.make entries 0;
    ctr = Bytes.make entries '\004';
    useful = Bytes.make entries '\000';
    f_index = Folded.create ~hist_len:spec.hist_len ~out_bits:spec.index_bits;
    f_tag0 = Folded.create ~hist_len:spec.hist_len ~out_bits:spec.tag_bits;
    f_tag1 =
      Folded.create ~hist_len:spec.hist_len ~out_bits:(max 1 (spec.tag_bits - 1));
  }

let create ~base_index_bits specs =
  if specs = [] then invalid_arg "Tage.create: no tagged tables";
  let sorted = List.sort (fun a b -> compare a.hist_len b.hist_len) specs in
  if sorted <> specs then invalid_arg "Tage.create: specs must be sorted";
  let max_hist = (List.nth specs (List.length specs - 1)).hist_len in
  { base = Counter.create ~bits:2 ~entries:(1 lsl base_index_bits);
    base_bits = base_index_bits;
    tables = Array.of_list (List.map make_table specs);
    hist = History.create (max_hist + 1);
    tick = 0;
    rng = Repro_util.Rng.create 0x7a6e }

let geometric_specs ~n_tables ~min_hist ~max_hist ~index_bits ~tag_bits =
  assert (n_tables >= 1 && min_hist >= 1 && max_hist > min_hist);
  let ratio =
    if n_tables = 1 then 1.0
    else
      (float_of_int max_hist /. float_of_int min_hist)
      ** (1.0 /. float_of_int (n_tables - 1))
  in
  List.init n_tables (fun i ->
      let len =
        int_of_float (Float.round (float_of_int min_hist *. (ratio ** float_of_int i)))
      in
      { hist_len = max 1 len; index_bits; tag_bits })

let table_index tb pc =
  ((pc lsr 1) lxor (pc lsr (tb.spec.index_bits + 1)) lxor Folded.get tb.f_index)
  land ((1 lsl tb.spec.index_bits) - 1)

let table_tag tb pc =
  ((pc lsr 1) lxor Folded.get tb.f_tag0 lxor (Folded.get tb.f_tag1 lsl 1))
  land ((1 lsl tb.spec.tag_bits) - 1)

let ctr_taken c = Char.code c >= 4
let ctr_weak c = Char.code c = 3 || Char.code c = 4

(* Returns (provider_table_idx, entry_idx) of the longest matching
   tagged component, or (-1, _) when only the base matches. *)
let find_provider t pc =
  let rec go i =
    if i < 0 then (-1, 0)
    else
      let tb = t.tables.(i) in
      let idx = table_index tb pc in
      if tb.tags.(idx) = table_tag tb pc then (i, idx) else go (i - 1)
  in
  go (Array.length t.tables - 1)

let find_alt t pc below =
  let rec go i =
    if i < 0 then None
    else
      let tb = t.tables.(i) in
      let idx = table_index tb pc in
      if tb.tags.(idx) = table_tag tb pc then Some (i, idx) else go (i - 1)
  in
  go (below - 1)

let base_index t pc = (pc lsr 1) land ((1 lsl t.base_bits) - 1)
let base_predict t pc = Counter.is_taken t.base (base_index t pc)

let predict t ~pc =
  let prov, idx = find_provider t pc in
  if prov < 0 then base_predict t pc
  else ctr_taken (Bytes.get t.tables.(prov).ctr idx)

let update_ctr tb idx taken =
  let v = Char.code (Bytes.get tb.ctr idx) in
  let v' = if taken then min 7 (v + 1) else max 0 (v - 1) in
  Bytes.set tb.ctr idx (Char.chr v')

let update_useful tb idx inc =
  let v = Char.code (Bytes.get tb.useful idx) in
  let v' = if inc then min 3 (v + 1) else max 0 (v - 1) in
  Bytes.set tb.useful idx (Char.chr v')

let allocate t pc taken above =
  (* Try to claim an entry with useful = 0 in a longer-history table;
     start from a pseudo-randomly chosen candidate so allocations
     spread across tables, as in the reference implementation. *)
  let n = Array.length t.tables in
  let candidates = ref [] in
  for i = n - 1 downto above + 1 do
    let tb = t.tables.(i) in
    let idx = table_index tb pc in
    if Char.code (Bytes.get tb.useful idx) = 0 then
      candidates := (i, idx) :: !candidates
  done;
  match !candidates with
  | [] ->
      (* No free entry: age the would-be victims. *)
      for i = above + 1 to n - 1 do
        let tb = t.tables.(i) in
        update_useful tb (table_index tb pc) false
      done
  | cands ->
      let pick =
        if List.length cands = 1 || Repro_util.Rng.bernoulli t.rng 0.67 then
          List.hd cands
        else List.nth cands 1
      in
      let i, idx = pick in
      let tb = t.tables.(i) in
      tb.tags.(idx) <- table_tag tb pc;
      Bytes.set tb.ctr idx (if taken then '\004' else '\003');
      Bytes.set tb.useful idx '\000'

let update t ~pc ~taken =
  let prov, pidx = find_provider t pc in
  let pred =
    if prov < 0 then base_predict t pc
    else ctr_taken (Bytes.get t.tables.(prov).ctr pidx)
  in
  let alt_pred =
    if prov < 0 then base_predict t pc
    else
      match find_alt t pc prov with
      | Some (i, idx) -> ctr_taken (Bytes.get t.tables.(i).ctr idx)
      | None -> base_predict t pc
  in
  (* Train the provider (or the base). *)
  if prov < 0 then Counter.update t.base (base_index t pc) taken
  else begin
    let tb = t.tables.(prov) in
    update_ctr tb pidx taken;
    (* Newly-allocated (weak) entries also train the base so evicted
       entries do not lose the bimodal fallback. *)
    if ctr_weak (Bytes.get tb.ctr pidx) then
      Counter.update t.base (base_index t pc) taken;
    if pred <> alt_pred then update_useful tb pidx (pred = taken)
  end;
  (* Allocate on a misprediction if a longer history might help. *)
  if pred <> taken && prov < Array.length t.tables - 1 then
    allocate t pc taken prov;
  (* Periodic graceful aging of useful counters. *)
  t.tick <- t.tick + 1;
  if t.tick land 0x3FFFF = 0 then
    Array.iter
      (fun tb ->
        Bytes.iteri
          (fun i c ->
            if Char.code c > 0 then Bytes.set tb.useful i (Char.chr (Char.code c - 1)))
          tb.useful)
      t.tables;
  (* Advance global and folded histories. *)
  let evicted_at len = History.bit t.hist (len - 1) in
  Array.iter
    (fun tb ->
      let ev = evicted_at tb.spec.hist_len in
      Folded.update tb.f_index ~inserted:taken ~evicted:ev;
      Folded.update tb.f_tag0 ~inserted:taken ~evicted:ev;
      Folded.update tb.f_tag1 ~inserted:taken ~evicted:ev)
    t.tables;
  History.push t.hist taken

let storage_bits t =
  let table_bits tb =
    let entries = Array.length tb.tags in
    entries * (tb.spec.tag_bits + 3 + 2)
  in
  Counter.storage_bits t.base
  + Array.fold_left (fun acc tb -> acc + table_bits tb) 0 t.tables
  + History.length t.hist

let pack ~name t =
  Predictor.make ~name
    ~predict:(fun pc -> predict t ~pc)
    ~update:(fun pc taken -> update t ~pc ~taken)
    ~storage_bits:(storage_bits t)
