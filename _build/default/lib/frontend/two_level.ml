type t = {
  addr_bits : int;
  history : int;
  local_hist : int array;
  pattern : Counter.t;
}

let create ?(addr_bits = 10) ?(history = 10) () =
  if addr_bits < 1 || addr_bits > 20 then invalid_arg "Two_level.create";
  if history < 1 || history > 20 then invalid_arg "Two_level.create";
  { addr_bits;
    history;
    local_hist = Array.make (1 lsl addr_bits) 0;
    pattern = Counter.create ~bits:2 ~entries:(1 lsl history) }

let slot t pc = (pc lsr 1) land ((1 lsl t.addr_bits) - 1)
let predict t ~pc = Counter.is_taken t.pattern t.local_hist.(slot t pc)

let update t ~pc ~taken =
  let s = slot t pc in
  Counter.update t.pattern t.local_hist.(s) taken;
  t.local_hist.(s) <-
    ((t.local_hist.(s) lsl 1) lor Bool.to_int taken) land ((1 lsl t.history) - 1)

let storage_bits t =
  ((1 lsl t.addr_bits) * t.history) + Counter.storage_bits t.pattern

let pack ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "two-level-%d.%d" t.addr_bits t.history
  in
  Predictor.make ~name
    ~predict:(fun pc -> predict t ~pc)
    ~update:(fun pc taken -> update t ~pc ~taken)
    ~storage_bits:(storage_bits t)
