let gshare_small () = Gshare.pack ~name:"gshare-small" (Gshare.create ~history_bits:13)
let gshare_big () = Gshare.pack ~name:"gshare-big" (Gshare.create ~history_bits:16)

let tournament_small () =
  Tournament.pack ~name:"tournament-small"
    (Tournament.create ~addr_bits:10 ~history_bits:8)

let tournament_big () =
  Tournament.pack ~name:"tournament-big"
    (Tournament.create ~addr_bits:12 ~history_bits:14)

let tage_small () =
  let specs =
    [ { Tage.hist_len = 4; index_bits = 8; tag_bits = 9 };
      { Tage.hist_len = 16; index_bits = 8; tag_bits = 9 } ]
  in
  Tage.pack ~name:"tage-small" (Tage.create ~base_index_bits:12 specs)

let tage_big () =
  let specs =
    Tage.geometric_specs ~n_tables:12 ~min_hist:4 ~max_hist:640 ~index_bits:9
      ~tag_bits:11
  in
  Tage.pack ~name:"tage-big" (Tage.create ~base_index_bits:13 specs)

let with_loop base = Loop_predictor.combine (Loop_predictor.create ()) base

let base_makers =
  [ ("gshare-big", gshare_big);
    ("tournament-big", tournament_big);
    ("tage-big", tage_big);
    ("gshare-small", gshare_small);
    ("tournament-small", tournament_small);
    ("tage-small", tage_small) ]

let all_names =
  List.map fst base_makers
  @ [ "L-gshare-small"; "L-tournament-small"; "L-tage-small" ]

let perceptron () = Perceptron.pack (Perceptron.create ())
let two_level () = Two_level.pack (Two_level.create ())

let by_name name =
  match List.assoc_opt name base_makers with
  | Some mk -> mk ()
  | None ->
      (match String.index_opt name '-' with
      | Some 1 when String.length name > 2 && name.[0] = 'L' ->
          let base = String.sub name 2 (String.length name - 2) in
          (match List.assoc_opt base base_makers with
          | Some mk -> with_loop (mk ())
          | None -> raise Not_found)
      | Some _ | None -> raise Not_found)

let extension_makers =
  [ ("perceptron-128", perceptron); ("two-level-10.10", two_level) ]

let extended_names = all_names @ List.map fst extension_makers

let by_name_extended name =
  match List.assoc_opt name extension_makers with
  | Some mk -> mk ()
  | None -> by_name name
