(** Indirect-branch target cache: a history-indexed target predictor
    (the two-level scheme of Chang, Hao & Patt, and the ancestor of
    ITTAGE). Where a BTB can only replay an indirect branch's *last*
    target, a target cache indexes by branch address XOR recent target
    history, separating per-callsite target patterns.

    The paper notes indirect branches are rare in HPC (≤0.5% of
    branches on average, up to 2.5% in CoEVP); this structure is how
    a front-end would cover benchmarks like CoEVP, md, kdtree, UA and
    EP if they mattered more. *)

type t

val create : ?entries:int -> ?hist_targets:int -> unit -> t
(** [entries] (power of two, default 512) target slots; the index
    mixes the last [hist_targets] (default 4) indirect targets. *)

val predict : t -> pc:int -> int option
(** Predicted target; [None] for a cold slot. *)

val update : t -> pc:int -> target:int -> unit
(** Record the resolved target and advance the target history. *)

val storage_bits : t -> int
