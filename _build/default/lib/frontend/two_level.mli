(** Two-level local-history predictor (Yeh & Patt, "PAg"): a first
    level of per-branch history registers and a second-level pattern
    table of 2-bit counters indexed by the branch's own history.

    The paper's GPU-related-work discussion cites exactly this scheme
    ("a branch predictor based on local history tables" predicting 95%
    of GPU branches); included as an extension predictor. *)

type t

val create : ?addr_bits:int -> ?history:int -> unit -> t
(** Defaults: 1024 local histories of 10 bits, a 1024-entry shared
    pattern table. Cost [2^addr_bits * history + 2^history * 2] bits. *)

val predict : t -> pc:int -> bool
val update : t -> pc:int -> taken:bool -> unit
val storage_bits : t -> int
val pack : ?name:string -> t -> Predictor.t
