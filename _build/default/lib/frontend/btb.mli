(** Branch target buffer: a set-associative cache from branch address
    to predicted target, holding taken branches only (not-taken
    branches fall through sequentially). Modulo indexing on the branch
    address — the paper points at exactly this indexing as the source
    of aliasing that high associativity must absorb. LRU replacement.

    A lookup that misses, or hits with a stale target, costs a fetch
    redirect; {!Analysis.Btb_sim} counts those as BTB MPKI events. *)

type t

val create : entries:int -> assoc:int -> t
(** [entries] total entries, [assoc]-way sets. Both powers of two,
    [assoc <= entries]. *)

val entries : t -> int
val assoc : t -> int

val lookup : t -> pc:int -> int option
(** Predicted target if the branch address is present. Updates LRU. *)

val insert : t -> pc:int -> target:int -> unit
(** Record a taken branch's target (allocates or refreshes). *)

val storage_bits : t -> int
(** Tag + target payload per entry. *)
