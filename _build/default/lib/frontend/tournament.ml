type t = {
  n : int;
  m : int;
  local_hist : int array; (* 2^n entries of m-bit local history *)
  local_pred : Counter.t; (* 2^n two-bit counters *)
  global_pred : Counter.t; (* 2^m two-bit counters *)
  choice : Counter.t; (* 2^m two-bit counters; taken = use global *)
  ghist : History.t;
}

let create ~addr_bits ~history_bits =
  if addr_bits < 2 || addr_bits > 20 then invalid_arg "Tournament.create";
  if history_bits < 2 || history_bits > 24 then invalid_arg "Tournament.create";
  { n = addr_bits;
    m = history_bits;
    local_hist = Array.make (1 lsl addr_bits) 0;
    local_pred = Counter.create ~bits:2 ~entries:(1 lsl addr_bits);
    global_pred = Counter.create ~bits:2 ~entries:(1 lsl history_bits);
    choice = Counter.create ~bits:2 ~entries:(1 lsl history_bits);
    ghist = History.create history_bits }

let local_slot t pc = (pc lsr 1) land ((1 lsl t.n) - 1)

(* The local counter is picked by the branch's own history pattern,
   folded with its address so distinct branches with equal histories
   do not fully alias. *)
let local_index t pc =
  let hist = t.local_hist.(local_slot t pc) in
  (hist lxor (pc lsr 1)) land ((1 lsl t.n) - 1)

let global_index t = History.low_bits t.ghist t.m

let predict t ~pc =
  let gi = global_index t in
  if Counter.is_taken t.choice gi then Counter.is_taken t.global_pred gi
  else Counter.is_taken t.local_pred (local_index t pc)

let update t ~pc ~taken =
  let gi = global_index t in
  let li = local_index t pc in
  let local_guess = Counter.is_taken t.local_pred li in
  let global_guess = Counter.is_taken t.global_pred gi in
  (* Train the choice only when the components disagree. *)
  if local_guess <> global_guess then
    Counter.update t.choice gi (global_guess = taken);
  Counter.update t.local_pred li taken;
  Counter.update t.global_pred gi taken;
  let slot = local_slot t pc in
  t.local_hist.(slot) <-
    ((t.local_hist.(slot) lsl 1) lor Bool.to_int taken) land ((1 lsl t.m) - 1);
  History.push t.ghist taken

let storage_bits t =
  ((1 lsl t.n) * t.m)
  + Counter.storage_bits t.local_pred
  + Counter.storage_bits t.global_pred
  + Counter.storage_bits t.choice

let pack ~name t =
  Predictor.make ~name
    ~predict:(fun pc -> predict t ~pc)
    ~update:(fun pc taken -> update t ~pc ~taken)
    ~storage_bits:(storage_bits t)
