(** Perceptron branch predictor (Jiménez & Lin, HPCA 2001): one signed
    weight vector per branch (hashed by address), dotted against the
    global history; trained on a misprediction or when the output
    magnitude is below the threshold.

    Included as an extension beyond the paper's three predictors: its
    linear separability limit is a different failure mode than table
    aliasing, which makes it a useful cross-check on the workload
    model (HPC's biased branches are trivially separable; desktop
    path-correlated ensembles often are not). *)

type t

val create : ?entries:int -> ?history:int -> unit -> t
(** Defaults: 128 perceptrons over 24 history bits (~3KB of 8-bit
    weights). [entries] must be a power of two; [history <= 64]. *)

val predict : t -> pc:int -> bool
val update : t -> pc:int -> taken:bool -> unit
val storage_bits : t -> int
val pack : ?name:string -> t -> Predictor.t
