(** Static basic blocks: straight-line instruction runs as laid out in
    the synthesized code image. A block records its address range, its
    instruction count, and how it terminates. *)

(** How control leaves the block. [Fallthrough] blocks end at a branch
    *target* (a new block begins) without a branch of their own. *)
type terminator =
  | Fallthrough
  | Branch of Inst.kind  (** invariant: never [Inst.Plain] *)

type t = {
  id : int;  (** unique within a code image *)
  addr : int;  (** address of the first instruction *)
  size_bytes : int;  (** total encoded size *)
  n_insts : int;  (** number of instructions, at least 1 *)
  terminator : terminator;
}

val make :
  id:int -> addr:int -> size_bytes:int -> n_insts:int -> terminator -> t
(** Validates the invariants ([n_insts >= 1], [size_bytes >= n_insts],
    terminator never [Branch Plain]); raises [Invalid_argument]. *)

val end_addr : t -> int
(** First address past the block. *)

val last_inst_addr : t -> int -> int
(** [last_inst_addr t last_size] is the address of the final
    (terminating) instruction given its encoded size. *)

val pp : Format.formatter -> t -> unit
