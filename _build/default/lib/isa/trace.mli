(** Streaming dynamic-instruction traces.

    A trace is a push-based stream: a function that drives a callback
    over every dynamic instruction in order. Traces are re-runnable
    (each {!iter} restarts the underlying generator) and never
    materialized, so multi-billion-instruction runs use constant
    memory, like Pin's online analysis.

    Producers may reuse one mutable {!Inst.t}; see {!Inst}. *)

type t

val make : ((Inst.t -> unit) -> unit) -> t
(** [make run] wraps a generator. [run f] must call [f] once per
    dynamic instruction, in program order, then return. *)

val iter : t -> (Inst.t -> unit) -> unit
(** Run the trace through a consumer. *)

val of_list : Inst.t list -> t
(** Test helper: trace over pre-built instructions (not copied). *)

val empty : t

val concat : t list -> t
(** Traces run back to back. *)

val filter : (Inst.t -> bool) -> t -> t
(** Keep only matching instructions. *)

val take : int -> t -> t
(** At most the first [n] instructions; stops the producer early. *)

val count : t -> int
(** Number of dynamic instructions (runs the trace). *)

val section_counts : t -> int * int
(** [(serial, parallel)] instruction counts (runs the trace). *)

val to_list : t -> Inst.t list
(** Materialize with per-instruction copies. Test/debug use only. *)
