lib/isa/bblock.mli: Format Inst
