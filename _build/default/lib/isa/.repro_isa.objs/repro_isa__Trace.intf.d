lib/isa/trace.mli: Inst
