lib/isa/section.ml: Format
