lib/isa/inst.mli: Format Section
