lib/isa/trace.ml: Inst List Section
