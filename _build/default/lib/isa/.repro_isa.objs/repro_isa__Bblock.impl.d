lib/isa/bblock.ml: Format Inst
