lib/isa/section.mli: Format
