lib/isa/inst.ml: Format Printf Section
