type kind =
  | Plain
  | Cond_branch
  | Uncond_direct
  | Indirect_branch
  | Call
  | Indirect_call
  | Return
  | Syscall

type t = {
  mutable addr : int;
  mutable size : int;
  mutable kind : kind;
  mutable taken : bool;
  mutable target : int;
  mutable section : Section.t;
  mutable warmup : bool;
}

let make ?(kind = Plain) ?(taken = false) ?(target = 0)
    ?(section = Section.Serial) ?(warmup = false) ~addr ~size () =
  { addr; size; kind; taken; target; section; warmup }

let clone t =
  { addr = t.addr; size = t.size; kind = t.kind; taken = t.taken;
    target = t.target; section = t.section; warmup = t.warmup }

let is_branch t = t.kind <> Plain
let is_conditional t = t.kind = Cond_branch
let is_backward t = t.taken && t.target < t.addr

let kind_to_string = function
  | Plain -> "plain"
  | Cond_branch -> "cond-branch"
  | Uncond_direct -> "direct-jump"
  | Indirect_branch -> "indirect-branch"
  | Call -> "call"
  | Indirect_call -> "indirect-call"
  | Return -> "return"
  | Syscall -> "syscall"

let pp fmt t =
  Format.fprintf fmt "@[<h>0x%x %s %dB%s%s@]" t.addr (kind_to_string t.kind)
    t.size
    (if is_branch t then if t.taken then Printf.sprintf " -> 0x%x" t.target else " nt"
     else "")
    (match t.section with Section.Serial -> " [S]" | Section.Parallel -> " [P]")
