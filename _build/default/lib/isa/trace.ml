type t = { run : (Inst.t -> unit) -> unit }

let make run = { run }
let iter t f = t.run f
let of_list insts = { run = (fun f -> List.iter f insts) }
let empty = { run = (fun _ -> ()) }
let concat ts = { run = (fun f -> List.iter (fun t -> t.run f) ts) }
let filter pred t = { run = (fun f -> t.run (fun i -> if pred i then f i)) }

exception Stop

let take n t =
  let run f =
    let seen = ref 0 in
    try
      t.run (fun i ->
          if !seen >= n then raise Stop;
          incr seen;
          f i)
    with Stop -> ()
  in
  { run }

let count t =
  let n = ref 0 in
  t.run (fun _ -> incr n);
  !n

let section_counts t =
  let serial = ref 0 and parallel = ref 0 in
  t.run (fun i ->
      match i.Inst.section with
      | Section.Serial -> incr serial
      | Section.Parallel -> incr parallel);
  (!serial, !parallel)

let to_list t =
  let acc = ref [] in
  t.run (fun i -> acc := Inst.clone i :: !acc);
  List.rev !acc
