(** Code-section tag: the paper separates every measurement into code
    executed inside *serial* regions (only the master thread runs) and
    *parallel* regions (all threads run; thread 0 is measured). *)

type t = Serial | Parallel

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val all : t list
(** Both sections, in report order: serial first. *)
