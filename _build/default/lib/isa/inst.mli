(** Dynamic instruction records.

    This is the unit of observation of every analysis tool, mirroring
    what a Pin analysis routine sees per instruction: address, size,
    instruction class, branch outcome and target, and whether the
    instruction executed inside a serial or a parallel code section.

    For throughput, trace producers are allowed to reuse a single
    mutable record across callback invocations; consumers must copy
    ({!clone}) any instruction they retain past the callback. *)

(** Instruction class. Branch classes follow the paper's Fig. 1
    breakdown; conditional and unconditional direct branches are kept
    distinct (the figure merges them as "direct branch"). *)
type kind =
  | Plain  (** any non-control-flow instruction *)
  | Cond_branch  (** conditional direct branch *)
  | Uncond_direct  (** unconditional direct jump *)
  | Indirect_branch  (** indirect jump *)
  | Call  (** direct call *)
  | Indirect_call
  | Return
  | Syscall

type t = {
  mutable addr : int;  (** virtual address of the instruction *)
  mutable size : int;  (** encoded size in bytes *)
  mutable kind : kind;
  mutable taken : bool;  (** branch outcome; [false] for non-branches *)
  mutable target : int;  (** branch target when taken; [0] otherwise *)
  mutable section : Section.t;
  mutable warmup : bool;
      (** startup/initialisation instruction: the paper fast-forwards
          past initialisation ("starting from the first parallel
          region"), so statistics tools ignore these, while footprint
          and hardware-structure state still observe them *)
}

val make :
  ?kind:kind ->
  ?taken:bool ->
  ?target:int ->
  ?section:Section.t ->
  ?warmup:bool ->
  addr:int ->
  size:int ->
  unit ->
  t
(** Fresh instruction; defaults: [Plain], not taken, target 0, serial,
    not warmup. *)

val clone : t -> t
(** Independent copy, safe to retain. *)

val is_branch : t -> bool
(** [true] for every class except [Plain]. Syscalls count as branches,
    matching the paper's Fig. 1 accounting. *)

val is_conditional : t -> bool
val is_backward : t -> bool
(** A taken branch whose target address precedes the branch address. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
