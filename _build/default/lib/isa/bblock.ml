type terminator = Fallthrough | Branch of Inst.kind

type t = {
  id : int;
  addr : int;
  size_bytes : int;
  n_insts : int;
  terminator : terminator;
}

let make ~id ~addr ~size_bytes ~n_insts terminator =
  if n_insts < 1 then invalid_arg "Bblock.make: empty block";
  if size_bytes < n_insts then invalid_arg "Bblock.make: impossible size";
  (match terminator with
  | Branch Inst.Plain -> invalid_arg "Bblock.make: Plain terminator"
  | Branch _ | Fallthrough -> ());
  { id; addr; size_bytes; n_insts; terminator }

let end_addr t = t.addr + t.size_bytes
let last_inst_addr t last_size = t.addr + t.size_bytes - last_size

let pp fmt t =
  Format.fprintf fmt "@[<h>bb%d@@0x%x %dB/%di %s@]" t.id t.addr t.size_bytes
    t.n_insts
    (match t.terminator with
    | Fallthrough -> "fall"
    | Branch k -> Inst.kind_to_string k)
