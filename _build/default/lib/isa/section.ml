type t = Serial | Parallel

let equal a b =
  match (a, b) with
  | Serial, Serial | Parallel, Parallel -> true
  | Serial, Parallel | Parallel, Serial -> false

let to_string = function Serial -> "serial" | Parallel -> "parallel"
let pp fmt t = Format.pp_print_string fmt (to_string t)
let all = [ Serial; Parallel ]
