(* Serial vs parallel code sections inside HPC applications (the
   paper's Characteristic 5): the serial sections of parallel HPC
   programs look like desktop code, which motivates the asymmetric
   CMP design.

     dune exec examples/characterize_hpc.exe [-- scale] *)

module W = Repro_workload
module A = Repro_analysis
module Table = Repro_util.Table

let () =
  let scale = try float_of_string Sys.argv.(1) with _ -> 0.25 in
  let serial = A.Branch_mix.Only Repro_isa.Section.Serial in
  let parallel = A.Branch_mix.Only Repro_isa.Section.Parallel in
  let t =
    Table.create
      ~title:"Serial vs parallel code sections (HPC benchmarks with >=4% serial)"
      [ ("benchmark", Table.Left); ("serial insts", Table.Right);
        ("branch% ser", Table.Right); ("branch% par", Table.Right);
        ("BBL ser", Table.Right); ("BBL par", Table.Right);
        ("bwd-taken ser", Table.Right); ("bwd-taken par", Table.Right) ]
  in
  List.iter
    (fun name ->
      let p = W.Suites.find name in
      let insts =
        max 100_000 (int_of_float (float_of_int p.total_insts *. scale))
      in
      let c = A.Characterization.of_profile ~insts p in
      Table.add_row t
        [ name;
          Table.fmt_pct p.serial_fraction;
          Table.fmt_pct (A.Branch_mix.branch_fraction c.mix serial);
          Table.fmt_pct (A.Branch_mix.branch_fraction c.mix parallel);
          Printf.sprintf "%.0fB" (A.Bblock_stats.avg_block_bytes c.bblocks serial);
          Printf.sprintf "%.0fB" (A.Bblock_stats.avg_block_bytes c.bblocks parallel);
          Table.fmt_pct (A.Branch_bias.backward_taken_fraction c.bias serial);
          Table.fmt_pct (A.Branch_bias.backward_taken_fraction c.bias parallel) ])
    [ "CoEVP"; "LULESH"; "CoSP"; "CoMD"; "CoHMM"; "nab"; "fma3d" ];
  Table.print t;
  print_endline
    "Serial sections are 2-3x branchier with much shorter basic blocks -\n\
     closer to SPEC CPU INT than to the parallel sections around them.\n\
     A worker-core front-end sized for the parallel sections would slow\n\
     these sections down; hence one full-size core per CMP (the paper's\n\
     asymmetric design, examples/asymmetric_cmp.exe)."
