(* Build a workload profile from scratch with the public API — here, a
   stencil-like kernel with constant trip counts — and check how small
   a front-end it tolerates.

     dune exec examples/custom_workload.exe *)

module W = Repro_workload
module A = Repro_analysis
module U = Repro_uarch

let my_kernel : W.Profile.section =
  { W.Profile.default_section with
    branch_fraction = 0.05;
    avg_inst_bytes = 6.5;
    n_kernels = 2;
    inner_trip = W.Trip.Const 128;
    if_density = 0.4;
    hot_kb = 5.0 }

let my_app : W.Profile.t =
  { name = "my-stencil";
    suite = W.Suite.Npb;
    seed = 4242;
    total_insts = 600_000;
    serial_fraction = 0.01;
    rounds = 4;
    static_kb = 80.0;
    proc_align = 64;
    syscall_per_mil = 1.0;
    perf = W.Profile.default_perf;
    serial = { W.Profile.default_section with hot_kb = 3.0 };
    parallel = my_kernel }

let () =
  (match W.Profile.validate my_app with
  | Ok () -> ()
  | Error msg -> failwith msg);
  let c = A.Characterization.of_profile my_app in
  let total = A.Branch_mix.Total in
  Printf.printf "%s: %.1f%% branches, %.0f%% biased, 99%%-dynamic %s\n\n"
    my_app.name
    (100.0 *. A.Branch_mix.branch_fraction c.mix total)
    (100.0 *. A.Branch_bias.biased_fraction c.bias total)
    (Repro_util.Units.pp_bytes
       (A.Footprint.dynamic_bytes c.footprint total ~coverage:0.99));
  (* How do the two named core designs fare on it? *)
  let executor = W.Executor.create my_app in
  let trace = W.Executor.trace executor in
  List.iter2
    (fun label m ->
      Printf.printf
        "%-9s CPI %.3f (bp %.2f MPKI, btb %.2f, i$ %.2f)\n" label
        (U.Timing.cpi ~data_stall:my_app.perf.data_stall_cpi m.U.Timing.total)
        m.U.Timing.total.bp_mpki m.U.Timing.total.btb_mpki
        m.U.Timing.total.icache_mpki)
    [ "baseline"; "tailored" ]
    (U.Timing.measure_many
       [ U.Frontend_config.baseline; U.Frontend_config.tailored ]
       trace);
  print_endline
    "\nA loop-dominated kernel with a tiny footprint loses nothing on the\n\
     tailored front-end; that area buys an extra core at the CMP level."
