(* Front-end autopsy: for one benchmark, combine the deeper analysis
   tools — working-set curve, history predictability, basic-block
   reuse distance — and cross-check the analytic CPI model against
   the cycle-approximate fetch pipeline on both core designs.

     dune exec examples/frontend_autopsy.exe [-- bench [insts]] *)

module W = Repro_workload
module A = Repro_analysis
module U = Repro_uarch

let () =
  let bench = try Sys.argv.(1) with _ -> "CoMD" in
  let insts = try int_of_string Sys.argv.(2) with _ -> 600_000 in
  let p = W.Suites.find bench in
  let ex = W.Executor.create ~insts p in
  let trace = W.Executor.trace ex in

  (* One pass: learnability, working set, reuse distances, and the
     fetch pipeline under both configurations. *)
  let pred = A.Predictability.create () in
  let ws = A.Working_set.create () in
  let rd = A.Reuse_distance.create () in
  let pipe_base = U.Fetch_pipeline.create U.Frontend_config.baseline in
  let pipe_tail = U.Fetch_pipeline.create U.Frontend_config.tailored in
  A.Tool.run_all trace
    [ A.Predictability.observer pred; A.Working_set.observer ws;
      A.Reuse_distance.observer rd;
      U.Fetch_pipeline.observer pipe_base;
      U.Fetch_pipeline.observer pipe_tail ];

  Printf.printf "=== %s (%s) ===\n\n" bench (W.Suite.to_string p.suite);

  Printf.printf "History predictability (16-bit GHR):\n";
  Printf.printf "  %d conditional executions over %d sites\n"
    (A.Predictability.conditionals pred)
    (A.Predictability.distinct_sites pred);
  Printf.printf "  novelty rate %.1f%%, %.1f history patterns per site\n\n"
    (100.0 *. A.Predictability.novelty_rate pred)
    (A.Predictability.pairs_per_site pred);

  Printf.printf "Instruction working-set curve (64B lines, 4-way):\n";
  List.iter
    (fun (size, mpki) ->
      Printf.printf "  %-6s %6.2f MPKI\n" (Repro_util.Units.pp_bytes size) mpki)
    (A.Working_set.curve ws);
  (match A.Working_set.knee ws () with
  | Some k -> Printf.printf "  knee: %s\n\n" (Repro_util.Units.pp_bytes k)
  | None -> print_endline "  knee: beyond 128KB\n");

  Printf.printf "Basic-block reuse distance (%d block executions):\n"
    (A.Reuse_distance.executions rd);
  List.iter
    (fun (label, frac) ->
      if frac > 0.005 then
        Printf.printf "  %-9s %5.1f%%\n" label (100.0 *. frac))
    (A.Reuse_distance.histogram rd);
  Printf.printf "  short-reuse (<=3 blocks) share: %.0f%%\n\n"
    (100.0 *. A.Reuse_distance.short_reuse_fraction rd);

  Printf.printf "Fetch pipeline (cycle-approximate front-end bound):\n";
  List.iter2
    (fun label pipe ->
      Printf.printf "  %-9s front-end CPI %.3f  (" label
        (U.Fetch_pipeline.frontend_cpi pipe);
      List.iter
        (fun (cause, cyc) ->
          Printf.printf "%s %.0f%%  " cause
            (100.0 *. cyc /. U.Fetch_pipeline.cycles pipe))
        (U.Fetch_pipeline.breakdown pipe);
      print_endline ")")
    [ "baseline"; "tailored" ]
    [ pipe_base; pipe_tail ];
  Printf.printf
    "\nIf the tailored front-end CPI matches the baseline's, the paper's\n\
     downsizing is safe for this workload.\n"
