examples/frontend_autopsy.mli:
