examples/asymmetric_cmp.mli:
