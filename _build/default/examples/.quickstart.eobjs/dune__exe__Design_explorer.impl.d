examples/design_explorer.ml: Array List Printf Repro_core Repro_uarch Repro_workload Sys
