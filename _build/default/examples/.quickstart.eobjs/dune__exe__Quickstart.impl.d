examples/quickstart.ml: Printf Repro_analysis Repro_frontend Repro_workload
