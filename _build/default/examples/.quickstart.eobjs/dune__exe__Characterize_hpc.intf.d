examples/characterize_hpc.mli:
