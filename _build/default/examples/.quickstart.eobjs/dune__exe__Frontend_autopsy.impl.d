examples/frontend_autopsy.ml: Array List Printf Repro_analysis Repro_uarch Repro_util Repro_workload Sys
