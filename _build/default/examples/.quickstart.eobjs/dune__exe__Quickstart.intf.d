examples/quickstart.mli:
