examples/characterize_hpc.ml: Array List Printf Repro_analysis Repro_isa Repro_util Repro_workload Sys
