examples/custom_workload.ml: List Printf Repro_analysis Repro_uarch Repro_util Repro_workload
