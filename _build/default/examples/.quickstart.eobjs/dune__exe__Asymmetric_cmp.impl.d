examples/asymmetric_cmp.ml: Array List Printf Repro_uarch Repro_util Repro_workload Sys
