(* Asymmetric CMP what-if analysis: evaluate the paper's four CMP
   organizations for selected benchmarks, plus a custom organization
   built from scratch with the public API.

     dune exec examples/asymmetric_cmp.exe [-- bench [scale]] *)

module W = Repro_workload
module U = Repro_uarch
module Table = Repro_util.Table

let () =
  let bench = try Sys.argv.(1) with _ -> "CoEVP" in
  let scale = try float_of_string Sys.argv.(2) with _ -> 0.5 in
  let profile = W.Suites.find bench in
  let insts =
    max 100_000 (int_of_float (float_of_int profile.total_insts *. scale))
  in
  (* A custom organization: what if we used 1 baseline + 12 tailored
     cores (the area of ~11 baseline cores)? *)
  let wide =
    { U.Cmp.cname = "Custom (1B+12T)";
      master = U.Frontend_config.baseline;
      workers = U.Frontend_config.tailored;
      n_workers = 12 }
  in
  let configs = U.Cmp.standard_configs @ [ wide ] in
  let evals = U.Cmp.evaluate_many ~insts configs profile in
  let base = List.hd evals in
  let t =
    Table.create
      ~title:(Printf.sprintf "CMP organizations on %s (normalized)" bench)
      [ ("organization", Table.Left); ("cores", Table.Right);
        ("area", Table.Right); ("time", Table.Right); ("power", Table.Right);
        ("energy", Table.Right); ("ED", Table.Right) ]
  in
  List.iter2
    (fun (c : U.Cmp.config) e ->
      let r = U.Cmp.relative e ~baseline:base in
      Table.add_row t
        [ c.cname;
          string_of_int (U.Cmp.n_cores c);
          Table.fmt_ratio r.area;
          Table.fmt_ratio r.time;
          Table.fmt_ratio r.power;
          Table.fmt_ratio r.energy;
          Table.fmt_ratio r.ed ])
    configs evals;
  Table.print t;
  Printf.printf
    "\n%s runs %.0f%% of its instructions in serial sections; watch how the\n\
     Tailored CMP pays for them while the Asymmetric CMPs do not.\n"
    bench
    (100.0 *. profile.serial_fraction)
