(* Front-end design-space exploration: the paper's methodology as an
   API. Sweep candidate front-ends over a workload set, then ask the
   rebalancing engine for the cheapest design with bounded slowdown.

     dune exec examples/design_explorer.exe [-- suite [scale]]
   where suite is hpc (default), exmatex, omp, npb or int. *)

module W = Repro_workload
module U = Repro_uarch
module R = Repro_core.Rebalance

let () =
  let suite = try Sys.argv.(1) with _ -> "hpc" in
  let scale = try float_of_string Sys.argv.(2) with _ -> 0.15 in
  let profiles =
    match suite with
    | "hpc" -> List.concat_map W.Suites.by_suite W.Suite.hpc
    | "exmatex" -> W.Suites.by_suite W.Suite.Exmatex
    | "omp" -> W.Suites.by_suite W.Suite.Spec_omp
    | "npb" -> W.Suites.by_suite W.Suite.Npb
    | "int" -> W.Suites.by_suite W.Suite.Spec_int
    | s -> failwith ("unknown suite " ^ s)
  in
  let insts = max 50_000 (int_of_float (2_000_000.0 *. scale)) in
  Printf.printf "Sweeping %d designs over %d %s workloads (%d insts each)...\n\n"
    (List.length R.default_candidates)
    (List.length profiles) suite insts;
  let r = R.recommend ~insts profiles in
  Printf.printf "%-44s %8s %7s %8s %8s\n" "design" "area" "power" "worst" "avg";
  List.iter
    (fun (e : R.estimate) ->
      Printf.printf "%-44s %6.2fmm2 %5.2fW %+7.1f%% %+7.1f%%%s\n"
        (U.Frontend_config.name e.config)
        e.area_mm2 e.power_w
        (100.0 *. (e.slowdown -. 1.0))
        (100.0 *. (e.avg_slowdown -. 1.0))
        (if e.config = r.chosen.config then "   <- chosen" else ""))
    r.candidates;
  print_newline ();
  List.iter print_endline r.rationale;
  Printf.printf
    "\nPaper reference: the tailored design (16KB/128B I$, 2KB BP+LBP, 256 BTB)\n\
     saves 16%% area / 7%% power with no performance loss on HPC code, while\n\
     desktop (int) workloads refuse to shrink below the baseline.\n"
