(* Quickstart: generate one HPC benchmark, run the Pin-style analysis
   tools over its dynamic trace, and simulate two branch predictors.

     dune exec examples/quickstart.exe *)

module W = Repro_workload
module A = Repro_analysis
module F = Repro_frontend

let () =
  (* 1. Pick a calibrated benchmark profile and build its executable
        program (a synthetic code image plus an interpreter). *)
  let profile = W.Suites.find "FT" in
  let executor = W.Executor.create ~insts:500_000 profile in
  let trace = W.Executor.trace executor in

  (* 2. Attach "pintools" and run the trace once through all of them. *)
  let mix = A.Branch_mix.create () in
  let bias = A.Branch_bias.create () in
  let small = A.Bp_sim.create (F.Zoo.gshare_small ()) in
  let small_lbp = A.Bp_sim.create (F.Zoo.with_loop (F.Zoo.gshare_small ())) in
  A.Tool.run_all trace
    [ A.Branch_mix.observer mix; A.Branch_bias.observer bias;
      A.Bp_sim.observer small; A.Bp_sim.observer small_lbp ];

  (* 3. Read the results. *)
  let total = A.Branch_mix.Total in
  Printf.printf "benchmark        : %s (%s)\n" profile.name
    (W.Suite.to_string profile.suite);
  Printf.printf "instructions     : %d\n" (A.Branch_mix.insts mix total);
  Printf.printf "branch share     : %.1f%%\n"
    (100.0 *. A.Branch_mix.branch_fraction mix total);
  Printf.printf "biased branches  : %.0f%% of dynamic conditionals\n"
    (100.0 *. A.Branch_bias.biased_fraction bias total);
  Printf.printf "gshare-2KB MPKI  : %.2f\n" (A.Bp_sim.mpki small total);
  Printf.printf "  + loop BP MPKI : %.2f\n" (A.Bp_sim.mpki small_lbp total);
  print_endline
    "\nThe loop predictor recovers most of the small predictor's losses on\n\
     loop-dominated HPC code - the core observation behind the paper's\n\
     tailored front-end."
