(* Unit tests for Repro_isa: instructions, basic blocks, traces. *)

module Inst = Repro_isa.Inst
module Section = Repro_isa.Section
module Bblock = Repro_isa.Bblock
module Trace = Repro_isa.Trace

let mk ?kind ?taken ?target ?section ~addr () =
  Inst.make ?kind ?taken ?target ?section ~addr ~size:4 ()

(* ------------------------------------------------------------------ *)

let test_inst_defaults () =
  let i = mk ~addr:0x400000 () in
  Alcotest.(check bool) "plain is not a branch" false (Inst.is_branch i);
  Alcotest.(check bool) "not conditional" false (Inst.is_conditional i);
  Alcotest.(check bool) "not warmup" false i.Inst.warmup;
  Alcotest.(check bool) "serial default" true
    (Section.equal i.Inst.section Section.Serial)

let test_inst_branch_classes () =
  let branchy =
    [ Inst.Cond_branch; Inst.Uncond_direct; Inst.Indirect_branch; Inst.Call;
      Inst.Indirect_call; Inst.Return; Inst.Syscall ]
  in
  List.iter
    (fun kind ->
      let i = mk ~kind ~addr:0x1000 () in
      Alcotest.(check bool) (Inst.kind_to_string kind) true (Inst.is_branch i))
    branchy;
  Alcotest.(check bool) "only cond is conditional" true
    (Inst.is_conditional (mk ~kind:Inst.Cond_branch ~addr:0 ()))

let test_inst_backward () =
  let back = mk ~kind:Inst.Cond_branch ~taken:true ~target:0x900 ~addr:0x1000 () in
  let fwd = mk ~kind:Inst.Cond_branch ~taken:true ~target:0x1100 ~addr:0x1000 () in
  let nt = mk ~kind:Inst.Cond_branch ~taken:false ~target:0x900 ~addr:0x1000 () in
  Alcotest.(check bool) "backward" true (Inst.is_backward back);
  Alcotest.(check bool) "forward" false (Inst.is_backward fwd);
  Alcotest.(check bool) "not taken is not backward" false (Inst.is_backward nt)

let test_inst_clone () =
  let i = mk ~kind:Inst.Call ~taken:true ~target:0x2000 ~addr:0x1000 () in
  let c = Inst.clone i in
  i.Inst.addr <- 0xdead;
  Alcotest.(check int) "clone unaffected by mutation" 0x1000 c.Inst.addr;
  Alcotest.(check int) "clone kept target" 0x2000 c.Inst.target

(* ------------------------------------------------------------------ *)

let test_bblock_valid () =
  let b =
    Bblock.make ~id:1 ~addr:0x400 ~size_bytes:20 ~n_insts:5
      (Bblock.Branch Inst.Cond_branch)
  in
  Alcotest.(check int) "end addr" 0x414 (Bblock.end_addr b);
  Alcotest.(check int) "last inst addr" 0x410 (Bblock.last_inst_addr b 4)

let test_bblock_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Bblock.make: empty block")
    (fun () ->
      ignore (Bblock.make ~id:0 ~addr:0 ~size_bytes:4 ~n_insts:0 Bblock.Fallthrough));
  Alcotest.check_raises "size" (Invalid_argument "Bblock.make: impossible size")
    (fun () ->
      ignore (Bblock.make ~id:0 ~addr:0 ~size_bytes:2 ~n_insts:5 Bblock.Fallthrough));
  Alcotest.check_raises "plain terminator"
    (Invalid_argument "Bblock.make: Plain terminator") (fun () ->
      ignore
        (Bblock.make ~id:0 ~addr:0 ~size_bytes:8 ~n_insts:2
           (Bblock.Branch Inst.Plain)))

(* ------------------------------------------------------------------ *)

let insts_fixture () =
  [ mk ~addr:0 ();
    mk ~kind:Inst.Cond_branch ~taken:true ~target:0 ~addr:4 ();
    mk ~addr:8 ~section:Section.Parallel ();
    mk ~kind:Inst.Call ~taken:true ~target:64 ~addr:12 ~section:Section.Parallel () ]

let test_trace_count () =
  let t = Trace.of_list (insts_fixture ()) in
  Alcotest.(check int) "count" 4 (Trace.count t);
  Alcotest.(check int) "count is repeatable" 4 (Trace.count t)

let test_trace_filter () =
  let t = Trace.filter Inst.is_branch (Trace.of_list (insts_fixture ())) in
  Alcotest.(check int) "two branches" 2 (Trace.count t)

let test_trace_take () =
  let t = Trace.take 2 (Trace.of_list (insts_fixture ())) in
  Alcotest.(check int) "take 2" 2 (Trace.count t);
  let t0 = Trace.take 0 (Trace.of_list (insts_fixture ())) in
  Alcotest.(check int) "take 0" 0 (Trace.count t0);
  let tbig = Trace.take 100 (Trace.of_list (insts_fixture ())) in
  Alcotest.(check int) "take beyond end" 4 (Trace.count tbig)

let test_trace_concat () =
  let t = Trace.concat [ Trace.of_list (insts_fixture ()); Trace.empty;
                         Trace.of_list (insts_fixture ()) ] in
  Alcotest.(check int) "concat" 8 (Trace.count t)

let test_trace_sections () =
  let s, p = Trace.section_counts (Trace.of_list (insts_fixture ())) in
  Alcotest.(check int) "serial" 2 s;
  Alcotest.(check int) "parallel" 2 p

let test_trace_to_list_clones () =
  let original = insts_fixture () in
  let t = Trace.of_list original in
  let copy = Trace.to_list t in
  (List.hd original).Inst.addr <- 0xbeef;
  Alcotest.(check int) "to_list clones" 0 (List.hd copy).Inst.addr

let test_trace_order () =
  let t = Trace.of_list (insts_fixture ()) in
  let addrs = List.map (fun i -> i.Inst.addr) (Trace.to_list t) in
  Alcotest.(check (list int)) "program order" [ 0; 4; 8; 12 ] addrs

let () =
  Alcotest.run "isa"
    [ ("inst",
       [ Alcotest.test_case "defaults" `Quick test_inst_defaults;
         Alcotest.test_case "branch classes" `Quick test_inst_branch_classes;
         Alcotest.test_case "backward" `Quick test_inst_backward;
         Alcotest.test_case "clone" `Quick test_inst_clone ]);
      ("bblock",
       [ Alcotest.test_case "valid" `Quick test_bblock_valid;
         Alcotest.test_case "invalid" `Quick test_bblock_invalid ]);
      ("trace",
       [ Alcotest.test_case "count" `Quick test_trace_count;
         Alcotest.test_case "filter" `Quick test_trace_filter;
         Alcotest.test_case "take" `Quick test_trace_take;
         Alcotest.test_case "concat" `Quick test_trace_concat;
         Alcotest.test_case "sections" `Quick test_trace_sections;
         Alcotest.test_case "to_list clones" `Quick test_trace_to_list_clones;
         Alcotest.test_case "order" `Quick test_trace_order ]) ]
