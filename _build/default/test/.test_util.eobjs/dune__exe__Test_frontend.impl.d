test/test_frontend.ml: Alcotest Array Bool Gen List Printf QCheck QCheck_alcotest Repro_frontend
