test/test_integration.ml: Alcotest Float Lazy List Printf Repro_analysis Repro_frontend Repro_isa Repro_uarch Repro_util Repro_workload
