test/test_workload.ml: Alcotest Array Bool Float List Printf QCheck QCheck_alcotest Repro_isa Repro_util Repro_workload Result String
