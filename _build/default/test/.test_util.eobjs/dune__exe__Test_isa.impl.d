test/test_isa.ml: Alcotest List Repro_isa
