test/test_extensions.ml: Alcotest Filename List Printf Repro_analysis Repro_core Repro_frontend Repro_isa Repro_uarch Repro_util Repro_workload String Sys
