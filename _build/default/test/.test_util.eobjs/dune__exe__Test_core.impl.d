test/test_core.ml: Alcotest List Option Printf Repro_core Repro_uarch Repro_util Repro_workload String
