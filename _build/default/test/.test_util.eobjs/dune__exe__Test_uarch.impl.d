test/test_uarch.ml: Alcotest Float List Printf Repro_frontend Repro_uarch Repro_workload String
