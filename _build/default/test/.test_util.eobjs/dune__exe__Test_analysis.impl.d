test/test_analysis.ml: Alcotest Array Float List Repro_analysis Repro_frontend Repro_isa Repro_workload
