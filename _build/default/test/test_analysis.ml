(* Tests for the analysis tools ("pintools") on hand-crafted traces
   with known statistics. *)

module A = Repro_analysis
module Inst = Repro_isa.Inst
module Section = Repro_isa.Section
module Trace = Repro_isa.Trace

let total = A.Branch_mix.Total
let serial = A.Branch_mix.Only Section.Serial

let mk ?(kind = Inst.Plain) ?(taken = false) ?(target = 0)
    ?(section = Section.Serial) ?(warmup = false) ?(size = 4) addr =
  Inst.make ~kind ~taken ~target ~section ~warmup ~addr ~size ()

(* A fixed fixture: 10 instructions, 3 branches. *)
let fixture () =
  [ mk 0;
    mk 4;
    mk ~kind:Inst.Cond_branch ~taken:true ~target:0 8; (* backward taken *)
    mk ~section:Section.Parallel 12;
    mk ~kind:Inst.Cond_branch ~taken:false ~target:24 ~section:Section.Parallel 16;
    mk ~section:Section.Parallel 20;
    mk ~kind:Inst.Call ~taken:true ~target:100 ~section:Section.Parallel 24;
    mk ~section:Section.Parallel 100;
    mk ~kind:Inst.Return ~taken:true ~target:28 ~section:Section.Parallel 104;
    mk ~section:Section.Parallel 28 ]

(* ------------------------------------------------------------------ *)

let test_branch_mix_counts () =
  let m = A.Branch_mix.create () in
  List.iter (A.Branch_mix.feed m) (fixture ());
  Alcotest.(check int) "insts" 10 (A.Branch_mix.insts m total);
  Alcotest.(check int) "serial insts" 3 (A.Branch_mix.insts m serial);
  Alcotest.(check int) "branches" 4 (A.Branch_mix.branches m total);
  Alcotest.(check (float 1e-9)) "direct branch fraction" 0.2
    (A.Branch_mix.fraction m total A.Branch_mix.Direct_branch);
  Alcotest.(check (float 1e-9)) "call fraction" 0.1
    (A.Branch_mix.fraction m total A.Branch_mix.Call);
  Alcotest.(check (float 1e-9)) "return fraction" 0.1
    (A.Branch_mix.fraction m total A.Branch_mix.Return);
  Alcotest.(check (float 1e-9)) "cond fraction" 0.2
    (A.Branch_mix.conditional_fraction m total)

let test_branch_mix_skips_warmup () =
  let m = A.Branch_mix.create () in
  A.Branch_mix.feed m (mk ~warmup:true 0);
  A.Branch_mix.feed m (mk 4);
  Alcotest.(check int) "warmup skipped" 1 (A.Branch_mix.insts m total)

let test_branch_bias_deciles () =
  let b = A.Branch_bias.create () in
  (* One site taken 9/10 times; one site taken 0/10. *)
  for i = 1 to 10 do
    A.Branch_bias.feed b
      (mk ~kind:Inst.Cond_branch ~taken:(i < 10) ~target:0 64);
    A.Branch_bias.feed b (mk ~kind:Inst.Cond_branch ~taken:false ~target:200 128)
  done;
  let d = A.Branch_bias.deciles b total in
  Alcotest.(check (float 1e-9)) "0-10% bucket holds half" 0.5 d.(0);
  Alcotest.(check (float 1e-9)) "90-100% bucket holds half" 0.5 d.(9);
  Alcotest.(check (float 1e-9)) "biased = all" 1.0
    (A.Branch_bias.biased_fraction b total);
  Alcotest.(check int) "two sites" 2 (A.Branch_bias.static_sites b)

let test_branch_bias_backward () =
  let b = A.Branch_bias.create () in
  (* two backward taken, one forward taken, one not taken *)
  A.Branch_bias.feed b (mk ~kind:Inst.Cond_branch ~taken:true ~target:0 64);
  A.Branch_bias.feed b (mk ~kind:Inst.Cond_branch ~taken:true ~target:0 64);
  A.Branch_bias.feed b (mk ~kind:Inst.Cond_branch ~taken:true ~target:999 64);
  A.Branch_bias.feed b (mk ~kind:Inst.Cond_branch ~taken:false ~target:0 64);
  Alcotest.(check (float 1e-9)) "backward share" (2.0 /. 3.0)
    (A.Branch_bias.backward_taken_fraction b total);
  Alcotest.(check (float 1e-9)) "taken share" 0.75
    (A.Branch_bias.taken_fraction b total)

let test_footprint () =
  let f = A.Footprint.create () in
  (* Two distinct addrs, one hot (99 execs), one cold (1 exec). *)
  for _ = 1 to 99 do
    A.Footprint.feed f (mk ~size:8 0x1000)
  done;
  A.Footprint.feed f (mk ~size:4 0x2000);
  Alcotest.(check int) "static bytes" 12 (A.Footprint.static_bytes f total);
  Alcotest.(check int) "static insts" 2 (A.Footprint.static_insts f total);
  Alcotest.(check int) "99% coverage needs hot inst" 8
    (A.Footprint.dynamic_bytes f total ~coverage:0.99);
  Alcotest.(check int) "full coverage needs both" 12
    (A.Footprint.dynamic_bytes f total ~coverage:1.0)

let test_footprint_warmup_static_only () =
  let f = A.Footprint.create () in
  A.Footprint.feed f (mk ~warmup:true ~size:4 0x3000);
  A.Footprint.feed f (mk ~size:4 0x4000);
  Alcotest.(check int) "static includes warmup" 8
    (A.Footprint.static_bytes f total);
  Alcotest.(check int) "dynamic excludes warmup" 4
    (A.Footprint.dynamic_bytes f total ~coverage:1.0)

let test_bblock_stats () =
  let s = A.Bblock_stats.create () in
  (* Two blocks: 3 insts (12B) ending taken, 2 insts (8B) ending not
     taken, then 1 inst (4B) ending taken. *)
  List.iter (A.Bblock_stats.feed s)
    [ mk 0; mk 4;
      mk ~kind:Inst.Cond_branch ~taken:true ~target:0 8;
      mk 12;
      mk ~kind:Inst.Cond_branch ~taken:false ~target:0 16;
      mk ~kind:Inst.Cond_branch ~taken:true ~target:0 20 ];
  Alcotest.(check (float 1e-9)) "avg block bytes" 8.0
    (A.Bblock_stats.avg_block_bytes s total);
  Alcotest.(check (float 1e-9)) "avg block insts" 2.0
    (A.Bblock_stats.avg_block_insts s total);
  (* taken runs: 12B and 12B (8+4) *)
  Alcotest.(check (float 1e-9)) "avg taken distance" 12.0
    (A.Bblock_stats.avg_taken_distance s total)

let test_bp_sim_perfect_and_never () =
  let always_right =
    Repro_frontend.Predictor.make ~name:"oracle-taken"
      ~predict:(fun _ -> true)
      ~update:(fun _ _ -> ())
      ~storage_bits:0
  in
  let sim = A.Bp_sim.create always_right in
  for _ = 1 to 100 do
    A.Bp_sim.feed sim (mk ~kind:Inst.Cond_branch ~taken:true ~target:0 64);
    A.Bp_sim.feed sim (mk 0)
  done;
  Alcotest.(check (float 1e-9)) "oracle mpki" 0.0 (A.Bp_sim.mpki sim total);
  let always_wrong =
    Repro_frontend.Predictor.make ~name:"anti"
      ~predict:(fun _ -> false)
      ~update:(fun _ _ -> ())
      ~storage_bits:0
  in
  let sim2 = A.Bp_sim.create always_wrong in
  for _ = 1 to 100 do
    A.Bp_sim.feed sim2 (mk ~kind:Inst.Cond_branch ~taken:true ~target:0 64);
    A.Bp_sim.feed sim2 (mk 0)
  done;
  Alcotest.(check (float 1e-9)) "anti mpki = 500" 500.0
    (A.Bp_sim.mpki sim2 total);
  Alcotest.(check (float 1e-9)) "all misses on taken-backward" 500.0
    (A.Bp_sim.mpki_by_cause sim2 total A.Bp_sim.On_taken_backward);
  Alcotest.(check (float 1e-9)) "none on not-taken" 0.0
    (A.Bp_sim.mpki_by_cause sim2 total A.Bp_sim.On_not_taken)

let test_btb_sim () =
  let sim = A.Btb_sim.create ~entries:64 ~assoc:4 in
  (* Same taken branch twice: first lookup misses, second hits. *)
  let br () = mk ~kind:Inst.Uncond_direct ~taken:true ~target:0x9000 64 in
  A.Btb_sim.feed sim (br ());
  A.Btb_sim.feed sim (br ());
  Alcotest.(check int) "one miss" 1 (A.Btb_sim.misses sim total);
  Alcotest.(check int) "two taken" 2 (A.Btb_sim.taken_branches sim total);
  (* Returns are RAS-predicted: no BTB traffic. *)
  A.Btb_sim.feed sim (mk ~kind:Inst.Return ~taken:true ~target:0x1234 128);
  Alcotest.(check int) "returns skip btb" 2 (A.Btb_sim.taken_branches sim total)

let test_btb_sim_target_change () =
  let sim = A.Btb_sim.create ~entries:64 ~assoc:4 in
  A.Btb_sim.feed sim (mk ~kind:Inst.Indirect_call ~taken:true ~target:0x100 64);
  A.Btb_sim.feed sim (mk ~kind:Inst.Indirect_call ~taken:true ~target:0x200 64);
  Alcotest.(check int) "stale target misses" 2 (A.Btb_sim.misses sim total)

let test_icache_sim_sequential () =
  let sim = A.Icache_sim.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 () in
  (* 32 sequential 4-byte instructions = 128 bytes = 2 lines = 2 misses. *)
  for i = 0 to 31 do
    A.Icache_sim.feed sim (mk ~size:4 (0x4000 + (i * 4)))
  done;
  Alcotest.(check int) "two line misses" 2 (A.Icache_sim.misses sim total);
  (* Re-run: now hits, no further misses. *)
  for i = 0 to 31 do
    A.Icache_sim.feed sim (mk ~size:4 (0x4000 + (i * 4)))
  done;
  Alcotest.(check int) "still two" 2 (A.Icache_sim.misses sim total);
  Alcotest.(check (float 0.01)) "fully useful" 1.0 (A.Icache_sim.usefulness sim)

let test_icache_sim_taken_redirect () =
  let sim = A.Icache_sim.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 () in
  (* Taken branch forces a new-line access even within the same line. *)
  A.Icache_sim.feed sim (mk ~size:4 0x4000);
  A.Icache_sim.feed sim
    (mk ~kind:Inst.Cond_branch ~taken:true ~target:0x4008 ~size:4 0x4004);
  A.Icache_sim.feed sim (mk ~size:4 0x4008);
  (* 3rd instruction is in the same line but after a taken branch the
     fetch restarts: access counted, hit. *)
  Alcotest.(check int) "one miss only" 1 (A.Icache_sim.misses sim total);
  Alcotest.(check bool) "more than one access" true (A.Icache_sim.accesses sim >= 2)

let test_tool_run_all_order () =
  let seen = ref [] in
  let obs tag = fun (_ : Inst.t) -> seen := tag :: !seen in
  A.Tool.run_all (Trace.of_list [ mk 0 ]) [ obs "a"; obs "b"; obs "c" ];
  Alcotest.(check (list string)) "order per instruction" [ "c"; "b"; "a" ] !seen

let test_characterization_of_trace () =
  let c =
    A.Characterization.of_trace ~name:"fixture" ~suite:Repro_workload.Suite.Npb
      (Trace.of_list (fixture ()))
  in
  Alcotest.(check int) "insts seen" 10 (A.Branch_mix.insts c.mix total);
  Alcotest.(check int) "sites" 2 (A.Branch_bias.static_sites c.bias)

let test_suite_mean_skips_nan () =
  let v = A.Characterization.suite_mean [] (fun _ -> 1.0) in
  Alcotest.(check bool) "empty -> nan" true (Float.is_nan v)

let () =
  Alcotest.run "analysis"
    [ ("branch_mix",
       [ Alcotest.test_case "counts" `Quick test_branch_mix_counts;
         Alcotest.test_case "warmup" `Quick test_branch_mix_skips_warmup ]);
      ("branch_bias",
       [ Alcotest.test_case "deciles" `Quick test_branch_bias_deciles;
         Alcotest.test_case "backward" `Quick test_branch_bias_backward ]);
      ("footprint",
       [ Alcotest.test_case "static/dynamic" `Quick test_footprint;
         Alcotest.test_case "warmup static only" `Quick
           test_footprint_warmup_static_only ]);
      ("bblock_stats", [ Alcotest.test_case "known trace" `Quick test_bblock_stats ]);
      ("bp_sim",
       [ Alcotest.test_case "oracle and anti" `Quick test_bp_sim_perfect_and_never ]);
      ("btb_sim",
       [ Alcotest.test_case "miss then hit" `Quick test_btb_sim;
         Alcotest.test_case "target change" `Quick test_btb_sim_target_change ]);
      ("icache_sim",
       [ Alcotest.test_case "sequential" `Quick test_icache_sim_sequential;
         Alcotest.test_case "taken redirect" `Quick test_icache_sim_taken_redirect ]);
      ("plumbing",
       [ Alcotest.test_case "run_all order" `Quick test_tool_run_all_order;
         Alcotest.test_case "characterization" `Quick
           test_characterization_of_trace;
         Alcotest.test_case "suite_mean" `Quick test_suite_mean_skips_nan ]) ]
