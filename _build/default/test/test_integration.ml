(* Integration tests: the paper's qualitative claims must hold
   end-to-end on the synthetic suites at reduced scale. Each test
   names the Characteristic / Implication it checks. *)

module A = Repro_analysis
module W = Repro_workload
module F = Repro_frontend
module U = Repro_uarch

let total = A.Branch_mix.Total
let serial = A.Branch_mix.Only Repro_isa.Section.Serial
let parallel = A.Branch_mix.Only Repro_isa.Section.Parallel

(* Representative benchmarks per suite keep runtimes bounded. *)
let hpc_sample = [ "CoMD"; "LULESH"; "botsspar"; "swim"; "FT"; "BT"; "MG" ]
let int_sample = [ "gobmk"; "xalancbmk"; "h264ref"; "astar" ]

let characterize name =
  let p = W.Suites.find name in
  A.Characterization.of_profile ~insts:400_000 p

let hpc_chars = lazy (List.map characterize hpc_sample)
let int_chars = lazy (List.map characterize int_sample)

let mean chars f = A.Characterization.suite_mean (Lazy.force chars) f

(* ------------------------------------------------------------------ *)

let test_characteristic1_branch_ratio () =
  (* HPC has ~3x fewer branches than desktop. *)
  let hpc = mean hpc_chars (fun c -> A.Branch_mix.branch_fraction c.mix total) in
  let int_ = mean int_chars (fun c -> A.Branch_mix.branch_fraction c.mix total) in
  Alcotest.(check bool)
    (Printf.sprintf "INT %.3f >= 1.8x HPC %.3f" int_ hpc)
    true
    (int_ > 1.8 *. hpc)

let test_characteristic1_serial_vs_parallel () =
  (* Serial sections are ~3x branchier than parallel ones. *)
  let ser = mean hpc_chars (fun c -> A.Branch_mix.branch_fraction c.mix serial) in
  let par =
    mean hpc_chars (fun c -> A.Branch_mix.branch_fraction c.mix parallel)
  in
  Alcotest.(check bool)
    (Printf.sprintf "serial %.3f > 1.5x parallel %.3f" ser par)
    true
    (ser > 1.5 *. par)

let test_characteristic2_bias () =
  let hpc = mean hpc_chars (fun c -> A.Branch_bias.biased_fraction c.bias total) in
  let int_ = mean int_chars (fun c -> A.Branch_bias.biased_fraction c.bias total) in
  Alcotest.(check bool)
    (Printf.sprintf "HPC biased %.2f > INT %.2f + 0.1" hpc int_)
    true
    (hpc > int_ +. 0.1);
  Alcotest.(check bool) "HPC mostly biased" true (hpc > 0.75)

let test_characteristic2_backward () =
  let hpc =
    mean hpc_chars (fun c ->
        A.Branch_bias.backward_taken_fraction c.bias parallel)
  in
  let int_ =
    mean int_chars (fun c -> A.Branch_bias.backward_taken_fraction c.bias total)
  in
  Alcotest.(check bool)
    (Printf.sprintf "HPC backward %.2f > 0.65; INT %.2f < 0.55" hpc int_)
    true
    (hpc > 0.65 && int_ < 0.55)

let test_characteristic3_footprint () =
  let hpc_dyn =
    mean hpc_chars (fun c ->
        float_of_int
          (A.Footprint.dynamic_bytes c.footprint parallel ~coverage:0.99))
  in
  let int_dyn =
    mean int_chars (fun c ->
        float_of_int (A.Footprint.dynamic_bytes c.footprint total ~coverage:0.99))
  in
  Alcotest.(check bool)
    (Printf.sprintf "HPC 99%% dyn %.0fKB < 32KB" (hpc_dyn /. 1024.0))
    true
    (hpc_dyn < 32.0 *. 1024.0);
  Alcotest.(check bool)
    (Printf.sprintf "INT dyn %.0fKB > HPC dyn %.0fKB" (int_dyn /. 1024.0)
       (hpc_dyn /. 1024.0))
    true
    (int_dyn > 1.5 *. hpc_dyn)

let test_characteristic4_blocks () =
  let hpc_bbl =
    mean hpc_chars (fun c -> A.Bblock_stats.avg_block_bytes c.bblocks parallel)
  in
  let int_bbl =
    mean int_chars (fun c -> A.Bblock_stats.avg_block_bytes c.bblocks total)
  in
  let hpc_dist =
    mean hpc_chars (fun c -> A.Bblock_stats.avg_taken_distance c.bblocks parallel)
  in
  let int_dist =
    mean int_chars (fun c -> A.Bblock_stats.avg_taken_distance c.bblocks total)
  in
  Alcotest.(check bool)
    (Printf.sprintf "HPC BBL %.0fB >= 2.5x INT %.0fB" hpc_bbl int_bbl)
    true
    (hpc_bbl > 2.5 *. int_bbl);
  Alcotest.(check bool)
    (Printf.sprintf "HPC taken-dist %.0fB >= 3x INT %.0fB" hpc_dist int_dist)
    true
    (hpc_dist > 3.0 *. int_dist)

(* ------------------------------------------------------------------ *)

let mpki_of name predictor_name insts =
  let p = W.Suites.find name in
  let ex = W.Executor.create ~insts p in
  let sim = A.Bp_sim.create (F.Zoo.by_name predictor_name) in
  A.Tool.run_all (W.Executor.trace ex) [ A.Bp_sim.observer sim ];
  A.Bp_sim.mpki sim total

let test_implication1_tage_wins () =
  (* TAGE outperforms gshare at equal cost, per suite and per bench. *)
  List.iter
    (fun name ->
      let g = mpki_of name "gshare-big" 400_000 in
      let t = mpki_of name "tage-big" 400_000 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: tage %.2f <= gshare %.2f * 1.1" name t g)
        true
        (t <= g *. 1.1 +. 0.2))
    [ "CoMD"; "gobmk"; "FT"; "xalancbmk" ]

let test_implication1_tage_size_insensitive_hpc () =
  List.iter
    (fun name ->
      let big = mpki_of name "tage-big" 400_000 in
      let small = mpki_of name "tage-small" 400_000 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: tage-small %.2f within 35%% of tage-big %.2f" name
           small big)
        true
        (small < big *. 1.35 +. 0.3))
    [ "CoMD"; "FT"; "swim"; "botsspar" ]

let test_implication1_lbp_helps_loopy_code () =
  (* imagick and botsspar have constant short trip counts; the paper
     singles them out as the LBP's best cases. *)
  List.iter
    (fun name ->
      let plain = mpki_of name "gshare-small" 500_000 in
      let lbp = mpki_of name "L-gshare-small" 500_000 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: L-gshare %.2f < gshare %.2f" name lbp plain)
        true
        (lbp < plain))
    [ "imagick"; "botsspar" ]

let test_implication1_lbp_useless_for_desktop () =
  let plain = mpki_of "gobmk" "gshare-small" 400_000 in
  let lbp = mpki_of "gobmk" "L-gshare-small" 400_000 in
  Alcotest.(check bool)
    (Printf.sprintf "gobmk: LBP changes little (%.2f vs %.2f)" lbp plain)
    true
    (Float.abs (lbp -. plain) /. plain < 0.1)

let test_desktop_mpki_much_higher () =
  let hpc =
    Repro_util.Stats.mean
      (List.map (fun n -> mpki_of n "gshare-big" 300_000) [ "FT"; "swim"; "BT" ])
  in
  let int_ =
    Repro_util.Stats.mean
      (List.map (fun n -> mpki_of n "gshare-big" 300_000) [ "gobmk"; "astar" ])
  in
  Alcotest.(check bool)
    (Printf.sprintf "INT MPKI %.1f >= 3x NPB-ish %.1f" int_ hpc)
    true
    (int_ > 3.0 *. hpc)

(* ------------------------------------------------------------------ *)

let btb_mpki name ~entries ~assoc insts =
  let p = W.Suites.find name in
  let ex = W.Executor.create ~insts p in
  let sim = A.Btb_sim.create ~entries ~assoc in
  A.Tool.run_all (W.Executor.trace ex) [ A.Btb_sim.observer sim ];
  A.Btb_sim.mpki sim total

let test_implication2_btb_size_insensitive_hpc () =
  List.iter
    (fun name ->
      let small = btb_mpki name ~entries:256 ~assoc:8 300_000 in
      let big = btb_mpki name ~entries:1024 ~assoc:8 300_000 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: 256e %.2f close to 1K %.2f" name small big)
        true
        (small -. big < 1.2))
    (* ExMatEx apps are excluded: the paper itself singles them out as
       the BTB-aliasing-sensitive suite needing associativity. *)
    [ "FT"; "swim"; "MG"; "bwaves" ]

let test_implication2_btb_size_matters_desktop () =
  let small = btb_mpki "gobmk" ~entries:256 ~assoc:8 400_000 in
  let big = btb_mpki "gobmk" ~entries:1024 ~assoc:8 400_000 in
  Alcotest.(check bool)
    (Printf.sprintf "gobmk: 256e %.2f much worse than 1K %.2f" small big)
    true
    (small > big +. 1.0)

(* ------------------------------------------------------------------ *)

let icache_mpki name ~size ~line ~assoc insts =
  let p = W.Suites.find name in
  let ex = W.Executor.create ~insts p in
  let sim = A.Icache_sim.create ~size_bytes:size ~line_bytes:line ~assoc () in
  A.Tool.run_all (W.Executor.trace ex) [ A.Icache_sim.observer sim ];
  (A.Icache_sim.mpki sim total, A.Icache_sim.usefulness sim)

let test_implication3_hpc_16k_enough () =
  List.iter
    (fun name ->
      let m16, _ = icache_mpki name ~size:16384 ~line:128 ~assoc:8 400_000 in
      let m32, _ = icache_mpki name ~size:32768 ~line:64 ~assoc:4 400_000 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: tailored i$ %.2f close to baseline %.2f" name m16
           m32)
        true
        (m16 < m32 +. 1.0))
    [ "FT"; "swim"; "CoMD"; "botsspar" ]

let test_implication3_desktop_needs_32k () =
  List.iter
    (fun name ->
      let m16, _ = icache_mpki name ~size:16384 ~line:64 ~assoc:8 500_000 in
      let m32, _ = icache_mpki name ~size:32768 ~line:64 ~assoc:8 500_000 in
      Alcotest.(check bool)
        (Printf.sprintf "%s: 16KB %.2f much worse than 32KB %.2f" name m16 m32)
        true
        (m16 > m32 *. 1.5))
    [ "gobmk"; "xalancbmk" ]

let test_implication3_wide_lines_help_hpc_more () =
  (* Paper: 128B lines cut HPC misses 16% but *raise* SPEC INT misses
     19%. Our fetch model reproduces the gap direction but not the
     sign flip (see EXPERIMENTS.md): wide lines must help HPC
     decisively more than desktop code. *)
  let hpc32, _ = icache_mpki "CoMD" ~size:16384 ~line:32 ~assoc:8 400_000 in
  let hpc128, _ = icache_mpki "CoMD" ~size:16384 ~line:128 ~assoc:8 400_000 in
  Alcotest.(check bool)
    (Printf.sprintf "CoMD: 128B %.2f well below 32B %.2f" hpc128 hpc32)
    true
    (hpc128 < hpc32 /. 2.0);
  let int32, _ = icache_mpki "gobmk" ~size:16384 ~line:32 ~assoc:8 500_000 in
  let int128, _ = icache_mpki "gobmk" ~size:16384 ~line:128 ~assoc:8 500_000 in
  let hpc_gain = hpc32 /. hpc128 and int_gain = int32 /. int128 in
  Alcotest.(check bool)
    (Printf.sprintf "HPC gain %.2fx > INT gain %.2fx * 1.2" hpc_gain int_gain)
    true
    (hpc_gain > int_gain *. 1.2)

let test_line_usefulness_gap () =
  let _, hpc_useful = icache_mpki "swim" ~size:16384 ~line:128 ~assoc:8 300_000 in
  let _, int_useful = icache_mpki "gobmk" ~size:16384 ~line:128 ~assoc:8 500_000 in
  Alcotest.(check bool)
    (Printf.sprintf "HPC usefulness %.2f > INT %.2f" hpc_useful int_useful)
    true
    (hpc_useful > int_useful +. 0.05)

(* ------------------------------------------------------------------ *)

let test_implication4_asymmetric_cmp () =
  (* CoEVP: the Tailored CMP hurts (serial sections), the Asymmetric
     CMP recovers baseline performance, Asymmetric++ wins. *)
  let p = W.Suites.find "CoEVP" in
  let evals = U.Cmp.evaluate_many ~insts:600_000 U.Cmp.standard_configs p in
  let base = List.nth evals 0 in
  let rel i = (U.Cmp.relative (List.nth evals i) ~baseline:base).U.Cmp.time in
  let tailored = rel 1 and asym = rel 2 and plus = rel 3 in
  Alcotest.(check bool)
    (Printf.sprintf "tailored %.3f > asym %.3f" tailored asym)
    true
    (tailored > asym +. 0.01);
  Alcotest.(check (float 0.02)) "asym recovers baseline" 1.0 asym;
  Alcotest.(check bool) (Printf.sprintf "asym++ %.3f wins" plus) true
    (plus < 0.97)

let test_headline_cmp_numbers () =
  (* Suite-wide: Asymmetric++ ~10% faster, a few % more power, net
     energy saving on parallel HPC workloads. *)
  let benches = [ "FT"; "swim"; "CoMD"; "MG" ] in
  let rels =
    List.map
      (fun name ->
        let p = W.Suites.find name in
        let evals = U.Cmp.evaluate_many ~insts:300_000 U.Cmp.standard_configs p in
        let base = List.nth evals 0 in
        U.Cmp.relative (List.nth evals 3) ~baseline:base)
      benches
  in
  let mean f = Repro_util.Stats.mean (List.map f rels) in
  let time = mean (fun (r : U.Cmp.eval) -> r.time) in
  let power = mean (fun r -> r.power) in
  let ed = mean (fun r -> r.ed) in
  Alcotest.(check bool) (Printf.sprintf "time %.3f in [0.82, 0.95]" time) true
    (time > 0.82 && time < 0.95);
  Alcotest.(check bool) (Printf.sprintf "power %.3f in [1.0, 1.10]" power) true
    (power > 1.0 && power < 1.10);
  Alcotest.(check bool) (Printf.sprintf "ED %.3f < 0.92" ed) true (ed < 0.92)

let () =
  Alcotest.run "integration"
    [ ("characteristics (Section III)",
       [ Alcotest.test_case "1: branch ratio" `Slow test_characteristic1_branch_ratio;
         Alcotest.test_case "1: serial vs parallel" `Slow
           test_characteristic1_serial_vs_parallel;
         Alcotest.test_case "2: bias" `Slow test_characteristic2_bias;
         Alcotest.test_case "2: backward" `Slow test_characteristic2_backward;
         Alcotest.test_case "3: footprint" `Slow test_characteristic3_footprint;
         Alcotest.test_case "4: blocks" `Slow test_characteristic4_blocks ]);
      ("branch predictors (Section IV-A)",
       [ Alcotest.test_case "tage wins" `Slow test_implication1_tage_wins;
         Alcotest.test_case "tage size-insensitive on HPC" `Slow
           test_implication1_tage_size_insensitive_hpc;
         Alcotest.test_case "LBP helps loopy code" `Slow
           test_implication1_lbp_helps_loopy_code;
         Alcotest.test_case "LBP useless for desktop" `Slow
           test_implication1_lbp_useless_for_desktop;
         Alcotest.test_case "desktop MPKI higher" `Slow
           test_desktop_mpki_much_higher ]);
      ("BTB (Section IV-B)",
       [ Alcotest.test_case "HPC size-insensitive" `Slow
           test_implication2_btb_size_insensitive_hpc;
         Alcotest.test_case "desktop size-sensitive" `Slow
           test_implication2_btb_size_matters_desktop ]);
      ("I-cache (Section IV-C)",
       [ Alcotest.test_case "16KB enough for HPC" `Slow
           test_implication3_hpc_16k_enough;
         Alcotest.test_case "desktop needs 32KB" `Slow
           test_implication3_desktop_needs_32k;
         Alcotest.test_case "wide lines help HPC more" `Slow
           test_implication3_wide_lines_help_hpc_more;
         Alcotest.test_case "line usefulness gap" `Slow test_line_usefulness_gap ]);
      ("CMP (Section V)",
       [ Alcotest.test_case "asymmetric design" `Slow test_implication4_asymmetric_cmp;
         Alcotest.test_case "headline numbers" `Slow test_headline_cmp_numbers ]) ]
