(* Tests for the McPAT/Sniper substitute: CACTI fits, Table III
   budgets, the CPI model and CMP evaluation. *)

module U = Repro_uarch
module W = Repro_workload

let checkf eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)

let test_cacti_fit_anchors () =
  let fit = U.Cacti.powerlaw_fit (100.0, 10.0) (400.0, 20.0) in
  checkf 1e-6 "anchor 1" 10.0 (U.Cacti.eval fit 100.0);
  checkf 1e-6 "anchor 2" 20.0 (U.Cacti.eval fit 400.0);
  checkf 1e-6 "exponent" 0.5 (U.Cacti.exponent fit)

let test_cacti_fit_monotone () =
  let fit = U.Cacti.powerlaw_fit (100.0, 10.0) (400.0, 20.0) in
  Alcotest.(check bool) "monotone" true
    (U.Cacti.eval fit 200.0 > 10.0 && U.Cacti.eval fit 200.0 < 20.0)

let test_cacti_fit_invalid () =
  Alcotest.check_raises "equal x"
    (Invalid_argument "Cacti.powerlaw_fit: equal abscissae") (fun () ->
      ignore (U.Cacti.powerlaw_fit (1.0, 1.0) (1.0, 2.0)))

let test_cacti_generic_sram () =
  Alcotest.(check bool) "area grows with bits" true
    (U.Cacti.sram_area_mm2 ~bits:100_000 > U.Cacti.sram_area_mm2 ~bits:10_000);
  Alcotest.(check bool) "leakage positive" true
    (U.Cacti.sram_leakage_w ~bits:1000 > 0.0)

(* ------------------------------------------------------------------ *)

let test_mcpat_table3_baseline () =
  let b = U.Mcpat.budget U.Frontend_config.baseline in
  checkf 1e-3 "icache area" 0.31 b.icache_mm2;
  checkf 1e-3 "bp area" 0.14 b.bp_mm2;
  checkf 1e-3 "btb area" 0.125 b.btb_mm2;
  checkf 1e-3 "icache power" 0.075 b.icache_w;
  checkf 1e-3 "core area" 2.49
    (U.Mcpat.core_area_mm2 U.Frontend_config.baseline);
  checkf 1e-3 "core power" 0.85 (U.Mcpat.core_power_w U.Frontend_config.baseline)

let test_mcpat_table3_tailored () =
  let t = U.Mcpat.budget U.Frontend_config.tailored in
  checkf 1e-3 "icache area" 0.14 t.icache_mm2;
  checkf 1e-3 "bp area" 0.04 t.bp_mm2;
  checkf 1e-3 "btb area" 0.022 t.btb_mm2;
  checkf 0.02 "core area ~2.11" 2.11
    (U.Mcpat.core_area_mm2 U.Frontend_config.tailored);
  checkf 0.01 "core power ~0.79" 0.79
    (U.Mcpat.core_power_w U.Frontend_config.tailored)

let test_mcpat_headline_savings () =
  checkf 0.02 "area saving ~16%" 0.16
    (U.Mcpat.area_saving_vs_baseline U.Frontend_config.tailored);
  checkf 0.01 "power saving ~7%" 0.07
    (U.Mcpat.power_saving_vs_baseline U.Frontend_config.tailored)

let test_mcpat_monotone_in_icache () =
  let small = { U.Frontend_config.baseline with icache_bytes = 8192 } in
  Alcotest.(check bool) "smaller icache, smaller core" true
    (U.Mcpat.core_area_mm2 small
    < U.Mcpat.core_area_mm2 U.Frontend_config.baseline)

(* ------------------------------------------------------------------ *)

let test_frontend_config_bp () =
  let bp = U.Frontend_config.make_bp U.Frontend_config.tailored in
  Alcotest.(check bool) "tailored bp has loop predictor" true
    (String.length bp.Repro_frontend.Predictor.name > 2
    && String.sub bp.Repro_frontend.Predictor.name 0 2 = "L-");
  let fresh1 = U.Frontend_config.make_bp U.Frontend_config.baseline in
  fresh1.Repro_frontend.Predictor.update 0x40 true;
  let fresh2 = U.Frontend_config.make_bp U.Frontend_config.baseline in
  Alcotest.(check bool) "instances are fresh" true
    (fresh1 != fresh2)

let test_timing_cpi_formula () =
  let rates = { U.Timing.bp_mpki = 10.0; btb_mpki = 5.0; icache_mpki = 2.0 } in
  let expected =
    U.Timing.base_cpi +. 0.3
    +. (10.0 /. 1000.0 *. U.Timing.bp_penalty)
    +. (5.0 /. 1000.0 *. U.Timing.btb_penalty)
    +. (2.0 /. 1000.0 *. U.Timing.icache_penalty)
  in
  checkf 1e-9 "cpi formula" expected (U.Timing.cpi ~data_stall:0.3 rates)

let test_timing_measure_sections () =
  let p = W.Suites.find "CoMD" in
  let ex = W.Executor.create ~insts:150_000 p in
  let m = U.Timing.measure U.Frontend_config.baseline (W.Executor.trace ex) in
  Alcotest.(check bool) "serial insts measured" true (m.serial_insts > 0);
  Alcotest.(check bool) "parallel insts measured" true (m.parallel_insts > 0);
  Alcotest.(check bool) "rates finite" true
    (Float.is_finite m.total.bp_mpki && Float.is_finite m.total.icache_mpki)

let test_timing_measure_many_consistent () =
  let p = W.Suites.find "FT" in
  let ex = W.Executor.create ~insts:100_000 p in
  let trace = W.Executor.trace ex in
  match
    U.Timing.measure_many
      [ U.Frontend_config.baseline; U.Frontend_config.baseline ]
      trace
  with
  | [ a; b ] ->
      checkf 1e-9 "identical configs identical rates" a.total.bp_mpki
        b.total.bp_mpki
  | _ -> Alcotest.fail "expected two measurements"

(* ------------------------------------------------------------------ *)

let test_cmp_configs () =
  Alcotest.(check int) "baseline cores" 8 (U.Cmp.n_cores U.Cmp.baseline_cmp);
  Alcotest.(check int) "asym++ cores" 9 (U.Cmp.n_cores U.Cmp.asymmetric_plus_cmp);
  (* Asymmetric++ fits the Baseline CMP area budget (the paper's whole
     point): 9 cores with tailored workers vs 8 baseline cores. *)
  let base = U.Cmp.area_mm2 U.Cmp.baseline_cmp in
  let plus = U.Cmp.area_mm2 U.Cmp.asymmetric_plus_cmp in
  Alcotest.(check bool)
    (Printf.sprintf "area %.1f within 3%% of %.1f" plus base)
    true
    (plus /. base < 1.03)

let test_cmp_baseline_self_relative () =
  let p = W.Suites.find "FT" in
  let e = U.Cmp.evaluate ~insts:100_000 U.Cmp.baseline_cmp p in
  let r = U.Cmp.relative e ~baseline:e in
  checkf 1e-9 "time" 1.0 r.time;
  checkf 1e-9 "power" 1.0 r.power;
  checkf 1e-9 "ed" 1.0 r.ed

let test_cmp_asym_plus_speeds_up_hpc () =
  let p = W.Suites.find "FT" in
  let evals = U.Cmp.evaluate_many ~insts:200_000 U.Cmp.standard_configs p in
  let base = List.nth evals 0 and plus = List.nth evals 3 in
  let r = U.Cmp.relative plus ~baseline:base in
  Alcotest.(check bool)
    (Printf.sprintf "asym++ faster (%.3f)" r.time)
    true (r.time < 0.95);
  Alcotest.(check bool)
    (Printf.sprintf "asym++ draws more power (%.3f)" r.power)
    true
    (r.power > 1.0)

let test_cmp_sequential_unaffected_by_extra_cores () =
  (* SPEC INT runs on the master; Asymmetric(+) masters are baseline
     cores, so time must match the Baseline CMP exactly. *)
  let p = W.Suites.find "h264ref" in
  let evals = U.Cmp.evaluate_many ~insts:200_000 U.Cmp.standard_configs p in
  let base = List.nth evals 0 and asym = List.nth evals 2 in
  checkf 1e-6 "same serial time" 1.0
    (U.Cmp.relative asym ~baseline:base).time

let test_cmp_tailored_masters_hurt_serial_code () =
  let p = W.Suites.find "gobmk" in
  let evals = U.Cmp.evaluate_many ~insts:300_000 U.Cmp.standard_configs p in
  let base = List.nth evals 0 and tailored = List.nth evals 1 in
  let r = U.Cmp.relative tailored ~baseline:base in
  Alcotest.(check bool)
    (Printf.sprintf "tailored slower on desktop code (%.3f)" r.time)
    true (r.time > 1.01)

let () =
  Alcotest.run "uarch"
    [ ("cacti",
       [ Alcotest.test_case "fit anchors" `Quick test_cacti_fit_anchors;
         Alcotest.test_case "fit monotone" `Quick test_cacti_fit_monotone;
         Alcotest.test_case "fit invalid" `Quick test_cacti_fit_invalid;
         Alcotest.test_case "generic sram" `Quick test_cacti_generic_sram ]);
      ("mcpat",
       [ Alcotest.test_case "Table III baseline" `Quick test_mcpat_table3_baseline;
         Alcotest.test_case "Table III tailored" `Quick test_mcpat_table3_tailored;
         Alcotest.test_case "headline savings" `Quick test_mcpat_headline_savings;
         Alcotest.test_case "monotone" `Quick test_mcpat_monotone_in_icache ]);
      ("timing",
       [ Alcotest.test_case "frontend config bp" `Quick test_frontend_config_bp;
         Alcotest.test_case "cpi formula" `Quick test_timing_cpi_formula;
         Alcotest.test_case "measure sections" `Quick test_timing_measure_sections;
         Alcotest.test_case "measure_many" `Quick
           test_timing_measure_many_consistent ]);
      ("cmp",
       [ Alcotest.test_case "configs" `Quick test_cmp_configs;
         Alcotest.test_case "self relative" `Quick test_cmp_baseline_self_relative;
         Alcotest.test_case "asym++ speedup" `Quick
           test_cmp_asym_plus_speeds_up_hpc;
         Alcotest.test_case "sequential unaffected" `Quick
           test_cmp_sequential_unaffected_by_extra_cores;
         Alcotest.test_case "tailored hurts desktop" `Quick
           test_cmp_tailored_masters_hurt_serial_code ]) ]
