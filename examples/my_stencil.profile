# Example user-defined workload profile.
#
# Characterize it with:
#   dune exec bin/repro_cli.exe -- characterize --profile examples/my_stencil.profile
#
# Format: `key = value` per line, `#` comments. `like = <benchmark>`
# inherits every parameter from a built-in profile; later lines
# override individual fields. See Repro_workload.Profile_io.

name = my-stencil
like = FT

# A 5-point stencil sweeps long constant-trip rows: ideal loop-predictor
# territory.
parallel.inner_trip = const:256
parallel.branch_fraction = 0.045
parallel.avg_inst_bytes = 6.4
parallel.hot_kb = 5

# Halo exchange + reduction between sweeps runs on the master thread.
serial_fraction = 0.015

# Strongly memory-bound.
data_stall_cpi = 1.1
